// Command cliquegrid runs a declarative experiment grid — catalogue
// workloads swept over n × wordsPerPair × seeds plus registry
// experiments — with per-cell warmup and repeats, and writes
// paper-ready artefacts (runs.csv, summary.json, summary.md,
// tables.tex, plots/*.svg) under <out>/<stamp>/.
//
// The summary JSON is deterministic modulo its timing fields; pass
// -no-timing to emit the stripped envelope, which is byte-identical
// across runs and -parallel settings for a fixed spec and binary.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"repro/internal/clique"
	"repro/internal/grid"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		specPath = flag.String("spec", "", "grid spec JSON file (required)")
		out      = flag.String("out", "paper_runs", "artefact root directory")
		stamp    = flag.String("stamp", "", "artefact subdirectory (default: UTC timestamp)")
		repeats  = flag.Int("repeats", 0, "recorded runs per cell (overrides the spec)")
		warmup   = flag.Int("warmup", 0, "discarded runs per cell before recording (overrides the spec)")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "cells to run concurrently")
		backend  = flag.String("backend", "", fmt.Sprintf("execution backend (overrides the spec; valid: %v)", clique.Backends()))
		noTiming = flag.Bool("no-timing", false, "strip wall-clock fields from summary.json (deterministic artefact)")
		progress = flag.Bool("progress", true, "report per-run progress on stderr")
		batch    = flag.Bool("batch", false, "batch same-(algorithm,n,wpp) seed sweeps through one engine execution per repeat")
	)
	flag.Parse()
	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "cliquegrid: -spec is required")
		flag.Usage()
		return 2
	}
	data, err := os.ReadFile(*specPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cliquegrid: %v\n", err)
		return 2
	}
	spec, err := grid.ParseSpec(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cliquegrid: %s: %v\n", *specPath, err)
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := grid.Options{
		Backend:  *backend,
		Repeats:  *repeats,
		Warmup:   *warmup,
		Parallel: *parallel,
		Batch:    *batch,
	}
	if *progress {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rcliquegrid: %d/%d runs", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	start := time.Now()
	rep, records, err := grid.Run(ctx, spec, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cliquegrid: %v\n", err)
		return 1
	}

	dirStamp := *stamp
	if dirStamp == "" {
		dirStamp = start.UTC().Format("20060102T150405Z")
	}
	dir := filepath.Join(*out, dirStamp)
	if err := grid.WriteArtifacts(dir, rep, records, !*noTiming); err != nil {
		fmt.Fprintf(os.Stderr, "cliquegrid: %v\n", err)
		return 1
	}

	// One line on stdout — the CI grid job tails this into its step
	// summary.
	name := rep.Name
	if name == "" {
		name = filepath.Base(*specPath)
	}
	fmt.Printf("cliquegrid: %s: %d groups, %d runs (%d repeats, %d warmup, backend %s), %d fits, %.1fs wall -> %s\n",
		name, len(rep.Groups), len(records), rep.Repeats, rep.Warmup, rep.Backend, len(rep.Fits),
		time.Since(start).Seconds(), dir)
	return 0
}
