// Command cliquerun executes a single congested clique algorithm on a
// generated instance and prints the model costs — a command-line window
// into the simulator.
//
// Usage:
//
//	cliquerun -alg triangle -n 64 -p 0.1 -seed 7
//	cliquerun -alg kds -n 64 -k 2
//	cliquerun -alg apsp -n 27
//	cliquerun -alg sort -n 16 -format=json   # machine-readable result
//	cliquerun -alg mst -trace=mst.json       # Chrome trace for Perfetto
//	cliquerun -alg dot            # print the Figure 1 map as Graphviz
//
// Algorithms: triangle, kis, kclique, kcycle, kpath, kds, kvc, bfs, sssp,
// apsp, tc, mm, mm3d, mst, sort, maxis, kcol, dot.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/clique"
	"repro/internal/domset"
	"repro/internal/fgc"
	"repro/internal/gather"
	"repro/internal/graph"
	"repro/internal/matmul"
	"repro/internal/mst"
	"repro/internal/paths"
	"repro/internal/routing"
	"repro/internal/subgraph"
	"repro/internal/trace"
	"repro/internal/vcover"
)

func main() {
	alg := flag.String("alg", "triangle", "algorithm to run")
	n := flag.Int("n", 32, "number of nodes")
	k := flag.Int("k", 3, "parameter k (kis, kclique, kcycle, kds, kvc, kcol)")
	p := flag.Float64("p", 0.2, "edge probability of the random input")
	seed := flag.Uint64("seed", 1, "generator seed")
	wpp := flag.Int("wpp", 4, "words per pair per round")
	maxW := flag.Int64("maxw", 20, "max edge weight for weighted problems")
	backend := flag.String("backend", "lockstep",
		"execution backend ("+strings.Join(clique.Backends(), ", ")+")")
	format := flag.String("format", "text", "output format (text, json)")
	traceFile := flag.String("trace", "", "run with the round-level tracer and write a Chrome trace-event file (Perfetto) to this path")
	flag.Parse()
	wppSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "wpp" {
			wppSet = true
		}
	})
	if *backend == "" {
		*backend = clique.DefaultBackend
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "unknown format %q (text, json)\n", *format)
		os.Exit(2)
	}

	if *alg == "dot" {
		fmt.Print(fgc.Figure1(*k).DOT())
		return
	}

	g := graph.Gnp(*n, *p, *seed)
	w := graph.GnpWeighted(*n, *p, *maxW, false, *seed)
	var answer string

	var elapsed time.Duration
	run := func(f clique.NodeFunc) *clique.Result {
		cfg := clique.Config{N: *n, WordsPerPair: *wpp, Backend: *backend}
		var col *trace.Collector
		if *traceFile != "" {
			col = trace.NewCollector(*alg, *n, *wpp)
			col.SetBackend(*backend)
			cfg.Tracer = col
		}
		start := time.Now()
		res, err := clique.Run(cfg, f)
		elapsed = time.Since(start)
		if err != nil {
			log.Fatal(err)
		}
		if col != nil {
			f, err := os.Create(*traceFile)
			if err != nil {
				log.Fatal(err)
			}
			if err := trace.WriteChrome(f, []*trace.RunTrace{col.Finish()}); err != nil {
				f.Close()
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}
		return res
	}

	var res *clique.Result
	switch *alg {
	case "triangle":
		var out bool
		res = run(func(nd *clique.Node) { out = subgraph.DetectTriangle(nd, g.Row(nd.ID())) })
		answer = fmt.Sprintf("triangle=%v (oracle %v)", out, graph.HasTriangle(g))
	case "kis":
		var out bool
		res = run(func(nd *clique.Node) { out = subgraph.DetectIndependentSet(nd, g.Row(nd.ID()), *k) })
		answer = fmt.Sprintf("%d-IS=%v (oracle %v)", *k, out, graph.HasIndependentSetOfSize(g, *k))
	case "kclique":
		var out bool
		res = run(func(nd *clique.Node) { out = subgraph.DetectClique(nd, g.Row(nd.ID()), *k) })
		answer = fmt.Sprintf("%d-clique=%v (oracle %v)", *k, out, graph.HasCliqueOfSize(g, *k))
	case "kcycle":
		var out bool
		res = run(func(nd *clique.Node) { out = subgraph.DetectCycle(nd, g.Row(nd.ID()), *k) })
		answer = fmt.Sprintf("%d-cycle=%v (oracle %v)", *k, out, graph.HasCycleOfLength(g, *k))
	case "kds":
		var out domset.Result
		res = run(func(nd *clique.Node) { out = domset.Find(nd, g.Row(nd.ID()), *k) })
		answer = fmt.Sprintf("%d-DS found=%v witness=%v (oracle %v)", *k, out.Found, out.Witness,
			graph.HasDominatingSetOfSize(g, *k))
	case "kvc":
		var out vcover.Result
		res = run(func(nd *clique.Node) { out = vcover.Find(nd, g.Row(nd.ID()), *k) })
		answer = fmt.Sprintf("%d-VC found=%v cover=%v (oracle %v)", *k, out.Found, out.Cover,
			graph.HasVertexCoverOfSize(g, *k))
	case "bfs":
		res = run(func(nd *clique.Node) { paths.BFS(nd, g.Row(nd.ID()), 0) })
		answer = "BFS tree from node 0 built"
	case "sssp":
		var d0 int64
		res = run(func(nd *clique.Node) {
			r := paths.SSSP(nd, w.W[nd.ID()], 0)
			if nd.ID() == *n-1 {
				d0 = r.Dist
			}
		})
		answer = fmt.Sprintf("SSSP done; dist(0, n-1) = %d", d0)
	case "apsp":
		res = run(func(nd *clique.Node) { paths.APSP(nd, w.W[nd.ID()], matmul.Mul3D) })
		answer = "exact APSP via (min,+) squaring"
	case "tc":
		res = run(func(nd *clique.Node) {
			row := make([]int64, *n)
			g.Neighbors(nd.ID(), func(u int) { row[u] = 1 })
			paths.TransitiveClosure(nd, row, matmul.Mul3D)
		})
		answer = "transitive closure"
	case "mm":
		res = run(func(nd *clique.Node) {
			row := matmul.AdjacencyRow(g, nd.ID())
			matmul.MulNaive(nd, matmul.Boolean{}, row, row)
		})
		answer = "A^2 over the Boolean semiring (naive schedule)"
	case "mm3d":
		res = run(func(nd *clique.Node) {
			row := matmul.AdjacencyRow(g, nd.ID())
			matmul.Mul3D(nd, matmul.Boolean{}, row, row)
		})
		answer = "A^2 over the Boolean semiring (3D schedule)"
	case "kpath":
		var out bool
		res = run(func(nd *clique.Node) { out = subgraph.DetectPath(nd, g.Row(nd.ID()), *k) })
		answer = fmt.Sprintf("%d-path=%v (oracle %v)", *k, out, graph.HasSimplePathOfLength(g, *k))
	case "mst":
		var wt int64
		res = run(func(nd *clique.Node) { wt = mst.Weight(mst.Find(nd, w.W[nd.ID()])) })
		oracle, _ := mst.KruskalOracle(w)
		answer = fmt.Sprintf("MSF weight %d (oracle %d)", wt, oracle)
	case "mstsketch":
		if !wppSet && *wpp < 32 {
			*wpp = 32 // catalogue default: fit the sketch exchange in O(1) rounds
		}
		var wt int64
		var st mst.SketchStats
		res = run(func(nd *clique.Node) {
			forest, s := mst.SketchFind(nd, w.W[nd.ID()], *seed)
			wt, st = mst.Weight(forest), s
		})
		oracle, _ := mst.KruskalOracle(w)
		answer = fmt.Sprintf("MSF weight %d (oracle %d), %d components seeded, cut samples %d/%d",
			wt, oracle, st.Components, st.SampleOK, st.SampleTotal)
	case "mstsparse":
		if !wppSet && *wpp < 8 {
			*wpp = 8 // catalogue default; SparseFind needs wpp >= 6
		}
		var wt int64
		var st mst.SparseStats
		res = run(func(nd *clique.Node) {
			forest, s := mst.SparseFind(nd, w.W[nd.ID()], *seed)
			if nd.ID() == 0 {
				wt, st = mst.Weight(forest), s
			}
		})
		oracle, _ := mst.KruskalOracle(w)
		answer = fmt.Sprintf("MSF weight %d (oracle %d) in %d phases, %d merges",
			wt, oracle, st.Phases, st.Merges)
	case "sort":
		res = run(func(nd *clique.Node) {
			keys := make([]uint64, 8)
			for i := range keys {
				keys[i] = uint64((nd.ID()*131 + i*37) % (*n * *n))
			}
			routing.Sort(nd, keys, uint64(*n**n))
		})
		answer = "global radix sort of 8 keys/node"
	case "maxis":
		var alpha int
		res = run(func(nd *clique.Node) { alpha = gather.MaxIndependentSetSize(nd, g.Row(nd.ID())) })
		answer = fmt.Sprintf("alpha(G) = %d", alpha)
	case "kcol":
		var ok bool
		res = run(func(nd *clique.Node) { ok = gather.KColorable(nd, g.Row(nd.ID()), *k) })
		answer = fmt.Sprintf("%d-colourable=%v", *k, ok)
	default:
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *alg)
		os.Exit(2)
	}

	roundsPerSec := float64(res.Stats.Rounds) / elapsed.Seconds()
	switch *format {
	case "text":
		fmt.Printf("algorithm : %s\n", *alg)
		fmt.Printf("backend   : %s\n", *backend)
		fmt.Printf("instance  : n=%d p=%.2f seed=%d (%d edges)\n", *n, *p, *seed, g.NumEdges())
		fmt.Printf("result    : %s\n", answer)
		fmt.Printf("cost      : %d rounds, %d words, %d bits, busiest link %d words/round\n",
			res.Stats.Rounds, res.Stats.WordsSent, res.Stats.BitsSent, res.Stats.MaxPairWords)
		fmt.Printf("wall      : %v (%.0f rounds/sec on the %s backend)\n", elapsed.Round(time.Microsecond), roundsPerSec, *backend)
	case "json":
		// A single-run sibling of the cliquebench report schema: the
		// model costs are deterministic, the wall block is measured.
		out := runReport{
			Schema: "cliquerun/v1", Algorithm: *alg, Backend: *backend,
			N: *n, P: *p, Seed: *seed, Edges: g.NumEdges(), Answer: answer,
			Rounds: res.Stats.Rounds, Words: res.Stats.WordsSent,
			Bits: res.Stats.BitsSent, MaxPairWords: res.Stats.MaxPairWords,
			WallNS: elapsed.Nanoseconds(), RoundsPerSec: roundsPerSec,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q (text, json)\n", *format)
		os.Exit(2)
	}
}

// runReport is the cliquerun -format=json envelope.
type runReport struct {
	Schema       string  `json:"schema"`
	Algorithm    string  `json:"algorithm"`
	Backend      string  `json:"backend"`
	N            int     `json:"n"`
	P            float64 `json:"p"`
	Seed         uint64  `json:"seed"`
	Edges        int     `json:"edges"`
	Answer       string  `json:"answer"`
	Rounds       int     `json:"rounds"`
	Words        int64   `json:"words"`
	Bits         int64   `json:"bits"`
	MaxPairWords int     `json:"max_pair_words"`
	WallNS       int64   `json:"wall_ns"`
	RoundsPerSec float64 `json:"rounds_per_sec"`
}
