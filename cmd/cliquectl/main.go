// Command cliquectl is the retrying command-line client for a cliqued
// daemon. It wraps internal/client, so every invocation gets the
// failure-semantics-aware retry loop: exponential backoff with full
// jitter, Retry-After honoring on 503 shed, and a hard retry budget —
// which makes it the right tool for scripts that must converge across
// daemon restarts (scripts/smoke-recovery.sh drives it through a
// SIGKILL).
//
// Usage:
//
//	cliquectl [flags] run -algorithm triangle -n 64 -seed 7
//	cliquectl [flags] experiment fig1 -quick
//	cliquectl [flags] ledger-stats
//	cliquectl [flags] health
//
// Global flags (before the subcommand): -addr, -attempts, -base-delay,
// -max-delay, -retry-budget, -timeout. The envelope (or stats JSON) is
// written to stdout; errors go to stderr with exit status 1.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/client"
)

func main() {
	globals := flag.NewFlagSet("cliquectl", flag.ExitOnError)
	addr := globals.String("addr", "http://localhost:8347", "cliqued base URL")
	attempts := globals.Int("attempts", 6, "max attempts per call (first try included)")
	baseDelay := globals.Duration("base-delay", 100*time.Millisecond, "backoff base delay")
	maxDelay := globals.Duration("max-delay", 5*time.Second, "backoff delay cap")
	budget := globals.Duration("retry-budget", 60*time.Second, "total time allowed across retries")
	timeout := globals.Duration("timeout", 0, "overall call deadline (0 = none)")
	globals.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cliquectl [flags] {run|experiment|ledger-stats|health} [args]\n")
		globals.PrintDefaults()
	}
	globals.Parse(os.Args[1:])
	if globals.NArg() == 0 {
		globals.Usage()
		os.Exit(2)
	}

	c := client.New(client.Config{
		BaseURL:     *addr,
		MaxAttempts: *attempts,
		BaseDelay:   *baseDelay,
		MaxDelay:    *maxDelay,
		RetryBudget: *budget,
	})
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cmd, rest := globals.Arg(0), globals.Args()[1:]
	var data []byte
	var err error
	switch cmd {
	case "run":
		data, err = cmdRun(ctx, c, rest)
	case "experiment":
		data, err = cmdExperiment(ctx, c, rest)
	case "ledger-stats":
		data, err = c.LedgerStats(ctx)
	case "health":
		if err = c.Health(ctx); err == nil {
			data = []byte("ok\n")
		}
	default:
		fmt.Fprintf(os.Stderr, "cliquectl: unknown command %q\n", cmd)
		globals.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cliquectl %s: %v\n", cmd, err)
		os.Exit(1)
	}
	os.Stdout.Write(data)
}

func cmdRun(ctx context.Context, c *client.Client, args []string) ([]byte, error) {
	fs := flag.NewFlagSet("cliquectl run", flag.ExitOnError)
	algorithm := fs.String("algorithm", "", "workload algorithm (required)")
	n := fs.Int("n", 0, "node count (required)")
	wpp := fs.Int("wpp", 0, "words per pair (0 = algorithm default)")
	seed := fs.Uint64("seed", 0, "workload seed")
	backend := fs.String("backend", "", "execution backend (empty = server default)")
	quick := fs.Bool("quick", false, "quick mode")
	trace := fs.Bool("trace", false, "collect a round trace")
	timeoutMS := fs.Int64("timeout-ms", 0, "per-job wall budget in ms (capped by the server)")
	fs.Parse(args)
	return c.Run(ctx, client.RunRequest{
		Algorithm: *algorithm, N: *n, WordsPerPair: *wpp, Seed: *seed,
		Backend: *backend, Quick: *quick, Trace: *trace, TimeoutMS: *timeoutMS,
	})
}

func cmdExperiment(ctx context.Context, c *client.Client, args []string) ([]byte, error) {
	fs := flag.NewFlagSet("cliquectl experiment", flag.ExitOnError)
	backend := fs.String("backend", "", "execution backend (empty = server default)")
	quick := fs.Bool("quick", false, "quick mode")
	trace := fs.Bool("trace", false, "collect a round trace")
	timeoutMS := fs.Int64("timeout-ms", 0, "per-job wall budget in ms (capped by the server)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return nil, fmt.Errorf("usage: cliquectl experiment [flags] <id>")
	}
	return c.RunExperiment(ctx, fs.Arg(0), client.ExperimentOptions{
		Backend: *backend, Quick: *quick, Trace: *trace, TimeoutMS: *timeoutMS,
	})
}
