// Command cliquebench regenerates the experiments of EXPERIMENTS.md —
// one per figure/theorem of the paper — from the internal/exp registry.
// It is a thin driver: experiment list, flag help, and validation all
// derive from the registry, so adding an experiment there is the whole
// job.
//
// Usage:
//
//	cliquebench                               # full text report
//	cliquebench -exp fig1,thm9                # a subset
//	cliquebench -list -format=json            # registry listing, no runs
//	cliquebench -format=json -parallel=4      # machine-readable report
//	cliquebench -format=json -timing          # + measured rounds/sec
//	cliquebench -compare BENCH_baseline.json  # warn on perf regressions
//
// JSON output without -timing is deterministic: bit-identical across
// repeat runs and across -parallel settings. With -timing it carries a
// throughput block, the figure the BENCH_*.json perf trajectory and
// the CI regression gate track.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/clique"
	"repro/internal/exp"
)

func main() {
	expFlag := flag.String("exp", "all", exp.Help())
	backend := flag.String("backend", "lockstep",
		"execution backend ("+strings.Join(clique.Backends(), ", ")+")")
	format := flag.String("format", "text", "output format (text, json)")
	parallel := flag.Int("parallel", 1, "worker-pool width; experiments are independent and results keep registry order")
	quick := flag.Bool("quick", false, "reduced instance sizes (CI smoke, tests)")
	timing := flag.Bool("timing", false, "attach measured simulator throughput to JSON output (text always reports it)")
	compare := flag.String("compare", "", "baseline report JSON to compare this run against (warn-only)")
	threshold := flag.Float64("regress-threshold", 0.25, "rounds/sec regression fraction that triggers a -compare warning")
	list := flag.Bool("list", false, "print the experiment registry (id, artefact, title) and exit without running anything")
	flag.Parse()
	if *backend == "" {
		*backend = clique.DefaultBackend
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "unknown format %q (text, json)\n", *format)
		os.Exit(2)
	}
	if *list {
		if err := writeList(os.Stdout, *format); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	ids, err := exp.Resolve(*expFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	opts := exp.Options{Backend: *backend, Quick: *quick, Parallel: *parallel}
	results, tim, err := exp.Run(ids, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// The allocation probe needs a quiet process, so it runs after the
	// worker pool has drained. Like Throughput, it rides the -timing
	// opt-in (without it the report stays deterministic) — but only
	// where something consumes it: the JSON envelope or -compare.
	var bench *exp.BenchProbe
	if *timing && (*format == "json" || *compare != "") {
		bench, err = exp.MeasureBenchProbe(*backend)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	switch *format {
	case "text":
		// The text report always carries the throughput summary, as it
		// always has.
		exp.NewReport(*backend, opts, results, tim, true).WriteText(os.Stdout)
	case "json":
		report := exp.NewReport(*backend, opts, results, tim, *timing)
		report.Bench = bench
		if err := report.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q (text, json)\n", *format)
		os.Exit(2)
	}

	if *compare != "" {
		current := exp.NewReport(*backend, opts, results, tim, true)
		current.Bench = bench
		if err := compareBaseline(*compare, current, *threshold); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// writeList prints the registry without running anything. The JSON
// shape is exp.Info — the same one GET /v1/experiments of the cliqued
// service returns and cmd/genexperiments regenerates the
// EXPERIMENTS.md table from.
func writeList(w io.Writer, format string) error {
	infos := exp.Infos()
	if format == "json" {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(map[string]any{"experiments": infos})
	}
	wid, wart := 0, 0
	for _, e := range infos {
		wid, wart = max(wid, len(e.ID)), max(wart, len(e.Artefact))
	}
	for _, e := range infos {
		if _, err := fmt.Fprintf(w, "%-*s  %-*s  %s\n", wid, e.ID, wart, e.Artefact, e.Title); err != nil {
			return err
		}
	}
	return nil
}

// compareBaseline warns — never fails — when the current run regressed
// against the stored baseline. Warnings go to stderr in GitHub
// Actions annotation form so the CI job surfaces them inline.
func compareBaseline(path string, current *exp.Report, threshold float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("compare: %w", err)
	}
	var baseline exp.Report
	if err := json.Unmarshal(data, &baseline); err != nil {
		return fmt.Errorf("compare: parsing %s: %w", path, err)
	}
	warns := exp.Compare(&baseline, current, threshold)
	if len(warns) == 0 {
		fmt.Fprintf(os.Stderr, "compare: no regressions vs %s (threshold %.0f%%)\n", path, 100*threshold)
		return nil
	}
	for _, w := range warns {
		fmt.Fprintf(os.Stderr, "::warning title=benchmark regression::%s\n", w)
	}
	return nil
}
