// Command cliquebench regenerates every experiment in EXPERIMENTS.md:
// one sub-experiment per figure/theorem of the paper, selected with
// -exp. Running with -exp all prints the complete report.
//
// Usage:
//
//	cliquebench -exp fig1|fig2|thm2|thm4|thm8|lemma1|thm3|thm6|thm7|thm9|thm11|fpt|mst|sub|ablation|all
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/clique"
	"repro/internal/counting"
	"repro/internal/domset"
	"repro/internal/fgc"
	"repro/internal/gather"
	"repro/internal/graph"
	"repro/internal/hierarchy"
	"repro/internal/matmul"
	"repro/internal/mst"
	"repro/internal/nondet"
	"repro/internal/paths"
	"repro/internal/reduction"
	"repro/internal/routing"
	"repro/internal/subgraph"
	"repro/internal/vcover"
)

// backendName selects the execution engine for every simulated run in
// this process; simTime and simRounds accumulate the cost of those runs
// so the report can state simulator throughput per backend.
var (
	backendName string
	simTime     time.Duration
	simRounds   int64
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig1, fig2, thm2, thm4, thm8, lemma1, thm3, thm6, thm7, thm9, thm11, fpt, mst, sub, ablation, all)")
	backend := flag.String("backend", "lockstep",
		"execution backend ("+strings.Join(clique.Backends(), ", ")+")")
	flag.Parse()
	backendName = *backend
	if backendName == "" {
		backendName = clique.DefaultBackend
	}
	fmt.Printf("backend: %s\n", backendName)
	defer reportThroughput()

	all := map[string]func(){
		"fig1":     expFig1,
		"fig2":     expFig2,
		"thm2":     expThm2,
		"thm4":     expThm4,
		"thm8":     expThm8,
		"lemma1":   expLemma1,
		"thm3":     expThm3,
		"thm6":     expThm6,
		"thm7":     expThm7,
		"thm9":     expThm9,
		"thm11":    expThm11,
		"fpt":      expFPT,
		"mst":      expMST,
		"sub":      expSubstrates,
		"ablation": expAblation,
	}
	if *exp == "all" {
		for _, id := range []string{"fig1", "fig2", "thm2", "thm4", "thm8", "lemma1",
			"thm3", "thm6", "thm7", "thm9", "thm11", "fpt", "mst", "sub", "ablation"} {
			all[id]()
		}
		return
	}
	f, ok := all[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	f()
}

func header(id, title string) {
	fmt.Printf("\n===== %s: %s =====\n", id, title)
}

// runCounted executes one simulated run on the selected backend and
// folds its cost into the process-wide throughput report. Every
// simulation this command makes must go through here (or through
// verify below) so the rounds/sec summary covers the whole report.
func runCounted(cfg clique.Config, f clique.NodeFunc) (*clique.Result, error) {
	cfg.Backend = backendName
	start := time.Now()
	res, err := clique.Run(cfg, f)
	simTime += time.Since(start)
	if err == nil {
		simRounds += int64(res.Stats.Rounds)
	}
	return res, err
}

// verify is runCounted for nondeterministic verifier runs.
func verify(cfg clique.Config, g *graph.Graph, alg nondet.Algorithm, z nondet.Labelling) (nondet.Verdict, error) {
	cfg.Backend = backendName
	start := time.Now()
	v, err := nondet.RunVerifier(cfg, g, alg, z)
	simTime += time.Since(start)
	if err == nil {
		simRounds += int64(v.Result.Stats.Rounds)
	}
	return v, err
}

// rounds runs f on an n-node clique and returns the round count.
func rounds(n, wpp int, f clique.NodeFunc) int {
	res, err := runCounted(clique.Config{N: n, WordsPerPair: wpp}, f)
	if err != nil {
		log.Fatal(err)
	}
	return res.Stats.Rounds
}

// reportThroughput prints the aggregate simulator cost of the report, so
// BENCH_*.json trajectories can compare engines run to run.
func reportThroughput() {
	if simRounds == 0 || simTime <= 0 {
		return
	}
	fmt.Printf("\nsimulator: %d rounds in %v on the %s backend (%.0f rounds/sec)\n",
		simRounds, simTime.Round(time.Microsecond), backendName,
		float64(simRounds)/simTime.Seconds())
}

// E1 — Figure 1: measured scaling and fitted exponents for the
// implemented problems, checked against the map's implemented bounds.
func expFig1() {
	header("E1 / Figure 1", "measured exponents vs the fine-grained map")
	ns := []int{27, 64, 125, 216}

	type probe struct {
		key  string
		name string
		run  func(n int) int
	}
	probes := []probe{
		{"semiring-mm", "Boolean MM (3D)", func(n int) int {
			g := graph.Gnp(n, 0.5, uint64(n))
			return rounds(n, 8, func(nd *clique.Node) {
				row := matmul.AdjacencyRow(g, nd.ID())
				matmul.Mul3D(nd, matmul.Boolean{}, row, row)
			})
		}},
		{"", "Boolean MM (naive)", func(n int) int {
			g := graph.Gnp(n, 0.5, uint64(n))
			return rounds(n, 8, func(nd *clique.Node) {
				row := matmul.AdjacencyRow(g, nd.ID())
				matmul.MulNaive(nd, matmul.Boolean{}, row, row)
			})
		}},
		{"apsp-w-ud", "APSP w/ud (min,+ squaring)", func(n int) int {
			g := graph.GnpWeighted(n, 0.3, 40, false, uint64(n))
			return rounds(n, 8, func(nd *clique.Node) {
				paths.APSP(nd, g.W[nd.ID()], matmul.Mul3D)
			})
		}},
		{"triangle", "Triangle detection", func(n int) int {
			g := graph.Gnp(n, 0.2, uint64(n))
			return rounds(n, 8, func(nd *clique.Node) {
				subgraph.DetectTriangle(nd, g.Row(nd.ID()))
			})
		}},
		{"k-is", "3-IS detection", func(n int) int {
			g := graph.Gnp(n, 0.6, uint64(n))
			return rounds(n, 8, func(nd *clique.Node) {
				subgraph.DetectIndependentSet(nd, g.Row(nd.ID()), 3)
			})
		}},
		{"k-ds", "3-DS (Theorem 9)", func(n int) int {
			g, _ := graph.PlantedDominatingSet(n, 3, 0.1, uint64(n))
			return rounds(n, 8, func(nd *clique.Node) {
				domset.Find(nd, g.Row(nd.ID()), 3)
			})
		}},
		{"k-vc", "3-VC (Theorem 11)", func(n int) int {
			g, _ := graph.PlantedVertexCover(n, 3, 0.4, uint64(n))
			return rounds(n, 1, func(nd *clique.Node) {
				vcover.Find(nd, g.Row(nd.ID()), 3)
			})
		}},
		{"maxis", "MaxIS (full gather)", func(n int) int {
			g := graph.Gnp(n, 0.92, uint64(n)) // dense: keeps alpha tiny, local solve fast
			return rounds(n, 1, func(nd *clique.Node) {
				gather.MaxIndependentSetSize(nd, g.Row(nd.ID()))
			})
		}},
	}

	m := fgc.Figure1(3)
	fmt.Printf("%-28s", "problem")
	for _, n := range ns {
		fmt.Printf(" %6s", fmt.Sprintf("n=%d", n))
	}
	fmt.Printf(" %8s %10s\n", "fitted", "impl bound")
	for _, p := range probes {
		var rs []int
		fmt.Printf("%-28s", p.name)
		for _, n := range ns {
			r := p.run(n)
			rs = append(rs, r)
			fmt.Printf(" %6d", r)
		}
		fit := fgc.FitExponent(ns, rs)
		bound := "-"
		if prob, ok := m.Get(p.key); ok && p.key != "" {
			bound = fmt.Sprintf("%.3f", prob.ImplUpper)
		}
		fmt.Printf(" %8.3f %10s\n", fit, bound)
	}

	if issues := m.Validate(); len(issues) > 0 {
		fmt.Println("map validation issues:", issues)
	} else {
		fmt.Println("figure-1 map: all", len(m.Relations), "arrows consistent (literature and implemented bounds)")
	}
}

// E2 — Figure 2 / Theorem 10: gadget reduction, exhaustive equivalence,
// in-model simulation overhead.
func expFig2() {
	header("E2 / Figure 2, Theorem 10", "k-IS via k-DS gadget reduction")
	// Exhaustive equivalence at n=4, k=2 over all 64 graphs.
	mism := 0
	for mask := 0; mask < 64; mask++ {
		g := graph.New(4)
		e := 0
		for u := 0; u < 4; u++ {
			for v := u + 1; v < 4; v++ {
				if mask&(1<<e) != 0 {
					g.AddEdge(u, v)
				}
				e++
			}
		}
		r := reduction.ISDS{N: 4, K: 2}
		if graph.HasIndependentSetOfSize(g, 2) != graph.HasDominatingSetOfSize(r.BuildGraph(g), 2) {
			mism++
		}
	}
	fmt.Printf("exhaustive n=4 k=2: %d/64 graphs violate the iff (want 0)\n", mism)

	fmt.Printf("%6s %4s %8s %12s %14s %10s\n", "n", "k", "|G'|", "direct k-DS", "IS-via-DS sim", "overhead")
	for _, n := range []int{6, 8, 10} {
		k := 2
		g := graph.Gnp(n, 0.5, uint64(n)+3)
		r := reduction.ISDS{N: n, K: k}
		direct := rounds(n, 16, func(nd *clique.Node) {
			domset.Find(nd, g.Row(nd.ID()), k)
		})
		sim := rounds(n, 16, func(nd *clique.Node) {
			reduction.FindISViaDS(nd, g.Row(nd.ID()), k)
		})
		fmt.Printf("%6d %4d %8d %12d %14d %9.1fx\n",
			n, k, r.Total(), direct, sim, float64(sim)/float64(direct))
	}
	fmt.Println("overhead stays bounded as n grows (Theorem 10: O(k^{2 delta + 4}) factor)")
}

// E3 — Theorem 2: the counting tables behind the time hierarchy.
func expThm2() {
	header("E3 / Theorem 2", "protocol counting and the time hierarchy")
	fmt.Printf("%8s %6s %6s %14s\n", "n", "b", "L", "max hard t")
	for _, n := range []int{64, 256, 1024} {
		b := clique.WordBits(n)
		for _, Lfac := range []int{2, 8, 32} {
			L := Lfac * b
			fmt.Printf("%8d %6d %6d %14d\n", n, b, L, counting.MaxHardRounds(n, b, L))
		}
	}
	fmt.Println("\nTheorem 2 witnesses (L = T log n; hard function avoids T/2-round protocols):")
	fmt.Printf("%8s %8s %8s %8s %8s\n", "n", "T(n)", "L", "valid", "excluded")
	n := 1 << 14
	for Tn := 2; Tn*4*14 < n; Tn *= 4 {
		w := counting.Theorem2Params(n, Tn)
		fmt.Printf("%8d %8d %8d %8v %8d\n", n, Tn, w.Params.L, w.Valid, w.LowerExcluded)
	}
}

// E6 — Theorem 4: nondeterministic hierarchy tables.
func expThm4() {
	header("E6 / Theorem 4", "nondeterministic time hierarchy parameters")
	fmt.Printf("%8s %8s %10s %10s %8s %8s\n", "n", "T(n)", "M (bits)", "L", "ineq", "valid")
	n := 1 << 12
	for Tn := 4; Tn*4*12 < n; Tn *= 2 {
		w := counting.Theorem4Params(n, Tn)
		fmt.Printf("%8d %8d %10d %10d %8v %8v\n",
			n, Tn, w.Params.M, w.Params.L, w.PaperInequality, w.Valid)
	}
}

// E9 — Theorem 8: logarithmic hierarchy separation parameters.
func expThm8() {
	header("E9 / Theorem 8", "no level of the logarithmic hierarchy holds everything")
	n := 256
	Tn := 2 * n
	fmt.Printf("T(n) = 2n = %d, L = T^2 log n = %d\n", Tn, Tn*Tn*clique.WordBits(n))
	fmt.Printf("%6s %14s %14s %8s\n", "k", "lhs (bits)", "rhs (bits)", "valid")
	for _, k := range []int{1, 2, 4, 16, 64, 512} {
		w := counting.Theorem8Params(n, k, Tn)
		fmt.Printf("%6d %14d %14d %8v\n", k, w.PaperLH, w.PaperRH, w.Valid)
	}
}

// E4 — Lemma 1 made constructive.
func expLemma1() {
	header("E4 / Lemma 1", "exhaustive micro diagonalisation at (n,b,t) = (2,1,1)")
	for _, L := range []int{1, 2} {
		r := counting.Diagonalise(L)
		fmt.Printf("L=%d: %d/%d functions realisable, %d valid protocols, Lemma-1 log2 bound %d\n",
			L, r.Realised, r.TotalFunctions, r.ValidProtocols, r.Lemma1BoundLog2)
		if r.HardExists {
			fmt.Printf("      lexicographically-first hard function: table %#04x (weight %d), verified=%v\n",
				r.FirstHard, counting.HammingWeight(r.FirstHard), counting.VerifyHard(r.FirstHard, L))
		} else {
			fmt.Println("      no hard function (1 bit of bandwidth carries the whole input)")
		}
	}
}

// E5 — Theorem 3: transcript certificates.
func expThm3() {
	header("E5 / Theorem 3", "normal form: certificates become transcripts")
	fmt.Printf("%6s %16s %16s %12s %10s\n", "n", "orig bits/node", "transcript bits", "bound Tnlogn", "B accepts")
	for _, n := range []int{6, 10, 16, 24} {
		g, _ := graph.PlantedColoring(n, 3, 0.7, uint64(n))
		alg := nondet.KColoringVerifier(3)
		z := nondet.KColoringProver(g, 3)
		if z == nil {
			continue
		}
		// TranscriptCertificate, inlined through verify so the
		// accepting run is part of the throughput report.
		accepting, err := verify(clique.Config{N: n, RecordTranscript: true}, g, alg, z)
		if err != nil {
			log.Fatal(err)
		}
		if !accepting.Accepted {
			log.Fatal("nondet: A rejected the labelling; no certificate to extract")
		}
		certs := make(nondet.Labelling, n)
		for v, tr := range accepting.Result.Transcripts {
			certs[v] = nondet.EncodeTranscript(tr, n)
		}
		b := nondet.NormalForm(alg, 1, nondet.WordSpace(3))
		verdict, err := verify(clique.Config{N: n}, g, b, certs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d %16d %16d %12d %10v\n",
			n, z.SizeBits(n), certs.SizeBits(n), 1*n*clique.WordBits(n), verdict.Accepted)
	}
	fmt.Println("transcript size grows as Theta(T n log n); the original labels were O(log n)")
}

// E7 — Theorem 6: edge labelling problems.
func expThm6() {
	header("E7 / Theorem 6", "NCLIQUE(1) compiled to edge labelling problems")
	fmt.Printf("%6s %14s %12s\n", "n", "verify rounds", "accepted")
	for _, n := range []int{5, 8, 12} {
		g, _ := graph.PlantedColoring(n, 3, 0.7, uint64(n)+40)
		alg := nondet.KColoringVerifier(3)
		z := nondet.KColoringProver(g, 3)
		verdict, err := verify(clique.Config{N: n, RecordTranscript: true}, g, alg, z)
		if err != nil || !verdict.Accepted {
			log.Fatal("accepting run failed")
		}
		// The compiled problem's labels and one-round verification.
		rcount := rounds(n, 1, func(nd *clique.Node) {
			// labels built centrally from the recorded transcripts
			labels := corelabels(verdict, n, 3)
			coreVerify(nd, g, labels)
		})
		fmt.Printf("%6d %14d %12v\n", n, rcount, verdict.Accepted)
	}
	fmt.Println("verification rounds stay constant in n: the canonical family is NCLIQUE(1)-checkable")
}

// E8 — Theorem 7: the Sigma_2 collapse protocol.
func expThm7() {
	header("E8 / Theorem 7", "unlimited hierarchy collapses to Sigma_2")
	for _, n := range []int{3, 4} {
		yes := graph.Complete(n)
		no := graph.Path(n)
		alg := hierarchy.SigmaTwoUniversal(graph.HasTriangle)
		run := func(g *graph.Graph, z1, z2 []([]uint64)) bool {
			bits := make([]bool, g.N)
			_, err := runCounted(clique.Config{N: g.N}, func(nd *clique.Node) {
				bits[nd.ID()] = alg(nd, g.Row(nd.ID()), [][]uint64{z1[nd.ID()], z2[nd.ID()]})
			})
			if err != nil {
				log.Fatal(err)
			}
			for _, b := range bits {
				if !b {
					return false
				}
			}
			return true
		}
		honest := hierarchy.HonestGuess(yes)
		rejected := 0
		for idx := 0; idx < n*n; idx++ {
			z2 := hierarchy.CatchingChallenge(n, 0, idx/n, idx%n)
			if !run(yes, honest, z2) {
				rejected++
			}
		}
		lying := hierarchy.HonestGuess(no)
		lying[0] = hierarchy.EncodeGuess(yes)
		caught := 0
		for idx := 0; idx < n*n; idx++ {
			z2 := hierarchy.CatchingChallenge(n, 0, idx/n, idx%n)
			if !run(no, lying, z2) {
				caught++
			}
		}
		fmt.Printf("n=%d: honest yes-instance rejected by %d/%d challenges (want 0); lying prover caught by %d/%d (want >0)\n",
			n, rejected, n*n, caught, n*n)
	}
}

// E10 — Theorem 9: k-DS scaling.
func expThm9() {
	header("E10 / Theorem 9", "k-dominating set in O(n^{1-1/k}) rounds")
	ns := []int{27, 64, 125, 216}
	for _, k := range []int{2, 3} {
		var rs []int
		fmt.Printf("k=%d rounds:", k)
		for _, n := range ns {
			g, _ := graph.PlantedDominatingSet(n, k, 0.1, uint64(n))
			r := rounds(n, 8, func(nd *clique.Node) {
				domset.Find(nd, g.Row(nd.ID()), k)
			})
			rs = append(rs, r)
			fmt.Printf(" %5d", r)
		}
		fmt.Printf("   fitted delta %.3f (bound %.3f)\n",
			fgc.FitExponent(ns, rs), 1-1/float64(k))
	}
}

// E11 — Theorem 11: k-VC rounds depend only on k.
func expThm11() {
	header("E11 / Theorem 11", "k-vertex cover in O(k) rounds, independent of n")
	fmt.Printf("%8s", "k\\n")
	ns := []int{16, 32, 64, 128}
	for _, n := range ns {
		fmt.Printf(" %6d", n)
	}
	fmt.Println()
	for _, k := range []int{2, 4, 8} {
		fmt.Printf("%8d", k)
		for _, n := range ns {
			g, _ := graph.PlantedVertexCover(n, k, 0.4, uint64(n)+uint64(k))
			fmt.Printf(" %6d", rounds(n, 1, func(nd *clique.Node) {
				vcover.Find(nd, g.Row(nd.ID()), k)
			}))
		}
		fmt.Printf("   (want %d = 1+k everywhere)\n", 1+k)
	}
}

// E12 — the Section 7.3 FPT contrast table.
func expFPT() {
	header("E12 / Section 7.3", "fixed-parameter landscape: k-VC vs k-IS vs k-DS")
	k := 3
	fmt.Printf("%8s %10s %10s %10s\n", "n", "k-VC", "k-IS", "k-DS")
	for _, n := range []int{27, 64, 125} {
		gv, _ := graph.PlantedVertexCover(n, k, 0.4, uint64(n))
		gi, _ := graph.PlantedIndependentSet(n, k, 0.5, uint64(n)+1)
		gd, _ := graph.PlantedDominatingSet(n, k, 0.1, uint64(n)+2)
		fmt.Printf("%8d %10d %10d %10d\n", n,
			rounds(n, 1, func(nd *clique.Node) { vcover.Find(nd, gv.Row(nd.ID()), k) }),
			rounds(n, 8, func(nd *clique.Node) { subgraph.DetectIndependentSet(nd, gi.Row(nd.ID()), k) }),
			rounds(n, 8, func(nd *clique.Node) { domset.Find(nd, gd.Row(nd.ID()), k) }))
	}
}

// Extension — deterministic MST baseline (paper conclusions).
func expMST() {
	header("extension / MST", "deterministic Boruvka at 2 log n + O(1) rounds")
	fmt.Printf("%8s %10s %12s %12s\n", "n", "rounds", "forest wt", "oracle wt")
	for _, n := range []int{16, 64, 256} {
		g := graph.GnpWeighted(n, 0.3, 60, false, uint64(n))
		var wt int64
		r := rounds(n, 1, func(nd *clique.Node) {
			wt = mst.Weight(mst.Find(nd, g.W[nd.ID()]))
		})
		oracle, _ := mst.KruskalOracle(g)
		fmt.Printf("%8d %10d %12d %12d\n", n, r, wt, oracle)
	}
	fmt.Println("the conclusions' randomized-gap example: randomized algorithms do O(1);")
	fmt.Println("this deterministic baseline needs Theta(log n) Boruvka phases")
}

// E13 — substrate validation.
func expSubstrates() {
	header("E13 / substrates", "routing, sorting, matrix multiplication")
	fmt.Println("routing rounds vs per-node load (n=32, uniform destinations):")
	for _, load := range []int{8, 16, 32, 64} {
		r := rounds(32, 4, func(nd *clique.Node) {
			var ps []routing.Packet
			for i := 0; i < load; i++ {
				ps = append(ps, routing.Packet{Dst: (nd.ID() + i + 1) % 32, Payload: []uint64{uint64(i)}})
			}
			routing.Route(nd, ps, 1, 9)
		})
		fmt.Printf("  load %3d: %4d rounds\n", load, r)
	}
	fmt.Println("sorting rounds vs keys/node (n=16, keys < n^2):")
	for _, kn := range []int{4, 8, 16} {
		r := rounds(16, 4, func(nd *clique.Node) {
			keys := make([]uint64, kn)
			for i := range keys {
				keys[i] = uint64((nd.ID()*31 + i*17) % 256)
			}
			routing.Sort(nd, keys, 256)
		})
		fmt.Printf("  %3d keys/node: %4d rounds\n", kn, r)
	}
	fmt.Println("matrix multiplication, naive vs 3D:")
	for _, n := range []int{27, 64, 125, 216} {
		g := graph.Gnp(n, 0.5, uint64(n))
		naive := rounds(n, 8, func(nd *clique.Node) {
			row := matmul.AdjacencyRow(g, nd.ID())
			matmul.MulNaive(nd, matmul.Boolean{}, row, row)
		})
		td := rounds(n, 8, func(nd *clique.Node) {
			row := matmul.AdjacencyRow(g, nd.ID())
			matmul.Mul3D(nd, matmul.Boolean{}, row, row)
		})
		fmt.Printf("  n=%4d: naive %5d rounds, 3D %5d rounds\n", n, naive, td)
	}
}

// Ablation — router choice on a skewed instance.
func expAblation() {
	header("ablation", "balanced router vs direct delivery on a skewed instance")
	const n, L = 16, 96
	mk := func(balanced bool) int {
		return rounds(n, 4, func(nd *clique.Node) {
			var ps []routing.Packet
			if nd.ID() == 0 {
				for i := 0; i < L; i++ {
					ps = append(ps, routing.Packet{Dst: 1, Payload: []uint64{uint64(i)}})
				}
			}
			if balanced {
				routing.Route(nd, ps, 1, 5)
			} else {
				routing.RouteDirect(nd, ps, 1)
			}
		})
	}
	fmt.Printf("node 0 sends %d packets to node 1 (n=%d): direct %d rounds, balanced %d rounds\n",
		L, n, mk(false), mk(true))
}

// corelabels / coreVerify adapt the Theorem 6 compilation for the
// harness without pulling package core's full surface into main.
func corelabels(verdict nondet.Verdict, n, k int) [][]uint64 {
	labels := make([][]uint64, n)
	base := uint64(k) + 2
	for u := 0; u < n; u++ {
		labels[u] = make([]uint64, n)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			var lab uint64
			if s := verdict.Result.Transcripts[u].Rounds[0].Sent[v]; len(s) == 1 {
				lab += s[0] + 1
			}
			if s := verdict.Result.Transcripts[v].Rounds[0].Sent[u]; len(s) == 1 {
				lab += (s[0] + 1) * base
			}
			labels[u][v] = lab
			labels[v][u] = lab
		}
	}
	return labels
}

func coreVerify(nd *clique.Node, g *graph.Graph, labels [][]uint64) {
	n := nd.N()
	me := nd.ID()
	for v := 0; v < n; v++ {
		if v != me {
			nd.Send(v, labels[me][v])
		}
	}
	nd.Tick()
	for v := 0; v < n; v++ {
		if v == me {
			continue
		}
		if w := nd.Recv(v); len(w) != 1 || w[0] != labels[me][v] {
			nd.Fail("edge label mismatch with %d", v)
		}
	}
}
