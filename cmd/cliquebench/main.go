// Command cliquebench regenerates the experiments of EXPERIMENTS.md —
// one per figure/theorem of the paper — from the internal/exp registry.
// It is a thin driver: experiment list, flag help, and validation all
// derive from the registry, so adding an experiment there is the whole
// job.
//
// Usage:
//
//	cliquebench                               # full text report
//	cliquebench -exp fig1,thm9                # a subset
//	cliquebench -list -format=json            # registry listing, no runs
//	cliquebench -format=json -parallel=4      # machine-readable report
//	cliquebench -format=json -timing          # + measured rounds/sec
//	cliquebench -compare BENCH_baseline.json  # gate against a baseline
//	cliquebench -cpuprofile cpu.pprof         # profile the hot paths
//
// JSON output without -timing is deterministic: bit-identical across
// repeat runs and across -parallel settings. With -timing it carries a
// throughput block, two allocation probes (canonical exchange, packed
// boolean MM), the trace-off throughput probe, and the batched
// throughput probe (a batch of exchanges through one engine execution
// vs the same runs serial), the figures the BENCH_*.json perf
// trajectory and the CI regression gate track. -compare warns on
// throughput and model-cost drift and FAILS (exit 1) when a probe's
// allocs/op regresses beyond -alloc-regress-fail, the trace-off probe's
// rounds/sec drops beyond -trace-regress-fail (the zero-cost-when-off
// gate on the trace plane), or the batched probe's aggregate
// sim-rounds/sec drops beyond -batch-regress-fail (the throughput gate
// on the batched execution plane).
//
// -trace=FILE runs every experiment with the round-level tracer
// attached, writes a Chrome trace-event file to FILE (open it in
// Perfetto: https://ui.perfetto.dev), and attaches the cliquetrace/v1
// summary block to each experiment's JSON result. Traced envelopes
// embed wall-clock data and are therefore not bit-reproducible;
// leaving -trace off leaves every output byte exactly as before.
//
// -cpuprofile and -memprofile write pprof profiles of the run (the heap
// profile is captured after a final GC), so hot-path work on the
// simulator is measurable without ad-hoc patches:
//
//	go tool pprof cliquebench cpu.pprof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"

	"repro/internal/clique"
	"repro/internal/exp"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	expFlag := flag.String("exp", "all", exp.Help())
	backend := flag.String("backend", "lockstep",
		"execution backend ("+strings.Join(clique.Backends(), ", ")+")")
	format := flag.String("format", "text", "output format (text, json)")
	parallel := flag.Int("parallel", 1, "worker-pool width; experiments are independent and results keep registry order")
	quick := flag.Bool("quick", false, "reduced instance sizes (CI smoke, tests)")
	timing := flag.Bool("timing", false, "attach measured simulator throughput to JSON output (text always reports it)")
	repeats := flag.Int("repeats", 1, "timed registry runs; >1 attaches a rounds/sec distribution to the throughput block (variance-aware baselines)")
	compare := flag.String("compare", "", "baseline report JSON to compare this run against")
	threshold := flag.Float64("regress-threshold", 0.25, "rounds/sec regression fraction that triggers a -compare warning when the baseline has no repeat distribution")
	ciFactor := flag.Float64("ci-factor", exp.DefaultCIFactor, "warn when a metric drifts beyond this many baseline CI half-widths (variance-aware baselines)")
	failCIFactor := flag.Float64("fail-ci-factor", 2*exp.DefaultCIFactor, "fail (exit 1) when a probe drifts beyond this many baseline CI half-widths")
	allocFail := flag.Float64("alloc-regress-fail", 0.25, "allocs/op probe regression fraction beyond which -compare fails (exit 1) when the baseline has no distribution")
	traceFile := flag.String("trace", "", "run with the round-level tracer and write a Chrome trace-event file (Perfetto) to this path")
	traceFail := flag.Float64("trace-regress-fail", 0.01, "trace-off probe throughput regression fraction beyond which -compare fails (exit 1) when the baseline has no distribution")
	batchFail := flag.Float64("batch-regress-fail", 0.25, "batched probe throughput regression fraction beyond which -compare fails (exit 1) when the baseline has no distribution")
	list := flag.Bool("list", false, "print the experiment registry (id, artefact, title) and exit without running anything")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (after a final GC) to this file")
	flag.Parse()
	// run carries the exit code out so the profile-writing defers below
	// execute before the process exits.
	code := func() int {
		if *cpuprofile != "" {
			f, err := os.Create(*cpuprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				f.Close()
				return 1
			}
			defer func() {
				pprof.StopCPUProfile()
				f.Close()
			}()
		}
		if *memprofile != "" {
			defer func() {
				f, err := os.Create(*memprofile)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					return
				}
				defer f.Close()
				runtime.GC()
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintln(os.Stderr, err)
				}
			}()
		}
		if *backend == "" {
			*backend = clique.DefaultBackend
		}
		if *format != "text" && *format != "json" {
			fmt.Fprintf(os.Stderr, "unknown format %q (text, json)\n", *format)
			return 2
		}
		if *list {
			if err := writeList(os.Stdout, *format); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			return 0
		}

		ids, err := exp.Resolve(*expFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}

		opts := exp.Options{Backend: *backend, Quick: *quick, Parallel: *parallel}
		// -trace: collect every experiment's RunTraces keyed by id (the
		// sink runs on worker goroutines under -parallel, hence the
		// mutex) and attach the cliquetrace/v1 block to JSON results.
		var traceMu sync.Mutex
		traced := map[string][]*trace.RunTrace{}
		if *traceFile != "" {
			opts.Trace = true
			opts.TraceSink = func(id string, traces []*trace.RunTrace) {
				traceMu.Lock()
				traced[id] = traces
				traceMu.Unlock()
			}
		}
		results, tim, err := exp.Run(ids, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		// -repeats: rerun the timed registry and attach the rounds/sec
		// distribution. The deterministic results come from the first
		// repeat (they are identical across repeats by contract); only
		// the timing block gains the extra samples.
		var thrDist *stats.Summary
		if *repeats > 1 && (*timing || *compare != "") {
			samples := []float64{tim.RoundsPerSec()}
			for i := 1; i < *repeats; i++ {
				_, timR, err := exp.Run(ids, opts)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					return 1
				}
				samples = append(samples, timR.RoundsPerSec())
			}
			d := stats.Summarize(samples, 0)
			thrDist = &d
		}
		attachDist := func(r *exp.Report) *exp.Report {
			if thrDist != nil && r.Throughput != nil {
				r.Throughput.Dist = thrDist
				r.Throughput.RoundsPerSec = thrDist.Mean
			}
			return r
		}
		if *traceFile != "" {
			if err := writeChromeTrace(*traceFile, ids, traced); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		}

		// The allocation probes need a quiet process, so they run after
		// the worker pool has drained. Like Throughput, they ride the
		// -timing opt-in (without it the report stays deterministic) —
		// but only where something consumes them: the JSON envelope or
		// -compare.
		var bench, benchPacked, benchTraceOff, benchBatched *exp.BenchProbe
		if *timing && (*format == "json" || *compare != "") {
			if bench, err = exp.MeasureBenchProbe(*backend); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			if benchPacked, err = exp.MeasurePackedProbe(*backend); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			if benchTraceOff, err = exp.MeasureTraceOffProbe(*backend); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			if benchBatched, err = exp.MeasureBatchedProbe(*backend); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		}

		switch *format {
		case "text":
			// The text report always carries the throughput summary, as
			// it always has.
			attachDist(exp.NewReport(*backend, opts, results, tim, true)).WriteText(os.Stdout)
		case "json":
			report := attachDist(exp.NewReport(*backend, opts, results, tim, *timing))
			report.Bench = bench
			report.BenchPacked = benchPacked
			report.BenchTraceOff = benchTraceOff
			report.BenchBatched = benchBatched
			if err := report.WriteJSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		}

		if *compare != "" {
			current := attachDist(exp.NewReport(*backend, opts, results, tim, true))
			current.Bench = bench
			current.BenchPacked = benchPacked
			current.BenchTraceOff = benchTraceOff
			current.BenchBatched = benchBatched
			warnGate := exp.Gate{CIFactor: *ciFactor, Frac: *threshold}
			allocGate := exp.Gate{CIFactor: *failCIFactor, Frac: *allocFail}
			traceGate := exp.Gate{CIFactor: *failCIFactor, Frac: *traceFail}
			batchGate := exp.Gate{CIFactor: *failCIFactor, Frac: *batchFail}
			if err := compareBaseline(*compare, current, warnGate, allocGate, traceGate, batchGate); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		}
		return 0
	}()
	os.Exit(code)
}

// writeList prints the registry without running anything. The JSON
// shape is exp.Info — the same one GET /v1/experiments of the cliqued
// service returns and cmd/genexperiments regenerates the
// EXPERIMENTS.md table from.
func writeList(w io.Writer, format string) error {
	infos := exp.Infos()
	if format == "json" {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(map[string]any{"experiments": infos})
	}
	wid, wart := 0, 0
	for _, e := range infos {
		wid, wart = max(wid, len(e.ID)), max(wart, len(e.Artefact))
	}
	for _, e := range infos {
		if _, err := fmt.Fprintf(w, "%-*s  %-*s  %s\n", wid, e.ID, wart, e.Artefact, e.Title); err != nil {
			return err
		}
	}
	return nil
}

// compareBaseline reports regressions against the stored baseline to
// stderr in GitHub Actions annotation form. Throughput, model-cost and
// missing-metric findings stay warn-only; an allocation-probe,
// trace-off, or batched-throughput regression beyond its fatal gate is
// an error annotation and fails the run — a hot path that started
// allocating, a disabled tracer that started costing, or a batched
// plane that lost its speedup is a bug, not a judgement call.
func compareBaseline(path string, current *exp.Report, warnGate, allocGate, traceGate, batchGate exp.Gate) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("compare: %w", err)
	}
	var baseline exp.Report
	if err := json.Unmarshal(data, &baseline); err != nil {
		return fmt.Errorf("compare: parsing %s: %w", path, err)
	}
	warns := exp.Compare(&baseline, current, warnGate)
	// The fatal gates re-check the probes at the caller's gates, so a
	// fail gate tighter than Compare's warn gate still bites.
	fatal := exp.AllocRegressions(&baseline, current, allocGate)
	fatal = append(fatal, exp.TraceOffRegressions(&baseline, current, traceGate)...)
	fatal = append(fatal, exp.BatchedRegressions(&baseline, current, batchGate)...)
	if len(warns) == 0 && len(fatal) == 0 {
		fmt.Fprintf(os.Stderr, "compare: no regressions vs %s\n", path)
		return nil
	}
	isFatal := func(w exp.Regression) bool {
		for _, f := range fatal {
			if f.What == w.What {
				return true
			}
		}
		return false
	}
	for _, f := range fatal {
		fmt.Fprintf(os.Stderr, "::error title=benchmark regression::%s\n", f)
	}
	for _, w := range warns {
		if (w.Kind == exp.RegressAllocs || w.Kind == exp.RegressTraceOff || w.Kind == exp.RegressBatched) && isFatal(w) {
			continue // already reported as an error
		}
		fmt.Fprintf(os.Stderr, "::warning title=benchmark regression::%s\n", w)
	}
	if len(fatal) > 0 {
		return fmt.Errorf("compare: %d probe regression(s) beyond the fail thresholds vs %s", len(fatal), path)
	}
	return nil
}

// writeChromeTrace serialises the collected traces in the requested
// experiment order — not sink-completion order, which -parallel would
// scramble — so the Perfetto process list reads like the report.
func writeChromeTrace(path string, ids []string, traced map[string][]*trace.RunTrace) error {
	var all []*trace.RunTrace
	for _, id := range ids {
		all = append(all, traced[id]...)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := trace.WriteChrome(f, all); err != nil {
		f.Close()
		return fmt.Errorf("trace: writing %s: %w", path, err)
	}
	return f.Close()
}
