// Command cliqued is the long-running congested clique simulation
// service: an HTTP/JSON daemon over the internal/exp experiment
// registry and the internal/clique simulator (package serve has the
// full endpoint and architecture documentation).
//
// Usage:
//
//	cliqued                             # serve on :8347
//	cliqued -addr :9000 -workers 4      # explicit socket and pool width
//	cliqued -backend goroutine          # default engine for requests
//
// Quickstart against a running daemon:
//
//	curl localhost:8347/healthz
//	curl localhost:8347/v1/experiments
//	curl -X POST localhost:8347/v1/experiments/fig1:run -d '{"quick":true}'
//	curl -X POST localhost:8347/v1/run -d '{"algorithm":"triangle","n":64,"seed":7}'
//	curl -N 'localhost:8347/v1/experiments/thm9:run?stream=sse' -X POST
//
// SIGINT/SIGTERM drain gracefully: the listener stops, queued and
// running jobs finish (up to -drain), then the process exits.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"slices"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8347", "listen address")
	workers := flag.Int("workers", 0, "job worker pool width (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "bounded job queue depth (full queue answers 503)")
	cacheEntries := flag.Int("cache", 256, "completed-result cache capacity (FIFO eviction)")
	backend := flag.String("backend", "lockstep",
		"default execution backend for requests that name none ("+strings.Join(serve.Backends(), ", ")+")")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown deadline for in-flight jobs")
	batchWidth := flag.Int("batch-width", 1,
		"max queued ad-hoc jobs coalesced into one batched engine execution (1 = off)")
	flag.Parse()

	// Catch an operator typo at boot, not as a 400 on every request.
	if !slices.Contains(serve.Backends(), *backend) {
		log.Fatalf("cliqued: unknown -backend %q (have: %s)", *backend, strings.Join(serve.Backends(), ", "))
	}

	s := serve.New(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cacheEntries,
		DefaultBackend: *backend,
		BatchWidth:     *batchWidth,
	})
	// Make the service counters visible to standard expvar tooling as
	// well as at the service's own /metrics endpoint.
	expvar.Publish("cliqued", s.Vars())

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	workersLabel := "auto"
	if *workers > 0 {
		workersLabel = fmt.Sprint(*workers)
	}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("cliqued: serving on %s (workers=%s, queue=%d, cache=%d, backend=%s, batch-width=%d)",
			*addr, workersLabel, *queue, *cacheEntries, *backend, *batchWidth)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		log.Fatalf("cliqued: %v", err)
	case <-ctx.Done():
	}

	log.Printf("cliqued: shutting down (drain %v)", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("cliqued: http shutdown: %v", err)
	}
	if err := s.Shutdown(drainCtx); err != nil {
		log.Printf("cliqued: job drain: %v", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("cliqued: listener: %v", err)
	}
	fmt.Println("cliqued: bye")
}
