// Command cliqued is the long-running congested clique simulation
// service: an HTTP/JSON daemon over the internal/exp experiment
// registry and the internal/clique simulator (package serve has the
// full endpoint and architecture documentation).
//
// Usage:
//
//	cliqued                             # serve on :8347
//	cliqued -addr :9000 -workers 4      # explicit socket and pool width
//	cliqued -backend goroutine          # default engine for requests
//
// Quickstart against a running daemon:
//
//	curl localhost:8347/healthz
//	curl localhost:8347/v1/experiments
//	curl -X POST localhost:8347/v1/experiments/fig1:run -d '{"quick":true}'
//	curl -X POST localhost:8347/v1/run -d '{"algorithm":"triangle","n":64,"seed":7}'
//	curl -N 'localhost:8347/v1/experiments/thm9:run?stream=sse' -X POST
//
// SIGINT/SIGTERM drain gracefully: the listener stops, queued and
// running jobs finish (up to -drain), pending ledger appends are
// fsync'd, then the process exits.
//
// Durability: -ledger names an append-only, hash-chained result store;
// computed envelopes survive restarts and SIGKILL (the file recovers
// its committed prefix on reopen). -verify-ledger scans a ledger file
// offline and exits. -job-timeout caps every job's wall budget (504 on
// overrun). CLIQUE_FAULTS, when set, installs the deterministic fault
// plan at boot — chaos testing only; a malformed spec is fatal.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"slices"
	"strings"
	"syscall"
	"time"

	"repro/internal/fault"
	"repro/internal/ledger"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8347", "listen address")
	workers := flag.Int("workers", 0, "job worker pool width (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "bounded job queue depth (full queue answers 503)")
	cacheEntries := flag.Int("cache", 256, "completed-result cache capacity (FIFO eviction)")
	backend := flag.String("backend", "lockstep",
		"default execution backend for requests that name none ("+strings.Join(serve.Backends(), ", ")+")")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown deadline for in-flight jobs")
	batchWidth := flag.Int("batch-width", 1,
		"max queued ad-hoc jobs coalesced into one batched engine execution (1 = off)")
	ledgerPath := flag.String("ledger", "",
		"durable result ledger file (empty = no persistence); computed envelopes survive restarts")
	jobTimeout := flag.Duration("job-timeout", 0,
		"per-job wall-clock budget cap, 0 = none (overrun answers 504; requests may shrink via timeout_ms)")
	verifyLedger := flag.String("verify-ledger", "",
		"scan the named ledger file read-only, print its integrity report, and exit")
	flag.Parse()

	if *verifyLedger != "" {
		os.Exit(runVerifyLedger(*verifyLedger))
	}

	// Catch operator typos at boot, not as a 400 on every request — and
	// a malformed CLIQUE_FAULTS spec before it silently runs no faults.
	if !slices.Contains(serve.Backends(), *backend) {
		log.Fatalf("cliqued: unknown -backend %q (have: %s)", *backend, strings.Join(serve.Backends(), ", "))
	}
	if err := fault.EnvError(); err != nil {
		log.Fatalf("cliqued: %v", err)
	}
	if plan := fault.Active(); plan != nil {
		log.Printf("cliqued: WARNING: fault injection active (%d clauses from $CLIQUE_FAULTS)", len(plan.Counts()))
	}

	var led *ledger.Ledger
	if *ledgerPath != "" {
		var stats ledger.OpenStats
		var err error
		led, stats, err = ledger.Open(*ledgerPath)
		if err != nil {
			log.Fatalf("cliqued: open ledger: %v", err)
		}
		defer led.Close()
		suffix := ""
		if stats.TruncatedBytes > 0 {
			suffix = fmt.Sprintf(", truncated %d torn tail bytes", stats.TruncatedBytes)
		}
		log.Printf("cliqued: ledger %s: %d records recovered%s", *ledgerPath, stats.Records, suffix)
	}

	s := serve.New(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cacheEntries,
		DefaultBackend: *backend,
		BatchWidth:     *batchWidth,
		JobTimeout:     *jobTimeout,
		Ledger:         led,
	})
	// Make the service counters visible to standard expvar tooling as
	// well as at the service's own /metrics endpoint.
	expvar.Publish("cliqued", s.Vars())

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	workersLabel := "auto"
	if *workers > 0 {
		workersLabel = fmt.Sprint(*workers)
	}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("cliqued: serving on %s (workers=%s, queue=%d, cache=%d, backend=%s, batch-width=%d)",
			*addr, workersLabel, *queue, *cacheEntries, *backend, *batchWidth)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		log.Fatalf("cliqued: %v", err)
	case <-ctx.Done():
	}

	log.Printf("cliqued: shutting down (drain %v)", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("cliqued: http shutdown: %v", err)
	}
	if err := s.Shutdown(drainCtx); err != nil {
		log.Printf("cliqued: job drain: %v", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("cliqued: listener: %v", err)
	}
	fmt.Println("cliqued: bye")
}

// runVerifyLedger is the -verify-ledger mode: scan, print the report
// as JSON, exit 0 if the whole file verifies (no torn tail), 1 if a
// torn tail was found, 2 on a broken chain or unreadable file. The
// smoke scripts key off these exit codes.
func runVerifyLedger(path string) int {
	rep, err := ledger.Verify(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cliqued: verify-ledger: %v\n", err)
		return 2
	}
	out, _ := json.MarshalIndent(rep, "", "  ")
	fmt.Println(string(out))
	if !rep.OK {
		return 1
	}
	return 0
}
