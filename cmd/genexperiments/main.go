// Command genexperiments regenerates the experiment table of
// EXPERIMENTS.md from the internal/exp registry, so the document can
// never drift from the code: the table between the BEGIN/END GENERATED
// markers is owned by this tool (the same listing `cliquebench -list`
// prints), and CI runs `genexperiments -check` to fail the build when
// the committed file does not match the registry.
//
// Usage:
//
//	go run ./cmd/genexperiments           # rewrite EXPERIMENTS.md in place
//	go run ./cmd/genexperiments -check    # verify, exit 1 on drift
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exp"
)

const (
	beginMarker = "<!-- BEGIN GENERATED EXPERIMENT TABLE (go run ./cmd/genexperiments; do not edit by hand) -->"
	endMarker   = "<!-- END GENERATED EXPERIMENT TABLE -->"
)

// table renders the registry as the generated markdown block.
func table() string {
	var sb strings.Builder
	sb.WriteString(beginMarker)
	sb.WriteString("\n| cliquebench `-exp` | paper artefact | title |\n")
	sb.WriteString("|--------------------|----------------|-------|\n")
	for _, e := range exp.Infos() {
		fmt.Fprintf(&sb, "| `%s` | %s | %s |\n", e.ID, e.Artefact, e.Title)
	}
	sb.WriteString(endMarker)
	return sb.String()
}

func main() {
	file := flag.String("file", "EXPERIMENTS.md", "markdown file holding the generated block")
	check := flag.Bool("check", false, "verify the committed file matches the registry instead of rewriting it")
	flag.Parse()

	data, err := os.ReadFile(*file)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	text := string(data)
	begin := strings.Index(text, beginMarker)
	end := strings.Index(text, endMarker)
	if begin < 0 || end < 0 || end < begin {
		fmt.Fprintf(os.Stderr, "genexperiments: %s has no generated block (markers missing or out of order)\n", *file)
		os.Exit(1)
	}
	updated := text[:begin] + table() + text[end+len(endMarker):]

	if *check {
		if updated != text {
			fmt.Fprintf(os.Stderr,
				"genexperiments: %s is stale relative to the internal/exp registry.\nRun: go run ./cmd/genexperiments\n", *file)
			os.Exit(1)
		}
		fmt.Printf("genexperiments: %s matches the registry (%d experiments)\n", *file, len(exp.All()))
		return
	}
	if updated == text {
		fmt.Printf("genexperiments: %s already up to date\n", *file)
		return
	}
	if err := os.WriteFile(*file, []byte(updated), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("genexperiments: rewrote the experiment table in %s (%d experiments)\n", *file, len(exp.All()))
}
