#!/usr/bin/env bash
# lint-docs.sh — documentation lint, run by the CI docs job.
#
# Enforces that every internal/* package keeps its package comment in a
# dedicated doc.go: present, named after the package, and substantive
# (not a one-line stub), with no competing package comment in any other
# file of the package. This is what keeps `go doc ./internal/...`
# useful everywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
for dir in internal/*/; do
  pkg=$(basename "$dir")
  doc="$dir/doc.go"
  if [ ! -f "$doc" ]; then
    echo "docs lint: $dir is missing doc.go" >&2
    fail=1
    continue
  fi
  if ! grep -q "^// Package $pkg " "$doc"; then
    echo "docs lint: $doc must open with '// Package $pkg ...'" >&2
    fail=1
  fi
  if [ "$(grep -c '^//' "$doc")" -lt 3 ]; then
    echo "docs lint: $doc package comment is too thin (< 3 comment lines)" >&2
    fail=1
  fi
  for f in "$dir"*.go; do
    [ "$(basename "$f")" = "doc.go" ] && continue
    if grep -q "^// Package " "$f"; then
      echo "docs lint: $f carries a second package comment (doc.go owns it)" >&2
      fail=1
    fi
  done
done

if [ "$fail" -ne 0 ]; then
  echo "docs lint: FAIL" >&2
  exit 1
fi
echo "docs lint: OK ($(ls -d internal/*/ | wc -l | tr -d ' ') packages)"
