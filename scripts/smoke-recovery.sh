#!/usr/bin/env bash
# smoke-recovery.sh — end-to-end crash-recovery smoke for the durable
# cliqued stack.
#
# Proves the PR's headline invariant outside any Go test harness:
#
#   1. a daemon with -ledger computes envelopes and persists them;
#   2. SIGKILL mid-flight loses nothing committed: the restarted daemon
#      recovers the ledger, -verify-ledger proves the chain, and the
#      pre-crash envelope is served byte-identically from disk (no
#      recomputation — the ledger_hits counter moves);
#   3. the retrying client (cliquectl) converges across the outage on
#      its own: requests issued while the daemon is down succeed once
#      it is back, with no operator intervention;
#   4. a clean SIGTERM drain leaves a ledger with no torn tail.
set -euo pipefail
cd "$(dirname "$0")/.."

addr=127.0.0.1:18348
base="http://$addr"
tmp=$(mktemp -d)
ledger="$tmp/results.clq"
trap 'kill -9 "$pid" 2>/dev/null || true; kill -9 "$clientpid" 2>/dev/null || true; rm -rf "$tmp"' EXIT

go build -o "$tmp/cliqued" ./cmd/cliqued
go build -o "$tmp/cliquectl" ./cmd/cliquectl
ctl() { "$tmp/cliquectl" -addr "$base" -attempts 50 -retry-budget 60s "$@"; }
# json_int FIELD FILE — extract an integer field from pretty-printed JSON.
json_int() { grep -o "\"$1\": [0-9]*" "$2" | head -1 | grep -o '[0-9]*$'; }

start_daemon() {
  "$tmp/cliqued" -addr "$addr" -ledger "$ledger" -workers 2 &
  pid=$!
  for _ in $(seq 1 100); do
    curl -fsS "$base/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "daemon never came up" >&2
  exit 1
}

echo "recovery: boot with a ledger and compute a result"
start_daemon
ctl run -algorithm triangle -n 32 -seed 7 > "$tmp/before.json"
grep -q '"schema": "cliquebench/v1"' "$tmp/before.json"
ctl ledger-stats > "$tmp/stats1.json"
grep -q '"records": 1' "$tmp/stats1.json"

echo "recovery: SIGKILL the daemon mid-flight"
# Put a request in flight from the retrying client, then kill -9 the
# daemon under it. The client must ride out the outage and converge
# against the restarted daemon — that is the whole point of the
# backoff/retry plane.
ctl run -algorithm exchange -n 64 -seed 9 > "$tmp/inflight.json" &
clientpid=$!
sleep 0.2
kill -9 "$pid"
wait "$pid" 2>/dev/null || true

echo "recovery: offline verification proves the committed prefix"
"$tmp/cliqued" -verify-ledger "$ledger" > "$tmp/verify1.json" || {
  # Exit 1 (torn tail truncatable on reopen) is acceptable after
  # SIGKILL; exit 2 (broken chain) is not.
  [ $? -eq 1 ] || { echo "verify-ledger reports a broken chain" >&2; exit 1; }
}
# The first envelope definitely committed pre-kill; the in-flight one
# may or may not have made it. Either way the committed prefix holds.
records=$(json_int records "$tmp/verify1.json")
[ "$records" -ge 1 ] && [ "$records" -le 2 ] || {
  echo "verify after SIGKILL: records=$records, want 1 or 2" >&2; exit 1; }

echo "recovery: restart; the in-flight client converges on its own"
start_daemon
wait "$clientpid"
clientpid=
grep -q '"schema": "cliquebench/v1"' "$tmp/inflight.json"

echo "recovery: pre-crash envelope is served byte-identically from disk"
ctl run -algorithm triangle -n 32 -seed 7 > "$tmp/after.json"
cmp "$tmp/before.json" "$tmp/after.json"
curl -fsS "$base/metrics" > "$tmp/metrics.json"
hits=$(json_int ledger_hits "$tmp/metrics.json")
[ "$hits" -ge 1 ] || { echo "ledger_hits=$hits after restart, want >= 1" >&2; exit 1; }

echo "recovery: clean SIGTERM drain leaves no torn tail"
ctl run -algorithm exchange -n 16 -seed 3 >/dev/null
kill -TERM "$pid"
wait "$pid"
"$tmp/cliqued" -verify-ledger "$ledger" > "$tmp/verify2.json"
grep -q '"ok": true' "$tmp/verify2.json"
grep -q '"torn_bytes": 0' "$tmp/verify2.json"
grep -q '"records": 3' "$tmp/verify2.json"

echo "recovery: OK"
