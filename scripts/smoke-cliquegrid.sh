#!/usr/bin/env bash
# smoke-cliquegrid.sh — CI smoke test for the cliquegrid runner.
#
# Runs a tiny grid twice (sequential, then -parallel=4), asserts the
# full artefact set appears under paper_runs/<stamp>/, and checks the
# determinism contract: the -no-timing summary.json is byte-identical
# across worker counts, and runs.csv carries one row per repeat.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/cliquegrid" ./cmd/cliquegrid

cat > "$tmp/spec.json" <<'EOF'
{
  "name": "smoke",
  "repeats": 2,
  "experiments": [
    {"algorithm": "exchange", "ns": [8, 16], "seeds": [1, 2]},
    {"algorithm": "triangle", "ns": [8, 16]}
  ]
}
EOF

echo "smoke: sequential run writes the full artefact set"
"$tmp/cliquegrid" -spec "$tmp/spec.json" -out "$tmp/runs" -stamp seq \
  -parallel=1 -no-timing -progress=false | tee "$tmp/line.txt"
grep -q '^cliquegrid: smoke:' "$tmp/line.txt"
for f in runs.csv summary.json summary.md tables.tex; do
  [ -s "$tmp/runs/seq/$f" ] || { echo "missing artefact $f" >&2; exit 1; }
done
ls "$tmp/runs/seq/plots/"*.svg >/dev/null

echo "smoke: summary carries the cliquegrid/v1 envelope, csv one row per run"
grep -q '"schema": "cliquegrid/v1"' "$tmp/runs/seq/summary.json"
# Header + (2+2)·2 algorithm cells... 2 ns × 2 seeds + 2 ns, × 2 repeats = 12 rows.
rows=$(wc -l < "$tmp/runs/seq/runs.csv")
[ "$rows" = 13 ] || { echo "runs.csv has $rows lines, want 13" >&2; exit 1; }

echo "smoke: -no-timing summary is byte-identical across -parallel"
"$tmp/cliquegrid" -spec "$tmp/spec.json" -out "$tmp/runs" -stamp par \
  -parallel=4 -no-timing -progress=false >/dev/null
cmp "$tmp/runs/seq/summary.json" "$tmp/runs/par/summary.json"

echo "smoke: -no-timing strips every wall-clock field"
if grep -q '"timing"' "$tmp/runs/seq/summary.json"; then
  echo "summary.json still carries timing" >&2; exit 1
fi

echo "smoke: malformed spec is rejected with a usage error"
if "$tmp/cliquegrid" -spec /dev/null -out "$tmp/runs" >/dev/null 2>&1; then
  echo "empty spec accepted" >&2; exit 1
fi

echo "smoke: OK"
