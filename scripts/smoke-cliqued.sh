#!/usr/bin/env bash
# smoke-cliqued.sh — CI smoke test for the cliqued daemon.
#
# Boots cliqued on a local port, asserts /healthz answers 200 ok with
# the build block, runs one quick experiment through POST
# /v1/experiments/{id}:run and checks the response is a valid
# cliquebench/v1 envelope — byte-equal to what the cliquebench CLI
# prints for the same request — exercises the cache, the ?trace=1
# envelope, the SSE progress stream, the latency histograms on
# /metrics, and verifies graceful shutdown on SIGTERM.
set -euo pipefail
cd "$(dirname "$0")/.."

addr=127.0.0.1:18347
base="http://$addr"
tmp=$(mktemp -d)
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT

go build -o "$tmp/cliqued" ./cmd/cliqued
"$tmp/cliqued" -addr "$addr" &
pid=$!

# Wait for the listener.
for _ in $(seq 1 100); do
  curl -fsS "$base/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done

echo "smoke: /healthz carries status and build attribution"
status=$(curl -sS -o "$tmp/healthz.json" -w '%{http_code}' "$base/healthz")
[ "$status" = 200 ] || { echo "healthz status $status" >&2; exit 1; }
grep -q '"ok"' "$tmp/healthz.json"
grep -q '"go_version"' "$tmp/healthz.json"
grep -q '"backends"' "$tmp/healthz.json"

echo "smoke: run one quick experiment"
status=$(curl -sS -o "$tmp/run.json" -w '%{http_code}' \
  -X POST -d '{"quick":true}' "$base/v1/experiments/thm2:run")
[ "$status" = 200 ] || { echo "run status $status: $(cat "$tmp/run.json")" >&2; exit 1; }
grep -q '"schema": "cliquebench/v1"' "$tmp/run.json"

echo "smoke: envelope is byte-identical to the cliquebench CLI"
# Built, not `go run`: the envelope's build block carries the VCS
# stamp, which `go run` binaries lack — both sides must be real builds
# of the same checkout for the byte comparison to be meaningful.
go build -o "$tmp/cliquebench" ./cmd/cliquebench
"$tmp/cliquebench" -exp thm2 -quick -backend=lockstep -format=json > "$tmp/cli.json"
cmp "$tmp/run.json" "$tmp/cli.json"

echo "smoke: repeat request hits the cache"
curl -fsS -X POST -d '{"quick":true}' "$base/v1/experiments/thm2:run" > "$tmp/run2.json"
cmp "$tmp/run.json" "$tmp/run2.json"

echo "smoke: ?trace=1 attaches the cliquetrace/v1 block"
curl -fsS -X POST -d '{"quick":true}' "$base/v1/experiments/fig1:run?trace=1" > "$tmp/traced.json"
grep -q '"cliquetrace/v1"' "$tmp/traced.json"
grep -q '"phases"' "$tmp/traced.json"

echo "smoke: SSE stream reports round-level progress"
curl -fsS -N -X POST -d '{"algorithm":"exchange","n":16,"seed":5}' \
  "$base/v1/run?stream=sse" > "$tmp/sse.txt"
grep -q '^event: progress$' "$tmp/sse.txt"
grep -q '"rounds"' "$tmp/sse.txt"
grep -q '"rounds_per_sec"' "$tmp/sse.txt"
grep -q '^event: result$' "$tmp/sse.txt"

echo "smoke: /metrics serves counters and latency histograms"
curl -fsS "$base/metrics" > "$tmp/metrics.json"
grep -q '"cache_hits": 1' "$tmp/metrics.json"
grep -q '"queue_wait_ns"' "$tmp/metrics.json"
grep -q '"run_wall_ns"' "$tmp/metrics.json"
grep -q '"rounds_per_sec_hist"' "$tmp/metrics.json"

echo "smoke: graceful shutdown"
kill -TERM "$pid"
wait "$pid"

echo "smoke: OK"
