#!/usr/bin/env bash
# smoke-cliqued.sh — CI smoke test for the cliqued daemon.
#
# Boots cliqued on a local port, asserts /healthz answers 200 ok,
# runs one quick experiment through POST /v1/experiments/{id}:run and
# checks the response is a valid cliquebench/v1 envelope — byte-equal
# to what the cliquebench CLI prints for the same request — exercises
# the cache and /metrics, and verifies graceful shutdown on SIGTERM.
set -euo pipefail
cd "$(dirname "$0")/.."

addr=127.0.0.1:18347
base="http://$addr"
tmp=$(mktemp -d)
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT

go build -o "$tmp/cliqued" ./cmd/cliqued
"$tmp/cliqued" -addr "$addr" &
pid=$!

# Wait for the listener.
for _ in $(seq 1 100); do
  curl -fsS "$base/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done

echo "smoke: /healthz"
status=$(curl -sS -o "$tmp/healthz.json" -w '%{http_code}' "$base/healthz")
[ "$status" = 200 ] || { echo "healthz status $status" >&2; exit 1; }
grep -q '"ok"' "$tmp/healthz.json"

echo "smoke: run one quick experiment"
status=$(curl -sS -o "$tmp/run.json" -w '%{http_code}' \
  -X POST -d '{"quick":true}' "$base/v1/experiments/thm2:run")
[ "$status" = 200 ] || { echo "run status $status: $(cat "$tmp/run.json")" >&2; exit 1; }
grep -q '"schema": "cliquebench/v1"' "$tmp/run.json"

echo "smoke: envelope is byte-identical to the cliquebench CLI"
go run ./cmd/cliquebench -exp thm2 -quick -backend=lockstep -format=json > "$tmp/cli.json"
cmp "$tmp/run.json" "$tmp/cli.json"

echo "smoke: repeat request hits the cache"
curl -fsS -X POST -d '{"quick":true}' "$base/v1/experiments/thm2:run" > "$tmp/run2.json"
cmp "$tmp/run.json" "$tmp/run2.json"
curl -fsS "$base/metrics" > "$tmp/metrics.json"
grep -q '"cache_hits": 1' "$tmp/metrics.json"

echo "smoke: graceful shutdown"
kill -TERM "$pid"
wait "$pid"

echo "smoke: OK"
