// Package repro's root benchmark harness: one benchmark family per
// experiment in EXPERIMENTS.md (E1-E13), each regenerating the
// corresponding figure or theorem of Korhonen & Suomela, "Towards a
// complexity theory for the congested clique" (SPAA 2018). The primary
// metric reported everywhere is "rounds" — the model's cost measure —
// alongside wall-clock time of the simulation itself.
package repro

import (
	"flag"
	"fmt"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/clique"
	"repro/internal/comm"
	"repro/internal/counting"
	"repro/internal/domset"
	"repro/internal/exp"
	"repro/internal/fgc"
	"repro/internal/graph"
	"repro/internal/hierarchy"
	"repro/internal/matmul"
	"repro/internal/mst"
	"repro/internal/nondet"
	"repro/internal/paths"
	"repro/internal/reduction"
	"repro/internal/routing"
	"repro/internal/subgraph"
	"repro/internal/vcover"
)

// benchBackend selects the execution engine for every root benchmark:
// `go test -bench . -args -backend=goroutine` benchmarks the reference
// engine, the default benchmarks the lockstep engine. Model costs
// (rounds, words) are backend-independent; wall-clock is the contrast.
var benchBackend = flag.String("backend", "lockstep", "execution backend for the root benchmarks (goroutine, lockstep)")

// benchRounds runs one simulated execution per iteration and reports the
// round count as a custom metric.
func benchRounds(b *testing.B, n, wpp int, f clique.NodeFunc) {
	b.Helper()
	var lastRounds, lastWords int64
	for i := 0; i < b.N; i++ {
		res, err := clique.Run(clique.Config{N: n, WordsPerPair: wpp, Backend: *benchBackend}, f)
		if err != nil {
			b.Fatal(err)
		}
		lastRounds = int64(res.Stats.Rounds)
		lastWords = res.Stats.WordsSent
	}
	b.ReportMetric(float64(lastRounds), "rounds")
	b.ReportMetric(float64(lastWords), "words")
}

// ---------------------------------------------------------------------
// E1 / Figure 1: round scaling of the implemented problems. The
// workloads come from the experiment registry (exp.Fig1Workloads), the
// same instances and node programs the cliquebench report runs, so the
// benchmarks and the report cannot drift apart.

// benchFig1Workload benchmarks one registry probe at the given sizes.
func benchFig1Workload(b *testing.B, name string, ns []int) {
	b.Helper()
	w, err := exp.Fig1Workload(name)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range ns {
		f := w.Make(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchRounds(b, n, w.WPP, f)
		})
	}
}

func BenchmarkFig1_BooleanMM3D(b *testing.B) {
	benchFig1Workload(b, "Boolean MM (3D)", []int{27, 64, 125})
}

func BenchmarkFig1_BooleanMMNaive(b *testing.B) {
	benchFig1Workload(b, "Boolean MM (naive)", []int{27, 64, 125})
}

// BenchmarkFig1_BooleanMMPackedSteady is the steady-state form of the
// packed boolean product: many word-parallel naive products inside one
// simulated run, so per-run setup amortises away and the number is the
// serving-loop throughput (rounds/sec) the bit-packed plane sustains.
// The unpacked per-entry path managed ~146 rounds/sec at n=216; the
// packed plane holds well above 5x that.
func BenchmarkFig1_BooleanMMPackedSteady(b *testing.B) {
	const products = 50
	for _, n := range []int{64, 216} {
		g := graph.Gnp(n, 0.5, uint64(n))
		rows := make([]bitvec.Row, n)
		for v := 0; v < n; v++ {
			rows[v] = bitvec.FromInt64s(matmul.AdjacencyRow(g, v))
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchRounds(b, n, 8, func(nd *clique.Node) {
				for r := 0; r < products; r++ {
					matmul.MulNaiveBits(nd, rows[nd.ID()], rows[nd.ID()])
				}
			})
		})
	}
}

func BenchmarkFig1_APSP(b *testing.B) {
	benchFig1Workload(b, "APSP w/ud (min,+ squaring)", []int{27, 64})
}

func BenchmarkFig1_Triangle(b *testing.B) {
	benchFig1Workload(b, "Triangle detection", []int{27, 64, 125})
}

func BenchmarkFig1_TransitiveClosure(b *testing.B) {
	n := 27
	g := graph.Gnp(n, 0.1, 5)
	benchRounds(b, n, 8, func(nd *clique.Node) {
		row := make([]int64, n)
		g.Neighbors(nd.ID(), func(u int) { row[u] = 1 })
		paths.TransitiveClosure(nd, row, matmul.Mul3D)
	})
}

func BenchmarkFig1_SSSP(b *testing.B) {
	for _, n := range []int{32, 64, 128} {
		g := graph.GnpWeighted(n, 0.2, 30, false, uint64(n))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchRounds(b, n, 1, func(nd *clique.Node) {
				paths.SSSP(nd, g.W[nd.ID()], 0)
			})
		})
	}
}

func BenchmarkFig1_MaxISFullGather(b *testing.B) {
	benchFig1Workload(b, "MaxIS (full gather)", []int{32, 64})
}

// ---------------------------------------------------------------------
// Registry smoke: every registered experiment end to end at quick
// sizes — the family CI's benchmark job runs so a new experiment is
// benchmarked the moment it is registered.

func BenchmarkExperiments(b *testing.B) {
	for _, e := range exp.All() {
		b.Run(e.ID, func(b *testing.B) {
			var rounds int64
			for i := 0; i < b.N; i++ {
				res, _, err := exp.RunOne(e.ID, exp.Options{Backend: *benchBackend, Quick: true})
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.Sim.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// ---------------------------------------------------------------------
// E2 / Figure 2, Theorem 10: the IS-via-DS reduction, simulated.

func BenchmarkFig2_ISviaDS(b *testing.B) {
	for _, n := range []int{6, 8, 10} {
		g := graph.Gnp(n, 0.5, uint64(n))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchRounds(b, n, 16, func(nd *clique.Node) {
				reduction.FindISViaDS(nd, g.Row(nd.ID()), 2)
			})
		})
	}
}

func BenchmarkFig2_DirectDSBaseline(b *testing.B) {
	for _, n := range []int{6, 8, 10} {
		g := graph.Gnp(n, 0.5, uint64(n))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchRounds(b, n, 16, func(nd *clique.Node) {
				domset.Find(nd, g.Row(nd.ID()), 2)
			})
		})
	}
}

// ---------------------------------------------------------------------
// E3 / Theorem 2 and E6 / Theorem 4 and E9 / Theorem 8: counting bounds.

func BenchmarkThm2_CountingBounds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, n := range []int{64, 256, 1024} {
			bw := clique.WordBits(n)
			counting.MaxHardRounds(n, bw, 32*bw)
		}
	}
}

func BenchmarkThm4_NondetBounds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for Tn := 4; Tn <= 64; Tn *= 2 {
			counting.Theorem4Params(1<<12, Tn)
		}
	}
}

func BenchmarkThm8_LogHierarchyBounds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, k := range []int{1, 4, 16, 64} {
			counting.Theorem8Params(256, k, 512)
		}
	}
}

// ---------------------------------------------------------------------
// E4 / Lemma 1: the exhaustive micro diagonalisation.

func BenchmarkLemma1_MicroDiagonalisation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := counting.Diagonalise(2)
		if !res.HardExists {
			b.Fatal("no hard function found")
		}
	}
}

// ---------------------------------------------------------------------
// E5 / Theorem 3: transcript certificates and the normal form.

func BenchmarkThm3_NormalForm(b *testing.B) {
	for _, n := range []int{8, 16} {
		g, _ := graph.PlantedColoring(n, 3, 0.7, uint64(n))
		alg := nondet.KColoringVerifier(3)
		z := nondet.KColoringProver(g, 3)
		if z == nil {
			b.Fatal("prover failed")
		}
		certs, err := nondet.TranscriptCertificate(clique.Config{N: n, Backend: *benchBackend}, g, alg, z)
		if err != nil {
			b.Fatal(err)
		}
		bVerifier := nondet.NormalForm(alg, 1, nondet.WordSpace(3))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var bits int
			for i := 0; i < b.N; i++ {
				verdict, err := nondet.RunVerifier(clique.Config{N: n, Backend: *benchBackend}, g, bVerifier, certs)
				if err != nil || !verdict.Accepted {
					b.Fatal("normal form rejected honest certificate")
				}
				bits = certs.SizeBits(n)
			}
			b.ReportMetric(float64(bits), "certbits")
		})
	}
}

// ---------------------------------------------------------------------
// E7 / Theorem 6: compiled edge labelling verification stays O(1).

func BenchmarkThm6_EdgeLabelling(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchRounds(b, n, 1, func(nd *clique.Node) {
				// One consistency round over incident labels, the
				// verification skeleton of the canonical problems.
				me := nd.ID()
				labels := make([]uint64, n)
				for v := 0; v < n; v++ {
					labels[v] = uint64((me + v) % 7)
				}
				peers, delivered := comm.AllToAllWord(nd, labels)
				for v := 0; v < n; v++ {
					if v == me {
						continue
					}
					if !delivered[v] || peers[v] != labels[v] {
						nd.Fail("label mismatch")
					}
				}
			})
		})
	}
}

// ---------------------------------------------------------------------
// E8 / Theorem 7: the Sigma_2 collapse protocol.

func BenchmarkThm7_SigmaTwo(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		g := graph.Gnp(n, 0.4, uint64(n))
		alg := hierarchy.SigmaTwoUniversal(graph.HasTriangle)
		z1 := hierarchy.HonestGuess(g)
		z2 := hierarchy.CatchingChallenge(n, 0, 0, 1)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchRounds(b, n, 1, func(nd *clique.Node) {
				alg(nd, g.Row(nd.ID()), [][]uint64{z1[nd.ID()], z2[nd.ID()]})
			})
		})
	}
}

// ---------------------------------------------------------------------
// E10 / Theorem 9 and E11 / Theorem 11: the paper's new upper bounds.

func BenchmarkThm9_kDS(b *testing.B) {
	for _, k := range []int{2, 3} {
		for _, n := range []int{27, 64, 125} {
			g, _ := graph.PlantedDominatingSet(n, k, 0.1, uint64(n))
			b.Run(fmt.Sprintf("k=%d/n=%d", k, n), func(b *testing.B) {
				benchRounds(b, n, 8, func(nd *clique.Node) {
					domset.Find(nd, g.Row(nd.ID()), k)
				})
			})
		}
	}
}

func BenchmarkThm11_kVC(b *testing.B) {
	for _, k := range []int{3, 6} {
		for _, n := range []int{32, 128} {
			g, _ := graph.PlantedVertexCover(n, k, 0.4, uint64(n))
			b.Run(fmt.Sprintf("k=%d/n=%d", k, n), func(b *testing.B) {
				benchRounds(b, n, 1, func(nd *clique.Node) {
					vcover.Find(nd, g.Row(nd.ID()), k)
				})
			})
		}
	}
}

func BenchmarkFPT_kIS(b *testing.B) {
	for _, n := range []int{27, 64, 125} {
		g, _ := graph.PlantedIndependentSet(n, 3, 0.5, uint64(n))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchRounds(b, n, 8, func(nd *clique.Node) {
				subgraph.DetectIndependentSet(nd, g.Row(nd.ID()), 3)
			})
		})
	}
}

// ---------------------------------------------------------------------
// E13: substrate benchmarks.

func BenchmarkSub_Routing(b *testing.B) {
	for _, load := range []int{8, 32} {
		b.Run(fmt.Sprintf("load=%d", load), func(b *testing.B) {
			benchRounds(b, 32, 4, func(nd *clique.Node) {
				var ps []comm.Packet
				for i := 0; i < load; i++ {
					ps = append(ps, comm.Packet{Dst: (nd.ID() + i + 1) % 32, Payload: []uint64{uint64(i)}})
				}
				comm.Route(nd, ps, 1, 9)
			})
		})
	}
}

func BenchmarkSub_Sorting(b *testing.B) {
	benchRounds(b, 16, 4, func(nd *clique.Node) {
		keys := make([]uint64, 8)
		for i := range keys {
			keys[i] = uint64((nd.ID()*131 + i*37) % 256)
		}
		routing.Sort(nd, keys, 256)
	})
}

func BenchmarkSub_AllBroadcast(b *testing.B) {
	benchRounds(b, 64, 4, func(nd *clique.Node) {
		comm.BroadcastAll(nd, make([]uint64, 64), 64)
	})
}

// ---------------------------------------------------------------------
// Ablation: router schedule on a skewed instance.

func BenchmarkAblation_RouterBalanced(b *testing.B) {
	benchRounds(b, 16, 4, func(nd *clique.Node) {
		var ps []comm.Packet
		if nd.ID() == 0 {
			for i := 0; i < 96; i++ {
				ps = append(ps, comm.Packet{Dst: 1, Payload: []uint64{uint64(i)}})
			}
		}
		comm.Route(nd, ps, 1, 5)
	})
}

func BenchmarkAblation_RouterDirect(b *testing.B) {
	benchRounds(b, 16, 4, func(nd *clique.Node) {
		var ps []comm.Packet
		if nd.ID() == 0 {
			for i := 0; i < 96; i++ {
				ps = append(ps, comm.Packet{Dst: 1, Payload: []uint64{uint64(i)}})
			}
		}
		comm.RouteDirect(nd, ps, 1)
	})
}

// Ablation: engine determinism under different bandwidth budgets.

func BenchmarkAblation_Bandwidth(b *testing.B) {
	g := graph.Gnp(64, 0.5, 7)
	for _, wpp := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("wpp=%d", wpp), func(b *testing.B) {
			benchRounds(b, 64, wpp, func(nd *clique.Node) {
				row := make([]uint64, 64)
				for j := 0; j < 64; j++ {
					row[j] = clique.BoolWord(g.HasEdge(nd.ID(), j))
				}
				comm.BroadcastAll(nd, row, 64)
			})
		})
	}
}

// Sanity benchmark: the exponent fit used by the harness.

func BenchmarkFitExponent(b *testing.B) {
	ns := []int{27, 64, 125, 216}
	rounds := []int{9, 12, 15, 18}
	for i := 0; i < b.N; i++ {
		fgc.FitExponent(ns, rounds)
	}
}

// Extension benchmarks: MST and the labelling problems.

func BenchmarkExt_MST(b *testing.B) {
	for _, n := range []int{32, 128} {
		g := graph.GnpWeighted(n, 0.3, 60, false, uint64(n))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchRounds(b, n, 1, func(nd *clique.Node) {
				mst.Find(nd, g.W[nd.ID()])
			})
		})
	}
}

func BenchmarkExt_LabellingCheck(b *testing.B) {
	p := nondet.MaximalMatchingProblem()
	for _, n := range []int{16, 64} {
		g := graph.Gnp(n, 0.4, uint64(n))
		z := p.Solve(g)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v, err := nondet.RunVerifier(clique.Config{N: n, Backend: *benchBackend}, g, p.Check, z)
				if err != nil || !v.Accepted {
					b.Fatal("checker rejected a greedy maximal matching")
				}
			}
		})
	}
}
