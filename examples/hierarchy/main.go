// The Theorem 7 collapse protocol, live: every decision problem — here
// "does G contain a triangle", but any computable predicate works — sits
// in Sigma_2 of the unlimited constant-round decision hierarchy. The
// existential prover guesses the whole graph at every node; the
// universal challenger audits one bit per node; two broadcast rounds
// settle everything.
//
// The demo shows the three behaviours that make the protocol tick:
// honest proofs surviving every challenge, a lying prover caught by the
// right challenge, and the label-size gap that locks this trick out of
// the logarithmic hierarchy (Theorem 8).
package main

import (
	"fmt"
	"log"

	"repro/internal/clique"
	"repro/internal/graph"
	"repro/internal/hierarchy"
	"repro/internal/nondet"
)

func main() {
	n := 4
	yes := graph.Complete(n) // has triangles
	no := graph.Path(n)      // has none
	alg := hierarchy.SigmaTwoUniversal(graph.HasTriangle)

	run := func(g *graph.Graph, z1, z2 nondet.Labelling) bool {
		bits := make([]bool, g.N)
		_, err := clique.Run(clique.Config{N: g.N}, func(nd *clique.Node) {
			labels := [][]uint64{z1[nd.ID()], z2[nd.ID()]}
			bits[nd.ID()] = alg(nd, g.Row(nd.ID()), labels)
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, b := range bits {
			if !b {
				return false
			}
		}
		return true
	}

	// 1. Honest prover on the yes-instance survives a sweep of
	// challenges.
	honest := hierarchy.HonestGuess(yes)
	rejected := 0
	total := 0
	for idx := 0; idx < n*n; idx++ {
		z2 := hierarchy.CatchingChallenge(n, 0, idx/n, idx%n)
		total++
		if !run(yes, honest, z2) {
			rejected++
		}
	}
	fmt.Printf("honest prover, yes-instance: %d/%d challenges rejected (want 0)\n",
		rejected, total)

	// 2. A prover that claims the no-instance has a triangle, by
	// guessing K4 instead of P4 at node 1: the challenge auditing a
	// fabricated edge catches it.
	lying := hierarchy.HonestGuess(no)
	lying[1] = hierarchy.EncodeGuess(yes)
	caught := hierarchy.CatchingChallenge(n, 1, 0, 2) // P4 has no edge {0,2}
	fmt.Printf("lying prover, audited at the fabricated edge: accepted=%v (want false)\n",
		run(no, lying, caught))

	// 3. The label-size gap: the guess needs n^2 bits, the logarithmic
	// hierarchy allows O(n log n).
	fmt.Println()
	fmt.Println("guess size vs logarithmic budget (c = 4):")
	for _, m := range []int{8, 64, 512, 4096} {
		fmt.Printf("  n=%5d: guess %8d bits, budget %8d bits, fits=%v\n",
			m, hierarchy.GuessBits(m), 4*m*clique.WordBits(m),
			hierarchy.GuessBits(m) <= 4*m*clique.WordBits(m))
	}
	fmt.Println()
	fmt.Println("Theorem 7 collapses the unlimited hierarchy to level 2;")
	fmt.Println("Theorem 8 shows no constant level of the O(n log n)-label hierarchy")
	fmt.Println("contains all problems — the budget rows above are the reason why.")
}
