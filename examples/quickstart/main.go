// Quickstart: simulate a congested clique, run a real algorithm on a
// random input graph, and read off the model costs. This is the
// five-minute tour of the repository: the simulator (internal/clique),
// an input graph (internal/graph), and the Dolev et al. triangle
// detection algorithm (internal/subgraph) at O(n^{1/3}) rounds.
package main

import (
	"fmt"
	"log"

	"repro/internal/clique"
	"repro/internal/graph"
	"repro/internal/subgraph"
)

func main() {
	const n = 64
	g := graph.Gnp(n, 0.08, 42)
	fmt.Printf("input: G(n=%d, p=0.08), %d edges, oracle says triangle=%v\n",
		n, g.NumEdges(), graph.HasTriangle(g))

	answers := make([]bool, n)
	res, err := clique.Run(clique.Config{N: n, WordsPerPair: 4}, func(nd *clique.Node) {
		// Each node sees only its own adjacency row — the model's input
		// assumption — and participates in the distributed detection.
		answers[nd.ID()] = subgraph.DetectTriangle(nd, g.Row(nd.ID()))
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("all %d nodes agree: triangle=%v\n", n, answers[0])
	fmt.Printf("cost: %d rounds, %d words (%d bits) on the wire, busiest link %d words/round\n",
		res.Stats.Rounds, res.Stats.WordsSent, res.Stats.BitsSent, res.Stats.MaxPairWords)
	fmt.Println()
	fmt.Println("compare: learning the whole graph trivially costs ~n/log n rounds;")
	fmt.Printf("the partition algorithm above used %d rounds at n=%d.\n", res.Stats.Rounds, n)
}
