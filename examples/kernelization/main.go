// Fixed-parameter tractability in the congested clique (Section 7.3 of
// the paper): the same parameterised problem landscape the paper
// tabulates, measured live.
//
//   - k-vertex cover:    O(k) rounds — independent of n (Theorem 11)
//   - k-independent set: O(n^{1-2/k}) rounds (Dolev et al.)
//   - k-dominating set:  O(n^{1-1/k}) rounds (Theorem 9)
//
// The run prints rounds across a sweep of n at fixed k, making the
// contrast the paper draws ("the complexity in terms of n is dependent
// on k" vs "not at all on n") directly visible.
package main

import (
	"fmt"
	"log"

	"repro/internal/clique"
	"repro/internal/domset"
	"repro/internal/graph"
	"repro/internal/subgraph"
	"repro/internal/vcover"
)

func main() {
	const k = 3
	fmt.Printf("parameter k = %d; rounds by n:\n\n", k)
	fmt.Printf("%8s %12s %12s %12s\n", "n", "k-VC", "k-IS", "k-DS")
	for _, n := range []int{16, 32, 64, 96} {
		gVC, _ := graph.PlantedVertexCover(n, k, 0.4, uint64(n))
		gIS, _ := graph.PlantedIndependentSet(n, k, 0.5, uint64(n)+1)
		gDS, _ := graph.PlantedDominatingSet(n, k, 0.1, uint64(n)+2)

		vcRounds := run(n, 1, func(nd *clique.Node) {
			vcover.Find(nd, gVC.Row(nd.ID()), k)
		})
		isRounds := run(n, 4, func(nd *clique.Node) {
			subgraph.DetectIndependentSet(nd, gIS.Row(nd.ID()), k)
		})
		dsRounds := run(n, 4, func(nd *clique.Node) {
			domset.Find(nd, gDS.Row(nd.ID()), k)
		})
		fmt.Printf("%8d %12d %12d %12d\n", n, vcRounds, isRounds, dsRounds)
	}
	fmt.Println()
	fmt.Println("k-VC stays flat at 1+k rounds (the kernelisation needs no more);")
	fmt.Println("k-IS and k-DS grow with n, k-DS faster (exponent 1-1/k vs 1-2/k).")
}

func run(n, wpp int, f clique.NodeFunc) int {
	res, err := clique.Run(clique.Config{N: n, WordsPerPair: wpp}, f)
	if err != nil {
		log.Fatal(err)
	}
	return res.Stats.Rounds
}
