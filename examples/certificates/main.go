// Nondeterminism in the congested clique (Section 5 of the paper):
// NCLIQUE(1) certificates for NP-complete problems, and the Theorem 3
// normal form that converts any certificate into communication
// transcripts of O(T n log n) bits.
//
// The pipeline shown here for 3-colouring:
//
//	prover -> certificate z -> run A(G, z) recording transcripts
//	       -> transcript labels -> normal-form verifier B accepts
//	       -> tamper one word  -> B rejects
package main

import (
	"fmt"
	"log"

	"repro/internal/clique"
	"repro/internal/graph"
	"repro/internal/nondet"
)

func main() {
	const k = 3
	g, _ := graph.PlantedColoring(10, k, 0.7, 99)
	alg := nondet.KColoringVerifier(k)

	// The original certificate: one colour per node.
	z := nondet.KColoringProver(g, k)
	if z == nil {
		log.Fatal("graph not 3-colourable (unexpected for a planted instance)")
	}
	verdict, err := nondet.RunVerifier(clique.Config{N: g.N}, g, alg, z)
	must(err)
	fmt.Printf("A with honest colouring: accepted=%v in %d round(s), labels %d bits/node\n",
		verdict.Accepted, verdict.Result.Stats.Rounds, z.SizeBits(g.N))

	// Theorem 3: transcripts as certificates.
	certs, err := nondet.TranscriptCertificate(clique.Config{N: g.N}, g, alg, z)
	must(err)
	fmt.Printf("transcript certificate: %d words/node = %d bits/node (bound O(T n log n) = %d)\n",
		certs.SizeWords(), certs.SizeBits(g.N), 1*g.N*clique.WordBits(g.N)*5)

	b := nondet.NormalForm(alg, 1, nondet.WordSpace(k))
	verdict, err = nondet.RunVerifier(clique.Config{N: g.N}, g, b, certs)
	must(err)
	fmt.Printf("normal-form verifier B: accepted=%v in %d round(s)\n",
		verdict.Accepted, verdict.Result.Stats.Rounds)

	// Tamper with one transcript word.
	bad := make(nondet.Labelling, len(certs))
	for i := range certs {
		bad[i] = append([]uint64(nil), certs[i]...)
	}
	for i := 1; i < len(bad[4])-1; i++ {
		if bad[4][i] == 1 { // a count-1 slot; the next word is a colour
			bad[4][i+1] = (bad[4][i+1] + 1) % k
			break
		}
	}
	verdict, err = nondet.RunVerifier(clique.Config{N: g.N}, g, b, bad)
	must(err)
	fmt.Printf("B on tampered transcript: accepted=%v (want false)\n", verdict.Accepted)

	// A second NCLIQUE(1) member: Hamiltonian path.
	gh, _ := graph.PlantedHamiltonianPath(9, 0.1, 5)
	zh := nondet.HamPathProver(gh)
	verdict, err = nondet.RunVerifier(clique.Config{N: gh.N}, gh, nondet.HamPathVerifier(), zh)
	must(err)
	fmt.Printf("\nHamiltonian path certificate: accepted=%v in %d round(s)\n",
		verdict.Accepted, verdict.Result.Stats.Rounds)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
