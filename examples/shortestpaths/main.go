// Shortest paths in the congested clique: the left column of Figure 1
// of the paper. One weighted random graph, four algorithms:
//
//   - BFS tree (unweighted, O(ecc) rounds)
//   - Bellman-Ford SSSP (weighted, O(hop depth) rounds)
//   - exact APSP via (min,+) matrix squaring (O(n^{1/3} log n) rounds)
//   - (1+eps)-approximate APSP via rounded squaring
//
// All four run on the same simulator and report model costs; exactness
// and the approximation guarantee are checked against Floyd-Warshall.
package main

import (
	"fmt"
	"log"

	"repro/internal/clique"
	"repro/internal/graph"
	"repro/internal/matmul"
	"repro/internal/paths"
)

func main() {
	const n = 48
	const eps = 0.25
	w := graph.GnpWeighted(n, 0.15, 50, false, 7)
	uw := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if w.HasEdge(u, v) {
				uw.AddEdge(u, v)
			}
		}
	}
	truth := graph.FloydWarshall(w)

	// BFS from node 0.
	res, err := clique.Run(clique.Config{N: n}, func(nd *clique.Node) {
		paths.BFS(nd, uw.Row(nd.ID()), 0)
	})
	must(err)
	fmt.Printf("BFS tree:            %5d rounds\n", res.Stats.Rounds)

	// Weighted SSSP from node 0.
	ssspDist := make([]int64, n)
	res, err = clique.Run(clique.Config{N: n}, func(nd *clique.Node) {
		ssspDist[nd.ID()] = paths.SSSP(nd, w.W[nd.ID()], 0).Dist
	})
	must(err)
	check := 0
	for v := 0; v < n; v++ {
		if ssspDist[v] == truth[0][v] {
			check++
		}
	}
	fmt.Printf("SSSP (Bellman-Ford): %5d rounds, %d/%d distances exact\n",
		res.Stats.Rounds, check, n)

	// Exact APSP by (min,+) squaring with the 3D schedule.
	apsp := make([][]int64, n)
	res, err = clique.Run(clique.Config{N: n, WordsPerPair: 8}, func(nd *clique.Node) {
		apsp[nd.ID()] = paths.APSP(nd, w.W[nd.ID()], matmul.Mul3D)
	})
	must(err)
	exact := true
	for i := range truth {
		for j := range truth[i] {
			exact = exact && apsp[i][j] == truth[i][j]
		}
	}
	fmt.Printf("APSP (min,+ squaring, 3D): %d rounds, exact=%v\n", res.Stats.Rounds, exact)

	// (1+eps)-approximate APSP.
	approx := make([][]int64, n)
	res, err = clique.Run(clique.Config{N: n, WordsPerPair: 8}, func(nd *clique.Node) {
		approx[nd.ID()] = paths.ApproxAPSP(nd, w.W[nd.ID()], eps, matmul.Mul3D)
	})
	must(err)
	worst := 1.0
	for i := range truth {
		for j := range truth[i] {
			if truth[i][j] > 0 && truth[i][j] < graph.Inf {
				r := float64(approx[i][j]) / float64(truth[i][j])
				if r > worst {
					worst = r
				}
			}
		}
	}
	fmt.Printf("APSP (1+eps, eps=%.2f):    %d rounds, worst ratio %.4f (bound %.2f)\n",
		eps, res.Stats.Rounds, worst, 1+eps)

	// Diameter, for good measure.
	var diam int64
	res, err = clique.Run(clique.Config{N: n, WordsPerPair: 8}, func(nd *clique.Node) {
		row := make([]int64, n)
		uw.Neighbors(nd.ID(), func(u int) { row[u] = 1 })
		diam = paths.Diameter(nd, row, matmul.Mul3D)
	})
	must(err)
	fmt.Printf("Diameter:            %5d rounds, value %d\n", res.Stats.Rounds, diam)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
