package repro

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/clique"
	"repro/internal/comm"
	"repro/internal/domset"
	"repro/internal/gather"
	"repro/internal/graph"
	"repro/internal/hierarchy"
	"repro/internal/matmul"
	"repro/internal/mst"
	"repro/internal/nondet"
	"repro/internal/paths"
	"repro/internal/reduction"
	"repro/internal/routing"
	"repro/internal/subgraph"
	"repro/internal/vcover"
)

// This file pins the tentpole guarantee of the execution-backend split:
// every algorithm in the repository produces bit-identical outputs, round
// counts, and communication statistics on the goroutine and lockstep
// engines. Each case builds a fresh NodeFunc per backend (closures carry
// per-run outputs) and compares stats plus an output fingerprint.

// backendCase is one algorithm workload: make returns a NodeFunc and a
// function extracting the run's output for comparison.
type backendCase struct {
	name string
	wpp  int
	n    int
	make func(n int) (clique.NodeFunc, func() any)
}

func backendCases() []backendCase {
	return []backendCase{
		{"triangle", 8, 27, func(n int) (clique.NodeFunc, func() any) {
			g := graph.Gnp(n, 0.2, uint64(n))
			out := make([]bool, n)
			return func(nd *clique.Node) { out[nd.ID()] = subgraph.DetectTriangle(nd, g.Row(nd.ID())) },
				func() any { return out }
		}},
		{"3-is", 8, 27, func(n int) (clique.NodeFunc, func() any) {
			g := graph.Gnp(n, 0.6, uint64(n))
			out := make([]bool, n)
			return func(nd *clique.Node) { out[nd.ID()] = subgraph.DetectIndependentSet(nd, g.Row(nd.ID()), 3) },
				func() any { return out }
		}},
		{"4-clique", 8, 16, func(n int) (clique.NodeFunc, func() any) {
			g := graph.Gnp(n, 0.6, uint64(n)+1)
			out := make([]bool, n)
			return func(nd *clique.Node) { out[nd.ID()] = subgraph.DetectClique(nd, g.Row(nd.ID()), 4) },
				func() any { return out }
		}},
		{"4-cycle", 8, 16, func(n int) (clique.NodeFunc, func() any) {
			g := graph.Gnp(n, 0.3, uint64(n)+2)
			out := make([]bool, n)
			return func(nd *clique.Node) { out[nd.ID()] = subgraph.DetectCycle(nd, g.Row(nd.ID()), 4) },
				func() any { return out }
		}},
		{"3-path", 8, 16, func(n int) (clique.NodeFunc, func() any) {
			g := graph.Gnp(n, 0.3, uint64(n)+3)
			out := make([]bool, n)
			return func(nd *clique.Node) { out[nd.ID()] = subgraph.DetectPath(nd, g.Row(nd.ID()), 3) },
				func() any { return out }
		}},
		{"boolean-mm-3d", 8, 27, func(n int) (clique.NodeFunc, func() any) {
			g := graph.Gnp(n, 0.5, uint64(n))
			out := make([][]int64, n)
			return func(nd *clique.Node) {
					row := matmul.AdjacencyRow(g, nd.ID())
					out[nd.ID()] = matmul.Mul3D(nd, matmul.Boolean{}, row, row)
				},
				func() any { return out }
		}},
		{"boolean-mm-naive", 8, 16, func(n int) (clique.NodeFunc, func() any) {
			g := graph.Gnp(n, 0.5, uint64(n))
			out := make([][]int64, n)
			return func(nd *clique.Node) {
					row := matmul.AdjacencyRow(g, nd.ID())
					out[nd.ID()] = matmul.MulNaive(nd, matmul.Boolean{}, row, row)
				},
				func() any { return out }
		}},
		{"apsp", 8, 27, func(n int) (clique.NodeFunc, func() any) {
			g := graph.GnpWeighted(n, 0.3, 40, false, uint64(n))
			out := make([][]int64, n)
			return func(nd *clique.Node) { out[nd.ID()] = paths.APSP(nd, g.W[nd.ID()], matmul.Mul3D) },
				func() any { return out }
		}},
		{"bfs", 4, 24, func(n int) (clique.NodeFunc, func() any) {
			g := graph.Gnp(n, 0.2, uint64(n))
			out := make([]paths.BFSResult, n)
			return func(nd *clique.Node) { out[nd.ID()] = paths.BFS(nd, g.Row(nd.ID()), 0) },
				func() any { return out }
		}},
		{"sssp", 1, 24, func(n int) (clique.NodeFunc, func() any) {
			g := graph.GnpWeighted(n, 0.3, 30, false, uint64(n))
			out := make([]paths.SSSPResult, n)
			return func(nd *clique.Node) { out[nd.ID()] = paths.SSSP(nd, g.W[nd.ID()], 0) },
				func() any { return out }
		}},
		{"3-ds", 8, 27, func(n int) (clique.NodeFunc, func() any) {
			g, _ := graph.PlantedDominatingSet(n, 3, 0.1, uint64(n))
			out := make([]domset.Result, n)
			return func(nd *clique.Node) { out[nd.ID()] = domset.Find(nd, g.Row(nd.ID()), 3) },
				func() any { return out }
		}},
		{"3-vc", 1, 32, func(n int) (clique.NodeFunc, func() any) {
			g, _ := graph.PlantedVertexCover(n, 3, 0.4, uint64(n))
			out := make([]vcover.Result, n)
			return func(nd *clique.Node) { out[nd.ID()] = vcover.Find(nd, g.Row(nd.ID()), 3) },
				func() any { return out }
		}},
		{"mst", 1, 32, func(n int) (clique.NodeFunc, func() any) {
			g := graph.GnpWeighted(n, 0.3, 60, false, uint64(n))
			out := make([]int64, n)
			return func(nd *clique.Node) { out[nd.ID()] = mst.Weight(mst.Find(nd, g.W[nd.ID()])) },
				func() any { return out }
		}},
		{"route", 4, 32, func(n int) (clique.NodeFunc, func() any) {
			out := make([][]comm.Packet, n)
			return func(nd *clique.Node) {
					var ps []comm.Packet
					for i := 0; i < 16; i++ {
						ps = append(ps, comm.Packet{Dst: (nd.ID() + i + 1) % n, Payload: []uint64{uint64(nd.ID()*100 + i)}})
					}
					out[nd.ID()] = comm.Route(nd, ps, 1, 9)
				},
				func() any { return out }
		}},
		{"sort", 4, 16, func(n int) (clique.NodeFunc, func() any) {
			out := make([]routing.SortResult, n)
			return func(nd *clique.Node) {
					keys := make([]uint64, 8)
					for i := range keys {
						keys[i] = uint64((nd.ID()*131 + i*37) % 256)
					}
					out[nd.ID()] = routing.Sort(nd, keys, 256)
				},
				func() any { return out }
		}},
		{"maxis-gather", 1, 20, func(n int) (clique.NodeFunc, func() any) {
			g := graph.Gnp(n, 0.9, uint64(n))
			out := make([]int, n)
			return func(nd *clique.Node) { out[nd.ID()] = gather.MaxIndependentSetSize(nd, g.Row(nd.ID())) },
				func() any { return out }
		}},
		{"is-via-ds-sim", 16, 8, func(n int) (clique.NodeFunc, func() any) {
			g := graph.Gnp(n, 0.5, uint64(n)+3)
			out := make([]reduction.ISResult, n)
			return func(nd *clique.Node) { out[nd.ID()] = reduction.FindISViaDS(nd, g.Row(nd.ID()), 2) },
				func() any { return out }
		}},
		{"sigma2-hierarchy", 1, 6, func(n int) (clique.NodeFunc, func() any) {
			g := graph.Complete(n)
			alg := hierarchy.SigmaTwoUniversal(graph.HasTriangle)
			z1 := hierarchy.HonestGuess(g)
			z2 := hierarchy.CatchingChallenge(n, 0, 0, 1)
			out := make([]bool, n)
			return func(nd *clique.Node) {
					out[nd.ID()] = alg(nd, g.Row(nd.ID()), [][]uint64{z1[nd.ID()], z2[nd.ID()]})
				},
				func() any { return out }
		}},
	}
}

func TestBackendEquivalenceAcrossAlgorithms(t *testing.T) {
	for _, tc := range backendCases() {
		t.Run(tc.name, func(t *testing.T) {
			type outcome struct {
				stats clique.Stats
				out   any
			}
			results := map[string]outcome{}
			for _, backend := range clique.Backends() {
				f, get := tc.make(tc.n)
				res, err := clique.Run(clique.Config{N: tc.n, WordsPerPair: tc.wpp, Backend: backend}, f)
				if err != nil {
					t.Fatalf("%s: %v", backend, err)
				}
				results[backend] = outcome{res.Stats, get()}
			}
			ref := results["goroutine"]
			for backend, got := range results {
				if got.stats != ref.stats {
					t.Errorf("%s stats = %+v, goroutine stats = %+v", backend, got.stats, ref.stats)
				}
				if !reflect.DeepEqual(got.out, ref.out) {
					t.Errorf("%s outputs diverge from goroutine outputs", backend)
				}
			}
		})
	}
}

// TestBackendEquivalenceNondetVerifier runs the Theorem 3 pipeline
// (prover, transcript certificates, normal-form verifier) on both
// backends and demands identical verdicts and stats.
func TestBackendEquivalenceNondetVerifier(t *testing.T) {
	const n = 10
	g, _ := graph.PlantedColoring(n, 3, 0.7, uint64(n))
	alg := nondet.KColoringVerifier(3)
	z := nondet.KColoringProver(g, 3)
	if z == nil {
		t.Skip("prover found no colouring for this instance")
	}
	type run struct {
		accepted bool
		stats    clique.Stats
	}
	results := map[string]run{}
	for _, backend := range clique.Backends() {
		verdict, err := nondet.RunVerifier(clique.Config{N: n, Backend: backend}, g, alg, z)
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		results[backend] = run{verdict.Accepted, verdict.Result.Stats}
	}
	ref := results["goroutine"]
	for backend, got := range results {
		if got != ref {
			t.Errorf("%s verdict/stats = %+v, goroutine = %+v", backend, got, ref)
		}
	}
}

// fuzzBackendProgram builds a pseudo-random node program — random
// per-round send patterns and message lengths, derived purely from
// (seed, id, round) — so each backend replays the identical program.
func fuzzBackendProgram(seed int64, n, wpp int) clique.NodeFunc {
	return func(nd *clique.Node) {
		rng := rand.New(rand.NewSource(seed<<32 | int64(nd.ID())))
		rounds := 2 + rng.Intn(4)
		for r := 0; r < rounds; r++ {
			for _, to := range rng.Perm(n)[:1+rng.Intn(n-1)] {
				if to == nd.ID() {
					continue
				}
				words := make([]uint64, 1+rng.Intn(wpp))
				for i := range words {
					words[i] = rng.Uint64() % 1000
				}
				nd.Send(to, words...)
			}
			nd.Tick()
		}
	}
}

// checkBackendEquivalence replays the seed's program on every backend
// and compares stats and full transcripts word for word.
func checkBackendEquivalence(t *testing.T, seed int64, n, wpp int) {
	t.Helper()
	prog := fuzzBackendProgram(seed, n, wpp)
	var refStats clique.Stats
	var refTr []*clique.Transcript
	for i, backend := range clique.Backends() {
		res, err := clique.Run(clique.Config{N: n, WordsPerPair: wpp, RecordTranscript: true, Backend: backend}, prog)
		if err != nil {
			t.Fatalf("seed %d backend %s: %v", seed, backend, err)
		}
		if i == 0 {
			refStats, refTr = res.Stats, res.Transcripts
			continue
		}
		if res.Stats != refStats {
			t.Errorf("seed %d: %s stats %+v != %+v", seed, backend, res.Stats, refStats)
		}
		if !reflect.DeepEqual(res.Transcripts, refTr) {
			t.Errorf("seed %d: %s transcripts diverge", seed, backend)
		}
	}
}

// TestBackendEquivalenceFuzz is the always-on slice of the fuzz target:
// a fixed seed sweep that runs under plain `go test`.
func TestBackendEquivalenceFuzz(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		checkBackendEquivalence(t, seed, 3+int(seed%5), 3)
	}
}

// FuzzBackendEquivalence is the coverage-guided form: the fuzzer picks
// arbitrary seeds (and through them n, the round counts, and the send
// patterns) hunting for any divergence between the execution engines.
// CI runs it for a short fixed budget; locally:
//
//	go test -run '^$' -fuzz FuzzBackendEquivalence -fuzztime=30s .
func FuzzBackendEquivalence(f *testing.F) {
	for seed := int64(0); seed < 12; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		n := 3 + int(((seed%5)+5)%5) // 3..7, well-defined for negative seeds
		checkBackendEquivalence(t, seed, n, 3)
	})
}

// TestBackendEquivalenceErrors checks that model violations surface as
// the same error on both backends.
func TestBackendEquivalenceErrors(t *testing.T) {
	progs := map[string]clique.NodeFunc{
		"bandwidth": func(nd *clique.Node) {
			if nd.ID() == 1 {
				nd.Send(0, 1, 2, 3, 4, 5)
			}
			nd.Tick()
		},
		"unicast-in-broadcast-model": func(nd *clique.Node) {
			if nd.ID() == 2 {
				nd.Send(0, 9)
			}
			nd.Tick()
		},
		"panic": func(nd *clique.Node) {
			if nd.ID() == 1 {
				panic("fuzz-panic")
			}
			nd.Tick()
		},
		"fail": func(nd *clique.Node) {
			if nd.ID() == 0 {
				nd.Fail("deliberate")
			}
			nd.Tick()
		},
	}
	for name, prog := range progs {
		var ref error
		for i, backend := range clique.Backends() {
			cfg := clique.Config{N: 4, WordsPerPair: 2, Backend: backend}
			if name == "unicast-in-broadcast-model" {
				cfg.BroadcastOnly = true
			}
			_, err := clique.Run(cfg, prog)
			if err == nil {
				t.Fatalf("%s/%s: expected error", name, backend)
			}
			if i == 0 {
				ref = err
			} else if err.Error() != ref.Error() {
				t.Errorf("%s: %s error %q != goroutine error %q", name, backend, err, ref)
			}
		}
	}
}

func Example_bothBackends() {
	for _, backend := range clique.Backends() {
		res, err := clique.Run(clique.Config{N: 4, Backend: backend}, func(nd *clique.Node) {
			nd.Broadcast(uint64(nd.ID()))
			nd.Tick()
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: %d round, %d words\n", backend, res.Stats.Rounds, res.Stats.WordsSent)
	}
	// Output:
	// goroutine: 1 round, 12 words
	// lockstep: 1 round, 12 words
}
