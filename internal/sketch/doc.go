// Package sketch implements ℓ₀-sampling linear graph sketches in the
// AGM (Ahn–Guilbas–McGregor) style, plus KKT (Karger–Klein–Tarjan)
// edge subsampling — the randomized primitives behind the O(1)-round
// and o(m)-message congested-clique MST algorithms
// (Jurdziński–Nowicki, arXiv:1707.08484; Pemmaraju–Sardeshmukh,
// arXiv:1610.03897).
//
// A Sketch summarises a set of edge coordinates (ids < n², always
// nonzero for u < v pairs) in Reps × Levels cells of two XOR
// accumulator words each, packed into one bitvec.Row that is directly
// wire-compatible with the simulator's word payloads. Level ℓ of each
// repetition retains a coordinate with probability 2^-ℓ, decided by a
// pairwise-independent hash h(x) = (a·x + b) mod (2^61 − 1) seeded
// deterministically from the sketch Params, so every node of a clique
// derives the identical family from a shared seed.
//
// Because every cell is a pure XOR accumulator, the structure is
// linear over GF(2): Merge is word-parallel XOR, and the merge of two
// sketches is bit-identically the sketch of the symmetric difference
// of their edge sets. That is the property the MST algorithms lean on
// — XOR-ing the incidence sketches of a component's members cancels
// internal edges and leaves exactly the sketch of the component's cut
// — and the property the package's tests and fuzz target pin.
//
// Sample recovers some coordinate of the sketched set w.h.p. by
// scanning for a 1-sparse cell, verified against an independent
// fingerprint hash; it is Monte Carlo and may report not-found on a
// nonempty set (probability falls geometrically with Reps).
package sketch
