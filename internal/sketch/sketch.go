package sketch

import (
	"fmt"

	"repro/internal/bitvec"
)

// Params fixes a sketch's shape and hash family. Two sketches are
// mergeable iff their Params are equal: equal Params derive equal
// hash families, which is what makes the XOR linearity meaningful.
type Params struct {
	// N is the vertex count; edge coordinates live below N².
	N int
	// Levels is the number of geometric sampling levels per repetition.
	Levels int
	// Reps is the number of independent repetitions.
	Reps int
	// Seed seeds the pairwise-independent hash families.
	Seed uint64
}

// DefaultParams sizes a sketch for up to n² live coordinates: enough
// levels to shave any subset of the coordinate space down to an
// expected Θ(1) survivors at the deepest level, and two independent
// repetitions to push Sample's failure probability down.
func DefaultParams(n int, seed uint64) Params {
	levels := 2
	for c := uint64(4); c < uint64(n)*uint64(n); c *= 2 {
		levels++
	}
	return Params{N: n, Levels: levels, Reps: 2, Seed: seed}
}

// Words is the packed wire size of a sketch with these Params: two
// XOR-accumulator words (name, fingerprint) per cell.
func (p Params) Words() int { return p.Reps * p.Levels * 2 }

// Sketch is an ℓ₀-sampling summary of a set of edge coordinates. The
// cells are packed in one bitvec.Row — repetition-major, then level —
// so the whole sketch ships over a clique link as Row's word slice
// and merges with word-parallel XOR.
type Sketch struct {
	P   Params
	Row bitvec.Row

	// One level hash and one fingerprint hash per repetition, derived
	// from P.Seed; never serialised (receivers re-derive from Params).
	levelH []pairHash
	checkH []pairHash
}

// New builds an empty sketch for p, deriving the hash families.
func New(p Params) *Sketch {
	if p.N < 2 || p.Levels < 1 || p.Reps < 1 {
		panic(fmt.Sprintf("sketch: bad params %+v", p))
	}
	r := rng(p.Seed)
	s := &Sketch{
		P:      p,
		Row:    make(bitvec.Row, p.Words()),
		levelH: make([]pairHash, p.Reps),
		checkH: make([]pairHash, p.Reps),
	}
	for i := 0; i < p.Reps; i++ {
		s.levelH[i] = newPairHash(r)
		s.checkH[i] = newPairHash(r)
	}
	return s
}

// EdgeID packs the undirected edge {u, v} of an n-vertex graph into
// its coordinate min·n + max. Coordinates are always nonzero (the
// smallest pair {0, 1} maps to 1), so a zero name word is reliably
// "empty or collided", never a real edge.
func EdgeID(u, v, n int) uint64 {
	if u == v || u < 0 || v < 0 || u >= n || v >= n {
		panic(fmt.Sprintf("sketch: EdgeID(%d, %d) out of range for n = %d", u, v, n))
	}
	if u > v {
		u, v = v, u
	}
	return uint64(u)*uint64(n) + uint64(v)
}

// DecodeEdgeID inverts EdgeID; ok is false for words that do not
// decode to a canonical u < v pair.
func DecodeEdgeID(id uint64, n int) (u, v int, ok bool) {
	if n < 2 || id >= uint64(n)*uint64(n) {
		return 0, 0, false
	}
	u, v = int(id/uint64(n)), int(id%uint64(n))
	return u, v, u < v
}

// cell returns the row offset of cell (rep, lvl).
func (s *Sketch) cell(rep, lvl int) int { return 2 * (rep*s.P.Levels + lvl) }

// Toggle XORs edge {u, v} into the sketch. XOR insertion is its own
// inverse: toggling an edge twice removes it, so a sequence of
// Toggles sketches the symmetric difference of its arguments.
func (s *Sketch) Toggle(u, v int) { s.ToggleID(EdgeID(u, v, s.P.N)) }

// ToggleID is Toggle on a raw coordinate.
func (s *Sketch) ToggleID(id uint64) {
	for rep := 0; rep < s.P.Reps; rep++ {
		depth := level(s.levelH[rep].apply(id))
		if depth >= s.P.Levels {
			depth = s.P.Levels - 1
		}
		check := s.checkH[rep].apply(id)
		// The coordinate lives in levels 0..depth: level ℓ keeps it
		// with probability 2^-ℓ, so deeper levels hold sparser sets.
		for lvl := 0; lvl <= depth; lvl++ {
			off := s.cell(rep, lvl)
			s.Row[off] ^= id
			s.Row[off+1] ^= check
		}
	}
}

// Merge folds o into s: afterwards s is bit-identically the sketch of
// the symmetric difference of the two edge sets. Params must match.
func (s *Sketch) Merge(o *Sketch) {
	if s.P != o.P {
		panic(fmt.Sprintf("sketch: merging mismatched params %+v vs %+v", s.P, o.P))
	}
	s.Row.Xor(o.Row)
}

// MergeRow folds a received wire image (o must be Words() long) into
// s, for protocols that ship sketches as raw word payloads.
func (s *Sketch) MergeRow(o bitvec.Row) {
	if len(o) != len(s.Row) {
		panic(fmt.Sprintf("sketch: merging row of %d words into %d-word sketch", len(o), len(s.Row)))
	}
	s.Row.Xor(o)
}

// Empty reports whether every accumulator is zero. For a true sketch
// image this means the sketched set is empty (a nonempty set leaves
// its coordinates' XOR in level 0 of every repetition unless distinct
// coordinates collide to zero in both words — probability ≲ 2^-61).
func (s *Sketch) Empty() bool {
	for _, w := range s.Row {
		if w != 0 {
			return false
		}
	}
	return true
}

// Sample recovers one coordinate of the sketched set, as its
// endpoints, by scanning for a verified 1-sparse cell (deepest levels
// first — they are the sparsest). ok is false if no repetition has a
// recoverable cell; for a nonempty set that happens with probability
// falling geometrically in Reps, never spuriously returning a
// coordinate outside the set except with fingerprint-collision
// probability ≲ 2^-61 per cell.
func (s *Sketch) Sample() (u, v int, ok bool) {
	for lvl := s.P.Levels - 1; lvl >= 0; lvl-- {
		for rep := 0; rep < s.P.Reps; rep++ {
			off := s.cell(rep, lvl)
			name, check := s.Row[off], s.Row[off+1]
			if name == 0 && check == 0 {
				continue
			}
			// A 1-sparse cell holds exactly one coordinate: its name
			// must re-hash to the fingerprint, decode to a canonical
			// pair, and belong at this depth.
			if s.checkH[rep].apply(name) != check {
				continue
			}
			depth := level(s.levelH[rep].apply(name))
			if depth >= s.P.Levels {
				depth = s.P.Levels - 1
			}
			if depth < lvl {
				continue
			}
			if u, v, ok = DecodeEdgeID(name, s.P.N); ok {
				return u, v, true
			}
		}
	}
	return 0, 0, false
}
