package sketch

import (
	"math/rand/v2"
	"testing"

	"repro/internal/graph"
)

// randomEdgeSet draws k distinct edges of an n-clique.
func randomEdgeSet(n, k int, seed uint64) map[[2]int]bool {
	r := rand.New(rand.NewPCG(seed, 77))
	set := make(map[[2]int]bool)
	for len(set) < k {
		u, v := r.IntN(n), r.IntN(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		set[[2]int{u, v}] = true
	}
	return set
}

func sketchOf(p Params, set map[[2]int]bool) *Sketch {
	s := New(p)
	for e := range set {
		s.Toggle(e[0], e[1])
	}
	return s
}

// symDiff returns A Δ B.
func symDiff(a, b map[[2]int]bool) map[[2]int]bool {
	out := make(map[[2]int]bool)
	for e := range a {
		if !b[e] {
			out[e] = true
		}
	}
	for e := range b {
		if !a[e] {
			out[e] = true
		}
	}
	return out
}

// TestLinearity pins the package's core property bit-identically:
// Merge(S(A), S(B)) has exactly the same packed row as S(A Δ B).
func TestLinearity(t *testing.T) {
	for _, tc := range []struct {
		n, ka, kb int
		seed      uint64
	}{
		{8, 3, 3, 1},
		{16, 10, 10, 2},
		{32, 40, 25, 3},
		{64, 200, 200, 4},
		{64, 1, 0, 5},
		{64, 0, 0, 6},
	} {
		p := DefaultParams(tc.n, tc.seed)
		a := randomEdgeSet(tc.n, tc.ka, tc.seed*10+1)
		b := randomEdgeSet(tc.n, tc.kb, tc.seed*10+2)
		sa, sb := sketchOf(p, a), sketchOf(p, b)
		sa.Merge(sb)
		direct := sketchOf(p, symDiff(a, b))
		if !sa.Row.Equal(direct.Row) {
			t.Errorf("n=%d ka=%d kb=%d seed=%d: Merge(S(A),S(B)) != S(A Δ B) bit-for-bit",
				tc.n, tc.ka, tc.kb, tc.seed)
		}
	}
}

// TestToggleCancels: XOR insertion is its own inverse, so re-toggling
// every edge empties the sketch exactly.
func TestToggleCancels(t *testing.T) {
	p := DefaultParams(32, 9)
	set := randomEdgeSet(32, 60, 9)
	s := sketchOf(p, set)
	if s.Empty() {
		t.Fatal("sketch of a nonempty set is empty")
	}
	for e := range set {
		s.Toggle(e[0], e[1])
	}
	if !s.Empty() {
		t.Fatal("sketch not empty after cancelling every edge")
	}
}

// TestSampleValidity: whatever Sample returns must be in the sketched
// set — across sizes and many seeds.
func TestSampleValidity(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		n := 8 + int(seed%3)*28
		k := 1 + int(seed)%40
		if maxK := n * (n - 1) / 2; k > maxK {
			k = maxK
		}
		set := randomEdgeSet(n, k, seed)
		s := sketchOf(DefaultParams(n, seed), set)
		u, v, ok := s.Sample()
		if !ok {
			continue // Monte Carlo miss; rate is bounded below
		}
		if !set[[2]int{u, v}] {
			t.Fatalf("n=%d k=%d seed=%d: Sample returned (%d,%d), not in the set", n, k, seed, u, v)
		}
	}
}

// TestSampleSuccessRate: empirical lower bound on ℓ₀-sample recovery
// over many seeds and set sizes. The AGM analysis gives a constant
// success probability per repetition; with DefaultParams' two
// repetitions the observed rate is well above 80%, and a genuine
// regression (broken level hash, wrong cell scan) collapses it.
func TestSampleSuccessRate(t *testing.T) {
	const trials = 300
	hits := 0
	for seed := uint64(0); seed < trials; seed++ {
		n := 16 << (seed % 3)
		k := 1 + int(seed)%(n*2)
		set := randomEdgeSet(n, k, seed+1000)
		s := sketchOf(DefaultParams(n, seed), set)
		if _, _, ok := s.Sample(); ok {
			hits++
		}
	}
	if rate := float64(hits) / trials; rate < 0.80 {
		t.Fatalf("Sample succeeded on %d/%d nonempty sets (%.2f), want >= 0.80", hits, trials, rate)
	}
}

// TestEmptyNeverSamples: the empty sketch must not hallucinate.
func TestEmptyNeverSamples(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		s := New(DefaultParams(32, seed))
		if !s.Empty() {
			t.Fatal("fresh sketch not Empty")
		}
		if _, _, ok := s.Sample(); ok {
			t.Fatalf("seed %d: Sample ok on the empty sketch", seed)
		}
	}
}

// TestCutSketchCancellation is the AGM mechanism the MST algorithms
// use: XOR-merging the full incidence sketches of a vertex group
// cancels internal edges and leaves exactly the cut.
func TestCutSketchCancellation(t *testing.T) {
	const n = 24
	g := graph.GnpWeighted(n, 0.3, 1000, false, 5)
	p := DefaultParams(n, 42)
	// Group = vertices 0..n/2-1. Merge their incidence sketches.
	merged := New(p)
	for v := 0; v < n/2; v++ {
		s := New(p)
		for u := 0; u < n; u++ {
			if u != v && g.HasEdge(v, u) {
				s.Toggle(v, u)
			}
		}
		merged.Merge(s)
	}
	// Reference: sketch of the cut edges only.
	cut := make(map[[2]int]bool)
	for v := 0; v < n/2; v++ {
		for u := n / 2; u < n; u++ {
			if g.HasEdge(v, u) {
				cut[[2]int{v, u}] = true
			}
		}
	}
	if !merged.Row.Equal(sketchOf(p, cut).Row) {
		t.Fatal("merged incidence sketches != cut sketch")
	}
	if u, v, ok := merged.Sample(); ok {
		if !cut[[2]int{min(u, v), max(u, v)}] {
			t.Fatalf("cut sample (%d,%d) is not a cut edge", u, v)
		}
	} else if len(cut) > 0 {
		t.Log("cut sample missed (Monte Carlo); linearity still verified")
	}
}

// TestPairHashUniformity sanity-checks the family: means and level
// depths roughly match a uniform 61-bit value.
func TestPairHashUniformity(t *testing.T) {
	r := rng(7)
	h := newPairHash(r)
	const samples = 1 << 14
	deep := 0
	for x := uint64(1); x <= samples; x++ {
		if level(h.apply(x)) >= 4 {
			deep++
		}
	}
	// P(level >= 4) = 2^-4; allow generous slack.
	want := samples / 16
	if deep < want/2 || deep > want*2 {
		t.Fatalf("level >= 4 on %d/%d values, want about %d", deep, samples, want)
	}
}

// TestSamplerConcentration: KKT subsampling keeps about rate·m edges,
// identically from every node's point of view.
func TestSamplerConcentration(t *testing.T) {
	const n = 64
	g := graph.GnpWeighted(n, 0.5, 1<<20, false, 3)
	m := 0
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if g.HasEdge(u, v) {
				m++
			}
		}
	}
	for _, rate := range []float64{0.25, 0.5} {
		kept := SampleEdges(g, rate, 11)
		want := rate * float64(m)
		if got := float64(len(kept)); got < want*0.6 || got > want*1.4 {
			t.Errorf("rate %.2f: kept %d of %d edges, want about %.0f", rate, len(kept), m, want)
		}
		s := NewSampler(n, rate, 11)
		for _, e := range kept {
			if !s.Keep(e.U, e.V) || !s.Keep(e.V, e.U) {
				t.Fatalf("Keep(%d,%d) disagrees with SampleEdges or is asymmetric", e.U, e.V)
			}
		}
	}
}

// FuzzSketchLinearity fuzzes the core linearity and validity
// properties over arbitrary toggle sequences: the fuzzer controls the
// vertex count, seed, and two edge streams (with duplicates, which
// exercise cancellation).
func FuzzSketchLinearity(f *testing.F) {
	f.Add(uint8(16), uint64(1), []byte{1, 2, 3, 4, 1, 2}, []byte{5, 6})
	f.Add(uint8(8), uint64(9), []byte{}, []byte{0, 1, 0, 1})
	f.Fuzz(func(t *testing.T, rawN uint8, seed uint64, streamA, streamB []byte) {
		n := 4 + int(rawN)%61
		decode := func(stream []byte) map[[2]int]bool {
			set := make(map[[2]int]bool)
			for i := 0; i+1 < len(stream); i += 2 {
				u, v := int(stream[i])%n, int(stream[i+1])%n
				if u == v {
					continue
				}
				if u > v {
					u, v = v, u
				}
				// Toggle semantics: duplicates cancel.
				if set[[2]int{u, v}] {
					delete(set, [2]int{u, v})
				} else {
					set[[2]int{u, v}] = true
				}
			}
			return set
		}
		toggleAll := func(s *Sketch, stream []byte) {
			for i := 0; i+1 < len(stream); i += 2 {
				u, v := int(stream[i])%n, int(stream[i+1])%n
				if u != v {
					s.Toggle(u, v)
				}
			}
		}
		p := DefaultParams(n, seed)
		sa, sb := New(p), New(p)
		toggleAll(sa, streamA)
		toggleAll(sb, streamB)
		a, b := decode(streamA), decode(streamB)
		sa.Merge(sb)
		want := sketchOf(p, symDiff(a, b))
		if !sa.Row.Equal(want.Row) {
			t.Fatal("Merge != sketch of symmetric difference")
		}
		if len(symDiff(a, b)) == 0 && !sa.Empty() {
			t.Fatal("empty symmetric difference but nonempty merged sketch")
		}
		if u, v, ok := sa.Sample(); ok {
			if u > v {
				u, v = v, u
			}
			if !symDiff(a, b)[[2]int{u, v}] {
				t.Fatalf("Sample returned (%d,%d), not in A Δ B", u, v)
			}
		}
	})
}
