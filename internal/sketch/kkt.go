package sketch

import (
	"fmt"

	"repro/internal/graph"
)

// Sampler is KKT-style edge subsampling: every edge survives with
// probability rate, decided by a pairwise-independent hash of the
// edge coordinate, so every node of a clique holding the same (n,
// rate, seed) makes the identical keep/drop decision for every edge
// without communicating — the property the Karger–Klein–Tarjan
// recursion needs when the sampled subgraph is solved distributedly.
type Sampler struct {
	n      int
	bound  uint64
	levelH pairHash
}

// NewSampler builds the shared sampler; rate is clamped to [0, 1].
func NewSampler(n int, rate float64, seed uint64) Sampler {
	if n < 2 {
		panic(fmt.Sprintf("sketch: NewSampler(n = %d)", n))
	}
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	return Sampler{
		n:      n,
		bound:  uint64(rate * float64(mersenne61)),
		levelH: newPairHash(rng(seed)),
	}
}

// Keep reports whether edge {u, v} survives the subsample. Symmetric
// in u, v.
func (s Sampler) Keep(u, v int) bool {
	return s.levelH.apply(EdgeID(u, v, s.n)) < s.bound
}

// WeightedEdge is one surviving edge of a central subsample.
type WeightedEdge struct {
	U, V int
	W    int64
}

// SampleEdges applies the sampler centrally to a weighted graph and
// returns the surviving edges in canonical (u, v) order — the oracle
// counterpart of per-node Keep calls, used by tests and experiments
// to check concentration.
func SampleEdges(g *graph.Weighted, rate float64, seed uint64) []WeightedEdge {
	s := NewSampler(g.N, rate, seed)
	var out []WeightedEdge
	for u := 0; u < g.N; u++ {
		for v := u + 1; v < g.N; v++ {
			if g.HasEdge(u, v) && s.Keep(u, v) {
				out = append(out, WeightedEdge{U: u, V: v, W: g.W[u][v]})
			}
		}
	}
	return out
}
