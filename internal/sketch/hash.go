package sketch

import (
	"math/bits"
	"math/rand/v2"
)

// mersenne61 is the Mersenne prime 2^61 − 1, the field the hash
// family lives in. Mod-p reduction is two shifts and an add because
// 2^61 ≡ 1 (mod p).
const mersenne61 = 1<<61 - 1

// rng is the deterministic generator idiom shared with internal/graph:
// one seed fans out to a PCG stream, so equal seeds give equal hash
// families at every node of a clique.
func rng(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// pairHash is one member h(x) = (a·x + b) mod (2^61 − 1) of the
// textbook pairwise-independent family over Z_p: for x ≠ y the pair
// (h(x), h(y)) is uniform over Z_p², which is all the level-sampling
// analysis needs.
type pairHash struct{ a, b uint64 }

// newPairHash draws one family member; a ≠ 0 keeps it non-constant.
func newPairHash(r *rand.Rand) pairHash {
	return pairHash{
		a: r.Uint64()%(mersenne61-1) + 1,
		b: r.Uint64() % mersenne61,
	}
}

// apply evaluates h(x) into [0, 2^61 − 1).
func (h pairHash) apply(x uint64) uint64 {
	hi, lo := bits.Mul64(h.a, x%mersenne61)
	// a·x = hi·2^64 + lo ≡ 8·hi + (lo >> 61) + (lo & p) (mod p),
	// and the folded sum fits a uint64 because hi < 2^58.
	r := hi<<3 + lo>>61 + lo&mersenne61 + h.b
	for r >= mersenne61 {
		r -= mersenne61
	}
	return r
}

// level maps a hash value to its sampling depth: depth ≥ ℓ with
// probability 2^-ℓ, read off the leading zeros of the 61-bit value.
func level(h uint64) int {
	return bits.LeadingZeros64(h) - (64 - 61)
}
