package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// fakeRound feeds the collector one round with the given pair traffic.
func fakeRound(c *Collector, round int, pairs map[[2]int]int) {
	c.EndRound(RoundEnd{
		Round:       round,
		Wall:        time.Millisecond,
		BarrierWait: 100 * time.Microsecond,
		Pairs: func(visit func(from, to, words int)) {
			for p, w := range pairs {
				visit(p[0], p[1], w)
			}
		},
	})
}

func TestCollectorRoundsAndHeatmap(t *testing.T) {
	c := NewCollector("t", 3, 2)
	fakeRound(c, 0, map[[2]int]int{{0, 1}: 2, {1, 2}: 1})
	fakeRound(c, 1, map[[2]int]int{{0, 1}: 1})
	tr := c.Finish()

	if len(tr.Rounds) != 2 {
		t.Fatalf("rounds = %d, want 2", len(tr.Rounds))
	}
	if tr.Rounds[0].Words != 3 || tr.Rounds[0].MaxPair != 2 {
		t.Errorf("round 0 = %+v, want words=3 maxPair=2", tr.Rounds[0])
	}
	if got := tr.Pair[0*3+1]; got != 3 {
		t.Errorf("pair(0,1) = %d, want 3", got)
	}
	if got := tr.Pair[1*3+2]; got != 1 {
		t.Errorf("pair(1,2) = %d, want 1", got)
	}

	s := tr.Summary()
	if s.Words != 4 || s.MaxPair != 2 || s.Rounds != 2 {
		t.Errorf("summary = %+v, want words=4 maxPair=2 rounds=2", s)
	}
	if len(s.HotPairs) != 2 || s.HotPairs[0] != (PairLoad{From: 0, To: 1, Words: 3}) {
		t.Errorf("hot pairs = %+v", s.HotPairs)
	}
}

// TestPhaseTimelineCoversAllRounds pins the gap-fill invariant: the
// phase timeline partitions [0, rounds) exactly, whatever the span
// structure — gaps, nesting, spans left open.
func TestPhaseTimelineCoversAllRounds(t *testing.T) {
	cases := []struct {
		name  string
		spans []Span // StartRound/Rounds precomputed
	}{
		{"no phases", nil},
		{"one covering all", []Span{{Kind: KindPhase, Name: "a", StartRound: 0, Rounds: 10}}},
		{"gaps", []Span{
			{Kind: KindPhase, Name: "a", StartRound: 2, Rounds: 3},
			{Kind: KindPhase, Name: "b", StartRound: 7, Rounds: 1},
		}},
		{"nested clipped", []Span{
			{Kind: KindPhase, Name: "outer", StartRound: 0, Rounds: 8},
			{Kind: KindPhase, Name: "inner", StartRound: 2, Rounds: 3},
		}},
		{"overrun clipped", []Span{
			{Kind: KindPhase, Name: "a", StartRound: 8, Rounds: 99},
		}},
		{"ops ignored", []Span{
			{Kind: KindOp, Name: "Broadcast", StartRound: 1, Rounds: 4},
			{Kind: KindPhase, Name: "a", StartRound: 3, Rounds: 2},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := &RunTrace{N: 2, Spans: tc.spans, Rounds: make([]Round, 10)}
			for i := range tr.Rounds {
				tr.Rounds[i].Words = 1
			}
			phases := tr.phaseTimeline()
			sum, words := 0, int64(0)
			cur := 0
			for _, p := range phases {
				if p.StartRound != cur {
					t.Errorf("phase %q starts at %d, want contiguous %d", p.Name, p.StartRound, cur)
				}
				cur = p.StartRound + p.Rounds
				sum += p.Rounds
				words += p.Words
			}
			if sum != 10 {
				t.Errorf("phase rounds sum = %d, want 10 (phases %+v)", sum, phases)
			}
			if words != 10 {
				t.Errorf("phase words sum = %d, want 10", words)
			}
		})
	}
}

func TestStartSpanAndFinish(t *testing.T) {
	c := NewCollector("t", 2, 1)
	endA := c.StartSpan(KindPhase, "a", 0, 0)
	fakeRound(c, 0, nil)
	fakeRound(c, 1, nil)
	endA(2)
	endA(5) // closer is idempotent
	c.StartSpan(KindOp, "Broadcast", 2, 7)
	fakeRound(c, 2, nil)
	tr := c.Finish()

	if tr.Spans[0].Rounds != 2 {
		t.Errorf("span a rounds = %d, want 2", tr.Spans[0].Rounds)
	}
	if tr.Spans[1].Rounds != 1 { // left open, sealed at last round by Finish
		t.Errorf("open span rounds = %d, want 1", tr.Spans[1].Rounds)
	}
	if tr.Spans[1].Words != 7 {
		t.Errorf("op words = %d, want 7", tr.Spans[1].Words)
	}
}

func TestOpAggregates(t *testing.T) {
	tr := &RunTrace{N: 2, Spans: []Span{
		{Kind: KindOp, Name: "Broadcast", Rounds: 2, Words: 10},
		{Kind: KindOp, Name: "Gather", Rounds: 1, Words: 5},
		{Kind: KindOp, Name: "Broadcast", Rounds: 3, Words: 20},
	}}
	ops := tr.opAggregates()
	if len(ops) != 2 {
		t.Fatalf("ops = %+v, want 2 entries", ops)
	}
	if ops[0] != (OpSummary{Name: "Broadcast", Calls: 2, Rounds: 5, Words: 30}) {
		t.Errorf("Broadcast aggregate = %+v", ops[0])
	}
}

func TestPhaseOpHelpersOnPlainValue(t *testing.T) {
	// A value that is neither phaser nor opener gets the shared Nop.
	if got := Phase(struct{}{}, "x"); &got == nil {
		t.Fatal("nil closer")
	}
	Phase(struct{}{}, "x")()
	Op(struct{}{}, "x", 1)()
}

func TestWriteChromeValidJSON(t *testing.T) {
	c := NewCollector("run 0 (n=2, wpp=1)", 2, 1)
	c.SetBackend("lockstep")
	end := c.StartSpan(KindPhase, "a", 0, 0)
	fakeRound(c, 0, map[[2]int]int{{0, 1}: 1})
	end(1)
	tr := c.Finish()

	var buf bytes.Buffer
	if err := WriteChrome(&buf, []*RunTrace{tr}); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v", err)
	}
	var phases, rounds, metas int
	for _, ev := range events {
		switch ev["ph"] {
		case "M":
			metas++
		case "X":
			if ev["cat"] == "phase" {
				phases++
			}
			if ev["cat"] == "round" {
				rounds++
			}
		}
	}
	if metas == 0 || phases != 1 || rounds != 1 {
		t.Errorf("metas=%d phases=%d rounds=%d", metas, phases, rounds)
	}
}
