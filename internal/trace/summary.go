package trace

import "sort"

// UntracedPhase is the name given to round ranges no algorithm phase
// covered. Summary inserts it so the per-phase round counts always sum
// exactly to the run's Stats.Rounds — the invariant the trace
// determinism tests pin.
const UntracedPhase = "(untraced)"

// Report is the cliquetrace/v1 envelope block: one summary per
// simulated run, attached to an experiment Result when tracing was
// requested.
type Report struct {
	Schema string        `json:"schema"`
	Runs   []*RunSummary `json:"runs"`
}

// NewReport builds an empty cliquetrace/v1 report.
func NewReport() *Report {
	return &Report{Schema: SchemaVersion}
}

// RunSummary is the machine-readable per-run trace table: totals, the
// gap-filled phase timeline, per-op aggregates, and the hottest links.
type RunSummary struct {
	Label        string         `json:"label"`
	N            int            `json:"n"`
	WordsPerPair int            `json:"words_per_pair"`
	Backend      string         `json:"backend,omitempty"`
	Rounds       int            `json:"rounds"`
	Words        int64          `json:"words"`
	MaxPair      int            `json:"max_pair"`
	WallNS       int64          `json:"wall_ns"`
	BarrierNS    int64          `json:"barrier_ns"`
	Phases       []PhaseSummary `json:"phases"`
	Ops          []OpSummary    `json:"ops,omitempty"`
	HotPairs     []PairLoad     `json:"hot_pairs,omitempty"`
}

// PhaseSummary is one entry of the run's phase timeline. Entries are
// disjoint, ordered, and cover [0, Rounds) exactly.
type PhaseSummary struct {
	Name       string `json:"name"`
	StartRound int    `json:"start_round"`
	Rounds     int    `json:"rounds"`
	Words      int64  `json:"words"`
	WallNS     int64  `json:"wall_ns"`
}

// OpSummary aggregates a collective operation over the run.
type OpSummary struct {
	Name   string `json:"name"`
	Calls  int    `json:"calls"`
	Rounds int    `json:"rounds"`
	Words  int64  `json:"words"`
}

// PairLoad is one ordered pair's cumulative traffic.
type PairLoad struct {
	From  int   `json:"from"`
	To    int   `json:"to"`
	Words int64 `json:"words"`
}

// maxHotPairs bounds the heatmap excerpt carried by the summary; the
// full n*n matrix stays on the RunTrace (and in the Perfetto export).
const maxHotPairs = 8

// Summary condenses the trace into its envelope form.
func (t *RunTrace) Summary() *RunSummary {
	s := &RunSummary{
		Label:        t.Label,
		N:            t.N,
		WordsPerPair: t.WordsPerPair,
		Backend:      t.Backend,
		Rounds:       len(t.Rounds),
		WallNS:       t.WallNS,
	}
	for _, r := range t.Rounds {
		s.Words += r.Words
		s.BarrierNS += r.BarrierNS
		if r.MaxPair > s.MaxPair {
			s.MaxPair = r.MaxPair
		}
	}
	s.Phases = t.phaseTimeline()
	s.Ops = t.opAggregates()
	s.HotPairs = t.hotPairs(maxHotPairs)
	return s
}

// roundRange sums the recorded words and wall time of rounds [lo, hi).
func (t *RunTrace) roundRange(lo, hi int) (words int64, wallNS int64) {
	if lo < 0 {
		lo = 0
	}
	if hi > len(t.Rounds) {
		hi = len(t.Rounds)
	}
	for i := lo; i < hi; i++ {
		words += t.Rounds[i].Words
		wallNS += t.Rounds[i].WallNS
	}
	return words, wallNS
}

// phaseTimeline flattens the node-0 phase spans into a disjoint,
// gap-filled cover of [0, rounds): overlapping or nested phases are
// clipped to whatever the preceding phases left uncovered, and every
// uncovered range becomes an UntracedPhase entry. By construction the
// entries' Rounds sum to exactly len(t.Rounds) == Stats.Rounds.
func (t *RunTrace) phaseTimeline() []PhaseSummary {
	total := len(t.Rounds)
	var out []PhaseSummary
	emit := func(name string, lo, hi int) {
		if hi <= lo {
			return
		}
		words, wall := t.roundRange(lo, hi)
		out = append(out, PhaseSummary{
			Name: name, StartRound: lo, Rounds: hi - lo, Words: words, WallNS: wall,
		})
	}
	cur := 0
	for _, sp := range t.Spans {
		if sp.Kind != KindPhase {
			continue
		}
		lo, hi := sp.StartRound, sp.StartRound+sp.Rounds
		if hi > total {
			hi = total
		}
		if lo < cur {
			lo = cur // clip nested/overlapping phases
		}
		if hi <= lo {
			continue
		}
		emit(UntracedPhase, cur, lo)
		emit(sp.Name, lo, hi)
		cur = hi
	}
	emit(UntracedPhase, cur, total)
	return out
}

// opAggregates folds op spans by name, keeping first-seen order.
func (t *RunTrace) opAggregates() []OpSummary {
	idx := map[string]int{}
	var out []OpSummary
	for _, sp := range t.Spans {
		if sp.Kind != KindOp {
			continue
		}
		i, ok := idx[sp.Name]
		if !ok {
			i = len(out)
			idx[sp.Name] = i
			out = append(out, OpSummary{Name: sp.Name})
		}
		out[i].Calls++
		out[i].Rounds += sp.Rounds
		out[i].Words += sp.Words
	}
	return out
}

// hotPairs returns the k ordered pairs that carried the most words over
// the run, heaviest first; ties break on (from, to) so the excerpt is
// deterministic for deterministic traffic.
func (t *RunTrace) hotPairs(k int) []PairLoad {
	var loads []PairLoad
	for i, w := range t.Pair {
		if w > 0 {
			loads = append(loads, PairLoad{From: i / t.N, To: i % t.N, Words: w})
		}
	}
	sort.Slice(loads, func(a, b int) bool {
		if loads[a].Words != loads[b].Words {
			return loads[a].Words > loads[b].Words
		}
		if loads[a].From != loads[b].From {
			return loads[a].From < loads[b].From
		}
		return loads[a].To < loads[b].To
	})
	if len(loads) > k {
		loads = loads[:k]
	}
	return loads
}
