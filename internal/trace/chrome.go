package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event export: the "JSON array format" understood by
// Perfetto and chrome://tracing. Each RunTrace becomes one process
// (pid = run index + 1) with three threads — rounds, phases, ops — plus
// counter tracks for words/round and max-pair/round. Timestamps are the
// run's cumulative round wall time in microseconds, so the timeline
// shows where wall time went, round by round.

// chromeEvent is one trace-event record. Only the fields the viewers
// read are emitted; Args is free-form.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

const (
	tidRounds = 1
	tidPhases = 2
	tidOps    = 3
)

func usec(ns int64) float64 { return float64(ns) / 1e3 }

// WriteChrome serialises the traces as Chrome trace-event JSON. Open
// the output in https://ui.perfetto.dev or chrome://tracing.
func WriteChrome(w io.Writer, traces []*RunTrace) error {
	var events []chromeEvent
	for runIdx, t := range traces {
		pid := runIdx + 1
		name := t.Label
		if name == "" {
			name = fmt.Sprintf("run %d", runIdx)
		}
		meta := func(what, label string, tid int) chromeEvent {
			return chromeEvent{
				Name: what, Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": label},
			}
		}
		events = append(events,
			meta("process_name", fmt.Sprintf("%s [n=%d wpp=%d %s]", name, t.N, t.WordsPerPair, t.Backend), 0),
			meta("thread_name", "rounds", tidRounds),
			meta("thread_name", "phases", tidPhases),
			meta("thread_name", "ops", tidOps),
		)

		// Rounds track + counter tracks, on the cumulative wall clock.
		var cum int64
		for i, r := range t.Rounds {
			events = append(events,
				chromeEvent{
					Name: fmt.Sprintf("round %d", i), Ph: "X", Cat: "round",
					Pid: pid, Tid: tidRounds,
					TS: usec(cum), Dur: usec(r.WallNS),
					Args: map[string]any{
						"words": r.Words, "max_pair": r.MaxPair,
						"barrier_wait_us": usec(r.BarrierNS),
					},
				},
				chromeEvent{
					Name: "words/round", Ph: "C", Pid: pid,
					TS:   usec(cum),
					Args: map[string]any{"words": r.Words},
				},
				chromeEvent{
					Name: "max pair/round", Ph: "C", Pid: pid,
					TS:   usec(cum),
					Args: map[string]any{"words": r.MaxPair},
				},
			)
			cum += r.WallNS
		}

		// Span tracks: phases and ops on their own threads, located by
		// the collector's wall clock.
		for _, sp := range t.Spans {
			tid := tidOps
			if sp.Kind == KindPhase {
				tid = tidPhases
			}
			args := map[string]any{
				"start_round": sp.StartRound,
				"rounds":      sp.Rounds,
			}
			if sp.Words > 0 {
				args["words"] = sp.Words
			}
			events = append(events, chromeEvent{
				Name: sp.Name, Ph: "X", Cat: sp.Kind,
				Pid: pid, Tid: tid,
				TS: usec(sp.StartNS), Dur: usec(sp.DurNS),
				Args: args,
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
