// Package trace is the simulator's round-level observability plane: a
// zero-cost-when-off tracing subsystem that turns a simulated run into
// an inspectable timeline instead of a single Stats total.
//
// Three layers feed one Collector:
//
//   - The engine backends report every exchanged round through the
//     Tracer interface (EndRound): wall time, barrier-wait time, and
//     the per-ordered-pair word counts of the round — the congestion
//     heatmap the paper's accounting is about.
//   - The collective layer (internal/comm) opens an op span around
//     every collective via Op: operation name, payload words, and the
//     rounds the collective consumed.
//   - Algorithm packages mark multi-phase structure via Phase, so
//     Mul3DBits' three exchanges or Borůvka's iterations appear as
//     named regions.
//
// Spans are recorded from node 0's perspective: the model is uniform
// (every node runs the same program), so node 0's phase structure is
// the run's phase structure, and the trace stays O(spans) rather than
// O(n * spans). Round data comes from the engine and is global.
//
// When no Tracer is configured the whole plane folds to nil checks and
// a shared no-op closure; the steady-state bench gate
// (exp.MeasureTraceOffProbe, compared in CI against BENCH_baseline.json)
// holds the trace-off overhead under 1%.
//
// A finished Collector yields a RunTrace, which serialises two ways:
// Summary produces the deterministic-shape cliquetrace/v1 envelope
// block (per-phase and per-op tables whose round counts sum exactly to
// Stats.Rounds), and WriteChrome emits Chrome trace-event JSON loadable
// in Perfetto or chrome://tracing (round, phase and op tracks plus
// words-per-round counter tracks).
package trace
