package trace

import (
	"time"
)

// SchemaVersion identifies the trace envelope layout attached to
// experiment results (Result.Trace in package exp).
const SchemaVersion = "cliquetrace/v1"

// Span kinds. Phases are algorithm-declared named regions; ops are
// collective-layer operations.
const (
	KindPhase = "phase"
	KindOp    = "op"
)

// RoundEnd is the engine's per-round report, delivered to the Tracer
// immediately after the round's messages were exchanged.
type RoundEnd struct {
	// Round is the just-completed round's index (0-based).
	Round int
	// Wall is the wall-clock duration of the round: from the end of the
	// previous exchange (or run start) to the end of this one.
	Wall time.Duration
	// BarrierWait measures synchronisation cost. On the goroutine
	// backend it is how long the round's earliest arrival waited for
	// the stragglers; on the lockstep backend it is the scheduler's
	// exchange time (all nodes are suspended during it).
	BarrierWait time.Duration
	// Pairs iterates the round's delivered traffic: visit is called for
	// every ordered pair that carried at least one word. Valid only for
	// the duration of the EndRound call.
	Pairs func(visit func(from, to, words int))
}

// Tracer is the engine-facing trace hook. A nil Tracer in the engine
// config disables tracing entirely; backends guard every call site with
// a nil check so the off path stays free of trace work.
type Tracer interface {
	EndRound(e RoundEnd)
}

// SpanRecorder is the node-facing half of a trace collector: node
// handles (clique.Node) start phase and op spans through it. It is
// split from Tracer so engine backends depend only on what they call.
type SpanRecorder interface {
	// StartSpan opens a span at startRound and returns the closer,
	// which the caller invokes with the round the span ended on.
	// Words is the payload word count for op spans (0 for phases).
	StartSpan(kind, name string, startRound int, words int64) func(endRound int)
}

// Nop is the shared no-op span closer returned whenever tracing is off
// or the caller is not the recording node, so untraced span sites cost
// a nil check and no allocation.
var Nop = func() {}

// phaser and opener are the optional node-handle interfaces the Phase
// and Op helpers look for. clique.Node and virtual.Node implement
// them; any other Endpoint implementation simply runs untraced.
type phaser interface {
	TracePhase(name string) func()
}

type opener interface {
	TraceOp(name string, words int) func()
}

// Phase opens a named algorithm phase on the node handle nd and
// returns its closer. Use it to mark multi-phase structure:
//
//	done := trace.Phase(nd, "boruvka/merge")
//	... rounds ...
//	done()
//
// When tracing is off (or nd does not support tracing) it returns the
// shared Nop closure.
func Phase(nd any, name string) func() {
	if p, ok := nd.(phaser); ok {
		return p.TracePhase(name)
	}
	return Nop
}

// Op opens a collective-operation span carrying `words` payload words.
// The collective layer wraps every collective in one; rounds consumed
// are measured by the closer.
func Op(nd any, name string, words int) func() {
	if o, ok := nd.(opener); ok {
		return o.TraceOp(name, words)
	}
	return Nop
}

// Span is one recorded region of a run: a named phase or a collective
// op, measured in rounds and wall time.
type Span struct {
	Kind string `json:"kind"`
	Name string `json:"name"`
	// StartRound is the number of rounds completed when the span
	// opened; Rounds is how many rounds it spanned (0 for a span that
	// opened and closed within one round's compute).
	StartRound int `json:"start_round"`
	Rounds     int `json:"rounds"`
	// Words is the payload word count declared by op spans.
	Words int64 `json:"words,omitempty"`
	// StartNS/DurNS locate the span on the run's wall clock.
	StartNS int64 `json:"start_ns"`
	DurNS   int64 `json:"dur_ns"`
}

// Round is the recorded cost of one exchanged round.
type Round struct {
	WallNS    int64 `json:"wall_ns"`
	BarrierNS int64 `json:"barrier_ns"`
	Words     int64 `json:"words"`
	MaxPair   int   `json:"max_pair"`
}

// RunTrace is the full trace of one simulated run: per-round costs,
// node-0 spans, and the cumulative per-ordered-pair congestion heatmap
// (from-major, n*n entries).
type RunTrace struct {
	Label        string  `json:"label"`
	N            int     `json:"n"`
	WordsPerPair int     `json:"words_per_pair"`
	Backend      string  `json:"backend,omitempty"`
	Rounds       []Round `json:"rounds"`
	Spans        []Span  `json:"spans"`
	Pair         []int64 `json:"pair_words"`
	WallNS       int64   `json:"wall_ns"`
}

// Collector accumulates one run's trace. The engine's scheduler calls
// EndRound between rounds (while every node program is suspended at the
// barrier) and node 0's program calls StartSpan and its closers from
// its own goroutine; the two touch disjoint state, so the Collector
// needs no locking — the execution model is the synchronisation.
type Collector struct {
	t     RunTrace
	start time.Time
}

// NewCollector builds a collector for one run of an n-node clique with
// the given per-pair word budget. The label identifies the run in
// multi-run traces ("run 3 (n=64, wpp=1)").
func NewCollector(label string, n, wordsPerPair int) *Collector {
	return &Collector{
		t: RunTrace{
			Label:        label,
			N:            n,
			WordsPerPair: wordsPerPair,
			Pair:         make([]int64, n*n),
		},
		start: time.Now(),
	}
}

// SetBackend records the executing backend's name on the trace.
func (c *Collector) SetBackend(name string) { c.t.Backend = name }

// EndRound folds one exchanged round into the trace: per-round word
// total and max-pair load are derived from the same Pairs iteration
// that feeds the congestion heatmap, so both backends account
// identically whatever their internal statistics layout.
func (c *Collector) EndRound(e RoundEnd) {
	var words int64
	maxPair := 0
	n := c.t.N
	pair := c.t.Pair
	e.Pairs(func(from, to, w int) {
		words += int64(w)
		if w > maxPair {
			maxPair = w
		}
		pair[from*n+to] += int64(w)
	})
	c.t.Rounds = append(c.t.Rounds, Round{
		WallNS:    e.Wall.Nanoseconds(),
		BarrierNS: e.BarrierWait.Nanoseconds(),
		Words:     words,
		MaxPair:   maxPair,
	})
}

// StartSpan records a span opening and returns its closer. Only one
// goroutine (node 0's) calls StartSpan and closers, in program order.
func (c *Collector) StartSpan(kind, name string, startRound int, words int64) func(endRound int) {
	idx := len(c.t.Spans)
	startNS := time.Since(c.start).Nanoseconds()
	c.t.Spans = append(c.t.Spans, Span{
		Kind:       kind,
		Name:       name,
		StartRound: startRound,
		Rounds:     -1, // open; sealed by the closer or Finish
		Words:      words,
		StartNS:    startNS,
	})
	return func(endRound int) {
		s := &c.t.Spans[idx]
		if s.Rounds >= 0 {
			return // already closed
		}
		s.Rounds = endRound - s.StartRound
		s.DurNS = time.Since(c.start).Nanoseconds() - s.StartNS
	}
}

// Finish seals the collector and returns the completed RunTrace. Spans
// left open (a node program that aborted mid-phase) are closed at the
// last exchanged round.
func (c *Collector) Finish() *RunTrace {
	c.t.WallNS = time.Since(c.start).Nanoseconds()
	last := len(c.t.Rounds)
	for i := range c.t.Spans {
		s := &c.t.Spans[i]
		if s.Rounds < 0 {
			s.Rounds = last - s.StartRound
			if s.Rounds < 0 {
				s.Rounds = 0
			}
			s.DurNS = c.t.WallNS - s.StartNS
		}
	}
	return &c.t
}

var _ Tracer = (*Collector)(nil)
var _ SpanRecorder = (*Collector)(nil)
