package workload

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/clique"
	"repro/internal/comm"
	"repro/internal/domset"
	"repro/internal/gather"
	"repro/internal/graph"
	"repro/internal/matmul"
	"repro/internal/mst"
	"repro/internal/paths"
	"repro/internal/subgraph"
	"repro/internal/vcover"
)

// Algorithm is one catalogue entry: a named node program plus
// deterministic instance generation. Unlike registry experiments,
// which fix their own instance sweep, a catalogue run is parameterised
// by the caller's (n, seed, words_per_pair).
type Algorithm struct {
	// Name is the stable request key.
	Name string `json:"name"`
	// Title is the one-line human description.
	Title string `json:"title"`
	// WPP is the per-pair word budget used when the caller leaves
	// words_per_pair at 0.
	WPP int `json:"words_per_pair"`
	// Make builds the instance for (n, seed) and returns the node
	// program. It must be deterministic in both.
	Make func(n int, seed uint64) clique.NodeFunc `json:"-"`
}

// catalogue is the algorithm set, keyed by name. Registration-time
// extension (Register) exists for tests; the built-in set is fixed at
// init.
var (
	catMu     sync.RWMutex
	catalogue = map[string]Algorithm{}
)

// Register adds an algorithm to the catalogue; duplicate or empty
// names panic, mirroring exp.Register.
func Register(a Algorithm) {
	catMu.Lock()
	defer catMu.Unlock()
	if a.Name == "" || a.Make == nil {
		panic(fmt.Sprintf("workload: algorithm %+v missing Name or Make", a))
	}
	if _, dup := catalogue[a.Name]; dup {
		panic(fmt.Sprintf("workload: duplicate algorithm %q", a.Name))
	}
	catalogue[a.Name] = a
}

// Get looks up one algorithm by name.
func Get(name string) (Algorithm, bool) {
	catMu.RLock()
	defer catMu.RUnlock()
	a, ok := catalogue[name]
	return a, ok
}

// All returns the catalogue sorted by name.
func All() []Algorithm {
	catMu.RLock()
	defer catMu.RUnlock()
	out := make([]Algorithm, 0, len(catalogue))
	for _, a := range catalogue {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the sorted algorithm names.
func Names() []string {
	catMu.RLock()
	defer catMu.RUnlock()
	names := make([]string, 0, len(catalogue))
	for name := range catalogue {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func init() {
	for _, a := range []Algorithm{
		{
			Name: "exchange", Title: "one-round all-to-all broadcast exchange", WPP: 1,
			Make: func(n int, seed uint64) clique.NodeFunc {
				return func(nd *clique.Node) {
					comm.BroadcastWord(nd, uint64(nd.ID())^seed)
				}
			},
		},
		{
			Name: "triangle", Title: "triangle detection (Dolev et al.)", WPP: 8,
			Make: func(n int, seed uint64) clique.NodeFunc {
				g := graph.Gnp(n, 0.2, seed)
				return func(nd *clique.Node) {
					subgraph.DetectTriangle(nd, g.Row(nd.ID()))
				}
			},
		},
		{
			Name: "k-is", Title: "3-independent-set detection", WPP: 8,
			Make: func(n int, seed uint64) clique.NodeFunc {
				g := graph.Gnp(n, 0.6, seed)
				return func(nd *clique.Node) {
					subgraph.DetectIndependentSet(nd, g.Row(nd.ID()), 3)
				}
			},
		},
		{
			Name: "k-ds", Title: "3-dominating set (Theorem 9)", WPP: 8,
			Make: func(n int, seed uint64) clique.NodeFunc {
				g, _ := graph.PlantedDominatingSet(n, 3, 0.1, seed)
				return func(nd *clique.Node) {
					domset.Find(nd, g.Row(nd.ID()), 3)
				}
			},
		},
		{
			Name: "k-vc", Title: "3-vertex cover (Theorem 11)", WPP: 1,
			Make: func(n int, seed uint64) clique.NodeFunc {
				g, _ := graph.PlantedVertexCover(n, 3, 0.4, seed)
				return func(nd *clique.Node) {
					vcover.Find(nd, g.Row(nd.ID()), 3)
				}
			},
		},
		{
			Name: "maxis", Title: "maximum independent set size (full gather)", WPP: 1,
			Make: func(n int, seed uint64) clique.NodeFunc {
				g := graph.Gnp(n, 0.92, seed)
				return func(nd *clique.Node) {
					gather.MaxIndependentSetSize(nd, g.Row(nd.ID()))
				}
			},
		},
		{
			Name: "boolmm-3d", Title: "Boolean matrix multiplication (3D schedule)", WPP: 8,
			Make: func(n int, seed uint64) clique.NodeFunc {
				g := graph.Gnp(n, 0.5, seed)
				return func(nd *clique.Node) {
					row := matmul.AdjacencyRow(g, nd.ID())
					matmul.Mul3D(nd, matmul.Boolean{}, row, row)
				}
			},
		},
		{
			Name: "boolmm-naive", Title: "Boolean matrix multiplication (naive broadcast)", WPP: 8,
			Make: func(n int, seed uint64) clique.NodeFunc {
				g := graph.Gnp(n, 0.5, seed)
				return func(nd *clique.Node) {
					row := matmul.AdjacencyRow(g, nd.ID())
					matmul.MulNaive(nd, matmul.Boolean{}, row, row)
				}
			},
		},
		{
			Name: "apsp", Title: "APSP, weighted undirected ((min,+) squaring)", WPP: 8,
			Make: func(n int, seed uint64) clique.NodeFunc {
				g := graph.GnpWeighted(n, 0.3, 40, false, seed)
				return func(nd *clique.Node) {
					paths.APSP(nd, g.W[nd.ID()], matmul.Mul3D)
				}
			},
		},
		{
			Name: "mst", Title: "minimum spanning forest (Borůvka)", WPP: 1,
			Make: func(n int, seed uint64) clique.NodeFunc {
				g := graph.GnpWeighted(n, 0.3, 60, false, seed)
				return func(nd *clique.Node) {
					mst.Find(nd, g.W[nd.ID()])
				}
			},
		},
		{
			Name: "mst-sketch", Title: "minimum spanning forest (ℓ₀-sketch, O(1) rounds)", WPP: 32,
			Make: func(n int, seed uint64) clique.NodeFunc {
				g := graph.GnpWeighted(n, 0.3, 60, false, seed)
				return func(nd *clique.Node) {
					mst.SketchFind(nd, g.W[nd.ID()], seed)
				}
			},
		},
		{
			Name: "mst-sparse", Title: "minimum spanning forest (message-frugal, o(m) words)", WPP: 8,
			Make: func(n int, seed uint64) clique.NodeFunc {
				g := graph.GnpWeighted(n, 0.5, 60, false, seed)
				return func(nd *clique.Node) {
					mst.SparseFind(nd, g.W[nd.ID()], seed)
				}
			},
		},
	} {
		Register(a)
	}
}
