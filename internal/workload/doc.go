// Package workload is the shared catalogue of parameterised node
// programs: named algorithms with deterministic instance generation in
// (n, seed). It is the one list both consumers of ad-hoc simulation
// draw from — the cliqued daemon's POST /v1/run endpoint and the
// cliquegrid experiment-grid runner — so a grid sweep and a served
// request with the same (algorithm, n, wpp, seed) provably run the
// same program on the same instance.
//
// The catalogue deliberately mirrors the Figure 1 probe set of
// exp.Fig1Workloads plus the substrates the paper's algorithms build
// on, but with the seed exposed so clients can sweep instances.
package workload
