package mst

import (
	"math/rand/v2"
	"testing"

	"repro/internal/clique"
	"repro/internal/graph"
)

// runSketchFind runs SketchFind on one backend and checks every node
// returned the identical forest.
func runSketchFind(t *testing.T, g *graph.Weighted, wpp int, backend string, seed uint64) ([]Edge, SketchStats, *clique.Result) {
	t.Helper()
	out := make([][]Edge, g.N)
	stats := make([]SketchStats, g.N)
	res, err := clique.Run(clique.Config{N: g.N, WordsPerPair: wpp, Backend: backend}, func(nd *clique.Node) {
		out[nd.ID()], stats[nd.ID()] = SketchFind(nd, g.W[nd.ID()], seed)
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < g.N; v++ {
		if len(out[v]) != len(out[0]) {
			t.Fatalf("nodes 0 and %d disagree on SketchFind forest size", v)
		}
		for i := range out[v] {
			if out[v][i] != out[0][i] {
				t.Fatalf("nodes 0 and %d disagree on SketchFind edge %d", v, i)
			}
		}
		if stats[v] != stats[0] {
			t.Fatalf("nodes 0 and %d disagree on SketchStats", v)
		}
	}
	return out[0], stats[0], res
}

// runSparseFind runs SparseFind on one backend; the forest comes from
// the coordinator, everyone else must return nil.
func runSparseFind(t *testing.T, g *graph.Weighted, wpp int, backend string, seed uint64) ([]Edge, SparseStats, *clique.Result) {
	t.Helper()
	out := make([][]Edge, g.N)
	stats := make([]SparseStats, g.N)
	res, err := clique.Run(clique.Config{N: g.N, WordsPerPair: wpp, Backend: backend}, func(nd *clique.Node) {
		out[nd.ID()], stats[nd.ID()] = SparseFind(nd, g.W[nd.ID()], seed)
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < g.N; v++ {
		if out[v] != nil {
			t.Fatalf("node %d returned a SparseFind forest; only the coordinator should", v)
		}
		if stats[v].Phases != stats[0].Phases {
			t.Fatalf("nodes 0 and %d disagree on phase count", v)
		}
	}
	return out[0], stats[0], res
}

func sameForest(a, b []Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkForestValid is the union-find tree validity checker: forest
// edges are real graph edges, acyclic, and span the graph's
// connectivity.
func checkForestValid(t *testing.T, g *graph.Weighted, forest []Edge, tag string) {
	t.Helper()
	uf := newUnionFind(g.N)
	for _, e := range forest {
		if !g.HasEdge(e.U, e.V) || g.W[e.U][e.V] != e.W {
			t.Fatalf("%s: edge %v not in graph", tag, e)
		}
		if !uf.union(e.U, e.V) {
			t.Fatalf("%s: cycle via edge %v", tag, e)
		}
	}
	for u := 0; u < g.N; u++ {
		for v := u + 1; v < g.N; v++ {
			if g.HasEdge(u, v) && uf.find(u) != uf.find(v) {
				t.Fatalf("%s: edge %d-%d crosses forest components", tag, u, v)
			}
		}
	}
}

// TestMSTVariantsAgreeExactly is the cross-algorithm equivalence
// satellite: over a randomized corpus (dense, sparse, disconnected,
// duplicate weights), Borůvka, SketchFind, SparseFind and the Kruskal
// oracle all produce the identical edge list — not just equal weight —
// on both backends, because all four share the (W, U, V) total order.
func TestMSTVariantsAgreeExactly(t *testing.T) {
	corpus := []struct {
		name string
		g    *graph.Weighted
	}{
		{"dense16", graph.GnpWeighted(16, 0.6, 40, false, 1)},
		{"sparse24", graph.GnpWeighted(24, 0.15, 100, false, 2)},
		{"dense32", graph.GnpWeighted(32, 0.5, 25, false, 3)},
		{"ties20", graph.GnpWeighted(20, 0.5, 3, false, 4)}, // heavy duplicate weights
		{"disc", func() *graph.Weighted {
			g := graph.NewWeighted(18, false)
			// Three islands, one isolated vertex.
			for _, e := range [][3]int64{{0, 1, 5}, {1, 2, 5}, {2, 3, 1}, {0, 3, 5},
				{5, 6, 2}, {6, 7, 2}, {5, 7, 2},
				{9, 10, 4}, {10, 11, 4}, {11, 12, 4}, {9, 12, 4}, {9, 11, 4}} {
				g.SetEdge(int(e[0]), int(e[1]), e[2])
			}
			return g
		}()},
	}
	for _, tc := range corpus {
		oracle := KruskalForest(tc.g)
		boruvka, _ := runFind(t, tc.g)
		if !sameForest(boruvka, oracle) {
			t.Fatalf("%s: Borůvka forest != Kruskal oracle", tc.name)
		}
		for _, backend := range clique.Backends() {
			skf, _, _ := runSketchFind(t, tc.g, 32, backend, 7)
			if !sameForest(skf, oracle) {
				t.Errorf("%s/%s: SketchFind forest %v != oracle %v", tc.name, backend, skf, oracle)
			}
			spf, _, _ := runSparseFind(t, tc.g, 8, backend, 7)
			if !sameForest(spf, oracle) {
				t.Errorf("%s/%s: SparseFind forest %v != oracle %v", tc.name, backend, spf, oracle)
			}
		}
		checkForestValid(t, tc.g, oracle, tc.name)
	}
}

// TestMSTVariantsRandomCorpus sweeps random seeds for weight equality
// and tree validity across all three variants.
func TestMSTVariantsRandomCorpus(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		n := 12 + int(seed%3)*10
		p := 0.2 + float64(seed%4)*0.2
		g := graph.GnpWeighted(n, p, 1+int64(seed%5)*20, false, seed)
		oracle := KruskalForest(g)
		wantW := Weight(oracle)
		boruvka, _ := runFind(t, g)
		skf, _, _ := runSketchFind(t, g, 32, "", seed)
		spf, _, _ := runSparseFind(t, g, 8, "", seed)
		for tag, forest := range map[string][]Edge{"boruvka": boruvka, "sketch": skf, "sparse": spf} {
			if Weight(forest) != wantW {
				t.Fatalf("seed %d n %d p %.1f: %s weight %d, want %d", seed, n, p, tag, Weight(forest), wantW)
			}
			if !sameForest(forest, oracle) {
				t.Fatalf("seed %d n %d p %.1f: %s disagrees with oracle edge-for-edge", seed, n, p, tag)
			}
			checkForestValid(t, g, forest, tag)
		}
	}
}

// TestSketchMSTConstantRounds is the round-count invariant gate: at
// every n in the quick sweep, on both backends, SketchFind completes
// in a single-digit number of rounds. Runs under -race in CI.
func TestSketchMSTConstantRounds(t *testing.T) {
	const wpp = 32
	const maxRounds = 9
	for _, n := range []int{16, 32, 64, 128} {
		for _, backend := range clique.Backends() {
			for _, seed := range []uint64{1, 2} {
				g := graph.GnpWeighted(n, 0.4, 1000, false, seed)
				_, _, res := runSketchFind(t, g, wpp, backend, seed)
				if res.Stats.Rounds > maxRounds {
					t.Errorf("(n=%d, seed=%d, backend=%s): SketchFind took %d rounds, single-digit bound is %d",
						n, seed, backend, res.Stats.Rounds, maxRounds)
				}
			}
		}
	}
}

// TestSparseMSTMessageSublinear is the message-count invariant gate:
// on dense inputs the total words SparseFind moves are o(m) — the
// words/m ratio decreases across the sweep and ends well below 1.
func TestSparseMSTMessageSublinear(t *testing.T) {
	const wpp = 8
	prev := map[string]float64{}
	for _, n := range []int{48, 96, 192} {
		for _, backend := range clique.Backends() {
			for _, seed := range []uint64{1} {
				g := graph.GnpWeighted(n, 0.6, 1000, false, seed)
				m := 0
				for u := 0; u < n; u++ {
					for v := u + 1; v < n; v++ {
						if g.HasEdge(u, v) {
							m++
						}
					}
				}
				_, _, res := runSparseFind(t, g, wpp, backend, seed)
				ratio := float64(res.Stats.WordsSent) / float64(m)
				if last, ok := prev[backend]; ok && ratio >= last {
					t.Errorf("(n=%d, seed=%d, backend=%s): words/m = %.3f did not decrease from %.3f",
						n, seed, backend, ratio, last)
				}
				prev[backend] = ratio
				if n == 192 && ratio > 0.75 {
					t.Errorf("(n=%d, seed=%d, backend=%s): words/m = %.3f, want < 0.75 (words=%d, m=%d)",
						n, seed, backend, ratio, res.Stats.WordsSent, m)
				}
			}
		}
	}
}

// TestMSTVariantsBackendEquivalence: identical stats (rounds, words)
// across goroutine and lockstep for both new variants.
func TestMSTVariantsBackendEquivalence(t *testing.T) {
	g := graph.GnpWeighted(24, 0.4, 60, false, 3)
	var refSk, refSp *clique.Result
	for i, backend := range clique.Backends() {
		_, _, sk := runSketchFind(t, g, 32, backend, 3)
		_, _, sp := runSparseFind(t, g, 8, backend, 3)
		if i == 0 {
			refSk, refSp = sk, sp
			continue
		}
		if sk.Stats != refSk.Stats {
			t.Errorf("%s: SketchFind stats %+v != reference %+v", backend, sk.Stats, refSk.Stats)
		}
		if sp.Stats != refSp.Stats {
			t.Errorf("%s: SparseFind stats %+v != reference %+v", backend, sp.Stats, refSp.Stats)
		}
	}
}

// TestSketchMSTSampleTelemetry: on graphs that keep several
// components past the seed phases (random-weighted cycles resist
// chain merging), the leaders' cut sketches should recover verified
// samples at a healthy rate.
func TestSketchMSTSampleTelemetry(t *testing.T) {
	okTotal, total := 0, 0
	for seed := uint64(0); seed < 10; seed++ {
		const n = 128
		g := graph.NewWeighted(n, false)
		r := rand.New(rand.NewPCG(seed, 13))
		for v := 0; v < n; v++ {
			g.SetEdge(v, (v+1)%n, r.Int64N(1000)+1)
		}
		_, stats, _ := runSketchFind(t, g, 32, "", seed)
		okTotal += stats.SampleOK
		total += stats.SampleTotal
	}
	if total == 0 {
		t.Fatal("no leader ever had a nonempty cut")
	}
	if rate := float64(okTotal) / float64(total); rate < 0.6 {
		t.Errorf("cut-sketch sample success %d/%d = %.2f, want >= 0.6", okTotal, total, rate)
	}
}
