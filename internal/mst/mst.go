package mst

import (
	"sort"
	"strconv"

	"repro/internal/clique"
	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/trace"
)

// Edge is one undirected weighted edge of the forest.
type Edge struct {
	U, V int
	W    int64
}

// noEdge is the broadcast encoding of "no outgoing edge".
const noEdge = ^uint64(0) >> 1

// Find computes the minimum spanning forest. wRow is this node's weight
// row (graph.Inf for non-edges). Every node returns the same edge list,
// sorted by (W, U, V); ties between equal-weight edges are broken by
// the (U, V) pair, so the result is unique and deterministic. Rounds:
// 2 * ceil(log2 n) + 2.
func Find(nd clique.Endpoint, wRow []int64) []Edge {
	n := nd.N()
	me := nd.ID()

	comp := make([]int, n) // current component of each vertex
	for v := range comp {
		comp[v] = v
	}
	var forest []Edge

	phases := 1
	for c := 1; c < n; c *= 2 {
		phases++
	}
	for phase := 0; phase < phases; phase++ {
		endPhase := trace.Phase(nd, boruvkaPhaseName(phase))
		// My best outgoing edge under (weight, pair) order.
		best := Edge{U: -1, W: graph.Inf}
		for u := 0; u < n; u++ {
			if comp[u] == comp[me] || wRow[u] >= graph.Inf {
				continue
			}
			cand := Edge{U: me, V: u, W: wRow[u]}
			if better(cand, best) {
				best = cand
			}
		}
		// Two broadcast rounds: the edge pair, then the weight.
		pairWord := noEdge
		if best.U >= 0 {
			pairWord = clique.PairWord(best.U, best.V, n)
		}
		pairs := comm.BroadcastWord(nd, pairWord)
		rawWeights := comm.BroadcastWord(nd, uint64(best.W))
		weights := make([]int64, n)
		for v := 0; v < n; v++ {
			weights[v] = int64(rawWeights[v])
		}

		// Deterministic global merge, identical at every node: for each
		// component, the best announced outgoing edge; then union.
		bestOf := make(map[int]Edge)
		for v := 0; v < n; v++ {
			if pairs[v] == noEdge {
				continue
			}
			u, w := clique.UnpairWord(pairs[v], n)
			e := Edge{U: u, V: w, W: weights[v]}
			c := comp[e.U]
			cur, ok := bestOf[c]
			if !ok || better(e, cur) {
				bestOf[c] = e
			}
		}
		if len(bestOf) == 0 {
			endPhase()
			break // no component has an outgoing edge: forest complete
		}
		added := false
		for _, e := range stableEdges(bestOf) {
			if comp[e.U] == comp[e.V] {
				continue // the reverse copy already merged us
			}
			forest = append(forest, normalize(e))
			from, to := comp[e.U], comp[e.V]
			if to > from {
				from, to = to, from
			}
			for v := range comp {
				if comp[v] == from {
					comp[v] = to
				}
			}
			added = true
		}
		endPhase()
		if !added {
			break
		}
	}

	sort.Slice(forest, func(i, j int) bool { return less(forest[i], forest[j]) })
	return forest
}

// better orders candidate edges by (weight, min endpoint, max endpoint);
// the total order is what makes all nodes pick identical merges.
func better(a, b Edge) bool {
	if a.U < 0 {
		return false
	}
	if b.U < 0 {
		return true
	}
	return less(normalize(a), normalize(b))
}

// less is the package's total order on edges: lexicographic on
// (W, U, V) with U < V canonical. Every variant — Find, SketchFind,
// SparseFind, KruskalForest — breaks weight ties by this order, so
// the minimum spanning forest is unique and the variants agree edge
// for edge, not just in total weight.
func less(a, b Edge) bool {
	if a.W != b.W {
		return a.W < b.W
	}
	if a.U != b.U {
		return a.U < b.U
	}
	return a.V < b.V
}

func normalize(e Edge) Edge {
	if e.U > e.V {
		e.U, e.V = e.V, e.U
	}
	return e
}

// stableEdges returns the per-component best edges in a deterministic
// order (map iteration order is not).
func stableEdges(m map[int]Edge) []Edge {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]Edge, 0, len(m))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// Weight sums an edge list.
func Weight(es []Edge) int64 {
	var total int64
	for _, e := range es {
		total += e.W
	}
	return total
}

// KruskalOracle computes the minimum spanning forest weight centrally,
// with the same (weight, pair) tie-break as Find, for ground truth.
func KruskalOracle(g *graph.Weighted) (int64, int) {
	forest := KruskalForest(g)
	return Weight(forest), len(forest)
}

// Components labels connected components from the spanning forest:
// every node returns the full vector of component ids (the smallest
// vertex id in each component), identical everywhere. Cost: one Find.
func Components(nd clique.Endpoint, wRow []int64) []int {
	n := nd.N()
	forest := Find(nd, wRow)
	comp := make([]int, n)
	for v := range comp {
		comp[v] = v
	}
	var find func(x int) int
	find = func(x int) int {
		for comp[x] != x {
			comp[x] = comp[comp[x]]
			x = comp[x]
		}
		return x
	}
	for _, e := range forest {
		ru, rv := find(e.U), find(e.V)
		if ru != rv {
			if ru < rv {
				comp[rv] = ru
			} else {
				comp[ru] = rv
			}
		}
	}
	out := make([]int, n)
	for v := range out {
		out[v] = find(v)
	}
	return out
}

// boruvkaPhaseNames pre-renders span labels for every possible Borůvka
// iteration (phases <= 1 + log2(MaxN) = 17), so marking a phase on an
// untraced run formats nothing.
var boruvkaPhaseNames = func() []string {
	names := make([]string, 18)
	for i := range names {
		names[i] = "boruvka/phase " + strconv.Itoa(i)
	}
	return names
}()

// boruvkaPhaseName returns the label of iteration i.
func boruvkaPhaseName(i int) string {
	if i < len(boruvkaPhaseNames) {
		return boruvkaPhaseNames[i]
	}
	return "boruvka/phase " + strconv.Itoa(i)
}
