package mst

import (
	"testing"

	"repro/internal/clique"
	"repro/internal/graph"
)

func runFind(t *testing.T, g *graph.Weighted) ([]Edge, *clique.Result) {
	t.Helper()
	out := make([][]Edge, g.N)
	res, err := clique.Run(clique.Config{N: g.N}, func(nd *clique.Node) {
		out[nd.ID()] = Find(nd, g.W[nd.ID()])
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < g.N; v++ {
		if len(out[v]) != len(out[0]) {
			t.Fatalf("nodes 0 and %d disagree on forest size", v)
		}
		for i := range out[v] {
			if out[v][i] != out[0][i] {
				t.Fatalf("nodes 0 and %d disagree on edge %d", v, i)
			}
		}
	}
	return out[0], res
}

func TestMSTMatchesKruskal(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		g := graph.GnpWeighted(14, 0.35, 30, false, seed)
		wantW, wantCount := KruskalOracle(g)
		forest, _ := runFind(t, g)
		if len(forest) != wantCount {
			t.Fatalf("seed %d: forest has %d edges, want %d", seed, len(forest), wantCount)
		}
		if Weight(forest) != wantW {
			t.Fatalf("seed %d: forest weight %d, want %d", seed, Weight(forest), wantW)
		}
		for _, e := range forest {
			if !g.HasEdge(e.U, e.V) || g.W[e.U][e.V] != e.W {
				t.Fatalf("seed %d: edge %v not in graph", seed, e)
			}
		}
	}
}

func TestMSTForestIsAcyclicAndSpanning(t *testing.T) {
	g := graph.GnpWeighted(12, 0.4, 20, false, 9)
	forest, _ := runFind(t, g)
	// Union-find over forest edges: no cycles, and components match the
	// graph's connectivity.
	parent := make([]int, g.N)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			x = parent[x]
		}
		return x
	}
	for _, e := range forest {
		ru, rv := find(e.U), find(e.V)
		if ru == rv {
			t.Fatalf("cycle via edge %v", e)
		}
		parent[ru] = rv
	}
	// Every graph edge must connect vertices in the same forest
	// component (spanning).
	for u := 0; u < g.N; u++ {
		for v := u + 1; v < g.N; v++ {
			if g.HasEdge(u, v) && find(u) != find(v) {
				t.Fatalf("edge %d-%d crosses forest components", u, v)
			}
		}
	}
}

func TestMSTPathAndCycleGraphs(t *testing.T) {
	// On a path, the forest is the whole path.
	p := graph.FromUnweighted(graph.Path(8))
	forest, _ := runFind(t, p)
	if len(forest) != 7 || Weight(forest) != 7 {
		t.Errorf("path MST: %d edges weight %d", len(forest), Weight(forest))
	}
	// On a weighted cycle, the heaviest edge is dropped.
	c := graph.NewWeighted(6, false)
	for v := 0; v < 6; v++ {
		c.SetEdge(v, (v+1)%6, int64(v+1))
	}
	forest, _ = runFind(t, c)
	if len(forest) != 5 {
		t.Fatalf("cycle MST has %d edges", len(forest))
	}
	for _, e := range forest {
		if e.W == 6 {
			t.Error("heaviest cycle edge kept")
		}
	}
}

func TestMSTDisconnected(t *testing.T) {
	g := graph.NewWeighted(7, false)
	g.SetEdge(0, 1, 3)
	g.SetEdge(1, 2, 4)
	g.SetEdge(4, 5, 1)
	forest, _ := runFind(t, g)
	if len(forest) != 3 {
		t.Fatalf("forest has %d edges, want 3", len(forest))
	}
}

func TestMSTDisconnectedForest(t *testing.T) {
	// Multi-island forest with isolated vertices: the forest must match
	// the Kruskal oracle edge for edge, island by island.
	g := graph.NewWeighted(16, false)
	for _, e := range [][3]int64{
		{0, 1, 7}, {1, 2, 7}, {0, 2, 7}, // triangle, duplicate weights
		{4, 5, 3}, {5, 6, 9},
		{8, 9, 1}, {9, 10, 1}, {10, 11, 1}, {8, 11, 1}, // 4-cycle, all ties
		// 3, 7, 12..15 isolated
	} {
		g.SetEdge(int(e[0]), int(e[1]), e[2])
	}
	forest, _ := runFind(t, g)
	oracle := KruskalForest(g)
	if len(forest) != len(oracle) {
		t.Fatalf("forest has %d edges, oracle %d", len(forest), len(oracle))
	}
	for i := range forest {
		if forest[i] != oracle[i] {
			t.Fatalf("forest[%d] = %v, oracle %v", i, forest[i], oracle[i])
		}
	}
}

func TestMSTDuplicateWeightTieBreaking(t *testing.T) {
	// With every weight equal, the forest is determined purely by the
	// documented (weight, u, v) tie-break order; the result must be the
	// oracle's forest exactly and identical across repeated runs.
	g := graph.GnpWeighted(15, 0.5, 1, false, 3) // maxW=1: all weights 1
	oracle := KruskalForest(g)
	first, _ := runFind(t, g)
	second, _ := runFind(t, g)
	if len(first) != len(oracle) {
		t.Fatalf("forest has %d edges, oracle %d", len(first), len(oracle))
	}
	for i := range first {
		if first[i] != oracle[i] {
			t.Fatalf("tie-break diverged from (weight,u,v) oracle at edge %d: %v vs %v", i, first[i], oracle[i])
		}
		if first[i] != second[i] {
			t.Fatalf("tie-break not deterministic across runs at edge %d", i)
		}
	}
}

func TestMSTLogRounds(t *testing.T) {
	// Rounds grow logarithmically: 2 * ceil(log2 n) + O(1).
	for _, n := range []int{8, 32, 128} {
		g := graph.GnpWeighted(n, 0.3, 50, false, uint64(n))
		_, res := func() ([]Edge, *clique.Result) {
			out := make([][]Edge, g.N)
			res, err := clique.Run(clique.Config{N: g.N}, func(nd *clique.Node) {
				out[nd.ID()] = Find(nd, g.W[nd.ID()])
			})
			if err != nil {
				t.Fatal(err)
			}
			return out[0], res
		}()
		logN := 0
		for c := 1; c < n; c *= 2 {
			logN++
		}
		if res.Stats.Rounds > 2*(logN+1)+2 {
			t.Errorf("n=%d: %d rounds exceeds 2(log n + 1)+2 = %d", n, res.Stats.Rounds, 2*(logN+1)+2)
		}
	}
}

func TestMSTEmptyGraph(t *testing.T) {
	g := graph.NewWeighted(5, false)
	forest, _ := runFind(t, g)
	if len(forest) != 0 {
		t.Errorf("edgeless graph produced forest %v", forest)
	}
}

func TestComponents(t *testing.T) {
	g := graph.NewWeighted(8, false)
	g.SetEdge(0, 1, 2)
	g.SetEdge(1, 2, 3)
	g.SetEdge(4, 5, 1)
	g.SetEdge(6, 7, 1)
	want := []int{0, 0, 0, 3, 4, 4, 6, 6}
	_, err := clique.Run(clique.Config{N: g.N}, func(nd *clique.Node) {
		got := Components(nd, g.W[nd.ID()])
		for v := range want {
			if got[v] != want[v] {
				nd.Fail("comp[%d] = %d, want %d", v, got[v], want[v])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
