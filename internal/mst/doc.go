// Package mst implements minimum spanning forests in the congested
// clique via Borůvka phases: O(log n) rounds deterministically. The
// paper's conclusions single out MST as the problem where randomized
// congested clique algorithms (Lotker et al. [45] at O(log log n),
// Ghaffari-Parter [25] at O(log* n), Jurdziński-Nowicki at O(1))
// dramatically beat known deterministic bounds; this package provides
// the deterministic baseline those results improve on, rounding out the
// repository's coverage of the model's classic problems.
//
// Each Borůvka phase costs two broadcast rounds: every node announces
// the minimum-weight edge leaving its current component (everyone can
// compute component ids locally because everyone has seen all prior
// announcements), all nodes apply the same merges, and the number of
// components at least halves.
package mst
