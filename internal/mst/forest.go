package mst

import (
	"sort"

	"repro/internal/graph"
)

// unionFind is the shared merge structure of the MST family. Roots
// are always the minimum vertex id of their component, matching the
// "component label = smallest member" convention every variant (and
// the coordinator of SparseFind) relies on.
type unionFind []int

func newUnionFind(n int) unionFind {
	u := make(unionFind, n)
	for i := range u {
		u[i] = i
	}
	return u
}

func (u unionFind) find(x int) int {
	for u[x] != x {
		u[x] = u[u[x]]
		x = u[x]
	}
	return x
}

// union merges the components of a and b, keeping the smaller root as
// the label; reports whether a merge happened.
func (u unionFind) union(a, b int) bool {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return false
	}
	if ra > rb {
		ra, rb = rb, ra
	}
	u[rb] = ra
	return true
}

// KruskalForest computes the minimum spanning forest centrally under
// the same (weight, u, v) total order as the distributed variants.
// Because the order is total, the forest is unique, so Find,
// SketchFind and SparseFind must agree with it edge for edge — the
// oracle the equivalence tests pin against.
func KruskalForest(g *graph.Weighted) []Edge {
	var edges []Edge
	for u := 0; u < g.N; u++ {
		for v := u + 1; v < g.N; v++ {
			if g.HasEdge(u, v) {
				edges = append(edges, Edge{U: u, V: v, W: g.W[u][v]})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool { return less(edges[i], edges[j]) })
	uf := newUnionFind(g.N)
	var forest []Edge
	for _, e := range edges {
		if uf.union(e.U, e.V) {
			forest = append(forest, e)
		}
	}
	return forest
}
