package mst

import (
	"sort"

	"repro/internal/clique"
	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/sketch"
	"repro/internal/trace"
)

// SparseStats is SparseFind's telemetry; Phases is identical at every
// node, the rest is populated at the coordinator.
type SparseStats struct {
	// Phases is the number of merge phases executed.
	Phases int
	// Merges is the number of forest edges accepted (coordinator only).
	Merges int
	// Components is the final component count (coordinator only).
	Components int
}

// stopWord is the leader-to-member "component finished, stop
// proposing" signal; any value < n is instead a rejection naming an
// internal endpoint.
const stopWord = noEdge

// sparseFingerprint sizes the 4-word cut fingerprints SparseFind
// maintains: single-level, two-repetition sketches whose only job is
// the exact-linearity emptiness test (cut empty ⇔ the XOR of the
// members' incidence fingerprints is zero, up to a ~2^-122 collision).
func sparseFingerprint(n int, seed uint64) sketch.Params {
	return sketch.Params{N: n, Levels: 1, Reps: 2, Seed: seed ^ 0x5bd1e9955bd1e995}
}

// SparseFind computes the minimum spanning forest with o(m) total
// message words on dense inputs, in the style of the message-frugal
// MST algorithms (Pemmaraju–Sardeshmukh, arXiv:1610.03897): no node
// ever enumerates its weight row over the wire. Nodes propose only
// their cheapest not-known-internal edge to their component leader;
// leaders validate proposals against an exact member roster, forward
// one candidate per component to the coordinator (node 0), and track
// component completion with XOR-merged cut fingerprints
// (internal/sketch) so finished components go silent instead of
// probing out their remaining edges. The coordinator merges with the
// shared (W, U, V) total order, so the forest is exactly the one
// Find, SketchFind and KruskalForest produce.
//
// A component merges only in phases where every member proposal
// validated — a rejected proposal (edge gone internal since the
// member last looked) stalls the component for one phase while the
// member re-proposes, which keeps every accepted candidate the true
// minimum outgoing edge of its component (the cut property needs the
// component minimum, not just some member's minimum).
//
// The output contract is message-frugal too: the coordinator returns
// the full sorted forest, every other node returns nil (broadcasting
// the forest everywhere is a dense operation the caller can pay for
// separately). Requires wpp >= 6 (registration plus fingerprint in
// one round).
func SparseFind(nd clique.Endpoint, wRow []int64, seed uint64) ([]Edge, SparseStats) {
	n := nd.N()
	me := nd.ID()
	wpp := nd.WordsPerPair()
	if wpp < 6 {
		nd.Fail("mst: SparseFind needs wpp >= 6, got %d", wpp)
	}

	// Per-node state.
	label := me
	internal := make([]bool, n) // neighbors confirmed same-component
	stopped := false
	replyDue := false // a rejection obliges a fresh proposal next phase

	// minUnmarked is this node's current proposal: the (W, U, V)-least
	// incident edge not yet known internal.
	minUnmarked := func() (Edge, bool) {
		best := Edge{U: -1, W: graph.Inf}
		for u := 0; u < n; u++ {
			if u == me || internal[u] || wRow[u] >= graph.Inf {
				continue
			}
			if cand := (Edge{U: me, V: u, W: wRow[u]}); better(cand, best) {
				best = cand
			}
		}
		return best, best.U >= 0
	}
	proposalWords := func() []uint64 {
		if e, ok := minUnmarked(); ok {
			return []uint64{clique.PairWord(e.U, e.V, n), uint64(e.W)}
		}
		return []uint64{noEdge}
	}

	// Leader state: exact roster, cached member proposals, merged cut
	// fingerprint. Every node starts as the leader of itself.
	const (
		propNone = iota
		propValid
		propExhausted
		propPending // rejection sent, replacement not yet arrived
	)
	roster := make([]bool, n)
	roster[me] = true
	propState := make([]int, n)
	propEdge := make([]Edge, n)
	fp := sketch.New(sparseFingerprint(n, seed))
	for u := 0; u < n; u++ {
		if u != me && wRow[u] < graph.Inf {
			fp.Toggle(me, u)
		}
	}
	isolatedReported := false

	// Coordinator state (node 0; its own label is always 0, since
	// labels are minimum member ids).
	var (
		uf       unionFind
		labels   []int
		isolated []bool
		forest   []Edge
	)
	if me == 0 {
		uf = newUnionFind(n)
		labels = make([]int, n)
		for v := range labels {
			labels[v] = v
		}
		isolated = make([]bool, n)
	}

	stats := SparseStats{}
	maxPhases := 2*n*n + 64
	for {
		stats.Phases++
		if stats.Phases > maxPhases {
			nd.Fail("mst: SparseFind exceeded %d phases without converging", maxPhases)
		}
		endPhase := trace.Phase(nd, "sparsemst/phase")

		// Round A: members answer outstanding rejections with their
		// next candidate (or an exhausted notice).
		var msgsA []comm.Msg
		if !stopped && label != me && replyDue {
			msgsA = append(msgsA, comm.Msg{To: label, Words: proposalWords()})
			replyDue = false
		}
		inA := comm.SendToFew(nd, msgsA, 1)
		if label == me {
			for p := 0; p < n; p++ {
				if inA[p] == nil {
					continue
				}
				if !roster[p] {
					nd.Fail("mst: SparseFind leader %d got proposal from non-member %d", me, p)
				}
				if len(inA[p]) == 1 {
					propState[p] = propExhausted
					continue
				}
				u, v := clique.UnpairWord(inA[p][0], n)
				propEdge[p] = Edge{U: u, V: v, W: int64(inA[p][1])}
				propState[p] = propValid // validated below
			}
		}

		// Round B: leaders revalidate the cache against the (possibly
		// grown) roster, reject stale proposals, and either report
		// isolation or forward the exact component minimum to the
		// coordinator.
		var msgsB []comm.Msg
		var localIsolated, localCandOK bool
		var localCand Edge
		if label == me && !stopped {
			// My own candidate never needs the round trip: marking
			// roster members internal keeps minUnmarked exact.
			for u := 0; u < n; u++ {
				if u != me && roster[u] {
					internal[u] = true
				}
			}
			if fp.Empty() {
				// Cut is empty: component done. Hush the members and
				// tell the coordinator once.
				stopped = true
				for x := 0; x < n; x++ {
					if x != me && roster[x] {
						msgsB = append(msgsB, comm.Msg{To: x, Words: []uint64{stopWord}})
					}
				}
				if !isolatedReported {
					isolatedReported = true
					if me == 0 {
						localIsolated = true
					} else {
						msgsB = append(msgsB, comm.Msg{To: 0, Words: []uint64{noEdge}})
					}
				}
			} else {
				pending := false
				best := Edge{U: -1, W: graph.Inf}
				allExhausted := true
				if e, ok := minUnmarked(); ok {
					best = e
					allExhausted = false
				}
				for x := 0; x < n; x++ {
					if x == me || !roster[x] {
						continue
					}
					switch propState[x] {
					case propValid:
						if roster[propEdge[x].V] {
							// Gone internal since x proposed: reject,
							// naming the endpoint so x marks it.
							msgsB = append(msgsB, comm.Msg{To: x, Words: []uint64{uint64(propEdge[x].V)}})
							propState[x] = propPending
							pending = true
						} else {
							allExhausted = false
							if better(propEdge[x], best) {
								best = propEdge[x]
							}
						}
					case propPending, propNone:
						pending = true
					case propExhausted:
						// nothing to contribute
					}
				}
				if allExhausted && !pending {
					// Every member out of candidates but the cut
					// fingerprint is nonzero: impossible unless an
					// internal mark was wrong.
					nd.Fail("mst: SparseFind component %d exhausted with nonempty cut fingerprint", me)
				}
				if !pending && best.U >= 0 {
					if me == 0 {
						localCand, localCandOK = best, true
					} else {
						msgsB = append(msgsB, comm.Msg{To: 0,
							Words: []uint64{clique.PairWord(best.U, best.V, n), uint64(best.W)}})
					}
				}
			}
		}
		inB := comm.SendToFew(nd, msgsB, 1)
		if !stopped && label != me {
			if got := inB[label]; got != nil {
				if len(got) != 1 {
					nd.Fail("mst: SparseFind member %d got %d-word leader reply", me, len(got))
				}
				if got[0] == stopWord {
					stopped = true
				} else {
					internal[got[0]] = true
					replyDue = true
				}
			}
		}

		// Round C: the coordinator merges this phase's candidates under
		// the (W, U, V) order, relabels, and broadcasts continue/done;
		// changed nodes additionally receive their new label.
		var flag uint64
		newLabel := label
		if me == 0 {
			var cands []Edge
			if localCandOK {
				cands = append(cands, normalize(localCand))
			}
			if localIsolated {
				isolated[0] = true
			}
			for p := 1; p < n; p++ {
				if inB[p] == nil {
					continue
				}
				switch len(inB[p]) {
				case 1:
					isolated[uf.find(p)] = true
				case 2:
					u, v := clique.UnpairWord(inB[p][0], n)
					cands = append(cands, normalize(Edge{U: u, V: v, W: int64(inB[p][1])}))
				default:
					nd.Fail("mst: SparseFind coordinator got %d-word report from %d", len(inB[p]), p)
				}
			}
			sort.Slice(cands, func(i, j int) bool { return less(cands[i], cands[j]) })
			for _, e := range cands {
				if uf.union(e.U, e.V) {
					forest = append(forest, e)
				}
			}
			done := true
			for v := 0; v < n; v++ {
				if !isolated[uf.find(v)] {
					done = false
					break
				}
			}
			if done {
				flag = 1
			}
			nd.Broadcast(flag)
			for v := 1; v < n; v++ {
				if nl := uf.find(v); nl != labels[v] {
					labels[v] = nl
					nd.Send(v, uint64(nl))
				}
			}
		}
		nd.Tick()
		if me != 0 {
			got := nd.Recv(0)
			switch len(got) {
			case 1:
				flag = got[0]
			case 2:
				flag, newLabel = got[0], int(got[1])
			default:
				nd.Fail("mst: SparseFind node %d got %d-word coordinator round", me, len(got))
			}
		}

		// Round D: relabeled nodes register with their new leader,
		// delivering a fresh proposal; a dying leader additionally
		// hands its merged cut fingerprint over, so the new leader's
		// fingerprint stays the XOR over all member incidence
		// fingerprints (internal edges cancel — the cut, exactly).
		var msgsD []comm.Msg
		if newLabel != label {
			dying := label == me
			label = newLabel
			words := proposalWords()
			if dying {
				words = append(append([]uint64{}, words...), fp.Row...)
			}
			msgsD = append(msgsD, comm.Msg{To: label, Words: words})
			replyDue = false
		}
		inD := comm.SendToFew(nd, msgsD, 1)
		if label == me {
			for p := 0; p < n; p++ {
				if inD[p] == nil {
					continue
				}
				roster[p] = true
				words := inD[p]
				if len(words) >= 5 { // registration + fingerprint
					fp.MergeRow(words[len(words)-4:])
					words = words[:len(words)-4]
				}
				if len(words) == 1 {
					propState[p] = propExhausted
				} else {
					u, v := clique.UnpairWord(words[0], n)
					propEdge[p] = Edge{U: u, V: v, W: int64(words[1])}
					propState[p] = propValid
				}
			}
		}
		endPhase()
		if flag == 1 {
			break
		}
	}

	if me == 0 {
		sort.Slice(forest, func(i, j int) bool { return less(forest[i], forest[j]) })
		stats.Merges = len(forest)
		comps := map[int]bool{}
		for v := 0; v < n; v++ {
			comps[uf.find(v)] = true
		}
		stats.Components = len(comps)
		return forest, stats
	}
	return nil, stats
}
