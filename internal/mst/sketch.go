package mst

import (
	"sort"

	"repro/internal/clique"
	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/sketch"
	"repro/internal/trace"
)

// seedPhases is the constant number of fused Borůvka phases SketchFind
// runs before switching to the contracted exchange: after 3 phases at
// most n/8 components remain, which keeps the leader-row broadcast
// within a couple of rounds at sweep sizes.
const seedPhases = 3

// SketchStats is the telemetry SketchFind derives from the leader
// broadcast — identical at every node.
type SketchStats struct {
	// Components is the component count entering the contracted
	// exchange (after the seed phases).
	Components int
	// SampleOK counts leaders whose merged cut sketch produced a
	// verified cut-edge sample; SampleTotal counts leaders with a
	// nonempty cut. SampleOK/SampleTotal is the empirical ℓ₀-sampling
	// success rate the experiment reports.
	SampleOK, SampleTotal int
}

// SketchFind computes the minimum spanning forest in O(1) phases, in
// the style of the sketch-based constant-round MST algorithms
// (Jurdziński–Nowicki, arXiv:1707.08484): a constant number of
// Borůvka seed phases, then AGM cut sketches merged at component
// leaders over sparse links, then one contracted min-edge exchange
// that every node replays locally. wRow is this node's weight row
// (graph.Inf for non-edges); seed seeds the shared sketch hash
// family. Every node returns the identical forest, sorted by
// (W, U, V) — exactly the forest Find and KruskalForest produce,
// because all three use the same total edge order.
//
// Round count: seedPhases·ceil(2/wpp) + ceil(sketchWords/wpp) +
// ceil(2/wpp) + ceil((2k+2)/wpp) with k components after seeding —
// single-digit for connected sweeps up to n = 256 at wpp = 32. The
// cut sketches are advisory (the exchange is exact either way): their
// merge–sample cycle is validated in-protocol and surfaced as
// SketchStats, so the experiment can gate on the recovery rate.
func SketchFind(nd clique.Endpoint, wRow []int64, seed uint64) ([]Edge, SketchStats) {
	n := nd.N()
	me := nd.ID()

	// Phase A: seed contraction. Identical logic to Find's phases, but
	// a fixed constant number of them, with pair and weight fused into
	// one two-word broadcast.
	comp := make([]int, n)
	for v := range comp {
		comp[v] = v
	}
	var forest []Edge
	for phase := 0; phase < seedPhases; phase++ {
		endPhase := trace.Phase(nd, "sketchmst/seed")
		best := Edge{U: -1, W: graph.Inf}
		for u := 0; u < n; u++ {
			if comp[u] == comp[me] || wRow[u] >= graph.Inf {
				continue
			}
			if cand := (Edge{U: me, V: u, W: wRow[u]}); better(cand, best) {
				best = cand
			}
		}
		pairWord := noEdge
		if best.U >= 0 {
			pairWord = clique.PairWord(best.U, best.V, n)
		}
		table := comm.BroadcastAll(nd, []uint64{pairWord, uint64(best.W)}, 2)
		bestOf := make(map[int]Edge)
		for v := 0; v < n; v++ {
			if table[v][0] == noEdge {
				continue
			}
			u, w := clique.UnpairWord(table[v][0], n)
			e := Edge{U: u, V: w, W: int64(table[v][1])}
			if cur, ok := bestOf[comp[e.U]]; !ok || better(e, cur) {
				bestOf[comp[e.U]] = e
			}
		}
		for _, e := range stableEdges(bestOf) {
			if comp[e.U] == comp[e.V] {
				continue
			}
			forest = append(forest, normalize(e))
			from, to := comp[e.U], comp[e.V]
			if to > from {
				from, to = to, from
			}
			for v := range comp {
				if comp[v] == from {
					comp[v] = to
				}
			}
		}
		endPhase()
	}

	// Component index after seeding: labels are minimum member ids, so
	// the label doubles as the leader's node id.
	comps := make([]int, 0, n)
	seen := make(map[int]bool, n)
	for v := 0; v < n; v++ {
		if !seen[comp[v]] {
			seen[comp[v]] = true
			comps = append(comps, comp[v])
		}
	}
	sort.Ints(comps)
	k := len(comps)
	leader := me == comp[me]

	// Phase B: cut sketches. Every node sketches its full incidence
	// list and ships it to its leader over one sparse link; XOR at the
	// leader cancels intra-component edges, leaving the sketch of the
	// component's cut (the AGM mechanism).
	endB := trace.Phase(nd, "sketchmst/sketch")
	sp := sketch.DefaultParams(n, seed^0xa5a5a5a5a5a5a5a5)
	mine := sketch.New(sp)
	for u := 0; u < n; u++ {
		if u != me && wRow[u] < graph.Inf {
			mine.Toggle(me, u)
		}
	}
	sketchRounds := (sp.Words() + nd.WordsPerPair() - 1) / nd.WordsPerPair()
	var up []comm.Msg
	if !leader {
		up = append(up, comm.Msg{To: comp[me], Words: mine.Row})
	}
	rows := comm.SendToFew(nd, up, sketchRounds)
	cut := mine // leaders fold members into their own sketch
	if leader {
		for p := 0; p < n; p++ {
			if rows[p] != nil {
				cut.MergeRow(rows[p])
			}
		}
	}
	endB()

	// Phase C: exact contracted candidates. Every node sends, to the
	// leader of each foreign component it has an edge into, its
	// minimum such edge — two words over each sparse link.
	endC := trace.Phase(nd, "sketchmst/exchange")
	bestInto := make(map[int]Edge, k)
	for u := 0; u < n; u++ {
		if comp[u] == comp[me] || wRow[u] >= graph.Inf {
			continue
		}
		e := Edge{U: me, V: u, W: wRow[u]}
		if cur, ok := bestInto[comp[u]]; !ok || better(e, cur) {
			bestInto[comp[u]] = e
		}
	}
	var cands []comm.Msg
	for c, e := range bestInto {
		// c is a foreign component's label = its leader's id; it can
		// never be me, because my own component is excluded above.
		cands = append(cands, comm.Msg{To: c, Words: []uint64{clique.PairWord(e.U, e.V, n), uint64(e.W)}})
	}
	candRounds := (2 + nd.WordsPerPair() - 1) / nd.WordsPerPair()
	recv := comm.SendToFew(nd, cands, candRounds)

	// Leaders reduce received candidates per source component into
	// their D-row: slot i holds the minimum edge between component
	// comps[i] and mine. The leader's own outgoing candidates went to
	// the foreign leaders, whose rows cover the same pairs from the
	// other side.
	row := make([]uint64, 2*k+2)
	if leader {
		bestFrom := make(map[int]Edge, k)
		for p := 0; p < n; p++ {
			if recv[p] == nil {
				continue
			}
			u, v := clique.UnpairWord(recv[p][0], n)
			e := Edge{U: u, V: v, W: int64(recv[p][1])}
			src := comp[p]
			if cur, ok := bestFrom[src]; !ok || better(e, cur) {
				bestFrom[src] = e
			}
		}
		for i, c := range comps {
			if e, ok := bestFrom[c]; ok {
				row[2*i] = clique.PairWord(e.U, e.V, n)
				row[2*i+1] = uint64(e.W)
			} else {
				row[2*i] = noEdge
			}
		}
		// Telemetry word: validate the sketch sample against the
		// component labels (a true cut edge has exactly one endpoint
		// inside). Bit 0: cut sketch nonempty; bit 1: verified sample.
		var tele uint64
		if !cut.Empty() {
			tele |= 1
			if u, v, ok := cut.Sample(); ok {
				inU, inV := comp[u] == me, comp[v] == me
				if inU != inV {
					tele |= 2
				}
			}
		}
		row[2*k] = tele
		row[2*k+1] = 0
	}

	// Phase D: leaders broadcast their rows; silence is free for the
	// n-k non-leaders.
	table := comm.SampledBroadcast(nd, row, 2*k+2, leader)
	endC()

	// Phase E: local replay, identical everywhere. Collect the
	// contracted edges (minimum per component pair), then Kruskal over
	// the seed partition under the shared (W, U, V) order.
	stats := SketchStats{Components: k}
	type pairKey struct{ a, b int }
	contracted := make(map[pairKey]Edge)
	for _, c := range comps {
		r := table[c]
		if r == nil {
			nd.Fail("mst: SketchFind missing row from leader %d", c)
		}
		for i, a := range comps {
			if r[2*i] == noEdge {
				continue
			}
			u, v := clique.UnpairWord(r[2*i], n)
			e := Edge{U: u, V: v, W: int64(r[2*i+1])}
			key := pairKey{a, c}
			if key.a > key.b {
				key.a, key.b = key.b, key.a
			}
			if cur, ok := contracted[key]; !ok || better(e, cur) {
				contracted[key] = e
			}
		}
		if tele := r[2*k]; tele&1 != 0 {
			stats.SampleTotal++
			if tele&2 != 0 {
				stats.SampleOK++
			}
		}
	}
	edges := make([]Edge, 0, len(contracted))
	for _, e := range contracted {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool { return less(edges[i], edges[j]) })
	uf := newUnionFind(n)
	for v := 0; v < n; v++ {
		uf.union(comp[v], v)
	}
	for _, e := range edges {
		if uf.union(e.U, e.V) {
			forest = append(forest, e)
		}
	}
	sort.Slice(forest, func(i, j int) bool { return less(forest[i], forest[j]) })
	return forest, stats
}
