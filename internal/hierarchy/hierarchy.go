package hierarchy

import (
	"fmt"

	"repro/internal/clique"
	"repro/internal/graph"
	"repro/internal/nondet"
)

// KLabelAlgorithm is a constant-round algorithm taking k labellings
// (Section 6.2): labels[i] is this node's level-i label.
type KLabelAlgorithm func(nd clique.Endpoint, row graph.Bitset, labels [][]uint64) bool

// Level is one quantifier level of a hierarchy formula.
type Level struct {
	// Exists selects the existential quantifier; false means universal.
	Exists bool
	// Space enumerates the candidate per-node labels at this level.
	Space nondet.LabelSpace
}

// SigmaPrefix returns the Sigma_k quantifier pattern (exists, forall,
// exists, ...) over a common label space.
func SigmaPrefix(k int, space nondet.LabelSpace) []Level {
	levels := make([]Level, k)
	for i := range levels {
		levels[i] = Level{Exists: i%2 == 0, Space: space}
	}
	return levels
}

// PiPrefix returns the Pi_k pattern (forall, exists, ...).
func PiPrefix(k int, space nondet.LabelSpace) []Level {
	levels := make([]Level, k)
	for i := range levels {
		levels[i] = Level{Exists: i%2 == 1, Space: space}
	}
	return levels
}

// Eval decides whether
//
//	Q_1 z_1 Q_2 z_2 ... Q_k z_k : A(G, z_1, ..., z_k) = 1
//
// by exhaustive enumeration of the per-node label assignments at every
// level. The cost is |space|^(n*k) runs: this realises the *definition*
// on micro instances and is the ground truth the protocol-level results
// are tested against.
func Eval(cfg clique.Config, g *graph.Graph, alg KLabelAlgorithm, levels []Level) (bool, error) {
	assigned := make([]nondet.Labelling, len(levels))
	var rec func(level int) (bool, error)
	rec = func(level int) (bool, error) {
		if level == len(levels) {
			return runK(cfg, g, alg, assigned)
		}
		lv := levels[level]
		// Enumerate all labellings of this level: per-node choice from
		// the level's space.
		var all [][]uint64
		lv.Space(func(l []uint64) bool {
			all = append(all, append([]uint64(nil), l...))
			return true
		})
		if len(all) == 0 {
			return false, fmt.Errorf("hierarchy: empty label space at level %d", level)
		}
		z := make(nondet.Labelling, g.N)
		var enum func(v int) (bool, error)
		enum = func(v int) (bool, error) {
			if v == g.N {
				assigned[level] = z
				inner, err := rec(level + 1)
				if err != nil {
					return false, err
				}
				// Short-circuit semantics: an existential level needs
				// one success; a universal level needs no failure.
				if lv.Exists {
					return inner, nil
				}
				return !inner, nil
			}
			for _, l := range all {
				z[v] = l
				hit, err := enum(v + 1)
				if hit || err != nil {
					return hit, err
				}
			}
			return false, nil
		}
		hit, err := enum(0)
		if err != nil {
			return false, err
		}
		if lv.Exists {
			return hit, nil // found an accepted assignment
		}
		return !hit, nil // hit means "found a rejected assignment"
	}
	return rec(0)
}

// runK executes A once under the given labellings and reports global
// acceptance.
func runK(cfg clique.Config, g *graph.Graph, alg KLabelAlgorithm, zs []nondet.Labelling) (bool, error) {
	if cfg.N == 0 {
		cfg.N = g.N
	}
	bits := make([]bool, g.N)
	_, err := clique.Run(cfg, func(nd *clique.Node) {
		labels := make([][]uint64, len(zs))
		for i, z := range zs {
			if nd.ID() < len(z) {
				labels[i] = z[nd.ID()]
			}
		}
		bits[nd.ID()] = alg(nd, g.Row(nd.ID()), labels)
	})
	if err != nil {
		return false, err
	}
	for _, b := range bits {
		if !b {
			return false, nil
		}
	}
	return true, nil
}

// FitsLogBudget reports whether a labelling respects the logarithmic
// hierarchy's label cap of c * n * ceil(log2 n) bits per node.
func FitsLogBudget(z nondet.Labelling, n, c int) bool {
	cap := c * n * clique.WordBits(n)
	for _, l := range z {
		if len(l)*clique.WordBits(n) > cap {
			return false
		}
	}
	return true
}
