// Package hierarchy implements Section 6.2 of the paper: the
// constant-round decision hierarchy (Sigma_k, Pi_k) of the congested
// clique, the analogue of the polynomial hierarchy obtained by letting
// the nodes alternate existential and universal label quantifiers.
//
// Two variants matter: the *unlimited* hierarchy, which Theorem 7 shows
// collapses to the second level (every decision problem is in
// Sigma_2 = Pi_2, via the guess-the-whole-graph protocol implemented
// here as SigmaTwoUniversal), and the *logarithmic* hierarchy, whose
// labels are capped at O(n log n) bits per node and which, by Theorem 8,
// does not contain all problems. The label-budget accounting for the
// logarithmic variant is FitsLogBudget; the counting argument behind
// Theorem 8 lives in package counting.
package hierarchy
