package hierarchy

import (
	"repro/internal/clique"
	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/nondet"
)

// This file implements the Theorem 7 protocol: every decision problem L
// (any computable graph predicate at all) is in Sigma_2 of the unlimited
// hierarchy. The existential labels let each node guess the entire input
// graph; the universal labels audit one bit of each guess per node; and
// acceptance requires every guess to be the true graph, at which point
// the predicate is evaluated locally for free.

// GuessBits returns the existential label size of the protocol in bits:
// one bit per ordered vertex pair, the paper's "n^2 bits per node".
// This exceeds any O(n log n) budget once n outgrows c * log n — the
// reason the trick is unavailable to the logarithmic hierarchy.
func GuessBits(n int) int { return n * n }

// EncodeGuess packs a graph into an existential label (n^2 bits, 64 per
// word).
func EncodeGuess(g *graph.Graph) []uint64 {
	n := g.N
	words := make([]uint64, (n*n+63)/64)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if g.HasEdge(u, v) {
				i := u*n + v
				words[i/64] |= 1 << (i % 64)
			}
		}
	}
	return words
}

// DecodeGuess unpacks an existential label into a graph; returns nil if
// the label has the wrong shape or encodes an asymmetric or reflexive
// relation.
func DecodeGuess(words []uint64, n int) *graph.Graph {
	if len(words) != (n*n+63)/64 {
		return nil
	}
	bit := func(u, v int) bool {
		i := u*n + v
		return words[i/64]&(1<<(i%64)) != 0
	}
	g := graph.New(n)
	for u := 0; u < n; u++ {
		if bit(u, u) {
			return nil
		}
		for v := u + 1; v < n; v++ {
			if bit(u, v) != bit(v, u) {
				return nil
			}
			if bit(u, v) {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// SigmaTwoUniversal builds the Theorem 7 two-label algorithm for an
// arbitrary computable predicate. Protocol, per node v:
//
//	(1) the existential label z1_v is a guess G'_v of the whole input;
//	(2) the universal label z2_v picks one ordered pair; v broadcasts
//	    the pair index and the corresponding bit of G'_v (two rounds at
//	    one word per pair);
//	(3) v rejects if any broadcast bit contradicts its own guess, or if
//	    any broadcast bit concerning an edge incident to v contradicts
//	    v's actual input row, or its own announced bit does;
//	(4) v accepts iff pred(G'_v) holds.
//
// If every guess equals G, step (3) never fires and step (4) computes
// the truth. If some guess is wrong, the universal player has a choice
// of z2 that makes an endpoint of the offending pair reject.
func SigmaTwoUniversal(pred func(g *graph.Graph) bool) KLabelAlgorithm {
	return func(nd clique.Endpoint, row graph.Bitset, labels [][]uint64) bool {
		n := nd.N()
		me := nd.ID()

		var guess *graph.Graph
		var idx uint64
		if len(labels) == 2 {
			guess = DecodeGuess(labels[0], n)
			if len(labels[1]) == 1 {
				idx = labels[1][0] % uint64(n*n)
			}
		}
		myBit := uint64(0)
		if guess != nil && guess.HasEdge(int(idx)/n, int(idx)%n) {
			myBit = 1
		}
		// Fixed two-round structure regardless of label validity. The
		// OK-tolerant collective keeps silent peers at zero, exactly as
		// the hand-rolled collection did.
		rawIdxs, _ := comm.BroadcastWordOK(nd, idx)
		idxs := make([]uint64, n)
		for u := 0; u < n; u++ {
			idxs[u] = rawIdxs[u] % uint64(n*n)
		}
		rawBits, _ := comm.BroadcastWordOK(nd, myBit)
		bits := make([]uint64, n)
		for u := 0; u < n; u++ {
			bits[u] = rawBits[u] & 1
		}

		if guess == nil || len(labels) != 2 || len(labels[1]) != 1 {
			return false
		}
		for u := 0; u < n; u++ {
			a, b := int(idxs[u])/n, int(idxs[u])%n
			// Consistency with my own guess.
			want := uint64(0)
			if guess.HasEdge(a, b) {
				want = 1
			}
			if bits[u] != want {
				return false
			}
			// Consistency with my actual input where I can check it.
			if a == me || b == me {
				other := a + b - me
				actual := uint64(0)
				if other != me && row.Has(other) {
					actual = 1
				}
				if bits[u] != actual {
					return false
				}
			}
		}
		return pred(guess)
	}
}

// HonestGuess returns the existential labelling in which every node
// guesses the true graph — the accepting strategy on yes-instances.
func HonestGuess(g *graph.Graph) nondet.Labelling {
	z := make(nondet.Labelling, g.N)
	enc := EncodeGuess(g)
	for v := range z {
		z[v] = append([]uint64(nil), enc...)
	}
	return z
}

// CatchingChallenge returns a universal labelling that makes the
// protocol reject when node cheater's guess differs from the true graph
// at ordered pair (a, b): the cheater is forced to announce its wrong
// bit, which an endpoint of the pair refutes. The other nodes' universal
// labels are irrelevant and set to 0.
func CatchingChallenge(n, cheater, a, b int) nondet.Labelling {
	z := make(nondet.Labelling, n)
	for v := range z {
		z[v] = []uint64{0}
	}
	z[cheater] = []uint64{uint64(a*n + b)}
	return z
}
