package hierarchy

import (
	"testing"

	"repro/internal/clique"
	"repro/internal/graph"
	"repro/internal/nondet"
)

func TestGuessEncodeDecodeRoundTrip(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		g := graph.Gnp(9, 0.4, seed)
		got := DecodeGuess(EncodeGuess(g), g.N)
		if got == nil || !got.Equal(g) {
			t.Fatalf("seed %d: guess round trip failed", seed)
		}
	}
	// Asymmetric and reflexive relations are rejected.
	n := 4
	words := make([]uint64, (n*n+63)/64)
	words[0] |= 1 << 1 // edge 0->1 without 1->0
	if DecodeGuess(words, n) != nil {
		t.Error("asymmetric guess decoded")
	}
	words[0] = 1 // bit (0,0): self-loop
	if DecodeGuess(words, n) != nil {
		t.Error("reflexive guess decoded")
	}
	if DecodeGuess([]uint64{0, 0, 0}, 4) != nil {
		t.Error("wrong-shape guess decoded")
	}
}

// trianglePred is an arbitrary computable predicate standing in for "any
// decision problem L" in Theorem 7.
func trianglePred(g *graph.Graph) bool { return graph.HasTriangle(g) }

func runSigmaTwo(t *testing.T, g *graph.Graph, z1, z2 nondet.Labelling) bool {
	t.Helper()
	alg := SigmaTwoUniversal(trianglePred)
	bits := make([]bool, g.N)
	_, err := clique.Run(clique.Config{N: g.N}, func(nd *clique.Node) {
		labels := [][]uint64{nil, nil}
		if nd.ID() < len(z1) {
			labels[0] = z1[nd.ID()]
		}
		if nd.ID() < len(z2) {
			labels[1] = z2[nd.ID()]
		}
		bits[nd.ID()] = alg(nd, g.Row(nd.ID()), labels)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bits {
		if !b {
			return false
		}
	}
	return true
}

func allChallenges(n int, f func(z2 nondet.Labelling) bool) bool {
	z2 := make(nondet.Labelling, n)
	var rec func(v int) bool
	rec = func(v int) bool {
		if v == n {
			return f(z2)
		}
		for idx := 0; idx < n*n; idx++ {
			z2[v] = []uint64{uint64(idx)}
			if !rec(v + 1) {
				return false
			}
		}
		return true
	}
	return rec(0)
}

func TestSigmaTwoHonestProverAcceptsAllChallenges(t *testing.T) {
	// Theorem 7 completeness at n=3, exhaustively over the 9^3 = 729
	// universal assignments, on a yes- and a no-instance.
	yes := graph.Complete(3) // triangle
	no := graph.Path(3)      // no triangle
	honestYes := HonestGuess(yes)
	honestNo := HonestGuess(no)
	if !allChallenges(3, func(z2 nondet.Labelling) bool {
		return runSigmaTwo(t, yes, honestYes, z2)
	}) {
		t.Error("honest prover rejected on a yes-instance by some challenge")
	}
	// On a no-instance even the honest guess must be rejected (by the
	// predicate check), for every challenge.
	if !allChallenges(3, func(z2 nondet.Labelling) bool {
		return !runSigmaTwo(t, no, honestNo, z2)
	}) {
		t.Error("no-instance accepted under some challenge despite honest guess")
	}
}

func TestSigmaTwoCheatingProverIsCaught(t *testing.T) {
	// A no-instance where node 1 guesses a graph WITH a triangle: the
	// challenge that audits a fabricated edge must reject.
	no := graph.Path(4)
	fake := graph.Complete(4)
	z1 := HonestGuess(no)
	z1[1] = EncodeGuess(fake)

	// Find a pair where the fake guess differs from the truth.
	var a, b int = -1, -1
	for u := 0; u < 4 && a < 0; u++ {
		for v := 0; v < 4; v++ {
			if u != v && fake.HasEdge(u, v) != no.HasEdge(u, v) {
				a, b = u, v
				break
			}
		}
	}
	z2 := CatchingChallenge(4, 1, a, b)
	if runSigmaTwo(t, no, z1, z2) {
		t.Error("cheating prover survived the catching challenge")
	}
	// The same cheat with an irrelevant challenge may pass step (3) but
	// must then still be caught... only if the audited endpoint checks;
	// with challenge (0,0) everywhere the consistency checks all pass,
	// and the cheater's local predicate check accepts — demonstrating
	// exactly why the universal quantifier is needed.
	lazy := CatchingChallenge(4, 1, 0, 0)
	lazy[1] = []uint64{0}
	accepted := runSigmaTwo(t, no, z1, lazy)
	// The honest nodes' guesses disagree with the cheater's announced
	// bit only if the audit touches a disputed pair; pair (0,0) is
	// undisputed, but honest nodes ALSO check the cheater's announced
	// bit against their own guesses for pair (0,1)... with index 0 the
	// audit is pair (0,0), consistent everywhere; nodes accept iff
	// their own predicate check passes. Honest guesses have no
	// triangle, so they reject anyway.
	if accepted {
		t.Error("run accepted although honest nodes' predicate check must reject")
	}
}

func TestSigmaTwoSharedWrongGuessCaughtByInputCheck(t *testing.T) {
	// ALL nodes guess the same wrong graph (with a triangle) on a
	// triangle-free input: announced bits are mutually consistent, so
	// only the audit-against-input check can catch it — and it does,
	// when the challenge points at a fabricated edge.
	no := graph.Path(3)
	fake := graph.Complete(3)
	z1 := make(nondet.Labelling, 3)
	for v := range z1 {
		z1[v] = EncodeGuess(fake)
	}
	// Fabricated edge (0, 2): audit it.
	z2 := CatchingChallenge(3, 0, 0, 2)
	if runSigmaTwo(t, no, z1, z2) {
		t.Error("globally shared wrong guess survived an input audit")
	}
	// And there must exist SOME catching challenge (Theorem 7
	// soundness): search all of them.
	caught := false
	allChallenges(3, func(z2 nondet.Labelling) bool {
		if !runSigmaTwo(t, no, z1, z2) {
			caught = true
			return false
		}
		return true
	})
	if !caught {
		t.Error("no challenge catches the shared wrong guess")
	}
}

func TestEvalSigmaTwoOnRestrictedGuessSpace(t *testing.T) {
	// Full exists-forall evaluation with the existential space
	// restricted to {honest, cheat}: on the yes-instance the honest
	// branch survives all challenges; on the no-instance both branches
	// fail some challenge (or the predicate).
	yes := graph.Complete(3)
	no := graph.Path(3)
	alg := SigmaTwoUniversal(trianglePred)

	space := func(g *graph.Graph) nondet.LabelSpace {
		honest := EncodeGuess(g)
		cheat := EncodeGuess(graph.Complete(3))
		return func(emit func([]uint64) bool) {
			if !emit(honest) {
				return
			}
			emit(cheat)
		}
	}
	challenge := nondet.WordSpace(9)

	got, err := Eval(clique.Config{N: 3}, yes, alg, []Level{
		{Exists: true, Space: space(yes)},
		{Exists: false, Space: challenge},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("Sigma_2 evaluation rejected the yes-instance")
	}
	got, err = Eval(clique.Config{N: 3}, no, alg, []Level{
		{Exists: true, Space: space(no)},
		{Exists: false, Space: challenge},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("Sigma_2 evaluation accepted the no-instance")
	}
}

func TestEvalQuantifierDuality(t *testing.T) {
	// not (exists z1 forall z2 A) == forall z1 exists z2 (not A):
	// evaluate both sides on a micro instance with a nontrivial A.
	g := graph.Path(2)
	a := func(nd clique.Endpoint, row graph.Bitset, labels [][]uint64) bool {
		// Accept iff the two levels' labels agree at this node.
		nd.Tick() // constant-round algorithms may still communicate
		return len(labels) == 2 && len(labels[0]) == 1 && len(labels[1]) == 1 &&
			labels[0][0] == labels[1][0]
	}
	notA := func(nd clique.Endpoint, row graph.Bitset, labels [][]uint64) bool {
		return !a(nd, row, labels)
	}
	space := nondet.WordSpace(2)
	sigma, err := Eval(clique.Config{N: 2}, g, a, SigmaPrefix(2, space))
	if err != nil {
		t.Fatal(err)
	}
	pi, err := Eval(clique.Config{N: 2}, g, notA, PiPrefix(2, space))
	if err != nil {
		t.Fatal(err)
	}
	if sigma == pi {
		t.Errorf("duality violated: Sigma_2(A) = %v, Pi_2(not A) = %v", sigma, pi)
	}
}

func TestEvalDegeneratesToNondetAtK1(t *testing.T) {
	// Sigma_1 = NCLIQUE(1): evaluating a 1-level formula must agree with
	// nondet.ExhaustiveDecide.
	g := graph.Cycle(5)
	verifier := nondet.KColoringVerifier(3)
	wrapped := func(nd clique.Endpoint, row graph.Bitset, labels [][]uint64) bool {
		return verifier(nd, row, labels[0])
	}
	viaEval, err := Eval(clique.Config{N: 5}, g, wrapped, SigmaPrefix(1, nondet.WordSpace(3)))
	if err != nil {
		t.Fatal(err)
	}
	viaNondet, _, err := nondet.ExhaustiveDecide(clique.Config{N: 5}, g, verifier, nondet.WordSpace(3))
	if err != nil {
		t.Fatal(err)
	}
	if viaEval != viaNondet {
		t.Errorf("Sigma_1 evaluation (%v) disagrees with NCLIQUE search (%v)", viaEval, viaNondet)
	}
	if !viaEval {
		t.Error("C5 is 3-colourable; Sigma_1 should accept")
	}
}

func TestLogBudgetExcludesGuessLabels(t *testing.T) {
	// The heart of the Theorem 7 / Theorem 8 contrast: the
	// guess-the-graph labels need n^2 bits, which eventually exceeds
	// every c * n * log n budget.
	c := 2
	violated := false
	for n := 4; n <= 4096; n *= 2 {
		if GuessBits(n) > c*n*clique.WordBits(n) {
			violated = true
			break
		}
	}
	if !violated {
		t.Error("guess labels fit the logarithmic budget at every tested n")
	}
	// Concretely via FitsLogBudget on an actual labelling.
	g := graph.Gnp(64, 0.5, 3)
	z := HonestGuess(g)
	words := len(z[0])
	bitsPerLabel := words * clique.WordBits(64)
	if bitsPerLabel <= c*64*clique.WordBits(64) {
		t.Skip("n too small for the packed encoding to exceed the budget")
	}
	if FitsLogBudget(z, 64, c) {
		t.Error("n^2-bit guesses reported as fitting the O(n log n) budget")
	}
	// Small labels do fit.
	small := nondet.Labelling{{1}, {2}}
	if !FitsLogBudget(small, 64, 1) {
		t.Error("single-word labels rejected by the budget")
	}
}

func TestSigmaTwoRunsInBroadcastCongestedClique(t *testing.T) {
	// The Theorem 7 protocol only broadcasts (index round, bit round),
	// so it works verbatim in the broadcast congested clique.
	g := graph.Complete(4)
	alg := SigmaTwoUniversal(trianglePred)
	z1 := HonestGuess(g)
	z2 := CatchingChallenge(4, 0, 1, 2)
	bits := make([]bool, g.N)
	_, err := clique.Run(clique.Config{N: g.N, BroadcastOnly: true}, func(nd *clique.Node) {
		bits[nd.ID()] = alg(nd, g.Row(nd.ID()), [][]uint64{z1[nd.ID()], z2[nd.ID()]})
	})
	if err != nil {
		t.Fatal(err)
	}
	for v, b := range bits {
		if !b {
			t.Errorf("node %d rejected honest proof in broadcast model", v)
		}
	}
}
