package serve

import (
	"context"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/ledger"
)

// installFaults swaps a fault plan in for the test's duration. Fault
// plans are process-global, so tests using them must not be parallel.
func installFaults(t *testing.T, spec string) *fault.Plan {
	t.Helper()
	plan, err := fault.Parse(spec)
	if err != nil {
		t.Fatalf("fault.Parse(%q): %v", spec, err)
	}
	prev := fault.Install(plan)
	t.Cleanup(func() { fault.Install(prev) })
	return plan
}

// openLedger opens a scratch ledger the test's server can own.
func openLedger(t *testing.T, path string) *ledger.Ledger {
	t.Helper()
	l, _, err := ledger.Open(path)
	if err != nil {
		t.Fatalf("ledger.Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

// TestJobDeadline504 pins the deadline leg of the error taxonomy: a
// job that exceeds its wall-clock budget answers 504 Gateway Timeout —
// not the 503 a shed or shutdown produces, not the 500 a panic does —
// and does so promptly: cancellation latency is bounded by the next
// simulated-run boundary (here: the injected stall's end), not by the
// job's natural duration.
func TestJobDeadline504(t *testing.T) {
	installFaults(t, "stall@job.run:ms=300")
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4, JobTimeout: 30 * time.Millisecond})

	start := time.Now()
	rec := do(t, s, "POST", "/v1/run", `{"algorithm":"exchange","n":8,"seed":1}`)
	elapsed := time.Since(start)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (body: %s)", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "deadline") {
		t.Fatalf("504 body does not name the deadline: %s", rec.Body.String())
	}
	// Latency bound: budget (30ms) + the stall the worker was stuck in
	// (300ms) + scheduling slack. Anywhere near the full second would
	// mean cancellation is not taking effect at the boundary.
	if elapsed > 1500*time.Millisecond {
		t.Fatalf("deadline response took %v — cancellation latency unbounded", elapsed)
	}
}

// TestPerRequestTimeoutCapped pins that timeout_ms can shrink the
// budget but never grow it past the server's JobTimeout cap.
func TestPerRequestTimeoutCapped(t *testing.T) {
	installFaults(t, "stall@job.run:ms=300")
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4, JobTimeout: 30 * time.Millisecond})

	// Asks for 10s; the cap holds it to 30ms, so the stalled job still
	// times out.
	rec := do(t, s, "POST", "/v1/run", `{"algorithm":"exchange","n":8,"seed":2,"timeout_ms":10000}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: cap did not hold (body: %s)", rec.Code, rec.Body.String())
	}

	if rec := do(t, s, "POST", "/v1/run", `{"algorithm":"exchange","n":8,"seed":3,"timeout_ms":-5}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("negative timeout_ms: status %d, want 400", rec.Code)
	}
}

// TestPerRequestTimeoutWithoutServerCap pins the uncapped server: a
// request-supplied budget is honoured as-is.
func TestPerRequestTimeoutWithoutServerCap(t *testing.T) {
	installFaults(t, "stall@job.run:ms=300")
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	rec := do(t, s, "POST", "/v1/run", `{"algorithm":"exchange","n":8,"seed":4,"timeout_ms":30}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (body: %s)", rec.Code, rec.Body.String())
	}
	// And with no budget at all the stalled job still completes: 200.
	rec = do(t, s, "POST", "/v1/run", `{"algorithm":"exchange","n":8,"seed":5}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("unbudgeted job: status %d, want 200 (body: %s)", rec.Code, rec.Body.String())
	}
}

// TestQueueFullShedsWithRetryAfter pins the shed leg: a full queue
// answers 503 with a Retry-After header derived from the recent-jobs
// wall-time window, and the shed is counted on its own metric beside
// the aggregate rejected counter.
func TestQueueFullShedsWithRetryAfter(t *testing.T) {
	installFaults(t, "stall@job.run:ms=400")
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1, JobTimeout: 0})

	// Fill the single worker and the single queue slot with distinct
	// requests, then overflow. Scheduling is synchronous (enqueue
	// happens before the handler waits), so issuing the requests from
	// goroutines and polling the queued metric is race-free.
	release := make(chan struct{})
	for i := 0; i < 2; i++ {
		go func(i int) {
			do(t, s, "POST", "/v1/run", fmt.Sprintf(`{"algorithm":"exchange","n":8,"seed":%d}`, 100+i))
			release <- struct{}{}
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.metrics.jobsQueued.Value()+s.metrics.jobsRunning.Value() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("backlog never built: queued=%d running=%d",
				s.metrics.jobsQueued.Value(), s.metrics.jobsRunning.Value())
		}
		time.Sleep(time.Millisecond)
	}

	rec := do(t, s, "POST", "/v1/run", `{"algorithm":"exchange","n":8,"seed":999}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("overflow status %d, want 503 (body: %s)", rec.Code, rec.Body.String())
	}
	ra := rec.Header().Get("Retry-After")
	if ra == "" {
		t.Fatal("shed 503 carries no Retry-After header")
	}
	var secs int
	if _, err := fmt.Sscanf(ra, "%d", &secs); err != nil || secs < 1 || secs > 60 {
		t.Fatalf("Retry-After %q is not a sane second count", ra)
	}
	if got := s.metrics.jobsShed.Value(); got != 1 {
		t.Fatalf("jobs_shed = %d, want 1", got)
	}
	if !strings.Contains(do(t, s, "GET", "/metrics", "").Body.String(), `"jobs_shed"`) {
		t.Fatal("/metrics does not expose jobs_shed")
	}
	<-release
	<-release
}

// TestLedgerWriteThrough pins the durable tier: a computed envelope
// lands in the ledger keyed by the canonical request hash, a second
// server over the same file serves it byte-identically without
// simulating, and traced envelopes stay out of the ledger.
func TestLedgerWriteThrough(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.clq")
	l := openLedger(t, path)
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4, Ledger: l})

	body := `{"algorithm":"triangle","n":24,"seed":9,"backend":"lockstep"}`
	first := do(t, s, "POST", "/v1/run", body)
	if first.Code != 200 {
		t.Fatalf("run: status %d: %s", first.Code, first.Body.String())
	}
	hash := first.Header().Get("X-Request-Hash")
	if hash == "" {
		t.Fatal("response missing X-Request-Hash")
	}
	stored, err := l.Get(hash)
	if err != nil {
		t.Fatalf("envelope not in ledger under its request hash: %v", err)
	}
	if string(stored) != first.Body.String() {
		t.Fatal("ledger stores different bytes than were served")
	}

	// A traced request must not be persisted: its envelope embeds
	// wall-clock data and is not a reproducible artefact.
	traced := do(t, s, "POST", "/v1/run?trace=1", body)
	if traced.Code != 200 {
		t.Fatalf("traced run: status %d", traced.Code)
	}
	if l.Len() != 1 {
		t.Fatalf("ledger has %d records after a traced run, want still 1", l.Len())
	}

	// "Restart": a fresh server (empty memory cache) over a reopened
	// ledger serves the envelope from disk, byte-identically, without
	// scheduling a simulation.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	l.Close()
	l2 := openLedger(t, path)
	s2 := newTestServer(t, Config{Workers: 1, QueueDepth: 4, Ledger: l2})
	second := do(t, s2, "POST", "/v1/run", body)
	if second.Code != 200 {
		t.Fatalf("post-restart run: status %d", second.Code)
	}
	if second.Body.String() != first.Body.String() {
		t.Fatal("post-restart envelope differs from the pre-restart one")
	}
	if hits := s2.metrics.ledgerHits.Value(); hits != 1 {
		t.Fatalf("ledger_hits = %d, want 1", hits)
	}
	if s2.metrics.jobsDone.Value() != 0 {
		t.Fatal("post-restart request simulated instead of serving from the ledger")
	}
	if !strings.Contains(do(t, s2, "GET", "/metrics", "").Body.String(), `"ledger_hits"`) {
		t.Fatal("/metrics does not expose ledger counters")
	}
}

// TestLedgerStatsEndpoint pins GET /v1/ledger/stats: 404 without a
// ledger, the integrity view with one.
func TestLedgerStatsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	if rec := do(t, s, "GET", "/v1/ledger/stats", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("no ledger: status %d, want 404", rec.Code)
	}

	l := openLedger(t, filepath.Join(t.TempDir(), "ledger.clq"))
	s2 := newTestServer(t, Config{Workers: 1, QueueDepth: 4, Ledger: l})
	if rec := do(t, s2, "POST", "/v1/run", `{"algorithm":"exchange","n":8,"seed":1}`); rec.Code != 200 {
		t.Fatalf("run: status %d", rec.Code)
	}
	rec := do(t, s2, "GET", "/v1/ledger/stats", "")
	if rec.Code != 200 {
		t.Fatalf("stats: status %d", rec.Code)
	}
	for _, field := range []string{`"records": 1`, `"chain_head"`, `"bytes"`} {
		if !strings.Contains(rec.Body.String(), field) {
			t.Fatalf("stats body missing %s: %s", field, rec.Body.String())
		}
	}
}

// TestLedgerFaultDegradesNotFails pins that a broken disk degrades
// durability, never availability: with every ledger write failing, the
// daemon still serves correct envelopes and counts the failures.
func TestLedgerFaultDegradesNotFails(t *testing.T) {
	installFaults(t, "io-error@ledger.write")
	l := openLedger(t, filepath.Join(t.TempDir(), "ledger.clq"))
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4, Ledger: l})

	rec := do(t, s, "POST", "/v1/run", `{"algorithm":"exchange","n":8,"seed":6}`)
	if rec.Code != 200 {
		t.Fatalf("run with failing ledger: status %d, want 200 (body: %s)", rec.Code, rec.Body.String())
	}
	if s.metrics.ledgerErrors.Value() == 0 {
		t.Fatal("failed append not counted on ledger_errors")
	}
	if l.Len() != 0 {
		t.Fatal("append was supposed to fail")
	}
}
