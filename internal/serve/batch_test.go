package serve

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/clique"
	"repro/internal/exp"
	"repro/internal/workload"
)

func init() {
	workload.Register(Algorithm{
		Name: "test-overflow", Title: "test-only: violates the word budget", WPP: 1,
		Make: func(n int, seed uint64) clique.NodeFunc {
			return func(nd *clique.Node) {
				nd.Send((nd.ID()+1)%nd.N(), 1, 2)
				nd.Tick()
			}
		},
	})
}

// adhocEntry builds a queued-looking entry for a canonical ad-hoc
// request, the way schedule would.
func adhocEntry(alg string, n int, wpp int, seed uint64) *entry {
	req := exp.Request{Kind: exp.KindAdhoc, Algorithm: alg, N: n,
		WordsPerPair: wpp, Seed: seed, Backend: "lockstep"}
	return newEntry(req.Hash(), req)
}

// bareServer builds a Server without starting its worker pool, so tests
// drive worker/coalesce deterministically.
func bareServer(cfg Config) *Server {
	return &Server{
		cfg:     cfg.withDefaults(),
		metrics: newMetrics(),
		cache:   newResultCache(64),
		queue:   make(chan *entry, 64),
		baseCtx: context.Background(),
	}
}

// TestBatchedEnvelopeBytesMatchSerial is the serving-layer equivalence
// pin: a coalesced group's envelopes (and error strings, for a
// violating workload) must be byte-identical to what serial runJob
// produces for the same requests.
func TestBatchedEnvelopeBytesMatchSerial(t *testing.T) {
	cases := []struct {
		alg     string
		n, wpp  int
		wantErr bool
	}{
		{"exchange", 16, 1, false},
		{"triangle", 24, 1, false},
		{"test-overflow", 4, 1, true},
	}
	for _, tc := range cases {
		t.Run(tc.alg, func(t *testing.T) {
			const width = 4
			serial := bareServer(Config{Workers: 1})
			batched := bareServer(Config{Workers: 1, BatchWidth: width})

			var want [][]byte
			var wantErrs []error
			for seed := uint64(1); seed <= width; seed++ {
				e := adhocEntry(tc.alg, tc.n, tc.wpp, seed)
				serial.runJob(e)
				<-e.done
				want = append(want, e.data)
				wantErrs = append(wantErrs, e.err)
			}

			group := make([]*entry, width)
			for i := range group {
				group[i] = adhocEntry(tc.alg, tc.n, tc.wpp, uint64(i+1))
			}
			batched.runJobBatch(group)
			for i, e := range group {
				<-e.done
				if tc.wantErr {
					if e.err == nil || wantErrs[i] == nil {
						t.Fatalf("seed %d: batched err %v, serial err %v", i+1, e.err, wantErrs[i])
					}
					if e.err.Error() != wantErrs[i].Error() {
						t.Fatalf("seed %d: batched err %q, serial err %q", i+1, e.err, wantErrs[i])
					}
					continue
				}
				if e.err != nil {
					t.Fatalf("seed %d: batched job failed: %v", i+1, e.err)
				}
				if !bytes.Equal(e.data, want[i]) {
					t.Fatalf("seed %d: batched envelope differs from serial:\nbatched: %s\nserial:  %s",
						i+1, e.data, want[i])
				}
			}
			if got := batched.metrics.batches.Value(); got != 1 {
				t.Fatalf("batches = %d, want 1", got)
			}
			if got := batched.metrics.jobsBatched.Value(); got != width {
				t.Fatalf("jobs_batched = %d, want %d", got, width)
			}
		})
	}
}

// TestWorkerCoalescesQueuedJobs drives one worker over a pre-filled
// queue: the same-shape majority coalesces into one batched execution,
// the odd-shape job still runs (serially), and every job completes with
// the bytes its serial twin produces.
func TestWorkerCoalescesQueuedJobs(t *testing.T) {
	s := bareServer(Config{Workers: 1, BatchWidth: 8})

	var entries []*entry
	for seed := uint64(1); seed <= 4; seed++ {
		entries = append(entries, adhocEntry("exchange", 12, 1, seed))
	}
	odd := adhocEntry("triangle", 12, 1, 1)
	entries = append(entries, odd)
	for _, e := range entries {
		if err := s.enqueue(e); err != nil {
			t.Fatalf("enqueue: %v", err)
		}
	}
	s.workers.Add(1)
	go s.worker()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for i, e := range entries {
		<-e.done
		if e.err != nil {
			t.Fatalf("entry %d failed: %v", i, e.err)
		}
	}

	if got := s.metrics.batches.Value(); got != 1 {
		t.Fatalf("batches = %d, want 1", got)
	}
	if got := s.metrics.jobsBatched.Value(); got != 4 {
		t.Fatalf("jobs_batched = %d, want 4", got)
	}
	if got := s.metrics.jobsDone.Value(); got != int64(len(entries)) {
		t.Fatalf("jobs_done = %d, want %d", got, len(entries))
	}
	if got := s.metrics.jobsQueued.Value(); got != 0 {
		t.Fatalf("jobs_queued = %d, want 0 after drain", got)
	}

	serial := bareServer(Config{Workers: 1})
	for i, e := range entries {
		twin := newEntry(e.hash, e.req)
		serial.runJob(twin)
		<-twin.done
		if !bytes.Equal(e.data, twin.data) {
			t.Fatalf("entry %d: coalesced bytes differ from serial", i)
		}
	}
}

// TestBatchWidthEndToEnd exercises live coalescing through the HTTP
// surface under concurrency: whether or not any given pair coalesced is
// scheduling-dependent, but every response must carry the serial bytes.
func TestBatchWidthEndToEnd(t *testing.T) {
	batched := newTestServer(t, Config{Workers: 2, QueueDepth: 64, BatchWidth: 4})
	serial := newTestServer(t, Config{Workers: 2, QueueDepth: 64})

	const seeds = 8
	bodies := make([]string, seeds)
	var wg sync.WaitGroup
	for i := 0; i < seeds; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"algorithm":"exchange","n":16,"seed":%d}`, i)
			rec := do(t, batched, "POST", "/v1/run", body)
			if rec.Code == 200 {
				bodies[i] = rec.Body.String()
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < seeds; i++ {
		if bodies[i] == "" {
			t.Fatalf("seed %d: batched server failed", i)
		}
		body := fmt.Sprintf(`{"algorithm":"exchange","n":16,"seed":%d}`, i)
		rec := do(t, serial, "POST", "/v1/run", body)
		if rec.Code != 200 {
			t.Fatalf("seed %d: serial server status %d", i, rec.Code)
		}
		if rec.Body.String() != bodies[i] {
			t.Fatalf("seed %d: batched response differs from serial", i)
		}
	}
}
