package serve

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestSSEClientDisconnectLeaksNothing pins the disconnect contract: a
// client that opens a progress stream and walks away mid-run cancels
// nothing shared — the job keeps running and a coalesced waiter still
// gets its 200 — and the server's goroutine count returns to baseline
// (no stream writer, no per-job goroutine left behind).
func TestSSEClientDisconnectLeaksNothing(t *testing.T) {
	installFaults(t, "stall@job.run:ms=400")
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}

	before := runtime.NumGoroutine()

	body := `{"algorithm":"exchange","n":8,"seed":77}`
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/run?stream=sse", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("open SSE stream: %v", err)
	}
	// Read up to the queued event so the job is definitely scheduled,
	// then hang up mid-run (the worker is inside the injected stall).
	sc := bufio.NewScanner(resp.Body)
	sawQueued := false
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "event: queued") {
			sawQueued = true
			break
		}
	}
	if !sawQueued {
		t.Fatal("never saw the queued event")
	}
	cancel()
	resp.Body.Close()

	// A second client coalesces onto the same in-flight job. The first
	// client's disconnect must not have cancelled it.
	resp2, err := client.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("coalesced request: %v", err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("coalesced waiter after disconnect: status %d, want 200", resp2.StatusCode)
	}

	// Goroutine accounting, goleak-style: poll until the count settles
	// back to (near) baseline. A leaked stream writer or job goroutine
	// keeps the count elevated past any settle time.
	client.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines did not settle: before=%d now=%d\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSSEDisconnectedJobStillPersists pins that the disconnected job's
// result also reaches the ledger: durability does not depend on anyone
// listening.
func TestSSEDisconnectedJobStillPersists(t *testing.T) {
	installFaults(t, "stall@job.run:ms=200")
	l := openLedger(t, t.TempDir()+"/ledger.clq")
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4, Ledger: l})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"algorithm":"exchange","n":8,"seed":78}`
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/run?stream=sse", strings.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("open SSE stream: %v", err)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "event: queued") {
			break
		}
	}
	cancel()
	resp.Body.Close()

	deadline := time.Now().Add(5 * time.Second)
	for l.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned job's envelope never reached the ledger")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if l.Len() != 1 {
		t.Fatalf("ledger has %d records, want 1", l.Len())
	}
}
