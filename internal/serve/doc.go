// Package serve is the long-running simulation service behind the
// cliqued daemon: an HTTP/JSON layer over the internal/exp experiment
// registry and the internal/clique simulator.
//
// The service exposes:
//
//   - GET  /v1/experiments            — the registry (id, artefact, title)
//   - GET  /v1/experiments/{id}       — one registry entry
//   - POST /v1/experiments/{id}:run   — run a registered experiment
//   - GET  /v1/algorithms             — the ad-hoc algorithm catalogue
//   - POST /v1/run                    — ad-hoc run (algorithm, n, backend, seed)
//   - GET  /v1/ledger/stats           — durable tier integrity view (404 without -ledger)
//   - GET  /healthz                   — liveness
//   - GET  /metrics                   — expvar counters (jobs, cache, rounds/sec)
//
// Both run endpoints answer with the same cliquebench/v1 JSON envelope
// that `cliquebench -format=json` prints, byte for byte, so clients and
// stored reports never see two shapes for one result.
//
// Execution is organised as a bounded job queue drained by a fixed
// worker pool. Every request is first canonicalised and hashed
// (exp.Request.Hash); the hash keys a deduplicating result cache, so
// concurrent identical requests coalesce onto one running job and
// repeated requests are served from memory without simulating anything.
// Workers run experiments on the lockstep engine whose mailbox arenas
// are pooled across runs (internal/engine), so a hot serving loop stops
// allocating its largest buffers; /metrics breaks the pools' hit rates
// down per mailbox shape and per scratch size class. With
// Config.BatchWidth > 1 a worker additionally coalesces queued
// same-shape untraced ad-hoc jobs into one batched engine execution
// (clique.RunBatch) whose per-job envelopes stay byte-identical to
// serial runs. Clients that ask for
// `Accept: text/event-stream` (or `?stream=sse`) get queued/progress
// events while the job runs and the envelope as the final event.
// Shutdown is graceful: the queue stops accepting, running jobs drain
// (or are cancelled at the drain deadline), pending ledger appends are
// fsync'd, and waiters are notified.
//
// # Failure semantics
//
// Failures map to a typed taxonomy so retry policy never parses error
// text: a full queue sheds with 503 plus a Retry-After estimate from
// the recent-jobs wall-time window (jobs_shed); a job exceeding its
// wall budget — Config.JobTimeout, optionally shrunk per-request via
// timeout_ms — answers 504 (errJobTimeout); a contained worker panic
// or any other run failure answers 500; shutdown answers 503. With
// Config.Ledger set, computed untraced envelopes are appended to the
// crash-safe store (internal/ledger) before the response is released
// — a 200 implies durable — and memory-cache misses consult the
// ledger before simulating, so results survive restarts byte for
// byte. Ledger failures degrade durability (ledger_errors), never
// availability. internal/fault's injection sites (job.run, ledger.*)
// let the chaos suite drive all of this deterministically.
package serve
