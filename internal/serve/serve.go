package serve

import (
	"context"
	"expvar"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/internal/clique"
	"repro/internal/ledger"
)

// Config sizes the service. The zero value is usable: every field has a
// production-reasonable default applied by New.
type Config struct {
	// Workers is the number of job-executing goroutines. Default:
	// GOMAXPROCS. Note each worker runs a whole simulation (which may
	// itself use every core via the lockstep engine's shard pool), so
	// worker count trades per-job latency against throughput under
	// concurrent load.
	Workers int
	// QueueDepth bounds the number of jobs waiting to run; a full
	// queue rejects new work with 503 rather than queueing unboundedly.
	// Default: 64.
	QueueDepth int
	// CacheEntries bounds the completed-result cache (FIFO eviction).
	// Default: 256.
	CacheEntries int
	// DefaultBackend is the engine used when a request does not name
	// one. Default: "lockstep", the serving-optimised engine.
	DefaultBackend string
	// BatchWidth caps how many batchable ad-hoc jobs a worker coalesces
	// from the queue into one batched engine execution (untraced ad-hoc
	// requests sharing algorithm/n/wpp/backend/quick — seed sweeps).
	// Each coalesced job still produces the envelope a serial execution
	// would, byte for byte. Default: 1, i.e. batching off.
	BatchWidth int
	// JobTimeout caps every job's wall-clock execution budget; a job
	// that exceeds it fails with the typed deadline error (HTTP 504 —
	// distinct from 503 shed and 500 panic). Requests may ask for a
	// shorter budget via timeout_ms but can never exceed this cap.
	// 0 (the default) means no server-side cap: only per-request
	// budgets apply. Cancellation takes effect at the next
	// simulated-run boundary, the same grain as Shutdown's abort.
	JobTimeout time.Duration
	// Ledger, when non-nil, is the durable second cache tier: every
	// successfully computed untraced envelope is appended (write-
	// through, fsync'd before the response is released) and memory-
	// cache misses consult it before simulating, so computed results
	// survive daemon restarts. The server does not close it; the
	// owner does, after Shutdown returns.
	Ledger *ledger.Ledger
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 64
	}
	if c.CacheEntries < 1 {
		c.CacheEntries = 256
	}
	if c.DefaultBackend == "" {
		c.DefaultBackend = "lockstep"
	}
	if c.BatchWidth < 1 {
		c.BatchWidth = 1
	}
	return c
}

// Server is the simulation service. Create with New, mount Handler on
// an http.Server, and call Shutdown to drain.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	metrics *metrics
	cache   *resultCache
	queue   chan *entry

	baseCtx context.Context // cancelled to abort running jobs
	abort   context.CancelFunc

	mu      sync.Mutex // guards closed / queue close
	closed  bool
	workers sync.WaitGroup
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		metrics: newMetrics(),
		cache:   newResultCache(cfg.CacheEntries),
		queue:   make(chan *entry, cfg.QueueDepth),
		baseCtx: ctx,
		abort:   cancel,
	}
	if cfg.Ledger != nil {
		s.metrics.vars.Set("ledger", expvar.Func(func() any { return cfg.Ledger.Stats() }))
	}
	s.routes()
	s.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/ledger/stats", s.handleLedgerStats)
	s.mux.HandleFunc("GET /v1/experiments", s.handleListExperiments)
	s.mux.HandleFunc("GET /v1/experiments/{id}", s.handleGetExperiment)
	s.mux.HandleFunc("POST /v1/experiments/{idop}", s.handleRunExperiment)
	s.mux.HandleFunc("GET /v1/algorithms", s.handleListAlgorithms)
	s.mux.HandleFunc("POST /v1/run", s.handleAdhocRun)
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Backends reports the engine names the service accepts, for handlers
// and for cmd/cliqued's flag help.
func Backends() []string { return clique.Backends() }

// Shutdown drains the service: no new jobs are accepted (handlers
// answer 503), queued and running jobs finish, then workers exit. If
// ctx expires first, running jobs are cancelled at their next
// simulated-run boundary and Shutdown waits for the workers to unwind
// before returning ctx's error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.flushLedger()
		return nil
	case <-ctx.Done():
		s.abort() // cancel running jobs, then wait for the unwind
		<-done
		s.flushLedger()
		return ctx.Err()
	}
}

// flushLedger makes the drain's durability promise explicit: every
// append the workers performed is fsync'd before Shutdown returns, so
// a clean SIGTERM exit never leaves a torn tail (appends sync
// individually; this is the belt-and-braces flush for the exit path).
func (s *Server) flushLedger() {
	if s.cfg.Ledger != nil {
		_ = s.cfg.Ledger.Sync()
	}
}
