package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/ledger"
)

// chaosSpecs is the built-in fault matrix the chaos suite runs when
// CLIQUE_FAULTS is unset. CI sets CLIQUE_FAULTS to run the suite under
// one spec per matrix leg instead.
var chaosSpecs = []struct{ name, spec string }{
	{"ledger-io-error", "io-error@ledger.*:p=0.4,seed=7"},
	{"ledger-short-write", "short-write@ledger.write:every=2"},
	{"worker-stall", "stall@job.run:ms=10,p=0.5,seed=11"},
	{"worker-panic", "panic@job.run:every=3"},
	{"combined", "io-error@ledger.write:p=0.2,seed=3;panic@job.run:every=5;stall@job.run:ms=5,p=0.3,seed=9"},
}

// TestChaos is the fault suite: under each injected fault regime the
// daemon must keep its contract — every request answers within the
// watchdog (no deadlocks), every answer is a member of the error
// taxonomy (200 envelope / 500 failure / 503 shed / 504 deadline),
// every 200 body is a well-formed envelope and byte-identical across
// duplicates of the same request, and the ledger file verifies clean
// afterwards (failed appends rolled back, never torn).
func TestChaos(t *testing.T) {
	if env := os.Getenv("CLIQUE_FAULTS"); env != "" {
		// CI matrix mode: the environment names the one regime to run.
		// (The fault package auto-installed it at init; the subtest
		// re-installs the same spec, which is idempotent.)
		t.Run("env", func(t *testing.T) { chaosRound(t, env) })
		return
	}
	for _, tc := range chaosSpecs {
		t.Run(tc.name, func(t *testing.T) { chaosRound(t, tc.spec) })
	}
}

func chaosRound(t *testing.T, spec string) {
	installFaults(t, spec)
	path := filepath.Join(t.TempDir(), "ledger.clq")
	l := openLedger(t, path)
	s := New(Config{Workers: 4, QueueDepth: 32, JobTimeout: 5 * time.Second, Ledger: l})

	// A barrage of concurrent requests with deliberate duplicates (seed
	// i%4) so coalescing, caching and the ledger tier all engage while
	// faults fire.
	const requests = 24
	type outcome struct {
		body   string
		status int
		resp   string
	}
	results := make([]outcome, requests)
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		alg := "exchange"
		if i%3 == 0 {
			alg = "triangle"
		}
		body := fmt.Sprintf(`{"algorithm":%q,"n":16,"seed":%d,"quick":true}`, alg, i%4)
		wg.Add(1)
		go func(i int, body string) {
			defer wg.Done()
			rec := do(t, s, "POST", "/v1/run", body)
			results[i] = outcome{body: body, status: rec.Code, resp: rec.Body.String()}
		}(i, body)
	}

	// Watchdog: a hang under fault injection is a deadlock, the chaos
	// suite's primary target.
	doneCh := make(chan struct{})
	go func() { wg.Wait(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(60 * time.Second):
		t.Fatal("deadlock: requests did not complete within the watchdog")
	}

	byBody := map[string]string{}
	for _, r := range results {
		switch r.status {
		case http.StatusOK:
			if !json.Valid([]byte(r.resp)) {
				t.Fatalf("200 body is not valid JSON: %q", r.resp)
			}
			var env struct {
				Schema string `json:"schema"`
			}
			if err := json.Unmarshal([]byte(r.resp), &env); err != nil || env.Schema != "cliquebench/v1" {
				t.Fatalf("200 body is not a cliquebench/v1 envelope: %.120s", r.resp)
			}
			if prev, ok := byBody[r.body]; ok && prev != r.resp {
				t.Fatalf("duplicate request served two different envelopes for %s", r.body)
			}
			byBody[r.body] = r.resp
		case http.StatusInternalServerError, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			// Typed degradation: the error must be the service's JSON
			// error shape, not a raw panic trace or empty body.
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal([]byte(r.resp), &e); err != nil || e.Error == "" {
				t.Fatalf("status %d without the typed error shape: %q", r.status, r.resp)
			}
		default:
			t.Fatalf("status %d is outside the error taxonomy (body: %q)", r.status, r.resp)
		}
	}

	// The drain must complete under faults too.
	shCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(shCtx); err != nil {
		t.Fatalf("shutdown under faults: %v", err)
	}
	if err := l.Close(); err != nil && !errors.Is(err, ledger.ErrClosed) {
		t.Fatalf("ledger close: %v", err)
	}

	// Whatever the faults did, the file on disk verifies clean: failed
	// appends were rolled back, the committed prefix is chain-intact.
	rep, err := ledger.Verify(path)
	if err != nil {
		t.Fatalf("ledger failed verification after chaos: %v", err)
	}
	if !rep.OK {
		t.Fatalf("ledger verification not OK after clean shutdown: %+v", rep)
	}
}
