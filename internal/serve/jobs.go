package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/clique"
	"repro/internal/exp"
	"repro/internal/fault"
	"repro/internal/ledger"
)

// The serving error taxonomy. Each sentinel maps to one HTTP status so
// clients can tell load shedding (retry with backoff), a deadline
// (retry with a bigger budget or not at all) and a genuine run failure
// apart without parsing text: errQueueFull and errShuttingDown are
// 503, errJobTimeout is 504, anything else is 500.
var (
	errQueueFull    = errors.New("job queue full")
	errShuttingDown = errors.New("server shutting down")
	errJobTimeout   = errors.New("job deadline exceeded")
)

// schedule resolves a request against the two cache tiers: it either
// coalesces onto an existing in-memory entry (in-flight or completed —
// both count as cache hits: nothing new is simulated), serves the
// durable ledger's committed envelope from a previous process life, or
// creates the entry and enqueues its job. The caller then waits on the
// returned entry. timeout is the job's wall-clock budget (0 = none),
// fixed by whichever request created the entry.
func (s *Server) schedule(req exp.Request, timeout time.Duration) (*entry, error) {
	hash := req.Hash()
	e, created := s.cache.lookupOrCreate(hash, req)
	if !created {
		s.metrics.cacheHits.Add(1)
		return e, nil
	}
	e.timeout = timeout
	s.metrics.cacheMisses.Add(1)
	// Traced envelopes carry wall-clock span data, so only untraced
	// requests — the reproducible artefacts — are ledger-addressable.
	if s.cfg.Ledger != nil && !req.Trace {
		data, err := s.cfg.Ledger.Get(hash)
		switch {
		case err == nil:
			s.metrics.ledgerHits.Add(1)
			s.cache.markCompleted(e, false)
			e.complete(data, nil)
			return e, nil
		case !errors.Is(err, ledger.ErrNotFound):
			// A read failure degrades to recomputation, never to serving
			// unverified bytes.
			s.metrics.ledgerErrors.Add(1)
		}
	}
	if err := s.enqueue(e); err != nil {
		// The entry never ran; remove it so a retry can schedule anew,
		// and fail any concurrent waiters that already coalesced on it.
		s.cache.markCompleted(e, true)
		e.complete(nil, err)
		s.metrics.jobsRejected.Add(1)
		return nil, err
	}
	return e, nil
}

// enqueue adds a job to the bounded queue without ever blocking: a full
// queue is load shedding, not backpressure-by-hanging.
func (s *Server) enqueue(e *entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errShuttingDown
	}
	e.enqueuedAt = time.Now()
	select {
	case s.queue <- e:
		s.metrics.jobsQueued.Add(1)
		return nil
	default:
		s.metrics.jobsShed.Add(1)
		return errQueueFull
	}
}

// worker drains the queue until Shutdown closes it. With BatchWidth
// > 1 it opportunistically coalesces batchable jobs already waiting in
// the queue into one batched engine execution. Jobs drained while
// probing that do not match the leader's shape carry over as pending
// work and run next, so nothing is dropped or starved; coalescing never
// waits for work that is not already queued.
func (s *Server) worker() {
	defer s.workers.Done()
	var pending []*entry
	for {
		var e *entry
		if len(pending) > 0 {
			e, pending = pending[0], pending[1:]
		} else {
			var ok bool
			if e, ok = <-s.queue; !ok {
				return
			}
			s.metrics.jobsQueued.Add(-1)
		}
		group := []*entry{e}
		if s.cfg.BatchWidth > 1 && batchable(e.req) {
			group, pending = s.coalesce(e, pending)
		}
		for _, g := range group {
			s.metrics.queueWait.observe(jobLabel(g.req), time.Since(g.enqueuedAt).Nanoseconds())
		}
		s.metrics.jobsRunning.Add(int64(len(group)))
		if len(group) == 1 {
			s.runJob(e)
		} else {
			s.runJobBatch(group)
		}
		s.metrics.jobsRunning.Add(int64(-len(group)))
		s.metrics.jobsDone.Add(int64(len(group)))
	}
}

// batchable reports whether a request may join a batched execution at
// all: ad-hoc simulations, untraced (a trace collector is per-run state
// the batched engine path does not thread).
func batchable(req exp.Request) bool {
	return req.Kind == exp.KindAdhoc && !req.Trace
}

// sameBatchShape reports whether b can share a batched engine
// execution with leader a: both batchable and differing only by seed.
// The handler resolves the words-per-pair default before hashing, so
// equal budgets compare equal here.
func sameBatchShape(a, b exp.Request) bool {
	return batchable(b) &&
		a.Algorithm == b.Algorithm && a.N == b.N &&
		a.WordsPerPair == b.WordsPerPair &&
		a.Backend == b.Backend && a.Quick == b.Quick
}

// coalesce grows e's batch group up to BatchWidth, first from pending
// jobs a previous probe drained, then from whatever is sitting in the
// queue right now. Non-matching drained jobs are returned as the new
// pending list in arrival order.
func (s *Server) coalesce(e *entry, pending []*entry) (group, rest []*entry) {
	group = []*entry{e}
	rest = pending[:0]
	for _, p := range pending {
		if len(group) < s.cfg.BatchWidth && sameBatchShape(e.req, p.req) {
			group = append(group, p)
		} else {
			rest = append(rest, p)
		}
	}
	for len(group) < s.cfg.BatchWidth {
		select {
		case p, ok := <-s.queue:
			if !ok {
				return group, rest
			}
			s.metrics.jobsQueued.Add(-1)
			if sameBatchShape(e.req, p.req) {
				group = append(group, p)
			} else {
				rest = append(rest, p)
			}
		default:
			return group, rest
		}
	}
	return group, rest
}

// jobLabel is the histogram label of a request: the experiment id, or
// the ad-hoc result id ("adhoc:<algorithm>") — the same names the
// envelope carries, so dashboards join on one vocabulary.
func jobLabel(req exp.Request) string {
	if req.Kind == exp.KindAdhoc {
		return "adhoc:" + req.Algorithm
	}
	return req.Experiment
}

// runJob executes one entry's request and completes the entry exactly
// once, whatever happens inside — including a panic escaping the
// experiment body: a serving daemon turns that into a failed job, never
// a dead process. The result bytes are the cliquebench/v1 envelope
// exactly as cliquebench -format=json would print it for the same
// experiment, backend and quick setting — one result shape across the
// whole system.
func (s *Server) runJob(e *entry) {
	start := time.Now()
	data, err := s.executeJob(e)
	s.metrics.runWall.observe(jobLabel(e.req), time.Since(start).Nanoseconds())
	if err != nil {
		s.metrics.jobsFailed.Add(1)
	} else {
		s.persist(e.req, e.hash, data)
	}
	s.cache.markCompleted(e, err != nil)
	e.complete(data, err)
}

// executeJob is runJob's fallible body, with panics converted to
// errors so completion bookkeeping always runs exactly once, and the
// job's wall-clock budget (entry.timeout) enforced: a budget overrun
// surfaces as the typed errJobTimeout — provided the server itself is
// not shutting down, which keeps its own 503 classification.
func (s *Server) executeJob(e *entry) (data []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			data, err = nil, fmt.Errorf("job %s panicked: %v", e.req.Kind, r)
		}
	}()
	// Chaos-suite injection point: worker stalls and synthetic worker
	// panics land here, inside the panic containment and the deadline.
	ctx := s.baseCtx
	if e.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(s.baseCtx, e.timeout)
		defer cancel()
	}
	if ferr := fault.Hit("job.run"); ferr != nil {
		return nil, ferr
	}
	experiment, err := s.experimentFor(e.req)
	if err != nil {
		return nil, err
	}
	opts := exp.Options{Backend: e.req.Backend, Quick: e.req.Quick,
		Trace: e.req.Trace, Progress: e.publishProgress}
	res, tim, err := exp.RunExperiment(ctx, experiment, opts)
	if err != nil {
		return nil, s.classifyDeadline(ctx, e.timeout, err)
	}
	s.metrics.simRounds.Add(tim.Rounds)
	if tim.SimWall > 0 {
		s.metrics.rpsHist.observe(jobLabel(e.req),
			int64(float64(tim.Rounds)/tim.SimWall.Seconds()))
	}
	s.metrics.window.record(tim.Rounds, tim.SimWall.Nanoseconds())
	return marshalEnvelope(e.req.Backend, opts, res)
}

// classifyDeadline rewrites a run failure caused by the job's own
// deadline into the typed errJobTimeout. A cancellation caused by
// server shutdown (baseCtx) is left alone: that is unavailability, not
// a deadline.
func (s *Server) classifyDeadline(ctx context.Context, budget time.Duration, err error) error {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) && s.baseCtx.Err() == nil {
		return fmt.Errorf("%w (budget %v): %v", errJobTimeout, budget, err)
	}
	return err
}

// persist write-throughs a freshly computed envelope to the durable
// ledger tier before the entry completes, so a 200 response implies
// the result survives a crash. Traced envelopes are skipped (they
// embed wall-clock data and are not reproducible artefacts); an
// append failure degrades durability, never availability — the
// response is still served, and the failure is counted.
func (s *Server) persist(req exp.Request, hash string, data []byte) {
	if s.cfg.Ledger == nil || req.Trace || data == nil {
		return
	}
	if err := s.cfg.Ledger.Append(hash, data); err != nil {
		s.metrics.ledgerErrors.Add(1)
	}
}

// runJobBatch executes a coalesced group of same-shape ad-hoc jobs as
// one batched engine execution and completes every entry exactly once,
// with the same panic containment as runJob. Each job's envelope is
// byte-identical to what a serial runJob would have produced for it:
// batched per-run results are bit-identical to serial runs, and the
// envelope is built by the same exp/marshal path (pinned by tests).
func (s *Server) runJobBatch(group []*entry) {
	start := time.Now()
	data, errs := s.executeBatch(group)
	// The group shares one shape, so jobs are comparable in cost: split
	// the batch's wall evenly across them for the per-job histogram.
	wall := time.Since(start).Nanoseconds() / int64(len(group))
	s.metrics.batches.Add(1)
	s.metrics.jobsBatched.Add(int64(len(group)))
	for i, e := range group {
		s.metrics.runWall.observe(jobLabel(e.req), wall)
		if errs[i] != nil {
			s.metrics.jobsFailed.Add(1)
		} else {
			s.persist(e.req, e.hash, data[i])
		}
		s.cache.markCompleted(e, errs[i] != nil)
		e.complete(data[i], errs[i])
	}
}

// executeBatch is runJobBatch's fallible body: one clique.RunBatch over
// the group's programs, then one envelope per job. A panic fails every
// job that has not already been decided.
func (s *Server) executeBatch(group []*entry) (data [][]byte, errs []error) {
	data = make([][]byte, len(group))
	errs = make([]error, len(group))
	defer func() {
		if r := recover(); r != nil {
			err := fmt.Errorf("job %s panicked: %v", group[0].req.Kind, r)
			for i := range group {
				if data[i] == nil && errs[i] == nil {
					errs[i] = err
				}
			}
		}
	}()
	// The batch path shares the serial path's chaos injection point, so
	// the fault suite exercises batched workers too.
	if ferr := fault.Hit("job.run"); ferr != nil {
		for i := range errs {
			errs[i] = ferr
		}
		return data, errs
	}
	// The group shares one shape, so validation is decided once for all.
	alg, wpp, err := adhocParams(group[0].req)
	if err != nil {
		for i := range errs {
			errs[i] = err
		}
		return data, errs
	}
	backend := group[0].req.Backend
	if backend == "" {
		backend = clique.DefaultBackend
	}
	cfg := clique.Config{N: group[0].req.N, WordsPerPair: wpp, Backend: backend}
	progs := make([]clique.NodeFunc, len(group))
	for i, e := range group {
		progs[i] = alg.Make(e.req.N, e.req.Seed)
	}
	start := time.Now()
	results, runErrs := clique.RunBatch(cfg, progs)
	wall := time.Since(start)
	var totalRounds int64
	for i := range group {
		if runErrs[i] == nil {
			totalRounds += int64(results[i].Stats.Rounds)
		}
	}
	for i, e := range group {
		if runErrs[i] != nil {
			// The serial body Failf()s a run error under the experiment
			// id; reproduce that exact shape.
			errs[i] = fmt.Errorf("exp adhoc:%s: %v", alg.Name, runErrs[i])
			continue
		}
		runWall := time.Duration(0)
		if totalRounds > 0 {
			runWall = time.Duration(int64(wall) * int64(results[i].Stats.Rounds) / totalRounds)
		}
		opts := exp.Options{Backend: e.req.Backend, Quick: e.req.Quick, Progress: e.publishProgress}
		res, tim, err := exp.RunExperiment(s.baseCtx,
			adhocResultExperiment(e.req, alg, wpp, results[i], runWall), opts)
		if err != nil {
			errs[i] = err
			continue
		}
		s.metrics.simRounds.Add(tim.Rounds)
		if tim.SimWall > 0 {
			s.metrics.rpsHist.observe(jobLabel(e.req),
				int64(float64(tim.Rounds)/tim.SimWall.Seconds()))
		}
		s.metrics.window.record(tim.Rounds, tim.SimWall.Nanoseconds())
		data[i], errs[i] = marshalEnvelope(e.req.Backend, opts, res)
	}
	return data, errs
}

// experimentFor resolves a canonical request to a runnable Experiment.
func (s *Server) experimentFor(req exp.Request) (exp.Experiment, error) {
	switch req.Kind {
	case exp.KindExperiment:
		e, ok := exp.Get(req.Experiment)
		if !ok {
			return exp.Experiment{}, fmt.Errorf("unknown experiment %q", req.Experiment)
		}
		return e, nil
	case exp.KindAdhoc:
		return adhocExperiment(req)
	}
	return exp.Experiment{}, fmt.Errorf("unknown request kind %q", req.Kind)
}

// marshalEnvelope serialises one Result as a timing-free Report via
// Report.WriteJSON — the same code path cmd/cliquebench's JSON output
// uses, so byte equality with the CLI (a tested invariant) holds by
// construction.
func marshalEnvelope(backend string, opts exp.Options, res *exp.Result) ([]byte, error) {
	report := exp.NewReport(backend, opts, []*exp.Result{res}, exp.Timing{}, false)
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
