package serve

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"repro/internal/exp"
)

var (
	errQueueFull    = errors.New("job queue full")
	errShuttingDown = errors.New("server shutting down")
)

// schedule resolves a request against the cache: it either coalesces
// onto an existing entry (in-flight or completed — both count as cache
// hits: nothing new is simulated) or creates the entry and enqueues its
// job. The caller then waits on the returned entry.
func (s *Server) schedule(req exp.Request) (*entry, error) {
	hash := req.Hash()
	e, created := s.cache.lookupOrCreate(hash, req)
	if !created {
		s.metrics.cacheHits.Add(1)
		return e, nil
	}
	s.metrics.cacheMisses.Add(1)
	if err := s.enqueue(e); err != nil {
		// The entry never ran; remove it so a retry can schedule anew,
		// and fail any concurrent waiters that already coalesced on it.
		s.cache.markCompleted(e, true)
		e.complete(nil, err)
		s.metrics.jobsRejected.Add(1)
		return nil, err
	}
	return e, nil
}

// enqueue adds a job to the bounded queue without ever blocking: a full
// queue is load shedding, not backpressure-by-hanging.
func (s *Server) enqueue(e *entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errShuttingDown
	}
	e.enqueuedAt = time.Now()
	select {
	case s.queue <- e:
		s.metrics.jobsQueued.Add(1)
		return nil
	default:
		return errQueueFull
	}
}

// worker drains the queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.workers.Done()
	for e := range s.queue {
		s.metrics.jobsQueued.Add(-1)
		s.metrics.queueWait.observe(jobLabel(e.req), time.Since(e.enqueuedAt).Nanoseconds())
		s.metrics.jobsRunning.Add(1)
		s.runJob(e)
		s.metrics.jobsRunning.Add(-1)
		s.metrics.jobsDone.Add(1)
	}
}

// jobLabel is the histogram label of a request: the experiment id, or
// the ad-hoc result id ("adhoc:<algorithm>") — the same names the
// envelope carries, so dashboards join on one vocabulary.
func jobLabel(req exp.Request) string {
	if req.Kind == exp.KindAdhoc {
		return "adhoc:" + req.Algorithm
	}
	return req.Experiment
}

// runJob executes one entry's request and completes the entry exactly
// once, whatever happens inside — including a panic escaping the
// experiment body: a serving daemon turns that into a failed job, never
// a dead process. The result bytes are the cliquebench/v1 envelope
// exactly as cliquebench -format=json would print it for the same
// experiment, backend and quick setting — one result shape across the
// whole system.
func (s *Server) runJob(e *entry) {
	start := time.Now()
	data, err := s.executeJob(e)
	s.metrics.runWall.observe(jobLabel(e.req), time.Since(start).Nanoseconds())
	if err != nil {
		s.metrics.jobsFailed.Add(1)
	}
	s.cache.markCompleted(e, err != nil)
	e.complete(data, err)
}

// executeJob is runJob's fallible body, with panics converted to
// errors so completion bookkeeping always runs exactly once.
func (s *Server) executeJob(e *entry) (data []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			data, err = nil, fmt.Errorf("job %s panicked: %v", e.req.Kind, r)
		}
	}()
	experiment, err := s.experimentFor(e.req)
	if err != nil {
		return nil, err
	}
	opts := exp.Options{Backend: e.req.Backend, Quick: e.req.Quick,
		Trace: e.req.Trace, Progress: e.publishProgress}
	res, tim, err := exp.RunExperiment(s.baseCtx, experiment, opts)
	if err != nil {
		return nil, err
	}
	s.metrics.simRounds.Add(tim.Rounds)
	if tim.SimWall > 0 {
		s.metrics.rpsHist.observe(jobLabel(e.req),
			int64(float64(tim.Rounds)/tim.SimWall.Seconds()))
	}
	s.metrics.window.record(tim.Rounds, tim.SimWall.Nanoseconds())
	return marshalEnvelope(e.req.Backend, opts, res)
}

// experimentFor resolves a canonical request to a runnable Experiment.
func (s *Server) experimentFor(req exp.Request) (exp.Experiment, error) {
	switch req.Kind {
	case exp.KindExperiment:
		e, ok := exp.Get(req.Experiment)
		if !ok {
			return exp.Experiment{}, fmt.Errorf("unknown experiment %q", req.Experiment)
		}
		return e, nil
	case exp.KindAdhoc:
		return adhocExperiment(req)
	}
	return exp.Experiment{}, fmt.Errorf("unknown request kind %q", req.Kind)
}

// marshalEnvelope serialises one Result as a timing-free Report via
// Report.WriteJSON — the same code path cmd/cliquebench's JSON output
// uses, so byte equality with the CLI (a tested invariant) holds by
// construction.
func marshalEnvelope(backend string, opts exp.Options, res *exp.Result) ([]byte, error) {
	report := exp.NewReport(backend, opts, []*exp.Result{res}, exp.Timing{}, false)
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
