package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/exp"
	"repro/internal/workload"
)

// writeJSON writes v as a JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError writes the service's error shape.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleHealthz answers liveness probes. Beyond "am I up", the payload
// carries the binary's build block — the same attribution every result
// envelope embeds — so an operator can tell which build is serving
// without fishing a result out of the cache.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "build": exp.Build()})
}

func (s *Server) handleListExperiments(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"experiments": exp.Infos()})
}

func (s *Server) handleGetExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := exp.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown experiment %q", id)
		return
	}
	writeJSON(w, http.StatusOK, exp.Info{ID: e.ID, Artefact: e.Artefact, Title: e.Title})
}

func (s *Server) handleListAlgorithms(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"algorithms": Algorithms(), "max_n": maxAdhocN})
}

// runExperimentBody is the optional POST body of {id}:run. TimeoutMS
// asks for a wall-clock budget; the server caps it at its own
// JobTimeout, and a job exceeding the effective budget answers 504.
// The budget is execution policy, not work identity, so it is not part
// of the cache key: coalesced requests share the creating request's
// budget.
type runExperimentBody struct {
	Backend   string `json:"backend,omitempty"`
	Quick     bool   `json:"quick,omitempty"`
	Trace     bool   `json:"trace,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// handleRunExperiment serves POST /v1/experiments/{id}:run. The mux
// captures "fig1:run" as one path segment; the :run suffix is the only
// recognised operation.
func (s *Server) handleRunExperiment(w http.ResponseWriter, r *http.Request) {
	idop := r.PathValue("idop")
	id, op, ok := strings.Cut(idop, ":")
	if !ok || op != "run" {
		writeError(w, http.StatusNotFound, "unknown operation %q (try POST /v1/experiments/{id}:run)", idop)
		return
	}
	var body runExperimentBody
	if !decodeBody(w, r, &body) {
		return
	}
	req := exp.Request{Kind: exp.KindExperiment, Experiment: id,
		Backend: body.Backend, Quick: body.Quick, Trace: body.Trace}
	s.scheduleAndRespond(w, r, req, body.TimeoutMS)
}

// adhocRunBody is the POST /v1/run body. TimeoutMS follows the same
// budget rules as runExperimentBody's.
type adhocRunBody struct {
	Algorithm    string `json:"algorithm"`
	N            int    `json:"n"`
	WordsPerPair int    `json:"words_per_pair,omitempty"`
	Seed         uint64 `json:"seed,omitempty"`
	Backend      string `json:"backend,omitempty"`
	Quick        bool   `json:"quick,omitempty"`
	Trace        bool   `json:"trace,omitempty"`
	TimeoutMS    int64  `json:"timeout_ms,omitempty"`
}

func (s *Server) handleAdhocRun(w http.ResponseWriter, r *http.Request) {
	var body adhocRunBody
	if !decodeBody(w, r, &body) {
		return
	}
	alg, ok := workload.Get(body.Algorithm)
	if !ok {
		writeError(w, http.StatusBadRequest, "unknown algorithm %q (valid: %v)", body.Algorithm, AlgorithmNames())
		return
	}
	if body.N > maxAdhocN {
		writeError(w, http.StatusBadRequest, "n = %d exceeds the ad-hoc limit %d", body.N, maxAdhocN)
		return
	}
	// Resolve the catalogue's per-algorithm word budget before hashing,
	// so the omitted and explicit-default spellings share a cache slot.
	if body.WordsPerPair == 0 {
		body.WordsPerPair = alg.WPP
	}
	req := exp.Request{Kind: exp.KindAdhoc, Algorithm: body.Algorithm,
		N: body.N, WordsPerPair: body.WordsPerPair, Seed: body.Seed,
		Backend: body.Backend, Quick: body.Quick, Trace: body.Trace}
	s.scheduleAndRespond(w, r, req, body.TimeoutMS)
}

// decodeBody parses an optional JSON request body strictly. An empty
// body leaves v at its zero value. Returns false after answering 400.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return false
	}
	return true
}

// scheduleAndRespond canonicalises, schedules (dedup + queue) and then
// answers either as one JSON envelope or as an SSE stream. `?trace=1`
// is the query-string spelling of the body's trace field; traced
// requests hash to their own cache slot, since a traced envelope is a
// different (wall-clock-carrying) artefact.
func (s *Server) scheduleAndRespond(w http.ResponseWriter, r *http.Request, req exp.Request, timeoutMS int64) {
	if r.URL.Query().Get("trace") == "1" {
		req.Trace = true
	}
	if req.Backend == "" {
		req.Backend = s.cfg.DefaultBackend
	}
	req, err := req.Canonical()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if timeoutMS < 0 {
		writeError(w, http.StatusBadRequest, "timeout_ms = %d, need >= 0", timeoutMS)
		return
	}
	e, err := s.schedule(req, s.effectiveTimeout(timeoutMS))
	if err != nil {
		if errors.Is(err, errQueueFull) {
			// Shed responses tell the client when capacity should be
			// back, so retries pace themselves instead of hammering.
			w.Header().Set("Retry-After", fmt.Sprint(s.retryAfterSeconds()))
		}
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if wantsSSE(r) {
		s.respondSSE(w, r, e)
		return
	}
	select {
	case <-e.done:
		if e.err != nil {
			writeError(w, runErrorStatus(e.err), "%v", e.err)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Header().Set("X-Request-Hash", e.hash)
		_, _ = w.Write(e.data)
	case <-r.Context().Done():
		// Client went away. The job keeps running: its result is cached
		// for the retry, and other waiters may be coalesced on it.
	}
}

// runErrorStatus maps a job error to an HTTP status — the error
// taxonomy's wire form. Shed and shutdown are 503 (retry elsewhere or
// later), a blown job deadline is 504 (retry with a bigger budget, or
// don't), and everything else — including a contained worker panic —
// is a 500 run failure.
func runErrorStatus(err error) int {
	switch {
	case errors.Is(err, errJobTimeout) || errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, errShuttingDown) || errors.Is(err, errQueueFull) ||
		errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// effectiveTimeout resolves a request's timeout_ms against the
// server's JobTimeout cap: the request may shrink its budget, never
// grow past the cap; 0 asks for the server default.
func (s *Server) effectiveTimeout(timeoutMS int64) time.Duration {
	t := time.Duration(timeoutMS) * time.Millisecond
	if t <= 0 {
		return s.cfg.JobTimeout
	}
	if s.cfg.JobTimeout > 0 && t > s.cfg.JobTimeout {
		return s.cfg.JobTimeout
	}
	return t
}

// retryAfterSeconds estimates when shed load should retry: the queue
// is full, so the backlog is QueueDepth jobs spread over Workers
// workers, each taking about the windowed average job wall time. No
// history yet (a cold daemon being stampeded) falls back to 1s.
func (s *Server) retryAfterSeconds() int64 {
	avg := s.metrics.window.avgJobWallNS()
	if avg <= 0 {
		return 1
	}
	backlogNS := avg * int64(s.cfg.QueueDepth) / int64(s.cfg.Workers)
	secs := (backlogNS + int64(time.Second) - 1) / int64(time.Second)
	if secs < 1 {
		return 1
	}
	if secs > 60 {
		return 60
	}
	return secs
}

// handleLedgerStats serves the durable tier's integrity view: record
// and byte counts plus the chain head an auditor can compare across
// replicas or against an offline `cliqued -verify-ledger` scan.
func (s *Server) handleLedgerStats(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.Ledger == nil {
		writeError(w, http.StatusNotFound, "no ledger configured (start cliqued with -ledger)")
		return
	}
	writeJSON(w, http.StatusOK, s.cfg.Ledger.Stats())
}
