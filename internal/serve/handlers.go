package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/exp"
	"repro/internal/workload"
)

// writeJSON writes v as a JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError writes the service's error shape.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleHealthz answers liveness probes. Beyond "am I up", the payload
// carries the binary's build block — the same attribution every result
// envelope embeds — so an operator can tell which build is serving
// without fishing a result out of the cache.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "build": exp.Build()})
}

func (s *Server) handleListExperiments(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"experiments": exp.Infos()})
}

func (s *Server) handleGetExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := exp.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown experiment %q", id)
		return
	}
	writeJSON(w, http.StatusOK, exp.Info{ID: e.ID, Artefact: e.Artefact, Title: e.Title})
}

func (s *Server) handleListAlgorithms(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"algorithms": Algorithms(), "max_n": maxAdhocN})
}

// runExperimentBody is the optional POST body of {id}:run.
type runExperimentBody struct {
	Backend string `json:"backend,omitempty"`
	Quick   bool   `json:"quick,omitempty"`
	Trace   bool   `json:"trace,omitempty"`
}

// handleRunExperiment serves POST /v1/experiments/{id}:run. The mux
// captures "fig1:run" as one path segment; the :run suffix is the only
// recognised operation.
func (s *Server) handleRunExperiment(w http.ResponseWriter, r *http.Request) {
	idop := r.PathValue("idop")
	id, op, ok := strings.Cut(idop, ":")
	if !ok || op != "run" {
		writeError(w, http.StatusNotFound, "unknown operation %q (try POST /v1/experiments/{id}:run)", idop)
		return
	}
	var body runExperimentBody
	if !decodeBody(w, r, &body) {
		return
	}
	req := exp.Request{Kind: exp.KindExperiment, Experiment: id,
		Backend: body.Backend, Quick: body.Quick, Trace: body.Trace}
	s.scheduleAndRespond(w, r, req)
}

// adhocRunBody is the POST /v1/run body.
type adhocRunBody struct {
	Algorithm    string `json:"algorithm"`
	N            int    `json:"n"`
	WordsPerPair int    `json:"words_per_pair,omitempty"`
	Seed         uint64 `json:"seed,omitempty"`
	Backend      string `json:"backend,omitempty"`
	Quick        bool   `json:"quick,omitempty"`
	Trace        bool   `json:"trace,omitempty"`
}

func (s *Server) handleAdhocRun(w http.ResponseWriter, r *http.Request) {
	var body adhocRunBody
	if !decodeBody(w, r, &body) {
		return
	}
	alg, ok := workload.Get(body.Algorithm)
	if !ok {
		writeError(w, http.StatusBadRequest, "unknown algorithm %q (valid: %v)", body.Algorithm, AlgorithmNames())
		return
	}
	if body.N > maxAdhocN {
		writeError(w, http.StatusBadRequest, "n = %d exceeds the ad-hoc limit %d", body.N, maxAdhocN)
		return
	}
	// Resolve the catalogue's per-algorithm word budget before hashing,
	// so the omitted and explicit-default spellings share a cache slot.
	if body.WordsPerPair == 0 {
		body.WordsPerPair = alg.WPP
	}
	req := exp.Request{Kind: exp.KindAdhoc, Algorithm: body.Algorithm,
		N: body.N, WordsPerPair: body.WordsPerPair, Seed: body.Seed,
		Backend: body.Backend, Quick: body.Quick, Trace: body.Trace}
	s.scheduleAndRespond(w, r, req)
}

// decodeBody parses an optional JSON request body strictly. An empty
// body leaves v at its zero value. Returns false after answering 400.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return false
	}
	return true
}

// scheduleAndRespond canonicalises, schedules (dedup + queue) and then
// answers either as one JSON envelope or as an SSE stream. `?trace=1`
// is the query-string spelling of the body's trace field; traced
// requests hash to their own cache slot, since a traced envelope is a
// different (wall-clock-carrying) artefact.
func (s *Server) scheduleAndRespond(w http.ResponseWriter, r *http.Request, req exp.Request) {
	if r.URL.Query().Get("trace") == "1" {
		req.Trace = true
	}
	if req.Backend == "" {
		req.Backend = s.cfg.DefaultBackend
	}
	req, err := req.Canonical()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	e, err := s.schedule(req)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if wantsSSE(r) {
		s.respondSSE(w, r, e)
		return
	}
	select {
	case <-e.done:
		if e.err != nil {
			writeError(w, runErrorStatus(e.err), "%v", e.err)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Header().Set("X-Request-Hash", e.hash)
		_, _ = w.Write(e.data)
	case <-r.Context().Done():
		// Client went away. The job keeps running: its result is cached
		// for the retry, and other waiters may be coalesced on it.
	}
}

// runErrorStatus maps a job error to an HTTP status: shutdown and
// cancellation are unavailability, anything else is a server-side run
// failure.
func runErrorStatus(err error) int {
	if errors.Is(err, errShuttingDown) || errors.Is(err, errQueueFull) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}
