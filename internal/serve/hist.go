package serve

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
)

// histogram is a log₂-bucketed distribution counter. Bucket i counts
// observations v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i);
// the rendered key is the bucket's exclusive upper bound. Power-of-two
// buckets cover nanosecond latencies from microseconds to minutes in
// ~40 buckets with constant relative resolution, which is what a
// latency distribution needs — a mean hides the tail, a linear
// histogram can't span the range.
type histogram struct {
	mu      sync.Mutex
	count   int64
	sum     int64
	buckets [65]int64
}

func (h *histogram) observe(v int64) {
	if v < 0 {
		v = 0
	}
	i := bits.Len64(uint64(v))
	h.mu.Lock()
	h.count++
	h.sum += v
	h.buckets[i]++
	h.mu.Unlock()
}

// String renders the histogram as JSON (histogram implements
// expvar.Var). Only occupied buckets are emitted, in ascending order,
// keyed by their exclusive upper bound, so the output stays compact no
// matter how wide the type's range is.
func (h *histogram) String() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, `{"count":%d,"sum":%d,"buckets":{`, h.count, h.sum)
	first := true
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		if i >= 64 {
			// Values with the top bit set land here; there is no
			// representable exclusive bound.
			fmt.Fprintf(&b, `"+inf":%d`, n)
			continue
		}
		fmt.Fprintf(&b, `"%d":%d`, uint64(1)<<i, n)
	}
	b.WriteString("}}")
	return b.String()
}

// histVec is a labelled family of histograms — one per experiment (or
// "adhoc:<algorithm>") — rendered as one JSON object keyed by label.
// Labels are created on first observation; the family is never pruned,
// which is safe because the label set is bounded by the registry plus
// the algorithm catalogue.
type histVec struct {
	mu sync.Mutex
	m  map[string]*histogram
}

func (v *histVec) observe(label string, x int64) {
	v.mu.Lock()
	h, ok := v.m[label]
	if !ok {
		if v.m == nil {
			v.m = map[string]*histogram{}
		}
		h = &histogram{}
		v.m[label] = h
	}
	v.mu.Unlock()
	h.observe(x)
}

// String renders the family as JSON with labels in sorted order
// (histVec implements expvar.Var).
func (v *histVec) String() string {
	v.mu.Lock()
	labels := make([]string, 0, len(v.m))
	hists := make([]*histogram, 0, len(v.m))
	for l := range v.m {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		hists = append(hists, v.m[l])
	}
	v.mu.Unlock()
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%q:%s", l, hists[i].String())
	}
	b.WriteByte('}')
	return b.String()
}

// throughputWindowSize is how many recent jobs the rounds_per_sec
// gauge averages over.
const throughputWindowSize = 32

// throughputWindow computes rounds/sec over the most recent jobs. The
// previous implementation divided lifetime rounds by lifetime wall, so
// after a day of serving the gauge was frozen history: a sudden
// slowdown moved it by a rounding error. A fixed ring of the last
// throughputWindowSize (rounds, wall) pairs makes the gauge track the
// present.
type throughputWindow struct {
	mu     sync.Mutex
	rounds [throughputWindowSize]int64
	wallNS [throughputWindowSize]int64
	next   int
	filled int
}

func (w *throughputWindow) record(rounds, wallNS int64) {
	w.mu.Lock()
	w.rounds[w.next] = rounds
	w.wallNS[w.next] = wallNS
	w.next = (w.next + 1) % throughputWindowSize
	if w.filled < throughputWindowSize {
		w.filled++
	}
	w.mu.Unlock()
}

// avgJobWallNS returns the mean wall-clock of the windowed jobs in
// nanoseconds, 0 before any job has been timed. It is the Retry-After
// estimator's input: the same recent-jobs window that backs the
// rounds/sec gauge, read as seconds-per-job instead of rounds-per-
// second.
func (w *throughputWindow) avgJobWallNS() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.filled == 0 {
		return 0
	}
	var wall int64
	for i := 0; i < w.filled; i++ {
		wall += w.wallNS[i]
	}
	return wall / int64(w.filled)
}

// rate returns the windowed throughput: total rounds over total wall
// across the recorded jobs, 0 before any job has been timed.
func (w *throughputWindow) rate() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	var rounds, wall int64
	for i := 0; i < w.filled; i++ {
		rounds += w.rounds[i]
		wall += w.wallNS[i]
	}
	if wall <= 0 {
		return 0.0
	}
	return float64(rounds) / (float64(wall) / 1e9)
}
