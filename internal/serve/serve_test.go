package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/exp"
)

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	t.Cleanup(func() {
		if err := s.Shutdown(context.Background()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s
}

// do performs one request against the server's handler.
func do(t *testing.T, s *Server, method, target, body string) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, target, nil)
	} else {
		req = httptest.NewRequest(method, target, strings.NewReader(body))
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// TestHandlers is the endpoint table test: status codes and shape
// checks for every route.
func TestHandlers(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, QueueDepth: 8})

	cases := []struct {
		name, method, target, body string
		wantStatus                 int
		wantInBody                 string
	}{
		{"healthz", "GET", "/healthz", "", 200, `"ok"`},
		{"healthz carries build block", "GET", "/healthz", "", 200, `"go_version"`},
		{"metrics", "GET", "/metrics", "", 200, `"jobs_done"`},
		{"metrics has cache rate", "GET", "/metrics", "", 200, `"cache_hit_rate"`},
		{"metrics has rounds per sec", "GET", "/metrics", "", 200, `"rounds_per_sec"`},
		{"metrics has latency histograms", "GET", "/metrics", "", 200, `"queue_wait_ns"`},
		{"metrics has per-shape pool split", "GET", "/metrics", "", 200, `"arena_pool_by_shape"`},
		{"metrics has per-class scratch split", "GET", "/metrics", "", 200, `"scratch_pool_by_class"`},
		{"metrics has batch counters", "GET", "/metrics", "", 200, `"jobs_batched"`},
		{"traced run carries trace block", "POST", "/v1/experiments/fig1:run?trace=1", `{"quick":true}`, 200, `"cliquetrace/v1"`},
		{"list experiments", "GET", "/v1/experiments", "", 200, `"fig1"`},
		{"get experiment", "GET", "/v1/experiments/thm2", "", 200, `E3 / Theorem 2`},
		{"get unknown experiment", "GET", "/v1/experiments/nope", "", 404, "unknown experiment"},
		{"list algorithms", "GET", "/v1/algorithms", "", 200, `"triangle"`},
		{"run bad op", "POST", "/v1/experiments/thm2:dance", "", 404, "unknown operation"},
		{"run no op", "POST", "/v1/experiments/thm2", "", 404, "unknown operation"},
		{"run unknown experiment", "POST", "/v1/experiments/nope:run", "", 400, "unknown experiment"},
		{"run counting experiment", "POST", "/v1/experiments/thm2:run", `{"quick":true}`, 200, `"cliquebench/v1"`},
		{"run bad body", "POST", "/v1/experiments/thm2:run", `{"bogus":1}`, 400, "invalid request body"},
		{"run bad backend", "POST", "/v1/experiments/thm2:run", `{"backend":"warp"}`, 400, "unknown backend"},
		{"adhoc run", "POST", "/v1/run", `{"algorithm":"exchange","n":8,"seed":3,"quick":true}`, 200, `"adhoc:exchange"`},
		{"adhoc unknown algorithm", "POST", "/v1/run", `{"algorithm":"nope","n":8}`, 400, "unknown algorithm"},
		{"adhoc zero n", "POST", "/v1/run", `{"algorithm":"exchange"}`, 400, "ad-hoc request n = 0"},
		{"adhoc oversized n", "POST", "/v1/run", `{"algorithm":"exchange","n":1000000}`, 400, "exceeds the ad-hoc limit"},
		{"adhoc overflow wpp", "POST", "/v1/run", `{"algorithm":"exchange","n":2,"words_per_pair":2305843009213693952}`, 400, "exceeds the maximum"},
		{"method mismatch", "GET", "/v1/run", "", 405, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := do(t, s, tc.method, tc.target, tc.body)
			if rec.Code != tc.wantStatus {
				t.Fatalf("%s %s: status %d, want %d (body: %s)",
					tc.method, tc.target, rec.Code, tc.wantStatus, rec.Body.String())
			}
			if tc.wantInBody != "" && !strings.Contains(rec.Body.String(), tc.wantInBody) {
				t.Fatalf("%s %s: body %q does not contain %q",
					tc.method, tc.target, rec.Body.String(), tc.wantInBody)
			}
		})
	}
}

// TestEnvelopeMatchesCliquebench pins the tentpole invariant: the
// service's response for an experiment run is byte-identical to what
// cmd/cliquebench -format=json prints for the same experiment, backend
// and quick setting.
func TestEnvelopeMatchesCliquebench(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	rec := do(t, s, "POST", "/v1/experiments/fig1:run", `{"backend":"lockstep","quick":true}`)
	if rec.Code != 200 {
		t.Fatalf("run: status %d: %s", rec.Code, rec.Body.String())
	}

	// Reproduce the CLI's exact serialisation path.
	opts := exp.Options{Backend: "lockstep", Quick: true}
	results, _, err := exp.Run([]string{"fig1"}, opts)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	want, err := marshalEnvelope("lockstep", opts, results[0])
	if err != nil {
		t.Fatalf("reference marshal: %v", err)
	}
	if got := rec.Body.String(); got != string(want) {
		t.Fatalf("served envelope differs from the cliquebench envelope:\n--- served ---\n%s\n--- cli ---\n%s", got, want)
	}
}

// TestCacheHitDeterminism pins that a repeated identical request is
// served from cache, bit-identically, without simulating again.
func TestCacheHitDeterminism(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, QueueDepth: 8})

	body := `{"algorithm":"triangle","n":32,"seed":11,"backend":"lockstep"}`
	first := do(t, s, "POST", "/v1/run", body)
	if first.Code != 200 {
		t.Fatalf("first run: status %d: %s", first.Code, first.Body.String())
	}
	misses := s.metrics.cacheMisses.Value()
	hits := s.metrics.cacheHits.Value()

	second := do(t, s, "POST", "/v1/run", body)
	if second.Code != 200 {
		t.Fatalf("second run: status %d: %s", second.Code, second.Body.String())
	}
	if first.Body.String() != second.Body.String() {
		t.Fatal("cache hit returned different bytes than the original run")
	}
	if got := s.metrics.cacheMisses.Value(); got != misses {
		t.Fatalf("second identical request scheduled a fresh run: misses %d -> %d", misses, got)
	}
	if got := s.metrics.cacheHits.Value(); got != hits+1 {
		t.Fatalf("cache hits %d -> %d, want +1", hits, got)
	}

	// A request that spells a default explicitly — the backend, or the
	// algorithm's catalogue word budget (triangle: 8) — must hash to
	// the same cache slot as one that omits it.
	for _, spelling := range []string{
		`{"algorithm":"triangle","n":32,"seed":11}`,
		`{"algorithm":"triangle","n":32,"seed":11,"words_per_pair":8,"backend":"lockstep"}`,
	} {
		rec := do(t, s, "POST", "/v1/run", spelling)
		if rec.Code != 200 {
			t.Fatalf("spelling %s: status %d: %s", spelling, rec.Code, rec.Body.String())
		}
		if rec.Body.String() != first.Body.String() {
			t.Fatalf("spelling %s missed the cache", spelling)
		}
		if got := s.metrics.cacheMisses.Value(); got != misses {
			t.Fatalf("spelling %s scheduled a fresh run: misses %d -> %d", spelling, misses, got)
		}
	}
}

// TestSSEStream pins the SSE lifecycle: queued, at least one progress
// event for a simulating run, then the result event carrying the same
// envelope as the plain response.
func TestSSEStream(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	rec := do(t, s, "POST", "/v1/run?stream=sse",
		`{"algorithm":"exchange","n":16,"seed":5,"backend":"lockstep"}`)
	if rec.Code != 200 {
		t.Fatalf("sse run: status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q, want text/event-stream", ct)
	}
	out := rec.Body.String()
	for _, ev := range []string{"event: queued", "event: progress", "event: result"} {
		if !strings.Contains(out, ev) {
			t.Fatalf("stream missing %q:\n%s", ev, out)
		}
	}
	if strings.Contains(out, "event: error") {
		t.Fatalf("stream carried an error event:\n%s", out)
	}
	// Progress events carry the observability fields: cumulative rounds
	// plus the wall-clock view of the run.
	for _, field := range []string{`"rounds"`, `"wall_ns"`, `"rounds_per_sec"`} {
		if !strings.Contains(out, field) {
			t.Fatalf("progress events missing %s:\n%s", field, out)
		}
	}

	// The result event's payload reassembles to the plain envelope.
	plain := do(t, s, "POST", "/v1/run", `{"algorithm":"exchange","n":16,"seed":5,"backend":"lockstep"}`)
	var envelope strings.Builder
	inResult := false
	for _, line := range strings.Split(out, "\n") {
		switch {
		case line == "event: result":
			inResult = true
		case inResult && strings.HasPrefix(line, "data: "):
			envelope.WriteString(strings.TrimPrefix(line, "data: "))
			envelope.WriteString("\n")
		case inResult && line == "":
			inResult = false
		}
	}
	if envelope.String() != plain.Body.String() {
		t.Fatalf("SSE result differs from plain envelope:\n--- sse ---\n%s\n--- plain ---\n%s",
			envelope.String(), plain.Body.String())
	}
}

// TestMetricsProgress pins that serving work moves the counters the
// operator dashboards read.
func TestMetricsProgress(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	if rec := do(t, s, "POST", "/v1/run", `{"algorithm":"exchange","n":8,"seed":1}`); rec.Code != 200 {
		t.Fatalf("run: status %d", rec.Code)
	}
	rec := do(t, s, "GET", "/metrics", "")
	var got map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("metrics is not JSON: %v", err)
	}
	for _, key := range []string{"jobs_done", "sim_rounds"} {
		v, ok := got[key].(float64)
		if !ok || v < 1 {
			t.Fatalf("metric %q = %v, want >= 1 (all: %s)", key, got[key], rec.Body.String())
		}
	}
	if _, ok := got["arena_pool"]; !ok {
		t.Fatalf("metrics missing arena_pool: %s", rec.Body.String())
	}
	// The served run must have landed in each latency histogram under
	// its envelope id, with a consistent count/bucket accounting.
	for _, key := range []string{"queue_wait_ns", "run_wall_ns", "rounds_per_sec_hist"} {
		vec, ok := got[key].(map[string]any)
		if !ok {
			t.Fatalf("metric %q = %v, want a labelled histogram family", key, got[key])
		}
		h, ok := vec["adhoc:exchange"].(map[string]any)
		if !ok {
			t.Fatalf("histogram %q has no adhoc:exchange label: %v", key, vec)
		}
		count, _ := h["count"].(float64)
		if count < 1 {
			t.Fatalf("histogram %q count = %v, want >= 1", key, h["count"])
		}
		var inBuckets float64
		for _, n := range h["buckets"].(map[string]any) {
			inBuckets += n.(float64)
		}
		if inBuckets != count {
			t.Fatalf("histogram %q: buckets sum to %v, count is %v", key, inBuckets, count)
		}
	}
	// The throughput gauge is windowed over recent jobs; after one
	// timed run it must be live (nonzero), not diluted history.
	if rps, ok := got["rounds_per_sec"].(float64); !ok || rps <= 0 {
		t.Fatalf("rounds_per_sec = %v, want > 0 after a served run", got["rounds_per_sec"])
	}
}

// TestTraceRequestsOwnCacheSlot pins that ?trace=1 changes the cache
// key: a traced envelope (which embeds the cliquetrace/v1 block) never
// coalesces with the untraced artefact, and vice versa.
func TestTraceRequestsOwnCacheSlot(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	body := `{"algorithm":"exchange","n":8,"seed":7}`
	plain := do(t, s, "POST", "/v1/run", body)
	traced := do(t, s, "POST", "/v1/run?trace=1", body)
	if plain.Code != 200 || traced.Code != 200 {
		t.Fatalf("status %d / %d", plain.Code, traced.Code)
	}
	if misses := s.metrics.cacheMisses.Value(); misses != 2 {
		t.Fatalf("trace flag did not split the cache: misses = %d, want 2", misses)
	}
	if strings.Contains(plain.Body.String(), "cliquetrace/v1") {
		t.Fatal("untraced envelope carries a trace block")
	}
	if !strings.Contains(traced.Body.String(), "cliquetrace/v1") {
		t.Fatalf("traced envelope missing the trace block:\n%s", traced.Body.String())
	}
}

// TestEnvelopeParses pins the envelope schema from the client's side.
func TestEnvelopeParses(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	rec := do(t, s, "POST", "/v1/run", `{"algorithm":"mst","n":16,"seed":2}`)
	if rec.Code != 200 {
		t.Fatalf("run: status %d: %s", rec.Code, rec.Body.String())
	}
	var report exp.Report
	if err := json.Unmarshal(rec.Body.Bytes(), &report); err != nil {
		t.Fatalf("envelope does not parse as exp.Report: %v", err)
	}
	if report.Schema != exp.SchemaVersion {
		t.Fatalf("schema %q, want %q", report.Schema, exp.SchemaVersion)
	}
	if len(report.Experiments) != 1 || report.Experiments[0].Sim.Runs != 1 {
		t.Fatalf("unexpected envelope contents: %+v", report)
	}
	if report.Throughput != nil {
		t.Fatal("served envelope must not carry nondeterministic throughput")
	}
}

// TestDifferentRequestsDifferentResults guards against overzealous
// caching: distinct seeds are distinct cache slots.
func TestDifferentRequestsDifferentResults(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	a := do(t, s, "POST", "/v1/run", `{"algorithm":"mst","n":24,"seed":1}`)
	b := do(t, s, "POST", "/v1/run", `{"algorithm":"mst","n":24,"seed":2}`)
	if a.Code != 200 || b.Code != 200 {
		t.Fatalf("status %d / %d", a.Code, b.Code)
	}
	if a.Body.String() == b.Body.String() {
		t.Fatal("different seeds served identical envelopes — cache key ignores seed?")
	}
	if s.metrics.cacheMisses.Value() < 2 {
		t.Fatalf("expected two fresh runs, misses = %d", s.metrics.cacheMisses.Value())
	}
}
