package serve

import (
	"fmt"
	"sort"

	"repro/internal/clique"
	"repro/internal/comm"
	"repro/internal/domset"
	"repro/internal/exp"
	"repro/internal/gather"
	"repro/internal/graph"
	"repro/internal/matmul"
	"repro/internal/mst"
	"repro/internal/paths"
	"repro/internal/subgraph"
	"repro/internal/vcover"
)

// Algorithm is one entry of the ad-hoc catalogue served by POST /v1/run:
// a named node program plus deterministic instance generation. Unlike
// registry experiments, which fix their own instance sweep, an ad-hoc
// run is parameterised by the request's (n, seed, words_per_pair).
type Algorithm struct {
	// Name is the stable request key.
	Name string `json:"name"`
	// Title is the one-line human description.
	Title string `json:"title"`
	// WPP is the per-pair word budget used when the request leaves
	// words_per_pair at 0.
	WPP int `json:"words_per_pair"`
	// Make builds the instance for (n, seed) and returns the node
	// program. It must be deterministic in both.
	Make func(n int, seed uint64) clique.NodeFunc `json:"-"`
}

// algorithms is the ad-hoc catalogue, keyed by name. It deliberately
// mirrors the Figure 1 probe set of exp.Fig1Workloads plus the
// substrates the paper's algorithms build on, but with the seed exposed
// so clients can sweep instances.
var algorithms = map[string]Algorithm{
	"exchange": {
		Name: "exchange", Title: "one-round all-to-all broadcast exchange", WPP: 1,
		Make: func(n int, seed uint64) clique.NodeFunc {
			return func(nd *clique.Node) {
				comm.BroadcastWord(nd, uint64(nd.ID())^seed)
			}
		},
	},
	"triangle": {
		Name: "triangle", Title: "triangle detection (Dolev et al.)", WPP: 8,
		Make: func(n int, seed uint64) clique.NodeFunc {
			g := graph.Gnp(n, 0.2, seed)
			return func(nd *clique.Node) {
				subgraph.DetectTriangle(nd, g.Row(nd.ID()))
			}
		},
	},
	"k-is": {
		Name: "k-is", Title: "3-independent-set detection", WPP: 8,
		Make: func(n int, seed uint64) clique.NodeFunc {
			g := graph.Gnp(n, 0.6, seed)
			return func(nd *clique.Node) {
				subgraph.DetectIndependentSet(nd, g.Row(nd.ID()), 3)
			}
		},
	},
	"k-ds": {
		Name: "k-ds", Title: "3-dominating set (Theorem 9)", WPP: 8,
		Make: func(n int, seed uint64) clique.NodeFunc {
			g, _ := graph.PlantedDominatingSet(n, 3, 0.1, seed)
			return func(nd *clique.Node) {
				domset.Find(nd, g.Row(nd.ID()), 3)
			}
		},
	},
	"k-vc": {
		Name: "k-vc", Title: "3-vertex cover (Theorem 11)", WPP: 1,
		Make: func(n int, seed uint64) clique.NodeFunc {
			g, _ := graph.PlantedVertexCover(n, 3, 0.4, seed)
			return func(nd *clique.Node) {
				vcover.Find(nd, g.Row(nd.ID()), 3)
			}
		},
	},
	"maxis": {
		Name: "maxis", Title: "maximum independent set size (full gather)", WPP: 1,
		Make: func(n int, seed uint64) clique.NodeFunc {
			g := graph.Gnp(n, 0.92, seed)
			return func(nd *clique.Node) {
				gather.MaxIndependentSetSize(nd, g.Row(nd.ID()))
			}
		},
	},
	"boolmm-3d": {
		Name: "boolmm-3d", Title: "Boolean matrix multiplication (3D schedule)", WPP: 8,
		Make: func(n int, seed uint64) clique.NodeFunc {
			g := graph.Gnp(n, 0.5, seed)
			return func(nd *clique.Node) {
				row := matmul.AdjacencyRow(g, nd.ID())
				matmul.Mul3D(nd, matmul.Boolean{}, row, row)
			}
		},
	},
	"boolmm-naive": {
		Name: "boolmm-naive", Title: "Boolean matrix multiplication (naive broadcast)", WPP: 8,
		Make: func(n int, seed uint64) clique.NodeFunc {
			g := graph.Gnp(n, 0.5, seed)
			return func(nd *clique.Node) {
				row := matmul.AdjacencyRow(g, nd.ID())
				matmul.MulNaive(nd, matmul.Boolean{}, row, row)
			}
		},
	},
	"apsp": {
		Name: "apsp", Title: "APSP, weighted undirected ((min,+) squaring)", WPP: 8,
		Make: func(n int, seed uint64) clique.NodeFunc {
			g := graph.GnpWeighted(n, 0.3, 40, false, seed)
			return func(nd *clique.Node) {
				paths.APSP(nd, g.W[nd.ID()], matmul.Mul3D)
			}
		},
	},
	"mst": {
		Name: "mst", Title: "minimum spanning forest (Borůvka)", WPP: 1,
		Make: func(n int, seed uint64) clique.NodeFunc {
			g := graph.GnpWeighted(n, 0.3, 60, false, seed)
			return func(nd *clique.Node) {
				mst.Find(nd, g.W[nd.ID()])
			}
		},
	},
}

// Algorithms returns the ad-hoc catalogue sorted by name.
func Algorithms() []Algorithm {
	out := make([]Algorithm, 0, len(algorithms))
	for _, a := range algorithms {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AlgorithmNames returns the sorted ad-hoc algorithm names.
func AlgorithmNames() []string {
	names := make([]string, 0, len(algorithms))
	for name := range algorithms {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// maxAdhocN bounds ad-hoc instance sizes: an n-node run needs O(n^2)
// mailbox words per budgeted pair, so an unbounded n would let a single
// request exhaust the process. 1024 is ~4x the largest size any
// registered experiment simulates.
const maxAdhocN = 1024

// adhocExperiment wraps an ad-hoc request as an ephemeral Experiment so
// it runs through the same counted exp.Ctx as registry experiments and
// produces the same envelope shape.
func adhocExperiment(req exp.Request) (exp.Experiment, error) {
	alg, ok := algorithms[req.Algorithm]
	if !ok {
		return exp.Experiment{}, fmt.Errorf("unknown algorithm %q (valid: %v)", req.Algorithm, AlgorithmNames())
	}
	if req.N > maxAdhocN {
		return exp.Experiment{}, fmt.Errorf("n = %d exceeds the ad-hoc limit %d", req.N, maxAdhocN)
	}
	// The handler resolves the catalogue default before hashing; this
	// fallback only covers direct (non-HTTP) callers.
	wpp := req.WordsPerPair
	if wpp == 0 {
		wpp = alg.WPP
	}
	return exp.Experiment{
		ID:       "adhoc:" + alg.Name,
		Artefact: "ad-hoc",
		Title:    fmt.Sprintf("%s (n=%d, seed=%d)", alg.Title, req.N, req.Seed),
		Run: func(c *exp.Ctx) {
			t := c.Table("", "n", "wpp", "rounds", "words", "bits", "max pair words")
			res, err := c.Run(clique.Config{N: req.N, WordsPerPair: wpp}, alg.Make(req.N, req.Seed))
			if err != nil {
				c.Failf("%v", err)
			}
			t.Row(exp.Int(req.N), exp.Int(wpp), exp.Int(res.Stats.Rounds),
				exp.Int64(res.Stats.WordsSent), exp.Int64(res.Stats.BitsSent),
				exp.Int(res.Stats.MaxPairWords))
			c.Metric("rounds", float64(res.Stats.Rounds), "rounds")
			c.Metric("words", float64(res.Stats.WordsSent), "words")
		},
	}, nil
}
