package serve

import (
	"fmt"

	"repro/internal/clique"
	"repro/internal/exp"
	"repro/internal/workload"
)

// Algorithm is the ad-hoc catalogue entry served by POST /v1/run. The
// catalogue itself lives in internal/workload so the cliquegrid runner
// sweeps exactly the programs the daemon serves; serve only adds the
// HTTP plumbing and the ad-hoc size cap.
type Algorithm = workload.Algorithm

// Algorithms returns the ad-hoc catalogue sorted by name.
func Algorithms() []Algorithm { return workload.All() }

// AlgorithmNames returns the sorted ad-hoc algorithm names.
func AlgorithmNames() []string { return workload.Names() }

// maxAdhocN bounds ad-hoc instance sizes: an n-node run needs O(n^2)
// mailbox words per budgeted pair, so an unbounded n would let a single
// request exhaust the process. 1024 is ~4x the largest size any
// registered experiment simulates.
const maxAdhocN = 1024

// adhocExperiment wraps an ad-hoc request as an ephemeral Experiment so
// it runs through the same counted exp.Ctx as registry experiments and
// produces the same envelope shape.
func adhocExperiment(req exp.Request) (exp.Experiment, error) {
	alg, ok := workload.Get(req.Algorithm)
	if !ok {
		return exp.Experiment{}, fmt.Errorf("unknown algorithm %q (valid: %v)", req.Algorithm, AlgorithmNames())
	}
	if req.N > maxAdhocN {
		return exp.Experiment{}, fmt.Errorf("n = %d exceeds the ad-hoc limit %d", req.N, maxAdhocN)
	}
	// The handler resolves the catalogue default before hashing; this
	// fallback only covers direct (non-HTTP) callers.
	wpp := req.WordsPerPair
	if wpp == 0 {
		wpp = alg.WPP
	}
	return exp.Experiment{
		ID:       "adhoc:" + alg.Name,
		Artefact: "ad-hoc",
		Title:    fmt.Sprintf("%s (n=%d, seed=%d)", alg.Title, req.N, req.Seed),
		Run: func(c *exp.Ctx) {
			t := c.Table("", "n", "wpp", "rounds", "words", "bits", "max pair words")
			res, err := c.Run(clique.Config{N: req.N, WordsPerPair: wpp}, alg.Make(req.N, req.Seed))
			if err != nil {
				c.Failf("%v", err)
			}
			t.Row(exp.Int(req.N), exp.Int(wpp), exp.Int(res.Stats.Rounds),
				exp.Int64(res.Stats.WordsSent), exp.Int64(res.Stats.BitsSent),
				exp.Int(res.Stats.MaxPairWords))
			c.Metric("rounds", float64(res.Stats.Rounds), "rounds")
			c.Metric("words", float64(res.Stats.WordsSent), "words")
		},
	}, nil
}
