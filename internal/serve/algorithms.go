package serve

import (
	"fmt"
	"time"

	"repro/internal/clique"
	"repro/internal/exp"
	"repro/internal/workload"
)

// Algorithm is the ad-hoc catalogue entry served by POST /v1/run. The
// catalogue itself lives in internal/workload so the cliquegrid runner
// sweeps exactly the programs the daemon serves; serve only adds the
// HTTP plumbing and the ad-hoc size cap.
type Algorithm = workload.Algorithm

// Algorithms returns the ad-hoc catalogue sorted by name.
func Algorithms() []Algorithm { return workload.All() }

// AlgorithmNames returns the sorted ad-hoc algorithm names.
func AlgorithmNames() []string { return workload.Names() }

// maxAdhocN bounds ad-hoc instance sizes: an n-node run needs O(n^2)
// mailbox words per budgeted pair, so an unbounded n would let a single
// request exhaust the process. 1024 is ~4x the largest size any
// registered experiment simulates.
const maxAdhocN = 1024

// adhocParams validates an ad-hoc request against the catalogue and
// resolves its effective word budget. The handler resolves the
// catalogue default before hashing; the fallback here only covers
// direct (non-HTTP) callers.
func adhocParams(req exp.Request) (Algorithm, int, error) {
	alg, ok := workload.Get(req.Algorithm)
	if !ok {
		return Algorithm{}, 0, fmt.Errorf("unknown algorithm %q (valid: %v)", req.Algorithm, AlgorithmNames())
	}
	if req.N > maxAdhocN {
		return Algorithm{}, 0, fmt.Errorf("n = %d exceeds the ad-hoc limit %d", req.N, maxAdhocN)
	}
	wpp := req.WordsPerPair
	if wpp == 0 {
		wpp = alg.WPP
	}
	return alg, wpp, nil
}

// adhocExperiment wraps an ad-hoc request as an ephemeral Experiment so
// it runs through the same counted exp.Ctx as registry experiments and
// produces the same envelope shape.
func adhocExperiment(req exp.Request) (exp.Experiment, error) {
	alg, wpp, err := adhocParams(req)
	if err != nil {
		return exp.Experiment{}, err
	}
	return exp.Experiment{
		ID:       "adhoc:" + alg.Name,
		Artefact: "ad-hoc",
		Title:    fmt.Sprintf("%s (n=%d, seed=%d)", alg.Title, req.N, req.Seed),
		Run: func(c *exp.Ctx) {
			t := c.Table("", "n", "wpp", "rounds", "words", "bits", "max pair words")
			res, err := c.Run(clique.Config{N: req.N, WordsPerPair: wpp}, alg.Make(req.N, req.Seed))
			if err != nil {
				c.Failf("%v", err)
			}
			adhocRow(c, t, req.N, wpp, res)
		},
	}, nil
}

// adhocResultExperiment is adhocExperiment for a run that already
// executed inside a batched engine execution: the body folds the
// precomputed result's cost into the counted Ctx (exp.Ctx.Record) and
// emits exactly the table and metrics the serial body would, so the
// marshalled envelope is byte-identical to the serial path's. wall is
// the run's attributed share of the batch's wall clock, feeding the
// same progress/throughput plumbing a serial run would.
func adhocResultExperiment(req exp.Request, alg Algorithm, wpp int, res *clique.Result, wall time.Duration) exp.Experiment {
	return exp.Experiment{
		ID:       "adhoc:" + alg.Name,
		Artefact: "ad-hoc",
		Title:    fmt.Sprintf("%s (n=%d, seed=%d)", alg.Title, req.N, req.Seed),
		Run: func(c *exp.Ctx) {
			t := c.Table("", "n", "wpp", "rounds", "words", "bits", "max pair words")
			c.Record(res, wall)
			adhocRow(c, t, req.N, wpp, res)
		},
	}
}

// adhocRow emits the one-row table and scalar metrics shared by the
// serial and batched ad-hoc bodies — one definition, so the two
// envelopes cannot drift apart.
func adhocRow(c *exp.Ctx, t *exp.TableBuilder, n, wpp int, res *clique.Result) {
	t.Row(exp.Int(n), exp.Int(wpp), exp.Int(res.Stats.Rounds),
		exp.Int64(res.Stats.WordsSent), exp.Int64(res.Stats.BitsSent),
		exp.Int(res.Stats.MaxPairWords))
	c.Metric("rounds", float64(res.Stats.Rounds), "rounds")
	c.Metric("words", float64(res.Stats.WordsSent), "words")
}
