package serve

import (
	"sync"
	"time"

	"repro/internal/exp"
)

// entry is one unit of work identified by its canonical request hash.
// It is created when the first request for that hash arrives and is the
// coalescing point for every later identical request: waiters block on
// done, progress subscribers receive Progress snapshots while the job
// runs, and the final envelope bytes are immutable once done closes.
type entry struct {
	hash string
	req  exp.Request

	// enqueuedAt is stamped when the entry enters the job queue; the
	// worker's dequeue observes the difference into the queue-wait
	// histogram. Zero for entries that were never enqueued.
	enqueuedAt time.Time

	// timeout is the job's wall-clock budget, fixed by the request that
	// created the entry (later coalescers share its fate — the work is
	// shared, so the budget is too). Zero means no deadline.
	timeout time.Duration

	done chan struct{} // closed exactly once, after data/err are set
	data []byte        // the cliquebench/v1 envelope, verbatim
	err  error

	mu   sync.Mutex
	subs []chan exp.Progress
	last exp.Progress
}

func newEntry(hash string, req exp.Request) *entry {
	return &entry{hash: hash, req: req, done: make(chan struct{})}
}

// subscribe registers a progress listener. The channel has capacity 1
// and is written latest-wins, so a slow SSE client sees a fresh
// snapshot when it catches up instead of a backlog. The returned cancel
// is idempotent and safe after completion.
func (e *entry) subscribe() (<-chan exp.Progress, func()) {
	ch := make(chan exp.Progress, 1)
	e.mu.Lock()
	if e.last.Runs > 0 {
		ch <- e.last // late subscriber: start from the current state
	}
	e.subs = append(e.subs, ch)
	e.mu.Unlock()
	cancel := func() {
		e.mu.Lock()
		defer e.mu.Unlock()
		for i, s := range e.subs {
			if s == ch {
				e.subs = append(e.subs[:i], e.subs[i+1:]...)
				break
			}
		}
	}
	return ch, cancel
}

// publishProgress fans a Progress snapshot out to subscribers,
// latest-wins and never blocking the worker.
func (e *entry) publishProgress(p exp.Progress) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.last = p
	for _, ch := range e.subs {
		select {
		case ch <- p:
		default:
			select { // replace the stale snapshot
			case <-ch:
			default:
			}
			select {
			case ch <- p:
			default:
			}
		}
	}
}

// complete publishes the job's outcome and wakes every waiter.
func (e *entry) complete(data []byte, err error) {
	e.mu.Lock()
	e.subs = nil
	e.mu.Unlock()
	e.data, e.err = data, err
	close(e.done)
}

// resultCache is the deduplicating result store: canonical request hash
// -> entry. In-flight entries are the request-coalescing point and are
// never evicted; completed entries are retained FIFO up to max.
type resultCache struct {
	mu      sync.Mutex
	entries map[string]*entry
	fifo    []string // completed hashes in completion order
	max     int
}

func newResultCache(max int) *resultCache {
	if max < 1 {
		max = 1
	}
	return &resultCache{entries: map[string]*entry{}, max: max}
}

// lookupOrCreate returns the entry for hash, creating it when absent.
// created reports whether this caller is responsible for scheduling the
// job (exactly one caller per hash is).
func (c *resultCache) lookupOrCreate(hash string, req exp.Request) (e *entry, created bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[hash]; ok {
		return e, false
	}
	e = newEntry(hash, req)
	c.entries[hash] = e
	return e, true
}

// markCompleted enters a finished entry into the eviction order (or
// drops it immediately on failure, so transient errors — cancellation,
// shutdown — never poison the cache) and evicts the oldest completed
// entries beyond capacity.
func (c *resultCache) markCompleted(e *entry, failed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if failed {
		delete(c.entries, e.hash)
		return
	}
	c.fifo = append(c.fifo, e.hash)
	for len(c.fifo) > c.max {
		victim := c.fifo[0]
		c.fifo = c.fifo[1:]
		delete(c.entries, victim)
	}
}

// len reports the number of resident entries (in-flight + completed).
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
