package serve

import (
	"expvar"
	"fmt"
	"net/http"

	"repro/internal/engine"
)

// metrics are the service counters served at /metrics. They use expvar
// types but live in an unregistered expvar.Map owned by the Server, so
// tests can build many Servers in one process without tripping expvar's
// global duplicate-name panic. cmd/cliqued additionally publishes the
// map into the process-global expvar namespace.
type metrics struct {
	jobsQueued   expvar.Int // currently waiting in the queue
	jobsRunning  expvar.Int // currently executing on a worker
	jobsDone     expvar.Int // completed, success or failure
	jobsFailed   expvar.Int // completed with an error
	jobsRejected expvar.Int // refused: queue full or shutting down
	jobsShed     expvar.Int // refused by load shedding alone (queue full)
	cacheHits    expvar.Int // answered from cache or coalesced
	cacheMisses  expvar.Int // scheduled a fresh run
	ledgerHits   expvar.Int // answered from the durable ledger tier
	ledgerErrors expvar.Int // ledger reads/appends that failed (degraded durability)
	simRounds    expvar.Int // total simulated rounds served
	batches      expvar.Int // batched engine executions (BatchWidth > 1)
	jobsBatched  expvar.Int // jobs that ran inside a batched execution

	// The latency plane: log₂-bucketed distributions labelled by
	// experiment id (or "adhoc:<algorithm>"). queueWait is time spent in
	// the job queue before a worker picked the job up; runWall is the
	// job's whole execution wall time; rpsHist is the distribution of
	// per-job simulated throughput. window backs the rounds_per_sec
	// gauge with the recent jobs only.
	queueWait histVec
	runWall   histVec
	rpsHist   histVec
	window    throughputWindow

	vars *expvar.Map
}

func newMetrics() *metrics {
	m := &metrics{vars: new(expvar.Map).Init()}
	m.vars.Set("jobs_queued", &m.jobsQueued)
	m.vars.Set("jobs_running", &m.jobsRunning)
	m.vars.Set("jobs_done", &m.jobsDone)
	m.vars.Set("jobs_failed", &m.jobsFailed)
	m.vars.Set("jobs_rejected", &m.jobsRejected)
	m.vars.Set("jobs_shed", &m.jobsShed)
	m.vars.Set("cache_hits", &m.cacheHits)
	m.vars.Set("cache_misses", &m.cacheMisses)
	m.vars.Set("ledger_hits", &m.ledgerHits)
	m.vars.Set("ledger_errors", &m.ledgerErrors)
	m.vars.Set("sim_rounds", &m.simRounds)
	m.vars.Set("batches", &m.batches)
	m.vars.Set("jobs_batched", &m.jobsBatched)
	m.vars.Set("queue_wait_ns", &m.queueWait)
	m.vars.Set("run_wall_ns", &m.runWall)
	m.vars.Set("rounds_per_sec_hist", &m.rpsHist)
	m.vars.Set("cache_hit_rate", expvar.Func(func() any {
		hits, misses := m.cacheHits.Value(), m.cacheMisses.Value()
		if hits+misses == 0 {
			return 0.0
		}
		return float64(hits) / float64(hits+misses)
	}))
	m.vars.Set("rounds_per_sec", expvar.Func(func() any {
		return m.window.rate()
	}))
	m.vars.Set("arena_pool", expvar.Func(func() any {
		hits, misses := engine.PoolStats()
		return map[string]int64{"hits": hits, "misses": misses}
	}))
	m.vars.Set("scratch_pool", expvar.Func(func() any {
		hits, misses := engine.ScratchStats()
		return map[string]int64{"hits": hits, "misses": misses}
	}))
	// Per-size-class splits behind the aggregates: keys are the mailbox
	// shape ("n=64,wpp=1,arena") and the scratch class capacity in words
	// ("4096w", "oversize"). A persistently missing key pinpoints the
	// workload shape defeating the pools.
	m.vars.Set("arena_pool_by_shape", expvar.Func(func() any {
		out := map[string]map[string]int64{}
		for _, s := range engine.PoolShapeStats() {
			layout := "slices"
			if s.Arena {
				layout = "arena"
			}
			key := fmt.Sprintf("n=%d,wpp=%d,%s", s.N, s.WordsPerPair, layout)
			out[key] = map[string]int64{"hits": s.Hits, "misses": s.Misses}
		}
		return out
	}))
	m.vars.Set("scratch_pool_by_class", expvar.Func(func() any {
		out := map[string]map[string]int64{}
		for _, s := range engine.ScratchClassStats() {
			key := "oversize"
			if s.Words > 0 {
				key = fmt.Sprintf("%dw", s.Words)
			}
			out[key] = map[string]int64{"hits": s.Hits, "misses": s.Misses}
		}
		return out
	}))
	m.vars.Set("batched_ops", expvar.Func(func() any {
		sendBuf, broadcastBuf, recvInto := engine.BatchedStats()
		return map[string]int64{
			"send_buf":      sendBuf,
			"broadcast_buf": broadcastBuf,
			"recv_into":     recvInto,
		}
	}))
	return m
}

// Vars exposes the server's metrics map, e.g. for publishing under a
// name in the process-global expvar namespace.
func (s *Server) Vars() *expvar.Map { return s.metrics.vars }

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintln(w, s.metrics.vars.String())
}
