package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// wantsSSE reports whether the client asked for a progress stream
// instead of a single JSON response.
func wantsSSE(r *http.Request) bool {
	if r.URL.Query().Get("stream") == "sse" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// writeSSEEvent emits one event. Multi-line payloads (the indented
// envelope) become one data: line each, per the SSE framing rules.
func writeSSEEvent(w http.ResponseWriter, f http.Flusher, event string, data []byte) {
	fmt.Fprintf(w, "event: %s\n", event)
	for _, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		fmt.Fprintf(w, "data: %s\n", line)
	}
	fmt.Fprint(w, "\n")
	f.Flush()
}

// respondSSE streams a job's lifecycle: a queued event with the request
// hash, progress events with a Progress snapshot after each simulated
// run — cumulative runs/rounds/words plus wall-clock and the
// just-finished run's rounds/sec (latest-wins — a slow client skips
// intermediate snapshots, it never lags behind), and finally either the
// result event carrying the verbatim cliquebench/v1 envelope or an
// error event.
func (s *Server) respondSSE(w http.ResponseWriter, r *http.Request, e *entry) {
	f, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "response writer does not support streaming")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	progress, cancel := e.subscribe()
	defer cancel()

	queued, _ := json.Marshal(map[string]string{"hash": e.hash})
	writeSSEEvent(w, f, "queued", queued)

	for {
		select {
		case sc := <-progress:
			data, _ := json.Marshal(sc)
			writeSSEEvent(w, f, "progress", data)
		case <-e.done:
			// Deliver the final snapshot before the terminal event so
			// clients always see the run's last progress state.
			select {
			case sc := <-progress:
				data, _ := json.Marshal(sc)
				writeSSEEvent(w, f, "progress", data)
			default:
			}
			if e.err != nil {
				data, _ := json.Marshal(map[string]string{"error": e.err.Error()})
				writeSSEEvent(w, f, "error", data)
				return
			}
			writeSSEEvent(w, f, "result", e.data)
			return
		case <-r.Context().Done():
			return
		}
	}
}
