package serve

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/clique"
	"repro/internal/workload"
)

// blockGate lets tests hold a worker hostage deterministically: the
// test-only "test-block" algorithm runs a single-node program that
// parks on the gate until released.
var blockGate = struct {
	mu sync.Mutex
	ch chan struct{}
}{}

func armBlockGate() (release func()) {
	blockGate.mu.Lock()
	ch := make(chan struct{})
	blockGate.ch = ch
	blockGate.mu.Unlock()
	var once sync.Once
	return func() { once.Do(func() { close(ch) }) }
}

func init() {
	workload.Register(Algorithm{
		Name: "test-block", Title: "test-only: parks until the gate opens", WPP: 1,
		Make: func(n int, seed uint64) clique.NodeFunc {
			return func(nd *clique.Node) {
				blockGate.mu.Lock()
				ch := blockGate.ch
				blockGate.mu.Unlock()
				if ch != nil {
					<-ch
				}
			}
		},
	})
	workload.Register(Algorithm{
		Name: "test-panic", Title: "test-only: panics during instance generation", WPP: 1,
		Make: func(n int, seed uint64) clique.NodeFunc {
			panic("test-panic: instance generation exploded")
		},
	})
}

// TestWorkerSurvivesPanickingJob pins that a panic escaping the
// experiment body fails the one job (500) without killing the worker:
// the daemon keeps serving afterwards.
func TestWorkerSurvivesPanickingJob(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	rec := do(t, s, "POST", "/v1/run", `{"algorithm":"test-panic","n":2,"seed":1}`)
	if rec.Code != 500 {
		t.Fatalf("panicking job: status %d, want 500 (body: %s)", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "panicked") {
		t.Fatalf("panicking job error body: %s", rec.Body.String())
	}
	if s.metrics.jobsFailed.Value() != 1 {
		t.Fatalf("jobs_failed = %d, want 1", s.metrics.jobsFailed.Value())
	}

	// The lone worker must still be alive and serving.
	if rec := do(t, s, "POST", "/v1/run", `{"algorithm":"exchange","n":8,"seed":1}`); rec.Code != 200 {
		t.Fatalf("post-panic run: status %d, want 200", rec.Code)
	}
}

// TestConcurrentIdenticalRequestsCoalesce is the queue/cache race test:
// many goroutines fire the same request at once; exactly one simulation
// runs and every caller gets the same bytes. Run under -race in CI.
func TestConcurrentIdenticalRequestsCoalesce(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, QueueDepth: 32})

	const callers = 16
	body := `{"algorithm":"triangle","n":48,"seed":9,"backend":"lockstep"}`
	responses := make([]string, callers)
	codes := make([]int, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := do(t, s, "POST", "/v1/run", body)
			codes[i], responses[i] = rec.Code, rec.Body.String()
		}(i)
	}
	wg.Wait()

	for i := 0; i < callers; i++ {
		if codes[i] != 200 {
			t.Fatalf("caller %d: status %d: %s", i, codes[i], responses[i])
		}
		if responses[i] != responses[0] {
			t.Fatalf("caller %d got different bytes than caller 0", i)
		}
	}
	if misses := s.metrics.cacheMisses.Value(); misses != 1 {
		t.Fatalf("%d identical concurrent requests caused %d simulations, want 1", callers, misses)
	}
	if hits := s.metrics.cacheHits.Value(); hits != callers-1 {
		t.Fatalf("cache hits = %d, want %d", hits, callers-1)
	}
}

// TestConcurrentMixedRequests races distinct and identical requests
// through a small worker pool.
func TestConcurrentMixedRequests(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4, QueueDepth: 64})

	const seeds = 6
	const repeats = 4
	var wg sync.WaitGroup
	results := make([][]string, seeds)
	for seed := 0; seed < seeds; seed++ {
		results[seed] = make([]string, repeats)
		for rep := 0; rep < repeats; rep++ {
			wg.Add(1)
			go func(seed, rep int) {
				defer wg.Done()
				body := fmt.Sprintf(`{"algorithm":"exchange","n":16,"seed":%d}`, seed)
				rec := do(t, s, "POST", "/v1/run", body)
				if rec.Code == 200 {
					results[seed][rep] = rec.Body.String()
				}
			}(seed, rep)
		}
	}
	wg.Wait()

	for seed := 0; seed < seeds; seed++ {
		for rep := 0; rep < repeats; rep++ {
			if results[seed][rep] == "" {
				t.Fatalf("seed %d repeat %d failed", seed, rep)
			}
			if results[seed][rep] != results[seed][0] {
				t.Fatalf("seed %d: repeat %d bytes differ", seed, rep)
			}
		}
	}
	if misses := s.metrics.cacheMisses.Value(); misses != seeds {
		t.Fatalf("misses = %d, want %d (one per distinct request)", misses, seeds)
	}
}

// TestQueueFullRejects pins load shedding: with the lone worker parked
// and the queue at capacity, the next distinct request is answered 503
// immediately, and a retry after the flood succeeds.
func TestQueueFullRejects(t *testing.T) {
	release := armBlockGate()
	defer release()

	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	// Park the worker.
	blockerDone := make(chan struct{})
	go func() {
		defer close(blockerDone)
		do(t, s, "POST", "/v1/run", `{"algorithm":"test-block","n":1,"seed":1}`)
	}()
	waitFor(t, func() bool { return s.metrics.jobsRunning.Value() == 1 })

	// Fill the queue (capacity 1) with a second distinct request.
	queuedDone := make(chan struct{})
	go func() {
		defer close(queuedDone)
		do(t, s, "POST", "/v1/run", `{"algorithm":"test-block","n":1,"seed":2}`)
	}()
	waitFor(t, func() bool { return s.metrics.jobsQueued.Value() == 1 })

	// The queue is full: a third distinct request must be shed.
	rec := do(t, s, "POST", "/v1/run", `{"algorithm":"test-block","n":1,"seed":3}`)
	if rec.Code != 503 {
		t.Fatalf("status %d, want 503 (body: %s)", rec.Code, rec.Body.String())
	}
	if s.metrics.jobsRejected.Value() != 1 {
		t.Fatalf("jobs_rejected = %d, want 1", s.metrics.jobsRejected.Value())
	}

	release()
	<-blockerDone
	<-queuedDone

	// The shed request was not poisoned: it runs fine now.
	if rec := do(t, s, "POST", "/v1/run", `{"algorithm":"test-block","n":1,"seed":3}`); rec.Code != 200 {
		t.Fatalf("retry after shed: status %d: %s", rec.Code, rec.Body.String())
	}
}

// TestShutdownRejectsNewWork pins graceful shutdown: after Shutdown,
// run requests are answered 503 and read-only endpoints still work.
func TestShutdownRejectsNewWork(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	if rec := do(t, s, "POST", "/v1/run", `{"algorithm":"exchange","n":8}`); rec.Code != 200 {
		t.Fatalf("pre-shutdown run: status %d", rec.Code)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if rec := do(t, s, "POST", "/v1/run", `{"algorithm":"exchange","n":8,"seed":99}`); rec.Code != 503 {
		t.Fatalf("post-shutdown run: status %d, want 503", rec.Code)
	}
	if rec := do(t, s, "GET", "/healthz", ""); rec.Code != 200 {
		t.Fatalf("post-shutdown healthz: status %d, want 200", rec.Code)
	}
	// Cached results are still served without workers.
	if rec := do(t, s, "POST", "/v1/run", `{"algorithm":"exchange","n":8}`); rec.Code != 200 {
		t.Fatalf("post-shutdown cached run: status %d, want 200", rec.Code)
	}
	// Idempotent.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within deadline")
		}
		time.Sleep(time.Millisecond)
	}
}
