package bitvec

import "math/bits"

// Cache-blocked kernels. The packed plane's two structural operations —
// transpose and full boolean product — used to walk the matrices bit by
// bit or row by row with no regard for the cache hierarchy. Both are
// reorganised here around two block sizes:
//
//   - tileBits (64x64 bits = 512 bytes, eight cache lines): the bit
//     transpose works tile-at-a-time with a constant-size register
//     kernel instead of per-bit Get/Set.
//   - mulBlockWords (32 KiB, an L1 data cache): the boolean product
//     streams b in row bands of at most this many words, so every band
//     is multiplied against all of a while it is L1-hot.

// tileBits is the edge of one transpose tile: 64 bits, one word.
const tileBits = WordBits

// mulBlockWords is the right-operand working set per multiply band, in
// words: 4096 words = 32 KiB, sized to a typical L1d cache.
const mulBlockWords = 4096

// transpose64 transposes a 64x64 bit tile in place: bit c of word r
// moves to bit r of word c. Rows are little-endian (bit i = column i),
// so the classic recursive block-swap runs with the shift directions
// mirrored: at each level the high half-columns of the low rows swap
// with the low half-columns of the high rows. 6 levels x 32 swaps,
// branch-free, no memory beyond the tile itself (Hacker's Delight
// 7-3, adapted to LSB-first bit order).
func transpose64(a *[64]uint64) {
	j := 32
	m := uint64(0x00000000FFFFFFFF)
	for j != 0 {
		for k := 0; k < 64; k = (k + j + 1) &^ j {
			t := (a[k]>>uint(j) ^ a[k|j]) & m
			a[k] ^= t << uint(j)
			a[k|j] ^= t
		}
		j >>= 1
		m ^= m << uint(j)
	}
}

// transposeBlocked is the tiled Matrix transpose behind Transpose. It
// walks a in 64-row x 64-column tiles: each tile loads 64 words (one
// strided column of a's row-major storage), transposes in registers,
// and ORs the nonzero result words into dst. dst must be zeroed, which
// the OR store preserves as a contract; zero result words are skipped,
// so sparse matrices pay only for occupied tiles' stores.
func transposeBlocked(a, dst *Matrix) {
	var tile [64]uint64
	for r0 := 0; r0 < a.R; r0 += tileBits {
		rows := min(tileBits, a.R-r0)
		for tj := 0; tj < a.W; tj++ {
			src := a.data[r0*a.W+tj:]
			for r := 0; r < rows; r++ {
				tile[r] = src[r*a.W]
			}
			for r := rows; r < tileBits; r++ {
				tile[r] = 0
			}
			transpose64(&tile)
			c0 := tj * tileBits
			cols := min(tileBits, a.Bits-c0)
			ti := r0 / WordBits
			d := dst.data[c0*dst.W+ti:]
			for c := 0; c < cols; c++ {
				if w := tile[c]; w != 0 {
					d[c*dst.W] |= w
				}
			}
		}
	}
}

// mulBlocked is the k-blocked boolean product behind MulInto: c |= a x b
// over bands of b rows sized to mulBlockWords. Row index bands are
// 64-aligned so each band corresponds to whole words of every a row;
// the extra band scans over a's rows cost one full row sweep in total
// (each a word is visited by exactly one band). The OR-accumulation is
// order-independent, so the result is bit-identical to the unblocked
// kernel.
func mulBlocked(a, b, c *Matrix) {
	for i := 0; i < a.R; i++ {
		c.Row(i).Zero()
	}
	kb := mulBlockWords / b.W
	if kb < WordBits {
		kb = WordBits
	}
	kb &^= WordBits - 1
	for k0 := 0; k0 < b.R; k0 += kb {
		k1 := min(k0+kb, b.R)
		for i := 0; i < a.R; i++ {
			row := a.Row(i)
			dst := c.Row(i)
			loW := k0 / WordBits
			hiW := min((k1+WordBits-1)/WordBits, len(row))
			for w := loW; w < hiW; w++ {
				word := row[w]
				for word != 0 {
					k := w*WordBits + bits.TrailingZeros64(word)
					word &= word - 1
					if k >= k1 {
						break
					}
					dst.Or(b.Row(k))
				}
			}
		}
	}
}
