package bitvec

// Cross-run lane packing: a batch of up to 64 independent runs of the
// same boolean workload keeps one Row per run — the same bit width,
// different data. Packing them transposes that run-major bundle into a
// lane matrix with one word per bit position, run r in bit lane r, so
// a single word-parallel kernel call (Or, AndOnesCount, MulRowInto)
// advances all runs of the batch at once: 64 seeds per uint64.

// PackLanes transposes up to 64 same-width rows into a lane matrix:
// the result is a bits x len(rows) matrix whose row i carries bit i of
// every input, with rows[r] in bit lane r. len(rows) must be in
// [1, 64]. Input rows shorter than Words(bits) are treated as
// zero-extended.
func PackLanes(rows []Row, bitCount int) *Matrix {
	runs := len(rows)
	if runs < 1 || runs > WordBits {
		panic("bitvec: PackLanes needs 1..64 rows")
	}
	src := GetMatrix(runs, bitCount)
	for r, row := range rows {
		copy(src.Row(r), row)
	}
	out := NewMatrix(bitCount, runs)
	Transpose(src, out)
	PutMatrix(src)
	return out
}

// UnpackLanes is the inverse of PackLanes: lane r of the bits x runs
// matrix l is written back into dst[r]. len(dst) must not exceed
// l.Bits; destination rows must hold Words(l.R) words (extra words are
// left untouched).
func UnpackLanes(l *Matrix, dst []Row) {
	if len(dst) > l.Bits {
		panic("bitvec: UnpackLanes destination wider than the lane count")
	}
	t := GetMatrix(l.Bits, l.R)
	Transpose(l, t)
	for r := range dst {
		copy(dst[r], t.Row(r))
	}
	PutMatrix(t)
}
