// Package bitvec is the bit-packed boolean data plane: dense bit-rows
// and bit-matrices stored 64 entries per uint64, with word-parallel
// kernels (AND/OR/ANDNOT, population counts, transpose, boolean matrix
// multiplication) that process 64 matrix entries per machine
// instruction instead of one.
//
// It exists because the Boolean-MM family — boolean matrix
// multiplication, triangle/subgraph detection, the kernelised
// parameterised algorithms — moves and combines {0,1} payloads, and
// paying one simulated word and one semiring call per entry is a 64x
// tax on both simulated bandwidth and local compute. Le Gall's
// algebraic congested-clique algorithms (arXiv:1608.02674) get their
// speedups from exactly this dense word-level representation; here the
// same trick accelerates the simulator itself. A packed word carries 64
// bits, not the model's O(log n) — the constant moves between bandwidth
// and round count, as the paper's normalisation discussion allows (see
// also clique.PackBits). The model-honest O(log n)-bit packing remains
// available as comm.BroadcastBits.
//
// Scratch discipline: rows and matrices are plain []uint64 under the
// hood, so hot paths borrow their storage from the engine's word-
// scratch pool (GetRow/PutRow, GetMatrix/PutMatrix) — the same
// run-scoped arena discipline the lockstep engine uses for mailboxes.
// Pooled buffers come back zeroed; retiring one while any alias is
// still live is the caller's bug, exactly as with engine mailboxes.
package bitvec
