package bitvec

import (
	"fmt"
	"math/rand/v2"
	"testing"
)

// transposeNaive is the per-bit reference the tiled kernel must match.
func transposeNaive(a, dst *Matrix) {
	for i := 0; i < a.R; i++ {
		a.Row(i).Each(func(j int) { dst.Row(j).Set(i) })
	}
}

func randMatrix(rows, bitCount int, density float64, rng *rand.Rand) *Matrix {
	m := NewMatrix(rows, bitCount)
	for i := 0; i < rows; i++ {
		for j := 0; j < bitCount; j++ {
			if rng.Float64() < density {
				m.Row(i).Set(j)
			}
		}
	}
	return m
}

func matricesEqual(a, b *Matrix) bool {
	if a.R != b.R || a.Bits != b.Bits {
		return false
	}
	for i := 0; i < a.R; i++ {
		if !a.Row(i).Equal(b.Row(i)) {
			return false
		}
	}
	return true
}

// TestTranspose64 pins the register kernel against per-bit extraction,
// including asymmetric patterns that expose mirrored shift directions.
func TestTranspose64(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	cases := [][64]uint64{{}, {0: 1}, {63: 1 << 63}, {0: 1 << 63, 63: 1}}
	var dense [64]uint64
	for i := range dense {
		dense[i] = rng.Uint64()
	}
	cases = append(cases, dense)
	for ci, in := range cases {
		tile := in
		transpose64(&tile)
		for r := 0; r < 64; r++ {
			for c := 0; c < 64; c++ {
				want := (in[c]>>uint(r))&1 != 0
				got := (tile[r]>>uint(c))&1 != 0
				if got != want {
					t.Fatalf("case %d: transposed[%d] bit %d = %v, want %v", ci, r, c, got, want)
				}
			}
		}
	}
}

// TestTransposeBlockedMatchesNaive sweeps shapes across tile boundaries
// (exact multiples of 64, one off, tiny, tall, wide) and densities.
func TestTransposeBlockedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	shapes := [][2]int{{1, 1}, {3, 5}, {64, 64}, {63, 65}, {65, 63}, {128, 128}, {130, 7}, {7, 130}, {200, 77}}
	for _, s := range shapes {
		for _, density := range []float64{0, 0.05, 0.5, 1} {
			a := randMatrix(s[0], s[1], density, rng)
			want := NewMatrix(s[1], s[0])
			transposeNaive(a, want)
			got := NewMatrix(s[1], s[0])
			Transpose(a, got)
			if !matricesEqual(got, want) {
				t.Fatalf("Transpose(%dx%d, density %.2f) diverges from naive", s[0], s[1], density)
			}
		}
	}
}

// TestMulBlockedMatchesRowKernel forces shapes past mulBlockWords so
// the banded path runs, and checks bit-identity with the per-row
// kernel (the pre-blocking implementation).
func TestMulBlockedMatchesRowKernel(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for _, n := range []int{65, 130, 700} {
		a := randMatrix(n, n, 0.3, rng)
		b := randMatrix(n, n, 0.3, rng)
		want := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			MulRowInto(a.Row(i), b, want.Row(i))
		}
		got := NewMatrix(n, n)
		mulBlocked(a, b, got) // call the banded path directly, whatever the cutover
		if !matricesEqual(got, want) {
			t.Fatalf("mulBlocked(n=%d) diverges from the row kernel", n)
		}
		got.Zero()
		MulInto(a, b, got)
		if !matricesEqual(got, want) {
			t.Fatalf("MulInto(n=%d) diverges from the row kernel", n)
		}
	}
}

// TestPackLanesRoundTrip pins lane semantics: bit i of lane r is bit i
// of input row r, and unpacking restores the inputs exactly.
func TestPackLanesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for _, runs := range []int{1, 2, 63, 64} {
		const bitCount = 200
		rows := make([]Row, runs)
		for r := range rows {
			rows[r] = NewRow(bitCount)
			for j := 0; j < bitCount; j++ {
				if rng.Float64() < 0.4 {
					rows[r].Set(j)
				}
			}
		}
		l := PackLanes(rows, bitCount)
		if l.R != bitCount || l.Bits != runs {
			t.Fatalf("runs=%d: lane matrix is %dx%d, want %dx%d", runs, l.R, l.Bits, bitCount, runs)
		}
		for r := range rows {
			for j := 0; j < bitCount; j++ {
				if l.Row(j).Get(r) != rows[r].Get(j) {
					t.Fatalf("runs=%d: lane %d bit %d mismatched", runs, r, j)
				}
			}
		}
		back := make([]Row, runs)
		for r := range back {
			back[r] = NewRow(bitCount)
		}
		UnpackLanes(l, back)
		for r := range rows {
			if !rows[r].Equal(back[r]) {
				t.Fatalf("runs=%d: lane round trip mutated row %d", runs, r)
			}
		}
	}
}

func TestPackLanesBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PackLanes accepted 65 rows")
		}
	}()
	PackLanes(make([]Row, 65), 8)
}

func BenchmarkTranspose(b *testing.B) {
	for _, n := range []int{256, 1024} {
		rng := rand.New(rand.NewPCG(11, uint64(n)))
		a := randMatrix(n, n, 0.3, rng)
		dst := NewMatrix(n, n)
		b.Run(fmt.Sprintf("blocked/n=%d", n), func(b *testing.B) {
			b.SetBytes(int64(n * Words(n) * 8))
			for i := 0; i < b.N; i++ {
				dst.Zero()
				Transpose(a, dst)
			}
		})
		b.Run(fmt.Sprintf("naive/n=%d", n), func(b *testing.B) {
			b.SetBytes(int64(n * Words(n) * 8))
			for i := 0; i < b.N; i++ {
				dst.Zero()
				transposeNaive(a, dst)
			}
		})
	}
}

func BenchmarkMulInto(b *testing.B) {
	for _, n := range []int{256, 1024} {
		rng := rand.New(rand.NewPCG(13, uint64(n)))
		am := randMatrix(n, n, 0.3, rng)
		bm := randMatrix(n, n, 0.3, rng)
		cm := NewMatrix(n, n)
		b.Run(fmt.Sprintf("blocked/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MulInto(am, bm, cm)
			}
		})
		b.Run(fmt.Sprintf("rowsweep/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for r := 0; r < n; r++ {
					MulRowInto(am.Row(r), bm, cm.Row(r))
				}
			}
		})
	}
}
