package bitvec

import (
	"math/bits"

	"repro/internal/engine"
)

// WordBits is the number of matrix entries one packed word carries.
const WordBits = 64

// Words returns the number of words a row of `bits` bits occupies.
func Words(bits int) int { return (bits + WordBits - 1) / WordBits }

// Row is a dense bit vector, 64 bits per word, little-endian within
// each word (bit i lives in word i/64 at position i%64). It is layout-
// compatible with graph.Bitset and with the []uint64 payloads the
// simulator moves, so packed rows cross the wire without re-encoding.
type Row []uint64

// NewRow returns a zeroed row able to hold `bits` bits.
func NewRow(bits int) Row { return make(Row, Words(bits)) }

// Get reports bit i.
func (r Row) Get(i int) bool { return r[i/WordBits]&(1<<(i%WordBits)) != 0 }

// Set sets bit i.
func (r Row) Set(i int) { r[i/WordBits] |= 1 << (i % WordBits) }

// Clear clears bit i.
func (r Row) Clear(i int) { r[i/WordBits] &^= 1 << (i % WordBits) }

// Zero clears every word.
func (r Row) Zero() { clear(r) }

// CopyFrom overwrites r with o (lengths must match).
func (r Row) CopyFrom(o Row) { copy(r, o) }

// Or folds o into r: r |= o. o may be shorter than r.
//
// The word loops of the four fold kernels (Or, Xor, And, AndNot) are
// unrolled 4-wide — one 32-byte half cache line per step — with the
// destination pre-sliced to the source length so the unrolled body runs
// without per-word bounds checks.
func (r Row) Or(o Row) {
	d := r[:len(o)]
	i := 0
	for ; i+4 <= len(o); i += 4 {
		d[i] |= o[i]
		d[i+1] |= o[i+1]
		d[i+2] |= o[i+2]
		d[i+3] |= o[i+3]
	}
	for ; i < len(o); i++ {
		d[i] |= o[i]
	}
}

// Xor folds o into r symmetric-difference-wise: r ^= o. o may be
// shorter than r. XOR is the linearity kernel of the sketch plane
// (internal/sketch): sketches merge by word-parallel XOR, so the merge
// of two sketches is bit-identically the sketch of the symmetric
// difference of their edge sets.
func (r Row) Xor(o Row) {
	d := r[:len(o)]
	i := 0
	for ; i+4 <= len(o); i += 4 {
		d[i] ^= o[i]
		d[i+1] ^= o[i+1]
		d[i+2] ^= o[i+2]
		d[i+3] ^= o[i+3]
	}
	for ; i < len(o); i++ {
		d[i] ^= o[i]
	}
}

// And intersects r with o in place: r &= o.
func (r Row) And(o Row) {
	d := r[:len(o)]
	i := 0
	for ; i+4 <= len(o); i += 4 {
		d[i] &= o[i]
		d[i+1] &= o[i+1]
		d[i+2] &= o[i+2]
		d[i+3] &= o[i+3]
	}
	for ; i < len(o); i++ {
		d[i] &= o[i]
	}
}

// AndNot removes o from r in place: r &^= o.
func (r Row) AndNot(o Row) {
	d := r[:len(o)]
	i := 0
	for ; i+4 <= len(o); i += 4 {
		d[i] &^= o[i]
		d[i+1] &^= o[i+1]
		d[i+2] &^= o[i+2]
		d[i+3] &^= o[i+3]
	}
	for ; i < len(o); i++ {
		d[i] &^= o[i]
	}
}

// OnesCount returns the number of set bits.
func (r Row) OnesCount() int {
	var c0, c1, c2, c3 int
	i := 0
	for ; i+4 <= len(r); i += 4 {
		c0 += bits.OnesCount64(r[i])
		c1 += bits.OnesCount64(r[i+1])
		c2 += bits.OnesCount64(r[i+2])
		c3 += bits.OnesCount64(r[i+3])
	}
	for ; i < len(r); i++ {
		c0 += bits.OnesCount64(r[i])
	}
	return c0 + c1 + c2 + c3
}

// AndOnesCount returns |a AND b| without materialising the
// intersection: 64 entries per AND + OnesCount64 step. This is the
// inner kernel of packed boolean dot products and of intersection
// counting (common-neighbour counts, triangle counting).
// Four independent accumulators break the popcount dependency chain so
// the unrolled body keeps multiple OnesCount64 (POPCNT) ops in flight.
func AndOnesCount(a, b Row) int {
	m := min(len(a), len(b))
	a, b = a[:m], b[:m]
	var c0, c1, c2, c3 int
	i := 0
	for ; i+4 <= m; i += 4 {
		c0 += bits.OnesCount64(a[i] & b[i])
		c1 += bits.OnesCount64(a[i+1] & b[i+1])
		c2 += bits.OnesCount64(a[i+2] & b[i+2])
		c3 += bits.OnesCount64(a[i+3] & b[i+3])
	}
	for ; i < m; i++ {
		c0 += bits.OnesCount64(a[i] & b[i])
	}
	return c0 + c1 + c2 + c3
}

// Intersects reports whether a and b share a set bit, short-circuiting
// on the first overlapping word.
func (r Row) Intersects(o Row) bool {
	m := min(len(r), len(o))
	for i := 0; i < m; i++ {
		if r[i]&o[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether r and o hold identical words.
func (r Row) Equal(o Row) bool {
	if len(r) != len(o) {
		return false
	}
	for i, w := range r {
		if w != o[i] {
			return false
		}
	}
	return true
}

// Each calls f for every set bit in increasing order.
func (r Row) Each(f func(i int)) {
	for w, word := range r {
		for word != 0 {
			i := bits.TrailingZeros64(word)
			f(w*WordBits + i)
			word &= word - 1
		}
	}
}

// NextZero returns the smallest clear bit index in [from, limit), or -1
// if every bit in the range is set. It scans a word at a time.
func (r Row) NextZero(from, limit int) int {
	for i := from; i < limit; {
		w := ^r[i/WordBits] >> (i % WordBits)
		if w != 0 {
			z := i + bits.TrailingZeros64(w)
			if z < limit {
				return z
			}
			return -1
		}
		i += WordBits - i%WordBits
	}
	return -1
}

// Word64 extracts up to 64 bits starting at bit offset off: the
// returned word holds bits [off, off+n) at positions 0..n-1 with the
// rest zero. n must be in [0, 64].
func (r Row) Word64(off, n int) uint64 {
	if n == 0 {
		return 0
	}
	w, sh := off/WordBits, off%WordBits
	out := r[w] >> sh
	if sh != 0 && w+1 < len(r) {
		out |= r[w+1] << (WordBits - sh)
	}
	if n < WordBits {
		out &= 1<<n - 1
	}
	return out
}

// OrWord64 folds up to 64 bits into r starting at bit offset off: bit
// position i of v lands on bit off+i. Bits of v at positions >= n must
// be zero. n must be in [0, 64].
func (r Row) OrWord64(off, n int, v uint64) {
	if n == 0 || v == 0 {
		return
	}
	w, sh := off/WordBits, off%WordBits
	r[w] |= v << sh
	if sh != 0 && sh+n > WordBits {
		r[w+1] |= v >> (WordBits - sh)
	}
}

// OrRange folds bits [0, n) of src into r starting at bit offset off —
// the inverse of ExtractInto, used to place received segments back
// into a full-width row.
func (r Row) OrRange(off int, src Row, n int) {
	for o := 0; o < n; o += WordBits {
		c := min(WordBits, n-o)
		r.OrWord64(off+o, c, src.Word64(o, c))
	}
}

// ExtractInto copies bits [lo, hi) of r to positions 0..hi-lo of dst,
// zeroing the rest of dst. dst must hold Words(hi-lo) words.
func (r Row) ExtractInto(dst Row, lo, hi int) {
	dst.Zero()
	for off := lo; off < hi; off += WordBits {
		n := min(WordBits, hi-off)
		dst.OrWord64(off-lo, n, r.Word64(off, n))
	}
}

// FromInt64s packs a scalar 0/1-semantics row: any nonzero entry
// becomes a set bit. This is the bridge from the unpacked Semiring
// representation (one int64 per entry) to the packed plane.
func FromInt64s(xs []int64) Row {
	r := NewRow(len(xs))
	for i, x := range xs {
		if x != 0 {
			r.Set(i)
		}
	}
	return r
}

// ToInt64s unpacks the first n bits to a scalar row of 0/1 entries,
// the inverse bridge of FromInt64s.
func (r Row) ToInt64s(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		if r.Get(i) {
			out[i] = 1
		}
	}
	return out
}

// Matrix is a dense bit matrix: R rows of Bits bits each, stored
// row-major over one contiguous word buffer (W words per row).
type Matrix struct {
	R, Bits, W int
	data       []uint64
}

// NewMatrix returns a zeroed rows x bits matrix over fresh storage.
func NewMatrix(rows, bits int) *Matrix {
	return &Matrix{R: rows, Bits: bits, W: Words(bits), data: make([]uint64, rows*Words(bits))}
}

// Row returns row i as a Row aliasing the matrix storage.
func (m *Matrix) Row(i int) Row { return Row(m.data[i*m.W : (i+1)*m.W]) }

// Zero clears the whole matrix.
func (m *Matrix) Zero() { clear(m.data) }

// Transpose writes a's transpose into dst, which must be a zeroed
// Bits x R matrix (use GetMatrix or NewMatrix). With b transposed,
// boolean products can run as AND + OnesCount64 over row pairs
// (MulRowT) instead of OR-accumulation. The implementation is tiled
// into 64x64-bit blocks (see blocked.go), so cost is per word moved,
// not per set bit.
func Transpose(a, dst *Matrix) {
	transposeBlocked(a, dst)
}

// MulRowInto computes one row of the boolean product dst = aRow x b:
// dst = OR over every set bit k of aRow of b.Row(k). dst must hold
// b.W words and is zeroed first. Each OR step combines 64 product
// entries, the word-parallel inner loop of the packed plane.
func MulRowInto(aRow Row, b *Matrix, dst Row) {
	dst.Zero()
	aRow.Each(func(k int) {
		if k < b.R {
			dst.Or(b.Row(k))
		}
	})
}

// MulRowTInto is MulRowInto against a transposed right operand: bit j
// of dst is set iff aRow intersects bT.Row(j). Each entry costs one
// AND + OnesCount-style pass over Words(n) words; prefer MulRowInto
// when b is available untransposed (it is O(popcount) not O(n)), and
// this form when bT is already on hand.
func MulRowTInto(aRow Row, bT *Matrix, dst Row) {
	dst.Zero()
	for j := 0; j < bT.R; j++ {
		if aRow.Intersects(bT.Row(j)) {
			dst.Set(j)
		}
	}
}

// MulInto computes the full boolean product c = a x b with the
// word-parallel row kernel. c must be an a.R x b.Bits matrix. When b is
// too large for the L1 working-set budget, the product is k-blocked
// (see blocked.go): each band of b rows is streamed against every a row
// while it is cache-hot, instead of sweeping all of b once per row.
func MulInto(a, b, c *Matrix) {
	if b.R*b.W <= mulBlockWords {
		for i := 0; i < a.R; i++ {
			MulRowInto(a.Row(i), b, c.Row(i))
		}
		return
	}
	mulBlocked(a, b, c)
}

// GetRow borrows a zeroed row of `bits` bits from the engine word-
// scratch pool; retire it with PutRow.
func GetRow(bits int) Row { return Row(engine.GetScratch(Words(bits))) }

// PutRow retires a pooled row. The row must not be used afterwards.
func PutRow(r Row) { engine.PutScratch(r) }

// GetWords borrows a zeroed k-word buffer from the engine scratch
// pool — the backing store for tables of rows built in place.
func GetWords(k int) []uint64 { return engine.GetScratch(k) }

// PutWords retires a buffer borrowed with GetWords.
func PutWords(buf []uint64) { engine.PutScratch(buf) }

// GetMatrix borrows a zeroed rows x bits matrix over pooled storage;
// retire it with PutMatrix.
func GetMatrix(rows, bits int) *Matrix {
	w := Words(bits)
	return &Matrix{R: rows, Bits: bits, W: w, data: engine.GetScratch(rows * w)}
}

// PutMatrix retires a pooled matrix (and its storage). The matrix and
// every Row still aliasing it must not be used afterwards.
func PutMatrix(m *Matrix) { engine.PutScratch(m.data) }
