package bitvec

import (
	"math/rand/v2"
	"testing"

	"repro/internal/engine"
)

// refRow is the one-bool-per-entry reference the packed operations are
// checked against.
type refRow []bool

func randomPair(bits int, density float64, seed uint64) (Row, refRow) {
	rng := rand.New(rand.NewPCG(seed, 11))
	r := NewRow(bits)
	ref := make(refRow, bits)
	for i := 0; i < bits; i++ {
		if rng.Float64() < density {
			r.Set(i)
			ref[i] = true
		}
	}
	return r, ref
}

func TestRowBasics(t *testing.T) {
	for _, bits := range []int{1, 7, 63, 64, 65, 130, 200} {
		r, ref := randomPair(bits, 0.4, uint64(bits))
		count := 0
		for i, b := range ref {
			if r.Get(i) != b {
				t.Fatalf("bits=%d: Get(%d) = %v, want %v", bits, i, r.Get(i), b)
			}
			if b {
				count++
			}
		}
		if r.OnesCount() != count {
			t.Errorf("bits=%d: OnesCount = %d, want %d", bits, r.OnesCount(), count)
		}
		var seen []int
		r.Each(func(i int) { seen = append(seen, i) })
		if len(seen) != count {
			t.Errorf("bits=%d: Each visited %d bits, want %d", bits, len(seen), count)
		}
		for _, i := range seen {
			if !ref[i] {
				t.Errorf("bits=%d: Each visited clear bit %d", bits, i)
			}
		}
		if len(seen) > 0 {
			r.Clear(seen[0])
			if r.Get(seen[0]) || r.OnesCount() != count-1 {
				t.Error("Clear did not clear exactly one bit")
			}
		}
	}
}

func TestRowSetOps(t *testing.T) {
	const bits = 150
	a, refA := randomPair(bits, 0.5, 1)
	b, refB := randomPair(bits, 0.5, 2)

	or := NewRow(bits)
	or.CopyFrom(a)
	or.Or(b)
	and := NewRow(bits)
	and.CopyFrom(a)
	and.And(b)
	andnot := NewRow(bits)
	andnot.CopyFrom(a)
	andnot.AndNot(b)
	xor := NewRow(bits)
	xor.CopyFrom(a)
	xor.Xor(b)
	wantAndCount := 0
	for i := 0; i < bits; i++ {
		if or.Get(i) != (refA[i] || refB[i]) {
			t.Fatalf("Or bit %d wrong", i)
		}
		if and.Get(i) != (refA[i] && refB[i]) {
			t.Fatalf("And bit %d wrong", i)
		}
		if andnot.Get(i) != (refA[i] && !refB[i]) {
			t.Fatalf("AndNot bit %d wrong", i)
		}
		if xor.Get(i) != (refA[i] != refB[i]) {
			t.Fatalf("Xor bit %d wrong", i)
		}
		if refA[i] && refB[i] {
			wantAndCount++
		}
	}
	if got := AndOnesCount(a, b); got != wantAndCount {
		t.Errorf("AndOnesCount = %d, want %d", got, wantAndCount)
	}
	if a.Intersects(b) != (wantAndCount > 0) {
		t.Error("Intersects disagrees with AndOnesCount")
	}
	xor.Xor(b)
	if !xor.Equal(a) {
		t.Error("Xor is not self-inverse")
	}
	if !a.Equal(a) {
		t.Error("row not Equal to itself")
	}
	if a.Equal(b) {
		t.Error("distinct random rows reported Equal")
	}
}

func TestWord64RoundTrip(t *testing.T) {
	const bits = 300
	r, ref := randomPair(bits, 0.5, 3)
	for _, off := range []int{0, 1, 63, 64, 65, 100, 250} {
		for _, n := range []int{0, 1, 17, 50, 64} {
			if off+n > bits {
				continue
			}
			w := r.Word64(off, n)
			for i := 0; i < n; i++ {
				if (w>>i)&1 == 1 != ref[off+i] {
					t.Fatalf("Word64(%d, %d) bit %d wrong", off, n, i)
				}
			}
			if n < 64 && w>>n != 0 {
				t.Fatalf("Word64(%d, %d) has bits above n", off, n)
			}
			// OrWord64 into a fresh row must reproduce exactly the bits.
			dst := NewRow(bits)
			dst.OrWord64(off, n, w)
			for i := 0; i < bits; i++ {
				want := i >= off && i < off+n && ref[i]
				if dst.Get(i) != want {
					t.Fatalf("OrWord64(%d, %d) bit %d wrong", off, n, i)
				}
			}
		}
	}
}

func TestExtractOrRangeRoundTrip(t *testing.T) {
	const bits = 333
	r, ref := randomPair(bits, 0.5, 4)
	for _, span := range [][2]int{{0, bits}, {0, 64}, {5, 70}, {63, 65}, {100, 290}, {64, 128}, {7, 7}} {
		lo, hi := span[0], span[1]
		dst := NewRow(hi - lo)
		r.ExtractInto(dst, lo, hi)
		for i := 0; i < hi-lo; i++ {
			if dst.Get(i) != ref[lo+i] {
				t.Fatalf("ExtractInto [%d,%d) bit %d wrong", lo, hi, i)
			}
		}
		back := NewRow(bits)
		back.OrRange(lo, dst, hi-lo)
		for i := 0; i < bits; i++ {
			want := i >= lo && i < hi && ref[i]
			if back.Get(i) != want {
				t.Fatalf("OrRange [%d,%d) bit %d wrong", lo, hi, i)
			}
		}
	}
}

func TestNextZero(t *testing.T) {
	r := NewRow(200)
	for i := 0; i < 200; i++ {
		r.Set(i)
	}
	if got := r.NextZero(0, 200); got != -1 {
		t.Errorf("full row NextZero = %d, want -1", got)
	}
	r.Clear(130)
	if got := r.NextZero(0, 200); got != 130 {
		t.Errorf("NextZero = %d, want 130", got)
	}
	if got := r.NextZero(131, 200); got != -1 {
		t.Errorf("NextZero after hole = %d, want -1", got)
	}
	if got := r.NextZero(0, 130); got != -1 {
		t.Errorf("NextZero below limit = %d, want -1", got)
	}
	r.Clear(64)
	if got := r.NextZero(10, 200); got != 64 {
		t.Errorf("NextZero = %d, want 64", got)
	}
}

func TestInt64Bridge(t *testing.T) {
	xs := []int64{0, 1, 0, -3, 7, 0, 0, 1, 0, 2}
	r := FromInt64s(xs)
	back := r.ToInt64s(len(xs))
	for i, x := range xs {
		want := int64(0)
		if x != 0 {
			want = 1
		}
		if back[i] != want {
			t.Errorf("bridge entry %d = %d, want %d", i, back[i], want)
		}
	}
}

// naiveMul is the per-entry reference boolean product.
func naiveMul(a, b [][]bool) [][]bool {
	n := len(a)
	m := len(b[0])
	c := make([][]bool, n)
	for i := range c {
		c[i] = make([]bool, m)
		for j := 0; j < m; j++ {
			for k := 0; k < len(b); k++ {
				if a[i][k] && b[k][j] {
					c[i][j] = true
					break
				}
			}
		}
	}
	return c
}

func randomBoolMatrix(rows, cols int, density float64, seed uint64) (*Matrix, [][]bool) {
	rng := rand.New(rand.NewPCG(seed, 23))
	m := NewMatrix(rows, cols)
	ref := make([][]bool, rows)
	for i := range ref {
		ref[i] = make([]bool, cols)
		for j := range ref[i] {
			if rng.Float64() < density {
				m.Row(i).Set(j)
				ref[i][j] = true
			}
		}
	}
	return m, ref
}

func TestMatrixMulAgainstReference(t *testing.T) {
	for _, size := range []int{1, 5, 64, 65, 100} {
		a, refA := randomBoolMatrix(size, size, 0.3, uint64(size))
		b, refB := randomBoolMatrix(size, size, 0.3, uint64(size)+1)
		c := NewMatrix(size, size)
		MulInto(a, b, c)
		want := naiveMul(refA, refB)
		for i := 0; i < size; i++ {
			for j := 0; j < size; j++ {
				if c.Row(i).Get(j) != want[i][j] {
					t.Fatalf("size %d: product entry (%d,%d) wrong", size, i, j)
				}
			}
		}
		// The transposed AND+popcount kernel must agree entry for entry.
		bt := NewMatrix(size, size)
		Transpose(b, bt)
		dst := NewRow(size)
		for i := 0; i < size; i++ {
			MulRowTInto(a.Row(i), bt, dst)
			if !dst.Equal(c.Row(i)) {
				t.Fatalf("size %d: MulRowTInto row %d disagrees with MulInto", size, i)
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	a, ref := randomBoolMatrix(70, 90, 0.4, 9)
	at := NewMatrix(90, 70)
	Transpose(a, at)
	for i := 0; i < 70; i++ {
		for j := 0; j < 90; j++ {
			if at.Row(j).Get(i) != ref[i][j] {
				t.Fatalf("transpose entry (%d,%d) wrong", j, i)
			}
		}
	}
}

func TestPooledScratchComesBackZeroed(t *testing.T) {
	r := GetRow(500)
	for i := 0; i < 500; i += 3 {
		r.Set(i)
	}
	PutRow(r)
	r2 := GetRow(321)
	if r2.OnesCount() != 0 {
		t.Error("pooled row not zeroed on reuse")
	}
	PutRow(r2)
	m := GetMatrix(10, 100)
	for i := 0; i < 10; i++ {
		if m.Row(i).OnesCount() != 0 {
			t.Fatal("pooled matrix not zeroed")
		}
		m.Row(i).Set(i)
	}
	PutMatrix(m)
}

func TestScratchPoolReuses(t *testing.T) {
	// Same size class must be served from the pool once warm.
	engine.DisableMailboxPool(false)
	buf := GetWords(1 << 10)
	PutWords(buf)
	h0, _ := engine.ScratchStats()
	buf2 := GetWords(900) // same class (1024)
	if h1, _ := engine.ScratchStats(); h1 != h0+1 {
		t.Errorf("scratch hit count %d, want %d (pool not reused)", h1, h0+1)
	}
	if len(buf2) != 900 {
		t.Errorf("pooled buffer has len %d, want 900", len(buf2))
	}
	for _, w := range buf2 {
		if w != 0 {
			t.Fatal("pooled scratch not zeroed")
		}
	}
	PutWords(buf2)
}

func BenchmarkMulRowInto(b *testing.B) {
	const n = 1024
	m, _ := randomBoolMatrix(n, n, 0.5, 7)
	aRow := m.Row(0)
	dst := NewRow(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulRowInto(aRow, m, dst)
	}
}

func BenchmarkAndOnesCount(b *testing.B) {
	const n = 4096
	x, _ := randomPair(n, 0.5, 1)
	y, _ := randomPair(n, 0.5, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AndOnesCount(x, y)
	}
}
