package fault

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind discriminates what a clause injects at its site.
type Kind string

const (
	KindIOError    Kind = "io-error"
	KindShortWrite Kind = "short-write"
	KindPanic      Kind = "panic"
	KindStall      Kind = "stall"
)

// ErrInjected is the sentinel every injected error wraps, so callers
// and tests can tell a synthetic failure from a real one with
// errors.Is without matching strings.
var ErrInjected = errors.New("fault: injected")

// Err is an injected failure: which kind fired at which site.
type Err struct {
	Kind Kind
	Site string
}

func (e *Err) Error() string { return fmt.Sprintf("fault: injected %s at %s", e.Kind, e.Site) }

// Unwrap makes errors.Is(err, ErrInjected) true for every Err.
func (e *Err) Unwrap() error { return ErrInjected }

// clause is one parsed spec clause. Its PRNG state and hit counter are
// per-clause, so two clauses at one site make independent decisions and
// the injection sequence at a site is a pure function of (spec, hit
// order).
type clause struct {
	kind   Kind
	site   string // injection site, or a prefix when glob
	glob   bool   // site ended in "*": prefix match
	p      float64
	every  int
	after  int
	stall  time.Duration
	mu     sync.Mutex
	rng    uint64 // splitmix64 state
	hits   int64
	seed   uint64
	pSet   bool
	params string // original parameter text, for String
}

// next draws the clause's next uniform float64 in [0,1).
func (c *clause) next() float64 {
	// splitmix64: tiny, seedable, and plenty for injection decisions.
	c.rng += 0x9e3779b97f4a7c15
	z := c.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// fires decides, deterministically, whether this hit injects.
func (c *clause) fires() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits++
	if c.hits <= int64(c.after) {
		return false
	}
	if c.pSet {
		return c.next() < c.p
	}
	if c.every > 1 {
		return (c.hits-int64(c.after))%int64(c.every) == 0
	}
	return true
}

func (c *clause) matches(site string) bool {
	if c.glob {
		return strings.HasPrefix(site, c.site)
	}
	return site == c.site
}

// Plan is a parsed fault specification plus injection counters.
type Plan struct {
	clauses  []*clause
	spec     string
	mu       sync.Mutex
	injected map[string]int64 // site -> injections fired
}

// Parse builds a Plan from a CLIQUE_FAULTS spec string. An empty spec
// yields a nil Plan (inject nothing).
func Parse(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	p := &Plan{spec: spec, injected: map[string]int64{}}
	for _, raw := range strings.Split(spec, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		c, err := parseClause(raw)
		if err != nil {
			return nil, fmt.Errorf("fault: clause %q: %w", raw, err)
		}
		p.clauses = append(p.clauses, c)
	}
	if len(p.clauses) == 0 {
		return nil, nil
	}
	return p, nil
}

func parseClause(raw string) (*clause, error) {
	head, params, _ := strings.Cut(raw, ":")
	kindStr, site, ok := strings.Cut(head, "@")
	if !ok || site == "" {
		return nil, errors.New(`want kind@site[:param=value,...]`)
	}
	c := &clause{site: site, params: params}
	switch Kind(kindStr) {
	case KindIOError, KindShortWrite, KindPanic, KindStall:
		c.kind = Kind(kindStr)
	default:
		return nil, fmt.Errorf("unknown kind %q (valid: %s, %s, %s, %s)",
			kindStr, KindIOError, KindShortWrite, KindPanic, KindStall)
	}
	if strings.HasSuffix(site, "*") {
		c.glob = true
		c.site = strings.TrimSuffix(site, "*")
	}
	if params != "" {
		for _, kv := range strings.Split(params, ",") {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("parameter %q is not key=value", kv)
			}
			switch key {
			case "p":
				f, err := strconv.ParseFloat(val, 64)
				if err != nil || f < 0 || f > 1 {
					return nil, fmt.Errorf("p=%q is not a probability", val)
				}
				c.p, c.pSet = f, true
			case "every":
				n, err := strconv.Atoi(val)
				if err != nil || n < 1 {
					return nil, fmt.Errorf("every=%q is not a positive count", val)
				}
				c.every = n
			case "after":
				n, err := strconv.Atoi(val)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("after=%q is not a count", val)
				}
				c.after = n
			case "ms":
				n, err := strconv.Atoi(val)
				if err != nil || n < 0 || n > 600_000 {
					return nil, fmt.Errorf("ms=%q is not a duration in [0, 600000]", val)
				}
				c.stall = time.Duration(n) * time.Millisecond
			case "seed":
				n, err := strconv.ParseUint(val, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("seed=%q is not a uint64", val)
				}
				c.seed = n
			default:
				return nil, fmt.Errorf("unknown parameter %q", key)
			}
		}
	}
	if c.kind == KindStall && c.stall == 0 {
		c.stall = 10 * time.Millisecond
	}
	c.rng = c.seed ^ 0x2545f4914f6cdd1d
	return c, nil
}

// String returns the spec the plan was parsed from.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	return p.spec
}

// Counts reports how many injections have fired per site, for tests
// asserting that a chaos run actually exercised its faults.
func (p *Plan) Counts() map[string]int64 {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int64, len(p.injected))
	for k, v := range p.injected {
		out[k] = v
	}
	return out
}

func (p *Plan) count(site string) {
	p.mu.Lock()
	p.injected[site]++
	p.mu.Unlock()
}

// decide returns the injections firing for one hit of site, stalls
// first so an io-error clause still observes its companion stall.
func (p *Plan) decide(site string, forWrite bool) []Kind {
	var kinds []Kind
	for _, c := range p.clauses {
		if !c.matches(site) {
			continue
		}
		if c.kind == KindShortWrite && !forWrite {
			continue // short writes only make sense inside a Write
		}
		if c.fires() {
			p.count(site)
			kinds = append(kinds, c.kind)
		}
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] == KindStall && kinds[j] != KindStall })
	return kinds
}

// stallFor returns the stall duration configured for site (the first
// matching stall clause's).
func (p *Plan) stallFor(site string) time.Duration {
	for _, c := range p.clauses {
		if c.kind == KindStall && c.matches(site) {
			return c.stall
		}
	}
	return 10 * time.Millisecond
}

// active is the installed plan; nil means inject nothing. The envErr
// from parsing CLIQUE_FAULTS at init is surfaced via EnvError so the
// daemon can refuse to boot on a typo instead of silently not
// injecting.
var (
	active atomic.Pointer[Plan]
	envErr error
)

func init() {
	p, err := Parse(os.Getenv("CLIQUE_FAULTS"))
	if err != nil {
		envErr = err
		return
	}
	if p != nil {
		active.Store(p)
	}
}

// EnvError reports a parse failure of the CLIQUE_FAULTS environment
// spec, if any.
func EnvError() error { return envErr }

// Install makes plan the active one (nil disables injection). Returns
// the previous plan so tests can restore it.
func Install(plan *Plan) (prev *Plan) {
	return active.Swap(plan)
}

// Active returns the installed plan, nil when injection is off.
func Active() *Plan { return active.Load() }

// Hit is an injection point for fallible operations. With no active
// plan it is one atomic load. Otherwise matched stall clauses sleep,
// a matched panic clause panics with *Err, and a matched io-error
// clause returns *Err (wrapping ErrInjected).
func Hit(site string) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	return p.hit(site, false)
}

func (p *Plan) hit(site string, forWrite bool) error {
	var failure error
	for _, kind := range p.decide(site, forWrite) {
		switch kind {
		case KindStall:
			time.Sleep(p.stallFor(site))
		case KindPanic:
			panic(&Err{Kind: KindPanic, Site: site})
		case KindIOError:
			if failure == nil {
				failure = &Err{Kind: KindIOError, Site: site}
			}
		case KindShortWrite:
			if failure == nil {
				failure = &Err{Kind: KindShortWrite, Site: site}
			}
		}
	}
	return failure
}

// WrapWriter interposes the active plan on a writer: matched io-error
// clauses fail the Write without writing, matched short-write clauses
// write a strict prefix and then fail — the torn-write shape a crash
// mid-append leaves on disk. With no active plan it returns w itself.
func WrapWriter(site string, w io.Writer) io.Writer {
	if active.Load() == nil {
		return w
	}
	return &faultWriter{site: site, w: w}
}

type faultWriter struct {
	site string
	w    io.Writer
}

func (f *faultWriter) Write(b []byte) (int, error) {
	p := active.Load()
	if p == nil {
		return f.w.Write(b)
	}
	err := p.hit(f.site, true)
	var ferr *Err
	if errors.As(err, &ferr) {
		switch ferr.Kind {
		case KindShortWrite:
			// A torn write commits a strict prefix: at least one byte
			// short, and possibly nothing.
			n := len(b) / 2
			if n >= len(b) {
				n = len(b) - 1
			}
			if n > 0 {
				if wrote, werr := f.w.Write(b[:n]); werr != nil {
					return wrote, werr
				}
			}
			return n, ferr
		default:
			return 0, ferr
		}
	}
	return f.w.Write(b)
}
