// Package fault is the deterministic fault-injection layer behind the
// daemon's chaos test suite. Production code declares named injection
// points (Hit, Stall, WrapWriter, Crashf); a Plan — parsed from the
// CLIQUE_FAULTS spec string or installed programmatically by tests —
// decides, deterministically from a seed and a per-site hit counter,
// which hits inject which failure. With no plan installed every hook is
// a nil check: the zero-cost-when-off discipline the trace plane set.
//
// Spec grammar (semicolon-separated clauses):
//
//	kind@site[:param=value[,param=value...]]
//
// Kinds: io-error (return a typed error), short-write (truncate a
// write and return a typed error), panic (panic at the point), stall
// (sleep before proceeding). Sites are the dotted names production
// code passes, e.g. ledger.append, ledger.sync, job.run. A clause
// site may end in "*" to prefix-match a family of sites.
//
// Params: p=0.5 (independent injection probability per hit), every=3
// (inject every 3rd hit), after=10 (arm only after 10 hits), ms=50
// (stall duration), seed=7 (per-clause PRNG seed). Omitting p and
// every injects on every hit once armed.
package fault
