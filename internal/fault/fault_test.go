package fault

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

// install swaps plan in for the duration of the test.
func install(t *testing.T, spec string) *Plan {
	t.Helper()
	p, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	prev := Install(p)
	t.Cleanup(func() { Install(prev) })
	return p
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"io-error",              // no site
		"explode@ledger.append", // unknown kind
		"io-error@x:p=2",        // p out of range
		"io-error@x:every=0",    // bad count
		"io-error@x:bogus=1",    // unknown param
		"stall@x:ms=-5",         // negative duration
		"io-error@x:p",          // not key=value
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted an invalid spec", spec)
		}
	}
	for _, spec := range []string{"", "  ", ";;"} {
		p, err := Parse(spec)
		if err != nil || p != nil {
			t.Errorf("Parse(%q) = %v, %v; want nil, nil", spec, p, err)
		}
	}
}

func TestHitEveryAndAfter(t *testing.T) {
	install(t, "io-error@ledger.append:every=3,after=2")
	var fired []int
	for i := 1; i <= 12; i++ {
		if err := Hit("ledger.append"); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("hit %d: error %v does not wrap ErrInjected", i, err)
			}
			fired = append(fired, i)
		}
	}
	// Armed after 2 hits, firing every 3rd armed hit: 5, 8, 11.
	want := []int{5, 8, 11}
	if len(fired) != len(want) {
		t.Fatalf("fired on hits %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired on hits %v, want %v", fired, want)
		}
	}
}

func TestProbabilisticDeterminism(t *testing.T) {
	sequence := func() []bool {
		install(t, "io-error@job.run:p=0.5,seed=42")
		out := make([]bool, 64)
		for i := range out {
			out[i] = Hit("job.run") != nil
		}
		return out
	}
	a, b := sequence(), sequence()
	some := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d differs between identically seeded plans", i)
		}
		some = some || a[i]
	}
	if !some {
		t.Fatal("p=0.5 over 64 hits never fired")
	}
}

func TestSiteMatching(t *testing.T) {
	p := install(t, "io-error@ledger.*")
	if Hit("ledger.append") == nil || Hit("ledger.sync") == nil {
		t.Fatal("glob clause did not match ledger.* sites")
	}
	if Hit("job.run") != nil {
		t.Fatal("glob clause leaked onto an unrelated site")
	}
	counts := p.Counts()
	if counts["ledger.append"] != 1 || counts["ledger.sync"] != 1 {
		t.Fatalf("counts = %v, want one injection per ledger site", counts)
	}
}

func TestPanicKind(t *testing.T) {
	install(t, "panic@worker.job")
	defer func() {
		r := recover()
		ferr, ok := r.(*Err)
		if !ok || ferr.Kind != KindPanic || ferr.Site != "worker.job" {
			t.Fatalf("recovered %v, want *Err{panic, worker.job}", r)
		}
	}()
	_ = Hit("worker.job")
	t.Fatal("panic clause did not panic")
}

func TestStallKind(t *testing.T) {
	install(t, "stall@job.run:ms=30")
	start := time.Now()
	if err := Hit("job.run"); err != nil {
		t.Fatalf("stall returned error %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("stall slept %v, want >= 30ms", d)
	}
}

func TestShortWriteWriter(t *testing.T) {
	install(t, "short-write@ledger.write")
	var buf bytes.Buffer
	w := WrapWriter("ledger.write", &buf)
	payload := []byte("0123456789abcdef")
	n, err := w.Write(payload)
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("short write returned %v, want injected error", err)
	}
	if n >= len(payload) {
		t.Fatalf("short write wrote %d of %d bytes — not short", n, len(payload))
	}
	if buf.Len() != n {
		t.Fatalf("writer reported %d bytes but sank %d", n, buf.Len())
	}
	if !bytes.Equal(buf.Bytes(), payload[:n]) {
		t.Fatal("short write did not commit a strict prefix")
	}
}

func TestIOErrorWriterWritesNothing(t *testing.T) {
	install(t, "io-error@ledger.write")
	var buf bytes.Buffer
	w := WrapWriter("ledger.write", &buf)
	if _, err := w.Write([]byte("data")); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("io-error write sank %d bytes, want 0", buf.Len())
	}
}

func TestWrapWriterNoPlanIsIdentity(t *testing.T) {
	prev := Install(nil)
	t.Cleanup(func() { Install(prev) })
	var buf bytes.Buffer
	if w := WrapWriter("x", &buf); w != &buf {
		t.Fatal("WrapWriter with no plan should return the writer itself")
	}
}

func TestErrorText(t *testing.T) {
	err := &Err{Kind: KindIOError, Site: "ledger.append"}
	if !strings.Contains(err.Error(), "ledger.append") {
		t.Fatalf("error text %q does not name the site", err)
	}
}
