// Package gather implements the trivial full-information algorithms of
// the congested clique: every node learns the entire input graph by
// broadcasting its adjacency row with honest O(log n)-bit packing, which
// takes ceil(n / (log n * wordsPerPair)) rounds, and then solves the
// problem locally for free. These are the delta <= 1 upper bounds that
// problems like maximum independent set, minimum vertex cover and
// k-colouring carry in Figure 1 of the paper.
package gather
