package gather

import (
	"testing"

	"repro/internal/clique"
	"repro/internal/graph"
)

func TestFullReconstructsGraph(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		g := graph.Gnp(17, 0.3, seed)
		_, err := clique.Run(clique.Config{N: g.N}, func(nd *clique.Node) {
			full := Full(nd, g.Row(nd.ID()))
			if !full.Equal(g) {
				nd.Fail("reconstructed graph differs")
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestFullRoundCount(t *testing.T) {
	// n bits packed log n per word: ceil(n / WordBits(n)) rounds at one
	// word per pair.
	g := graph.Gnp(32, 0.5, 5)
	res, err := clique.Run(clique.Config{N: g.N}, func(nd *clique.Node) {
		Full(nd, g.Row(nd.ID()))
	})
	if err != nil {
		t.Fatal(err)
	}
	want := (32 + clique.WordBits(32) - 1) / clique.WordBits(32)
	if res.Stats.Rounds != want {
		t.Errorf("Full used %d rounds, want %d", res.Stats.Rounds, want)
	}
}

func TestGlobalSolvers(t *testing.T) {
	g := graph.Cycle(9)
	_, err := clique.Run(clique.Config{N: g.N}, func(nd *clique.Node) {
		if got := MaxIndependentSetSize(nd, g.Row(nd.ID())); got != 4 {
			nd.Fail("alpha(C9) = %d, want 4", got)
		}
		if got := MinVertexCoverSize(nd, g.Row(nd.ID())); got != 5 {
			nd.Fail("tau(C9) = %d, want 5", got)
		}
		if KColorable(nd, g.Row(nd.ID()), 2) {
			nd.Fail("C9 is not 2-colourable")
		}
		if !KColorable(nd, g.Row(nd.ID()), 3) {
			nd.Fail("C9 is 3-colourable")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
