package gather

import (
	"repro/internal/clique"
	"repro/internal/comm"
	"repro/internal/graph"
)

// Full reconstructs the whole input graph at this node. row is the
// node's adjacency bitset.
func Full(nd clique.Endpoint, row graph.Bitset) *graph.Graph {
	n := nd.N()
	bits := make([]bool, n)
	for u := 0; u < n; u++ {
		bits[u] = u != nd.ID() && row.Has(u)
	}
	table := comm.BroadcastBits(nd, bits)
	g := graph.New(n)
	for v := 0; v < n; v++ {
		for u := 0; u < n; u++ {
			if table[v][u] && u != v {
				g.AddEdge(v, u)
			}
		}
	}
	return g
}

// MaxIndependentSetSize computes the independence number at every node;
// all nodes return the same value because they solve the same local
// instance deterministically.
func MaxIndependentSetSize(nd clique.Endpoint, row graph.Bitset) int {
	return graph.MaxIndependentSetSize(Full(nd, row))
}

// MinVertexCoverSize computes the vertex cover number at every node.
func MinVertexCoverSize(nd clique.Endpoint, row graph.Bitset) int {
	return graph.MinVertexCoverSize(Full(nd, row))
}

// KColorable decides k-colourability at every node.
func KColorable(nd clique.Endpoint, row graph.Bitset, k int) bool {
	return graph.IsKColorable(Full(nd, row), k)
}
