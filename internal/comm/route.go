package comm

import (
	"repro/internal/clique"
	"repro/internal/trace"
)

// Packet is one routed message: a fixed-width payload bound for Dst.
// Within a single Route call all packets must have the same payload
// width, which keeps the wire format self-delimiting.
type Packet struct {
	Src     int
	Dst     int
	Payload []uint64
}

// splitmix64 is the fixed hash used to pick routing intermediates. It is
// part of the (uniform, deterministic) algorithm, playing the role of
// Lenzen's explicit balancing computation.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Route delivers an arbitrary multiset of fixed-width packets and returns
// the packets addressed to this node, with Src filled in. All nodes must
// call Route together (it is a global operation), and every packet in the
// instance must have payload width w. Cost: O((s + r) * (w + 2) /
// wordsPerPair) rounds plus a constant, where s*n and r*n bound per-node
// send and receive counts — the Lenzen [43] regime.
//
// seed selects the intermediate assignment; algorithms fix it so the
// whole computation stays deterministic.
func Route(nd clique.Endpoint, packets []Packet, w int, seed uint64) []Packet {
	defer trace.Op(nd, "Route", len(packets)*(w+2))()
	n := nd.N()
	me := nd.ID()

	// Phase 1: spread every packet to a pseudo-random intermediate.
	// Wire format per packet: dst, src, payload words.
	queues := make([][]uint64, n)
	for idx, p := range packets {
		if len(p.Payload) != w {
			nd.Fail("comm: packet %d has payload width %d, instance width is %d", idx, len(p.Payload), w)
		}
		if p.Dst < 0 || p.Dst >= n {
			nd.Fail("comm: packet %d has bad destination %d", idx, p.Dst)
		}
		mid := int(splitmix64(seed^uint64(me)*0x100000001b3^uint64(idx)) % uint64(n))
		rec := make([]uint64, 0, w+2)
		rec = append(rec, uint64(p.Dst), uint64(me))
		rec = append(rec, p.Payload...)
		queues[mid] = append(queues[mid], rec...)
	}
	// Packets whose intermediate is the sender itself never hit the
	// network in phase 1; hold them aside and let them join phase 2.
	held := queues[me]
	queues[me] = nil

	in := AllToAll(nd, queues)

	// Phase 2: every intermediate forwards to true destinations.
	// Wire format per packet: src, payload words.
	queues2 := make([][]uint64, n)
	var local []Packet
	forward := func(stream []uint64) {
		for off := 0; off+w+2 <= len(stream); off += w + 2 {
			dst := int(stream[off])
			src := stream[off+1]
			payload := stream[off+2 : off+2+w]
			if dst == me {
				local = append(local, Packet{Src: int(src), Dst: me, Payload: append([]uint64(nil), payload...)})
				continue
			}
			rec := make([]uint64, 0, w+1)
			rec = append(rec, src)
			rec = append(rec, payload...)
			queues2[dst] = append(queues2[dst], rec...)
		}
	}
	forward(held)
	for p := 0; p < n; p++ {
		forward(in[p])
	}

	in2 := AllToAll(nd, queues2)

	out := local
	for p := 0; p < n; p++ {
		stream := in2[p]
		for off := 0; off+w+1 <= len(stream); off += w + 1 {
			out = append(out, Packet{
				Src:     int(stream[off]),
				Dst:     me,
				Payload: append([]uint64(nil), stream[off+1:off+1+w]...),
			})
		}
	}
	return out
}

// RouteDirect is the ablation baseline: every packet travels straight to
// its destination with no balancing. Its round count is 1 + the maximum
// number of words any single ordered pair must carry, so skewed instances
// degrade to Theta(max pair load) instead of O(s + r).
func RouteDirect(nd clique.Endpoint, packets []Packet, w int) []Packet {
	defer trace.Op(nd, "RouteDirect", len(packets)*(w+1))()
	n := nd.N()
	me := nd.ID()
	queues := make([][]uint64, n)
	for idx, p := range packets {
		if len(p.Payload) != w {
			nd.Fail("comm: packet %d has payload width %d, instance width is %d", idx, len(p.Payload), w)
		}
		rec := make([]uint64, 0, w+1)
		rec = append(rec, uint64(me))
		rec = append(rec, p.Payload...)
		if p.Dst == me {
			nd.Fail("comm: RouteDirect packet addressed to self")
		}
		queues[p.Dst] = append(queues[p.Dst], rec...)
	}
	in := AllToAll(nd, queues)
	var out []Packet
	for p := 0; p < n; p++ {
		stream := in[p]
		for off := 0; off+w+1 <= len(stream); off += w + 1 {
			out = append(out, Packet{
				Src:     int(stream[off]),
				Dst:     me,
				Payload: append([]uint64(nil), stream[off+1:off+1+w]...),
			})
		}
	}
	return out
}
