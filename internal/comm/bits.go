package comm

import (
	"repro/internal/bitvec"
	"repro/internal/clique"
	"repro/internal/trace"
)

// Packed collectives: the boolean data plane's wire layer. Where the
// scalar collectives move one matrix entry per word, these ship dense
// bit rows at 64 entries per word — ceil(bits/64) words per row instead
// of `bits` — chunked against WordsPerPair exactly like the scalar
// forms, so a packed broadcast of an n-bit row costs
// ceil(ceil(n/64) / wordsPerPair) rounds. A packed word deliberately
// carries 64 bits rather than the model's O(log n); the constant moves
// between bandwidth and round count (the paper's normalisation
// freedom), and the model-honest packing remains available as
// BroadcastBits. Rows are bitvec.Row values, which are layout-
// compatible with the []uint64 payloads the engine moves, so packing
// never re-encodes on either side of the wire.

// BroadcastBitRows has every node broadcast one packed row of `bits`
// bits (exactly bitvec.Words(bits) words); it returns, at every node,
// the table of rows indexed by sender (the own entry is a copy).
// Rounds: ceil(bitvec.Words(bits) / wordsPerPair).
func BroadcastBitRows(nd clique.Endpoint, row bitvec.Row, bits int) []bitvec.Row {
	return BroadcastBitRowsInto(nd, row, bits, nil)
}

// BroadcastBitRowsInto is BroadcastBitRows appending into a caller-
// provided table of n zero-length rows (each with capacity for the full
// row, e.g. carved out of one pooled buffer), so steady-state callers
// receive the whole table without allocating. A nil table allocates.
func BroadcastBitRowsInto(nd clique.Endpoint, row bitvec.Row, bits int, into []bitvec.Row) []bitvec.Row {
	defer trace.Op(nd, "BroadcastBitRows", bitvec.Words(bits))()
	n := nd.N()
	me := nd.ID()
	k := bitvec.Words(bits)
	if len(row) != k {
		nd.Fail("comm: BroadcastBitRows row has %d words, contract is exactly %d for %d bits", len(row), k, bits)
	}
	if into == nil {
		into = make([]bitvec.Row, n)
	} else if len(into) != n {
		nd.Fail("comm: BroadcastBitRowsInto table has %d entries, want n=%d", len(into), n)
	}
	into[me] = append(into[me], row...)
	wpp := nd.WordsPerPair()
	for off := 0; off < k; off += wpp {
		nd.BroadcastWords(row[off:chunkEnd(off, k, wpp)])
		nd.Tick()
		for p := 0; p < n; p++ {
			if p != me {
				into[p] = bitvec.Row(nd.RecvInto(p, into[p]))
			}
		}
	}
	for p := 0; p < n; p++ {
		if len(into[p]) != k {
			nd.Fail("comm: BroadcastBitRows received %d words from %d, want %d", len(into[p]), p, k)
		}
	}
	return into
}

// GatherBits collects one packed row of `bits` bits from every node at
// root, in ceil(bitvec.Words(bits) / wordsPerPair) rounds. The root
// returns the table indexed by sender (its own entry a copy); other
// nodes return nil.
func GatherBits(nd clique.Endpoint, root int, row bitvec.Row, bits int) []bitvec.Row {
	defer trace.Op(nd, "GatherBits", bitvec.Words(bits))()
	k := bitvec.Words(bits)
	if len(row) != k {
		nd.Fail("comm: GatherBits row has %d words, contract is exactly %d for %d bits", len(row), k, bits)
	}
	table := Gather(nd, root, row, k)
	if table == nil {
		return nil
	}
	rows := make([]bitvec.Row, len(table))
	for p, words := range table {
		rows[p] = bitvec.Row(words)
	}
	return rows
}

// AllToAllBits is the personalised packed exchange: rows[v] is the
// `bits`-bit row this node owes node v (the own entry is returned to
// the caller as its own copy). Every link carries the same fixed word
// count, so no agreement round is needed: exactly
// ceil(bitvec.Words(bits) / wordsPerPair) rounds, on the zero-copy
// send path.
func AllToAllBits(nd clique.Endpoint, rows []bitvec.Row, bits int) []bitvec.Row {
	n := nd.N()
	k := bitvec.Words(bits)
	if len(rows) != n {
		nd.Fail("comm: AllToAllBits given %d rows, want one per node (n=%d)", len(rows), n)
	}
	out := make([][]uint64, n)
	for v, r := range rows {
		if len(r) != k {
			nd.Fail("comm: AllToAllBits row for %d has %d words, contract is exactly %d for %d bits", v, len(r), k, bits)
		}
		out[v] = r
	}
	in := AllToAllFixed(nd, out, k)
	res := make([]bitvec.Row, n)
	for p, words := range in {
		res[p] = bitvec.Row(words)
	}
	return res
}

// AllToAllFixed is the fixed-width personalised exchange underlying
// AllToAllBits: out[v] is the exactly-k-word payload this node owes
// node v, every link carries the same k words, and the own entry comes
// back as a copy. Because the width is globally agreed there is no
// max-reduction round (contrast AllToAll): exactly
// ceil(k / wordsPerPair) rounds on the zero-copy send path. This is
// the workhorse of the packed 3D matrix multiplication, whose block
// exchanges are perfectly balanced.
func AllToAllFixed(nd clique.Endpoint, out [][]uint64, k int) [][]uint64 {
	defer trace.Op(nd, "AllToAllFixed", k*(nd.N()-1))()
	n := nd.N()
	me := nd.ID()
	if len(out) != n {
		nd.Fail("comm: AllToAllFixed given %d payloads, want one per node (n=%d)", len(out), n)
	}
	for v, r := range out {
		if len(r) != k {
			nd.Fail("comm: AllToAllFixed payload for %d has %d words, contract is exactly k=%d", v, len(r), k)
		}
	}
	in := make([][]uint64, n)
	in[me] = append([]uint64(nil), out[me]...)
	wpp := nd.WordsPerPair()
	for off := 0; off < k; off += wpp {
		end := chunkEnd(off, k, wpp)
		for v := 0; v < n; v++ {
			if v != me {
				copy(nd.SendBuf(v, end-off), out[v][off:end])
			}
		}
		nd.Tick()
		for p := 0; p < n; p++ {
			if p != me {
				in[p] = nd.RecvInto(p, in[p])
			}
		}
	}
	for p := 0; p < n; p++ {
		if len(in[p]) != k {
			nd.Fail("comm: AllToAllFixed received %d words from %d, want %d", len(in[p]), p, k)
		}
	}
	return in
}
