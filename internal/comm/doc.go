// Package comm is the collective-communication layer of the congested
// clique simulator: the reusable vocabulary of communication patterns —
// broadcasts, reductions, gather/scatter, personalised all-to-all
// exchanges, and Lenzen-style balanced routing — that every algorithm
// package builds on instead of hand-rolling per-word Send loops.
//
// All collectives are global operations written against
// clique.Endpoint: every node of the clique must call the same
// collective with compatible arguments at the same point of its
// program, exactly as in the paper's constructions (the Theorem 2–3
// simulations and the fine-grained upper bounds of Figure 1 are all
// phrased over this vocabulary, as are the algebraic and MST algorithms
// of the related work). Each collective is budget-aware: operations
// that move more than WordsPerPair() words per link split themselves
// into ceil(k / wordsPerPair) rounds automatically, so algorithms state
// *what* moves and the collective owns the round schedule.
//
// The collectives ride the batched engine paths (BroadcastWords,
// SendWords, SendBuf, BroadcastBuf, RecvInto), so a migrated algorithm
// allocates nothing per round beyond its own result buffers. Which
// collective to reach for:
//
//   - BroadcastAll: every node contributes k words, all nodes learn the
//     full table (the all-gather of the suite).
//   - BroadcastWord / BroadcastWordOK: the one-word special case, with
//     OK-flags when peers may legally stay silent.
//   - MaxWord / SumWord / OrBool / AndBool: one-round reductions,
//     identical at every node.
//   - Flags: presence-coded one-round announcements (nothing on the
//     wire for false).
//   - BroadcastRounds: a fixed number of optional one-word broadcast
//     rounds (kernelisation-style protocols).
//   - BroadcastFrom: one root ships k words to everyone (leader
//     agreement, witness publication).
//   - Gather / GatherTo / Scatter: k words per node to or from a root.
//   - AllToAllWord: one word to every peer, one round (transposes,
//     label-consistency checks).
//   - AllToAll: arbitrary per-destination streams, the raw substrate
//     under Route.
//   - Route / RouteDirect: Lenzen's balanced packet routing [43] and
//     its unbalanced ablation baseline.
//   - BroadcastBits: bit-packed broadcast at the honest O(log n)-bit
//     word size.
//
// The packed plane (bits.go) moves dense boolean payloads at 64 matrix
// entries per word over bitvec.Row values — ceil(bits/64) words per row
// instead of one word per entry, the representation Le Gall's algebraic
// congested-clique algorithms exploit:
//
//   - BroadcastBitRows / BroadcastBitRowsInto: every node broadcasts
//     one packed row; all nodes learn the table (packed BroadcastAll).
//   - GatherBits: one packed row per node collected at a root (the
//     packed Gather).
//   - AllToAllBits: one packed row to every peer (the packed
//     personalised exchange).
//   - AllToAllFixed: the fixed-width word exchange under AllToAllBits —
//     no agreement round, and the transport of the packed 3D matrix
//     multiplication's perfectly balanced block phases.
package comm
