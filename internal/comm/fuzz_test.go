package comm

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"repro/internal/clique"
)

// FuzzAllToAllChunking drives AllToAll with pseudo-random stream shapes
// under varying per-pair budgets and checks, on every backend, that (a)
// each destination receives exactly the stream each sender owed it, in
// order, (b) the round count matches the collective's contract
// (1 + ceil(maxLinkLoad / wpp), zero-traffic instances pay only the
// max-reduction round), and (c) both backends agree on Stats.
func FuzzAllToAllChunking(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(1))
	f.Add(uint64(7), uint8(6), uint8(3))
	f.Add(uint64(42), uint8(3), uint8(7))
	f.Add(uint64(99), uint8(8), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, wppRaw uint8) {
		n := 2 + int(nRaw%7)     // 2..8 nodes
		wpp := 1 + int(wppRaw%8) // 1..8 words per pair

		rng := rand.New(rand.NewPCG(seed, uint64(n*100+wpp)))
		queues := make([][][]uint64, n) // queues[v][t] = words v owes t
		maxLoad := 0
		for v := 0; v < n; v++ {
			queues[v] = make([][]uint64, n)
			for dst := 0; dst < n; dst++ {
				if dst == v {
					continue
				}
				l := rng.IntN(3 * wpp)
				for i := 0; i < l; i++ {
					queues[v][dst] = append(queues[v][dst], uint64(v)<<32|uint64(dst)<<16|uint64(i))
				}
				if l > maxLoad {
					maxLoad = l
				}
			}
		}

		var refStats *clique.Stats
		for _, backend := range clique.Backends() {
			got := make([][][]uint64, n)
			res, err := clique.Run(clique.Config{N: n, WordsPerPair: wpp, Backend: backend},
				func(nd *clique.Node) {
					mine := make([][]uint64, n)
					for t := range mine {
						mine[t] = queues[nd.ID()][t]
					}
					got[nd.ID()] = AllToAll(nd, mine)
				})
			if err != nil {
				t.Fatalf("%s: %v", backend, err)
			}
			wantRounds := 1
			if maxLoad > 0 {
				wantRounds += (maxLoad + wpp - 1) / wpp
			}
			if res.Stats.Rounds != wantRounds {
				t.Fatalf("%s: rounds = %d, want %d (maxLoad %d, wpp %d)",
					backend, res.Stats.Rounds, wantRounds, maxLoad, wpp)
			}
			for to := 0; to < n; to++ {
				for from := 0; from < n; from++ {
					if from == to {
						continue
					}
					want := queues[from][to]
					have := got[to][from]
					if len(want) == 0 && len(have) == 0 {
						continue
					}
					if !reflect.DeepEqual(have, want) {
						t.Fatalf("%s: stream %d->%d = %v, want %v", backend, from, to, have, want)
					}
				}
			}
			if refStats == nil {
				s := res.Stats
				refStats = &s
			} else if *refStats != res.Stats {
				t.Fatalf("%s stats %+v diverge from reference %+v", backend, res.Stats, *refStats)
			}
		}
	})
}
