package comm

import (
	"fmt"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/clique"
)

func testRow(me, bits int) bitvec.Row {
	r := bitvec.NewRow(bits)
	for i := 0; i < bits; i++ {
		if (me+i)%3 == 0 {
			r.Set(i)
		}
	}
	return r
}

func TestBroadcastBitRowsRoundTrip(t *testing.T) {
	const n, bits, wpp = 6, 130, 1
	res := runBoth(t, clique.Config{N: n, WordsPerPair: wpp}, func(nd *clique.Node) {
		table := BroadcastBitRows(nd, testRow(nd.ID(), bits), bits)
		for p := 0; p < n; p++ {
			if !table[p].Equal(testRow(p, bits)) {
				nd.Fail("row from %d corrupted", p)
			}
		}
	})
	want := bitvec.Words(bits) // ceil(130/64) = 3 words at wpp 1
	for backend, r := range res {
		if r.Stats.Rounds != want {
			t.Errorf("%s: rounds = %d, want %d", backend, r.Stats.Rounds, want)
		}
	}
}

func TestBroadcastBitRowsChunksAgainstBudget(t *testing.T) {
	const n, bits, wpp = 4, 300, 2 // 5 words -> 3 rounds
	res := runBoth(t, clique.Config{N: n, WordsPerPair: wpp}, func(nd *clique.Node) {
		BroadcastBitRows(nd, bitvec.NewRow(bits), bits)
	})
	for backend, r := range res {
		if r.Stats.Rounds != 3 {
			t.Errorf("%s: rounds = %d, want 3", backend, r.Stats.Rounds)
		}
	}
}

func TestBroadcastBitRowsInto(t *testing.T) {
	// The Into form must fill a caller-carved table without surprises
	// and leave each row at exactly the packed width.
	const n, bits = 5, 100
	w := bitvec.Words(bits)
	runBoth(t, clique.Config{N: n}, func(nd *clique.Node) {
		buf := make([]uint64, n*w)
		table := make([]bitvec.Row, n)
		for i := range table {
			table[i] = bitvec.Row(buf[i*w : i*w : (i+1)*w])
		}
		got := BroadcastBitRowsInto(nd, testRow(nd.ID(), bits), bits, table)
		for p := 0; p < n; p++ {
			if len(got[p]) != w || !got[p].Equal(testRow(p, bits)) {
				nd.Fail("row from %d corrupted in Into table", p)
			}
		}
	})
}

func TestGatherBits(t *testing.T) {
	const n, bits, root = 7, 90, 3
	runBoth(t, clique.Config{N: n, WordsPerPair: 2}, func(nd *clique.Node) {
		table := GatherBits(nd, root, testRow(nd.ID(), bits), bits)
		if nd.ID() != root {
			if table != nil {
				nd.Fail("non-root got a gather table")
			}
			return
		}
		for p := 0; p < n; p++ {
			if !table[p].Equal(testRow(p, bits)) {
				nd.Fail("gathered row from %d corrupted", p)
			}
		}
	})
}

func TestAllToAllBits(t *testing.T) {
	const n, bits = 6, 70
	res := runBoth(t, clique.Config{N: n, WordsPerPair: 1}, func(nd *clique.Node) {
		me := nd.ID()
		rows := make([]bitvec.Row, n)
		for v := range rows {
			rows[v] = testRow(me*n+v, bits)
		}
		in := AllToAllBits(nd, rows, bits)
		for p := 0; p < n; p++ {
			if !in[p].Equal(testRow(p*n+me, bits)) {
				nd.Fail("packed row from %d corrupted", p)
			}
		}
	})
	want := bitvec.Words(bits) // 2 words at wpp 1, no agreement round
	for backend, r := range res {
		if r.Stats.Rounds != want {
			t.Errorf("%s: rounds = %d, want %d", backend, r.Stats.Rounds, want)
		}
	}
}

func TestAllToAllFixedWidths(t *testing.T) {
	const n = 5
	for _, k := range []int{0, 1, 3, 8} {
		res := runBoth(t, clique.Config{N: n, WordsPerPair: 3}, func(nd *clique.Node) {
			me := nd.ID()
			out := make([][]uint64, n)
			for v := range out {
				out[v] = make([]uint64, k)
				for i := range out[v] {
					out[v][i] = uint64(me*1000 + v*10 + i)
				}
			}
			in := AllToAllFixed(nd, out, k)
			for p := 0; p < n; p++ {
				for i := 0; i < k; i++ {
					if in[p][i] != uint64(p*1000+me*10+i) {
						nd.Fail("word %d from %d = %d", i, p, in[p][i])
					}
				}
			}
		})
		want := (k + 2) / 3
		for backend, r := range res {
			if r.Stats.Rounds != want {
				t.Errorf("%s k=%d: rounds = %d, want %d", backend, k, r.Stats.Rounds, want)
			}
		}
	}
}

// TestPackedCollectiveBackendEquivalence drives the packed collectives
// in one node program on both backends and requires bit-identical
// outputs, Stats, and transcripts — the same contract the scalar
// collectives carry, extended to the packed plane.
func TestPackedCollectiveBackendEquivalence(t *testing.T) {
	const n, bits = 6, 77
	type snapshot struct {
		stats       clique.Stats
		transcripts string
		outputs     string
	}
	shots := map[string]snapshot{}
	for _, backend := range clique.Backends() {
		outputs := make([]string, n)
		res, err := clique.Run(clique.Config{N: n, WordsPerPair: 2, Backend: backend, RecordTranscript: true},
			func(nd *clique.Node) {
				me := nd.ID()
				var log []any
				log = append(log, BroadcastBitRows(nd, testRow(me, bits), bits))
				log = append(log, GatherBits(nd, 1, testRow(me+2, bits), bits))
				rows := make([]bitvec.Row, n)
				for v := range rows {
					rows[v] = testRow(me^v, bits)
				}
				log = append(log, AllToAllBits(nd, rows, bits))
				out := make([][]uint64, n)
				for v := range out {
					out[v] = []uint64{uint64(me), uint64(v), uint64(me * v)}
				}
				log = append(log, AllToAllFixed(nd, out, 3))
				outputs[me] = fmt.Sprintf("%v", log)
			})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		var trs []string
		for _, tr := range res.Transcripts {
			trs = append(trs, fmt.Sprintf("%d:%v", tr.NodeID, tr.Rounds))
		}
		shots[backend] = snapshot{
			stats:       res.Stats,
			transcripts: fmt.Sprintf("%v", trs),
			outputs:     fmt.Sprintf("%v", outputs),
		}
	}
	ref := shots[clique.Backends()[0]]
	for backend, s := range shots {
		if s.stats != ref.stats {
			t.Errorf("%s stats = %+v, reference %+v", backend, s.stats, ref.stats)
		}
		if s.outputs != ref.outputs {
			t.Errorf("%s packed collective outputs diverge from reference", backend)
		}
		if s.transcripts != ref.transcripts {
			t.Errorf("%s packed collective transcripts diverge from reference", backend)
		}
	}
}
