package comm

import (
	"repro/internal/clique"
	"repro/internal/trace"
)

// The sparse collectives: communication whose cost is O(words actually
// sent), not O(n) per round. The dense vocabulary above always pays
// the full table — every BroadcastAll costs n·k words per node whether
// or not a node has anything to say. The message-frugal algorithms
// (Pemmaraju–Sardeshmukh o(m)-message MST, sampled-sketch protocols)
// need silence to be free, which the simulator already grants: an
// empty link carries zero words and costs nothing. What the sparse
// collectives add is the agreement structure — fixed round counts all
// nodes can compute locally — so sparsity never buys a divergent
// schedule across backends.

// Msg is one sparse point-to-point payload.
type Msg struct {
	To    int
	Words []uint64
}

// SendToFew delivers every node's sparse message list, costing only
// the words actually sent. All nodes must pass the same rounds value
// (it is the agreement that keeps lockstep and goroutine schedules
// identical), and rounds·wpp must bound every single message's length
// — at most one message per destination per call. Returns the
// received words indexed by sender; nil entries are silence. The
// receiver sees each message exactly as sent (chunking across rounds
// is reassembled).
func SendToFew(nd clique.Endpoint, msgs []Msg, rounds int) [][]uint64 {
	total := 0
	for _, m := range msgs {
		total += len(m.Words)
	}
	defer trace.Op(nd, "SendToFew", total)()
	n := nd.N()
	me := nd.ID()
	wpp := nd.WordsPerPair()
	if rounds < 1 {
		nd.Fail("comm: SendToFew rounds = %d, need >= 1", rounds)
	}
	seen := make([]bool, n)
	for _, m := range msgs {
		if m.To < 0 || m.To >= n || m.To == me {
			nd.Fail("comm: SendToFew message to %d from %d, need another node in 0..%d", m.To, me, n-1)
		}
		if seen[m.To] {
			nd.Fail("comm: SendToFew queued two messages for %d (contract is at most one)", m.To)
		}
		seen[m.To] = true
		if len(m.Words) > rounds*wpp {
			nd.Fail("comm: SendToFew message of %d words to %d exceeds %d rounds x %d wpp",
				len(m.Words), m.To, rounds, wpp)
		}
	}
	in := make([][]uint64, n)
	for r := 0; r < rounds; r++ {
		for _, m := range msgs {
			off := r * wpp
			if off < len(m.Words) {
				nd.SendWords(m.To, m.Words[off:chunkEnd(off, len(m.Words), wpp)])
			}
		}
		nd.Tick()
		for p := 0; p < n; p++ {
			if p != me && len(nd.Recv(p)) > 0 {
				in[p] = nd.RecvInto(p, in[p])
			}
		}
	}
	return in
}

// SampledBroadcast is a broadcast only the sampled nodes pay for:
// nodes with active == true broadcast exactly k words, silent nodes
// send nothing, and every node learns which peers spoke and what they
// said. Takes ceil(k / wpp) rounds regardless of how many nodes are
// active — the fixed schedule is the cross-backend agreement — but
// the word cost is (n-1)·k per active node and zero per silent node.
// Returns the payload table indexed by sender; nil entries were
// silent (own entry filled when active).
func SampledBroadcast(nd clique.Endpoint, words []uint64, k int, active bool) [][]uint64 {
	cost := 0
	if active {
		cost = k
	}
	defer trace.Op(nd, "SampledBroadcast", cost)()
	if k < 1 {
		nd.Fail("comm: SampledBroadcast k = %d, need >= 1", k)
	}
	if active && len(words) != k {
		nd.Fail("comm: SampledBroadcast active with %d words, contract is exactly k=%d", len(words), k)
	}
	n := nd.N()
	me := nd.ID()
	wpp := nd.WordsPerPair()
	in := make([][]uint64, n)
	if active {
		in[me] = append(in[me], words...)
	}
	for off := 0; off < k; off += wpp {
		if active {
			nd.BroadcastWords(words[off:chunkEnd(off, k, wpp)])
		}
		nd.Tick()
		for p := 0; p < n; p++ {
			if p != me && len(nd.Recv(p)) > 0 {
				in[p] = nd.RecvInto(p, in[p])
			}
		}
	}
	for p := 0; p < n; p++ {
		if got := len(in[p]); got != 0 && got != k {
			nd.Fail("comm: SampledBroadcast received %d words from %d, want 0 or k=%d", got, p, k)
		}
	}
	return in
}

// GatherSparse collects at most one k-word payload per node at root,
// costing only the active nodes' words: nodes pass their payload (or
// nil to stay silent), and after ceil(k / wpp) rounds the root holds
// the table indexed by sender (nil entries were silent; the root's
// own payload included). Non-root nodes get a table holding only
// their own entry. The sparse counterpart of Gather, which always
// moves n·k words.
func GatherSparse(nd clique.Endpoint, root int, words []uint64, k int) [][]uint64 {
	defer trace.Op(nd, "GatherSparse", len(words))()
	if k < 1 {
		nd.Fail("comm: GatherSparse k = %d, need >= 1", k)
	}
	n := nd.N()
	me := nd.ID()
	if root < 0 || root >= n {
		nd.Fail("comm: GatherSparse root = %d, need 0..%d", root, n-1)
	}
	if words != nil && len(words) != k {
		nd.Fail("comm: GatherSparse active with %d words, contract is exactly k=%d", len(words), k)
	}
	wpp := nd.WordsPerPair()
	in := make([][]uint64, n)
	if words != nil {
		in[me] = append(in[me], words...)
	}
	for off := 0; off < k; off += wpp {
		if words != nil && me != root {
			nd.SendWords(root, words[off:chunkEnd(off, k, wpp)])
		}
		nd.Tick()
		if me == root {
			for p := 0; p < n; p++ {
				if p != me && len(nd.Recv(p)) > 0 {
					in[p] = nd.RecvInto(p, in[p])
				}
			}
		}
	}
	if me == root {
		for p := 0; p < n; p++ {
			if got := len(in[p]); got != 0 && got != k {
				nd.Fail("comm: GatherSparse received %d words from %d, want 0 or k=%d", got, p, k)
			}
		}
	}
	return in
}
