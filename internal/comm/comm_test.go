package comm

import (
	"fmt"
	"math/rand/v2"
	"reflect"
	"sort"
	"testing"

	"repro/internal/clique"
)

// runBoth executes the node program on every backend and requires
// identical model Stats; it returns the per-backend results keyed by
// backend name. Collectives must be bit-equivalent across engines —
// that is the contract that lets algorithm packages ignore the backend.
func runBoth(t *testing.T, cfg clique.Config, f clique.NodeFunc) map[string]*clique.Result {
	t.Helper()
	out := map[string]*clique.Result{}
	for _, backend := range clique.Backends() {
		cfg := cfg
		cfg.Backend = backend
		res, err := clique.Run(cfg, f)
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		out[backend] = res
	}
	ref := out[clique.Backends()[0]]
	for name, res := range out {
		if res.Stats != ref.Stats {
			t.Fatalf("stats diverge across backends: %s %+v vs %+v", name, res.Stats, ref.Stats)
		}
	}
	return out
}

func TestBroadcastAll(t *testing.T) {
	const n, k = 6, 5
	for _, backend := range clique.Backends() {
		tables := make([][][]uint64, n)
		res, err := clique.Run(clique.Config{N: n, Backend: backend}, func(nd *clique.Node) {
			words := make([]uint64, k)
			for i := range words {
				words[i] = uint64(nd.ID()*100 + i)
			}
			tables[nd.ID()] = BroadcastAll(nd, words, k)
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Rounds != k {
			t.Errorf("%s: BroadcastAll rounds = %d, want %d", backend, res.Stats.Rounds, k)
		}
		for v := 0; v < n; v++ {
			for p := 0; p < n; p++ {
				for i := 0; i < k; i++ {
					if tables[v][p][i] != uint64(p*100+i) {
						t.Fatalf("%s: node %d table[%d][%d] = %d", backend, v, p, i, tables[v][p][i])
					}
				}
			}
		}
	}
}

func TestBroadcastAllChunksAgainstBudget(t *testing.T) {
	const n, k = 4, 6
	res := runBoth(t, clique.Config{N: n, WordsPerPair: 3}, func(nd *clique.Node) {
		BroadcastAll(nd, make([]uint64, k), k)
	})
	for backend, r := range res {
		if r.Stats.Rounds != 2 { // ceil(6/3)
			t.Errorf("%s: rounds = %d, want 2", backend, r.Stats.Rounds)
		}
	}
}

func TestReductions(t *testing.T) {
	const n = 7
	runBoth(t, clique.Config{N: n}, func(nd *clique.Node) {
		if got := MaxWord(nd, uint64(nd.ID()*3)); got != 3*(n-1) {
			nd.Fail("MaxWord = %d", got)
		}
		if got := SumWord(nd, uint64(nd.ID())); got != n*(n-1)/2 {
			nd.Fail("SumWord = %d", got)
		}
		if !OrBool(nd, nd.ID() == 3) {
			nd.Fail("OrBool missed the one true vote")
		}
		if OrBool(nd, false) {
			nd.Fail("OrBool invented a vote")
		}
		if AndBool(nd, nd.ID() != 3) {
			nd.Fail("AndBool missed the one false vote")
		}
		if !AndBool(nd, true) {
			nd.Fail("AndBool rejected unanimity")
		}
	})
}

func TestBroadcastWordOK(t *testing.T) {
	const n = 5
	runBoth(t, clique.Config{N: n}, func(nd *clique.Node) {
		words, ok := BroadcastWordOK(nd, uint64(nd.ID()+10))
		for p := 0; p < n; p++ {
			if !ok[p] || words[p] != uint64(p+10) {
				nd.Fail("peer %d: ok=%v words=%d", p, ok[p], words[p])
			}
		}
	})
}

func TestFlags(t *testing.T) {
	const n = 8
	runBoth(t, clique.Config{N: n}, func(nd *clique.Node) {
		got := Flags(nd, nd.ID()%3 == 0)
		for p := 0; p < n; p++ {
			if got[p] != (p%3 == 0) {
				nd.Fail("flag of %d = %v", p, got[p])
			}
		}
	})
}

func TestFlagsCostsNothingWhenSilent(t *testing.T) {
	const n = 6
	res := runBoth(t, clique.Config{N: n}, func(nd *clique.Node) {
		Flags(nd, false)
	})
	for backend, r := range res {
		if r.Stats.WordsSent != 0 {
			t.Errorf("%s: silent Flags sent %d words", backend, r.Stats.WordsSent)
		}
		if r.Stats.Rounds != 1 {
			t.Errorf("%s: Flags rounds = %d, want 1", backend, r.Stats.Rounds)
		}
	}
}

func TestBroadcastRounds(t *testing.T) {
	const n, rounds = 5, 4
	res := runBoth(t, clique.Config{N: n}, func(nd *clique.Node) {
		// Node v broadcasts min(v+1, rounds) words; everyone
		// reconstructs everyone.
		words := make([]uint64, min(nd.ID()+1, rounds))
		for i := range words {
			words[i] = uint64(nd.ID()*10 + i)
		}
		seen := make(map[[2]int]uint64)
		BroadcastRounds(nd, words, rounds, func(r, from int, w uint64) {
			seen[[2]int{r, from}] = w
		})
		for from := 0; from < n; from++ {
			if from == nd.ID() {
				continue
			}
			for r := 0; r < rounds; r++ {
				w, there := seen[[2]int{r, from}]
				if r < min(from+1, rounds) {
					if !there || w != uint64(from*10+r) {
						nd.Fail("round %d from %d: got %d (present %v)", r, from, w, there)
					}
				} else if there {
					nd.Fail("round %d from %d: unexpected word %d", r, from, w)
				}
			}
		}
	})
	for backend, r := range res {
		if r.Stats.Rounds != rounds {
			t.Errorf("%s: rounds = %d, want %d", backend, r.Stats.Rounds, rounds)
		}
	}
}

func TestBroadcastFromChunks(t *testing.T) {
	const n, k, wpp = 6, 7, 3
	res := runBoth(t, clique.Config{N: n, WordsPerPair: wpp}, func(nd *clique.Node) {
		const root = 2
		var words []uint64
		if nd.ID() == root {
			words = make([]uint64, k)
			for i := range words {
				words[i] = uint64(1000 + i)
			}
		}
		got := BroadcastFrom(nd, root, words, k)
		if len(got) != k {
			nd.Fail("got %d words", len(got))
		}
		for i, w := range got {
			if w != uint64(1000+i) {
				nd.Fail("word %d = %d", i, w)
			}
		}
	})
	for backend, r := range res {
		if want := (k + wpp - 1) / wpp; r.Stats.Rounds != want {
			t.Errorf("%s: rounds = %d, want %d", backend, r.Stats.Rounds, want)
		}
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	const n, k, wpp = 5, 5, 2
	res := runBoth(t, clique.Config{N: n, WordsPerPair: wpp}, func(nd *clique.Node) {
		const root = 1
		words := make([]uint64, k)
		for i := range words {
			words[i] = uint64(nd.ID()*100 + i)
		}
		table := Gather(nd, root, words, k)
		if nd.ID() != root {
			if table != nil {
				nd.Fail("non-root got a gather table")
			}
		} else {
			for p := 0; p < n; p++ {
				for i := 0; i < k; i++ {
					if table[p][i] != uint64(p*100+i) {
						nd.Fail("gather table[%d][%d] = %d", p, i, table[p][i])
					}
				}
			}
		}
		// Scatter the gathered table straight back; every node must
		// recover its own contribution.
		back := Scatter(nd, root, table, k)
		for i, w := range back {
			if w != words[i] {
				nd.Fail("scatter word %d = %d, want %d", i, w, words[i])
			}
		}
	})
	for backend, r := range res {
		if want := 2 * ((k + wpp - 1) / wpp); r.Stats.Rounds != want {
			t.Errorf("%s: rounds = %d, want %d", backend, r.Stats.Rounds, want)
		}
	}
}

func TestAllToAllWord(t *testing.T) {
	const n = 6
	runBoth(t, clique.Config{N: n}, func(nd *clique.Node) {
		out := make([]uint64, n)
		for v := range out {
			out[v] = uint64(nd.ID()*n + v)
		}
		in, ok := AllToAllWord(nd, out)
		for p := 0; p < n; p++ {
			if !ok[p] || in[p] != uint64(p*n+nd.ID()) {
				nd.Fail("from %d: ok=%v in=%d", p, ok[p], in[p])
			}
		}
	})
}

func TestAllToAllStreams(t *testing.T) {
	// Raw stream exchange: node v owes each peer p the words
	// [v, p, v*p]; verify exact delivery across backends.
	const n = 5
	runBoth(t, clique.Config{N: n, WordsPerPair: 2}, func(nd *clique.Node) {
		queues := make([][]uint64, n)
		for p := 0; p < n; p++ {
			if p != nd.ID() {
				queues[p] = []uint64{uint64(nd.ID()), uint64(p), uint64(nd.ID() * p)}
			}
		}
		in := AllToAll(nd, queues)
		for p := 0; p < n; p++ {
			if p == nd.ID() {
				continue
			}
			want := []uint64{uint64(p), uint64(nd.ID()), uint64(p * nd.ID())}
			if !reflect.DeepEqual(in[p], want) {
				nd.Fail("stream from %d = %v, want %v", p, in[p], want)
			}
		}
	})
}

func TestBroadcastBitsRoundTrip(t *testing.T) {
	const n, k = 9, 23
	for _, backend := range clique.Backends() {
		tables := make([][][]bool, n)
		res, err := clique.Run(clique.Config{N: n, Backend: backend}, func(nd *clique.Node) {
			bits := make([]bool, k)
			for i := range bits {
				bits[i] = (nd.ID()+i)%3 == 0
			}
			tables[nd.ID()] = BroadcastBits(nd, bits)
		})
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < n; v++ {
			for p := 0; p < n; p++ {
				for i := 0; i < k; i++ {
					if tables[v][p][i] != ((p+i)%3 == 0) {
						t.Fatalf("%s: node %d sees wrong bit %d of %d", backend, v, i, p)
					}
				}
			}
		}
		// Round count: ceil(k / WordBits(n)) at one word per pair.
		want := (k + clique.WordBits(n) - 1) / clique.WordBits(n)
		if res.Stats.Rounds != want {
			t.Errorf("%s: rounds = %d, want %d", backend, res.Stats.Rounds, want)
		}
	}
}

// routeInstance runs Route on a random (s, r)-style instance on every
// backend and checks exact multiset delivery plus cross-backend Stats.
func routeInstance(t *testing.T, n, perNode int, skewed bool, seed uint64) *clique.Result {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 99))
	sentTo := make([][][2]uint64, n) // per destination: (src, tag)
	instance := make([][]Packet, n)
	for v := 0; v < n; v++ {
		for i := 0; i < perNode; i++ {
			dst := rng.IntN(n)
			if skewed {
				dst = (v + 1) % n // everyone floods one neighbour pattern
			}
			if dst == v {
				dst = (dst + 1) % n
			}
			tag := uint64(v*1000 + i)
			instance[v] = append(instance[v], Packet{Dst: dst, Payload: []uint64{tag}})
			sentTo[dst] = append(sentTo[dst], [2]uint64{uint64(v), tag})
		}
	}
	var ref *clique.Result
	got := make([][]Packet, n)
	res := runBoth(t, clique.Config{N: n, WordsPerPair: 4}, func(nd *clique.Node) {
		got[nd.ID()] = Route(nd, instance[nd.ID()], 1, 42)
	})
	for v := 0; v < n; v++ {
		if len(got[v]) != len(sentTo[v]) {
			t.Fatalf("node %d received %d packets, want %d", v, len(got[v]), len(sentTo[v]))
		}
		want := append([][2]uint64(nil), sentTo[v]...)
		have := make([][2]uint64, len(got[v]))
		for i, p := range got[v] {
			have[i] = [2]uint64{uint64(p.Src), p.Payload[0]}
		}
		sortPairs(want)
		sortPairs(have)
		for i := range want {
			if want[i] != have[i] {
				t.Fatalf("node %d delivery mismatch: got %v want %v", v, have[i], want[i])
			}
		}
	}
	for _, r := range res {
		ref = r
	}
	return ref
}

func sortPairs(ps [][2]uint64) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i][0] != ps[j][0] {
			return ps[i][0] < ps[j][0]
		}
		return ps[i][1] < ps[j][1]
	})
}

func TestRouteUniform(t *testing.T) {
	routeInstance(t, 8, 10, false, 1)
}

func TestRouteSkewed(t *testing.T) {
	routeInstance(t, 8, 10, true, 2)
}

func TestRouteEmpty(t *testing.T) {
	const n = 5
	runBoth(t, clique.Config{N: n}, func(nd *clique.Node) {
		if out := Route(nd, nil, 1, 7); len(out) != 0 {
			nd.Fail("empty route returned %d packets", len(out))
		}
	})
}

func TestRouteSelfAddressed(t *testing.T) {
	const n = 4
	runBoth(t, clique.Config{N: n, WordsPerPair: 4}, func(nd *clique.Node) {
		out := Route(nd, []Packet{{Dst: nd.ID(), Payload: []uint64{uint64(nd.ID())}}}, 1, 3)
		if len(out) != 1 || out[0].Payload[0] != uint64(nd.ID()) || out[0].Src != nd.ID() {
			nd.Fail("self-route failed: %v", out)
		}
	})
}

func TestRouteWidePayload(t *testing.T) {
	const n = 5
	runBoth(t, clique.Config{N: n, WordsPerPair: 2}, func(nd *clique.Node) {
		var ps []Packet
		for dst := 0; dst < n; dst++ {
			if dst != nd.ID() {
				ps = append(ps, Packet{Dst: dst, Payload: []uint64{uint64(nd.ID()), uint64(dst), 7}})
			}
		}
		out := Route(nd, ps, 3, 11)
		if len(out) != n-1 {
			nd.Fail("got %d packets, want %d", len(out), n-1)
		}
		for _, p := range out {
			if p.Payload[0] != uint64(p.Src) || p.Payload[1] != uint64(nd.ID()) || p.Payload[2] != 7 {
				nd.Fail("corrupted payload %v from %d", p.Payload, p.Src)
			}
		}
	})
}

func TestRouteScalesWithLoad(t *testing.T) {
	// Doubling the per-node load should roughly double the rounds, the
	// O(s + r) regime of Lenzen's theorem.
	r1 := routeInstance(t, 8, 8, false, 3).Stats.Rounds
	r2 := routeInstance(t, 8, 32, false, 3).Stats.Rounds
	if r2 < 2*r1/2 || r2 > 12*r1 {
		t.Errorf("rounds did not scale plausibly with load: %d -> %d", r1, r2)
	}
}

func TestDirectVsBalancedOnSkew(t *testing.T) {
	// Adversarial-for-direct instance: node 0 sends L packets all to
	// node 1. Direct routing needs ~L rounds on the single link; the
	// balanced router spreads phase 1 across n intermediates.
	const n, L = 16, 64
	run := func(balanced bool) int {
		var rounds int
		for _, r := range runBoth(t, clique.Config{N: n, WordsPerPair: 4}, func(nd *clique.Node) {
			var ps []Packet
			if nd.ID() == 0 {
				for i := 0; i < L; i++ {
					ps = append(ps, Packet{Dst: 1, Payload: []uint64{uint64(i)}})
				}
			}
			var got []Packet
			if balanced {
				got = Route(nd, ps, 1, 5)
			} else {
				got = RouteDirect(nd, ps, 1)
			}
			if nd.ID() == 1 && len(got) != L {
				nd.Fail("node 1 got %d packets, want %d", len(got), L)
			}
		}) {
			rounds = r.Stats.Rounds
		}
		return rounds
	}
	direct, bal := run(false), run(true)
	if bal >= direct {
		t.Errorf("balanced router (%d rounds) not better than direct (%d rounds) on skewed instance", bal, direct)
	}
}

// TestCollectiveBackendEquivalence drives every collective in one node
// program on both backends and requires bit-identical outputs, Stats,
// and transcripts — the contract the migrated algorithm suite rests on.
func TestCollectiveBackendEquivalence(t *testing.T) {
	const n = 6
	type snapshot struct {
		stats       clique.Stats
		transcripts string
		outputs     string
	}
	shots := map[string]snapshot{}
	for _, backend := range clique.Backends() {
		outputs := make([]string, n)
		res, err := clique.Run(clique.Config{N: n, WordsPerPair: 3, Backend: backend, RecordTranscript: true},
			func(nd *clique.Node) {
				me := nd.ID()
				var log []any

				table := BroadcastAll(nd, []uint64{uint64(me), uint64(me * 2), uint64(me * 3)}, 3)
				log = append(log, table)
				log = append(log, BroadcastWord(nd, uint64(me+7)))
				log = append(log, MaxWord(nd, uint64(me*me)))
				log = append(log, SumWord(nd, uint64(me)))
				log = append(log, Flags(nd, me%2 == 0))
				words := make([]uint64, me%3)
				for i := range words {
					words[i] = uint64(me*100 + i)
				}
				heard := map[string]uint64{}
				BroadcastRounds(nd, words, 2, func(r, from int, w uint64) {
					heard[fmt.Sprintf("%d/%d", r, from)] = w
				})
				log = append(log, heard)
				var wit []uint64
				if me == 1 {
					wit = []uint64{3, 1, 4, 1, 5}
				}
				log = append(log, BroadcastFrom(nd, 1, wit, 5))
				mine := []uint64{uint64(me), uint64(me + 1)}
				log = append(log, Gather(nd, 0, mine, 2))
				var parts [][]uint64
				if me == 0 {
					parts = make([][]uint64, n)
					for v := range parts {
						parts[v] = []uint64{uint64(v * 11)}
					}
				}
				log = append(log, Scatter(nd, 0, parts, 1))
				out := make([]uint64, n)
				for v := range out {
					out[v] = uint64(me ^ v)
				}
				in, _ := AllToAllWord(nd, out)
				log = append(log, in)
				queues := make([][]uint64, n)
				for p := 0; p < n; p++ {
					if p != me {
						for j := 0; j < (me+p)%4; j++ {
							queues[p] = append(queues[p], uint64(me*1000+p*10+j))
						}
					}
				}
				log = append(log, AllToAll(nd, queues))
				log = append(log, Route(nd, []Packet{{Dst: (me + 1) % n, Payload: []uint64{uint64(me), 9}}}, 2, 77))
				outputs[me] = fmt.Sprintf("%v", log)
			})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		var trs []string
		for _, tr := range res.Transcripts {
			trs = append(trs, fmt.Sprintf("%d:%v", tr.NodeID, tr.Rounds))
		}
		shots[backend] = snapshot{
			stats:       res.Stats,
			transcripts: fmt.Sprintf("%v", trs),
			outputs:     fmt.Sprintf("%v", outputs),
		}
	}
	ref := shots[clique.Backends()[0]]
	for backend, s := range shots {
		if s.stats != ref.stats {
			t.Errorf("%s stats = %+v, reference %+v", backend, s.stats, ref.stats)
		}
		if s.outputs != ref.outputs {
			t.Errorf("%s collective outputs diverge from reference", backend)
		}
		if s.transcripts != ref.transcripts {
			t.Errorf("%s transcripts diverge from reference", backend)
		}
	}
}
