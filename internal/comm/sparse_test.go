package comm

import (
	"fmt"
	"testing"

	"repro/internal/clique"
)

func TestSendToFewDelivers(t *testing.T) {
	const n = 6
	for _, backend := range clique.Backends() {
		got := make([][][]uint64, n)
		res, err := clique.Run(clique.Config{N: n, WordsPerPair: 2, Backend: backend}, func(nd *clique.Node) {
			me := nd.ID()
			// Node v messages v+1 mod n with a (v+1)-word payload and,
			// when even, node 0 with one word. Sparse: most links idle.
			var msgs []Msg
			words := make([]uint64, me+1)
			for i := range words {
				words[i] = uint64(me*100 + i)
			}
			if dst := (me + 1) % n; dst != me {
				msgs = append(msgs, Msg{To: dst, Words: words})
			}
			if me%2 == 0 && me != 0 {
				msgs = append(msgs, Msg{To: 0, Words: []uint64{uint64(me)}})
			}
			got[me] = SendToFew(nd, msgs, 3)
		})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if res.Stats.Rounds != 3 {
			t.Errorf("%s: rounds = %d, want 3", backend, res.Stats.Rounds)
		}
		for v := 0; v < n; v++ {
			src := (v + n - 1) % n
			want := make([]uint64, src+1)
			for i := range want {
				want[i] = uint64(src*100 + i)
			}
			if fmt.Sprintf("%v", got[v][src]) != fmt.Sprintf("%v", want) {
				t.Fatalf("%s: node %d got %v from %d, want %v", backend, v, got[v][src], src, want)
			}
			for p := 0; p < n; p++ {
				if p == src || p == v {
					continue
				}
				if v == 0 && p%2 == 0 && p != 0 {
					if len(got[0][p]) != 1 || got[0][p][0] != uint64(p) {
						t.Fatalf("%s: node 0 got %v from %d", backend, got[0][p], p)
					}
					continue
				}
				if got[v][p] != nil {
					t.Fatalf("%s: node %d heard silent peer %d: %v", backend, v, p, got[v][p])
				}
			}
		}
	}
}

// TestSendToFewCostsOnlyMessages pins the sparse cost model: total
// words sent equals the words queued, not n² per round.
func TestSendToFewCostsOnlyMessages(t *testing.T) {
	const n = 16
	res := runBoth(t, clique.Config{N: n, WordsPerPair: 4}, func(nd *clique.Node) {
		var msgs []Msg
		if nd.ID() == 3 {
			msgs = append(msgs, Msg{To: 7, Words: []uint64{1, 2, 3, 4, 5}})
		}
		SendToFew(nd, msgs, 2)
	})
	for backend, r := range res {
		if r.Stats.WordsSent != 5 {
			t.Errorf("%s: WordsSent = %d, want 5 (only the queued message)", backend, r.Stats.WordsSent)
		}
		if r.Stats.Rounds != 2 {
			t.Errorf("%s: rounds = %d, want 2", backend, r.Stats.Rounds)
		}
	}
}

func TestSampledBroadcast(t *testing.T) {
	const n, k = 8, 5
	for _, backend := range clique.Backends() {
		got := make([][][]uint64, n)
		res, err := clique.Run(clique.Config{N: n, WordsPerPair: 2, Backend: backend}, func(nd *clique.Node) {
			me := nd.ID()
			active := me%3 == 0
			var words []uint64
			if active {
				words = make([]uint64, k)
				for i := range words {
					words[i] = uint64(me*10 + i)
				}
			}
			got[me] = SampledBroadcast(nd, words, k, active)
		})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if want := (k + 1) / 2; res.Stats.Rounds != want {
			t.Errorf("%s: rounds = %d, want %d", backend, res.Stats.Rounds, want)
		}
		for v := 0; v < n; v++ {
			for p := 0; p < n; p++ {
				if p%3 == 0 {
					if len(got[v][p]) != k || got[v][p][0] != uint64(p*10) {
						t.Fatalf("%s: node %d table[%d] = %v", backend, v, p, got[v][p])
					}
				} else if got[v][p] != nil {
					t.Fatalf("%s: node %d heard silent peer %d", backend, v, p)
				}
			}
		}
	}
}

// TestSampledBroadcastSilenceIsFree: zero active nodes, zero words.
func TestSampledBroadcastSilenceIsFree(t *testing.T) {
	res := runBoth(t, clique.Config{N: 8}, func(nd *clique.Node) {
		SampledBroadcast(nd, nil, 4, false)
	})
	for backend, r := range res {
		if r.Stats.WordsSent != 0 {
			t.Errorf("%s: WordsSent = %d, want 0", backend, r.Stats.WordsSent)
		}
	}
}

func TestGatherSparse(t *testing.T) {
	const n, k, root = 9, 3, 2
	for _, backend := range clique.Backends() {
		var atRoot [][]uint64
		res, err := clique.Run(clique.Config{N: n, WordsPerPair: 1, Backend: backend}, func(nd *clique.Node) {
			me := nd.ID()
			var words []uint64
			if me%2 == 0 {
				words = []uint64{uint64(me), uint64(me + 1), uint64(me + 2)}
			}
			table := GatherSparse(nd, root, words, k)
			if me == root {
				atRoot = table
			}
		})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if res.Stats.Rounds != k {
			t.Errorf("%s: rounds = %d, want %d", backend, res.Stats.Rounds, k)
		}
		// Word cost: the 4 active non-root senders (root's own entry is
		// free), k words each.
		if want := int64(4 * k); res.Stats.WordsSent != want {
			t.Errorf("%s: WordsSent = %d, want %d", backend, res.Stats.WordsSent, want)
		}
		for p := 0; p < n; p++ {
			if p%2 == 0 {
				if len(atRoot[p]) != k || atRoot[p][0] != uint64(p) {
					t.Fatalf("%s: root table[%d] = %v", backend, p, atRoot[p])
				}
			} else if atRoot[p] != nil {
				t.Fatalf("%s: root heard silent node %d", backend, p)
			}
		}
	}
}

// TestSparseCollectiveBackendEquivalence is the transcript-level
// cross-backend gate for the sparse collectives, mirroring
// TestCollectiveBackendEquivalence for the dense ones.
func TestSparseCollectiveBackendEquivalence(t *testing.T) {
	const n = 7
	type snapshot struct {
		stats       clique.Stats
		transcripts string
		outputs     string
	}
	shots := map[string]snapshot{}
	for _, backend := range clique.Backends() {
		outputs := make([]string, n)
		res, err := clique.Run(clique.Config{N: n, WordsPerPair: 2, Backend: backend, RecordTranscript: true},
			func(nd *clique.Node) {
				me := nd.ID()
				var log []any
				var msgs []Msg
				for p := 0; p < n; p++ {
					if p != me && (me+p)%3 == 0 {
						msgs = append(msgs, Msg{To: p, Words: []uint64{uint64(me*100 + p), uint64(p)}})
					}
				}
				log = append(log, SendToFew(nd, msgs, 2))
				var words []uint64
				if me%2 == 1 {
					words = []uint64{uint64(me), uint64(me * me), uint64(me + 42)}
				}
				log = append(log, SampledBroadcast(nd, words, 3, me%2 == 1))
				var pay []uint64
				if me >= n/2 {
					pay = []uint64{uint64(me * 7)}
				}
				log = append(log, GatherSparse(nd, 0, pay, 1))
				outputs[me] = fmt.Sprintf("%v", log)
			})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		var trs []string
		for _, tr := range res.Transcripts {
			trs = append(trs, fmt.Sprintf("%d:%v", tr.NodeID, tr.Rounds))
		}
		shots[backend] = snapshot{
			stats:       res.Stats,
			transcripts: fmt.Sprintf("%v", trs),
			outputs:     fmt.Sprintf("%v", outputs),
		}
	}
	ref := shots[clique.Backends()[0]]
	for backend, s := range shots {
		if s.stats != ref.stats {
			t.Errorf("%s stats = %+v, reference %+v", backend, s.stats, ref.stats)
		}
		if s.outputs != ref.outputs {
			t.Errorf("%s sparse collective outputs diverge from reference", backend)
		}
		if s.transcripts != ref.transcripts {
			t.Errorf("%s transcripts diverge from reference", backend)
		}
	}
}
