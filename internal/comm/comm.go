package comm

import (
	"repro/internal/clique"
	"repro/internal/trace"
)

// chunk returns the half-open word range [off, end) of the round that
// starts at off when moving k words under a per-link budget of wpp.
func chunkEnd(off, k, wpp int) int {
	end := off + wpp
	if end > k {
		end = k
	}
	return end
}

// BroadcastAll has every node contribute exactly k words; it returns,
// at every node, the full table indexed by sender. Each node's own
// entry is a copy of its input. Takes ceil(k / wordsPerPair) rounds:
// optimal up to constants, since every node must receive (n-1)k words
// over n-1 links.
func BroadcastAll(nd clique.Endpoint, words []uint64, k int) [][]uint64 {
	defer trace.Op(nd, "BroadcastAll", k)()
	if len(words) != k {
		nd.Fail("comm: BroadcastAll given %d words, contract is exactly k=%d", len(words), k)
	}
	n := nd.N()
	me := nd.ID()
	out := make([][]uint64, n)
	for i := range out {
		out[i] = make([]uint64, 0, k)
	}
	out[me] = append(out[me], words...)

	wpp := nd.WordsPerPair()
	for off := 0; off < k; off += wpp {
		nd.BroadcastWords(words[off:chunkEnd(off, k, wpp)])
		nd.Tick()
		for p := 0; p < n; p++ {
			if p != me {
				out[p] = nd.RecvInto(p, out[p])
			}
		}
	}
	for p := 0; p < n; p++ {
		if len(out[p]) != k {
			nd.Fail("comm: BroadcastAll received %d words from %d, want %d", len(out[p]), p, k)
		}
	}
	return out
}

// BroadcastWord is BroadcastAll for a single word per node: one round,
// returning the flat table indexed by sender (own entry included).
func BroadcastWord(nd clique.Endpoint, w uint64) []uint64 {
	return BroadcastWordInto(nd, w, nil)
}

// BroadcastWordInto is BroadcastWord writing into a caller-provided
// table of length n (allocated when nil), so iterative protocols that
// broadcast every round reuse one buffer.
func BroadcastWordInto(nd clique.Endpoint, w uint64, into []uint64) []uint64 {
	defer trace.Op(nd, "BroadcastWord", 1)()
	n := nd.N()
	me := nd.ID()
	buf := nd.BroadcastBuf(1)
	buf[0] = w
	nd.Tick()
	if into == nil {
		into = make([]uint64, n)
	} else if len(into) != n {
		nd.Fail("comm: BroadcastWordInto table has %d entries, want n=%d", len(into), n)
	}
	into[me] = w
	for p := 0; p < n; p++ {
		if p == me {
			continue
		}
		got := nd.Recv(p)
		if len(got) != 1 {
			nd.Fail("comm: BroadcastWord received %d words from %d, want 1", len(got), p)
		}
		into[p] = got[0]
	}
	return into
}

// BroadcastWordOK is BroadcastWord for protocols whose peers may fail
// to deliver exactly one word (nondeterministic verifiers replayed
// against adversarial transcripts, for instance): instead of aborting,
// it reports per-sender whether exactly one word arrived. Entries with
// ok[p] == false hold zero.
func BroadcastWordOK(nd clique.Endpoint, w uint64) (words []uint64, ok []bool) {
	defer trace.Op(nd, "BroadcastWordOK", 1)()
	n := nd.N()
	me := nd.ID()
	buf := nd.BroadcastBuf(1)
	buf[0] = w
	nd.Tick()
	words = make([]uint64, n)
	ok = make([]bool, n)
	words[me], ok[me] = w, true
	for p := 0; p < n; p++ {
		if p == me {
			continue
		}
		if got := nd.Recv(p); len(got) == 1 {
			words[p], ok[p] = got[0], true
		}
	}
	return words, ok
}

// MaxWord computes the global maximum of one word per node in one round.
func MaxWord(nd clique.Endpoint, w uint64) uint64 {
	max := uint64(0)
	for _, x := range BroadcastWord(nd, w) {
		if x > max {
			max = x
		}
	}
	return max
}

// SumWord computes the global sum of one word per node in one round.
func SumWord(nd clique.Endpoint, w uint64) uint64 {
	total := uint64(0)
	for _, x := range BroadcastWord(nd, w) {
		total += x
	}
	return total
}

// OrBool computes the global OR of one bit per node in one round; every
// node returns the same decision, as the model requires.
func OrBool(nd clique.Endpoint, b bool) bool {
	return MaxWord(nd, clique.BoolWord(b)) != 0
}

// AndBool computes the global AND of one bit per node in one round.
func AndBool(nd clique.Endpoint, b bool) bool {
	return MaxWord(nd, clique.BoolWord(!b)) == 0
}

// Flags is the presence-coded announcement round: nodes with flag set
// broadcast a single word, the rest send nothing, and every node
// returns who announced (its own entry is its own flag). One round;
// only announcing nodes spend budget.
func Flags(nd clique.Endpoint, flag bool) []bool {
	defer trace.Op(nd, "Flags", 1)()
	n := nd.N()
	me := nd.ID()
	if flag {
		buf := nd.BroadcastBuf(1)
		buf[0] = 1
	}
	nd.Tick()
	got := make([]bool, n)
	got[me] = flag
	for p := 0; p < n; p++ {
		if p != me {
			got[p] = len(nd.Recv(p)) > 0
		}
	}
	return got
}

// BroadcastRounds runs exactly `rounds` one-word broadcast rounds: in
// round r, a node broadcasts words[r] if r < len(words) and stays
// silent otherwise, and `on` is invoked for every word received from a
// peer (the caller's own words are not echoed back). The fixed round
// count keeps yes- and no-instances indistinguishable by cost, the
// shape of the paper's kernelisation protocols (Theorem 11).
func BroadcastRounds(nd clique.Endpoint, words []uint64, rounds int, on func(round, from int, w uint64)) {
	defer trace.Op(nd, "BroadcastRounds", len(words))()
	n := nd.N()
	me := nd.ID()
	if len(words) > rounds {
		nd.Fail("comm: BroadcastRounds has %d words but only %d rounds", len(words), rounds)
	}
	for r := 0; r < rounds; r++ {
		if r < len(words) {
			buf := nd.BroadcastBuf(1)
			buf[0] = words[r]
		}
		nd.Tick()
		for p := 0; p < n; p++ {
			if p == me {
				continue
			}
			if got := nd.Recv(p); len(got) == 1 {
				on(r, p, got[0])
			}
		}
	}
}

// BroadcastFrom ships k words from node root to every node, in
// ceil(k / wordsPerPair) rounds. All nodes must agree on root and k;
// only the root's words argument is consulted (it must hold exactly k
// words), and every node returns the k words, the root its own slice.
func BroadcastFrom(nd clique.Endpoint, root int, words []uint64, k int) []uint64 {
	defer trace.Op(nd, "BroadcastFrom", k)()
	me := nd.ID()
	if root < 0 || root >= nd.N() {
		nd.Fail("comm: BroadcastFrom root %d out of range", root)
	}
	if me == root && len(words) != k {
		nd.Fail("comm: BroadcastFrom root holds %d words, contract is exactly k=%d", len(words), k)
	}
	wpp := nd.WordsPerPair()
	var out []uint64
	if me != root && k > 0 {
		out = make([]uint64, 0, k)
	}
	for off := 0; off < k; off += wpp {
		if me == root {
			nd.BroadcastWords(words[off:chunkEnd(off, k, wpp)])
		}
		nd.Tick()
		if me != root {
			out = nd.RecvInto(root, out)
		}
	}
	if me == root {
		return words
	}
	if len(out) != k {
		nd.Fail("comm: BroadcastFrom received %d words from root %d, want %d", len(out), root, k)
	}
	return out
}

// Gather collects exactly k words from every node at root, in
// ceil(k / wordsPerPair) rounds. The root returns the table indexed by
// sender (its own entry a copy of its input); other nodes return nil.
func Gather(nd clique.Endpoint, root int, words []uint64, k int) [][]uint64 {
	var into [][]uint64
	if nd.ID() == root {
		into = make([][]uint64, nd.N())
	}
	return GatherTo(nd, root, words, k, into)
}

// GatherTo is Gather appending into a caller-provided table (length n,
// entries may be pre-allocated and are appended to), so steady-state
// callers reuse their buffers. Only the root's `into` is consulted;
// non-root nodes return nil.
func GatherTo(nd clique.Endpoint, root int, words []uint64, k int, into [][]uint64) [][]uint64 {
	defer trace.Op(nd, "Gather", k)()
	n := nd.N()
	me := nd.ID()
	if root < 0 || root >= n {
		nd.Fail("comm: Gather root %d out of range", root)
	}
	if len(words) != k {
		nd.Fail("comm: Gather given %d words, contract is exactly k=%d", len(words), k)
	}
	if me == root {
		if len(into) != n {
			nd.Fail("comm: GatherTo table has %d entries, want n=%d", len(into), n)
		}
		into[me] = append(into[me], words...)
	}
	wpp := nd.WordsPerPair()
	for off := 0; off < k; off += wpp {
		if me != root {
			nd.SendWords(root, words[off:chunkEnd(off, k, wpp)])
		}
		nd.Tick()
		if me == root {
			for p := 0; p < n; p++ {
				if p != me {
					into[p] = nd.RecvInto(p, into[p])
				}
			}
		}
	}
	if me != root {
		return nil
	}
	return into
}

// Scatter distributes k words to every node from root: parts[v] is the
// k-word slice bound for node v (only the root's parts is consulted;
// parts[root] stays local). Takes ceil(k / wordsPerPair) rounds; every
// node returns its part, the root its own slice.
func Scatter(nd clique.Endpoint, root int, parts [][]uint64, k int) []uint64 {
	defer trace.Op(nd, "Scatter", k)()
	n := nd.N()
	me := nd.ID()
	if root < 0 || root >= n {
		nd.Fail("comm: Scatter root %d out of range", root)
	}
	if me == root {
		if len(parts) != n {
			nd.Fail("comm: Scatter has %d parts, want n=%d", len(parts), n)
		}
		for v, part := range parts {
			if len(part) != k {
				nd.Fail("comm: Scatter part for %d holds %d words, contract is exactly k=%d", v, len(part), k)
			}
		}
	}
	var out []uint64
	if me != root && k > 0 {
		out = make([]uint64, 0, k)
	}
	wpp := nd.WordsPerPair()
	for off := 0; off < k; off += wpp {
		if me == root {
			end := chunkEnd(off, k, wpp)
			for v := 0; v < n; v++ {
				if v != me {
					nd.SendWords(v, parts[v][off:end])
				}
			}
		}
		nd.Tick()
		if me != root {
			out = nd.RecvInto(root, out)
		}
	}
	if me == root {
		return parts[me]
	}
	if len(out) != k {
		nd.Fail("comm: Scatter received %d words from root %d, want %d", len(out), root, k)
	}
	return out
}

// AllToAllWord is the one-word personalised exchange: node v receives
// out[p] from every peer p, in one round over the zero-copy send path.
// The returned ok flags report which peers delivered exactly one word
// (own entry always true, set to out[me]); protocols replayed against
// adversarial transcripts use them instead of trusting the wire.
func AllToAllWord(nd clique.Endpoint, out []uint64) (in []uint64, ok []bool) {
	defer trace.Op(nd, "AllToAllWord", nd.N()-1)()
	n := nd.N()
	me := nd.ID()
	if len(out) != n {
		nd.Fail("comm: AllToAllWord given %d words, want one per node (n=%d)", len(out), n)
	}
	for v := 0; v < n; v++ {
		if v != me {
			buf := nd.SendBuf(v, 1)
			buf[0] = out[v]
		}
	}
	nd.Tick()
	in = make([]uint64, n)
	ok = make([]bool, n)
	in[me], ok[me] = out[me], true
	for v := 0; v < n; v++ {
		if v == me {
			continue
		}
		if got := nd.Recv(v); len(got) == 1 {
			in[v], ok[v] = got[0], true
		}
	}
	return in, ok
}

// AllToAll delivers arbitrary per-destination word streams: queue[t] is
// the stream this node owes node t (queue[own id] must be empty). All
// nodes agree on the number of rounds via a one-round max-reduction,
// then ship wordsPerPair words per link per round. Returns the
// concatenated stream received from each sender. Rounds:
// 1 + ceil(maxLinkLoad / wordsPerPair).
func AllToAll(nd clique.Endpoint, queue [][]uint64) [][]uint64 {
	n := nd.N()
	me := nd.ID()
	local := 0
	for t, q := range queue {
		if t == me && len(q) > 0 {
			nd.Fail("comm: AllToAll queued %d words to itself", len(q))
		}
		if len(q) > local {
			local = len(q)
		}
	}
	total := 0
	for _, q := range queue {
		total += len(q)
	}
	defer trace.Op(nd, "AllToAll", total)()
	max := int(MaxWord(nd, uint64(local)))

	in := make([][]uint64, n)
	wpp := nd.WordsPerPair()
	for off := 0; off < max; off += wpp {
		for t := 0; t < n; t++ {
			if t == me || off >= len(queue[t]) {
				continue
			}
			nd.SendWords(t, queue[t][off:chunkEnd(off, len(queue[t]), wpp)])
		}
		nd.Tick()
		for p := 0; p < n; p++ {
			if p != me {
				in[p] = nd.RecvInto(p, in[p])
			}
		}
	}
	return in
}

// BroadcastBits has every node broadcast an arbitrary bit vector (all
// nodes must pass the same length); it returns the table indexed by
// sender. Bits are packed clique.WordBits(n) per word — the honest
// O(log n)-bit packing — so broadcasting b bits takes
// ceil(b / WordBits(n) / wordsPerPair) rounds. Broadcasting the full
// input graph this way (b = n) realises the trivial O(n / log n)
// upper bound that every problem has in the model.
func BroadcastBits(nd clique.Endpoint, bits []bool) [][]bool {
	defer trace.Op(nd, "BroadcastBits", (len(bits)+clique.WordBits(nd.N())-1)/clique.WordBits(nd.N()))()
	n := nd.N()
	wb := clique.WordBits(n)
	nwords := (len(bits) + wb - 1) / wb
	words := make([]uint64, nwords)
	for i, b := range bits {
		if b {
			words[i/wb] |= 1 << (i % wb)
		}
	}
	table := BroadcastAll(nd, words, nwords)
	out := make([][]bool, n)
	for p := 0; p < n; p++ {
		row := make([]bool, len(bits))
		for i := range row {
			row[i] = table[p][i/wb]&(1<<(i%wb)) != 0
		}
		out[p] = row
	}
	return out
}
