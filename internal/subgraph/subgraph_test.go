package subgraph

import (
	"testing"

	"repro/internal/clique"
	"repro/internal/graph"
	"repro/internal/partition"
)

// runDetect executes a detection algorithm on graph g and asserts all
// nodes agree; it returns the decision and the run result.
func runDetect(t *testing.T, g *graph.Graph, f func(nd *clique.Node, row graph.Bitset) bool) (bool, *clique.Result) {
	t.Helper()
	out := make([]bool, g.N)
	res, err := clique.Run(clique.Config{N: g.N, WordsPerPair: 4}, func(nd *clique.Node) {
		out[nd.ID()] = f(nd, g.Row(nd.ID()))
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < g.N; v++ {
		if out[v] != out[0] {
			t.Fatalf("nodes disagree: node %d says %v, node 0 says %v", v, out[v], out[0])
		}
	}
	return out[0], res
}

func TestGatherEdgesWithin(t *testing.T) {
	g := graph.Gnp(16, 0.4, 3)
	k := 2
	s := partition.New(g.N, k)
	locals := make([]*graph.Graph, g.N)
	_, err := clique.Run(clique.Config{N: g.N, WordsPerPair: 4}, func(nd *clique.Node) {
		locals[nd.ID()] = GatherEdges(nd, g.Row(nd.ID()), s, ScopeWithin)
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N; v++ {
		if s.Label(v) == nil {
			continue
		}
		// Every true edge within S_v must be present; no phantom edges
		// anywhere.
		g.Edges(func(a, b int) {
			if s.InUnion(v, a) && s.InUnion(v, b) && !locals[v].HasEdge(a, b) {
				t.Fatalf("node %d missing in-scope edge %d-%d", v, a, b)
			}
		})
		locals[v].Edges(func(a, b int) {
			if !g.HasEdge(a, b) {
				t.Fatalf("node %d has phantom edge %d-%d", v, a, b)
			}
		})
	}
}

func TestGatherEdgesIncident(t *testing.T) {
	g := graph.Gnp(16, 0.3, 4)
	k := 2
	s := partition.New(g.N, k)
	locals := make([]*graph.Graph, g.N)
	_, err := clique.Run(clique.Config{N: g.N, WordsPerPair: 4}, func(nd *clique.Node) {
		locals[nd.ID()] = GatherEdges(nd, g.Row(nd.ID()), s, ScopeIncident)
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N; v++ {
		if s.Label(v) == nil {
			continue
		}
		g.Edges(func(a, b int) {
			if (s.InUnion(v, a) || s.InUnion(v, b)) && !locals[v].HasEdge(a, b) {
				t.Fatalf("node %d missing incident edge %d-%d", v, a, b)
			}
		})
	}
}

func TestDetectIndependentSet(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		for _, k := range []int{2, 3} {
			g := graph.Gnp(14, 0.55, seed)
			want := graph.HasIndependentSetOfSize(g, k)
			got, _ := runDetect(t, g, func(nd *clique.Node, row graph.Bitset) bool {
				return DetectIndependentSet(nd, row, k)
			})
			if got != want {
				t.Errorf("seed %d k=%d: detect = %v, oracle = %v", seed, k, got, want)
			}
		}
	}
}

func TestDetectIndependentSetComplete(t *testing.T) {
	// K_n has no 2-IS; K_n minus an edge has exactly one.
	g := graph.Complete(12)
	got, _ := runDetect(t, g, func(nd *clique.Node, row graph.Bitset) bool {
		return DetectIndependentSet(nd, row, 2)
	})
	if got {
		t.Error("found 2-IS in complete graph")
	}
	g.RemoveEdge(3, 9)
	got, _ = runDetect(t, g, func(nd *clique.Node, row graph.Bitset) bool {
		return DetectIndependentSet(nd, row, 2)
	})
	if !got {
		t.Error("missed the unique 2-IS")
	}
}

func TestDetectTriangle(t *testing.T) {
	free := graph.PlantedTriangleFree(15, 0.5, 6)
	got, _ := runDetect(t, free, func(nd *clique.Node, row graph.Bitset) bool {
		return DetectTriangle(nd, row)
	})
	if got {
		t.Error("triangle reported in triangle-free graph")
	}
	withTri := free.Clone()
	withTri.AddEdge(0, 1)
	withTri.AddEdge(1, 2)
	withTri.AddEdge(0, 2)
	got, _ = runDetect(t, withTri, func(nd *clique.Node, row graph.Bitset) bool {
		return DetectTriangle(nd, row)
	})
	if !got {
		t.Error("planted triangle missed")
	}
}

func TestDetectClique(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		g := graph.Gnp(13, 0.5, seed+40)
		for _, k := range []int{3, 4} {
			want := graph.HasCliqueOfSize(g, k)
			got, _ := runDetect(t, g, func(nd *clique.Node, row graph.Bitset) bool {
				return DetectClique(nd, row, k)
			})
			if got != want {
				t.Errorf("seed %d k=%d: clique detect = %v, oracle = %v", seed, k, got, want)
			}
		}
	}
}

func TestDetectCycle(t *testing.T) {
	c6 := graph.Cycle(6)
	for k := 3; k <= 6; k++ {
		want := graph.HasCycleOfLength(c6, k)
		got, _ := runDetect(t, c6, func(nd *clique.Node, row graph.Bitset) bool {
			return DetectCycle(nd, row, k)
		})
		if got != want {
			t.Errorf("C6, k=%d: detect = %v, oracle = %v", k, got, want)
		}
	}
	// Random graphs.
	for seed := uint64(0); seed < 3; seed++ {
		g := graph.Gnp(11, 0.25, seed+70)
		for _, k := range []int{3, 4} {
			want := graph.HasCycleOfLength(g, k)
			got, _ := runDetect(t, g, func(nd *clique.Node, row graph.Bitset) bool {
				return DetectCycle(nd, row, k)
			})
			if got != want {
				t.Errorf("seed %d k=%d: cycle detect = %v, oracle = %v", seed, k, got, want)
			}
		}
	}
}

func TestDetectCycleTooShort(t *testing.T) {
	g := graph.Cycle(5)
	got, _ := runDetect(t, g, func(nd *clique.Node, row graph.Bitset) bool {
		return DetectCycle(nd, row, 2)
	})
	if got {
		t.Error("2-cycle detected in a simple graph")
	}
}

func TestDetectPattern(t *testing.T) {
	// Pattern: path on 3 vertices (P3). A triangle contains P3; an
	// empty graph does not.
	p3 := graph.Path(3)
	tri := graph.Complete(3)
	big := graph.New(9)
	big.AddEdge(0, 1)
	big.AddEdge(1, 2)
	_ = tri
	got, _ := runDetect(t, big, func(nd *clique.Node, row graph.Bitset) bool {
		return DetectPattern(nd, row, p3)
	})
	if !got {
		t.Error("P3 not found in a graph containing it")
	}
	empty := graph.New(9)
	got, _ = runDetect(t, empty, func(nd *clique.Node, row graph.Bitset) bool {
		return DetectPattern(nd, row, p3)
	})
	if got {
		t.Error("P3 found in empty graph")
	}
	// Star K_{1,3} as a pattern inside a complete graph.
	star := graph.CompleteBipartite(1, 3)
	got, _ = runDetect(t, graph.Complete(10), func(nd *clique.Node, row graph.Bitset) bool {
		return DetectPattern(nd, row, star)
	})
	if !got {
		t.Error("K_{1,3} not found in K10")
	}
}

func TestDetectionRoundsShrinkWithK(t *testing.T) {
	// For fixed n, larger k means larger unions and more rounds:
	// n^{1-2/k} grows with k. Check monotonicity between k=2 and k=3 on
	// a graph big enough to matter.
	g := graph.Gnp(64, 0.5, 8)
	_, res2 := runDetect(t, g, func(nd *clique.Node, row graph.Bitset) bool {
		return DetectIndependentSet(nd, row, 2)
	})
	_, res3 := runDetect(t, g, func(nd *clique.Node, row graph.Bitset) bool {
		return DetectIndependentSet(nd, row, 3)
	})
	if res3.Stats.Rounds <= res2.Stats.Rounds {
		t.Errorf("k=3 rounds (%d) should exceed k=2 rounds (%d) at n=64",
			res3.Stats.Rounds, res2.Stats.Rounds)
	}
}

func TestDetectPath(t *testing.T) {
	// P5 contains paths of every length up to 5 and nothing longer.
	p5 := graph.Path(5)
	for k := 2; k <= 5; k++ {
		got, _ := runDetect(t, p5, func(nd *clique.Node, row graph.Bitset) bool {
			return DetectPath(nd, row, k)
		})
		if !got {
			t.Errorf("P5: %d-path not found", k)
		}
	}
	// A matching has no 3-path.
	m := graph.New(6)
	m.AddEdge(0, 1)
	m.AddEdge(2, 3)
	m.AddEdge(4, 5)
	got, _ := runDetect(t, m, func(nd *clique.Node, row graph.Bitset) bool {
		return DetectPath(nd, row, 3)
	})
	if got {
		t.Error("3-path found in a perfect matching")
	}
	// Cross-check against the oracle on random graphs.
	for seed := uint64(0); seed < 3; seed++ {
		g := graph.Gnp(10, 0.2, seed+80)
		for _, k := range []int{3, 4} {
			want := graph.HasSimplePathOfLength(g, k)
			got, _ := runDetect(t, g, func(nd *clique.Node, row graph.Bitset) bool {
				return DetectPath(nd, row, k)
			})
			if got != want {
				t.Errorf("seed %d k=%d: detect=%v oracle=%v", seed, k, got, want)
			}
		}
	}
}

func TestFindWitnessAgreement(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		g := graph.Gnp(12, 0.5, seed+200)
		k := 3
		wantIS := graph.HasIndependentSetOfSize(g, k)
		founds := make([]bool, g.N)
		wits := make([][]int, g.N)
		_, err := clique.Run(clique.Config{N: g.N, WordsPerPair: 4}, func(nd *clique.Node) {
			founds[nd.ID()], wits[nd.ID()] = FindIndependentSet(nd, g.Row(nd.ID()), k)
		})
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.N; v++ {
			if founds[v] != wantIS {
				t.Fatalf("seed %d node %d: found=%v oracle=%v", seed, v, founds[v], wantIS)
			}
			if wantIS {
				if len(wits[v]) != k || !graph.IsIndependentSet(g, wits[v]) {
					t.Fatalf("seed %d node %d: invalid witness %v", seed, v, wits[v])
				}
				for i := range wits[v] {
					if wits[v][i] != wits[0][i] {
						t.Fatalf("seed %d: witnesses disagree", seed)
					}
				}
			}
		}
	}
}

func TestFindCliqueWitness(t *testing.T) {
	g := graph.PlantedTriangleFree(10, 0.5, 31)
	g.AddEdge(2, 5)
	g.AddEdge(5, 8)
	g.AddEdge(2, 8)
	found := false
	var wit []int
	_, err := clique.Run(clique.Config{N: g.N, WordsPerPair: 4}, func(nd *clique.Node) {
		found, wit = FindClique(nd, g.Row(nd.ID()), 3)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !found || !graph.IsClique(g, wit) {
		t.Fatalf("planted triangle not found: %v %v", found, wit)
	}
}
