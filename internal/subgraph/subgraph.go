package subgraph

import (
	"math/bits"

	"repro/internal/bitvec"
	"repro/internal/clique"
	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/partition"
)

// Scope selects which edges a labelled node must learn.
type Scope int

const (
	// ScopeWithin gathers edges with both endpoints in S_v (subgraph
	// detection, Theorem 10's target problems).
	ScopeWithin Scope = iota
	// ScopeIncident gathers edges with at least one endpoint in S_v
	// (the paper's Theorem 9 dominating-set algorithm).
	ScopeIncident
)

// GatherEdges routes every edge of the input graph to every labelled
// node whose scope covers it, and returns the local view: a graph on the
// full vertex set containing exactly the edges this node learned (plus
// its own incident edges, which it knew for free). row is this node's
// adjacency bitset.
//
// Ownership of each edge follows the paper's private-bit convention
// (graph.PrivateAssignment), so every edge enters the routing instance
// exactly once. Edges travel bit-packed: all vertices of one part share
// their coverage decision, so a node ships its owned adjacency toward a
// labelled node as per-part 64-edge mask words ([key, mask] packets)
// instead of one packet per edge — up to 64 edges per routed payload.
func GatherEdges(nd clique.Endpoint, row graph.Bitset, s partition.Scheme, scope Scope) *graph.Graph {
	n := nd.N()
	me := nd.ID()
	pa := graph.PrivateAssignment{N: n}

	// The owned adjacency mask: bits u where {me, u} is an edge whose
	// private bit this node holds.
	owned := bitvec.GetRow(n)
	pa.OwnedPairs(me, func(u int) {
		if row.Has(u) {
			owned.Set(u)
		}
	})

	// covered reports whether labelled node w must learn this node's
	// owned edges into part t — the per-edge rule of the paper lifted to
	// whole parts, since every u in P_t has the same InUnion(w, u).
	inT := func(w, t int) bool {
		lo, hi := s.PartBounds(t)
		return lo < hi && s.InUnion(w, lo)
	}
	covered := func(w, t int) bool {
		switch scope {
		case ScopeWithin:
			return s.InUnion(w, me) && inT(w, t)
		default:
			return s.InUnion(w, me) || inT(w, t)
		}
	}

	// slots is the per-part mask-word count; packet key = t*slots + slot.
	slots := (s.Size + bitvec.WordBits - 1) / bitvec.WordBits
	var packets []comm.Packet
	for t := 0; t < s.P; t++ {
		lo, hi := s.PartBounds(t)
		for slot := 0; slot*bitvec.WordBits < hi-lo; slot++ {
			base := lo + slot*bitvec.WordBits
			mask := owned.Word64(base, min(bitvec.WordBits, hi-base))
			if mask == 0 {
				continue
			}
			key := uint64(t*slots + slot)
			for w := 0; w < s.NumLabels(); w++ {
				if covered(w, t) {
					packets = append(packets, comm.Packet{Dst: w, Payload: []uint64{key, mask}})
				}
			}
		}
	}
	bitvec.PutRow(owned)
	in := comm.Route(nd, packets, 2, 0x5e1)

	local := graph.New(n)
	row.Each(func(u int) { local.AddEdge(me, u) })
	for _, pkt := range in {
		t, slot := int(pkt.Payload[0])/slots, int(pkt.Payload[0])%slots
		lo, _ := s.PartBounds(t)
		base := lo + slot*bitvec.WordBits
		for mask := pkt.Payload[1]; mask != 0; mask &= mask - 1 {
			local.AddEdge(pkt.Src, base+bits.TrailingZeros64(mask))
		}
	}
	return local
}

// orReduce combines one bit per node: one broadcast round; every node
// returns the global OR, so all nodes output the same decision, as the
// model requires.
func orReduce(nd clique.Endpoint, local bool) bool {
	return comm.OrBool(nd, local)
}

// tuples enumerates all ways to choose one vertex from each listed part
// (parts may repeat), requiring strictly increasing vertex ids inside
// repeated parts to avoid reusing a vertex; f returns true to stop.
func tuples(s partition.Scheme, lbl []int, f func(sel []int) bool) bool {
	k := len(lbl)
	sel := make([]int, k)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == k {
			return f(sel)
		}
		lo, hi := s.PartBounds(lbl[i])
		for v := lo; v < hi; v++ {
			dup := false
			for j := 0; j < i; j++ {
				if sel[j] == v {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			sel[i] = v
			if rec(i + 1) {
				return true
			}
		}
		return false
	}
	return rec(0)
}

// Detect runs the generic detection algorithm: every labelled node
// gathers the edges within its union and searches for a k-tuple
// (one vertex per labelled part) accepted by check, which receives the
// candidate vertices and the local view of the graph. The global OR of
// the local findings is returned at every node.
func Detect(nd clique.Endpoint, row graph.Bitset, k int, check func(sel []int, local *graph.Graph) bool) bool {
	s := partition.New(nd.N(), k)
	local := GatherEdges(nd, row, s, ScopeWithin)
	found := false
	if lbl := s.Label(nd.ID()); lbl != nil {
		found = tuples(s, lbl, func(sel []int) bool { return check(sel, local) })
	}
	return orReduce(nd, found)
}

// DetectIndependentSet decides whether the input graph has an
// independent set of size k, in O(k^2 n^{1-2/k}) rounds (Figure 1's k-IS
// entry).
func DetectIndependentSet(nd clique.Endpoint, row graph.Bitset, k int) bool {
	return Detect(nd, row, k, func(sel []int, local *graph.Graph) bool {
		return graph.IsIndependentSet(local, sel)
	})
}

// DetectClique decides whether the input graph has a clique of size k.
func DetectClique(nd clique.Endpoint, row graph.Bitset, k int) bool {
	return Detect(nd, row, k, func(sel []int, local *graph.Graph) bool {
		return graph.IsClique(local, sel)
	})
}

// DetectTriangle decides triangle-freeness, the k = 3 clique case at
// O(n^{1/3}) rounds.
func DetectTriangle(nd clique.Endpoint, row graph.Bitset) bool {
	return DetectClique(nd, row, 3)
}

// DetectCycle decides whether the input graph contains a simple cycle of
// length exactly k.
func DetectCycle(nd clique.Endpoint, row graph.Bitset, k int) bool {
	if k < 3 {
		return orReduce(nd, false)
	}
	return Detect(nd, row, k, func(sel []int, local *graph.Graph) bool {
		return hasCycleOrder(local, sel)
	})
}

// hasCycleOrder reports whether some cyclic ordering of sel forms a
// cycle in g. The first element is fixed to quotient out rotations.
func hasCycleOrder(g *graph.Graph, sel []int) bool {
	k := len(sel)
	perm := make([]int, 0, k)
	used := make([]bool, k)
	perm = append(perm, sel[0])
	used[0] = true
	var rec func() bool
	rec = func() bool {
		if len(perm) == k {
			return g.HasEdge(perm[k-1], perm[0])
		}
		last := perm[len(perm)-1]
		for i := 1; i < k; i++ {
			if used[i] || !g.HasEdge(last, sel[i]) {
				continue
			}
			used[i] = true
			perm = append(perm, sel[i])
			if rec() {
				return true
			}
			perm = perm[:len(perm)-1]
			used[i] = false
		}
		return false
	}
	return rec()
}

// DetectPattern decides whether the input graph contains the given
// k-vertex pattern as a (not necessarily induced) subgraph. pattern is
// the adjacency matrix of the pattern graph.
func DetectPattern(nd clique.Endpoint, row graph.Bitset, pattern *graph.Graph) bool {
	k := pattern.N
	return Detect(nd, row, k, func(sel []int, local *graph.Graph) bool {
		ok := true
		pattern.Edges(func(a, b int) {
			if !local.HasEdge(sel[a], sel[b]) {
				ok = false
			}
		})
		return ok
	})
}

// DetectPath decides whether the input graph contains a simple path on
// exactly k vertices, via the generic pattern detector. Section 7.3 of
// the paper cites exp(k)-round algorithms for k-path ([20, 35]); the
// partition scheme realises O(k^2 n^{1-2/k}) rounds, which is the
// better bound for k constant.
func DetectPath(nd clique.Endpoint, row graph.Bitset, k int) bool {
	if k == 1 {
		return orReduce(nd, nd.N() > 0)
	}
	pattern := graph.New(k)
	for v := 0; v+1 < k; v++ {
		pattern.AddEdge(v, v+1)
	}
	return DetectPattern(nd, row, pattern)
}

// FindWitness runs Detect and additionally publishes a concrete witness
// tuple: the lowest-id successful node broadcasts its k vertices over
// ceil(k / wordsPerPair) rounds, so every node returns the same
// (found, witness) pair — the same agreement pattern as Theorem 9's
// dominating set search. Returns (false, nil) if no witness exists.
func FindWitness(nd clique.Endpoint, row graph.Bitset, k int, check func(sel []int, local *graph.Graph) bool) (bool, []int) {
	n := nd.N()
	me := nd.ID()
	s := partition.New(n, k)
	local := GatherEdges(nd, row, s, ScopeWithin)
	var mine []int
	if lbl := s.Label(me); lbl != nil {
		tuples(s, lbl, func(sel []int) bool {
			if check(sel, local) {
				mine = append([]int(nil), sel...)
				return true
			}
			return false
		})
	}
	// Success is announced presence-coded: only successful nodes spend
	// budget on the vote round.
	flags := comm.Flags(nd, mine != nil)
	leader := -1
	for v := 0; v < n; v++ {
		if flags[v] {
			leader = v
			break
		}
	}
	if leader < 0 {
		return false, nil
	}
	// The leader ships its k witness vertices to everyone; the
	// collective chunks them against the word budget.
	var words []uint64
	if me == leader {
		words = make([]uint64, k)
		for i, v := range mine {
			words[i] = uint64(v)
		}
	}
	got := comm.BroadcastFrom(nd, leader, words, k)
	witness := make([]int, k)
	for i, w := range got {
		witness[i] = int(w)
	}
	return true, witness
}

// FindIndependentSet returns an agreed independent set of size k, or
// (false, nil).
func FindIndependentSet(nd clique.Endpoint, row graph.Bitset, k int) (bool, []int) {
	return FindWitness(nd, row, k, func(sel []int, local *graph.Graph) bool {
		return graph.IsIndependentSet(local, sel)
	})
}

// FindClique returns an agreed clique of size k, or (false, nil).
func FindClique(nd clique.Endpoint, row graph.Bitset, k int) (bool, []int) {
	return FindWitness(nd, row, k, func(sel []int, local *graph.Graph) bool {
		return graph.IsClique(local, sel)
	})
}
