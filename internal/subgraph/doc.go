// Package subgraph implements deterministic subgraph detection in the
// congested clique after Dolev, Lenzen and Peled ("Tri, tri again",
// DISC 2012; reference [16] of the paper): with the partition scheme of
// package partition, the node labelled (j_1, ..., j_k) learns all edges
// inside S_v = S_{j_1} u ... u S_{j_k} and brute-forces its share of
// k-tuples locally. Any k vertices lie inside some union, so detection is
// complete; the per-node receive volume is O(k^2 n^{2-2/k}) words, giving
// O(k^2 n^{1-2/k}) rounds — the k-IS, triangle, k-clique and k-cycle
// upper bounds in Figure 1 of the paper.
package subgraph
