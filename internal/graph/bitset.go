package graph

import "math/bits"

// Bitset is a fixed-capacity set of small non-negative integers, used for
// adjacency rows. The zero value of a slice-backed bitset is not usable;
// construct with NewBitset.
type Bitset []uint64

// NewBitset returns an empty bitset able to hold values in [0, n).
func NewBitset(n int) Bitset {
	return make(Bitset, (n+63)/64)
}

// Set inserts i.
func (b Bitset) Set(i int) { b[i/64] |= 1 << (i % 64) }

// Clear removes i.
func (b Bitset) Clear(i int) { b[i/64] &^= 1 << (i % 64) }

// Has reports whether i is present.
func (b Bitset) Has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

// Count returns the number of elements.
func (b Bitset) Count() int {
	c := 0
	for _, w := range b {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns a copy.
func (b Bitset) Clone() Bitset {
	return append(Bitset(nil), b...)
}

// IntersectsWith reports whether b and o share an element.
func (b Bitset) IntersectsWith(o Bitset) bool {
	m := len(b)
	if len(o) < m {
		m = len(o)
	}
	for i := 0; i < m; i++ {
		if b[i]&o[i] != 0 {
			return true
		}
	}
	return false
}

// Each calls f for every element in increasing order.
func (b Bitset) Each(f func(i int)) {
	for w, word := range b {
		for word != 0 {
			i := bits.TrailingZeros64(word)
			f(w*64 + i)
			word &= word - 1
		}
	}
}
