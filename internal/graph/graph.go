package graph

import (
	"fmt"
	"math"
	"strings"
)

// Graph is a simple undirected graph on vertices 0..N-1 with bitset
// adjacency rows. Self-loops are not representable.
type Graph struct {
	N   int
	adj []Bitset
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative order %d", n))
	}
	g := &Graph{N: n, adj: make([]Bitset, n)}
	for i := range g.adj {
		g.adj[i] = NewBitset(n)
	}
	return g
}

// AddEdge inserts the undirected edge {u, v}. Adding an existing edge is a
// no-op; adding a self-loop panics, as the model's graphs are simple.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	g.adj[u].Set(v)
	g.adj[v].Set(u)
}

// RemoveEdge deletes the undirected edge {u, v} if present.
func (g *Graph) RemoveEdge(u, v int) {
	g.adj[u].Clear(v)
	g.adj[v].Clear(u)
}

// HasEdge reports whether {u, v} is an edge. HasEdge(v, v) is false.
func (g *Graph) HasEdge(u, v int) bool {
	if u == v {
		return false
	}
	return g.adj[u].Has(v)
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return g.adj[v].Count() }

// Row returns v's adjacency bitset. The caller must not modify it.
func (g *Graph) Row(v int) Bitset { return g.adj[v] }

// Neighbors calls f for each neighbor of v in increasing order.
func (g *Graph) Neighbors(v int, f func(u int)) { g.adj[v].Each(f) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	total := 0
	for v := 0; v < g.N; v++ {
		total += g.adj[v].Count()
	}
	return total / 2
}

// Edges calls f once per undirected edge with u < v.
func (g *Graph) Edges(f func(u, v int)) {
	for u := 0; u < g.N; u++ {
		g.adj[u].Each(func(v int) {
			if u < v {
				f(u, v)
			}
		})
	}
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	h := &Graph{N: g.N, adj: make([]Bitset, g.N)}
	for i := range g.adj {
		h.adj[i] = g.adj[i].Clone()
	}
	return h
}

// Complement returns the complement graph.
func (g *Graph) Complement() *Graph {
	h := New(g.N)
	for u := 0; u < g.N; u++ {
		for v := u + 1; v < g.N; v++ {
			if !g.HasEdge(u, v) {
				h.AddEdge(u, v)
			}
		}
	}
	return h
}

// Equal reports structural equality (same order, same edge set).
func (g *Graph) Equal(h *Graph) bool {
	if g.N != h.N {
		return false
	}
	for v := 0; v < g.N; v++ {
		a, b := g.adj[v], h.adj[v]
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
	}
	return true
}

// InducedSubgraph returns the subgraph induced by the given vertices,
// relabelled 0..len(vs)-1 in the given order.
func (g *Graph) InducedSubgraph(vs []int) *Graph {
	h := New(len(vs))
	for i, u := range vs {
		for j := i + 1; j < len(vs); j++ {
			if g.HasEdge(u, vs[j]) {
				h.AddEdge(i, j)
			}
		}
	}
	return h
}

// String renders the edge list, mainly for test failure messages.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph(n=%d;", g.N)
	g.Edges(func(u, v int) { fmt.Fprintf(&sb, " %d-%d", u, v) })
	sb.WriteString(")")
	return sb.String()
}

// Inf is the "no edge / unreachable" distance sentinel for weighted
// graphs and distance matrices. It is far below overflow range so that
// Inf + maxWeight does not wrap.
const Inf int64 = math.MaxInt64 / 4

// Weighted is a weighted graph, directed or undirected, on vertices
// 0..N-1. W[u][v] is the weight of the edge u->v, or Inf if absent.
// W[v][v] is 0 by construction. The paper assumes weights encodable in
// O(log n) bits, i.e. poly(n)-bounded; generators respect that.
type Weighted struct {
	N        int
	Directed bool
	W        [][]int64
}

// NewWeighted returns an edgeless weighted graph on n vertices.
func NewWeighted(n int, directed bool) *Weighted {
	w := make([][]int64, n)
	for i := range w {
		w[i] = make([]int64, n)
		for j := range w[i] {
			if i != j {
				w[i][j] = Inf
			}
		}
	}
	return &Weighted{N: n, Directed: directed, W: w}
}

// SetEdge sets the weight of u->v (and v->u if undirected).
func (g *Weighted) SetEdge(u, v int, w int64) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	g.W[u][v] = w
	if !g.Directed {
		g.W[v][u] = w
	}
}

// HasEdge reports whether u->v is an edge.
func (g *Weighted) HasEdge(u, v int) bool {
	return u != v && g.W[u][v] < Inf
}

// Clone returns a deep copy.
func (g *Weighted) Clone() *Weighted {
	h := NewWeighted(g.N, g.Directed)
	for i := range g.W {
		copy(h.W[i], g.W[i])
	}
	return h
}

// FromUnweighted lifts an undirected graph to a weighted one with unit
// weights.
func FromUnweighted(g *Graph) *Weighted {
	h := NewWeighted(g.N, false)
	g.Edges(func(u, v int) { h.SetEdge(u, v, 1) })
	return h
}

// PrivateAssignment realises the paper's Section 3 input convention: every
// potential edge bit {u, v} is owned by exactly one endpoint, and each
// node owns at least floor((n-1)/2) bits. Owner(u, v) returns the owner of
// the unordered pair. The rule is the balanced tournament orientation:
// {u, v} belongs to u iff (v - u) mod n lies in 1..floor((n-1)/2), with
// ties for even n (difference exactly n/2) broken towards the smaller id.
type PrivateAssignment struct{ N int }

// Owner returns the owner of the pair {u, v}, u != v.
func (p PrivateAssignment) Owner(u, v int) int {
	if u == v {
		panic("graph: PrivateAssignment.Owner of a self-pair")
	}
	n := p.N
	d := ((v-u)%n + n) % n
	half := (n - 1) / 2
	switch {
	case d >= 1 && d <= half:
		return u
	case n%2 == 0 && d == n/2:
		if u < v {
			return u
		}
		return v
	default:
		return v
	}
}

// OwnedPairs calls f for every pair {v, u} owned by v, identifying the
// pair by its other endpoint u.
func (p PrivateAssignment) OwnedPairs(v int, f func(u int)) {
	for u := 0; u < p.N; u++ {
		if u != v && p.Owner(v, u) == v {
			f(u)
		}
	}
}
