// Package graph provides the input objects of the congested clique model:
// simple undirected graphs on the vertex set {0, ..., n-1}, weighted and
// directed variants for the shortest-path problems of Section 7 of the
// paper, deterministic generators for test and benchmark instances, and
// exponential-time brute-force oracles used as ground truth in tests.
package graph
