package graph

import (
	"fmt"
	"math/rand/v2"
)

// rng returns a deterministic generator for the given seed; all generators
// in this package are reproducible across runs and platforms.
func rng(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// Gnp returns an Erdős–Rényi graph G(n, p) drawn with the given seed.
func Gnp(n int, p float64, seed uint64) *Graph {
	r := rng(seed)
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// GnpWeighted returns a weighted G(n, p) with integer weights drawn
// uniformly from [1, maxW].
func GnpWeighted(n int, p float64, maxW int64, directed bool, seed uint64) *Weighted {
	r := rng(seed)
	g := NewWeighted(n, directed)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v || (!directed && u > v) {
				continue
			}
			if r.Float64() < p {
				g.SetEdge(u, v, 1+r.Int64N(maxW))
			}
		}
	}
	return g
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// Cycle returns the n-cycle 0-1-...-(n-1)-0. n must be at least 3.
func Cycle(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: cycle of order %d", n))
	}
	g := New(n)
	for v := 0; v < n; v++ {
		g.AddEdge(v, (v+1)%n)
	}
	return g
}

// Path returns the path 0-1-...-(n-1).
func Path(n int) *Graph {
	g := New(n)
	for v := 0; v+1 < n; v++ {
		g.AddEdge(v, v+1)
	}
	return g
}

// CompleteBipartite returns K_{a,b} with sides {0..a-1} and {a..a+b-1}.
func CompleteBipartite(a, b int) *Graph {
	g := New(a + b)
	for u := 0; u < a; u++ {
		for v := a; v < a+b; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// PlantedIndependentSet returns a graph with a planted independent set of
// size k (vertices 0..k-1) and G(n, p) noise elsewhere, plus the planted
// set. The planted set is independent by construction; whether it is the
// unique or maximum one depends on the noise, so tests use brute-force
// oracles rather than assuming so.
func PlantedIndependentSet(n, k int, p float64, seed uint64) (*Graph, []int) {
	r := rng(seed)
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if v < k {
				continue // both in planted set
			}
			if r.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	set := make([]int, k)
	for i := range set {
		set[i] = i
	}
	return g, set
}

// PlantedDominatingSet returns a graph in which vertices 0..k-1 form a
// dominating set: every other vertex gets at least one edge into the
// planted set, plus G(n, p) noise.
func PlantedDominatingSet(n, k int, p float64, seed uint64) (*Graph, []int) {
	if k < 1 || k > n {
		panic(fmt.Sprintf("graph: planted dominating set k=%d n=%d", k, n))
	}
	r := rng(seed)
	g := Gnp(n, p, seed+1)
	for v := k; v < n; v++ {
		dominated := false
		for d := 0; d < k; d++ {
			if g.HasEdge(v, d) {
				dominated = true
				break
			}
		}
		if !dominated {
			g.AddEdge(v, r.IntN(k))
		}
	}
	set := make([]int, k)
	for i := range set {
		set[i] = i
	}
	return g, set
}

// PlantedVertexCover returns a graph whose every edge is incident to the
// planted cover 0..k-1 (so a vertex cover of size at most k exists), with
// edge density p between cover and non-cover vertices and inside the
// cover.
func PlantedVertexCover(n, k int, p float64, seed uint64) (*Graph, []int) {
	r := rng(seed)
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if u >= k && v >= k {
				continue // both outside the cover: must stay a non-edge
			}
			if r.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	cover := make([]int, k)
	for i := range cover {
		cover[i] = i
	}
	return g, cover
}

// PlantedColoring returns a k-colourable graph: vertices are assigned
// random colour classes and only cross-class edges are drawn with
// probability p. The returned colouring witnesses k-colourability.
func PlantedColoring(n, k int, p float64, seed uint64) (*Graph, []int) {
	r := rng(seed)
	colors := make([]int, n)
	for v := range colors {
		colors[v] = r.IntN(k)
	}
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if colors[u] != colors[v] && r.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g, colors
}

// PlantedHamiltonianPath returns a graph containing the Hamiltonian path
// given by a random permutation, plus G(n, p) noise, and the permutation.
func PlantedHamiltonianPath(n int, p float64, seed uint64) (*Graph, []int) {
	r := rng(seed)
	perm := r.Perm(n)
	g := Gnp(n, p, seed+1)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(perm[i], perm[i+1])
	}
	return g, perm
}

// PlantedTriangleFree returns a triangle-free graph: a random bipartite
// graph with parts decided by seed.
func PlantedTriangleFree(n int, p float64, seed uint64) *Graph {
	r := rng(seed)
	side := make([]bool, n)
	for v := range side {
		side[v] = r.IntN(2) == 0
	}
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if side[u] != side[v] && r.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}
