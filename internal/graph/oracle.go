package graph

// This file holds exponential-time centralized oracles. They are the
// ground truth in tests and experiments: the congested clique model
// allows unbounded local computation, and the paper repeatedly relies on
// nodes brute-forcing small subproblems locally (e.g. Theorem 9 step 3,
// Theorem 11's kernel solve), so these same routines double as the
// "local computation" inside distributed algorithms.

// combinations enumerates all k-subsets of 0..n-1 in lexicographic order
// and stops early when f returns true; it reports whether any call did.
func combinations(n, k int, f func(sel []int) bool) bool {
	if k < 0 || k > n {
		return false
	}
	sel := make([]int, k)
	for i := range sel {
		sel[i] = i
	}
	for {
		if f(sel) {
			return true
		}
		// Advance to the next combination.
		i := k - 1
		for i >= 0 && sel[i] == n-k+i {
			i--
		}
		if i < 0 {
			return false
		}
		sel[i]++
		for j := i + 1; j < k; j++ {
			sel[j] = sel[j-1] + 1
		}
	}
}

// IsIndependentSet reports whether set is pairwise non-adjacent in g.
func IsIndependentSet(g *Graph, set []int) bool {
	for i, u := range set {
		for _, v := range set[i+1:] {
			if u == v || g.HasEdge(u, v) {
				return false
			}
		}
	}
	return true
}

// IsClique reports whether set is pairwise adjacent in g.
func IsClique(g *Graph, set []int) bool {
	for i, u := range set {
		for _, v := range set[i+1:] {
			if u == v || !g.HasEdge(u, v) {
				return false
			}
		}
	}
	return true
}

// IsDominatingSet reports whether every vertex of g is in set or adjacent
// to a member of set.
func IsDominatingSet(g *Graph, set []int) bool {
	dominated := make([]bool, g.N)
	for _, u := range set {
		dominated[u] = true
		g.Neighbors(u, func(v int) { dominated[v] = true })
	}
	for _, d := range dominated {
		if !d {
			return false
		}
	}
	return true
}

// IsVertexCover reports whether every edge of g has an endpoint in set.
func IsVertexCover(g *Graph, set []int) bool {
	in := make([]bool, g.N)
	for _, u := range set {
		in[u] = true
	}
	ok := true
	g.Edges(func(u, v int) {
		if !in[u] && !in[v] {
			ok = false
		}
	})
	return ok
}

// IsProperColoring reports whether colors is a proper colouring of g with
// values in [0, k).
func IsProperColoring(g *Graph, colors []int, k int) bool {
	for _, c := range colors {
		if c < 0 || c >= k {
			return false
		}
	}
	ok := true
	g.Edges(func(u, v int) {
		if colors[u] == colors[v] {
			ok = false
		}
	})
	return ok
}

// FindIndependentSet returns an independent set of size exactly k, or nil.
func FindIndependentSet(g *Graph, k int) []int {
	var found []int
	combinations(g.N, k, func(sel []int) bool {
		if IsIndependentSet(g, sel) {
			found = append([]int(nil), sel...)
			return true
		}
		return false
	})
	return found
}

// HasIndependentSetOfSize reports whether g has an independent set of
// size k.
func HasIndependentSetOfSize(g *Graph, k int) bool {
	return k == 0 || FindIndependentSet(g, k) != nil
}

// MaxIndependentSetSize returns the independence number of g, via
// branch and bound: pick a vertex of maximum degree in the remaining
// candidate set and branch on excluding or including it, pruning when
// the candidate count cannot beat the incumbent. Practical far beyond
// the plain subset enumeration of FindIndependentSet.
func MaxIndependentSetSize(g *Graph) int {
	cand := NewBitset(g.N)
	for v := 0; v < g.N; v++ {
		cand.Set(v)
	}
	best := 0
	var rec func(cand Bitset, size int)
	rec = func(cand Bitset, size int) {
		cnt := cand.Count()
		if size+cnt <= best {
			return // cannot improve
		}
		if cnt == 0 {
			if size > best {
				best = size
			}
			return
		}
		// Branch vertex: maximum degree within the candidate set.
		pick, pickDeg := -1, -1
		cand.Each(func(v int) {
			d := 0
			g.Neighbors(v, func(u int) {
				if cand.Has(u) {
					d++
				}
			})
			if d > pickDeg {
				pick, pickDeg = v, d
			}
		})
		if pickDeg == 0 {
			// Remaining candidates are pairwise non-adjacent.
			if size+cnt > best {
				best = size + cnt
			}
			return
		}
		// Include pick: drop pick and its neighbours.
		with := cand.Clone()
		with.Clear(pick)
		g.Neighbors(pick, func(u int) {
			if with.Has(u) {
				with.Clear(u)
			}
		})
		rec(with, size+1)
		// Exclude pick.
		without := cand.Clone()
		without.Clear(pick)
		rec(without, size)
	}
	rec(cand, 0)
	return best
}

// FindClique returns a clique of size exactly k, or nil.
func FindClique(g *Graph, k int) []int {
	var found []int
	combinations(g.N, k, func(sel []int) bool {
		if IsClique(g, sel) {
			found = append([]int(nil), sel...)
			return true
		}
		return false
	})
	return found
}

// HasCliqueOfSize reports whether g has a k-clique.
func HasCliqueOfSize(g *Graph, k int) bool {
	return k == 0 || FindClique(g, k) != nil
}

// HasTriangle reports whether g contains a triangle.
func HasTriangle(g *Graph) bool { return HasCliqueOfSize(g, 3) }

// FindDominatingSet returns a dominating set of size exactly k, or nil.
func FindDominatingSet(g *Graph, k int) []int {
	var found []int
	combinations(g.N, k, func(sel []int) bool {
		if IsDominatingSet(g, sel) {
			found = append([]int(nil), sel...)
			return true
		}
		return false
	})
	return found
}

// HasDominatingSetOfSize reports whether g has a dominating set of size k.
func HasDominatingSetOfSize(g *Graph, k int) bool {
	return FindDominatingSet(g, k) != nil
}

// FindVertexCover returns a vertex cover of size at most k, or nil. It
// uses the classic size-bounded branching: pick an uncovered edge, branch
// on which endpoint joins the cover. Runs in O(2^k poly) time.
func FindVertexCover(g *Graph, k int) []int {
	type edge struct{ u, v int }
	var edges []edge
	g.Edges(func(u, v int) { edges = append(edges, edge{u, v}) })

	in := make([]bool, g.N)
	var solve func(budget int) []int
	solve = func(budget int) []int {
		// Find the first uncovered edge.
		var pick *edge
		for i := range edges {
			e := &edges[i]
			if !in[e.u] && !in[e.v] {
				pick = e
				break
			}
		}
		if pick == nil {
			cover := []int{} // non-nil: the empty cover is a success
			for v, b := range in {
				if b {
					cover = append(cover, v)
				}
			}
			return cover
		}
		if budget == 0 {
			return nil
		}
		for _, w := range []int{pick.u, pick.v} {
			in[w] = true
			if cover := solve(budget - 1); cover != nil {
				in[w] = false
				return cover
			}
			in[w] = false
		}
		return nil
	}
	return solve(k)
}

// HasVertexCoverOfSize reports whether g has a vertex cover of size <= k.
func HasVertexCoverOfSize(g *Graph, k int) bool {
	return FindVertexCover(g, k) != nil
}

// MinVertexCoverSize returns the size of a minimum vertex cover, via
// Gallai's identity tau(G) = n - alpha(G); the branch-and-bound
// independence number makes this practical on dense graphs where the
// 2^k cover branching of FindVertexCover is not. Tests cross-validate
// the two solvers against each other.
func MinVertexCoverSize(g *Graph) int {
	return g.N - MaxIndependentSetSize(g)
}

// FindColoring returns a proper k-colouring of g, or nil, via
// backtracking.
func FindColoring(g *Graph, k int) []int {
	colors := make([]int, g.N)
	for i := range colors {
		colors[i] = -1
	}
	var solve func(v int) bool
	solve = func(v int) bool {
		if v == g.N {
			return true
		}
		for c := 0; c < k; c++ {
			ok := true
			g.Neighbors(v, func(u int) {
				if colors[u] == c {
					ok = false
				}
			})
			if ok {
				colors[v] = c
				if solve(v + 1) {
					return true
				}
				colors[v] = -1
			}
		}
		return false
	}
	if !solve(0) {
		return nil
	}
	return colors
}

// IsKColorable reports whether g is properly k-colourable.
func IsKColorable(g *Graph, k int) bool { return FindColoring(g, k) != nil }

// HasHamiltonianPath reports whether g has a Hamiltonian path, by
// Held-Karp bitmask dynamic programming. Usable up to n around 20.
func HasHamiltonianPath(g *Graph) bool {
	n := g.N
	if n == 0 {
		return false
	}
	if n == 1 {
		return true
	}
	if n > 24 {
		panic("graph: HasHamiltonianPath oracle limited to n <= 24")
	}
	// reach[mask] = bitset of possible path endpoints over vertex set mask.
	reach := make([]uint32, 1<<n)
	for v := 0; v < n; v++ {
		reach[1<<v] = 1 << v
	}
	full := uint32(1<<n - 1)
	for mask := uint32(1); mask <= full; mask++ {
		ends := reach[mask]
		if ends == 0 {
			continue
		}
		for v := 0; v < n; v++ {
			if ends&(1<<v) == 0 {
				continue
			}
			g.Neighbors(v, func(u int) {
				if mask&(1<<u) == 0 {
					reach[mask|1<<u] |= 1 << u
				}
			})
		}
	}
	return reach[full] != 0
}

// HasCycleOfLength reports whether g contains a (simple) cycle of length
// exactly k, by enumerating k-subsets and checking for a Hamiltonian
// cycle on each induced subgraph via backtracking.
func HasCycleOfLength(g *Graph, k int) bool {
	if k < 3 {
		return false
	}
	return combinations(g.N, k, func(sel []int) bool {
		return inducedHasHamCycle(g, sel)
	})
}

func inducedHasHamCycle(g *Graph, vs []int) bool {
	k := len(vs)
	used := make([]bool, k)
	used[0] = true
	var walk func(pos, depth int) bool
	walk = func(pos, depth int) bool {
		if depth == k {
			return g.HasEdge(vs[pos], vs[0])
		}
		for next := 1; next < k; next++ {
			if !used[next] && g.HasEdge(vs[pos], vs[next]) {
				used[next] = true
				if walk(next, depth+1) {
					return true
				}
				used[next] = false
			}
		}
		return false
	}
	return walk(0, 1)
}

// FloydWarshall returns the full distance matrix of a weighted graph.
// Unreachable pairs get Inf.
func FloydWarshall(g *Weighted) [][]int64 {
	n := g.N
	d := make([][]int64, n)
	for i := range d {
		d[i] = append([]int64(nil), g.W[i]...)
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := d[i][k]
			if dik >= Inf {
				continue
			}
			for j := 0; j < n; j++ {
				if alt := dik + d[k][j]; alt < d[i][j] {
					d[i][j] = alt
				}
			}
		}
	}
	return d
}

// BFSDistances returns single-source hop distances in an unweighted
// graph; unreachable vertices get Inf.
func BFSDistances(g *Graph, src int) []int64 {
	dist := make([]int64, g.N)
	for i := range dist {
		dist[i] = Inf
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		g.Neighbors(v, func(u int) {
			if dist[u] == Inf {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		})
	}
	return dist
}

// TransitiveClosureOracle returns the reachability matrix of an
// unweighted undirected graph: out[u][v] iff v is reachable from u.
func TransitiveClosureOracle(g *Graph) [][]bool {
	n := g.N
	out := make([][]bool, n)
	for src := 0; src < n; src++ {
		d := BFSDistances(g, src)
		out[src] = make([]bool, n)
		for v := 0; v < n; v++ {
			out[src][v] = d[v] < Inf
		}
	}
	return out
}

// HasSimplePathOfLength reports whether g contains a simple path on
// exactly k vertices, by subset enumeration plus Hamiltonian-path check
// on each induced subgraph. The paper's Section 7.3 cites exp(k)-round
// congested clique algorithms for k-path; this is the centralized
// ground truth for them.
func HasSimplePathOfLength(g *Graph, k int) bool {
	if k < 1 || k > g.N {
		return false
	}
	if k == 1 {
		return g.N > 0
	}
	return combinations(g.N, k, func(sel []int) bool {
		return HasHamiltonianPath(g.InducedSubgraph(sel))
	})
}
