package graph

import (
	"testing"
	"testing/quick"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Has(i) {
			t.Errorf("fresh bitset has %d", i)
		}
		b.Set(i)
		if !b.Has(i) {
			t.Errorf("Set(%d) not visible", i)
		}
	}
	if b.Count() != 8 {
		t.Errorf("Count = %d, want 8", b.Count())
	}
	b.Clear(64)
	if b.Has(64) || b.Count() != 7 {
		t.Errorf("Clear(64) failed: count %d", b.Count())
	}
	var got []int
	b.Each(func(i int) { got = append(got, i) })
	want := []int{0, 1, 63, 65, 127, 128, 129}
	if len(got) != len(want) {
		t.Fatalf("Each visited %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Each visited %v, want %v", got, want)
		}
	}
}

func TestBitsetIntersects(t *testing.T) {
	a, b := NewBitset(100), NewBitset(100)
	a.Set(70)
	b.Set(71)
	if a.IntersectsWith(b) {
		t.Error("disjoint sets intersect")
	}
	b.Set(70)
	if !a.IntersectsWith(b) {
		t.Error("overlapping sets do not intersect")
	}
}

func TestGraphBasics(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 1) // duplicate is a no-op
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge 0-1 missing")
	}
	if g.HasEdge(0, 2) || g.HasEdge(3, 3) {
		t.Error("phantom edge")
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
	if g.Degree(1) != 2 || g.Degree(4) != 0 {
		t.Errorf("degrees wrong: %d %d", g.Degree(1), g.Degree(4))
	}
	g.RemoveEdge(0, 1)
	if g.HasEdge(0, 1) || g.NumEdges() != 1 {
		t.Error("RemoveEdge failed")
	}
}

func TestGraphCloneIndependent(t *testing.T) {
	g := Cycle(5)
	h := g.Clone()
	h.AddEdge(0, 2)
	if g.HasEdge(0, 2) {
		t.Error("clone shares storage with original")
	}
	if !g.Equal(Cycle(5)) {
		t.Error("original mutated")
	}
}

func TestComplement(t *testing.T) {
	g := Gnp(9, 0.5, 7)
	c := g.Complement()
	for u := 0; u < g.N; u++ {
		for v := u + 1; v < g.N; v++ {
			if g.HasEdge(u, v) == c.HasEdge(u, v) {
				t.Fatalf("complement wrong at %d-%d", u, v)
			}
		}
	}
	if !c.Complement().Equal(g) {
		t.Error("double complement differs")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Cycle(6)
	h := g.InducedSubgraph([]int{0, 1, 2})
	if h.N != 3 || !h.HasEdge(0, 1) || !h.HasEdge(1, 2) || h.HasEdge(0, 2) {
		t.Errorf("induced subgraph wrong: %v", h)
	}
}

func TestGenerators(t *testing.T) {
	if got := Complete(6).NumEdges(); got != 15 {
		t.Errorf("K6 edges = %d", got)
	}
	if got := Cycle(7).NumEdges(); got != 7 {
		t.Errorf("C7 edges = %d", got)
	}
	if got := Path(7).NumEdges(); got != 6 {
		t.Errorf("P7 edges = %d", got)
	}
	if got := CompleteBipartite(3, 4).NumEdges(); got != 12 {
		t.Errorf("K34 edges = %d", got)
	}
	// Determinism.
	if !Gnp(20, 0.4, 5).Equal(Gnp(20, 0.4, 5)) {
		t.Error("Gnp not deterministic for fixed seed")
	}
	if Gnp(20, 0.4, 5).Equal(Gnp(20, 0.4, 6)) {
		t.Error("different seeds gave identical graphs (suspicious)")
	}
}

func TestPlantedInstances(t *testing.T) {
	g, set := PlantedIndependentSet(14, 4, 0.6, 3)
	if !IsIndependentSet(g, set) {
		t.Error("planted IS is not independent")
	}
	g2, ds := PlantedDominatingSet(14, 3, 0.15, 4)
	if !IsDominatingSet(g2, ds) {
		t.Error("planted DS does not dominate")
	}
	g3, vc := PlantedVertexCover(14, 4, 0.5, 5)
	if !IsVertexCover(g3, vc) {
		t.Error("planted VC does not cover")
	}
	g4, colors := PlantedColoring(14, 3, 0.7, 6)
	if !IsProperColoring(g4, colors, 3) {
		t.Error("planted colouring improper")
	}
	g5, perm := PlantedHamiltonianPath(10, 0.1, 7)
	for i := 0; i+1 < len(perm); i++ {
		if !g5.HasEdge(perm[i], perm[i+1]) {
			t.Fatal("planted Hamiltonian path edge missing")
		}
	}
	if !HasHamiltonianPath(g5) {
		t.Error("oracle misses planted Hamiltonian path")
	}
	g6 := PlantedTriangleFree(16, 0.6, 8)
	if HasTriangle(g6) {
		t.Error("bipartite construction contains a triangle")
	}
}

func TestOraclesOnKnownGraphs(t *testing.T) {
	c5 := Cycle(5)
	if MaxIndependentSetSize(c5) != 2 {
		t.Errorf("alpha(C5) = %d, want 2", MaxIndependentSetSize(c5))
	}
	if MinVertexCoverSize(c5) != 3 {
		t.Errorf("tau(C5) = %d, want 3", MinVertexCoverSize(c5))
	}
	if IsKColorable(c5, 2) {
		t.Error("C5 reported 2-colourable")
	}
	if !IsKColorable(c5, 3) {
		t.Error("C5 reported not 3-colourable")
	}
	if !HasCycleOfLength(c5, 5) || HasCycleOfLength(c5, 3) || HasCycleOfLength(c5, 4) {
		t.Error("cycle detection wrong on C5")
	}
	if HasTriangle(c5) {
		t.Error("C5 has no triangle")
	}
	k4 := Complete(4)
	if !HasCliqueOfSize(k4, 4) || HasCliqueOfSize(k4, 5) {
		t.Error("clique oracle wrong on K4")
	}
	if !HasDominatingSetOfSize(k4, 1) {
		t.Error("K4 dominated by any single vertex")
	}
	p4 := Path(4)
	if HasDominatingSetOfSize(p4, 1) {
		t.Error("P4 cannot be dominated by one vertex")
	}
	if !HasDominatingSetOfSize(p4, 2) {
		t.Error("P4 dominated by two vertices")
	}
	if !HasHamiltonianPath(p4) {
		t.Error("P4 is a Hamiltonian path")
	}
	star := CompleteBipartite(1, 5)
	if HasHamiltonianPath(star) {
		t.Error("K_{1,5} has no Hamiltonian path")
	}
}

func TestVertexCoverDuality(t *testing.T) {
	// MinVertexCoverSize computes tau via Gallai from the
	// branch-and-bound alpha; cross-validate against the independent
	// 2^k cover-branching solver: a cover of size tau exists, none of
	// size tau-1 does.
	for seed := uint64(0); seed < 6; seed++ {
		g := Gnp(10, 0.4, seed)
		tau := MinVertexCoverSize(g)
		if FindVertexCover(g, tau) == nil {
			t.Errorf("seed %d: no cover of claimed optimum %d", seed, tau)
		}
		if tau > 0 && FindVertexCover(g, tau-1) != nil {
			t.Errorf("seed %d: cover below claimed optimum %d", seed, tau)
		}
	}
}

func TestFindVertexCoverIsCover(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		g := Gnp(12, 0.3, seed)
		k := MinVertexCoverSize(g)
		cover := FindVertexCover(g, k)
		if cover == nil {
			t.Fatalf("seed %d: no cover of optimal size %d", seed, k)
		}
		if !IsVertexCover(g, cover) {
			t.Errorf("seed %d: returned set is not a cover", seed)
		}
		if len(cover) > k {
			t.Errorf("seed %d: cover size %d exceeds budget %d", seed, len(cover), k)
		}
		if k > 0 && FindVertexCover(g, k-1) != nil {
			t.Errorf("seed %d: found cover below optimum", seed)
		}
	}
}

func TestWeightedGraph(t *testing.T) {
	g := NewWeighted(4, false)
	g.SetEdge(0, 1, 5)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("undirected weighted edge not symmetric")
	}
	d := NewWeighted(4, true)
	d.SetEdge(0, 1, 5)
	if !d.HasEdge(0, 1) || d.HasEdge(1, 0) {
		t.Error("directed weighted edge symmetry wrong")
	}
	if d.W[2][2] != 0 {
		t.Error("diagonal not zero")
	}
	c := g.Clone()
	c.SetEdge(2, 3, 7)
	if g.HasEdge(2, 3) {
		t.Error("weighted clone shares storage")
	}
}

func TestFloydWarshallAgainstBFS(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		g := Gnp(12, 0.25, seed)
		w := FromUnweighted(g)
		d := FloydWarshall(w)
		for src := 0; src < g.N; src++ {
			bfs := BFSDistances(g, src)
			for v := 0; v < g.N; v++ {
				if d[src][v] != bfs[v] {
					t.Fatalf("seed %d: dist(%d,%d) FW=%d BFS=%d", seed, src, v, d[src][v], bfs[v])
				}
			}
		}
	}
}

func TestFloydWarshallWeightedTriangleInequality(t *testing.T) {
	g := GnpWeighted(10, 0.4, 50, false, 11)
	d := FloydWarshall(g)
	for i := 0; i < g.N; i++ {
		if d[i][i] != 0 {
			t.Fatalf("d(%d,%d) = %d", i, i, d[i][i])
		}
		for j := 0; j < g.N; j++ {
			for k := 0; k < g.N; k++ {
				if d[i][j] < Inf && d[j][k] < Inf && d[i][k] > d[i][j]+d[j][k] {
					t.Fatalf("triangle inequality violated at %d,%d,%d", i, j, k)
				}
			}
		}
	}
}

func TestTransitiveClosureOracle(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(4, 5)
	tc := TransitiveClosureOracle(g)
	if !tc[0][2] || !tc[2][0] || tc[0][4] || !tc[4][5] || !tc[3][3] {
		t.Errorf("closure wrong: %v", tc)
	}
}

func TestPrivateAssignmentPartition(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8, 9, 16, 17} {
		p := PrivateAssignment{N: n}
		counts := make([]int, n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				o := p.Owner(u, v)
				if o2 := p.Owner(v, u); o2 != o {
					t.Fatalf("n=%d: Owner not symmetric for {%d,%d}: %d vs %d", n, u, v, o, o2)
				}
				if o != u && o != v {
					t.Fatalf("n=%d: owner %d of {%d,%d} is not an endpoint", n, o, u, v)
				}
				counts[o]++
			}
		}
		total := 0
		minOwned := n
		for v, c := range counts {
			total += c
			if c < minOwned {
				minOwned = c
			}
			var viaIter int
			p.OwnedPairs(v, func(u int) { viaIter++ })
			if viaIter != c {
				t.Fatalf("n=%d: OwnedPairs(%d) visited %d, want %d", n, v, viaIter, c)
			}
		}
		if total != n*(n-1)/2 {
			t.Fatalf("n=%d: ownership not a partition: %d pairs owned", n, total)
		}
		if minOwned < (n-1)/2 {
			t.Fatalf("n=%d: node owns only %d pairs, below floor((n-1)/2)=%d", n, minOwned, (n-1)/2)
		}
	}
}

func TestOracleConsistencyQuick(t *testing.T) {
	// Property: on random small graphs, a found IS of size k is
	// independent, and complement cliques match.
	f := func(seed uint64) bool {
		g := Gnp(9, 0.5, seed)
		comp := g.Complement()
		for k := 1; k <= 4; k++ {
			if HasIndependentSetOfSize(g, k) != HasCliqueOfSize(comp, k) {
				return false
			}
			if s := FindIndependentSet(g, k); s != nil && !IsIndependentSet(g, s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestHamiltonianPathMatchesBacktracking(t *testing.T) {
	// Cross-check Held-Karp DP against cycle-based reasoning on cycles
	// and paths.
	for n := 3; n <= 9; n++ {
		if !HasHamiltonianPath(Cycle(n)) {
			t.Errorf("C%d has a Hamiltonian path", n)
		}
		if !HasHamiltonianPath(Path(n)) {
			t.Errorf("P%d has a Hamiltonian path", n)
		}
	}
	// Disconnected graph has none.
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if HasHamiltonianPath(g) {
		t.Error("disconnected graph reported Hamiltonian")
	}
}
