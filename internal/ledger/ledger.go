package ledger

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"repro/internal/fault"
)

// magic is the file header; the version suffix guards against reading
// a future incompatible layout as garbage records.
const magic = "cliqueledger/v1\n"

// Framing limits. A record larger than these is not a record — it is
// garbage framing from a torn or corrupt length prefix, and bounding
// it keeps the reopen scan from attempting a multi-gigabyte read on a
// flipped bit.
const (
	maxKeyLen   = 1 << 10
	maxValueLen = 64 << 20
)

// chainSize is the size of the chained SHA-256 digest each record
// carries.
const chainSize = sha256.Size

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Typed failures. ErrChainBroken is the tamper signal: a record whose
// CRC is intact (so not a torn write) but whose chain digest does not
// extend its predecessor's. ErrClosed and ErrBroken are lifecycle
// errors; ErrTooLarge rejects oversized appends up front.
var (
	ErrChainBroken = errors.New("ledger: hash chain broken (file tampered or rewritten)")
	ErrClosed      = errors.New("ledger: closed")
	ErrBroken      = errors.New("ledger: previous append failed and the tail could not be restored")
	ErrTooLarge    = errors.New("ledger: record exceeds size limits")
	ErrNotFound    = errors.New("ledger: key not found")
)

// ref locates one committed record in the file.
type ref struct {
	frameOff int64 // offset of the u32 frame-length prefix
	frameLen int   // bytes after the prefix
	keyLen   int
}

// Ledger is an open append-only result store. All methods are safe for
// concurrent use.
type Ledger struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	index   map[string]ref
	size    int64 // committed file size (header + verified records)
	chain   [chainSize]byte
	records int64
	appends int64 // appends performed by this process
	broken  bool
	closed  bool
}

// OpenStats reports what reopening found: how many committed records
// were recovered and how many torn-tail bytes were truncated.
type OpenStats struct {
	Records        int64
	TruncatedBytes int64
}

// Stats is the operator view served at /v1/ledger/stats.
type Stats struct {
	Path      string `json:"path"`
	Records   int64  `json:"records"`
	Bytes     int64  `json:"bytes"`
	ChainHead string `json:"chain_head"`
	Appends   int64  `json:"appends"` // appends by this process lifetime
	Broken    bool   `json:"broken,omitempty"`
}

// Open opens or creates the ledger at path, scans and verifies every
// record (CRC + hash chain), truncates a torn tail left by a crash
// mid-append, and rebuilds the key index. A chain digest that does not
// verify on a CRC-intact record fails with ErrChainBroken: that file
// was tampered with, not torn, and refusing it is the point.
func Open(path string) (*Ledger, OpenStats, error) {
	if err := fault.Hit("ledger.open"); err != nil {
		return nil, OpenStats{}, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, OpenStats{}, fmt.Errorf("ledger: open %s: %w", path, err)
	}
	l := &Ledger{f: f, path: path, index: map[string]ref{}}
	stats, err := l.recover()
	if err != nil {
		f.Close()
		return nil, OpenStats{}, err
	}
	return l, stats, nil
}

// recover scans the file from the header, verifying each record and
// truncating at the first torn or CRC-invalid one.
func (l *Ledger) recover() (OpenStats, error) {
	fileSize, err := l.f.Seek(0, io.SeekEnd)
	if err != nil {
		return OpenStats{}, fmt.Errorf("ledger: seek %s: %w", l.path, err)
	}
	if fileSize == 0 {
		// Fresh file: write the header and sync it.
		if err := l.writeHeader(); err != nil {
			return OpenStats{}, err
		}
		return OpenStats{}, nil
	}
	hdr := make([]byte, len(magic))
	if n, err := l.f.ReadAt(hdr, 0); err != nil || string(hdr[:n]) != magic {
		// A file too short to hold the header is a torn header write:
		// recover to an empty ledger. A full-length mismatch is a
		// different format — refuse rather than destroy it.
		if err == nil || (errors.Is(err, io.EOF) && string(hdr[:n]) == magic[:n]) {
			if err == nil {
				return OpenStats{}, fmt.Errorf("ledger: %s: bad magic %q", l.path, hdr)
			}
			if terr := l.truncateTo(0); terr != nil {
				return OpenStats{}, terr
			}
			if werr := l.writeHeader(); werr != nil {
				return OpenStats{}, werr
			}
			return OpenStats{TruncatedBytes: fileSize}, nil
		}
		return OpenStats{}, fmt.Errorf("ledger: read header: %w", err)
	}

	off := int64(len(magic))
	var stats OpenStats
	for off < fileSize {
		rec, key, ok, err := l.readRecord(off, fileSize)
		if err != nil {
			return OpenStats{}, err
		}
		if !ok {
			// Torn or corrupt from here on: truncate to the verified
			// prefix. Committed records never follow a torn one —
			// appends are sequential and fsync'd in order.
			stats.TruncatedBytes = fileSize - off
			if err := l.truncateTo(off); err != nil {
				return OpenStats{}, err
			}
			break
		}
		l.index[key] = rec.ref
		l.chain = rec.chain
		l.records++
		off += 4 + int64(rec.ref.frameLen)
	}
	l.size = off
	stats.Records = l.records
	return stats, nil
}

// record is one parsed frame.
type record struct {
	ref   ref
	chain [chainSize]byte
}

// readRecord parses and verifies the record at off. ok=false means the
// bytes at off are torn or corrupt (truncate here); a non-nil error is
// an I/O failure or the tamper signal ErrChainBroken.
func (l *Ledger) readRecord(off, fileSize int64) (record, string, bool, error) {
	var lenBuf [4]byte
	if off+4 > fileSize {
		return record{}, "", false, nil // torn length prefix
	}
	if _, err := l.f.ReadAt(lenBuf[:], off); err != nil {
		return record{}, "", false, fmt.Errorf("ledger: read at %d: %w", off, err)
	}
	frameLen := int64(binary.BigEndian.Uint32(lenBuf[:]))
	// Minimum frame: keyLen(2) + valLen(4) + chain + crc(4).
	if frameLen < 2+4+chainSize+4 || frameLen > 2+maxKeyLen+4+maxValueLen+chainSize+4 {
		return record{}, "", false, nil
	}
	if off+4+frameLen > fileSize {
		return record{}, "", false, nil // torn body
	}
	frame := make([]byte, frameLen)
	if _, err := l.f.ReadAt(frame, off+4); err != nil {
		return record{}, "", false, fmt.Errorf("ledger: read at %d: %w", off+4, err)
	}
	rec, key, ok := parseFrame(frame, l.chain)
	if !ok {
		return record{}, "", false, nil
	}
	if rec.chainOK {
		r := record{chain: rec.chain}
		r.ref = ref{frameOff: off, frameLen: int(frameLen), keyLen: len(key)}
		return r, key, true, nil
	}
	// CRC verified but the chain does not extend the predecessor:
	// rewritten content, not a crash artefact.
	return record{}, "", false, fmt.Errorf("ledger: %s: record at offset %d: %w", l.path, off, ErrChainBroken)
}

// parsedFrame is the outcome of structurally parsing one frame.
type parsedFrame struct {
	key     string
	value   []byte
	chain   [chainSize]byte
	chainOK bool
}

// parseFrame validates structure and CRC, then checks the chain digest
// against prev. ok=false means the frame is structurally invalid or
// fails its CRC.
func parseFrame(frame []byte, prev [chainSize]byte) (parsedFrame, string, bool) {
	if len(frame) < 2+4+chainSize+4 {
		return parsedFrame{}, "", false
	}
	body, crcBytes := frame[:len(frame)-4], frame[len(frame)-4:]
	if crc32.Checksum(body, castagnoli) != binary.BigEndian.Uint32(crcBytes) {
		return parsedFrame{}, "", false
	}
	keyLen := int(binary.BigEndian.Uint16(body[:2]))
	if keyLen > maxKeyLen || 2+keyLen+4+chainSize > len(body) {
		return parsedFrame{}, "", false
	}
	key := string(body[2 : 2+keyLen])
	valLen := int(binary.BigEndian.Uint32(body[2+keyLen : 2+keyLen+4]))
	if valLen > maxValueLen || 2+keyLen+4+valLen+chainSize != len(body) {
		return parsedFrame{}, "", false
	}
	value := body[2+keyLen+4 : 2+keyLen+4+valLen]
	var chain [chainSize]byte
	copy(chain[:], body[2+keyLen+4+valLen:])
	want := chainDigest(prev, key, value)
	p := parsedFrame{key: key, value: value, chain: chain, chainOK: chain == want}
	return p, key, true
}

// chainDigest extends the running digest by one (key, value) record.
func chainDigest(prev [chainSize]byte, key string, value []byte) [chainSize]byte {
	h := sha256.New()
	h.Write(prev[:])
	var lenBuf [8]byte
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(key)))
	h.Write(lenBuf[:])
	h.Write([]byte(key))
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(value)))
	h.Write(lenBuf[:])
	h.Write(value)
	var out [chainSize]byte
	h.Sum(out[:0])
	return out
}

// writeHeader writes and syncs the magic header and positions the
// write offset just past it (WriteAt does not move the offset, and
// appends write at the offset).
func (l *Ledger) writeHeader() error {
	if _, err := l.f.WriteAt([]byte(magic), 0); err != nil {
		return fmt.Errorf("ledger: write header: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("ledger: sync header: %w", err)
	}
	if _, err := l.f.Seek(int64(len(magic)), io.SeekStart); err != nil {
		return fmt.Errorf("ledger: seek past header: %w", err)
	}
	l.size = int64(len(magic))
	return nil
}

// truncateTo cuts the file to size and repositions the write offset.
func (l *Ledger) truncateTo(size int64) error {
	if err := l.f.Truncate(size); err != nil {
		return fmt.Errorf("ledger: truncate %s to %d: %w", l.path, size, err)
	}
	if _, err := l.f.Seek(size, io.SeekStart); err != nil {
		return fmt.Errorf("ledger: seek %s: %w", l.path, err)
	}
	return nil
}

// Append durably records value under key: one buffered frame write,
// then fsync — when Append returns nil the record survives any later
// crash. Appending an already-present key is a no-op (records are
// content-addressed: same key, same bytes). A failed append restores
// the committed tail by truncation so one I/O error does not poison
// the file; if even that fails the ledger is Broken and refuses
// further appends while continuing to serve committed records.
func (l *Ledger) Append(key string, value []byte) error {
	if len(key) == 0 || len(key) > maxKeyLen || len(value) > maxValueLen {
		return ErrTooLarge
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case l.closed:
		return ErrClosed
	case l.broken:
		return ErrBroken
	}
	if _, ok := l.index[key]; ok {
		return nil
	}
	if err := fault.Hit("ledger.append"); err != nil {
		return err
	}

	chain := chainDigest(l.chain, key, value)
	frameLen := 2 + len(key) + 4 + len(value) + chainSize + 4
	buf := make([]byte, 0, 4+frameLen)
	buf = binary.BigEndian.AppendUint32(buf, uint32(frameLen))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(key)))
	buf = append(buf, key...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(value)))
	buf = append(buf, value...)
	buf = append(buf, chain[:]...)
	crc := crc32.Checksum(buf[4:], castagnoli)
	buf = binary.BigEndian.AppendUint32(buf, crc)

	w := fault.WrapWriter("ledger.write", l.f)
	if _, err := w.Write(buf); err != nil {
		l.restoreTail()
		return fmt.Errorf("ledger: append: %w", err)
	}
	if err := fault.Hit("ledger.sync"); err != nil {
		l.restoreTail()
		return fmt.Errorf("ledger: sync: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		l.restoreTail()
		return fmt.Errorf("ledger: sync: %w", err)
	}
	l.index[key] = ref{frameOff: l.size, frameLen: frameLen, keyLen: len(key)}
	l.chain = chain
	l.size += int64(4 + frameLen)
	l.records++
	l.appends++
	return nil
}

// restoreTail rolls a failed append's partial bytes back; on failure
// the ledger goes Broken for appends (reads stay valid: they only
// touch the committed prefix).
func (l *Ledger) restoreTail() {
	if err := l.truncateTo(l.size); err != nil {
		l.broken = true
	}
}

// Get returns a copy of the value committed under key. Every read
// re-verifies the record's CRC and key before returning bytes, so a
// medium fault after open cannot surface as a silently corrupt
// envelope — it surfaces as an error.
func (l *Ledger) Get(key string) ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	r, ok := l.index[key]
	if !ok {
		return nil, ErrNotFound
	}
	if err := fault.Hit("ledger.get"); err != nil {
		return nil, err
	}
	frame := make([]byte, r.frameLen)
	if _, err := l.f.ReadAt(frame, r.frameOff+4); err != nil {
		return nil, fmt.Errorf("ledger: read %s: %w", key, err)
	}
	body := frame[:len(frame)-4]
	if crc32.Checksum(body, castagnoli) != binary.BigEndian.Uint32(frame[len(frame)-4:]) {
		return nil, fmt.Errorf("ledger: record %s failed CRC on read: %w", key, ErrChainBroken)
	}
	keyLen := int(binary.BigEndian.Uint16(body[:2]))
	if keyLen != r.keyLen || string(body[2:2+keyLen]) != key {
		return nil, fmt.Errorf("ledger: record %s key mismatch on read: %w", key, ErrChainBroken)
	}
	valLen := int(binary.BigEndian.Uint32(body[2+keyLen : 2+keyLen+4]))
	value := make([]byte, valLen)
	copy(value, body[2+keyLen+4:2+keyLen+4+valLen])
	return value, nil
}

// Has reports whether key is committed, without touching the file.
func (l *Ledger) Has(key string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.index[key]
	return ok && !l.closed
}

// Len reports the number of committed records.
func (l *Ledger) Len() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// Stats snapshots the operator view.
func (l *Ledger) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Path:      l.path,
		Records:   l.records,
		Bytes:     l.size,
		ChainHead: hex.EncodeToString(l.chain[:]),
		Appends:   l.appends,
		Broken:    l.broken,
	}
}

// Sync flushes the file to stable storage. Appends already sync
// individually; Sync exists for the drain path's belt-and-braces
// flush before exit.
func (l *Ledger) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := fault.Hit("ledger.sync"); err != nil {
		return err
	}
	return l.f.Sync()
}

// Close syncs and closes the file. Further method calls return
// ErrClosed.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	syncErr := l.f.Sync()
	closeErr := l.f.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// VerifyReport is the outcome of a full read-only integrity scan.
type VerifyReport struct {
	Records   int64  `json:"records"`
	Bytes     int64  `json:"bytes"`
	TornBytes int64  `json:"torn_bytes"` // unverifiable tail (crash artefact)
	ChainHead string `json:"chain_head"`
	OK        bool   `json:"ok"` // every byte accounted for: no torn tail
}

// Verify scans path read-only and proves the committed prefix: every
// record's CRC and chain digest verify in order. A torn tail is
// reported, not an error (it is what a crash leaves); a broken chain
// is ErrChainBroken.
func Verify(path string) (VerifyReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return VerifyReport{}, fmt.Errorf("ledger: open %s: %w", path, err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return VerifyReport{}, err
	}
	fileSize := fi.Size()
	rep := VerifyReport{}
	hdr := make([]byte, len(magic))
	if n, err := f.ReadAt(hdr, 0); err != nil || string(hdr) != magic {
		if err != nil && !errors.Is(err, io.EOF) {
			return VerifyReport{}, err
		}
		if string(hdr[:n]) == magic[:n] { // torn header
			rep.TornBytes = fileSize
			return rep, nil
		}
		return VerifyReport{}, fmt.Errorf("ledger: %s: bad magic", path)
	}
	scan := &Ledger{f: f, path: path, index: map[string]ref{}}
	off := int64(len(magic))
	for off < fileSize {
		rec, _, ok, err := scan.readRecord(off, fileSize)
		if err != nil {
			return rep, err
		}
		if !ok {
			rep.TornBytes = fileSize - off
			break
		}
		scan.chain = rec.chain
		rep.Records++
		off += 4 + int64(rec.ref.frameLen)
	}
	rep.Bytes = off
	rep.ChainHead = hex.EncodeToString(scan.chain[:])
	rep.OK = rep.TornBytes == 0
	return rep, nil
}
