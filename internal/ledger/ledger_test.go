package ledger

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
)

func openT(t *testing.T, path string) (*Ledger, OpenStats) {
	t.Helper()
	l, stats, err := Open(path)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	t.Cleanup(func() { l.Close() })
	return l, stats
}

func fill(t *testing.T, l *Ledger, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := l.Append(fmt.Sprintf("key-%03d", i), []byte(fmt.Sprintf("value-%03d-payload", i))); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func TestAppendGetRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.clq")
	l, stats := openT(t, path)
	if stats.Records != 0 || stats.TruncatedBytes != 0 {
		t.Fatalf("fresh open stats = %+v", stats)
	}
	fill(t, l, 10)
	if l.Len() != 10 {
		t.Fatalf("Len = %d, want 10", l.Len())
	}
	for i := 0; i < 10; i++ {
		got, err := l.Get(fmt.Sprintf("key-%03d", i))
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		want := []byte(fmt.Sprintf("value-%03d-payload", i))
		if !bytes.Equal(got, want) {
			t.Fatalf("get %d = %q, want %q", i, got, want)
		}
	}
	if _, err := l.Get("absent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("absent key: %v, want ErrNotFound", err)
	}
}

func TestAppendIdempotent(t *testing.T) {
	l, _ := openT(t, filepath.Join(t.TempDir(), "ledger.clq"))
	if err := l.Append("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	before := l.Stats()
	if err := l.Append("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	after := l.Stats()
	if after.Records != before.Records || after.Bytes != before.Bytes {
		t.Fatalf("duplicate append changed the file: %+v -> %+v", before, after)
	}
}

func TestReopenRecoversEverything(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.clq")
	l, _ := openT(t, path)
	fill(t, l, 25)
	head := l.Stats().ChainHead
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re, stats := openT(t, path)
	if stats.Records != 25 || stats.TruncatedBytes != 0 {
		t.Fatalf("reopen stats = %+v, want 25 records, 0 truncated", stats)
	}
	if re.Stats().ChainHead != head {
		t.Fatal("chain head changed across a clean reopen")
	}
	got, err := re.Get("key-013")
	if err != nil || !bytes.Equal(got, []byte("value-013-payload")) {
		t.Fatalf("get after reopen: %q, %v", got, err)
	}
	// And the ledger accepts appends after reopen, extending the chain.
	if err := re.Append("key-new", []byte("post-reopen")); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
}

// TestTornTailTruncated is the Go-level torn-write test the issue
// pins: a crash mid-append (simulated byte-level, every truncation
// point of the final record) must reopen to exactly the committed
// prefix, and the torn bytes must be gone from disk.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	golden := filepath.Join(dir, "golden.clq")
	l, _ := openT(t, golden)
	fill(t, l, 5)
	sizeBefore := l.Stats().Bytes
	if err := l.Append("key-torn", []byte("the record a crash tears")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	full, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(full)) <= sizeBefore {
		t.Fatal("last append did not grow the file")
	}

	for cut := sizeBefore + 1; cut < int64(len(full)); cut += 7 {
		path := filepath.Join(dir, fmt.Sprintf("torn-%d.clq", cut))
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re, stats, err := Open(path)
		if err != nil {
			t.Fatalf("cut=%d: reopen failed: %v", cut, err)
		}
		if stats.Records != 5 {
			t.Fatalf("cut=%d: recovered %d records, want the 5 committed ones", cut, stats.Records)
		}
		if stats.TruncatedBytes != cut-sizeBefore {
			t.Fatalf("cut=%d: truncated %d bytes, want %d", cut, stats.TruncatedBytes, cut-sizeBefore)
		}
		if re.Has("key-torn") {
			t.Fatalf("cut=%d: torn record resurfaced", cut)
		}
		got, err := re.Get("key-004")
		if err != nil || !bytes.Equal(got, []byte("value-004-payload")) {
			t.Fatalf("cut=%d: committed prefix unreadable: %q, %v", cut, got, err)
		}
		// The torn bytes are physically gone: the file re-verifies clean
		// and a fresh append extends the verified chain.
		if err := re.Append("after-crash", []byte("x")); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		re.Close()
		rep, err := Verify(path)
		if err != nil || !rep.OK || rep.Records != 6 {
			t.Fatalf("cut=%d: verify after recovery = %+v, %v", cut, rep, err)
		}
	}
}

func TestChainTamperDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.clq")
	l, _ := openT(t, path)
	fill(t, l, 3)
	l.Close()

	// Rewrite record 1's value in place and fix up its CRC so the
	// corruption is not a torn write — the chain must catch it.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Find "value-001-payload" and flip a byte inside it.
	idx := bytes.Index(data, []byte("value-001-payload"))
	if idx < 0 {
		t.Fatal("value bytes not found")
	}
	data[idx+len("value-001-")] ^= 0xff // flip inside the payload, keeping the marker findable
	// Recompute the record's CRC: locate its frame. Records follow the
	// header; walk frames like the reader does.
	off := len(magic)
	fixed := false
	for off < len(data) {
		frameLen := int(uint32(data[off])<<24 | uint32(data[off+1])<<16 | uint32(data[off+2])<<8 | uint32(data[off+3]))
		frame := data[off+4 : off+4+frameLen]
		if bytes.Contains(frame, []byte("value-001")) {
			body := frame[:len(frame)-4]
			crc := crc32Checksum(body)
			frame[len(frame)-4] = byte(crc >> 24)
			frame[len(frame)-3] = byte(crc >> 16)
			frame[len(frame)-2] = byte(crc >> 8)
			frame[len(frame)-1] = byte(crc)
			fixed = true
		}
		off += 4 + frameLen
	}
	if !fixed {
		t.Fatal("tampered record not found")
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, err := Open(path); !errors.Is(err, ErrChainBroken) {
		t.Fatalf("tampered ledger opened with %v, want ErrChainBroken", err)
	}
	if _, err := Verify(path); !errors.Is(err, ErrChainBroken) {
		t.Fatalf("tampered ledger verified with %v, want ErrChainBroken", err)
	}
}

func TestVerifyCleanAndTorn(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.clq")
	l, _ := openT(t, path)
	fill(t, l, 4)
	l.Close()
	rep, err := Verify(path)
	if err != nil || !rep.OK || rep.Records != 4 || rep.TornBytes != 0 {
		t.Fatalf("clean verify = %+v, %v", rep, err)
	}

	// Tear the tail: verify reports it without erroring.
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = Verify(path)
	if err != nil || rep.OK || rep.Records != 3 || rep.TornBytes == 0 {
		t.Fatalf("torn verify = %+v, %v", rep, err)
	}
}

func TestInjectedIOErrorRollsBack(t *testing.T) {
	plan, err := fault.Parse("io-error@ledger.write:every=2")
	if err != nil {
		t.Fatal(err)
	}
	prev := fault.Install(plan)
	t.Cleanup(func() { fault.Install(prev) })

	path := filepath.Join(t.TempDir(), "ledger.clq")
	l, _ := openT(t, path)
	var failed, ok int
	for i := 0; i < 10; i++ {
		err := l.Append(fmt.Sprintf("k%d", i), []byte("payload"))
		switch {
		case err == nil:
			ok++
		case errors.Is(err, fault.ErrInjected):
			failed++
		default:
			t.Fatalf("append %d: unexpected error %v", i, err)
		}
	}
	if failed == 0 || ok == 0 {
		t.Fatalf("want a mix of failures and successes, got ok=%d failed=%d", ok, failed)
	}
	if l.Len() != int64(ok) {
		t.Fatalf("Len = %d, want %d successful appends", l.Len(), ok)
	}
	l.Close()
	fault.Install(nil)
	// After all that abuse the file verifies clean: failed appends left
	// no trace on disk.
	rep, err := Verify(path)
	if err != nil || !rep.OK || rep.Records != int64(ok) {
		t.Fatalf("verify after injected failures = %+v, %v", rep, err)
	}
}

func TestInjectedShortWriteRollsBack(t *testing.T) {
	plan, err := fault.Parse("short-write@ledger.write:every=3")
	if err != nil {
		t.Fatal(err)
	}
	prev := fault.Install(plan)
	t.Cleanup(func() { fault.Install(prev) })

	path := filepath.Join(t.TempDir(), "ledger.clq")
	l, _ := openT(t, path)
	var ok int
	for i := 0; i < 9; i++ {
		if err := l.Append(fmt.Sprintf("k%d", i), bytes.Repeat([]byte("x"), 100)); err == nil {
			ok++
		} else if !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	l.Close()
	fault.Install(nil)
	rep, err := Verify(path)
	if err != nil || !rep.OK || rep.Records != int64(ok) {
		t.Fatalf("verify after short writes = %+v, %v (ok=%d)", rep, err, ok)
	}
}

func TestSizeLimits(t *testing.T) {
	l, _ := openT(t, filepath.Join(t.TempDir(), "ledger.clq"))
	if err := l.Append("", []byte("v")); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("empty key: %v", err)
	}
	if err := l.Append(string(bytes.Repeat([]byte("k"), maxKeyLen+1)), []byte("v")); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize key: %v", err)
	}
}

func TestClosedLedger(t *testing.T) {
	l, _ := openT(t, filepath.Join(t.TempDir(), "ledger.clq"))
	if err := l.Append("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append("k2", []byte("v")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if _, err := l.Get("k"); !errors.Is(err, ErrClosed) {
		t.Fatalf("get after close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestEmptyFileRecoversToFreshLedger(t *testing.T) {
	// A crash can leave a zero-length or header-torn file; both must
	// open as an empty ledger, not an error.
	dir := t.TempDir()
	for _, n := range []int{0, 1, len(magic) - 1} {
		path := filepath.Join(dir, fmt.Sprintf("torn-hdr-%d.clq", n))
		if err := os.WriteFile(path, []byte(magic[:n]), 0o644); err != nil {
			t.Fatal(err)
		}
		l, stats, err := Open(path)
		if err != nil {
			t.Fatalf("open torn header (%d bytes): %v", n, err)
		}
		if stats.Records != 0 {
			t.Fatalf("torn header recovered %d records", stats.Records)
		}
		if err := l.Append("k", []byte("v")); err != nil {
			t.Fatalf("append after header recovery: %v", err)
		}
		l.Close()
	}
}

// crc32Checksum mirrors the production CRC so the tamper test can fix
// up a rewritten record.
func crc32Checksum(b []byte) uint32 {
	return crc32.Checksum(b, castagnoli)
}
