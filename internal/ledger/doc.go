// Package ledger is the crash-safe, tamper-evident result store under
// the cliqued daemon's in-memory cache: an append-only file of
// length-prefixed records keyed by the canonical request hash, each
// carrying a CRC-32C and a SHA-256 digest chained through every
// earlier record. Because cliquebench/v1 envelopes are bit-identical
// for a given canonical request (the property the whole caching plane
// rests on), a record is a verifiable artefact: reopening after a
// crash recovers exactly the committed prefix — the torn tail a
// SIGKILL mid-append leaves behind is detected by framing/CRC and
// truncated, and any record surviving with a valid CRC but a broken
// chain digest is tampering, refused with a typed error rather than
// served.
//
// Appends are one buffered write followed by fsync, so a record that
// Append reported durable survives any later crash. Get re-verifies
// the record's CRC on every read: the ledger never serves bytes it
// cannot prove are the ones appended.
//
// Fault-injection sites (package fault): ledger.append (entry),
// ledger.write (the record write — io-error and short-write),
// ledger.sync (fsync), ledger.get (reads), ledger.open (reopen scan).
package ledger
