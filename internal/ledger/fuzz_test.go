package ledger

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
)

// FuzzLedgerReopen is the corruption robustness gate the issue pins:
// start from a valid multi-record ledger file, apply arbitrary
// byte-level corruption (mutations and truncation), and reopen. The
// contract is that Open either recovers a verified prefix of the
// original records or fails with a typed error — it never panics, and
// it never serves bytes that differ from what was appended.
func FuzzLedgerReopen(f *testing.F) {
	// Build one valid ledger image to corrupt.
	dir := f.TempDir()
	goldenPath := filepath.Join(dir, "golden.clq")
	l, _, err := Open(goldenPath)
	if err != nil {
		f.Fatal(err)
	}
	values := map[string][]byte{}
	for i := 0; i < 6; i++ {
		key := fmt.Sprintf("req-%d", i)
		val := bytes.Repeat([]byte{byte('a' + i)}, 20+i*7)
		values[key] = val
		if err := l.Append(key, val); err != nil {
			f.Fatal(err)
		}
	}
	l.Close()
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		f.Fatal(err)
	}

	f.Add(uint32(5), uint16(10), byte(0xff), uint16(0))
	f.Add(uint32(100), uint16(1), byte(0x01), uint16(3))
	f.Add(uint32(0), uint16(0), byte(0), uint16(200)) // pure truncation
	f.Fuzz(func(t *testing.T, off uint32, runLen uint16, xor byte, chop uint16) {
		data := bytes.Clone(golden)
		if int(chop) > 0 {
			keep := len(data) - int(chop)
			if keep < 0 {
				keep = 0
			}
			data = data[:keep]
		}
		if runLen > 0 && len(data) > 0 {
			start := int(off) % len(data)
			for i := 0; i < int(runLen) && start+i < len(data); i++ {
				data[start+i] ^= xor
			}
		}
		path := filepath.Join(t.TempDir(), "fuzz.clq")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		re, stats, err := Open(path)
		if err != nil {
			// A refusal must be a typed, descriptive failure — tampering
			// or an unreadable header — never a panic (the fuzz engine
			// catches panics for us) and never a silent success.
			if stats.Records != 0 {
				t.Fatalf("Open failed (%v) but reported %d records", err, stats.Records)
			}
			return
		}
		defer re.Close()
		// Whatever prefix was recovered, every served byte must match
		// what was originally appended.
		recovered := 0
		for key, want := range values {
			got, err := re.Get(key)
			if errors.Is(err, ErrNotFound) {
				continue
			}
			if err != nil {
				t.Fatalf("Get(%s) after recovery: %v", key, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("Get(%s) served corrupt bytes: %q != %q", key, got, want)
			}
			recovered++
		}
		if int64(recovered) != stats.Records {
			t.Fatalf("recovered %d readable records, stats claim %d", recovered, stats.Records)
		}
		// Recovery is a prefix: if record i survived, records 0..i-1 did
		// too (appends were sequential and the chain binds the order).
		seenGap := false
		for i := 0; i < 6; i++ {
			has := re.Has(fmt.Sprintf("req-%d", i))
			if !has {
				seenGap = true
			} else if seenGap {
				t.Fatalf("record %d survived after an earlier record was lost — not a prefix", i)
			}
		}
		// The recovered file must be internally consistent: it accepts a
		// new append and verifies clean afterwards.
		if err := re.Append("post-recovery", []byte("ok")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		re.Close()
		rep, err := Verify(path)
		if err != nil || !rep.OK {
			t.Fatalf("verify after recovery = %+v, %v", rep, err)
		}
	})
}

// FuzzFaultSpec hardens the CLIQUE_FAULTS parser: arbitrary spec
// strings must parse or fail cleanly, and a parsed plan must not
// panic when driven.
func FuzzFaultSpec(f *testing.F) {
	f.Add("io-error@ledger.append:p=0.5,seed=1")
	f.Add("short-write@ledger.*;stall@job.run:ms=1")
	f.Add("panic@x:every=2,after=1")
	f.Fuzz(func(t *testing.T, spec string) {
		plan, err := fault.Parse(spec)
		if err != nil || plan == nil {
			return
		}
		prev := fault.Install(plan)
		defer fault.Install(prev)
		for i := 0; i < 4; i++ {
			func() {
				defer func() {
					// panic clauses are supposed to panic; anything else
					// escaping is a bug, surfaced by re-panicking.
					if r := recover(); r != nil {
						if _, ok := r.(*fault.Err); !ok {
							panic(r)
						}
					}
				}()
				_ = fault.Hit("ledger.append")
			}()
		}
	})
}
