// Package domset implements Theorem 9 of the paper: a dominating set of
// size k can be found in O(n^{1-1/k}) rounds in the congested clique.
//
// The algorithm is the paper's modification of the Dolev et al. subgraph
// search: with the partition scheme of package partition, the node
// labelled (j_1, ..., j_k) learns all edges *incident* to
// S_v = S_{j_1} u ... u S_{j_k} — O(k n^{2-1/k}) words, delivered in
// O(n^{1-1/k}) rounds via the routing substrate — and then locally checks
// whether some k-subset of S_v dominates the whole graph. If a dominating
// set D = {v_1, ..., v_k} exists with v_i in part j_i, the node labelled
// (j_1, ..., j_k) finds it.
package domset
