package domset

import (
	"testing"

	"repro/internal/clique"
	"repro/internal/graph"
)

func runFind(t *testing.T, g *graph.Graph, k int) (Result, *clique.Result) {
	t.Helper()
	out := make([]Result, g.N)
	res, err := clique.Run(clique.Config{N: g.N, WordsPerPair: 4}, func(nd *clique.Node) {
		out[nd.ID()] = Find(nd, g.Row(nd.ID()), k)
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < g.N; v++ {
		if out[v].Found != out[0].Found {
			t.Fatalf("nodes disagree on Found")
		}
		if len(out[v].Witness) != len(out[0].Witness) {
			t.Fatalf("nodes disagree on witness length")
		}
		for i := range out[v].Witness {
			if out[v].Witness[i] != out[0].Witness[i] {
				t.Fatalf("nodes disagree on witness")
			}
		}
	}
	return out[0], res
}

func TestFindMatchesOracle(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		for _, k := range []int{1, 2, 3} {
			g := graph.Gnp(13, 0.25, seed+10)
			want := graph.HasDominatingSetOfSize(g, k)
			got, _ := runFind(t, g, k)
			if got.Found != want {
				t.Errorf("seed %d k=%d: Found = %v, oracle = %v", seed, k, got.Found, want)
			}
			if got.Found {
				if len(got.Witness) != k {
					t.Errorf("seed %d k=%d: witness size %d", seed, k, len(got.Witness))
				}
				if !graph.IsDominatingSet(g, got.Witness) {
					t.Errorf("seed %d k=%d: witness %v does not dominate", seed, k, got.Witness)
				}
			}
		}
	}
}

func TestPlantedDominatingSet(t *testing.T) {
	g, _ := graph.PlantedDominatingSet(20, 3, 0.1, 7)
	got, _ := runFind(t, g, 3)
	if !got.Found {
		t.Fatal("planted 3-dominating set not found")
	}
	if !graph.IsDominatingSet(g, got.Witness) {
		t.Fatalf("witness %v does not dominate", got.Witness)
	}
}

func TestKnownGraphs(t *testing.T) {
	// Star: centre dominates.
	star := graph.CompleteBipartite(1, 9)
	if got, _ := runFind(t, star, 1); !got.Found || got.Witness[0] != 0 {
		t.Errorf("star: %+v", got)
	}
	// Path P7 needs at least 3 dominators; 2 is impossible.
	p7 := graph.Path(7)
	if got, _ := runFind(t, p7, 2); got.Found {
		t.Error("P7 dominated by 2 vertices")
	}
	if got, _ := runFind(t, p7, 3); !got.Found {
		t.Error("P7 not dominated by 3 vertices")
	}
	// Empty graph on 6 vertices: only all six dominate.
	empty := graph.New(6)
	if got, _ := runFind(t, empty, 5); got.Found {
		t.Error("empty graph dominated by 5 < 6 vertices")
	}
	if got, _ := runFind(t, empty, 6); !got.Found {
		t.Error("k=n must trivially succeed")
	}
}

func TestTrivialLargeK(t *testing.T) {
	g := graph.Gnp(8, 0.3, 1)
	if got, _ := runFind(t, g, 8); !got.Found {
		t.Error("k = n should always succeed")
	}
	if got, _ := runFind(t, g, 20); !got.Found {
		t.Error("k > n should always succeed")
	}
}

func TestIsolatedVertexForcesItself(t *testing.T) {
	g := graph.New(9)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	// Vertex 8 is isolated: any dominating set must contain it.
	got, _ := runFind(t, g, 2)
	if got.Found {
		// {0, 8} leaves 3..7 undominated.
		t.Fatal("2 vertices cannot dominate")
	}
	got, _ = runFind(t, g, 7)
	if !got.Found {
		t.Fatal("7 vertices suffice: {0,3,4,5,6,7,8}")
	}
	hasIsolated := false
	for _, v := range got.Witness {
		if v == 8 {
			hasIsolated = true
		}
	}
	if !hasIsolated {
		t.Errorf("witness %v misses the isolated vertex", got.Witness)
	}
}

func TestRoundsGrowWithK(t *testing.T) {
	// Theorem 9: O(n^{1-1/k}) rounds; k=3 costs more than k=2 at the
	// same n (more incident edges to learn). Edges travel as bit-packed
	// part masks, whose per-word packing efficiency differs between the
	// k=2 and k=3 partition shapes, so the ordering only emerges once n
	// is large enough for the exponent to dominate those constants.
	g := graph.Gnp(128, 0.2, 5)
	_, res2 := runFind(t, g, 2)
	_, res3 := runFind(t, g, 3)
	if res3.Stats.Rounds <= res2.Stats.Rounds {
		t.Errorf("k=3 rounds (%d) should exceed k=2 rounds (%d)",
			res3.Stats.Rounds, res2.Stats.Rounds)
	}
}
