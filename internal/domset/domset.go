package domset

import (
	"repro/internal/clique"
	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/subgraph"
)

// Result is the outcome of the search, identical at every node.
type Result struct {
	// Found reports whether a dominating set of size at most k exists.
	Found bool
	// Witness is a dominating set of size <= k if Found; the witness
	// found by the lowest-id successful node is broadcast so that all
	// nodes agree on it. Nil if not Found.
	Witness []int
}

// Find looks for a dominating set of size k. row is this node's
// adjacency bitset. Rounds: O(n^{1-1/k}) for the gather plus
// 1 + ceil(k / wordsPerPair) bookkeeping rounds to agree on the
// witness.
func Find(nd clique.Endpoint, row graph.Bitset, k int) Result {
	n := nd.N()
	if k < 1 {
		nd.Fail("domset: k = %d", k)
	}
	if k >= n {
		// Everything dominates; trivial witness.
		w := make([]int, 0, k)
		for v := 0; v < n && v < k; v++ {
			w = append(w, v)
		}
		return Result{Found: true, Witness: w}
	}
	s := partition.New(n, k)
	local := subgraph.GatherEdges(nd, row, s, subgraph.ScopeIncident)

	// Local search: any k-subset of S_v that dominates V. The paper's
	// step (3): knowing all edges incident to S_v suffices to verify
	// domination of the full vertex set.
	var witness []int
	if lbl := s.Label(nd.ID()); lbl != nil {
		union := s.Union(nd.ID())
		witness = searchDominating(local, union, k)
	}
	return agreeOnWitness(nd, witness, k)
}

// searchDominating returns a k-subset of candidates dominating all of g,
// or nil.
func searchDominating(g *graph.Graph, candidates []int, k int) []int {
	sel := make([]int, 0, k)
	var rec func(start int) []int
	rec = func(start int) []int {
		if len(sel) == k {
			if graph.IsDominatingSet(g, sel) {
				return append([]int(nil), sel...)
			}
			return nil
		}
		for i := start; i < len(candidates); i++ {
			sel = append(sel, candidates[i])
			if got := rec(i + 1); got != nil {
				return got
			}
			sel = sel[:len(sel)-1]
		}
		return nil
	}
	return rec(0)
}

// agreeOnWitness publishes the lowest-id node's witness (if any) so that
// all nodes produce identical output: one presence-coded vote round to
// announce success (only successful nodes spend budget), then a
// budget-chunked BroadcastFrom in which the elected node ships its k
// witness vertices.
func agreeOnWitness(nd clique.Endpoint, witness []int, k int) Result {
	n := nd.N()
	me := nd.ID()
	flags := comm.Flags(nd, witness != nil)
	leader := -1
	for v := 0; v < n; v++ {
		if flags[v] {
			leader = v
			break
		}
	}
	if leader < 0 {
		return Result{}
	}
	var words []uint64
	if me == leader {
		words = make([]uint64, k)
		for i, v := range witness {
			words[i] = uint64(v)
		}
	}
	got := comm.BroadcastFrom(nd, leader, words, k)
	out := make([]int, k)
	for i, w := range got {
		out[i] = int(w)
	}
	return Result{Found: true, Witness: out}
}

// Decide is the decision version: does a dominating set of size at most
// k exist?
func Decide(nd clique.Endpoint, row graph.Bitset, k int) bool {
	return Find(nd, row, k).Found
}
