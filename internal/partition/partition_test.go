package partition

import (
	"testing"
	"testing/quick"
)

func TestRootK(t *testing.T) {
	cases := []struct{ n, k, want int }{
		{27, 3, 3}, {26, 3, 2}, {64, 3, 4}, {100, 2, 10}, {99, 2, 9},
		{16, 4, 2}, {15, 4, 1}, {7, 1, 7}, {1, 3, 1},
	}
	for _, c := range cases {
		if got := rootK(c.n, c.k); got != c.want {
			t.Errorf("rootK(%d, %d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestSchemeInvariants(t *testing.T) {
	f := func(nRaw, kRaw uint8) bool {
		n := 1 + int(nRaw%60)
		k := 1 + int(kRaw%4)
		s := New(n, k)
		// p^k <= n: every label fits on a node.
		if s.NumLabels() > n {
			return false
		}
		// Parts cover 0..n-1 and are disjoint.
		seen := make([]int, n)
		for t := 0; t < s.P; t++ {
			lo, hi := s.PartBounds(t)
			for v := lo; v < hi; v++ {
				seen[v]++
				if s.PartOf(v) != t {
					return false
				}
			}
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestLabelRoundTrip(t *testing.T) {
	s := New(30, 3) // p = 3, 27 labels
	if s.P != 3 || s.NumLabels() != 27 {
		t.Fatalf("scheme = %+v", s)
	}
	for v := 0; v < s.NumLabels(); v++ {
		lbl := s.Label(v)
		if lbl == nil {
			t.Fatalf("node %d unlabelled", v)
		}
		if got := s.NodeForLabel(lbl); got != v {
			t.Errorf("label round trip: %d -> %v -> %d", v, lbl, got)
		}
	}
	for v := s.NumLabels(); v < s.N; v++ {
		if s.Label(v) != nil {
			t.Errorf("node %d should be unlabelled", v)
		}
	}
}

func TestEveryLabelAssigned(t *testing.T) {
	// The paper requires every possible label to be assigned to some
	// node; enumerate all tuples and look them up.
	s := New(20, 2) // p = 4, 16 labels
	var rec func(lbl []int)
	count := 0
	rec = func(lbl []int) {
		if len(lbl) == s.K {
			v := s.NodeForLabel(lbl)
			if v < 0 || v >= s.N {
				t.Fatalf("label %v maps to bad node %d", lbl, v)
			}
			count++
			return
		}
		for d := 0; d < s.P; d++ {
			rec(append(lbl, d))
		}
	}
	rec(nil)
	if count != s.NumLabels() {
		t.Fatalf("enumerated %d labels, want %d", count, s.NumLabels())
	}
}

func TestUnionAndInUnion(t *testing.T) {
	s := New(27, 3)
	for v := 0; v < s.NumLabels(); v++ {
		union := s.Union(v)
		inU := make(map[int]bool, len(union))
		for _, u := range union {
			inU[u] = true
		}
		for u := 0; u < s.N; u++ {
			if s.InUnion(v, u) != inU[u] {
				t.Fatalf("InUnion(%d, %d) = %v disagrees with Union", v, u, s.InUnion(v, u))
			}
		}
		// Union size is at most k * partSize.
		if len(union) > s.K*s.Size {
			t.Fatalf("union of %d has %d vertices", v, len(union))
		}
	}
}

func TestEveryKSubsetCovered(t *testing.T) {
	// Core completeness property: every k-subset of vertices lies inside
	// S_v for some labelled node v.
	s := New(18, 2) // p = 4
	for a := 0; a < s.N; a++ {
		for b := a + 1; b < s.N; b++ {
			lbl := []int{s.PartOf(a), s.PartOf(b)}
			v := s.NodeForLabel(lbl)
			if !s.InUnion(v, a) || !s.InUnion(v, b) {
				t.Fatalf("pair {%d,%d} not inside union of node %d", a, b, v)
			}
		}
	}
}

func TestDegenerateK1(t *testing.T) {
	s := New(10, 1)
	if s.P != 10 || s.Size != 1 {
		t.Fatalf("k=1 scheme: %+v", s)
	}
	for v := 0; v < 10; v++ {
		lbl := s.Label(v)
		if len(lbl) != 1 || lbl[0] != v {
			t.Errorf("k=1 label of %d = %v", v, lbl)
		}
	}
}
