package partition

import "fmt"

// Scheme is the globally known partition and labelling for parameter k.
// All nodes compute the same Scheme locally from (n, k); no communication
// is needed to agree on it.
type Scheme struct {
	N int // number of nodes
	K int // tuple length (the k in k-IS / k-DS)
	P int // number of parts, floor(N^{1/K})
	// Size is the part size ceil(N/P); the last part may be smaller.
	Size int
}

// New computes the scheme for an n-node clique and parameter k >= 1.
func New(n, k int) Scheme {
	if n < 1 || k < 1 {
		panic(fmt.Sprintf("partition: invalid scheme n=%d k=%d", n, k))
	}
	p := rootK(n, k)
	return Scheme{N: n, K: k, P: p, Size: (n + p - 1) / p}
}

// rootK returns floor(n^{1/k}).
func rootK(n, k int) int {
	if k == 1 {
		return n
	}
	r := 1
	for pow(r+1, k) <= n {
		r++
	}
	return r
}

// pow computes b^e with overflow saturation (inputs here are tiny).
func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
		if out < 0 || out > 1<<40 {
			return 1 << 40
		}
	}
	return out
}

// NumLabels returns p^k, the number of distinct labels; it never exceeds
// N, so each label lands on a distinct node.
func (s Scheme) NumLabels() int { return pow(s.P, s.K) }

// PartOf returns the part index of vertex v.
func (s Scheme) PartOf(v int) int {
	t := v / s.Size
	if t >= s.P {
		t = s.P - 1
	}
	return t
}

// PartBounds returns the half-open vertex range of part t. The final
// part absorbs the remainder so that parts cover all of 0..n-1.
func (s Scheme) PartBounds(t int) (lo, hi int) {
	lo = t * s.Size
	hi = lo + s.Size
	if t == s.P-1 {
		hi = s.N
	}
	if hi > s.N {
		hi = s.N
	}
	if lo > s.N {
		lo = s.N
	}
	return lo, hi
}

// Label returns node v's label as a k-tuple of part indices, or nil if
// v >= p^k (such nodes carry no label and only assist with routing).
func (s Scheme) Label(v int) []int {
	if v >= s.NumLabels() {
		return nil
	}
	lbl := make([]int, s.K)
	for i := s.K - 1; i >= 0; i-- {
		lbl[i] = v % s.P
		v /= s.P
	}
	return lbl
}

// NodeForLabel returns the node assigned the given label tuple.
func (s Scheme) NodeForLabel(lbl []int) int {
	if len(lbl) != s.K {
		panic(fmt.Sprintf("partition: label length %d, want %d", len(lbl), s.K))
	}
	id := 0
	for _, d := range lbl {
		if d < 0 || d >= s.P {
			panic(fmt.Sprintf("partition: label digit %d out of [0,%d)", d, s.P))
		}
		id = id*s.P + d
	}
	return id
}

// Union returns S_v for a labelled node v: the sorted union of the parts
// named by v's label (duplicate part names contribute once). Returns nil
// for unlabelled nodes.
func (s Scheme) Union(v int) []int {
	lbl := s.Label(v)
	if lbl == nil {
		return nil
	}
	seen := make(map[int]bool, s.K)
	var out []int
	for _, t := range lbl {
		if seen[t] {
			continue
		}
		seen[t] = true
		lo, hi := s.PartBounds(t)
		for u := lo; u < hi; u++ {
			out = append(out, u)
		}
	}
	return out
}

// InUnion reports whether vertex u belongs to S_v, without materialising
// the union.
func (s Scheme) InUnion(v, u int) bool {
	lbl := s.Label(v)
	if lbl == nil {
		return false
	}
	t := s.PartOf(u)
	for _, d := range lbl {
		if d == t {
			return true
		}
	}
	return false
}
