// Package partition implements the label scheme shared by the Dolev,
// Lenzen and Peled subgraph-detection algorithm ([16] in the paper) and
// the paper's Theorem 9 dominating-set algorithm: the vertex set is split
// into p = floor(n^{1/k}) parts of size ceil(n/p), and each node v is
// assigned a label l(v) in [p]^k so that every possible label is assigned
// to some node (p^k <= n). Node v is then responsible for the union
// S_v = S_{l(v)_1} u ... u S_{l(v)_k}.
package partition
