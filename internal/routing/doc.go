// Package routing provides the communication substrate the paper's
// algorithms assume: all-to-all broadcast, bulk message routing in the
// spirit of Lenzen's deterministic routing theorem (PODC 2013, reference
// [43] of the paper), and deterministic sorting of O(log n)-bit keys.
//
// Lenzen's theorem states that any routing instance in which every node
// sends at most s*n and receives at most r*n messages of O(log n) bits can
// be delivered in O(s + r) rounds deterministically. Re-implementing
// Lenzen's algorithm verbatim is out of scope; we substitute a two-phase
// Valiant-style scheme (spread via pseudo-random intermediates chosen by a
// fixed seeded hash, then deliver), which achieves the same O(s + r) shape
// on non-adversarial instances and is deterministic for a fixed seed. The
// simulator measures true round counts, so the substitution is auditable
// in every experiment; see DESIGN.md section 5.
package routing
