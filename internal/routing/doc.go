// Package routing implements deterministic sorting of O(log n)-bit
// keys on the congested clique, the role Lenzen's sorting theorem
// (PODC 2013, reference [43] of the paper) plays in the paper's
// substrate. The algorithm is an LSD radix sort with base n: each pass
// costs three bookkeeping collectives plus one balanced comm.Route, and
// there are ceil(log_n maxKey) passes, so poly(n)-bounded keys sort in
// O(1) passes.
//
// The raw communication primitives this package once carried moved to
// package comm, the shared collective layer: comm.BroadcastAll,
// comm.MaxWord/SumWord, comm.AllToAll, and the Lenzen-style balanced
// comm.Route (a two-phase Valiant-style scheme — spread via
// pseudo-random intermediates chosen by a fixed seeded hash, then
// deliver — deterministic for a fixed seed, with the O(s + r) shape of
// Lenzen's theorem on non-adversarial instances).
package routing
