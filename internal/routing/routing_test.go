package routing

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/clique"
)

func TestSortSmall(t *testing.T) {
	const n = 6
	input := [][]uint64{{9, 3}, {7, 7}, {1}, {}, {50, 2, 8}, {4}}
	var all []uint64
	for _, in := range input {
		all = append(all, in...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	blocks := make([][]uint64, n)
	_, err := clique.Run(clique.Config{N: n, WordsPerPair: 4}, func(nd *clique.Node) {
		res := Sort(nd, input[nd.ID()], 64)
		if res.Total != len(all) {
			nd.Fail("Total = %d, want %d", res.Total, len(all))
		}
		blocks[nd.ID()] = res.Keys
	})
	if err != nil {
		t.Fatal(err)
	}
	var got []uint64
	for _, b := range blocks {
		got = append(got, b...)
	}
	if len(got) != len(all) {
		t.Fatalf("reassembled %d keys, want %d", len(got), len(all))
	}
	for i := range all {
		if got[i] != all[i] {
			t.Fatalf("sorted order wrong at %d: got %v want %v", i, got, all)
		}
	}
}

func TestSortRandom(t *testing.T) {
	f := func(seed uint64) bool {
		n := 5 + int(seed%4)
		rng := rand.New(rand.NewPCG(seed, 1))
		input := make([][]uint64, n)
		var all []uint64
		for v := 0; v < n; v++ {
			k := rng.IntN(2 * n)
			for i := 0; i < k; i++ {
				key := uint64(rng.IntN(1000))
				input[v] = append(input[v], key)
				all = append(all, key)
			}
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		blocks := make([][]uint64, n)
		_, err := clique.Run(clique.Config{N: n, WordsPerPair: 4}, func(nd *clique.Node) {
			blocks[nd.ID()] = Sort(nd, input[nd.ID()], 1000).Keys
		})
		if err != nil {
			return false
		}
		var got []uint64
		for v, b := range blocks {
			block := (len(all) + n - 1) / n
			lo := v * block
			hi := lo + block
			if hi > len(all) {
				hi = len(all)
			}
			if lo > len(all) {
				lo = len(all)
			}
			if len(b) != hi-lo {
				return false
			}
			got = append(got, b...)
		}
		for i := range all {
			if got[i] != all[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestSortEmptyInstance(t *testing.T) {
	const n = 4
	_, err := clique.Run(clique.Config{N: n, WordsPerPair: 4}, func(nd *clique.Node) {
		res := Sort(nd, nil, 10)
		if res.Total != 0 || len(res.Keys) != 0 {
			nd.Fail("empty sort returned %+v", res)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSortSinglePassBound(t *testing.T) {
	// Keys below n need exactly one radix pass; verify rounds stay flat
	// when doubling key magnitude within one digit.
	const n = 8
	rounds := func(maxKey uint64) int {
		res, err := clique.Run(clique.Config{N: n, WordsPerPair: 4}, func(nd *clique.Node) {
			keys := []uint64{uint64(nd.ID()), uint64(nd.ID()) / 2}
			Sort(nd, keys, maxKey)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Rounds
	}
	if r1, r2 := rounds(n), rounds(n*n); r2 <= r1 {
		t.Errorf("two-digit sort (%d rounds) not more expensive than one-digit (%d rounds)", r2, r1)
	}
}
