package routing

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/clique"
)

func TestAllBroadcast(t *testing.T) {
	const n, k = 6, 5
	tables := make([][][]uint64, n)
	res, err := clique.Run(clique.Config{N: n}, func(nd *clique.Node) {
		words := make([]uint64, k)
		for i := range words {
			words[i] = uint64(nd.ID()*100 + i)
		}
		tables[nd.ID()] = AllBroadcast(nd, words, k)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds != k {
		t.Errorf("AllBroadcast rounds = %d, want %d", res.Stats.Rounds, k)
	}
	for v := 0; v < n; v++ {
		for p := 0; p < n; p++ {
			for i := 0; i < k; i++ {
				if tables[v][p][i] != uint64(p*100+i) {
					t.Fatalf("node %d table[%d][%d] = %d", v, p, i, tables[v][p][i])
				}
			}
		}
	}
}

func TestAllBroadcastWiderBudget(t *testing.T) {
	const n, k = 4, 6
	res, err := clique.Run(clique.Config{N: n, WordsPerPair: 3}, func(nd *clique.Node) {
		AllBroadcast(nd, make([]uint64, k), k)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds != 2 { // ceil(6/3)
		t.Errorf("rounds = %d, want 2", res.Stats.Rounds)
	}
}

func TestReductions(t *testing.T) {
	const n = 7
	_, err := clique.Run(clique.Config{N: n}, func(nd *clique.Node) {
		if got := MaxWord(nd, uint64(nd.ID()*3)); got != 3*(n-1) {
			nd.Fail("MaxWord = %d", got)
		}
		if got := SumWord(nd, uint64(nd.ID())); got != n*(n-1)/2 {
			nd.Fail("SumWord = %d", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// routeInstance runs Route on a random (s, r)-style instance and checks
// exact multiset delivery.
func routeInstance(t *testing.T, n, perNode int, skewed bool, seed uint64) *clique.Result {
	t.Helper()
	// Build the global instance up front so every node knows its own
	// packets and the test knows the expectation.
	rng := rand.New(rand.NewPCG(seed, 99))
	sentTo := make([][][2]uint64, n) // per destination: (src, tag)
	instance := make([][]Packet, n)
	for v := 0; v < n; v++ {
		for i := 0; i < perNode; i++ {
			dst := rng.IntN(n)
			if skewed {
				dst = (v + 1) % n // everyone floods one neighbour pattern
			}
			if dst == v {
				dst = (dst + 1) % n
			}
			tag := uint64(v*1000 + i)
			instance[v] = append(instance[v], Packet{Dst: dst, Payload: []uint64{tag}})
			sentTo[dst] = append(sentTo[dst], [2]uint64{uint64(v), tag})
		}
	}
	got := make([][]Packet, n)
	res, err := clique.Run(clique.Config{N: n, WordsPerPair: 4}, func(nd *clique.Node) {
		got[nd.ID()] = Route(nd, instance[nd.ID()], 1, 42)
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		if len(got[v]) != len(sentTo[v]) {
			t.Fatalf("node %d received %d packets, want %d", v, len(got[v]), len(sentTo[v]))
		}
		want := append([][2]uint64(nil), sentTo[v]...)
		have := make([][2]uint64, len(got[v]))
		for i, p := range got[v] {
			have[i] = [2]uint64{uint64(p.Src), p.Payload[0]}
		}
		sortPairs(want)
		sortPairs(have)
		for i := range want {
			if want[i] != have[i] {
				t.Fatalf("node %d delivery mismatch: got %v want %v", v, have[i], want[i])
			}
		}
	}
	return res
}

func sortPairs(ps [][2]uint64) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i][0] != ps[j][0] {
			return ps[i][0] < ps[j][0]
		}
		return ps[i][1] < ps[j][1]
	})
}

func TestRouteUniform(t *testing.T) {
	routeInstance(t, 8, 10, false, 1)
}

func TestRouteSkewed(t *testing.T) {
	routeInstance(t, 8, 10, true, 2)
}

func TestRouteEmpty(t *testing.T) {
	const n = 5
	_, err := clique.Run(clique.Config{N: n}, func(nd *clique.Node) {
		if out := Route(nd, nil, 1, 7); len(out) != 0 {
			nd.Fail("empty route returned %d packets", len(out))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRouteSelfAddressed(t *testing.T) {
	const n = 4
	_, err := clique.Run(clique.Config{N: n, WordsPerPair: 4}, func(nd *clique.Node) {
		out := Route(nd, []Packet{{Dst: nd.ID(), Payload: []uint64{uint64(nd.ID())}}}, 1, 3)
		if len(out) != 1 || out[0].Payload[0] != uint64(nd.ID()) || out[0].Src != nd.ID() {
			nd.Fail("self-route failed: %v", out)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRouteWidePayload(t *testing.T) {
	const n = 5
	_, err := clique.Run(clique.Config{N: n, WordsPerPair: 2}, func(nd *clique.Node) {
		var ps []Packet
		for dst := 0; dst < n; dst++ {
			if dst != nd.ID() {
				ps = append(ps, Packet{Dst: dst, Payload: []uint64{uint64(nd.ID()), uint64(dst), 7}})
			}
		}
		out := Route(nd, ps, 3, 11)
		if len(out) != n-1 {
			nd.Fail("got %d packets, want %d", len(out), n-1)
		}
		for _, p := range out {
			if p.Payload[0] != uint64(p.Src) || p.Payload[1] != uint64(nd.ID()) || p.Payload[2] != 7 {
				nd.Fail("corrupted payload %v from %d", p.Payload, p.Src)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRouteScalesWithLoad(t *testing.T) {
	// Doubling the per-node load should roughly double the rounds, the
	// O(s + r) regime of Lenzen's theorem.
	r1 := routeInstance(t, 8, 8, false, 3).Stats.Rounds
	r2 := routeInstance(t, 8, 32, false, 3).Stats.Rounds
	if r2 < 2*r1/2 || r2 > 12*r1 {
		t.Errorf("rounds did not scale plausibly with load: %d -> %d", r1, r2)
	}
}

func TestDirectVsBalancedOnSkew(t *testing.T) {
	// Adversarial-for-direct instance: node 0 sends L packets all to
	// node 1. Direct routing needs ~L rounds on the single link; the
	// balanced router spreads phase 1 across n intermediates.
	const n, L = 16, 64
	run := func(balanced bool) int {
		res, err := clique.Run(clique.Config{N: n, WordsPerPair: 4}, func(nd *clique.Node) {
			var ps []Packet
			if nd.ID() == 0 {
				for i := 0; i < L; i++ {
					ps = append(ps, Packet{Dst: 1, Payload: []uint64{uint64(i)}})
				}
			}
			var got []Packet
			if balanced {
				got = Route(nd, ps, 1, 5)
			} else {
				got = RouteDirect(nd, ps, 1)
			}
			if nd.ID() == 1 && len(got) != L {
				nd.Fail("node 1 got %d packets, want %d", len(got), L)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Rounds
	}
	direct, bal := run(false), run(true)
	if bal >= direct {
		t.Errorf("balanced router (%d rounds) not better than direct (%d rounds) on skewed instance", bal, direct)
	}
}

func TestSortSmall(t *testing.T) {
	const n = 6
	input := [][]uint64{{9, 3}, {7, 7}, {1}, {}, {50, 2, 8}, {4}}
	var all []uint64
	for _, in := range input {
		all = append(all, in...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	blocks := make([][]uint64, n)
	_, err := clique.Run(clique.Config{N: n, WordsPerPair: 4}, func(nd *clique.Node) {
		res := Sort(nd, input[nd.ID()], 64)
		if res.Total != len(all) {
			nd.Fail("Total = %d, want %d", res.Total, len(all))
		}
		blocks[nd.ID()] = res.Keys
	})
	if err != nil {
		t.Fatal(err)
	}
	var got []uint64
	for _, b := range blocks {
		got = append(got, b...)
	}
	if len(got) != len(all) {
		t.Fatalf("reassembled %d keys, want %d", len(got), len(all))
	}
	for i := range all {
		if got[i] != all[i] {
			t.Fatalf("sorted order wrong at %d: got %v want %v", i, got, all)
		}
	}
}

func TestSortRandom(t *testing.T) {
	f := func(seed uint64) bool {
		n := 5 + int(seed%4)
		rng := rand.New(rand.NewPCG(seed, 1))
		input := make([][]uint64, n)
		var all []uint64
		for v := 0; v < n; v++ {
			k := rng.IntN(2 * n)
			for i := 0; i < k; i++ {
				key := uint64(rng.IntN(1000))
				input[v] = append(input[v], key)
				all = append(all, key)
			}
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		blocks := make([][]uint64, n)
		_, err := clique.Run(clique.Config{N: n, WordsPerPair: 4}, func(nd *clique.Node) {
			blocks[nd.ID()] = Sort(nd, input[nd.ID()], 1000).Keys
		})
		if err != nil {
			return false
		}
		var got []uint64
		for v, b := range blocks {
			block := (len(all) + n - 1) / n
			lo := v * block
			hi := lo + block
			if hi > len(all) {
				hi = len(all)
			}
			if lo > len(all) {
				lo = len(all)
			}
			if len(b) != hi-lo {
				return false
			}
			got = append(got, b...)
		}
		for i := range all {
			if got[i] != all[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestSortEmptyInstance(t *testing.T) {
	const n = 4
	_, err := clique.Run(clique.Config{N: n, WordsPerPair: 4}, func(nd *clique.Node) {
		res := Sort(nd, nil, 10)
		if res.Total != 0 || len(res.Keys) != 0 {
			nd.Fail("empty sort returned %+v", res)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSortSinglePassBound(t *testing.T) {
	// Keys below n need exactly one radix pass; verify rounds stay flat
	// when doubling key magnitude within one digit.
	const n = 8
	rounds := func(maxKey uint64) int {
		res, err := clique.Run(clique.Config{N: n, WordsPerPair: 4}, func(nd *clique.Node) {
			keys := []uint64{uint64(nd.ID()), uint64(nd.ID()) / 2}
			Sort(nd, keys, maxKey)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Rounds
	}
	if r1, r2 := rounds(n), rounds(n*n); r2 <= r1 {
		t.Errorf("two-digit sort (%d rounds) not more expensive than one-digit (%d rounds)", r2, r1)
	}
}

func TestExchangeDirect(t *testing.T) {
	// Raw stream exchange: node v owes each peer p the words
	// [v, p, v*p]; verify exact delivery and self-queue rejection.
	const n = 5
	_, err := clique.Run(clique.Config{N: n, WordsPerPair: 2}, func(nd *clique.Node) {
		queues := make([][]uint64, n)
		for p := 0; p < n; p++ {
			if p != nd.ID() {
				queues[p] = []uint64{uint64(nd.ID()), uint64(p), uint64(nd.ID() * p)}
			}
		}
		in := Exchange(nd, queues)
		for p := 0; p < n; p++ {
			if p == nd.ID() {
				continue
			}
			want := []uint64{uint64(p), uint64(nd.ID()), uint64(p * nd.ID())}
			if len(in[p]) != len(want) {
				nd.Fail("stream from %d has %d words", p, len(in[p]))
			}
			for i := range want {
				if in[p][i] != want[i] {
					nd.Fail("stream from %d corrupted at %d", p, i)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastBitsRoundTrip(t *testing.T) {
	const n, k = 9, 23
	tables := make([][][]bool, n)
	res, err := clique.Run(clique.Config{N: n}, func(nd *clique.Node) {
		bits := make([]bool, k)
		for i := range bits {
			bits[i] = (nd.ID()+i)%3 == 0
		}
		tables[nd.ID()] = BroadcastBits(nd, bits)
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		for p := 0; p < n; p++ {
			for i := 0; i < k; i++ {
				if tables[v][p][i] != ((p+i)%3 == 0) {
					t.Fatalf("node %d sees wrong bit %d of %d", v, i, p)
				}
			}
		}
	}
	// Round count: ceil(k / WordBits(n)) at one word per pair.
	want := (k + clique.WordBits(n) - 1) / clique.WordBits(n)
	if res.Stats.Rounds != want {
		t.Errorf("rounds = %d, want %d", res.Stats.Rounds, want)
	}
}
