package routing

import (
	"sort"

	"repro/internal/clique"
	"repro/internal/comm"
)

// The communication primitives this package used to carry — AllBroadcast,
// the word reductions, streamPhase, and Lenzen's balanced Route — live in
// package comm now, as BroadcastAll, MaxWord/SumWord, AllToAll, and
// Route. What remains here is the sorting algorithm built on top of them.

// SortResult is this node's share of a global sort.
type SortResult struct {
	// Keys is the node's block of the globally sorted key sequence:
	// node i holds ranks [i*BlockSize, min((i+1)*BlockSize, Total)).
	Keys []uint64
	// BlockSize is ceil(Total / n).
	BlockSize int
	// Total is the global number of keys.
	Total int
}

// Sort globally sorts the multiset of keys held by all nodes (this node
// contributes `keys`; different nodes may contribute different counts)
// and hands node i the i-th block of the sorted order. Keys must be below
// maxKey. This is the role Lenzen's sorting theorem plays in the paper's
// substrate; our implementation is an LSD radix sort with base n: each
// pass costs three bookkeeping rounds plus one comm.Route, and there are
// ceil(log_n maxKey) passes.
func Sort(nd clique.Endpoint, keys []uint64, maxKey uint64) SortResult {
	n := nd.N()
	me := nd.ID()

	total := int(comm.SumWord(nd, uint64(len(keys))))
	block := (total + n - 1) / n
	if total == 0 {
		return SortResult{BlockSize: 0, Total: 0}
	}

	// Current holding: (key, provisional rank) pairs; ranks only matter
	// for stability across passes, initialised by local position after a
	// first routing that balances counts. We simply carry (key) and
	// recompute ranks each pass from the counting information, routing
	// (key) packets; stability comes from rank ordering within the pass.
	type item struct {
		key  uint64
		rank int // global rank from the previous pass (stability tiebreak)
	}
	if maxKey == 0 {
		nd.Fail("routing: Sort needs maxKey >= 1")
	}
	items := make([]item, len(keys))
	for i, k := range keys {
		if k >= maxKey {
			nd.Fail("routing: Sort key %d >= maxKey %d", k, maxKey)
		}
		items[i] = item{key: k, rank: me*block + i} // coarse initial order
	}

	// passes = ceil(log_n maxKey), with overflow protection.
	passes := 0
	for reach := uint64(1); reach < maxKey; {
		passes++
		if reach > maxKey/uint64(n) {
			break // reach*n covers maxKey (or would overflow)
		}
		reach *= uint64(n)
	}
	if passes == 0 {
		passes = 1
	}

	div := uint64(1)
	for pass := 0; pass < passes; pass++ {
		// Stable order of local items by current digit, then by carried
		// rank (which encodes the result of previous passes).
		sort.Slice(items, func(i, j int) bool {
			di := items[i].key / div % uint64(n)
			dj := items[j].key / div % uint64(n)
			if di != dj {
				return di < dj
			}
			return items[i].rank < items[j].rank
		})

		// Count per bucket; the one-word exchange hands node b all
		// per-source counts of bucket b.
		cnt := make([]uint64, n)
		for _, it := range items {
			cnt[it.key/div%uint64(n)]++
		}
		srcCnt, _ := comm.AllToAllWord(nd, cnt)

		// Send each source its prefix offset within my bucket.
		offs := make([]uint64, n)
		var run uint64
		for v := 0; v < n; v++ {
			offs[v] = run
			run += srcCnt[v]
		}
		bucketTotal := run
		offFromBucket, _ := comm.AllToAllWord(nd, offs)

		// Broadcast bucket totals so everyone can compute global bucket
		// offsets.
		totals := comm.BroadcastWord(nd, bucketTotal)
		bucketStart := make([]uint64, n+1)
		for b := 0; b < n; b++ {
			bucketStart[b+1] = bucketStart[b] + totals[b]
		}

		// Compute each item's global rank for this pass and route it to
		// its block owner, payload (key, rank).
		var packets []comm.Packet
		seen := make([]uint64, n) // per-bucket local index among my items
		var kept []item
		for _, it := range items {
			b := int(it.key / div % uint64(n))
			rank := int(bucketStart[b] + offFromBucket[b] + seen[b])
			seen[b]++
			dst := rank / block
			if dst >= n {
				dst = n - 1
			}
			if dst == me {
				kept = append(kept, item{key: it.key, rank: rank})
				continue
			}
			packets = append(packets, comm.Packet{Dst: dst, Payload: []uint64{it.key, uint64(rank)}})
		}
		recv := comm.Route(nd, packets, 2, 0x5072+uint64(pass))
		items = kept
		for _, p := range recv {
			items = append(items, item{key: p.Payload[0], rank: int(p.Payload[1])})
		}
		sort.Slice(items, func(i, j int) bool { return items[i].rank < items[j].rank })
		div *= uint64(n)
	}

	res := SortResult{BlockSize: block, Total: total}
	for _, it := range items {
		res.Keys = append(res.Keys, it.key)
	}
	return res
}
