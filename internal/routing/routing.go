package routing

import (
	"sort"

	"repro/internal/clique"
)

// Packet is one routed message: a fixed-width payload bound for Dst.
// Within a single Route call all packets must have the same payload
// width, which keeps the wire format self-delimiting.
type Packet struct {
	Src     int
	Dst     int
	Payload []uint64
}

// AllBroadcast has every node contribute exactly k words; it returns, at
// every node, the full table indexed by sender. Each node's own entry is
// its input. Takes ceil(k / wordsPerPair) rounds: this is optimal up to
// constants, since every node must receive (n-1)k words over n-1 links.
func AllBroadcast(nd clique.Endpoint, words []uint64, k int) [][]uint64 {
	if len(words) != k {
		nd.Fail("routing: AllBroadcast given %d words, contract is exactly k=%d", len(words), k)
	}
	n := nd.N()
	out := make([][]uint64, n)
	for i := range out {
		out[i] = make([]uint64, 0, k)
	}
	out[nd.ID()] = append(out[nd.ID()], words...)

	wpp := nd.WordsPerPair()
	for off := 0; off < k; off += wpp {
		end := off + wpp
		if end > k {
			end = k
		}
		nd.Broadcast(words[off:end]...)
		nd.Tick()
		for p := 0; p < n; p++ {
			if p == nd.ID() {
				continue
			}
			out[p] = append(out[p], nd.Recv(p)...)
		}
	}
	for p := 0; p < n; p++ {
		if len(out[p]) != k {
			nd.Fail("routing: AllBroadcast received %d words from %d, want %d", len(out[p]), p, k)
		}
	}
	return out
}

// BroadcastWord is AllBroadcast for a single word per node: one round.
func BroadcastWord(nd clique.Endpoint, w uint64) []uint64 {
	table := AllBroadcast(nd, []uint64{w}, 1)
	flat := make([]uint64, nd.N())
	for i, t := range table {
		flat[i] = t[0]
	}
	return flat
}

// MaxWord computes the global maximum of one word per node in one round.
func MaxWord(nd clique.Endpoint, w uint64) uint64 {
	max := uint64(0)
	for _, x := range BroadcastWord(nd, w) {
		if x > max {
			max = x
		}
	}
	return max
}

// SumWord computes the global sum of one word per node in one round.
func SumWord(nd clique.Endpoint, w uint64) uint64 {
	total := uint64(0)
	for _, x := range BroadcastWord(nd, w) {
		total += x
	}
	return total
}

// splitmix64 is the fixed hash used to pick routing intermediates. It is
// part of the (uniform, deterministic) algorithm, playing the role of
// Lenzen's explicit balancing computation.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// streamPhase delivers per-destination word streams: queue[t] is the word
// stream this node owes node t (queue[own id] must be empty). All nodes
// agree on the number of rounds via a one-round max-reduction, then ship
// wordsPerPair words per link per round. Returns the concatenated stream
// received from each sender. Rounds: 1 + ceil(maxLinkLoad / wordsPerPair).
func streamPhase(nd clique.Endpoint, queue [][]uint64) [][]uint64 {
	n := nd.N()
	local := 0
	for t, q := range queue {
		if t == nd.ID() && len(q) > 0 {
			nd.Fail("routing: node queued %d words to itself", len(q))
		}
		if len(q) > local {
			local = len(q)
		}
	}
	max := int(MaxWord(nd, uint64(local)))

	in := make([][]uint64, n)
	wpp := nd.WordsPerPair()
	for off := 0; off < max; off += wpp {
		for t := 0; t < n; t++ {
			if t == nd.ID() || off >= len(queue[t]) {
				continue
			}
			end := off + wpp
			if end > len(queue[t]) {
				end = len(queue[t])
			}
			nd.Send(t, queue[t][off:end]...)
		}
		nd.Tick()
		for p := 0; p < n; p++ {
			if p == nd.ID() {
				continue
			}
			in[p] = append(in[p], nd.Recv(p)...)
		}
	}
	return in
}

// Route delivers an arbitrary multiset of fixed-width packets and returns
// the packets addressed to this node, with Src filled in. All nodes must
// call Route together (it is a global operation), and every packet in the
// instance must have payload width w. Cost: O((s + r) * (w + 2) /
// wordsPerPair) rounds plus a constant, where s*n and r*n bound per-node
// send and receive counts — the Lenzen [43] regime.
//
// seed selects the intermediate assignment; algorithms fix it so the
// whole computation stays deterministic.
func Route(nd clique.Endpoint, packets []Packet, w int, seed uint64) []Packet {
	n := nd.N()
	me := nd.ID()

	// Phase 1: spread every packet to a pseudo-random intermediate.
	// Wire format per packet: dst, src, payload words.
	queues := make([][]uint64, n)
	for idx, p := range packets {
		if len(p.Payload) != w {
			nd.Fail("routing: packet %d has payload width %d, instance width is %d", idx, len(p.Payload), w)
		}
		if p.Dst < 0 || p.Dst >= n {
			nd.Fail("routing: packet %d has bad destination %d", idx, p.Dst)
		}
		mid := int(splitmix64(seed^uint64(me)*0x100000001b3^uint64(idx)) % uint64(n))
		rec := make([]uint64, 0, w+2)
		rec = append(rec, uint64(p.Dst), uint64(me))
		rec = append(rec, p.Payload...)
		queues[mid] = append(queues[mid], rec...)
	}
	// Packets whose intermediate is the sender itself never hit the
	// network in phase 1; hold them aside and let them join phase 2.
	held := queues[me]
	queues[me] = nil

	in := streamPhase(nd, queues)

	// Phase 2: every intermediate forwards to true destinations.
	// Wire format per packet: src, payload words.
	queues2 := make([][]uint64, n)
	var local []Packet
	forward := func(stream []uint64) {
		for off := 0; off+w+2 <= len(stream); off += w + 2 {
			dst := int(stream[off])
			src := stream[off+1]
			payload := stream[off+2 : off+2+w]
			if dst == me {
				local = append(local, Packet{Src: int(src), Dst: me, Payload: append([]uint64(nil), payload...)})
				continue
			}
			rec := make([]uint64, 0, w+1)
			rec = append(rec, src)
			rec = append(rec, payload...)
			queues2[dst] = append(queues2[dst], rec...)
		}
	}
	forward(held)
	for p := 0; p < n; p++ {
		forward(in[p])
	}

	in2 := streamPhase(nd, queues2)

	out := local
	for p := 0; p < n; p++ {
		stream := in2[p]
		for off := 0; off+w+1 <= len(stream); off += w + 1 {
			out = append(out, Packet{
				Src:     int(stream[off]),
				Dst:     me,
				Payload: append([]uint64(nil), stream[off+1:off+1+w]...),
			})
		}
	}
	return out
}

// RouteDirect is the ablation baseline: every packet travels straight to
// its destination with no balancing. Its round count is 1 + the maximum
// number of words any single ordered pair must carry, so skewed instances
// degrade to Theta(max pair load) instead of O(s + r).
func RouteDirect(nd clique.Endpoint, packets []Packet, w int) []Packet {
	n := nd.N()
	me := nd.ID()
	queues := make([][]uint64, n)
	for idx, p := range packets {
		if len(p.Payload) != w {
			nd.Fail("routing: packet %d has payload width %d, instance width is %d", idx, len(p.Payload), w)
		}
		rec := make([]uint64, 0, w+1)
		rec = append(rec, uint64(me))
		rec = append(rec, p.Payload...)
		if p.Dst == me {
			nd.Fail("routing: RouteDirect packet addressed to self")
		}
		queues[p.Dst] = append(queues[p.Dst], rec...)
	}
	in := streamPhase(nd, queues)
	var out []Packet
	for p := 0; p < n; p++ {
		stream := in[p]
		for off := 0; off+w+1 <= len(stream); off += w + 1 {
			out = append(out, Packet{
				Src:     int(stream[off]),
				Dst:     me,
				Payload: append([]uint64(nil), stream[off+1:off+1+w]...),
			})
		}
	}
	return out
}

// SortResult is this node's share of a global sort.
type SortResult struct {
	// Keys is the node's block of the globally sorted key sequence:
	// node i holds ranks [i*BlockSize, min((i+1)*BlockSize, Total)).
	Keys []uint64
	// BlockSize is ceil(Total / n).
	BlockSize int
	// Total is the global number of keys.
	Total int
}

// Sort globally sorts the multiset of keys held by all nodes (this node
// contributes `keys`; different nodes may contribute different counts)
// and hands node i the i-th block of the sorted order. Keys must be below
// maxKey. This is the role Lenzen's sorting theorem plays in the paper's
// substrate; our implementation is an LSD radix sort with base n: each
// pass costs three bookkeeping rounds plus one Route, and there are
// ceil(log_n maxKey) passes.
func Sort(nd clique.Endpoint, keys []uint64, maxKey uint64) SortResult {
	n := nd.N()
	me := nd.ID()

	total := int(SumWord(nd, uint64(len(keys))))
	block := (total + n - 1) / n
	if total == 0 {
		return SortResult{BlockSize: 0, Total: 0}
	}

	// Current holding: (key, provisional rank) pairs; ranks only matter
	// for stability across passes, initialised by local position after a
	// first routing that balances counts. We simply carry (key) and
	// recompute ranks each pass from the counting information, routing
	// (key) packets; stability comes from rank ordering within the pass.
	type item struct {
		key  uint64
		rank int // global rank from the previous pass (stability tiebreak)
	}
	if maxKey == 0 {
		nd.Fail("routing: Sort needs maxKey >= 1")
	}
	items := make([]item, len(keys))
	for i, k := range keys {
		if k >= maxKey {
			nd.Fail("routing: Sort key %d >= maxKey %d", k, maxKey)
		}
		items[i] = item{key: k, rank: me*block + i} // coarse initial order
	}

	// passes = ceil(log_n maxKey), with overflow protection.
	passes := 0
	for reach := uint64(1); reach < maxKey; {
		passes++
		if reach > maxKey/uint64(n) {
			break // reach*n covers maxKey (or would overflow)
		}
		reach *= uint64(n)
	}
	if passes == 0 {
		passes = 1
	}

	div := uint64(1)
	for pass := 0; pass < passes; pass++ {
		// Stable order of local items by current digit, then by carried
		// rank (which encodes the result of previous passes).
		sort.Slice(items, func(i, j int) bool {
			di := items[i].key / div % uint64(n)
			dj := items[j].key / div % uint64(n)
			if di != dj {
				return di < dj
			}
			return items[i].rank < items[j].rank
		})

		// Count per bucket, send my count to the bucket's node.
		cnt := make([]uint64, n)
		for _, it := range items {
			cnt[it.key/div%uint64(n)]++
		}
		for b := 0; b < n; b++ {
			if b != me {
				nd.Send(b, cnt[b])
			}
		}
		nd.Tick()
		// Node b now owns all per-source counts of bucket b.
		srcCnt := make([]uint64, n)
		for v := 0; v < n; v++ {
			if v == me {
				srcCnt[v] = cnt[me]
				continue
			}
			if w := nd.Recv(v); len(w) == 1 {
				srcCnt[v] = w[0]
			}
		}
		// Send each source its prefix offset within my bucket.
		var run, ownOff uint64
		for v := 0; v < n; v++ {
			if v == me {
				ownOff = run
			} else {
				nd.Send(v, run)
			}
			run += srcCnt[v]
		}
		bucketTotal := run
		nd.Tick()
		offFromBucket := make([]uint64, n)
		for b := 0; b < n; b++ {
			if b == me {
				offFromBucket[b] = ownOff
				continue
			}
			if w := nd.Recv(b); len(w) == 1 {
				offFromBucket[b] = w[0]
			}
		}
		// Broadcast bucket totals so everyone can compute global bucket
		// offsets.
		totals := BroadcastWord(nd, bucketTotal)
		bucketStart := make([]uint64, n+1)
		for b := 0; b < n; b++ {
			bucketStart[b+1] = bucketStart[b] + totals[b]
		}

		// Compute each item's global rank for this pass and route it to
		// its block owner, payload (key, rank).
		var packets []Packet
		seen := make([]uint64, n) // per-bucket local index among my items
		var kept []item
		for _, it := range items {
			b := int(it.key / div % uint64(n))
			rank := int(bucketStart[b] + offFromBucket[b] + seen[b])
			seen[b]++
			dst := rank / block
			if dst >= n {
				dst = n - 1
			}
			if dst == me {
				kept = append(kept, item{key: it.key, rank: rank})
				continue
			}
			packets = append(packets, Packet{Dst: dst, Payload: []uint64{it.key, uint64(rank)}})
		}
		recv := Route(nd, packets, 2, 0x5072+uint64(pass))
		items = kept
		for _, p := range recv {
			items = append(items, item{key: p.Payload[0], rank: int(p.Payload[1])})
		}
		sort.Slice(items, func(i, j int) bool { return items[i].rank < items[j].rank })
		div *= uint64(n)
	}

	res := SortResult{BlockSize: block, Total: total}
	for _, it := range items {
		res.Keys = append(res.Keys, it.key)
	}
	return res
}

// Exchange delivers arbitrary per-destination word streams: queue[t] is
// the stream this node owes node t. All nodes agree on the number of
// rounds via a one-round max-reduction. Returns the stream received from
// each sender. This is the raw primitive underlying Route; it is exported
// for substrates (like the virtual-clique simulator) that compute their
// own balanced schedules.
func Exchange(nd clique.Endpoint, queue [][]uint64) [][]uint64 {
	return streamPhase(nd, queue)
}

// BroadcastBits has every node broadcast an arbitrary bit vector (all
// nodes must pass the same length); it returns the table indexed by
// sender. Bits are packed clique.WordBits(n) per word — the honest
// O(log n)-bit packing — so broadcasting b bits takes
// ceil(b / WordBits(n) / wordsPerPair) rounds. Broadcasting the full
// input graph this way (b = n) realises the trivial O(n / log n)
// upper bound that every problem has in the model.
func BroadcastBits(nd clique.Endpoint, bits []bool) [][]bool {
	n := nd.N()
	wb := clique.WordBits(n)
	nwords := (len(bits) + wb - 1) / wb
	words := make([]uint64, nwords)
	for i, b := range bits {
		if b {
			words[i/wb] |= 1 << (i % wb)
		}
	}
	table := AllBroadcast(nd, words, nwords)
	out := make([][]bool, n)
	for p := 0; p < n; p++ {
		row := make([]bool, len(bits))
		for i := range row {
			row[i] = table[p][i/wb]&(1<<(i%wb)) != 0
		}
		out[p] = row
	}
	return out
}
