package engine

import (
	"fmt"
	"sync"
)

// goroutineBackend is the original execution engine: one goroutine per
// node, written in a blocking style, with a mutex/condition-variable
// barrier per round. It is the semantic reference implementation; the
// lockstep backend must match it bit for bit.
type goroutineBackend struct{}

func (goroutineBackend) Name() string { return "goroutine" }

// goroutineEngine is the shared state of one simulated network.
type goroutineEngine struct {
	cfg Config
	n   int

	mu      sync.Mutex
	cond    *sync.Cond
	arrived int
	active  int
	round   int
	err     error

	// outbox[from][to] and inbox[to][from] hold the words queued /
	// delivered in the current round.
	outbox [][][]uint64
	inbox  [][][]uint64

	stats       Stats
	transcripts []*Transcript
}

func (goroutineBackend) Run(cfg Config, body func(id int, rt NodeRuntime)) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	n := cfg.N

	e := &goroutineEngine{cfg: cfg, n: n, active: n}
	e.cond = sync.NewCond(&e.mu)
	e.outbox = newMailbox(n)
	e.inbox = newMailbox(n)
	if cfg.RecordTranscript {
		e.transcripts = make([]*Transcript, n)
		for v := range e.transcripts {
			e.transcripts[v] = &Transcript{NodeID: v}
		}
	}

	var wg sync.WaitGroup
	wg.Add(n)
	for v := 0; v < n; v++ {
		go func() {
			defer wg.Done()
			defer e.leave()
			defer func() {
				r := recover()
				switch r := r.(type) {
				case nil:
				case Abort:
					// Another node failed; unwind quietly.
				case Violation:
					e.fail(r.Err)
				default:
					e.fail(fmt.Errorf("clique: node %d panicked: %v", v, r))
				}
			}()
			body(v, e)
		}()
	}
	wg.Wait()

	return finish(e.stats, e.transcripts, n), e.err
}

func newMailbox(n int) [][][]uint64 {
	m := make([][][]uint64, n)
	for i := range m {
		m[i] = make([][]uint64, n)
	}
	return m
}

// fail records the first error and wakes all waiters.
func (e *goroutineEngine) fail(err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err == nil {
		e.err = err
	}
	e.cond.Broadcast()
}

// leave deregisters a node whose function has returned. If it was the
// last straggler of the current barrier, the round completes without it.
func (e *goroutineEngine) leave() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.active--
	if e.active > 0 && e.arrived == e.active && e.err == nil {
		e.exchangeLocked()
	}
}

// Barrier is called from Node.Tick. It blocks until all active nodes have
// arrived, at which point the last arrival performs the message exchange.
func (e *goroutineEngine) Barrier(int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		panic(Abort{})
	}
	e.arrived++
	if e.arrived == e.active {
		e.exchangeLocked()
		return
	}
	myRound := e.round
	for e.round == myRound && e.err == nil {
		e.cond.Wait()
	}
	if e.err != nil {
		panic(Abort{})
	}
}

// exchangeLocked delivers all queued messages, updates statistics and
// transcripts, advances the round counter, and releases the barrier.
// Callers must hold e.mu.
func (e *goroutineEngine) exchangeLocked() {
	if e.cfg.BroadcastOnly && e.err == nil {
		if from, to := findBroadcastViolation(e.n, func(f, t int) []uint64 { return e.outbox[f][t] }); from >= 0 {
			e.err = fmt.Errorf(
				"clique: node %d round %d: broadcast-only model violated (message to %d differs from the rest)",
				from, e.round, to)
		}
	}
	e.inbox, e.outbox = e.outbox, e.inbox
	// inbox now holds what was sent: inbox[from][to]. Transpose view is
	// handled at Recv time by indexing inbox[from][to] with the reader
	// as `to`; to keep Recv O(1) we instead physically transpose here.
	// Transposing n^2 slice headers per round is cheap relative to the
	// simulated work.
	for from := 0; from < e.n; from++ {
		row := e.inbox[from]
		for to := from + 1; to < e.n; to++ {
			row[to], e.inbox[to][from] = e.inbox[to][from], row[to]
		}
	}
	// After the swap loop above, inbox[v][p] holds the words p sent to
	// v. Clear the outbox for the next round.
	for from := range e.outbox {
		row := e.outbox[from]
		for to := range row {
			row[to] = nil
		}
	}

	maxPair := 0
	var words int64
	for v := 0; v < e.n; v++ {
		for p := 0; p < e.n; p++ {
			w := len(e.inbox[v][p])
			words += int64(w)
			if w > maxPair {
				maxPair = w
			}
		}
	}
	e.stats.WordsSent += words
	if maxPair > e.stats.MaxPairWords {
		e.stats.MaxPairWords = maxPair
	}

	if e.transcripts != nil {
		recordRound(e.transcripts, e.n, func(to, from int) []uint64 { return e.inbox[to][from] })
	}

	e.round++
	e.stats.Rounds = e.round
	if e.round > e.cfg.MaxRounds && e.err == nil {
		e.err = fmt.Errorf("clique: exceeded MaxRounds = %d", e.cfg.MaxRounds)
	}
	e.arrived = 0
	e.cond.Broadcast()
}

// Send queues words for delivery; it runs on the sender's goroutine and
// touches only the sender's outbox row, so no lock is needed.
func (e *goroutineEngine) Send(from, round, to int, words []uint64) {
	box := e.outbox[from]
	if len(box[to])+len(words) > e.cfg.WordsPerPair {
		panic(budgetViolation(from, round, len(box[to])+len(words), to, e.cfg.WordsPerPair))
	}
	box[to] = append(box[to], words...)
}

// Broadcast queues the same words on every outgoing link, exactly as a
// loop of Sends would, including which target a budget violation names.
func (e *goroutineEngine) Broadcast(from, round int, words []uint64) {
	box := e.outbox[from]
	for to := 0; to < e.n; to++ {
		if to == from {
			continue
		}
		if len(box[to])+len(words) > e.cfg.WordsPerPair {
			panic(budgetViolation(from, round, len(box[to])+len(words), to, e.cfg.WordsPerPair))
		}
		box[to] = append(box[to], words...)
	}
}

func (e *goroutineEngine) Recv(to, from int) []uint64 {
	return e.inbox[to][from]
}

func (e *goroutineEngine) RecvAll(to int) [][]uint64 {
	return e.inbox[to]
}

var _ NodeRuntime = (*goroutineEngine)(nil)
