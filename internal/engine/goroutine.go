package engine

import (
	"fmt"
	"slices"
	"sync"
	"time"

	"repro/internal/trace"
)

// goroutineBackend is the original execution engine: one goroutine per
// node, written in a blocking style, with a mutex/condition-variable
// barrier per round. It is the semantic reference implementation; the
// lockstep backend must match it bit for bit.
type goroutineBackend struct{}

func (goroutineBackend) Name() string { return "goroutine" }

// goroutineEngine is the shared state of one simulated network.
type goroutineEngine struct {
	cfg Config
	n   int

	mu      sync.Mutex
	cond    *sync.Cond
	arrived int
	active  int
	round   int
	err     error

	// outbox[from][to] and inbox[to][from] hold the words queued /
	// delivered in the current round.
	outbox [][][]uint64
	inbox  [][][]uint64

	// bcastPend[v] is the size of node v's pending BroadcastBuf
	// (0 = none), bcastRound[v] the round it was staged in, and
	// bcastScratch[v] the staging buffer handed to the node. All are
	// touched only by node v itself.
	bcastPend    []int
	bcastRound   []int
	bcastScratch [][]uint64
	ops          []batchOps

	stats       Stats
	transcripts []*Transcript

	// Tracing state, all nil/zero when tr is nil (the common case).
	// lastExchange anchors round wall time; firstArrive is stamped by
	// the round's first barrier arrival so barrier wait — how long the
	// fastest node waited for the stragglers — can be measured. pairsFn
	// is the Pairs closure, built once so EndRound allocates nothing.
	tr           trace.Tracer
	lastExchange time.Time
	firstArrive  time.Time
	pairsFn      func(visit func(from, to, words int))
}

func (goroutineBackend) Run(cfg Config, body func(id int, rt NodeRuntime)) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	n := cfg.N

	e := &goroutineEngine{cfg: cfg, n: n, active: n}
	if e.tr = effectiveTracer(cfg); e.tr != nil {
		e.lastExchange = time.Now()
		e.firstArrive = e.lastExchange
		e.pairsFn = e.visitPairs
	}
	e.cond = sync.NewCond(&e.mu)
	e.outbox = newMailbox(n)
	e.inbox = newMailbox(n)
	e.bcastPend = make([]int, n)
	e.bcastRound = make([]int, n)
	e.bcastScratch = make([][]uint64, n)
	e.ops = make([]batchOps, n)
	if cfg.RecordTranscript {
		e.transcripts = make([]*Transcript, n)
		for v := range e.transcripts {
			e.transcripts[v] = &Transcript{NodeID: v}
		}
	}

	var wg sync.WaitGroup
	wg.Add(n)
	for v := 0; v < n; v++ {
		go func() {
			defer wg.Done()
			defer e.leave(v)
			defer func() {
				r := recover()
				switch r := r.(type) {
				case nil:
				case Abort:
					// Another node failed; unwind quietly.
				case Violation:
					e.fail(r.Err)
				default:
					e.fail(fmt.Errorf("clique: node %d panicked: %v", v, r))
				}
			}()
			body(v, e)
		}()
	}
	wg.Wait()

	foldBatchOps(e.ops)
	return finish(e.stats, e.transcripts, n), e.err
}

func newMailbox(n int) [][][]uint64 {
	m := make([][][]uint64, n)
	for i := range m {
		m[i] = make([][]uint64, n)
	}
	return m
}

// fail records the first error and wakes all waiters.
func (e *goroutineEngine) fail(err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err == nil {
		e.err = err
	}
	e.cond.Broadcast()
}

// leave deregisters a node whose function has returned. If it was the
// last straggler of the current barrier, the round completes without it.
// The node's pending broadcast (if any) is flushed first, so words
// queued by a returning node's final BroadcastBuf are delivered exactly
// like a final Broadcast's would be — including a budget violation,
// which here surfaces after the program body and so is recovered
// locally rather than by the body's handler.
func (e *goroutineEngine) leave(id int) {
	func() {
		defer func() {
			switch r := recover().(type) {
			case nil:
			case Violation:
				e.fail(r.Err)
			default:
				e.fail(fmt.Errorf("clique: node %d panicked: %v", id, r))
			}
		}()
		e.flushBroadcast(id)
	}()
	e.mu.Lock()
	defer e.mu.Unlock()
	e.active--
	if e.active > 0 && e.arrived == e.active && e.err == nil {
		e.exchangeLocked()
	}
}

// Barrier is called from Node.Tick. It blocks until all active nodes have
// arrived, at which point the last arrival performs the message exchange.
func (e *goroutineEngine) Barrier(id int) {
	e.flushBroadcast(id)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		panic(Abort{})
	}
	e.arrived++
	if e.tr != nil && e.arrived == 1 {
		e.firstArrive = time.Now()
	}
	if e.arrived == e.active {
		e.exchangeLocked()
		return
	}
	myRound := e.round
	for e.round == myRound && e.err == nil {
		e.cond.Wait()
	}
	if e.err != nil {
		panic(Abort{})
	}
}

// exchangeLocked delivers all queued messages, updates statistics and
// transcripts, advances the round counter, and releases the barrier.
// Callers must hold e.mu.
func (e *goroutineEngine) exchangeLocked() {
	if e.cfg.BroadcastOnly && e.err == nil {
		if from, to := findBroadcastViolation(e.n, func(f, t int) []uint64 { return e.outbox[f][t] }); from >= 0 {
			e.err = fmt.Errorf(
				"clique: node %d round %d: broadcast-only model violated (message to %d differs from the rest)",
				from, e.round, to)
		}
	}
	e.inbox, e.outbox = e.outbox, e.inbox
	// inbox now holds what was sent: inbox[from][to]. Transpose view is
	// handled at Recv time by indexing inbox[from][to] with the reader
	// as `to`; to keep Recv O(1) we instead physically transpose here.
	// Transposing n^2 slice headers per round is cheap relative to the
	// simulated work.
	for from := 0; from < e.n; from++ {
		row := e.inbox[from]
		for to := from + 1; to < e.n; to++ {
			row[to], e.inbox[to][from] = e.inbox[to][from], row[to]
		}
	}
	// After the swap loop above, inbox[v][p] holds the words p sent to
	// v. Clear the outbox for the next round.
	for from := range e.outbox {
		row := e.outbox[from]
		for to := range row {
			row[to] = nil
		}
	}

	maxPair := 0
	var words int64
	for v := 0; v < e.n; v++ {
		for p := 0; p < e.n; p++ {
			w := len(e.inbox[v][p])
			words += int64(w)
			if w > maxPair {
				maxPair = w
			}
		}
	}
	e.stats.WordsSent += words
	if maxPair > e.stats.MaxPairWords {
		e.stats.MaxPairWords = maxPair
	}

	if e.transcripts != nil {
		recordRound(e.transcripts, e.n, func(to, from int) []uint64 { return e.inbox[to][from] })
	}

	e.round++
	e.stats.Rounds = e.round
	if e.round > e.cfg.MaxRounds && e.err == nil {
		e.err = fmt.Errorf("clique: exceeded MaxRounds = %d", e.cfg.MaxRounds)
	}
	if e.tr != nil {
		// Reported under e.mu, before waking the barrier, so the inbox
		// the Pairs closure walks is the round just delivered.
		now := time.Now()
		e.tr.EndRound(trace.RoundEnd{
			Round:       e.round - 1,
			Wall:        now.Sub(e.lastExchange),
			BarrierWait: now.Sub(e.firstArrive),
			Pairs:       e.pairsFn,
		})
		e.lastExchange = now
		e.firstArrive = now
	}
	e.arrived = 0
	e.cond.Broadcast()
}

// visitPairs walks the just-delivered inbox: inbox[to][from] holds what
// `from` sent `to` this round (exchangeLocked transposed it).
func (e *goroutineEngine) visitPairs(visit func(from, to, words int)) {
	for to := 0; to < e.n; to++ {
		row := e.inbox[to]
		for from := 0; from < e.n; from++ {
			if w := len(row[from]); w != 0 {
				visit(from, to, w)
			}
		}
	}
}

// Send queues words for delivery; it runs on the sender's goroutine and
// touches only the sender's outbox row, so no lock is needed.
func (e *goroutineEngine) Send(from, round, to int, words []uint64) {
	e.flushBroadcast(from)
	box := e.outbox[from]
	if len(box[to])+len(words) > e.cfg.WordsPerPair {
		panic(budgetViolation(from, round, len(box[to])+len(words), to, e.cfg.WordsPerPair))
	}
	box[to] = append(box[to], words...)
}

// Broadcast queues the same words on every outgoing link, exactly as a
// loop of Sends would, including which target a budget violation names.
func (e *goroutineEngine) Broadcast(from, round int, words []uint64) {
	e.flushBroadcast(from)
	e.broadcastWords(from, round, words)
}

// broadcastWords is Broadcast without the pending-flush hook, shared by
// the public method and flushBroadcast itself.
func (e *goroutineEngine) broadcastWords(from, round int, words []uint64) {
	box := e.outbox[from]
	for to := 0; to < e.n; to++ {
		if to == from {
			continue
		}
		if len(box[to])+len(words) > e.cfg.WordsPerPair {
			panic(budgetViolation(from, round, len(box[to])+len(words), to, e.cfg.WordsPerPair))
		}
		box[to] = append(box[to], words...)
	}
}

// SendBuf reserves k words on the (from, to) link and returns the cell
// tail for the caller to fill: the zero-copy send path. The cell is
// grown to the full per-pair budget up front, so no later send this
// round can reallocate it — the returned slice stays aliased to the
// mailbox until the barrier, as the contract promises (and as the
// lockstep arena guarantees structurally).
func (e *goroutineEngine) SendBuf(from, round, to, k int) []uint64 {
	e.flushBroadcast(from)
	e.ops[from].sendBuf++
	box := e.outbox[from]
	l := len(box[to])
	if l+k > e.cfg.WordsPerPair {
		panic(budgetViolation(from, round, l+k, to, e.cfg.WordsPerPair))
	}
	cell := box[to]
	if cap(cell) < e.cfg.WordsPerPair {
		cell = slices.Grow(cell, e.cfg.WordsPerPair-l)
	}
	cell = cell[:l+k]
	box[to] = cell
	return cell[l : l+k : l+k]
}

// BroadcastBuf stages k words in the node's reusable scratch buffer;
// the flush at the node's next operation runs one fused broadcast of
// the filled words, with the budget checks and violation choice of a
// Broadcast issued at staging time.
func (e *goroutineEngine) BroadcastBuf(from, round, k int) []uint64 {
	e.flushBroadcast(from)
	e.ops[from].broadcastBuf++
	if k == 0 {
		return nil
	}
	if cap(e.bcastScratch[from]) < k {
		e.bcastScratch[from] = make([]uint64, k)
	}
	e.bcastPend[from] = k
	e.bcastRound[from] = round
	return e.bcastScratch[from][:k]
}

// flushBroadcast delivers a pending BroadcastBuf as one fused
// broadcast of the staged words.
func (e *goroutineEngine) flushBroadcast(from int) {
	if k := e.bcastPend[from]; k != 0 {
		e.bcastPend[from] = 0
		e.broadcastWords(from, e.bcastRound[from], e.bcastScratch[from][:k])
	}
}

func (e *goroutineEngine) Recv(to, from int) []uint64 {
	return e.inbox[to][from]
}

func (e *goroutineEngine) RecvInto(to, from int, buf []uint64) []uint64 {
	e.ops[to].recvInto++
	return append(buf, e.inbox[to][from]...)
}

func (e *goroutineEngine) RecvAll(to int) [][]uint64 {
	return e.inbox[to]
}

var _ NodeRuntime = (*goroutineEngine)(nil)
