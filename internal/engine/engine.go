package engine

import (
	"fmt"
	"math/bits"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/trace"
)

// Config describes one simulated network execution. It mirrors the model
// fields of clique.Config; backend selection itself lives one layer up.
type Config struct {
	// N is the number of nodes. Must be at least 1.
	N int
	// WordsPerPair is the per-round, per-ordered-pair message budget in
	// words. Zero means 1, the strict model.
	WordsPerPair int
	// MaxRounds aborts the run after this many rounds. Zero means
	// DefaultMaxRounds.
	MaxRounds int
	// RecordTranscript enables per-node communication transcripts.
	RecordTranscript bool
	// BroadcastOnly switches to the broadcast congested clique: each
	// round every node must send the same words to every other node.
	BroadcastOnly bool
	// Tracer, if non-nil, receives an EndRound report for every
	// exchanged round (wall time, barrier wait, per-pair words). Nil
	// disables tracing; backends guard every trace call site with a nil
	// check, so the off path does no trace work at all.
	Tracer trace.Tracer
}

// forceTrace reports whether CLIQUE_FORCE_TRACE is set: CI runs the
// engine/comm/clique tests with it under -race so the traced code paths
// are exercised even where the test itself passes no Tracer.
var forceTrace = sync.OnceValue(func() bool {
	return os.Getenv("CLIQUE_FORCE_TRACE") != ""
})

// TraceForced reports whether CLIQUE_FORCE_TRACE is set, so layers
// above (clique's span recording) can force their traced paths too.
func TraceForced() bool { return forceTrace() }

// effectiveTracer resolves a run's tracer: the configured one, or —
// under CLIQUE_FORCE_TRACE — a throwaway collector whose output nobody
// reads (it exists purely to drive the traced paths in tests).
func effectiveTracer(cfg Config) trace.Tracer {
	if cfg.Tracer != nil {
		return cfg.Tracer
	}
	if forceTrace() {
		return trace.NewCollector("forced", cfg.N, cfg.WordsPerPair)
	}
	return nil
}

// DefaultMaxRounds aborts runaway algorithms; any real congested clique
// algorithm in this repository terminates within O(n) rounds for the
// instance sizes we simulate.
const DefaultMaxRounds = 1 << 20

// MaxN and MaxWordsPerPair bound a single run's shape. They are far
// beyond anything simulatable (a 65536-node clique has 2^32 ordered
// pairs) but small enough that mailbox size arithmetic (n*n*wpp, in
// int64) cannot overflow — important now that config values can arrive
// from the network via the cliqued daemon.
const (
	MaxN            = 1 << 16
	MaxWordsPerPair = 1 << 24
)

func (c Config) withDefaults() Config {
	if c.WordsPerPair == 0 {
		c.WordsPerPair = 1
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = DefaultMaxRounds
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.N < 1 {
		return fmt.Errorf("clique: config N = %d, need N >= 1", c.N)
	}
	if c.N > MaxN {
		return fmt.Errorf("clique: config N = %d exceeds the maximum %d", c.N, MaxN)
	}
	if c.WordsPerPair < 0 {
		return fmt.Errorf("clique: config WordsPerPair = %d, need >= 0", c.WordsPerPair)
	}
	if c.WordsPerPair > MaxWordsPerPair {
		return fmt.Errorf("clique: config WordsPerPair = %d exceeds the maximum %d", c.WordsPerPair, MaxWordsPerPair)
	}
	if c.MaxRounds < 0 {
		return fmt.Errorf("clique: config MaxRounds = %d, need >= 0", c.MaxRounds)
	}
	return nil
}

// WordBits returns the number of bits the model charges for one word on an
// n-node clique: ceil(log2 n), with a minimum of 1.
func WordBits(n int) int {
	if n <= 2 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

// Stats aggregates the cost of a run in model terms.
type Stats struct {
	// Rounds is the number of synchronous rounds executed, i.e. the
	// model's time complexity of this execution.
	Rounds int

	// WordsSent is the total number of words carried by all links over
	// the whole run.
	WordsSent int64

	// MaxPairWords is the largest number of words any single ordered
	// pair carried in any single round. It never exceeds WordsPerPair.
	MaxPairWords int

	// BitsSent is WordsSent times WordBits(n): the total communication
	// volume in model bits.
	BitsSent int64
}

// Transcript is the full communication record of a single node: for each
// round, the words it sent to and received from every peer. This is the
// certificate object of Theorem 3 (normal form for nondeterministic
// algorithms).
type Transcript struct {
	// NodeID is the node this transcript belongs to.
	NodeID int
	// Rounds[r].Sent[p] are the words sent to peer p in round r;
	// Rounds[r].Recv[p] are the words received from peer p.
	Rounds []TranscriptRound
}

// TranscriptRound records one round of one node's communication.
type TranscriptRound struct {
	Sent [][]uint64
	Recv [][]uint64
}

// Words returns the total number of words (sent plus received) recorded in
// the transcript. Theorem 3 bounds this by O(T(n) * n); multiplying by
// WordBits(n) gives the O(T(n) n log n) label size of the normal form.
func (t *Transcript) Words() int {
	total := 0
	for _, r := range t.Rounds {
		for _, s := range r.Sent {
			total += len(s)
		}
		for _, rc := range r.Recv {
			total += len(rc)
		}
	}
	return total
}

// Result carries everything a completed run produced besides the
// algorithm's own outputs (which the caller collects via its node
// function's closure).
type Result struct {
	Stats Stats
	// Transcripts is non-nil only if Config.RecordTranscript was set;
	// it is indexed by node id.
	Transcripts []*Transcript
}

// Abort is the sentinel panic value used to unwind node code when the run
// is cancelled (violation in some node, or MaxRounds hit). Backends raise
// and recover it; node code must let it pass through.
type Abort struct{}

// Violation is the panic value node-side code raises on a model violation
// (bandwidth exceeded, invalid peer, Node.Fail); the backend converts it
// into the run's error.
type Violation struct{ Err error }

// NodeRuntime is the surface a backend exposes to node handles. All
// methods are called from the node program itself (whatever goroutine or
// coroutine the backend runs it on); a node only ever touches its own
// mailbox rows, so backends need no locking on these paths.
type NodeRuntime interface {
	// Send queues words from node `from` to node `to` in the current
	// round. `round` is the sender's completed-round count, used only
	// for error messages. It panics with Violation if the (from, to)
	// budget would be exceeded; target validation happens in the caller.
	Send(from, round, to int, words []uint64)
	// Broadcast queues the same words from `from` to every other node,
	// in increasing target order. Semantically identical to n-1 Sends,
	// but backends keep it on a fast path: broadcast is the densest and
	// most common traffic pattern in the algorithm suite.
	Broadcast(from, round int, words []uint64)
	// SendBuf reserves k words on the (from, to) link and returns the
	// mailbox storage itself for the caller to fill in place — the
	// zero-copy send path. The budget is charged at reservation, with
	// the same Violation as an equivalent Send; the returned slice is
	// writable until the node's next Barrier. Contents left unwritten
	// are unspecified, so callers must fill all k words.
	SendBuf(from, round, to, k int) []uint64
	// BroadcastBuf returns a k-word staging buffer, reused across the
	// node's broadcasts, that the node fills in place of building an
	// argument slice. The filled words are delivered by one fused
	// Broadcast when the node next calls any send operation or
	// Barrier, or when its program returns — with exactly Broadcast's
	// budget checks, violation choice, and round attribution, and
	// ordering before any later Send of the same round (the fused
	// Broadcast runs first). The buffer must be fully written by that
	// point and is invalid after it.
	BroadcastBuf(from, round, k int) []uint64
	// Recv returns the words `to` received from `from` in the most
	// recently completed round, or nil if none. The slice is owned by
	// the backend and valid only until the node's next barrier.
	Recv(to, from int) []uint64
	// RecvInto appends the words `to` received from `from` in the most
	// recently completed round to buf and returns the result. The
	// returned memory is caller-owned (unlike Recv), so collectives
	// can accumulate multi-round streams without retaining or
	// re-copying backend memory.
	RecvInto(to, from int, buf []uint64) []uint64
	// RecvAll returns node `to`'s full inbox for the most recently
	// completed round, indexed by sender. Backend-owned, like Recv.
	RecvAll(to int) [][]uint64
	// Barrier blocks (or suspends) node `id` until every active node
	// has arrived and the round's messages have been exchanged. It
	// panics with Abort if the run was cancelled.
	Barrier(id int)
}

// Backend schedules the node programs of one run. body is invoked once
// per node id with the runtime the node's handle should delegate to;
// it must be safe to invoke the n bodies concurrently.
type Backend interface {
	Name() string
	Run(cfg Config, body func(id int, rt NodeRuntime)) (*Result, error)
}

// DefaultBackend is the backend used when no name is given.
const DefaultBackend = "goroutine"

// backends is the single backend registry: New, Names, and the
// unknown-backend error string are all derived from this map, so adding
// a backend is one entry here and cannot desynchronise validation, flag
// help, and error text.
var backendRegistry = map[string]Backend{
	"goroutine": goroutineBackend{},
	"lockstep":  lockstepBackend{},
}

// New returns the backend with the given name; the empty string selects
// DefaultBackend.
func New(name string) (Backend, error) {
	if name == "" {
		name = DefaultBackend
	}
	if be, ok := backendRegistry[name]; ok {
		return be, nil
	}
	return nil, fmt.Errorf("engine: unknown backend %q (have: %s)", name, strings.Join(Names(), ", "))
}

// Names lists the available backend names, sorted.
func Names() []string {
	names := make([]string, 0, len(backendRegistry))
	for name := range backendRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// budgetViolation builds the canonical bandwidth error. Both backends use
// it so their error strings match exactly.
func budgetViolation(from, round, total, to, budget int) Violation {
	return Violation{Err: fmt.Errorf(
		"clique: node %d round %d: bandwidth exceeded sending %d words to %d (budget %d words/pair/round)",
		from, round, total, to, budget)}
}

// findBroadcastViolation returns the first (from, to) pair whose queued
// words differ from node from's words to its lowest-id peer, or (-1, -1)
// if every node's outbox row is uniform (the broadcast clique's law).
// out(from, to) reads the queued words, whatever the backend's layout.
func findBroadcastViolation(n int, out func(from, to int) []uint64) (int, int) {
	for from := 0; from < n; from++ {
		var ref []uint64
		first := true
		for to := 0; to < n; to++ {
			if to == from {
				continue
			}
			row := out(from, to)
			if first {
				ref = row
				first = false
				continue
			}
			if len(row) != len(ref) {
				return from, to
			}
			for i := range ref {
				if row[i] != ref[i] {
					return from, to
				}
			}
		}
	}
	return -1, -1
}

// recordRound appends one round of transcripts. in(to, from) reads the
// just-exchanged inbox. Empty slices are recorded as nil so transcripts
// compare identically across backends; nil rows stay nil without an
// append(nil, ...) pass, and each delivered (from, to) stream is copied
// exactly once — the sender's Sent entry and the receiver's Recv entry
// share the copy, which is safe because transcripts are immutable
// snapshots.
func recordRound(ts []*Transcript, n int, in func(to, from int) []uint64) {
	for v := 0; v < n; v++ {
		ts[v].Rounds = append(ts[v].Rounds, TranscriptRound{
			Sent: make([][]uint64, n),
			Recv: make([][]uint64, n),
		})
	}
	for to := 0; to < n; to++ {
		round := &ts[to].Rounds[len(ts[to].Rounds)-1]
		for from := 0; from < n; from++ {
			words := in(to, from)
			if len(words) == 0 {
				continue
			}
			cp := append([]uint64(nil), words...)
			round.Recv[from] = cp
			sender := &ts[from].Rounds[len(ts[from].Rounds)-1]
			sender.Sent[to] = cp
		}
	}
}

// finish seals a run's result: BitsSent is derived, not tracked live.
func finish(stats Stats, ts []*Transcript, n int) *Result {
	stats.BitsSent = stats.WordsSent * int64(WordBits(n))
	return &Result{Stats: stats, Transcripts: ts}
}

// batchOps counts one node's batched-path operations. Each node
// increments only its own entry (no synchronisation on the hot path);
// the entry is padded to a cache line so neighbouring nodes do not
// false-share. Runs fold the counts into the process-wide totals at
// finish.
type batchOps struct {
	sendBuf      int64
	broadcastBuf int64
	recvInto     int64
	_            [5]int64 // pad to 64 bytes
}

// Process-wide batched-path totals, the serving daemon's evidence that
// traffic moved onto the zero-copy paths (exported at /metrics).
var (
	batchedSendBuf      atomic.Int64
	batchedBroadcastBuf atomic.Int64
	batchedRecvInto     atomic.Int64
)

// foldBatchOps adds a finished run's per-node counts to the totals.
func foldBatchOps(ops []batchOps) {
	var sb, bb, ri int64
	for i := range ops {
		sb += ops[i].sendBuf
		bb += ops[i].broadcastBuf
		ri += ops[i].recvInto
	}
	if sb != 0 {
		batchedSendBuf.Add(sb)
	}
	if bb != 0 {
		batchedBroadcastBuf.Add(bb)
	}
	if ri != 0 {
		batchedRecvInto.Add(ri)
	}
}

// BatchedStats reports the cumulative number of batched-path operations
// (SendBuf, BroadcastBuf, RecvInto) executed by completed runs in this
// process, across both backends.
func BatchedStats() (sendBuf, broadcastBuf, recvInto int64) {
	return batchedSendBuf.Load(), batchedBroadcastBuf.Load(), batchedRecvInto.Load()
}
