package engine

import (
	"fmt"
	"iter"
	"runtime"
	"slices"
	"sync"
	"time"

	"repro/internal/trace"
)

// lockstepBackend is the deterministic, allocation-free execution engine.
//
// Instead of parking n goroutines on a shared condition variable, every
// node program is wrapped in a pull-style coroutine (iter.Pull): calling
// next() resumes the program until its next Tick, where it suspends by
// yielding. A central scheduler then drives rounds in lockstep:
//
//	for each round:
//	    resume every live node once          (sharded over a worker pool)
//	    exchange mailboxes, update stats     (single scheduler goroutine)
//
// Nodes within a round are resumed in increasing id order inside each
// shard, shards are disjoint, and nodes interact only through mailboxes
// that are read and written at well-defined points — so the execution,
// its statistics, and its error (always the lowest-id violation of the
// earliest failing round) are fully deterministic regardless of worker
// count or OS scheduling.
//
// Mailboxes are double-buffered flat tables indexed from-major
// (from*n+to) and reused across rounds, so the steady-state exchange
// path allocates nothing. There is no physical transpose: delivery swaps
// the two tables and Recv computes the sender-major index. Storage is
// one of two layouts picked at Run time:
//
//   - arenaBox: one word arena with a fixed wpp-word block per ordered
//     pair plus an int32 length table. Sends copy into the block;
//     clearing a round is a single memclr of the lengths. This is the
//     fast path and covers every realistic budget.
//   - sliceBox: a [][]uint64 cell table whose cells keep their backing
//     arrays (length reset, capacity reused). Fallback when n^2 * wpp
//     is too large to preallocate densely.
type lockstepBackend struct{}

func (lockstepBackend) Name() string { return "lockstep" }

// arenaThresholdWords caps the dense arena at 128 MiB of words per
// direction; beyond that the sliceBox fallback allocates per link on
// first use instead.
const arenaThresholdWords = 1 << 24

// mailbox is the storage layer of the lockstep engine. All methods are
// called either from a single node's coroutine (send, broadcast, recv,
// fillRow — each touching only that node's rows) or from the scheduler
// between rounds (exchange, outCell).
type mailbox interface {
	// send queues words on the (from, to) link, panicking with the
	// canonical budget Violation if the cell would overflow.
	send(from, round, to int, words []uint64)
	// broadcast queues words on every outgoing link of `from`.
	broadcast(from, round int, words []uint64)
	// sendBuf reserves k words on the (from, to) link and returns the
	// reserved storage for the caller to fill in place.
	sendBuf(from, round, to, k int) []uint64
	// recv returns the words delivered from -> to last round, nil if none.
	recv(to, from int) []uint64
	// recvInto appends the words delivered from -> to last round to buf.
	recvInto(to, from int, buf []uint64) []uint64
	// fillRow fills row[from] = recv(to, from) for all senders.
	fillRow(to int, row [][]uint64)
	// outCell reads a queued (not yet delivered) cell; scheduler only.
	outCell(from, to int) []uint64
	// exchange delivers the queued round: swap buffers and reset the
	// new out direction. It returns the run's cumulative word count and
	// per-pair high-water mark, tracked incrementally at send time so
	// no per-cell statistics pass is needed. Scheduler only.
	exchange() (cumWords int64, maxPair int)
	// reset returns the box to its just-allocated state so a pooled box
	// can be reused by a fresh run (see pool.go).
	reset()
}

// arenaBox stores each ordered pair's words in a fixed block of wpp
// words: arena[(from*n+to)*wpp:] with the used length in lens[from*n+to].
type arenaBox struct {
	n, wpp    int
	outW, inW []uint64
	outL, inL []int32
	sent      []senderStats
}

// senderStats is the per-sender cumulative accounting, written only by
// the sender's own coroutine and folded by the scheduler at exchange.
type senderStats struct {
	words int64
	max   int32
}

func newArenaBox(n, wpp int) *arenaBox {
	return &arenaBox{
		n: n, wpp: wpp,
		outW: make([]uint64, n*n*wpp),
		inW:  make([]uint64, n*n*wpp),
		outL: make([]int32, n*n),
		inL:  make([]int32, n*n),
		sent: make([]senderStats, n),
	}
}

// foldSent sums per-sender accounting into run-cumulative totals.
func foldSent(sent []senderStats) (int64, int) {
	var words int64
	maxPair := int32(0)
	for i := range sent {
		words += sent[i].words
		if sent[i].max > maxPair {
			maxPair = sent[i].max
		}
	}
	return words, int(maxPair)
}

func (b *arenaBox) send(from, round, to int, words []uint64) {
	i := from*b.n + to
	l := int(b.outL[i])
	if l+len(words) > b.wpp {
		panic(budgetViolation(from, round, l+len(words), to, b.wpp))
	}
	if len(words) == 1 {
		b.outW[i*b.wpp+l] = words[0]
	} else {
		copy(b.outW[i*b.wpp+l:], words)
	}
	newLen := int32(l + len(words))
	b.outL[i] = newLen
	s := &b.sent[from]
	s.words += int64(len(words))
	if newLen > s.max {
		s.max = newLen
	}
}

func (b *arenaBox) broadcast(from, round int, words []uint64) {
	n, wpp := b.n, b.wpp
	base := from * n
	lens := b.outL[base : base+n : base+n]
	var queued int64
	maxLen := int32(0)
	if len(words) == 1 {
		// Single-word messages are the model's common case; writing the
		// word directly skips a memmove call per link.
		w := words[0]
		for to := 0; to < n; to++ {
			if to == from {
				continue
			}
			l := int(lens[to])
			if l+1 > wpp {
				panic(budgetViolation(from, round, l+1, to, wpp))
			}
			b.outW[(base+to)*wpp+l] = w
			newLen := int32(l + 1)
			lens[to] = newLen
			queued++
			if newLen > maxLen {
				maxLen = newLen
			}
		}
	} else {
		for to := 0; to < n; to++ {
			if to == from {
				continue
			}
			l := int(lens[to])
			if l+len(words) > wpp {
				panic(budgetViolation(from, round, l+len(words), to, wpp))
			}
			copy(b.outW[(base+to)*wpp+l:], words)
			newLen := int32(l + len(words))
			lens[to] = newLen
			queued += int64(len(words))
			if newLen > maxLen {
				maxLen = newLen
			}
		}
	}
	s := &b.sent[from]
	s.words += queued
	if maxLen > s.max {
		s.max = maxLen
	}
}

func (b *arenaBox) sendBuf(from, round, to, k int) []uint64 {
	i := from*b.n + to
	l := int(b.outL[i])
	if l+k > b.wpp {
		panic(budgetViolation(from, round, l+k, to, b.wpp))
	}
	newLen := int32(l + k)
	b.outL[i] = newLen
	s := &b.sent[from]
	s.words += int64(k)
	if newLen > s.max {
		s.max = newLen
	}
	base := i*b.wpp + l
	return b.outW[base : base+k : base+k]
}

func (b *arenaBox) recv(to, from int) []uint64 {
	i := from*b.n + to
	l := int(b.inL[i])
	if l == 0 {
		return nil
	}
	base := i * b.wpp
	return b.inW[base : base+l : base+l]
}

func (b *arenaBox) recvInto(to, from int, buf []uint64) []uint64 {
	i := from*b.n + to
	l := int(b.inL[i])
	if l == 0 {
		return buf
	}
	base := i * b.wpp
	return append(buf, b.inW[base:base+l]...)
}

func (b *arenaBox) fillRow(to int, row [][]uint64) {
	n, wpp := b.n, b.wpp
	i := to
	for from := 0; from < n; from++ {
		if l := int(b.inL[i]); l != 0 {
			base := i * wpp
			row[from] = b.inW[base : base+l : base+l]
		} else {
			row[from] = nil
		}
		i += n
	}
}

func (b *arenaBox) outCell(from, to int) []uint64 {
	i := from*b.n + to
	base, l := i*b.wpp, int(b.outL[i])
	return b.outW[base : base+l : base+l]
}

func (b *arenaBox) exchange() (int64, int) {
	b.inW, b.outW = b.outW, b.inW
	b.inL, b.outL = b.outL, b.inL
	// The new out direction is last round's inbox; one memclr of the
	// lengths retires it. The word arena needs no clearing at all —
	// stale words past a cell's length are unreachable.
	clear(b.outL)
	return foldSent(b.sent)
}

func (b *arenaBox) reset() {
	// The word arenas need no clearing: words past a cell's recorded
	// length are unreachable, and lengths are zeroed here.
	clear(b.outL)
	clear(b.inL)
	clear(b.sent)
}

// sliceBox is the dynamically-sized fallback: flat from-major cell
// tables whose cells are reset by length and keep their capacity.
type sliceBox struct {
	n, wpp  int
	out, in [][]uint64
	sent    []senderStats
}

func newSliceBox(n, wpp int) *sliceBox {
	return &sliceBox{
		n: n, wpp: wpp,
		out:  make([][]uint64, n*n),
		in:   make([][]uint64, n*n),
		sent: make([]senderStats, n),
	}
}

func (b *sliceBox) send(from, round, to int, words []uint64) {
	i := from*b.n + to
	cell := b.out[i]
	if len(cell)+len(words) > b.wpp {
		panic(budgetViolation(from, round, len(cell)+len(words), to, b.wpp))
	}
	b.out[i] = append(cell, words...)
	s := &b.sent[from]
	s.words += int64(len(words))
	if newLen := int32(len(cell) + len(words)); newLen > s.max {
		s.max = newLen
	}
}

func (b *sliceBox) broadcast(from, round int, words []uint64) {
	n := b.n
	row := b.out[from*n : from*n+n : from*n+n]
	var queued int64
	maxLen := int32(0)
	for to := 0; to < n; to++ {
		if to == from {
			continue
		}
		cell := row[to]
		if len(cell)+len(words) > b.wpp {
			panic(budgetViolation(from, round, len(cell)+len(words), to, b.wpp))
		}
		row[to] = append(cell, words...)
		queued += int64(len(words))
		if newLen := int32(len(cell) + len(words)); newLen > maxLen {
			maxLen = newLen
		}
	}
	s := &b.sent[from]
	s.words += queued
	if maxLen > s.max {
		s.max = maxLen
	}
}

func (b *sliceBox) sendBuf(from, round, to, k int) []uint64 {
	i := from*b.n + to
	cell := b.out[i]
	l := len(cell)
	if l+k > b.wpp {
		panic(budgetViolation(from, round, l+k, to, b.wpp))
	}
	// Grow to the full budget up front: later sends this round can then
	// never reallocate the cell, so the returned slice stays aliased to
	// the mailbox until the barrier (the arena layout's structural
	// guarantee, matched here).
	if cap(cell) < b.wpp {
		cell = slices.Grow(cell, b.wpp-l)
	}
	cell = cell[:l+k]
	b.out[i] = cell
	s := &b.sent[from]
	s.words += int64(k)
	if newLen := int32(l + k); newLen > s.max {
		s.max = newLen
	}
	return cell[l : l+k : l+k]
}

func (b *sliceBox) recv(to, from int) []uint64 {
	if s := b.in[from*b.n+to]; len(s) != 0 {
		return s[:len(s):len(s)]
	}
	return nil
}

func (b *sliceBox) recvInto(to, from int, buf []uint64) []uint64 {
	return append(buf, b.in[from*b.n+to]...)
}

func (b *sliceBox) fillRow(to int, row [][]uint64) {
	for from := range row {
		row[from] = b.recv(to, from)
	}
}

func (b *sliceBox) outCell(from, to int) []uint64 {
	return b.out[from*b.n+to]
}

func (b *sliceBox) exchange() (int64, int) {
	b.in, b.out = b.out, b.in
	// Reset last round's inbox (the new outbox) by length only; the
	// backing arrays stay and are appended into next round.
	for i, c := range b.out {
		if len(c) != 0 {
			b.out[i] = c[:0]
		}
	}
	return foldSent(b.sent)
}

func (b *sliceBox) reset() {
	// Cells keep their backing arrays (that is the point of reuse);
	// only lengths and accounting are cleared.
	for i, c := range b.out {
		if len(c) != 0 {
			b.out[i] = c[:0]
		}
	}
	for i, c := range b.in {
		if len(c) != 0 {
			b.in[i] = c[:0]
		}
	}
	clear(b.sent)
}

type lockstepEngine struct {
	cfg Config
	n   int

	round int
	box   mailbox

	// rows[v] is node v's lazily-built RecvAll view, reused per round.
	rows [][][]uint64

	// pend[v] is the size of node v's pending BroadcastBuf (0 = none),
	// pendRound[v] the round it was staged in, and scratch[v] the
	// staging buffer handed to the node. Touched only by node v's
	// coroutine (and, for the final flush, by the worker that owns it).
	pend      []int
	pendRound []int
	scratch   [][]uint64
	ops       []batchOps

	// Per-node coroutine controls. yield[v] is stored by node v's
	// coroutine on startup and invoked by Barrier to suspend it; next[v]
	// resumes it; stop[v] cancels it (a pending yield returns false).
	yield []func(struct{}) bool
	next  []func() (struct{}, bool)
	stop  []func()

	// live[v] is cleared by the worker that observes node v's program
	// return; vio[v] is set by node v's coroutine when it aborts with a
	// model violation. Workers touch disjoint shards, and the scheduler
	// reads both only between rounds.
	live []bool
	vio  []error

	stats       Stats
	transcripts []*Transcript

	// Tracing state, nil/zero when tr is nil. lastRound anchors round
	// wall time; pairsFn is built once so EndRound allocates nothing.
	tr        trace.Tracer
	lastRound time.Time
	pairsFn   func(visit func(from, to, words int))
}

// newLockstepEngine allocates the per-run node state shared by the
// serial and batched schedulers. The mailbox and tracer are attached by
// the caller, which also owns their lifecycles.
func newLockstepEngine(cfg Config, n int) *lockstepEngine {
	e := &lockstepEngine{cfg: cfg, n: n}
	e.rows = make([][][]uint64, n)
	e.pend = make([]int, n)
	e.pendRound = make([]int, n)
	e.scratch = make([][]uint64, n)
	e.ops = make([]batchOps, n)
	e.yield = make([]func(struct{}) bool, n)
	e.next = make([]func() (struct{}, bool), n)
	e.stop = make([]func(), n)
	e.live = make([]bool, n)
	e.vio = make([]error, n)
	if cfg.RecordTranscript {
		e.transcripts = make([]*Transcript, n)
		for v := range e.transcripts {
			e.transcripts[v] = &Transcript{NodeID: v}
		}
	}
	return e
}

// start wraps every node's body in a pull coroutine and marks it live.
func (e *lockstepEngine) start(body func(id int, rt NodeRuntime)) {
	for v := 0; v < e.n; v++ {
		e.next[v], e.stop[v] = iter.Pull(e.program(v, body))
		e.live[v] = true
	}
}

// stopAll unwinds every still-suspended coroutine so their goroutines
// are released; a pending yield returns false, raising Abort inside the
// node program.
func (e *lockstepEngine) stopAll() {
	for v := 0; v < e.n; v++ {
		e.stop[v]()
	}
}

func (lockstepBackend) Run(cfg Config, body func(id int, rt NodeRuntime)) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	n := cfg.N

	e := newLockstepEngine(cfg, n)
	if e.tr = effectiveTracer(cfg); e.tr != nil {
		e.lastRound = time.Now()
		e.pairsFn = e.visitPairs
	}
	e.box = getBox(n, cfg.WordsPerPair)
	// Retire the mailbox to the pool once every coroutine has unwound
	// (the stop defer below runs first, LIFO): node programs may touch
	// their rows right up to the Abort that unwinds them.
	defer func() { putBox(e.box) }()

	e.start(body)
	liveCount := n
	// Whatever happens below, unwind every still-suspended coroutine so
	// their goroutines are released.
	defer e.stopAll()

	// The worker pool: each worker owns a fixed contiguous shard of
	// nodes for the whole run, so a given node is always resumed by the
	// same worker, in the same within-shard order.
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	starts := make([]chan struct{}, workers)
	for w := 0; w < workers; w++ {
		starts[w] = make(chan struct{}, 1)
		lo, hi := w*n/workers, (w+1)*n/workers
		go func(start <-chan struct{}, lo, hi int) {
			for range start {
				for v := lo; v < hi; v++ {
					if !e.live[v] {
						continue
					}
					if _, ok := e.next[v](); !ok {
						e.live[v] = false
					}
				}
				wg.Done()
			}
		}(starts[w], lo, hi)
	}
	defer func() {
		for _, s := range starts {
			close(s)
		}
	}()

	var err error
	for liveCount > 0 {
		// Resume every live node one round step: from its last Tick
		// (or its start) to its next Tick (or its return).
		wg.Add(workers)
		for _, s := range starts {
			s <- struct{}{}
		}
		wg.Wait()

		// Model violations surface only between rounds, so the run's
		// error is deterministically the lowest-id violator.
		for v := 0; v < n; v++ {
			if e.vio[v] != nil {
				err = e.vio[v]
				break
			}
		}
		if err != nil {
			break
		}
		liveCount = 0
		for v := 0; v < n; v++ {
			if e.live[v] {
				liveCount++
			}
		}
		if liveCount == 0 {
			// Every program returned during this step; like the
			// goroutine backend, a round no node finishes with Tick
			// is not exchanged or counted.
			break
		}
		if err = e.exchange(); err != nil {
			break
		}
	}

	foldBatchOps(e.ops)
	return finish(e.stats, e.transcripts, n), err
}

// program wraps one node's body as a coroutine sequence. Yielding happens
// inside Barrier; a false yield result means the scheduler cancelled the
// run, which unwinds the body with Abort. Violations and stray panics are
// recorded for the scheduler instead of crashing the worker.
func (e *lockstepEngine) program(v int, body func(id int, rt NodeRuntime)) iter.Seq[struct{}] {
	return func(yield func(struct{}) bool) {
		e.yield[v] = yield
		defer func() {
			switch r := recover().(type) {
			case nil, Abort:
			case Violation:
				e.vio[v] = r.Err
			default:
				e.vio[v] = fmt.Errorf("clique: node %d panicked: %v", v, r)
			}
		}()
		body(v, e)
		// A returning node's pending BroadcastBuf still belongs to the
		// round the scheduler is about to exchange.
		e.flushBroadcast(v)
	}
}

// exchange delivers the round's messages and advances the clock. It runs
// on the scheduler goroutine while all node coroutines are suspended.
func (e *lockstepEngine) exchange() error {
	var exStart time.Time
	if e.tr != nil {
		exStart = time.Now()
	}
	var err error
	if e.cfg.BroadcastOnly {
		if from, to := findBroadcastViolation(e.n, e.box.outCell); from >= 0 {
			err = fmt.Errorf(
				"clique: node %d round %d: broadcast-only model violated (message to %d differs from the rest)",
				from, e.round, to)
		}
	}

	// The mailbox reports run-cumulative totals (tracked at send time);
	// assign rather than accumulate. Words queued by a round that never
	// exchanges are never folded in, matching the goroutine backend.
	words, maxPair := e.box.exchange()
	e.stats.WordsSent = words
	if maxPair > e.stats.MaxPairWords {
		e.stats.MaxPairWords = maxPair
	}

	if e.transcripts != nil {
		recordRound(e.transcripts, e.n, e.box.recv)
	}

	e.round++
	e.stats.Rounds = e.round
	if e.round > e.cfg.MaxRounds && err == nil {
		err = fmt.Errorf("clique: exceeded MaxRounds = %d", e.cfg.MaxRounds)
	}
	if e.tr != nil {
		// All node coroutines are suspended here, so the Pairs closure
		// reads the just-delivered inbox race-free. Wall covers the
		// resume step plus this exchange; BarrierWait is the exchange
		// alone — on this backend every node is held for exactly the
		// scheduler's delivery time.
		now := time.Now()
		e.tr.EndRound(trace.RoundEnd{
			Round:       e.round - 1,
			Wall:        now.Sub(e.lastRound),
			BarrierWait: now.Sub(exStart),
			Pairs:       e.pairsFn,
		})
		e.lastRound = now
	}
	return err
}

// visitPairs walks the just-delivered round via the mailbox's recv view.
func (e *lockstepEngine) visitPairs(visit func(from, to, words int)) {
	for to := 0; to < e.n; to++ {
		for from := 0; from < e.n; from++ {
			if w := len(e.box.recv(to, from)); w != 0 {
				visit(from, to, w)
			}
		}
	}
}

// Barrier suspends node id until the scheduler has exchanged the round.
func (e *lockstepEngine) Barrier(id int) {
	e.flushBroadcast(id)
	if !e.yield[id](struct{}{}) {
		panic(Abort{})
	}
}

func (e *lockstepEngine) Send(from, round, to int, words []uint64) {
	e.flushBroadcast(from)
	e.box.send(from, round, to, words)
}

func (e *lockstepEngine) Broadcast(from, round int, words []uint64) {
	e.flushBroadcast(from)
	e.box.broadcast(from, round, words)
}

// SendBuf hands out reserved mailbox storage: on the arena layout the
// returned slice is the link's block in the word arena itself.
func (e *lockstepEngine) SendBuf(from, round, to, k int) []uint64 {
	e.flushBroadcast(from)
	e.ops[from].sendBuf++
	return e.box.sendBuf(from, round, to, k)
}

// BroadcastBuf stages k words in the node's reusable scratch buffer;
// the flush at the node's next operation runs one fused broadcast of
// the filled words straight into the mailbox (see NodeRuntime).
func (e *lockstepEngine) BroadcastBuf(from, round, k int) []uint64 {
	e.flushBroadcast(from)
	e.ops[from].broadcastBuf++
	if k == 0 {
		return nil
	}
	if cap(e.scratch[from]) < k {
		e.scratch[from] = make([]uint64, k)
	}
	e.pend[from] = k
	e.pendRound[from] = round
	return e.scratch[from][:k]
}

func (e *lockstepEngine) flushBroadcast(from int) {
	if k := e.pend[from]; k != 0 {
		e.pend[from] = 0
		e.box.broadcast(from, e.pendRound[from], e.scratch[from][:k])
	}
}

func (e *lockstepEngine) Recv(to, from int) []uint64 {
	return e.box.recv(to, from)
}

func (e *lockstepEngine) RecvInto(to, from int, buf []uint64) []uint64 {
	e.ops[to].recvInto++
	return e.box.recvInto(to, from, buf)
}

// RecvAll materialises node `to`'s inbox row into a per-node scratch
// slice, reused across rounds; like Recv, the result is engine-owned and
// valid until the node's next barrier.
func (e *lockstepEngine) RecvAll(to int) [][]uint64 {
	row := e.rows[to]
	if row == nil {
		row = make([][]uint64, e.n)
		e.rows[to] = row
	}
	e.box.fillRow(to, row)
	return row
}

var _ NodeRuntime = (*lockstepEngine)(nil)
