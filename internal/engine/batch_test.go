package engine

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"unsafe"
)

// batchProgram is a deterministic mixed-traffic program whose behaviour
// depends on both the run index and the node id, so cross-run state
// leakage or mis-indexed mailboxes show up as stat/transcript drift.
func batchProgram(run int, rounds int) func(id int, rt NodeRuntime) {
	return func(id int, rt NodeRuntime) {
		var sum uint64
		for r := 0; r < rounds; r++ {
			rt.Broadcast(id, r, []uint64{uint64(run*1000 + id*10 + r)})
			if id%2 == 0 {
				to := (id + run + 1) % batchTestN
				if to != id {
					rt.Send(id, r, to, []uint64{uint64(run) ^ uint64(r)})
				}
			}
			rt.Barrier(id)
			for p := 0; p < batchTestN; p++ {
				if p == id {
					continue
				}
				for _, w := range rt.Recv(id, p) {
					sum += w
				}
			}
		}
		_ = sum
	}
}

const batchTestN = 9

// runPair executes the same batch natively and serially on the lockstep
// backend and returns both result sets.
func runPair(t *testing.T, cfg Config, batch int, body func(run, id int, rt NodeRuntime)) (native, serial []*Result, nativeErrs, serialErrs []error) {
	t.Helper()
	be, err := New("lockstep")
	if err != nil {
		t.Fatal(err)
	}
	native, nativeErrs = be.(BatchBackend).RunBatch(cfg, batch, body)
	serial, serialErrs = runBatchSerial(be, cfg, batch, body)
	return native, serial, nativeErrs, serialErrs
}

func checkBatchEquivalence(t *testing.T, native, serial []*Result, nativeErrs, serialErrs []error) {
	t.Helper()
	if len(native) != len(serial) || len(nativeErrs) != len(serialErrs) {
		t.Fatalf("batch result shape mismatch: %d/%d results, %d/%d errors",
			len(native), len(serial), len(nativeErrs), len(serialErrs))
	}
	for r := range native {
		if (nativeErrs[r] == nil) != (serialErrs[r] == nil) {
			t.Fatalf("run %d: batched err = %v, serial err = %v", r, nativeErrs[r], serialErrs[r])
		}
		if nativeErrs[r] != nil && nativeErrs[r].Error() != serialErrs[r].Error() {
			t.Fatalf("run %d: batched err %q != serial err %q", r, nativeErrs[r], serialErrs[r])
		}
		if native[r].Stats != serial[r].Stats {
			t.Fatalf("run %d: batched stats %+v != serial stats %+v", r, native[r].Stats, serial[r].Stats)
		}
		if !reflect.DeepEqual(native[r].Transcripts, serial[r].Transcripts) {
			t.Fatalf("run %d: batched transcripts differ from serial", r)
		}
	}
}

func TestRunBatchMatchesSerial(t *testing.T) {
	for _, batch := range []int{2, 3, 7, 16} {
		t.Run(fmt.Sprintf("batch=%d", batch), func(t *testing.T) {
			cfg := Config{N: batchTestN, WordsPerPair: 4, RecordTranscript: true}
			body := func(run, id int, rt NodeRuntime) { batchProgram(run, 5+run%3)(id, rt) }
			native, serial, nativeErrs, serialErrs := runPair(t, cfg, batch, body)
			checkBatchEquivalence(t, native, serial, nativeErrs, serialErrs)
		})
	}
}

// TestRunBatchUnevenLengths pins the per-run early-exit schedule: runs
// end at different rounds (run r executes r+1 rounds), and a finished
// run must stop being charged rounds while the rest of the batch
// continues.
func TestRunBatchUnevenLengths(t *testing.T) {
	cfg := Config{N: 5, WordsPerPair: 2}
	body := func(run, id int, rt NodeRuntime) {
		for r := 0; r <= run; r++ {
			rt.Broadcast(id, r, []uint64{uint64(run)})
			rt.Barrier(id)
		}
	}
	native, serial, nativeErrs, serialErrs := runPair(t, cfg, 6, body)
	checkBatchEquivalence(t, native, serial, nativeErrs, serialErrs)
	for r, res := range native {
		if res.Stats.Rounds != r+1 {
			t.Fatalf("run %d: got %d rounds, want %d", r, res.Stats.Rounds, r+1)
		}
	}
}

// TestRunBatchViolationIsolation checks the violation contract: a run
// that overflows its budget fails with the canonical lowest-id error
// while every other run of the batch completes untouched.
func TestRunBatchViolationIsolation(t *testing.T) {
	const bad = 2
	cfg := Config{N: 6, WordsPerPair: 1}
	body := func(run, id int, rt NodeRuntime) {
		rt.Broadcast(id, 0, []uint64{uint64(id)})
		if run == bad && id >= 3 {
			// Nodes 3, 4, 5 all overflow in round 1; the run's error must
			// name node 3, the lowest violator.
			rt.Barrier(id)
			rt.Broadcast(id, 1, []uint64{1, 2})
		}
		rt.Barrier(id)
	}
	native, serial, nativeErrs, serialErrs := runPair(t, cfg, 5, body)
	checkBatchEquivalence(t, native, serial, nativeErrs, serialErrs)
	for r, err := range nativeErrs {
		if r == bad {
			if err == nil {
				t.Fatalf("run %d: want violation, got nil", r)
			}
			want := "clique: node 3 round 1: bandwidth exceeded sending 2 words to 0 (budget 1 words/pair/round)"
			if err.Error() != want {
				t.Fatalf("run %d: got %q, want %q", r, err, want)
			}
		} else if err != nil {
			t.Fatalf("run %d: unexpected error %v", r, err)
		}
	}
}

// TestRunBatchMaxRounds checks that the round limit applies per run.
func TestRunBatchMaxRounds(t *testing.T) {
	cfg := Config{N: 4, MaxRounds: 3}
	body := func(run, id int, rt NodeRuntime) {
		rounds := 2
		if run == 1 {
			rounds = 10
		}
		for r := 0; r < rounds; r++ {
			rt.Broadcast(id, r, []uint64{1})
			rt.Barrier(id)
		}
	}
	native, serial, nativeErrs, serialErrs := runPair(t, cfg, 3, body)
	checkBatchEquivalence(t, native, serial, nativeErrs, serialErrs)
	if nativeErrs[1] == nil || nativeErrs[0] != nil || nativeErrs[2] != nil {
		t.Fatalf("want only run 1 to hit MaxRounds, got %v", nativeErrs)
	}
}

// TestRunBatchPanicIsolation checks that a node panic fails its own run
// with the canonical error and leaves sibling runs intact.
func TestRunBatchPanicIsolation(t *testing.T) {
	cfg := Config{N: 4, WordsPerPair: 1}
	body := func(run, id int, rt NodeRuntime) {
		rt.Broadcast(id, 0, []uint64{1})
		rt.Barrier(id)
		if run == 0 && id == 2 {
			panic("boom")
		}
		rt.Broadcast(id, 1, []uint64{2})
		rt.Barrier(id)
	}
	native, serial, nativeErrs, serialErrs := runPair(t, cfg, 4, body)
	checkBatchEquivalence(t, native, serial, nativeErrs, serialErrs)
	if nativeErrs[0] == nil || nativeErrs[0].Error() != "clique: node 2 panicked: boom" {
		t.Fatalf("run 0: got %v", nativeErrs[0])
	}
}

// TestRunBatchBroadcastOnly checks the broadcast-clique law is enforced
// per run in batch mode.
func TestRunBatchBroadcastOnly(t *testing.T) {
	cfg := Config{N: 4, WordsPerPair: 2, BroadcastOnly: true}
	body := func(run, id int, rt NodeRuntime) {
		if run == 1 && id == 1 {
			rt.Send(id, 0, 2, []uint64{7})
		} else {
			rt.Broadcast(id, 0, []uint64{uint64(run)})
		}
		rt.Barrier(id)
	}
	native, serial, nativeErrs, serialErrs := runPair(t, cfg, 3, body)
	checkBatchEquivalence(t, native, serial, nativeErrs, serialErrs)
	if nativeErrs[1] == nil {
		t.Fatal("run 1: want broadcast-only violation, got nil")
	}
}

// TestRunBatchInvalidConfig checks that a bad configuration fails every
// run with the same validation error a serial Run would return.
func TestRunBatchInvalidConfig(t *testing.T) {
	be, _ := New("lockstep")
	results, errs := RunBatch(be, Config{N: 0}, 3, func(run, id int, rt NodeRuntime) {})
	if len(results) != 3 || len(errs) != 3 {
		t.Fatalf("got %d results / %d errors, want 3 / 3", len(results), len(errs))
	}
	_, wantErr := be.Run(Config{N: 0}, func(id int, rt NodeRuntime) {})
	for r := range errs {
		if results[r] != nil {
			t.Fatalf("run %d: non-nil result for invalid config", r)
		}
		if errs[r] == nil || errs[r].Error() != wantErr.Error() {
			t.Fatalf("run %d: got %v, want %v", r, errs[r], wantErr)
		}
	}
}

// TestRunBatchEmptyAndSingle pins the degenerate shapes: zero runs
// return nothing, one run round-trips through the serial fallback.
func TestRunBatchEmptyAndSingle(t *testing.T) {
	be, _ := New("lockstep")
	if res, errs := RunBatch(be, Config{N: 3}, 0, nil); res != nil || errs != nil {
		t.Fatalf("batch=0: got %v, %v, want nil, nil", res, errs)
	}
	res, errs := RunBatch(be, Config{N: 3}, 1, func(run, id int, rt NodeRuntime) {
		rt.Broadcast(id, 0, []uint64{uint64(run)})
		rt.Barrier(id)
	})
	if len(res) != 1 || errs[0] != nil || res[0].Stats.Rounds != 1 {
		t.Fatalf("batch=1: got %+v, %v", res, errs)
	}
}

// TestRunBatchGoroutineFallback checks the generic serial fallback used
// for backends without native batching.
func TestRunBatchGoroutineFallback(t *testing.T) {
	be, err := New("goroutine")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := be.(BatchBackend); ok {
		t.Fatal("goroutine backend unexpectedly implements BatchBackend; update this test")
	}
	cfg := Config{N: batchTestN, WordsPerPair: 4, RecordTranscript: true}
	body := func(run, id int, rt NodeRuntime) { batchProgram(run, 4)(id, rt) }
	batched, batchedErrs := RunBatch(be, cfg, 3, body)
	serial, serialErrs := runBatchSerial(be, cfg, 3, body)
	checkBatchEquivalence(t, batched, serial, batchedErrs, serialErrs)
}

// TestRunBatchLargeShapeFallsBackToPooledBoxes drives the per-run
// mailbox path (batch total over the shared-arena budget) and checks
// equivalence survives the layout switch.
func TestRunBatchLargeShapeFallsBackToPooledBoxes(t *testing.T) {
	// 2 * 64 * 64 * (1 << 12) words per run: two runs exceed the batch
	// arena budget while each run alone stays dense.
	cfg := Config{N: 64, WordsPerPair: 1 << 12}
	if perRun := int64(cfg.N) * int64(cfg.N) * int64(cfg.WordsPerPair); 2*perRun <= batchArenaThresholdWords {
		t.Fatalf("shape no longer exceeds the batch arena budget; fix the test (perRun=%d)", perRun)
	}
	body := func(run, id int, rt NodeRuntime) {
		rt.Send(id, 0, (id+1)%64, []uint64{uint64(run)})
		rt.Barrier(id)
	}
	native, serial, nativeErrs, serialErrs := runPair(t, cfg, 2, body)
	checkBatchEquivalence(t, native, serial, nativeErrs, serialErrs)
}

// TestRunBatchSharesArena checks that a dense batch really takes the
// run-major shared-arena layout (all runs on *arenaBox views) rather
// than silently falling back.
func TestRunBatchSharesArena(t *testing.T) {
	const n, wpp = 8, 2
	chunk := n * n * wpp
	boxes, release := newBatchBoxes(4, n, wpp)
	defer release()
	var base *arenaBox
	for r, b := range boxes {
		ab, ok := b.(*arenaBox)
		if !ok {
			t.Fatalf("run %d: got %T, want *arenaBox", r, b)
		}
		if r == 0 {
			base = ab
			continue
		}
		// Run-major: run r's out arena starts exactly 2*r*chunk words
		// after run 0's in one shared backing array.
		want := uintptr(unsafe.Pointer(&base.outW[0])) + uintptr(2*r*chunk)*unsafe.Sizeof(uint64(0))
		if got := uintptr(unsafe.Pointer(&ab.outW[0])); got != want {
			t.Fatalf("run %d: outW not run-major in the shared arena", r)
		}
	}
}

var errSentinel = errors.New("sentinel")

// TestRunBatchFailViolation checks Violation panics (Node.Fail-style)
// carry through per run.
func TestRunBatchFailViolation(t *testing.T) {
	cfg := Config{N: 3}
	body := func(run, id int, rt NodeRuntime) {
		if run == 2 && id == 1 {
			panic(Violation{Err: errSentinel})
		}
		rt.Broadcast(id, 0, []uint64{1})
		rt.Barrier(id)
	}
	native, serial, nativeErrs, serialErrs := runPair(t, cfg, 3, body)
	checkBatchEquivalence(t, native, serial, nativeErrs, serialErrs)
	if !errors.Is(nativeErrs[2], errSentinel) {
		t.Fatalf("run 2: got %v, want sentinel", nativeErrs[2])
	}
}
