package engine

import (
	"fmt"
	"strings"
	"testing"
)

// runAll executes the same body on every backend and returns results
// keyed by backend name, failing on any backend error.
func runAll(t *testing.T, cfg Config, body func(id int, rt NodeRuntime)) map[string]*Result {
	t.Helper()
	out := map[string]*Result{}
	for _, name := range Names() {
		be, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := be.Run(cfg, body)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = res
	}
	return out
}

// transcriptKey flattens transcripts for cross-backend comparison.
func transcriptKey(ts []*Transcript) string {
	var sb strings.Builder
	for _, tr := range ts {
		fmt.Fprintf(&sb, "%d:%v;", tr.NodeID, tr.Rounds)
	}
	return sb.String()
}

// TestBatchedMatchesVarargs pins the core contract of the batched
// paths: a program written with SendBuf/BroadcastBuf/RecvInto produces
// exactly the Stats and transcripts of its Send/Broadcast/Recv twin,
// on every backend.
func TestBatchedMatchesVarargs(t *testing.T) {
	const n, wpp, rounds = 5, 3, 4
	cfg := Config{N: n, WordsPerPair: wpp, RecordTranscript: true}

	classic := runAll(t, cfg, func(id int, rt NodeRuntime) {
		for r := 0; r < rounds; r++ {
			rt.Broadcast(id, r, []uint64{uint64(id*10 + r)})
			rt.Send(id, r, (id+1)%n, []uint64{uint64(id), uint64(r)})
			rt.Barrier(id)
			for p := 0; p < n; p++ {
				if p != id {
					_ = rt.Recv(id, p)
				}
			}
		}
	})
	batched := runAll(t, cfg, func(id int, rt NodeRuntime) {
		var scratch []uint64
		for r := 0; r < rounds; r++ {
			buf := rt.BroadcastBuf(id, r, 1)
			buf[0] = uint64(id*10 + r)
			sb := rt.SendBuf(id, r, (id+1)%n, 2)
			sb[0], sb[1] = uint64(id), uint64(r)
			rt.Barrier(id)
			for p := 0; p < n; p++ {
				if p != id {
					scratch = rt.RecvInto(id, p, scratch[:0])
				}
			}
		}
	})

	refStats := classic["goroutine"].Stats
	refTr := transcriptKey(classic["goroutine"].Transcripts)
	for name, res := range classic {
		if res.Stats != refStats || transcriptKey(res.Transcripts) != refTr {
			t.Fatalf("classic %s diverges from goroutine reference", name)
		}
	}
	for name, res := range batched {
		if res.Stats != refStats {
			t.Errorf("batched %s stats = %+v, want %+v", name, res.Stats, refStats)
		}
		if transcriptKey(res.Transcripts) != refTr {
			t.Errorf("batched %s transcripts diverge from the varargs run", name)
		}
	}
}

// TestBroadcastBufOrdersBeforeLaterSends verifies the replication
// contract: words reserved by BroadcastBuf land on every link *before*
// words queued by later Sends of the same round, on every backend.
func TestBroadcastBufOrdersBeforeLaterSends(t *testing.T) {
	const n = 3
	for name, res := range runAll(t, Config{N: n, WordsPerPair: 4, RecordTranscript: true},
		func(id int, rt NodeRuntime) {
			buf := rt.BroadcastBuf(id, 0, 1)
			buf[0] = uint64(100 + id)
			rt.Send(id, 0, (id+1)%n, []uint64{uint64(200 + id)})
			rt.Barrier(id)
		}) {
		tr := res.Transcripts[1].Rounds[0]
		want := []uint64{100, 200} // broadcast word first, then the send
		got := tr.Recv[0]
		if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
			t.Errorf("%s: node 1 received %v from node 0, want %v", name, got, want)
		}
		if w := tr.Recv[2]; len(w) != 1 || w[0] != 102 {
			t.Errorf("%s: node 1 received %v from node 2, want [102]", name, w)
		}
	}
}

// TestBroadcastBufFlushOnReturn: a node that fills its broadcast buffer
// and returns without ever reaching another runtime call still delivers
// the words to the round its peers complete.
func TestBroadcastBufFlushOnReturn(t *testing.T) {
	const n = 4
	for name, res := range runAll(t, Config{N: n, RecordTranscript: true},
		func(id int, rt NodeRuntime) {
			if id == 0 {
				buf := rt.BroadcastBuf(id, 0, 1)
				buf[0] = 7
				return // no Barrier: the leave path must flush
			}
			rt.Barrier(id)
			if w := rt.Recv(id, 0); len(w) != 1 || w[0] != 7 {
				panic(Violation{Err: fmt.Errorf("node %d saw %v from the returning broadcaster", id, w)})
			}
		}) {
		if res.Stats.WordsSent != n-1 {
			t.Errorf("%s: words = %d, want %d", name, res.Stats.WordsSent, n-1)
		}
	}
}

// TestSendBufStaysAliasedAcrossLaterSends pins the SendBuf contract on
// every backend and storage layout: the returned slice aliases the
// mailbox until the barrier, even when a later Send grows the same
// cell (the slice-backed layouts pre-grow to the full budget so the
// append cannot reallocate the cell out from under the buffer).
func TestSendBufStaysAliasedAcrossLaterSends(t *testing.T) {
	const n = 3
	for name, res := range runAll(t, Config{N: n, WordsPerPair: 4, RecordTranscript: true},
		func(id int, rt NodeRuntime) {
			buf := rt.SendBuf(id, 0, (id+1)%n, 1)
			rt.Send(id, 0, (id+1)%n, []uint64{7})
			buf[0] = 42 // late write, after the cell grew
			rt.Barrier(id)
		}) {
		got := res.Transcripts[1].Rounds[0].Recv[0]
		if len(got) != 2 || got[0] != 42 || got[1] != 7 {
			t.Errorf("%s: node 1 received %v from node 0, want [42 7]", name, got)
		}
	}
}

// TestBatchedBudgetViolations: SendBuf and BroadcastBuf must raise the
// canonical budget violation, deterministically on the lockstep engine.
func TestBatchedBudgetViolations(t *testing.T) {
	for _, name := range Names() {
		be, _ := New(name)
		_, err := be.Run(Config{N: 3, WordsPerPair: 2}, func(id int, rt NodeRuntime) {
			buf := rt.SendBuf(id, 0, (id+1)%3, 3)
			for i := range buf {
				buf[i] = 1
			}
		})
		if err == nil || !strings.Contains(err.Error(), "bandwidth exceeded") {
			t.Errorf("%s: SendBuf overflow error = %v", name, err)
		}
		_, err = be.Run(Config{N: 3, WordsPerPair: 2}, func(id int, rt NodeRuntime) {
			rt.Send(id, 0, (id+1)%3, []uint64{1})
			rt.BroadcastBuf(id, 0, 2) // 1 + 2 > budget on the link already used
		})
		if err == nil || !strings.Contains(err.Error(), "bandwidth exceeded") {
			t.Errorf("%s: BroadcastBuf overflow error = %v", name, err)
		}
	}
}

// TestBroadcastBufBroadcastOnly: the zero-copy broadcast is uniform by
// construction and must satisfy the broadcast-only model; a SendBuf to
// a single link must violate it.
func TestBroadcastBufBroadcastOnly(t *testing.T) {
	for _, name := range Names() {
		be, _ := New(name)
		_, err := be.Run(Config{N: 4, BroadcastOnly: true}, func(id int, rt NodeRuntime) {
			buf := rt.BroadcastBuf(id, 0, 1)
			buf[0] = uint64(id)
			rt.Barrier(id)
		})
		if err != nil {
			t.Errorf("%s: uniform BroadcastBuf flagged in broadcast-only mode: %v", name, err)
		}
		_, err = be.Run(Config{N: 4, BroadcastOnly: true}, func(id int, rt NodeRuntime) {
			if id == 0 {
				buf := rt.SendBuf(id, 0, 1, 1)
				buf[0] = 9
			}
			rt.Barrier(id)
		})
		if err == nil || !strings.Contains(err.Error(), "broadcast-only") {
			t.Errorf("%s: single-link SendBuf not flagged in broadcast-only mode: %v", name, err)
		}
	}
}

// TestBroadcastBufSingleNode: with n == 1 there are no links; the
// buffer must still be writable and the run clean.
func TestBroadcastBufSingleNode(t *testing.T) {
	for name, res := range runAll(t, Config{N: 1}, func(id int, rt NodeRuntime) {
		buf := rt.BroadcastBuf(id, 0, 3)
		for i := range buf {
			buf[i] = uint64(i)
		}
		rt.Barrier(id)
	}) {
		if res.Stats.WordsSent != 0 {
			t.Errorf("%s: single-node broadcast counted %d words", name, res.Stats.WordsSent)
		}
	}
}

// TestRecvIntoAppends: RecvInto must append to the caller's buffer and
// return memory that survives the next barrier.
func TestRecvIntoAppends(t *testing.T) {
	const n, rounds = 3, 3
	runAll(t, Config{N: n}, func(id int, rt NodeRuntime) {
		var acc []uint64
		for r := 0; r < rounds; r++ {
			rt.Broadcast(id, r, []uint64{uint64(id*100 + r)})
			rt.Barrier(id)
			acc = rt.RecvInto(id, (id+1)%n, acc)
		}
		if len(acc) != rounds {
			panic(Violation{Err: fmt.Errorf("accumulated %d words, want %d", len(acc), rounds)})
		}
		peer := (id + 1) % n
		for r, w := range acc {
			if w != uint64(peer*100+r) {
				panic(Violation{Err: fmt.Errorf("acc[%d] = %d", r, w)})
			}
		}
	})
}

// TestBatchedStatsCounters: completed runs fold their batched-path op
// counts into the process totals.
func TestBatchedStatsCounters(t *testing.T) {
	sb0, bb0, ri0 := BatchedStats()
	const n = 4
	runAll(t, Config{N: n, WordsPerPair: 2}, func(id int, rt NodeRuntime) {
		buf := rt.BroadcastBuf(id, 0, 1)
		buf[0] = 1
		sb := rt.SendBuf(id, 0, (id+1)%n, 1)
		sb[0] = 2
		rt.Barrier(id)
		rt.RecvInto(id, (id+1)%n, nil)
	})
	sb1, bb1, ri1 := BatchedStats()
	backends := int64(len(Names()))
	if sb1-sb0 != backends*n || bb1-bb0 != backends*n || ri1-ri0 != backends*n {
		t.Errorf("batched counters moved by (%d, %d, %d), want (%d, %d, %d)",
			sb1-sb0, bb1-bb0, ri1-ri0, backends*n, backends*n, backends*n)
	}
}

// TestRegistryNamesMatchNew: every listed backend constructs, and the
// unknown-backend error enumerates exactly the listed names — the two
// can no longer drift because both derive from the registry map.
func TestRegistryNamesMatchNew(t *testing.T) {
	for _, name := range Names() {
		be, err := New(name)
		if err != nil || be.Name() != name {
			t.Errorf("New(%q) = %v, %v", name, be, err)
		}
	}
	_, err := New("no-such-backend")
	if err == nil {
		t.Fatal("unknown backend accepted")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-backend error %q does not list %q", err, name)
		}
	}
	if def, err := New(""); err != nil || def.Name() != DefaultBackend {
		t.Errorf("empty name resolved to %v, %v; want %s", def, err, DefaultBackend)
	}
}
