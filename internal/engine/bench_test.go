package engine

import (
	"fmt"
	"testing"
)

// BenchmarkBackendExchange is the acceptance microbenchmark for the
// lockstep engine: every node broadcasts a word and reads a rotating
// window of 8 peers each round — the canonical gossip round shape of the
// algorithm suite (leader reads, neighbor probes), with the network
// itself at the densest traffic the model allows. Run for a few hundred
// rounds, the horizon of an APSP-class algorithm, so the steady-state
// exchange path dominates setup. Compare goroutine vs lockstep at the
// same n; the reported rounds/sec is the engine's simulated-round
// throughput. The lockstep engine delivers lazily (a message costs read
// work only if its receiver looks at it), which is where most of its
// headroom over the transpose-everything goroutine engine comes from.
func BenchmarkBackendExchange(b *testing.B) {
	benchExchange(b, 8)
}

// BenchmarkBackendExchangeFullRead is the lockstep engine's worst case:
// every node reads every peer's message every round, so lazy delivery
// buys nothing and the gap narrows to allocation and scheduling wins.
func BenchmarkBackendExchangeFullRead(b *testing.B) {
	benchExchange(b, -1)
}

// benchExchange broadcasts all-to-all and reads `reads` peers per node
// per round (-1 = all peers, via RecvAll).
func benchExchange(b *testing.B, reads int) {
	const roundsPerRun = 256
	for _, name := range Names() {
		be, err := New(name)
		if err != nil {
			b.Fatal(err)
		}
		for _, n := range []int{64, 256} {
			b.Run(fmt.Sprintf("%s/n=%d", name, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					var sink uint64
					res, err := be.Run(Config{N: n, WordsPerPair: 1}, func(id int, rt NodeRuntime) {
						word := make([]uint64, 1)
						var sum uint64
						for r := 0; r < roundsPerRun; r++ {
							word[0] = uint64(id + r)
							rt.Broadcast(id, r, word)
							rt.Barrier(id)
							if reads < 0 {
								for p, w := range rt.RecvAll(id) {
									if p != id {
										sum += w[0]
									}
								}
							} else {
								for j := 1; j <= reads; j++ {
									p := (id + r + j) % n
									if p != id {
										sum += rt.Recv(id, p)[0]
									}
								}
							}
						}
						if id == 0 {
							sink = sum
						}
					})
					_ = sink
					if err != nil {
						b.Fatal(err)
					}
					if res.Stats.Rounds != roundsPerRun {
						b.Fatalf("rounds = %d", res.Stats.Rounds)
					}
				}
				b.ReportMetric(float64(roundsPerRun)*float64(b.N)/b.Elapsed().Seconds(), "rounds/sec")
			})
		}
	}
}

// BenchmarkBackendExchangeBatched is the canonical exchange rewritten
// on the zero-copy paths (BroadcastBuf + RecvInto): the allocs/op gap
// against BenchmarkBackendExchange is the benefit the batched engine
// API buys the collective layer.
func BenchmarkBackendExchangeBatched(b *testing.B) {
	const roundsPerRun = 256
	for _, name := range Names() {
		be, err := New(name)
		if err != nil {
			b.Fatal(err)
		}
		for _, n := range []int{64, 256} {
			b.Run(fmt.Sprintf("%s/n=%d", name, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					var sink uint64
					res, err := be.Run(Config{N: n, WordsPerPair: 1}, func(id int, rt NodeRuntime) {
						var sum uint64
						var scratch []uint64
						for r := 0; r < roundsPerRun; r++ {
							buf := rt.BroadcastBuf(id, r, 1)
							buf[0] = uint64(id + r)
							rt.Barrier(id)
							for j := 1; j <= 8; j++ {
								p := (id + r + j) % n
								if p != id {
									scratch = rt.RecvInto(id, p, scratch[:0])
									sum += scratch[0]
								}
							}
						}
						if id == 0 {
							sink = sum
						}
					})
					_ = sink
					if err != nil {
						b.Fatal(err)
					}
					if res.Stats.Rounds != roundsPerRun {
						b.Fatalf("rounds = %d", res.Stats.Rounds)
					}
				}
				b.ReportMetric(float64(roundsPerRun)*float64(b.N)/b.Elapsed().Seconds(), "rounds/sec")
			})
		}
	}
}

// BenchmarkBackendTranscript measures transcript-recording runs: the
// full-traffic exchange with RecordTranscript on, where recordRound's
// copy strategy (one shared copy per delivered pair, nil rows stay nil)
// dominates the per-round overhead.
func BenchmarkBackendTranscript(b *testing.B) {
	const roundsPerRun = 32
	for _, name := range Names() {
		be, err := New(name)
		if err != nil {
			b.Fatal(err)
		}
		for _, n := range []int{64} {
			b.Run(fmt.Sprintf("%s/n=%d", name, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := be.Run(Config{N: n, WordsPerPair: 1, RecordTranscript: true},
						func(id int, rt NodeRuntime) {
							word := make([]uint64, 1)
							for r := 0; r < roundsPerRun; r++ {
								// Half the nodes stay silent so the empty-row
								// fast path is exercised alongside the copies.
								if id%2 == 0 {
									word[0] = uint64(id + r)
									rt.Broadcast(id, r, word)
								}
								rt.Barrier(id)
							}
						})
					if err != nil {
						b.Fatal(err)
					}
					if res.Stats.Rounds != roundsPerRun {
						b.Fatalf("rounds = %d", res.Stats.Rounds)
					}
				}
				b.ReportMetric(float64(roundsPerRun)*float64(b.N)/b.Elapsed().Seconds(), "rounds/sec")
			})
		}
	}
}

// BenchmarkBackendBarrier isolates the scheduling cost: nodes tick with
// no traffic at all, so the barrier/resume machinery is everything.
func BenchmarkBackendBarrier(b *testing.B) {
	const roundsPerRun = 64
	for _, name := range Names() {
		be, _ := New(name)
		for _, n := range []int{64, 256} {
			b.Run(fmt.Sprintf("%s/n=%d", name, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					_, err := be.Run(Config{N: n}, func(id int, rt NodeRuntime) {
						for r := 0; r < roundsPerRun; r++ {
							rt.Barrier(id)
						}
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(roundsPerRun)*float64(b.N)/b.Elapsed().Seconds(), "rounds/sec")
			})
		}
	}
}

// BenchmarkRunBatch measures the cross-run batched scheduler against a
// serial loop over the same seed sweep, at the small-message shape
// batching targets (per-round dispatch dominates an n=8 exchange).
// rounds/sec is aggregate simulated rounds across the whole sweep; the
// batched/serial ratio is the live form of the committed bench_batched
// probe's speedup figure.
func BenchmarkRunBatch(b *testing.B) {
	const (
		n            = 8
		roundsPerRun = 256
		batch        = 8
	)
	body := func(id int, rt NodeRuntime) {
		for r := 0; r < roundsPerRun; r++ {
			buf := rt.BroadcastBuf(id, r, 1)
			buf[0] = uint64(id + r)
			rt.Barrier(id)
		}
	}
	cfg := Config{N: n, WordsPerPair: 1}
	be, err := New("lockstep")
	if err != nil {
		b.Fatal(err)
	}
	check := func(b *testing.B, res *Result, err error) {
		b.Helper()
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.Rounds != roundsPerRun {
			b.Fatalf("rounds = %d", res.Stats.Rounds)
		}
	}
	b.Run("batched", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			results, errs := RunBatch(be, cfg, batch, func(run, id int, rt NodeRuntime) { body(id, rt) })
			for r := range results {
				check(b, results[r], errs[r])
			}
		}
		b.ReportMetric(float64(batch*roundsPerRun)*float64(b.N)/b.Elapsed().Seconds(), "rounds/sec")
	})
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for r := 0; r < batch; r++ {
				res, err := be.Run(cfg, body)
				check(b, res, err)
			}
		}
		b.ReportMetric(float64(batch*roundsPerRun)*float64(b.N)/b.Elapsed().Seconds(), "rounds/sec")
	})
}
