package engine

import (
	"runtime"
	"sync"
)

// Cross-run batched execution: one scheduler drives B independent
// simulations of the same shape (n, wpp) in lockstep, amortising round
// dispatch, barrier bookkeeping, and mailbox storage across the batch.
// Seed sweeps — registry repeat loops, cliquegrid cells, cliqued queue
// jobs — are embarrassingly batchable: the runs share their round
// structure but not their data, so the only coupling is the scheduler.
//
// The contract is strict bit-identity: run r of a batch produces exactly
// the (*Result, error) that a serial Run of the same program would —
// same Stats, same Transcripts, same canonical lowest-id violation.
// Runs are independent: one run's violation or early return halts that
// run alone while the rest of the batch proceeds.

// BatchBackend is the optional Backend extension for native cross-run
// batching. Backends without it are batched by RunBatch's serial
// fallback, which is trivially equivalent.
type BatchBackend interface {
	Backend

	// RunBatch executes `batch` independent runs of cfg's shape. body is
	// invoked once per (run, node id) pair; results and errors are
	// indexed by run, and entry r must be bit-identical to what
	// Run(cfg, func(id, rt) { body(r, id, rt) }) would return.
	RunBatch(cfg Config, batch int, body func(run, id int, rt NodeRuntime)) ([]*Result, []error)
}

// RunBatch executes `batch` independent runs of the same configuration
// on the given backend, natively batched when the backend supports it
// and serially otherwise. Per-run results are bit-identical to serial
// Run calls either way.
func RunBatch(be Backend, cfg Config, batch int, body func(run, id int, rt NodeRuntime)) ([]*Result, []error) {
	if batch <= 0 {
		return nil, nil
	}
	if bb, ok := be.(BatchBackend); ok {
		return bb.RunBatch(cfg, batch, body)
	}
	return runBatchSerial(be, cfg, batch, body)
}

// runBatchSerial is the reference batching: one serial Run per entry.
func runBatchSerial(be Backend, cfg Config, batch int, body func(run, id int, rt NodeRuntime)) ([]*Result, []error) {
	results := make([]*Result, batch)
	errs := make([]error, batch)
	for r := 0; r < batch; r++ {
		results[r], errs[r] = be.Run(cfg, func(id int, rt NodeRuntime) { body(r, id, rt) })
	}
	return results, errs
}

// batchChunkSlots caps the live-coroutine working set of one native
// batch chunk. Batching pays off where per-round scheduling overhead
// dominates — small n — and loses where the resident coroutine stacks
// and mailboxes outgrow the cache: measured on a single-core host, the
// canonical exchange speeds up 1.4x at n=8 with 8 runs per chunk,
// decays through 1.1x at n=16, and inverts to 0.74x by n=64 with 16
// runs resident. Capping chunks at ~64 slots (never fewer than 2 runs)
// keeps every measured shape at or above serial speed.
const batchChunkSlots = 64

// batchChunkRuns is the native chunk width for an n-node shape: enough
// runs to amortise round dispatch, few enough that the chunk's stacks
// and arenas stay cache-resident.
func batchChunkRuns(n int) int {
	if c := batchChunkSlots / n; c > 2 {
		return c
	}
	return 2
}

// RunBatch is the lockstep engine's native batch mode: every run keeps
// its own lockstepEngine (mailbox views, per-node coroutines, stats)
// while a single scheduler and worker pool drive all of them round by
// round. One dispatch resumes the live nodes of every live run, and one
// settle pass per round scans violations, counts survivors, and
// exchanges each live run's mailbox — so the per-round fixed costs that
// dominate small-message workloads are paid once per batch instead of
// once per run. Large batches execute as a sequence of cache-sized
// chunks (batchChunkRuns runs at a time); chunking is invisible in the
// results, which stay bit-identical to serial runs.
func (b lockstepBackend) RunBatch(cfg Config, batch int, body func(run, id int, rt NodeRuntime)) ([]*Result, []error) {
	if batch <= 0 {
		return nil, nil
	}
	if err := cfg.Validate(); err != nil {
		errs := make([]error, batch)
		for i := range errs {
			errs[i] = err
		}
		return make([]*Result, batch), errs
	}
	cfg = cfg.withDefaults()
	if batch == 1 || effectiveTracer(cfg) != nil {
		// A tracer accumulates one run's round reports, so traced
		// executions stay serial (bit-identical by contract); a batch of
		// one has nothing to amortise.
		return runBatchSerial(b, cfg, batch, body)
	}
	if chunk := batchChunkRuns(cfg.N); batch > chunk {
		results := make([]*Result, 0, batch)
		errs := make([]error, 0, batch)
		for lo := 0; lo < batch; lo += chunk {
			hi := lo + chunk
			if hi > batch {
				hi = batch
			}
			res, e := b.runBatchChunk(cfg, hi-lo, func(run, id int, rt NodeRuntime) {
				body(lo+run, id, rt)
			})
			results = append(results, res...)
			errs = append(errs, e...)
		}
		return results, errs
	}
	return b.runBatchChunk(cfg, batch, body)
}

// runBatchChunk drives one cache-sized chunk of runs through the shared
// scheduler. cfg is validated and defaulted by the caller.
func (b lockstepBackend) runBatchChunk(cfg Config, batch int, body func(run, id int, rt NodeRuntime)) ([]*Result, []error) {
	n := cfg.N

	boxes, releaseBoxes := newBatchBoxes(batch, n, cfg.WordsPerPair)
	// Release the mailbox storage only after every coroutine has unwound
	// (the stop defer below runs first, LIFO): node programs may touch
	// their rows right up to the Abort that unwinds them.
	defer releaseBoxes()

	engines := make([]*lockstepEngine, batch)
	for r := range engines {
		e := newLockstepEngine(cfg, n)
		e.box = boxes[r]
		engines[r] = e
	}
	defer func() {
		for _, e := range engines {
			e.stopAll()
		}
	}()
	for r, e := range engines {
		e.start(func(id int, rt NodeRuntime) { body(r, id, rt) })
	}

	// The worker pool shards the global (run, node) slot space
	// contiguously, so a given node of a given run is always resumed by
	// the same worker in the same within-shard order. All per-slot state
	// (live, vio, mailbox rows) is owned by that slot's coroutine, and
	// halted runs are skipped whole — determinism holds for any worker
	// count, exactly as in the serial scheduler.
	total := batch * n
	workers := runtime.GOMAXPROCS(0)
	if workers > total {
		workers = total
	}
	halted := make([]bool, batch)
	// sweep resumes the live nodes of the live runs in global slot range
	// [lo, hi), run-major — the shard body shared by the single-worker
	// inline path and the worker pool.
	sweep := func(lo, hi int) {
		for r := lo / n; r*n < hi; r++ {
			if halted[r] {
				continue
			}
			e := engines[r]
			v0, v1 := 0, n
			if s := lo - r*n; s > 0 {
				v0 = s
			}
			if s := hi - r*n; s < n {
				v1 = s
			}
			for v := v0; v < v1; v++ {
				if !e.live[v] {
					continue
				}
				if _, ok := e.next[v](); !ok {
					e.live[v] = false
				}
			}
		}
	}
	var wg sync.WaitGroup
	var starts []chan struct{}
	if workers > 1 {
		starts = make([]chan struct{}, workers)
		for w := 0; w < workers; w++ {
			starts[w] = make(chan struct{}, 1)
			lo, hi := w*total/workers, (w+1)*total/workers
			go func(start <-chan struct{}, lo, hi int) {
				for range start {
					sweep(lo, hi)
					wg.Done()
				}
			}(starts[w], lo, hi)
		}
		defer func() {
			for _, s := range starts {
				close(s)
			}
		}()
	}

	errs := make([]error, batch)
	liveRuns := batch
	for liveRuns > 0 {
		// Resume every live node of every live run one round step: from
		// its last Tick (or its start) to its next Tick (or its return).
		// A single worker runs inline on the scheduler goroutine — no
		// channel round-trip per round, the dominant fixed cost on small
		// machines.
		if workers == 1 {
			sweep(0, total)
		} else {
			wg.Add(workers)
			for _, s := range starts {
				s <- struct{}{}
			}
			wg.Wait()
		}

		// Settle runs in ascending order. Each run follows exactly the
		// serial schedule: violations surface between rounds (error is
		// the lowest-id violator, the round is not exchanged); a round no
		// node finished with Tick is not exchanged or counted; otherwise
		// the run's mailbox exchanges and its clock advances.
		for r, e := range engines {
			if halted[r] {
				continue
			}
			var err error
			for v := 0; v < n; v++ {
				if e.vio[v] != nil {
					err = e.vio[v]
					break
				}
			}
			if err == nil {
				liveCount := 0
				for v := 0; v < n; v++ {
					if e.live[v] {
						liveCount++
					}
				}
				if liveCount == 0 {
					halted[r] = true
					liveRuns--
					continue
				}
				err = e.exchange()
			}
			if err != nil {
				errs[r] = err
				halted[r] = true
				liveRuns--
			}
		}
	}

	results := make([]*Result, batch)
	for r, e := range engines {
		foldBatchOps(e.ops)
		results[r] = finish(e.stats, e.transcripts, n)
	}
	return results, errs
}

// batchArenaThresholdWords caps the shared batch arena at the same
// 128 MiB of words per direction as the serial arena; larger batches
// fall back to independently pooled per-run mailboxes.
const batchArenaThresholdWords = arenaThresholdWords

// newBatchBoxes builds one mailbox per run. When the whole batch fits
// the dense-arena budget, all runs share two word arenas laid out
// run-major (run r's blocks are contiguous), carved into per-run
// arenaBox views — one allocation (pooled through the word-scratch
// pool) for the entire batch. Otherwise each run draws an independent
// mailbox from the per-shape pool. release retires the storage; it must
// be called after every run's coroutines have unwound.
func newBatchBoxes(batch, n, wpp int) (boxes []mailbox, release func()) {
	boxes = make([]mailbox, batch)
	perRun := int64(n) * int64(n) * int64(wpp)
	if total := int64(batch) * perRun; perRun <= arenaThresholdWords && total <= batchArenaThresholdWords {
		n2 := n * n
		chunk := n2 * wpp
		words := GetScratch(2 * batch * chunk)
		lens := make([]int32, 2*batch*n2)
		sents := make([]senderStats, batch*n)
		for r := range boxes {
			base := 2 * r * chunk
			lbase := 2 * r * n2
			boxes[r] = &arenaBox{
				n: n, wpp: wpp,
				outW: words[base : base+chunk : base+chunk],
				inW:  words[base+chunk : base+2*chunk : base+2*chunk],
				outL: lens[lbase : lbase+n2 : lbase+n2],
				inL:  lens[lbase+n2 : lbase+2*n2 : lbase+2*n2],
				sent: sents[r*n : (r+1)*n : (r+1)*n],
			}
		}
		return boxes, func() { PutScratch(words) }
	}
	for r := range boxes {
		boxes[r] = getBox(n, wpp)
	}
	return boxes, func() {
		for _, b := range boxes {
			putBox(b)
		}
	}
}
