package engine

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// backends returns every registered backend; semantic tests below run
// against each so the two engines can never drift apart.
func backends(t *testing.T) []Backend {
	t.Helper()
	var bs []Backend
	for _, name := range Names() {
		b, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if b.Name() != name {
			t.Fatalf("backend %q reports name %q", name, b.Name())
		}
		bs = append(bs, b)
	}
	return bs
}

func TestRegistry(t *testing.T) {
	def, err := New("")
	if err != nil {
		t.Fatalf("New(\"\"): %v", err)
	}
	if def.Name() != DefaultBackend {
		t.Errorf("default backend = %q, want %q", def.Name(), DefaultBackend)
	}
	if _, err := New("fpga"); err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Errorf("New(\"fpga\") = %v, want unknown-backend error", err)
	}
	if got := Names(); !reflect.DeepEqual(got, []string{"goroutine", "lockstep"}) {
		t.Errorf("Names() = %v", got)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	for _, b := range backends(t) {
		if _, err := b.Run(Config{N: 0}, func(int, NodeRuntime) {}); err == nil {
			t.Errorf("%s: N=0 accepted", b.Name())
		}
	}
}

// TestBroadcastRing has every node send its id+1 to every peer and checks
// the delivered sums plus the full cost accounting, per backend.
func TestBroadcastRing(t *testing.T) {
	const n = 8
	for _, b := range backends(t) {
		sums := make([]uint64, n)
		res, err := b.Run(Config{N: n}, func(id int, rt NodeRuntime) {
			for to := 0; to < n; to++ {
				if to != id {
					rt.Send(id, 0, to, []uint64{uint64(id + 1)})
				}
			}
			rt.Barrier(id)
			total := uint64(id + 1)
			for p := 0; p < n; p++ {
				if p == id {
					continue
				}
				w := rt.Recv(id, p)
				if len(w) != 1 {
					t.Errorf("%s: node %d got %d words from %d", b.Name(), id, len(w), p)
					return
				}
				total += w[0]
			}
			sums[id] = total
		})
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		want := uint64(n * (n + 1) / 2)
		for v, s := range sums {
			if s != want {
				t.Errorf("%s: node %d sum = %d, want %d", b.Name(), v, s, want)
			}
		}
		wantStats := Stats{Rounds: 1, WordsSent: n * (n - 1), MaxPairWords: 1, BitsSent: n * (n - 1) * int64(WordBits(n))}
		if res.Stats != wantStats {
			t.Errorf("%s: stats = %+v, want %+v", b.Name(), res.Stats, wantStats)
		}
	}
}

func TestBudgetViolation(t *testing.T) {
	for _, b := range backends(t) {
		_, err := b.Run(Config{N: 3, WordsPerPair: 2}, func(id int, rt NodeRuntime) {
			if id == 0 {
				rt.Send(0, 0, 1, []uint64{1, 2, 3})
			}
			rt.Barrier(id)
		})
		if err == nil || !strings.Contains(err.Error(), "bandwidth exceeded") {
			t.Errorf("%s: err = %v, want bandwidth violation", b.Name(), err)
		}
	}
}

func TestMaxRoundsAborts(t *testing.T) {
	for _, b := range backends(t) {
		_, err := b.Run(Config{N: 2, MaxRounds: 4}, func(id int, rt NodeRuntime) {
			for {
				rt.Barrier(id)
			}
		})
		if err == nil || !strings.Contains(err.Error(), "MaxRounds = 4") {
			t.Errorf("%s: err = %v, want MaxRounds error", b.Name(), err)
		}
	}
}

func TestBroadcastOnlyEnforced(t *testing.T) {
	for _, b := range backends(t) {
		_, err := b.Run(Config{N: 3, BroadcastOnly: true}, func(id int, rt NodeRuntime) {
			if id == 0 {
				rt.Send(0, 0, 1, []uint64{7})
			}
			rt.Barrier(id)
		})
		if err == nil || !strings.Contains(err.Error(), "broadcast-only") {
			t.Errorf("%s: err = %v, want broadcast-only violation", b.Name(), err)
		}
	}
}

func TestNodePanicBecomesError(t *testing.T) {
	for _, b := range backends(t) {
		_, err := b.Run(Config{N: 4}, func(id int, rt NodeRuntime) {
			if id == 2 {
				panic("kaboom")
			}
			rt.Barrier(id)
		})
		if err == nil || !strings.Contains(err.Error(), "node 2 panicked: kaboom") {
			t.Errorf("%s: err = %v, want node-2 panic error", b.Name(), err)
		}
	}
}

func TestEarlyReturnersDoNotStallTheRound(t *testing.T) {
	for _, b := range backends(t) {
		res, err := b.Run(Config{N: 5}, func(id int, rt NodeRuntime) {
			if id != 0 {
				return
			}
			for i := 0; i < 3; i++ {
				rt.Barrier(0)
			}
		})
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		if res.Stats.Rounds != 3 {
			t.Errorf("%s: rounds = %d, want 3", b.Name(), res.Stats.Rounds)
		}
	}
}

// TestLateSendersAreDelivered checks a subtle reference behaviour: a node
// that queues words and returns without ticking still has its words
// delivered by the round the surviving nodes complete.
func TestLateSendersAreDelivered(t *testing.T) {
	for _, b := range backends(t) {
		var got []uint64
		res, err := b.Run(Config{N: 3}, func(id int, rt NodeRuntime) {
			switch id {
			case 0:
				rt.Send(0, 0, 1, []uint64{41})
				// return without Tick: the words must still arrive.
			case 1:
				rt.Barrier(1)
				got = append([]uint64(nil), rt.Recv(1, 0)...)
			case 2:
				rt.Barrier(2)
			}
		})
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		if len(got) != 1 || got[0] != 41 {
			t.Errorf("%s: delivered %v, want [41]", b.Name(), got)
		}
		if res.Stats.WordsSent != 1 {
			t.Errorf("%s: words = %d, want 1", b.Name(), res.Stats.WordsSent)
		}
	}
}

// TestAllReturnWithoutTick: when every program returns before any barrier,
// nothing is exchanged and nothing is counted — on either backend.
func TestAllReturnWithoutTick(t *testing.T) {
	for _, b := range backends(t) {
		res, err := b.Run(Config{N: 4}, func(id int, rt NodeRuntime) {
			rt.Send(id, 0, (id+1)%4, []uint64{9})
		})
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		if res.Stats.Rounds != 0 || res.Stats.WordsSent != 0 {
			t.Errorf("%s: stats = %+v, want zero rounds and words", b.Name(), res.Stats)
		}
	}
}

func TestTranscriptsMatchAcrossBackends(t *testing.T) {
	const n, rounds = 5, 3
	body := func(id int, rt NodeRuntime) {
		for r := 0; r < rounds; r++ {
			to := (id + r + 1) % n
			if to != id {
				rt.Send(id, r, to, []uint64{uint64(id*100 + r)})
			}
			rt.Barrier(id)
		}
	}
	var results []*Result
	for _, b := range backends(t) {
		res, err := b.Run(Config{N: n, RecordTranscript: true}, body)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		results = append(results, res)
	}
	for i := 1; i < len(results); i++ {
		if results[0].Stats != results[i].Stats {
			t.Errorf("stats diverge: %+v vs %+v", results[0].Stats, results[i].Stats)
		}
		if !reflect.DeepEqual(results[0].Transcripts, results[i].Transcripts) {
			t.Errorf("transcripts diverge between backends")
		}
	}
}

// TestLockstepViolationIsLowestID: when several nodes violate in the same
// round, the lockstep backend deterministically reports the lowest id,
// regardless of how many workers raced over the shards.
func TestLockstepViolationIsLowestID(t *testing.T) {
	b, _ := New("lockstep")
	for trial := 0; trial < 20; trial++ {
		_, err := b.Run(Config{N: 16, WordsPerPair: 1}, func(id int, rt NodeRuntime) {
			if id >= 3 {
				rt.Send(id, 0, 0, []uint64{1, 2}) // everyone from 3 up violates
			}
			rt.Barrier(id)
		})
		if err == nil || !strings.Contains(err.Error(), "node 3 ") {
			t.Fatalf("trial %d: err = %v, want the node-3 violation", trial, err)
		}
	}
}

// TestLockstepDeterministicStats: repeated runs of a traffic-heavy
// program produce byte-identical stats.
func TestLockstepDeterministicStats(t *testing.T) {
	b, _ := New("lockstep")
	run := func() Stats {
		res, err := b.Run(Config{N: 24, WordsPerPair: 4}, func(id int, rt NodeRuntime) {
			for r := 0; r < 6; r++ {
				for off := 1; off <= 3; off++ {
					to := (id + off*r + off) % 24
					if to != id {
						rt.Send(id, r, to, []uint64{uint64(id), uint64(r)})
					}
				}
				rt.Barrier(id)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats
	}
	ref := run()
	for i := 0; i < 5; i++ {
		if got := run(); got != ref {
			t.Fatalf("run %d stats %+v differ from %+v", i, got, ref)
		}
	}
}

// TestLockstepBufferReuseNoSteadyStateAllocs drives many rounds through
// one run and checks the per-round allocation count stays near zero once
// the mailbox cells are warm. This is the property the backend exists for.
func TestLockstepBufferReuseNoSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation accounting is noisy under -short")
	}
	if TraceForced() {
		t.Skip("allocation-free steady state is a trace-off property; a forced collector allocates per round")
	}
	b, _ := New("lockstep")
	const n = 32
	measure := func(rounds int) float64 {
		var total float64
		avg := testing.AllocsPerRun(3, func() {
			res, err := b.Run(Config{N: n, WordsPerPair: 1}, func(id int, rt NodeRuntime) {
				word := make([]uint64, 1)
				for r := 0; r < rounds; r++ {
					word[0] = uint64(r)
					for to := 0; to < n; to++ {
						if to != id {
							rt.Send(id, r, to, word)
						}
					}
					rt.Barrier(id)
				}
			})
			if err != nil {
				t.Error(err)
			}
			total += float64(res.Stats.Rounds)
		})
		_ = total
		return avg
	}
	short, long := measure(4), measure(64)
	// 60 extra all-to-all rounds should cost (close to) no extra
	// allocations; allow a generous slack for runtime noise.
	if extra := long - short; extra > 100 {
		t.Errorf("60 extra rounds allocated %.0f extra objects; mailbox reuse is broken", extra)
	}
}

func TestWordBitsTable(t *testing.T) {
	cases := []struct{ n, want int }{{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11}}
	for _, c := range cases {
		if got := WordBits(c.n); got != c.want {
			t.Errorf("WordBits(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestBudgetViolationMessage(t *testing.T) {
	v := budgetViolation(3, 7, 9, 5, 4)
	want := "clique: node 3 round 7: bandwidth exceeded sending 9 words to 5 (budget 4 words/pair/round)"
	if v.Err.Error() != want {
		t.Errorf("got %q, want %q", v.Err.Error(), want)
	}
}

func ExampleNames() {
	fmt.Println(Names())
	// Output: [goroutine lockstep]
}
