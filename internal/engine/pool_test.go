package engine

import (
	"testing"
)

// exchangeBody is a tiny broadcast-heavy node program used to exercise
// the mailbox across several rounds.
func exchangeBody(rounds int) func(id int, rt NodeRuntime) {
	return func(id int, rt NodeRuntime) {
		for r := 0; r < rounds; r++ {
			rt.Broadcast(id, r, []uint64{uint64(id<<8 | r)})
			rt.Barrier(id)
		}
	}
}

// TestMailboxPoolReuse pins that back-to-back lockstep runs of the same
// shape reuse the pooled mailbox rather than allocating a fresh one.
func TestMailboxPoolReuse(t *testing.T) {
	be := lockstepBackend{}
	cfg := Config{N: 16, WordsPerPair: 2}

	run := func() *Result {
		res, err := be.Run(cfg, exchangeBody(3))
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return res
	}

	first := run()
	second := run()
	if first.Stats != second.Stats {
		t.Fatalf("pooled rerun changed stats: %+v vs %+v", first.Stats, second.Stats)
	}

	// Reuse is asserted via the hit counter rather than object
	// identity: sync.Pool may legitimately drop a Put item at any GC,
	// so a single-shot identity check would be a latent flake. A GC
	// landing inside the put-then-get window on five consecutive
	// attempts is not a plausible accident.
	reused := false
	for attempt := 0; attempt < 5 && !reused; attempt++ {
		h0, _ := PoolStats()
		putBox(getBox(16, 2))
		getBox(16, 2)
		h1, _ := PoolStats()
		reused = h1 == h0+1
	}
	if !reused {
		t.Fatal("putBox/getBox never reused the pooled mailbox in 5 attempts")
	}
}

// TestMailboxPoolResetIsolation pins that a reused mailbox leaks
// nothing from the previous run: a quiet round after a noisy run must
// observe an empty inbox, and stats must restart from zero.
func TestMailboxPoolResetIsolation(t *testing.T) {
	be := lockstepBackend{}
	cfg := Config{N: 8, WordsPerPair: 4}

	if _, err := be.Run(cfg, exchangeBody(5)); err != nil {
		t.Fatalf("noisy run: %v", err)
	}

	sawWords := make([]bool, cfg.N) // one slot per node: race-free
	res, err := be.Run(cfg, func(id int, rt NodeRuntime) {
		rt.Barrier(id) // send nothing, then inspect the inbox
		for from := 0; from < cfg.N; from++ {
			if from != id && len(rt.Recv(id, from)) != 0 {
				sawWords[id] = true
			}
		}
	})
	if err != nil {
		t.Fatalf("quiet run: %v", err)
	}
	for id, saw := range sawWords {
		if saw {
			t.Fatalf("reused mailbox delivered stale words to node %d", id)
		}
	}
	if res.Stats.WordsSent != 0 || res.Stats.MaxPairWords != 0 {
		t.Fatalf("reused mailbox leaked accounting: %+v", res.Stats)
	}
}

// TestMailboxPoolDisable pins the A/B escape hatch.
func TestMailboxPoolDisable(t *testing.T) {
	DisableMailboxPool(true)
	defer DisableMailboxPool(false)

	be := lockstepBackend{}
	cfg := Config{N: 4, WordsPerPair: 1}
	if _, err := be.Run(cfg, exchangeBody(2)); err != nil {
		t.Fatalf("run: %v", err)
	}
	h0, _ := PoolStats()
	if _, err := be.Run(cfg, exchangeBody(2)); err != nil {
		t.Fatalf("run: %v", err)
	}
	h1, _ := PoolStats()
	if h1 != h0 {
		t.Fatalf("pool disabled but hit count moved: %d -> %d", h0, h1)
	}
}
