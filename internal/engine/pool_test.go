package engine

import (
	"testing"
)

// exchangeBody is a tiny broadcast-heavy node program used to exercise
// the mailbox across several rounds.
func exchangeBody(rounds int) func(id int, rt NodeRuntime) {
	return func(id int, rt NodeRuntime) {
		for r := 0; r < rounds; r++ {
			rt.Broadcast(id, r, []uint64{uint64(id<<8 | r)})
			rt.Barrier(id)
		}
	}
}

// TestMailboxPoolReuse pins that back-to-back lockstep runs of the same
// shape reuse the pooled mailbox rather than allocating a fresh one.
func TestMailboxPoolReuse(t *testing.T) {
	be := lockstepBackend{}
	cfg := Config{N: 16, WordsPerPair: 2}

	run := func() *Result {
		res, err := be.Run(cfg, exchangeBody(3))
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return res
	}

	first := run()
	second := run()
	if first.Stats != second.Stats {
		t.Fatalf("pooled rerun changed stats: %+v vs %+v", first.Stats, second.Stats)
	}

	// Reuse is asserted via the hit counter rather than object
	// identity: sync.Pool may legitimately drop a Put item at any GC,
	// so a single-shot identity check would be a latent flake. A GC
	// landing inside the put-then-get window on five consecutive
	// attempts is not a plausible accident.
	reused := false
	for attempt := 0; attempt < 5 && !reused; attempt++ {
		h0, _ := PoolStats()
		putBox(getBox(16, 2))
		getBox(16, 2)
		h1, _ := PoolStats()
		reused = h1 == h0+1
	}
	if !reused {
		t.Fatal("putBox/getBox never reused the pooled mailbox in 5 attempts")
	}
}

// TestMailboxPoolResetIsolation pins that a reused mailbox leaks
// nothing from the previous run: a quiet round after a noisy run must
// observe an empty inbox, and stats must restart from zero.
func TestMailboxPoolResetIsolation(t *testing.T) {
	be := lockstepBackend{}
	cfg := Config{N: 8, WordsPerPair: 4}

	if _, err := be.Run(cfg, exchangeBody(5)); err != nil {
		t.Fatalf("noisy run: %v", err)
	}

	sawWords := make([]bool, cfg.N) // one slot per node: race-free
	res, err := be.Run(cfg, func(id int, rt NodeRuntime) {
		rt.Barrier(id) // send nothing, then inspect the inbox
		for from := 0; from < cfg.N; from++ {
			if from != id && len(rt.Recv(id, from)) != 0 {
				sawWords[id] = true
			}
		}
	})
	if err != nil {
		t.Fatalf("quiet run: %v", err)
	}
	for id, saw := range sawWords {
		if saw {
			t.Fatalf("reused mailbox delivered stale words to node %d", id)
		}
	}
	if res.Stats.WordsSent != 0 || res.Stats.MaxPairWords != 0 {
		t.Fatalf("reused mailbox leaked accounting: %+v", res.Stats)
	}
}

// TestMailboxPoolDisable pins the A/B escape hatch.
func TestMailboxPoolDisable(t *testing.T) {
	DisableMailboxPool(true)
	defer DisableMailboxPool(false)

	be := lockstepBackend{}
	cfg := Config{N: 4, WordsPerPair: 1}
	if _, err := be.Run(cfg, exchangeBody(2)); err != nil {
		t.Fatalf("run: %v", err)
	}
	h0, _ := PoolStats()
	if _, err := be.Run(cfg, exchangeBody(2)); err != nil {
		t.Fatalf("run: %v", err)
	}
	h1, _ := PoolStats()
	if h1 != h0 {
		t.Fatalf("pool disabled but hit count moved: %d -> %d", h0, h1)
	}
}

// TestScratchPoolRoundTrip pins the word-scratch pool: buffers come
// back zeroed, same-class requests reuse pooled storage, and the
// disable switch covers it too.
func TestScratchPoolRoundTrip(t *testing.T) {
	buf := GetScratch(100)
	if len(buf) != 100 {
		t.Fatalf("GetScratch(100) has len %d", len(buf))
	}
	for i := range buf {
		buf[i] = ^uint64(0)
	}
	PutScratch(buf)
	h0, _ := ScratchStats()
	buf2 := GetScratch(80) // class 128, same as 100
	h1, _ := ScratchStats()
	if h1 != h0+1 {
		t.Errorf("same-class GetScratch not served from pool: hits %d -> %d", h0, h1)
	}
	for i, w := range buf2 {
		if w != 0 {
			t.Fatalf("pooled scratch word %d not zeroed", i)
		}
	}
	PutScratch(buf2)

	if got := GetScratch(0); got != nil {
		t.Errorf("GetScratch(0) = %v, want nil", got)
	}
	PutScratch(nil) // must be a no-op

	DisableMailboxPool(true)
	defer DisableMailboxPool(false)
	b := GetScratch(64)
	PutScratch(b)
	h2, _ := ScratchStats()
	GetScratch(64)
	if h3, _ := ScratchStats(); h3 != h2 {
		t.Errorf("scratch pool disabled but hit count moved: %d -> %d", h2, h3)
	}
}

func TestScratchClassBounds(t *testing.T) {
	cases := []struct{ k, class int }{{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {64, 6}, {65, 7}, {1 << 20, 20}}
	for _, c := range cases {
		if got := scratchClass(c.k); got != c.class {
			t.Errorf("scratchClass(%d) = %d, want %d", c.k, got, c.class)
		}
	}
}
