package engine

import (
	"testing"
)

// exchangeBody is a tiny broadcast-heavy node program used to exercise
// the mailbox across several rounds.
func exchangeBody(rounds int) func(id int, rt NodeRuntime) {
	return func(id int, rt NodeRuntime) {
		for r := 0; r < rounds; r++ {
			rt.Broadcast(id, r, []uint64{uint64(id<<8 | r)})
			rt.Barrier(id)
		}
	}
}

// TestMailboxPoolReuse pins that back-to-back lockstep runs of the same
// shape reuse the pooled mailbox rather than allocating a fresh one.
func TestMailboxPoolReuse(t *testing.T) {
	be := lockstepBackend{}
	cfg := Config{N: 16, WordsPerPair: 2}

	run := func() *Result {
		res, err := be.Run(cfg, exchangeBody(3))
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return res
	}

	first := run()
	second := run()
	if first.Stats != second.Stats {
		t.Fatalf("pooled rerun changed stats: %+v vs %+v", first.Stats, second.Stats)
	}

	// Reuse is asserted via the hit counter rather than object
	// identity: sync.Pool may legitimately drop a Put item at any GC,
	// so a single-shot identity check would be a latent flake. A GC
	// landing inside the put-then-get window on five consecutive
	// attempts is not a plausible accident.
	reused := false
	for attempt := 0; attempt < 5 && !reused; attempt++ {
		h0, _ := PoolStats()
		putBox(getBox(16, 2))
		getBox(16, 2)
		h1, _ := PoolStats()
		reused = h1 == h0+1
	}
	if !reused {
		t.Fatal("putBox/getBox never reused the pooled mailbox in 5 attempts")
	}
}

// TestMailboxPoolResetIsolation pins that a reused mailbox leaks
// nothing from the previous run: a quiet round after a noisy run must
// observe an empty inbox, and stats must restart from zero.
func TestMailboxPoolResetIsolation(t *testing.T) {
	be := lockstepBackend{}
	cfg := Config{N: 8, WordsPerPair: 4}

	if _, err := be.Run(cfg, exchangeBody(5)); err != nil {
		t.Fatalf("noisy run: %v", err)
	}

	sawWords := make([]bool, cfg.N) // one slot per node: race-free
	res, err := be.Run(cfg, func(id int, rt NodeRuntime) {
		rt.Barrier(id) // send nothing, then inspect the inbox
		for from := 0; from < cfg.N; from++ {
			if from != id && len(rt.Recv(id, from)) != 0 {
				sawWords[id] = true
			}
		}
	})
	if err != nil {
		t.Fatalf("quiet run: %v", err)
	}
	for id, saw := range sawWords {
		if saw {
			t.Fatalf("reused mailbox delivered stale words to node %d", id)
		}
	}
	if res.Stats.WordsSent != 0 || res.Stats.MaxPairWords != 0 {
		t.Fatalf("reused mailbox leaked accounting: %+v", res.Stats)
	}
}

// TestMailboxPoolDisable pins the A/B escape hatch.
func TestMailboxPoolDisable(t *testing.T) {
	DisableMailboxPool(true)
	defer DisableMailboxPool(false)

	be := lockstepBackend{}
	cfg := Config{N: 4, WordsPerPair: 1}
	if _, err := be.Run(cfg, exchangeBody(2)); err != nil {
		t.Fatalf("run: %v", err)
	}
	h0, _ := PoolStats()
	if _, err := be.Run(cfg, exchangeBody(2)); err != nil {
		t.Fatalf("run: %v", err)
	}
	h1, _ := PoolStats()
	if h1 != h0 {
		t.Fatalf("pool disabled but hit count moved: %d -> %d", h0, h1)
	}
}

// TestScratchPoolRoundTrip pins the word-scratch pool: buffers come
// back zeroed, same-class requests reuse pooled storage, and the
// disable switch covers it too.
func TestScratchPoolRoundTrip(t *testing.T) {
	buf := GetScratch(100)
	if len(buf) != 100 {
		t.Fatalf("GetScratch(100) has len %d", len(buf))
	}
	for i := range buf {
		buf[i] = ^uint64(0)
	}
	// Like the mailbox reuse test above, assert via the hit counter with
	// retries: a GC landing between Put and Get legitimately empties the
	// sync.Pool, but not on five consecutive attempts.
	reused := false
	var buf2 []uint64
	for attempt := 0; attempt < 5 && !reused; attempt++ {
		PutScratch(buf)
		h0, _ := ScratchStats()
		buf2 = GetScratch(80) // class 128, same as 100
		h1, _ := ScratchStats()
		reused = h1 == h0+1
		if !reused {
			buf = buf2[:cap(buf2)]
			for i := range buf {
				buf[i] = ^uint64(0)
			}
		}
	}
	if !reused {
		t.Errorf("same-class GetScratch never served from pool in 5 attempts")
	}
	for i, w := range buf2 {
		if w != 0 {
			t.Fatalf("pooled scratch word %d not zeroed", i)
		}
	}
	PutScratch(buf2)

	if got := GetScratch(0); got != nil {
		t.Errorf("GetScratch(0) = %v, want nil", got)
	}
	PutScratch(nil) // must be a no-op

	DisableMailboxPool(true)
	defer DisableMailboxPool(false)
	b := GetScratch(64)
	PutScratch(b)
	h2, _ := ScratchStats()
	GetScratch(64)
	if h3, _ := ScratchStats(); h3 != h2 {
		t.Errorf("scratch pool disabled but hit count moved: %d -> %d", h2, h3)
	}
}

func TestScratchClassBounds(t *testing.T) {
	cases := []struct{ k, class int }{{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {64, 6}, {65, 7}, {1 << 20, 20}}
	for _, c := range cases {
		if got := scratchClass(c.k); got != c.class {
			t.Errorf("scratchClass(%d) = %d, want %d", c.k, got, c.class)
		}
	}
}

// TestPoolShapeStats pins the per-shape scorecard: traffic on a
// distinctive shape shows up under exactly that (n, wpp, layout) key,
// and the per-shape splits sum to the aggregate PoolStats.
func TestPoolShapeStats(t *testing.T) {
	const n, wpp = 23, 3 // a shape no other test uses
	find := func() (PoolShapeStat, bool) {
		for _, s := range PoolShapeStats() {
			if s.N == n && s.WordsPerPair == wpp && s.Arena {
				return s, true
			}
		}
		return PoolShapeStat{}, false
	}
	before, _ := find()
	putBox(getBox(n, wpp))
	getBox(n, wpp)
	after, ok := find()
	if !ok {
		t.Fatalf("shape n=%d wpp=%d missing from PoolShapeStats", n, wpp)
	}
	if gotTotal := (after.Hits + after.Misses) - (before.Hits + before.Misses); gotTotal != 2 {
		t.Fatalf("shape traffic delta = %d, want 2 (one miss + one reuse attempt)", gotTotal)
	}

	var hits, misses int64
	for _, s := range PoolShapeStats() {
		hits += s.Hits
		misses += s.Misses
	}
	aggHits, aggMisses := PoolStats()
	if hits != aggHits || misses != aggMisses {
		t.Fatalf("per-shape sums (%d/%d) disagree with PoolStats (%d/%d)",
			hits, misses, aggHits, aggMisses)
	}
}

// TestScratchClassStats pins the per-class scorecard: a request lands
// in the class covering its size, the oversize bucket reports Words ==
// 0, and the per-class splits sum to the aggregate ScratchStats.
func TestScratchClassStats(t *testing.T) {
	const k = 100 // class 7 (128 words)
	class := scratchClass(k)
	find := func(c int) ScratchClassStat {
		for _, s := range ScratchClassStats() {
			if s.Class == c {
				return s
			}
		}
		return ScratchClassStat{Class: c}
	}
	before := find(class)
	PutScratch(GetScratch(k))
	GetScratch(k)
	after := find(class)
	if got := (after.Hits + after.Misses) - (before.Hits + before.Misses); got != 2 {
		t.Fatalf("class %d traffic delta = %d, want 2", class, got)
	}
	if after.Words != 1<<class {
		t.Fatalf("class %d reports %d words, want %d", class, after.Words, 1<<class)
	}

	var hits, misses int64
	for _, s := range ScratchClassStats() {
		hits += s.Hits
		misses += s.Misses
	}
	aggHits, aggMisses := ScratchStats()
	if hits != aggHits || misses != aggMisses {
		t.Fatalf("per-class sums (%d/%d) disagree with ScratchStats (%d/%d)",
			hits, misses, aggHits, aggMisses)
	}
}
