// Package engine provides pluggable execution backends for the congested
// clique simulator. A backend schedules the n node programs of one run,
// synchronises them at round barriers, performs the all-to-all message
// exchange, and enforces the model's rules: per-pair word budgets, the
// broadcast-only restriction, the round limit, and (optionally) per-node
// communication transcripts.
//
// Package clique owns the node-side API (clique.Node, clique.Run); this
// package owns execution. Two backends are provided:
//
//   - "goroutine": one goroutine per node with a condition-variable
//     barrier per round. This is the original engine; it is simple and
//     the reference for semantics.
//   - "lockstep": a deterministic engine that resumes node programs as
//     pull-style coroutines on a sharded worker pool, with preallocated
//     mailbox buffers that are reused across rounds. No per-round
//     allocation on the exchange path and no contended barrier, which
//     makes large instances (n >= 256) practical.
//
// Both backends are required to be result- and round-count-identical for
// every node program; the cross-backend tests in the repository root
// enforce this.
//
// Independent runs of the same shape — seed sweeps — can execute as one
// batched lockstep execution (RunBatch): a single scheduler drives all
// runs round by round in cache-sized chunks over a shared run-major
// mailbox arena, amortising per-round dispatch while keeping every
// run's result bit-identical to a serial Run. Backends without native
// batching fall back to an equivalent serial loop.
package engine
