package engine

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Mailbox pooling: the lockstep engine's dominant allocation is its
// double-buffered mailbox storage (two n*n*wpp word arenas plus length
// tables, or the sliceBox cell tables). A long-running process such as
// the cliqued daemon executes many runs with a handful of recurring
// (n, wpp) shapes, so retiring boxes to a per-shape pool instead of the
// garbage collector removes the largest per-run allocation entirely.
//
// Reuse is sound because the node-side API already declares every
// engine-owned slice (Recv, RecvAll) invalid after the run: transcripts
// are deep-copied at record time and Stats are plain values, so nothing
// a well-behaved caller retains aliases pooled memory.

// boxKey identifies one reusable mailbox shape. n and wpp fix every
// buffer size; the two storage layouts are pooled separately because a
// box must be reused as the type it was built as.
type boxKey struct {
	n, wpp int
	arena  bool
}

// shapeCounter is one shape's (or size class's) hit/miss pair.
type shapeCounter struct {
	hits   atomic.Int64
	misses atomic.Int64
}

var (
	boxPools    sync.Map // boxKey -> *sync.Pool
	boxCounters sync.Map // boxKey -> *shapeCounter

	boxPoolStops atomic.Bool
)

// DisableMailboxPool turns engine pooling off process-wide (every
// acquire allocates fresh) — both the mailbox pool and the word-scratch
// pool below. It exists for A/B benchmarking and for tests that need
// allocation isolation; production callers never need it.
func DisableMailboxPool(off bool) { boxPoolStops.Store(off) }

// PoolStats reports how many lockstep runs reused a pooled mailbox and
// how many had to allocate one, summed over every shape. The split is a
// cheap health signal for long-running services: a hot serving loop
// should converge to hits.
func PoolStats() (hits, misses int64) {
	boxCounters.Range(func(_, v any) bool {
		c := v.(*shapeCounter)
		hits += c.hits.Load()
		misses += c.misses.Load()
		return true
	})
	return hits, misses
}

// PoolShapeStat is one mailbox shape's pool scorecard: how often runs
// of exactly this (n, wpp, layout) reused pooled storage. Per-shape
// hit rates localise pool churn that the aggregate hides — one
// odd-shaped workload missing on every run is invisible next to a hot
// steady shape.
type PoolShapeStat struct {
	N            int
	WordsPerPair int
	Arena        bool // dense-arena layout (sliceBox otherwise)
	Hits         int64
	Misses       int64
}

// PoolShapeStats reports the mailbox pool's per-shape hit/miss split,
// sorted by (n, wpp, layout) for stable output.
func PoolShapeStats() []PoolShapeStat {
	var out []PoolShapeStat
	boxCounters.Range(func(k, v any) bool {
		key, c := k.(boxKey), v.(*shapeCounter)
		out = append(out, PoolShapeStat{
			N: key.n, WordsPerPair: key.wpp, Arena: key.arena,
			Hits: c.hits.Load(), Misses: c.misses.Load(),
		})
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.N != b.N {
			return a.N < b.N
		}
		if a.WordsPerPair != b.WordsPerPair {
			return a.WordsPerPair < b.WordsPerPair
		}
		return !a.Arena && b.Arena
	})
	return out
}

func boxPoolFor(key boxKey) *sync.Pool {
	if p, ok := boxPools.Load(key); ok {
		return p.(*sync.Pool)
	}
	p, _ := boxPools.LoadOrStore(key, &sync.Pool{})
	return p.(*sync.Pool)
}

func boxCounterFor(key boxKey) *shapeCounter {
	if c, ok := boxCounters.Load(key); ok {
		return c.(*shapeCounter)
	}
	c, _ := boxCounters.LoadOrStore(key, &shapeCounter{})
	return c.(*shapeCounter)
}

// getBox returns a mailbox for the given shape, reusing a pooled one
// when available. The returned box is always fully reset. The int64
// product cannot overflow: Config.Validate caps n and wpp at
// MaxN/MaxWordsPerPair (2^32 * 2^24 < 2^63).
func getBox(n, wpp int) mailbox {
	arena := int64(n)*int64(n)*int64(wpp) <= arenaThresholdWords
	key := boxKey{n: n, wpp: wpp, arena: arena}
	if !boxPoolStops.Load() {
		if b, _ := boxPoolFor(key).Get().(mailbox); b != nil {
			boxCounterFor(key).hits.Add(1)
			b.reset()
			return b
		}
	}
	boxCounterFor(key).misses.Add(1)
	if arena {
		return newArenaBox(n, wpp)
	}
	return newSliceBox(n, wpp)
}

// putBox retires a run's mailbox to the pool for the next run of the
// same shape.
func putBox(b mailbox) {
	if boxPoolStops.Load() {
		return
	}
	switch x := b.(type) {
	case *arenaBox:
		boxPoolFor(boxKey{n: x.n, wpp: x.wpp, arena: true}).Put(b)
	case *sliceBox:
		boxPoolFor(boxKey{n: x.n, wpp: x.wpp, arena: false}).Put(b)
	}
}

// Word-scratch pooling: the bit-packed data plane (package bitvec and
// the packed collectives built on it) works over dense []uint64
// buffers — broadcast tables, packed matrix blocks, transpose scratch —
// whose sizes recur run to run exactly like mailbox shapes do. They are
// pooled here, beside the mailboxes, because the reuse discipline is
// the same: a buffer is only retired once the run that used it can no
// longer alias it, and every acquisition returns fully zeroed storage
// so no state leaks between pooled runs.

// scratchClasses covers buffers from 1 word up to 2^30 words (8 GiB);
// anything larger is allocated fresh rather than pooled.
const scratchClasses = 31

// scratchCounters has one hit/miss pair per pooled size class plus a
// final oversize bucket (index scratchClasses) for requests too large
// to pool, which always miss.
var (
	scratchPools    [scratchClasses]sync.Pool
	scratchCounters [scratchClasses + 1]shapeCounter
)

// scratchClass returns the size-class index of a buffer of k words: the
// smallest c with 1<<c >= k. Buffers are stored at their full class
// capacity so a pooled buffer always satisfies any request of its class.
func scratchClass(k int) int {
	if k <= 1 {
		return 0
	}
	return bits.Len(uint(k - 1))
}

// GetScratch returns a zeroed word buffer of length k, reusing pooled
// storage when available. Callers return it with PutScratch when done;
// not returning it is safe (the GC reclaims it) but forfeits reuse.
func GetScratch(k int) []uint64 {
	if k <= 0 {
		return nil
	}
	c := scratchClass(k)
	if c >= scratchClasses {
		scratchCounters[scratchClasses].misses.Add(1)
		return make([]uint64, k)
	}
	if !boxPoolStops.Load() {
		if buf, _ := scratchPools[c].Get().([]uint64); buf != nil {
			scratchCounters[c].hits.Add(1)
			buf = buf[:k]
			clear(buf)
			return buf
		}
	}
	scratchCounters[c].misses.Add(1)
	return make([]uint64, k, 1<<c)
}

// PutScratch retires a buffer obtained from GetScratch. The buffer must
// not be used after the call.
func PutScratch(buf []uint64) {
	if buf == nil || boxPoolStops.Load() {
		return
	}
	c := scratchClass(cap(buf))
	// Only buffers at exactly class capacity are pooled, so a pooled
	// buffer can always be resliced to any length of its class.
	if c >= scratchClasses || cap(buf) != 1<<c {
		return
	}
	scratchPools[c].Put(buf[:cap(buf)])
}

// ScratchStats reports how many scratch acquisitions reused a pooled
// buffer and how many allocated, summed over every size class. Like
// PoolStats, a hot serving loop should converge to hits.
func ScratchStats() (hits, misses int64) {
	for i := range scratchCounters {
		hits += scratchCounters[i].hits.Load()
		misses += scratchCounters[i].misses.Load()
	}
	return hits, misses
}

// ScratchClassStat is one scratch size class's pool scorecard. Words is
// the class capacity (1<<Class); the oversize bucket — requests beyond
// the largest pooled class, which always allocate — reports Class ==
// scratchClasses with Words == 0.
type ScratchClassStat struct {
	Class  int
	Words  int64 // class capacity in words; 0 for the oversize bucket
	Hits   int64
	Misses int64
}

// ScratchClassStats reports the word-scratch pool's per-class hit/miss
// split, ascending by class, omitting classes with no traffic.
func ScratchClassStats() []ScratchClassStat {
	var out []ScratchClassStat
	for c := range scratchCounters {
		hits, misses := scratchCounters[c].hits.Load(), scratchCounters[c].misses.Load()
		if hits == 0 && misses == 0 {
			continue
		}
		words := int64(0)
		if c < scratchClasses {
			words = int64(1) << c
		}
		out = append(out, ScratchClassStat{Class: c, Words: words, Hits: hits, Misses: misses})
	}
	return out
}
