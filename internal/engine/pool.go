package engine

import (
	"sync"
	"sync/atomic"
)

// Mailbox pooling: the lockstep engine's dominant allocation is its
// double-buffered mailbox storage (two n*n*wpp word arenas plus length
// tables, or the sliceBox cell tables). A long-running process such as
// the cliqued daemon executes many runs with a handful of recurring
// (n, wpp) shapes, so retiring boxes to a per-shape pool instead of the
// garbage collector removes the largest per-run allocation entirely.
//
// Reuse is sound because the node-side API already declares every
// engine-owned slice (Recv, RecvAll) invalid after the run: transcripts
// are deep-copied at record time and Stats are plain values, so nothing
// a well-behaved caller retains aliases pooled memory.

// boxKey identifies one reusable mailbox shape. n and wpp fix every
// buffer size; the two storage layouts are pooled separately because a
// box must be reused as the type it was built as.
type boxKey struct {
	n, wpp int
	arena  bool
}

var (
	boxPools     sync.Map // boxKey -> *sync.Pool
	boxPoolHits  atomic.Int64
	boxPoolMiss  atomic.Int64
	boxPoolStops atomic.Bool
)

// DisableMailboxPool turns pooling off process-wide (every acquire
// allocates fresh). It exists for A/B benchmarking and for tests that
// need allocation isolation; production callers never need it.
func DisableMailboxPool(off bool) { boxPoolStops.Store(off) }

// PoolStats reports how many lockstep runs reused a pooled mailbox and
// how many had to allocate one. The split is a cheap health signal for
// long-running services: a hot serving loop should converge to hits.
func PoolStats() (hits, misses int64) {
	return boxPoolHits.Load(), boxPoolMiss.Load()
}

func boxPoolFor(key boxKey) *sync.Pool {
	if p, ok := boxPools.Load(key); ok {
		return p.(*sync.Pool)
	}
	p, _ := boxPools.LoadOrStore(key, &sync.Pool{})
	return p.(*sync.Pool)
}

// getBox returns a mailbox for the given shape, reusing a pooled one
// when available. The returned box is always fully reset. The int64
// product cannot overflow: Config.Validate caps n and wpp at
// MaxN/MaxWordsPerPair (2^32 * 2^24 < 2^63).
func getBox(n, wpp int) mailbox {
	arena := int64(n)*int64(n)*int64(wpp) <= arenaThresholdWords
	if !boxPoolStops.Load() {
		key := boxKey{n: n, wpp: wpp, arena: arena}
		if b, _ := boxPoolFor(key).Get().(mailbox); b != nil {
			boxPoolHits.Add(1)
			b.reset()
			return b
		}
	}
	boxPoolMiss.Add(1)
	if arena {
		return newArenaBox(n, wpp)
	}
	return newSliceBox(n, wpp)
}

// putBox retires a run's mailbox to the pool for the next run of the
// same shape.
func putBox(b mailbox) {
	if boxPoolStops.Load() {
		return
	}
	switch x := b.(type) {
	case *arenaBox:
		boxPoolFor(boxKey{n: x.n, wpp: x.wpp, arena: true}).Put(b)
	case *sliceBox:
		boxPoolFor(boxKey{n: x.n, wpp: x.wpp, arena: false}).Put(b)
	}
}
