package grid

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/clique"
	"repro/internal/exp"
	"repro/internal/workload"
)

// Limits on a spec, so a malformed or adversarial file (the parser is
// fuzzed) cannot expand into unbounded work.
const (
	// MaxGridN bounds per-cell clique sizes, matching the cliqued
	// daemon's ad-hoc cap: an n-node run allocates O(n²) mailbox words
	// per budgeted pair.
	MaxGridN = 1024
	// MaxRepeats bounds the per-cell repeat count.
	MaxRepeats = 1000
	// MaxWarmup bounds the per-cell warmup count.
	MaxWarmup = 100
	// MaxCells bounds the expanded grid (cells × repeats is additionally
	// capped by MaxRuns).
	MaxCells = 4096
	// MaxRuns bounds the total recorded runs of one grid execution.
	MaxRuns = 65536
)

// Spec is the declarative grid: the experiment blocks plus the
// execution knobs that apply to every cell. The zero values of the
// knobs mean "use the default" (DefaultRepeats, DefaultWarmup, the
// model's default backend), so minimal specs stay minimal.
type Spec struct {
	// Name labels the grid in summaries and artefact tables.
	Name string `json:"name,omitempty"`
	// Repeats is the recorded runs per cell (after warmup).
	Repeats int `json:"repeats,omitempty"`
	// Warmup is the discarded runs per cell before recording starts.
	Warmup int `json:"warmup,omitempty"`
	// Backend is the execution engine for every cell; empty means the
	// model default.
	Backend string `json:"backend,omitempty"`
	// Experiments are the grid blocks in declaration order.
	Experiments []Block `json:"experiments"`
}

// Block is one grid block: either a catalogue algorithm swept over
// ns × wpp × seeds, or a registered experiment repeated as a whole.
type Block struct {
	// Algorithm names a workload-catalogue entry; mutually exclusive
	// with Experiment.
	Algorithm string `json:"algorithm,omitempty"`
	// Experiment names an exp-registry entry (e.g. "fig1"); such a
	// block has no n/wpp/seed axes — the experiment fixes its own sweep.
	Experiment string `json:"experiment,omitempty"`
	// Ns is the clique-size axis (algorithm blocks; required).
	Ns []int `json:"ns,omitempty"`
	// WPP is the words-per-pair axis; empty means the algorithm's
	// catalogue default.
	WPP []int `json:"wpp,omitempty"`
	// Seeds is the instance-generation axis; empty means {1}.
	Seeds []uint64 `json:"seeds,omitempty"`
	// Quick selects reduced sizes for experiment blocks.
	Quick bool `json:"quick,omitempty"`
}

// Defaults for the execution knobs.
const (
	DefaultRepeats = 3
	DefaultWarmup  = 1
)

// ParseSpec parses and validates a JSON grid spec. Unknown fields are
// rejected so a typoed axis name cannot silently shrink a grid.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("grid: parsing spec: %w", err)
	}
	// Trailing garbage after the spec object is a malformed file, not
	// an extension point.
	if dec.More() {
		return nil, fmt.Errorf("grid: trailing data after spec object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the spec against the catalogue, the registry, and
// the package limits. It does not mutate the spec: defaults are
// resolved by Expand and the runner, so a parsed spec re-serialises
// exactly as written.
func (s *Spec) Validate() error {
	if s.Repeats < 0 || s.Repeats > MaxRepeats {
		return fmt.Errorf("grid: repeats = %d, need 0..%d", s.Repeats, MaxRepeats)
	}
	if s.Warmup < 0 || s.Warmup > MaxWarmup {
		return fmt.Errorf("grid: warmup = %d, need 0..%d", s.Warmup, MaxWarmup)
	}
	if s.Backend != "" {
		if err := validBackend(s.Backend); err != nil {
			return err
		}
	}
	if len(s.Experiments) == 0 {
		return fmt.Errorf("grid: spec has no experiment blocks")
	}
	cells := 0
	for i, b := range s.Experiments {
		n, err := b.validate()
		if err != nil {
			return fmt.Errorf("grid: block %d: %w", i, err)
		}
		cells += n
		if cells > MaxCells {
			return fmt.Errorf("grid: spec expands to more than %d cells", MaxCells)
		}
	}
	repeats := s.Repeats
	if repeats == 0 {
		repeats = DefaultRepeats
	}
	if cells*repeats > MaxRuns {
		return fmt.Errorf("grid: %d cells × %d repeats exceeds the %d-run limit", cells, repeats, MaxRuns)
	}
	return nil
}

// validate checks one block and returns its cell count.
func (b *Block) validate() (int, error) {
	switch {
	case b.Algorithm != "" && b.Experiment != "":
		return 0, fmt.Errorf("block names both algorithm %q and experiment %q", b.Algorithm, b.Experiment)
	case b.Algorithm == "" && b.Experiment == "":
		return 0, fmt.Errorf("block names neither an algorithm nor an experiment")
	case b.Experiment != "":
		if _, ok := exp.Get(b.Experiment); !ok {
			return 0, fmt.Errorf("unknown experiment %q (valid: %v)", b.Experiment, exp.IDs())
		}
		if len(b.Ns) > 0 || len(b.WPP) > 0 || len(b.Seeds) > 0 {
			return 0, fmt.Errorf("experiment block %q carries n/wpp/seed axes (the experiment fixes its own sweep)", b.Experiment)
		}
		return 1, nil
	}
	if _, ok := workload.Get(b.Algorithm); !ok {
		return 0, fmt.Errorf("unknown algorithm %q (valid: %v)", b.Algorithm, workload.Names())
	}
	if b.Quick {
		return 0, fmt.Errorf("algorithm block %q: quick applies only to experiment blocks", b.Algorithm)
	}
	if len(b.Ns) == 0 {
		return 0, fmt.Errorf("algorithm block %q has no ns axis", b.Algorithm)
	}
	for _, n := range b.Ns {
		if n < 1 || n > MaxGridN {
			return 0, fmt.Errorf("algorithm block %q: n = %d, need 1..%d", b.Algorithm, n, MaxGridN)
		}
	}
	for _, w := range b.WPP {
		if w < 1 || w > clique.MaxWordsPerPair {
			return 0, fmt.Errorf("algorithm block %q: wpp = %d, need 1..%d", b.Algorithm, w, clique.MaxWordsPerPair)
		}
	}
	return len(b.Ns) * max(len(b.WPP), 1) * max(len(b.Seeds), 1), nil
}

func validBackend(name string) error {
	for _, b := range clique.Backends() {
		if b == name {
			return nil
		}
	}
	return fmt.Errorf("grid: unknown backend %q (valid: %v)", name, clique.Backends())
}

// Cell kinds.
const (
	CellAlgorithm  = "algorithm"
	CellExperiment = "experiment"
)

// Cell is one expanded grid point: the unit the runner warms up and
// repeats. Index is the cell's position in expansion order — the
// deterministic ordering every artefact uses.
type Cell struct {
	Index      int    `json:"index"`
	Kind       string `json:"kind"`
	Algorithm  string `json:"algorithm,omitempty"`
	Experiment string `json:"experiment,omitempty"`
	// N, WPP and Seed parameterise algorithm cells; WPP is resolved to
	// the catalogue default at expansion, so a Cell is self-describing.
	N    int    `json:"n,omitempty"`
	WPP  int    `json:"wpp,omitempty"`
	Seed uint64 `json:"seed,omitempty"`
	// Quick carries the experiment block's size selector.
	Quick bool `json:"quick,omitempty"`
}

// GroupKey is the cell's summary-group identity: algorithm cells group
// over seeds (and repeats), experiment cells over repeats.
func (c Cell) GroupKey() string {
	if c.Kind == CellExperiment {
		key := "exp:" + c.Experiment
		if c.Quick {
			key += "/quick"
		}
		return key
	}
	return fmt.Sprintf("%s/n=%d/wpp=%d", c.Algorithm, c.N, c.WPP)
}

// Expand flattens the spec into cells in deterministic order: blocks
// as declared, then n-major, wpp, seed. Call only on validated specs.
func (s *Spec) Expand() []Cell {
	var cells []Cell
	for _, b := range s.Experiments {
		if b.Experiment != "" {
			cells = append(cells, Cell{
				Index: len(cells), Kind: CellExperiment,
				Experiment: b.Experiment, Quick: b.Quick,
			})
			continue
		}
		alg, _ := workload.Get(b.Algorithm)
		wpps := b.WPP
		if len(wpps) == 0 {
			wpps = []int{alg.WPP}
		}
		seeds := b.Seeds
		if len(seeds) == 0 {
			seeds = []uint64{1}
		}
		for _, n := range b.Ns {
			for _, w := range wpps {
				for _, seed := range seeds {
					cells = append(cells, Cell{
						Index: len(cells), Kind: CellAlgorithm,
						Algorithm: b.Algorithm, N: n, WPP: w, Seed: seed,
					})
				}
			}
		}
	}
	return cells
}
