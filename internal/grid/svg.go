package grid

import (
	"fmt"
	"io"
	"math"
	"strconv"

	"repro/internal/stats"
)

// Plot is one renderable log-log scatter: a sweep's points with CI
// error bars and, when available, the fitted power law.
type Plot struct {
	// Name is the artefact file name (e.g. "rounds_triangle_wpp1.svg").
	Name string

	title  string
	xLabel string
	yLabel string
	points []plotPoint
	fit    *stats.Fit
}

// plotPoint is one (x, y) with its confidence interval on y.
type plotPoint struct {
	x, y, lo, hi float64
}

// Plots builds one rounds-vs-n plot per fitted sweep, plus wall-time
// plots when withTiming is set. Ordering follows the report's fits, so
// the plot set is deterministic.
func (r *Report) Plots(withTiming bool) []Plot {
	var plots []Plot
	for _, f := range r.Fits {
		p := r.sweepPlot(f, "rounds", func(g Group) (stats.Summary, bool) {
			return g.Rounds, true
		})
		p.title = fmt.Sprintf("%s: rounds vs n (fit n^%.2f)", f.Algorithm, f.Fit.Exponent)
		p.yLabel = "rounds"
		plots = append(plots, p)
	}
	if !withTiming {
		return plots
	}
	for _, f := range r.TimingFits {
		p := r.sweepPlot(f, "wall_ns", func(g Group) (stats.Summary, bool) {
			if g.Timing == nil {
				return stats.Summary{}, false
			}
			return g.Timing.WallNS, true
		})
		p.title = fmt.Sprintf("%s: wall time vs n (fit n^%.2f)", f.Algorithm, f.Fit.Exponent)
		p.yLabel = "wall ns"
		plots = append(plots, p)
	}
	return plots
}

func (r *Report) sweepPlot(f GroupFit, metric string, pick func(Group) (stats.Summary, bool)) Plot {
	fit := f.Fit
	p := Plot{
		Name:   fmt.Sprintf("%s_%s_wpp%d.svg", metric, f.Algorithm, f.WPP),
		xLabel: "n",
		fit:    &fit,
	}
	for _, g := range r.Groups {
		if g.Kind != CellAlgorithm || g.Algorithm != f.Algorithm || g.WPP != f.WPP {
			continue
		}
		s, ok := pick(g)
		if !ok {
			continue
		}
		p.points = append(p.points, plotPoint{x: float64(g.N), y: s.Mean, lo: s.CILo, hi: s.CIHi})
	}
	return p
}

// SVG geometry: fixed canvas, generous margins for tick labels.
const (
	svgW, svgH   = 640, 440
	svgML, svgMR = 70, 20
	svgMT, svgMB = 40, 50
)

// WriteSVG renders the plot as a self-contained, dependency-free SVG:
// log-log axes with power-of-ten gridlines, CI whiskers, data points,
// and the fitted power law as a line across the x-range.
func (p Plot) WriteSVG(w io.Writer) error {
	bw := &errWriter{w: w}

	// Log-scale data ranges over positive values only.
	xLo, xHi := math.Inf(1), math.Inf(-1)
	yLo, yHi := math.Inf(1), math.Inf(-1)
	for _, pt := range p.points {
		if pt.x <= 0 || pt.y <= 0 {
			continue
		}
		xLo, xHi = math.Min(xLo, pt.x), math.Max(xHi, pt.x)
		yLo, yHi = math.Min(yLo, pt.y), math.Max(yHi, pt.y)
		if pt.lo > 0 {
			yLo = math.Min(yLo, pt.lo)
		}
		if pt.hi > 0 {
			yHi = math.Max(yHi, pt.hi)
		}
	}
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		svgW, svgH, svgW, svgH)
	fmt.Fprintf(bw, `<rect width="%d" height="%d" fill="white"/>`+"\n", svgW, svgH)
	fmt.Fprintf(bw, `<text x="%d" y="24" font-family="sans-serif" font-size="15" text-anchor="middle">%s</text>`+"\n",
		svgW/2, xmlEscape(p.title))
	if !(xLo <= xHi && yLo <= yHi) {
		fmt.Fprintf(bw, `<text x="%d" y="%d" font-family="sans-serif" font-size="13" text-anchor="middle">no positive data</text>`+"\n",
			svgW/2, svgH/2)
		fmt.Fprint(bw, "</svg>\n")
		return bw.err
	}
	// Pad degenerate (single-point) ranges so the mapping is finite.
	lx0, lx1 := math.Log10(xLo), math.Log10(xHi)
	ly0, ly1 := math.Log10(yLo), math.Log10(yHi)
	if lx1-lx0 < 0.1 {
		lx0, lx1 = lx0-0.5, lx1+0.5
	}
	if ly1-ly0 < 0.1 {
		ly0, ly1 = ly0-0.5, ly1+0.5
	}
	px := func(x float64) float64 {
		return svgML + (math.Log10(x)-lx0)/(lx1-lx0)*float64(svgW-svgML-svgMR)
	}
	py := func(y float64) float64 {
		return float64(svgH-svgMB) - (math.Log10(y)-ly0)/(ly1-ly0)*float64(svgH-svgMT-svgMB)
	}

	// Frame.
	fmt.Fprintf(bw, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#333"/>`+"\n",
		svgML, svgMT, svgW-svgML-svgMR, svgH-svgMT-svgMB)
	// Power-of-ten gridlines and tick labels.
	for e := int(math.Ceil(lx0)); float64(e) <= lx1; e++ {
		x := px(math.Pow(10, float64(e)))
		fmt.Fprintf(bw, `<line x1="%s" y1="%d" x2="%s" y2="%d" stroke="#ddd"/>`+"\n",
			fcoord(x), svgMT, fcoord(x), svgH-svgMB)
		fmt.Fprintf(bw, `<text x="%s" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">1e%d</text>`+"\n",
			fcoord(x), svgH-svgMB+16, e)
	}
	for e := int(math.Ceil(ly0)); float64(e) <= ly1; e++ {
		y := py(math.Pow(10, float64(e)))
		fmt.Fprintf(bw, `<line x1="%d" y1="%s" x2="%d" y2="%s" stroke="#ddd"/>`+"\n",
			svgML, fcoord(y), svgW-svgMR, fcoord(y))
		fmt.Fprintf(bw, `<text x="%d" y="%s" font-family="sans-serif" font-size="11" text-anchor="end">1e%d</text>`+"\n",
			svgML-6, fcoord(y+4), e)
	}
	// Axis labels.
	fmt.Fprintf(bw, `<text x="%d" y="%d" font-family="sans-serif" font-size="13" text-anchor="middle">%s</text>`+"\n",
		svgML+(svgW-svgML-svgMR)/2, svgH-12, xmlEscape(p.xLabel))
	fmt.Fprintf(bw, `<text x="16" y="%d" font-family="sans-serif" font-size="13" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		svgMT+(svgH-svgMT-svgMB)/2, svgMT+(svgH-svgMT-svgMB)/2, xmlEscape(p.yLabel))

	// Fitted power law y = C·x^a, sampled across the x-range.
	if p.fit != nil && p.fit.Coeff > 0 {
		var path string
		const samples = 64
		for i := 0; i <= samples; i++ {
			x := math.Pow(10, lx0+(lx1-lx0)*float64(i)/samples)
			y := p.fit.Coeff * math.Pow(x, p.fit.Exponent)
			if y <= 0 || math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			yy := py(y)
			if yy < svgMT || yy > svgH-svgMB {
				continue
			}
			cmd := "L"
			if path == "" {
				cmd = "M"
			}
			path += fmt.Sprintf("%s%s %s ", cmd, fcoord(px(x)), fcoord(yy))
		}
		if path != "" {
			fmt.Fprintf(bw, `<path d="%s" fill="none" stroke="#d62728" stroke-width="1.5" stroke-dasharray="6 3"/>`+"\n", path)
		}
	}

	// CI whiskers, then points on top.
	for _, pt := range p.points {
		if pt.x <= 0 || pt.y <= 0 {
			continue
		}
		x := px(pt.x)
		if pt.lo > 0 && pt.hi > 0 && pt.hi > pt.lo {
			yl, yh := py(pt.lo), py(pt.hi)
			fmt.Fprintf(bw, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="#1f77b4"/>`+"\n",
				fcoord(x), fcoord(yl), fcoord(x), fcoord(yh))
			for _, yy := range []float64{yl, yh} {
				fmt.Fprintf(bw, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="#1f77b4"/>`+"\n",
					fcoord(x-4), fcoord(yy), fcoord(x+4), fcoord(yy))
			}
		}
		fmt.Fprintf(bw, `<circle cx="%s" cy="%s" r="3.5" fill="#1f77b4"/>`+"\n",
			fcoord(x), fcoord(py(pt.y)))
	}
	fmt.Fprint(bw, "</svg>\n")
	return bw.err
}

// fcoord renders a pixel coordinate with fixed precision so the SVG
// bytes are stable across platforms.
func fcoord(v float64) string {
	return strconv.FormatFloat(v, 'f', 2, 64)
}

func xmlEscape(s string) string {
	var out []rune
	for _, r := range s {
		switch r {
		case '&':
			out = append(out, []rune("&amp;")...)
		case '<':
			out = append(out, []rune("&lt;")...)
		case '>':
			out = append(out, []rune("&gt;")...)
		case '"':
			out = append(out, []rune("&quot;")...)
		default:
			out = append(out, r)
		}
	}
	return string(out)
}
