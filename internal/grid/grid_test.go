package grid_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/grid"
)

// makeSynthetic builds a fixed sweep by hand: exchange at
// n ∈ {8, 16, 32} × seeds {1, 2} with rounds = n² (exact power law)
// and wall times {1, 2, 3} ms per cell.
func makeSynthetic(t *testing.T) (*grid.Spec, []grid.RunRecord) {
	t.Helper()
	spec, err := grid.ParseSpec([]byte(`{
	  "name": "synthetic",
	  "repeats": 3,
	  "experiments": [
	    {"algorithm": "exchange", "ns": [8, 16, 32], "seeds": [1, 2]}
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	cells := spec.Expand()
	var records []grid.RunRecord
	for _, c := range cells {
		rounds := int64(c.N) * int64(c.N)
		for r := 0; r < 3; r++ {
			wall := int64(r+1) * 1e6
			records = append(records, grid.RunRecord{
				Cell: c, Repeat: r,
				Rounds: rounds, Words: rounds * 2,
				WallNS:       wall,
				RoundsPerSec: float64(rounds) / (float64(wall) / 1e9),
			})
		}
	}
	return spec, records
}

func TestRunsCSVRoundTrip(t *testing.T) {
	_, records := makeSynthetic(t)
	var buf bytes.Buffer
	if err := grid.WriteRunsCSV(&buf, records); err != nil {
		t.Fatal(err)
	}
	back, err := grid.ParseRunsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(records, back) {
		t.Fatalf("round-trip mismatch:\nwrote %+v\nread  %+v", records[0], back[0])
	}
}

func TestParseRunsCSVRejects(t *testing.T) {
	for _, bad := range []string{
		"",
		"wrong,header\n1,2\n",
		"cell,kind,algorithm,experiment,n,wpp,seed,quick,repeat,rounds,words,wall_ns,rounds_per_sec\n" +
			"x,algorithm,exchange,,8,1,1,false,0,64,128,1000000,64000\n",
	} {
		if _, err := grid.ParseRunsCSV(strings.NewReader(bad)); err == nil {
			t.Fatalf("ParseRunsCSV accepted %q", bad)
		}
	}
}

func TestSummarizeClosedForm(t *testing.T) {
	spec, records := makeSynthetic(t)
	rep := grid.Summarize(spec, records, "lockstep", 3, 1)
	if rep.Schema != grid.SchemaVersion || rep.Backend != "lockstep" || rep.Repeats != 3 {
		t.Fatalf("envelope: %+v", rep)
	}
	// 3 ns × 2 seeds = 6 cells → 3 groups (seeds aggregate), 18 runs.
	if len(rep.Groups) != 3 {
		t.Fatalf("got %d groups, want 3", len(rep.Groups))
	}
	g := rep.Groups[0]
	if g.Key != "exchange/n=8/wpp=1" || g.Runs != 6 || g.Seeds != 2 {
		t.Fatalf("group 0: %+v", g)
	}
	// Model cost: one representative per seed, both 64 → zero-variance CI.
	if g.Rounds.Mean != 64 || g.Rounds.Std != 0 || g.Rounds.CILo != 64 || g.Rounds.CIHi != 64 {
		t.Fatalf("rounds summary: %+v", g.Rounds)
	}
	// Wall samples are {1,2,3,1,2,3} ms: mean 2 ms, std² = 6·(2/3)/5 = 0.8.
	// Half-width = t(0.975, 5) · std / √6 = 2.570582·√0.8e12/√6.
	wall := g.Timing.WallNS
	if wall.N != 6 || math.Abs(wall.Mean-2e6) > 1 {
		t.Fatalf("wall summary: %+v", wall)
	}
	wantHW := 2.570582 * math.Sqrt(0.8) * 1e6 / math.Sqrt(6)
	if hw := wall.HalfWidth(); math.Abs(hw-wantHW) > wantHW*1e-4 {
		t.Fatalf("wall half-width = %g, want %g", hw, wantHW)
	}
	// rounds = n² exactly → fitted exponent 2 with a tight CI.
	if len(rep.Fits) != 1 {
		t.Fatalf("got %d fits, want 1: %+v", len(rep.Fits), rep.Fits)
	}
	f := rep.Fits[0].Fit
	if math.Abs(f.Exponent-2) > 1e-9 || f.R2 < 0.999999 {
		t.Fatalf("fit: %+v", f)
	}
	if rep.Timing == nil || rep.Timing.Runs != 18 {
		t.Fatalf("run timing: %+v", rep.Timing)
	}
}

func TestStripTimingRemovesAllWallClock(t *testing.T) {
	spec, records := makeSynthetic(t)
	rep := grid.Summarize(spec, records, "lockstep", 3, 1)
	stripped := rep.StripTiming()
	data, err := json.Marshal(stripped)
	if err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{"timing", "wall_ns", "rounds_per_sec"} {
		if bytes.Contains(data, []byte(needle)) {
			t.Fatalf("stripped summary still mentions %q:\n%s", needle, data)
		}
	}
	// The original is untouched.
	if rep.Timing == nil || rep.Groups[0].Timing == nil {
		t.Fatal("StripTiming mutated the source report")
	}
}

func TestRunGridDeterministicAcrossParallel(t *testing.T) {
	spec, err := grid.ParseSpec([]byte(`{
	  "name": "parallel-check",
	  "repeats": 2,
	  "warmup": 0,
	  "experiments": [
	    {"algorithm": "exchange", "ns": [4, 8], "seeds": [1, 2]},
	    {"algorithm": "triangle", "ns": [8]}
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	run := func(parallel int) (*grid.Report, []grid.RunRecord) {
		rep, recs, err := grid.Run(context.Background(), spec, grid.Options{Parallel: parallel})
		if err != nil {
			t.Fatalf("Run(parallel=%d): %v", parallel, err)
		}
		return rep, recs
	}
	rep1, recs1 := run(1)
	rep4, recs4 := run(4)
	if len(recs1) != 5*2 || len(recs1) != len(recs4) {
		t.Fatalf("got %d and %d records, want 10", len(recs1), len(recs4))
	}
	// Record order and model cost are identical whatever the pool width.
	for i := range recs1 {
		a, b := recs1[i], recs4[i]
		if a.Cell != b.Cell || a.Repeat != b.Repeat || a.Rounds != b.Rounds || a.Words != b.Words {
			t.Fatalf("record %d differs across parallel: %+v vs %+v", i, a, b)
		}
	}
	// The stripped summaries are byte-identical.
	var buf1, buf4 bytes.Buffer
	if err := rep1.StripTiming().WriteJSON(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := rep4.StripTiming().WriteJSON(&buf4); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf4.Bytes()) {
		t.Fatalf("stripped summaries differ:\n%s\n---\n%s", buf1.Bytes(), buf4.Bytes())
	}
}

func TestRunGridExperimentCell(t *testing.T) {
	if testing.Short() {
		t.Skip("registry experiment in -short mode")
	}
	spec, err := grid.ParseSpec([]byte(`{
	  "repeats": 1, "warmup": 0,
	  "experiments": [{"experiment": "fig1", "quick": true}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	rep, recs, err := grid.Run(context.Background(), spec, grid.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Rounds <= 0 {
		t.Fatalf("records: %+v", recs)
	}
	if len(rep.Groups) != 1 || rep.Groups[0].Key != "exp:fig1/quick" {
		t.Fatalf("groups: %+v", rep.Groups)
	}
}

func TestRunGridCancel(t *testing.T) {
	spec, err := grid.ParseSpec([]byte(`{
	  "repeats": 1, "warmup": 0,
	  "experiments": [{"algorithm": "exchange", "ns": [8]}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := grid.Run(ctx, spec, grid.Options{}); err == nil {
		t.Fatal("Run succeeded under a cancelled context")
	}
}

func TestWriteArtifacts(t *testing.T) {
	spec, records := makeSynthetic(t)
	rep := grid.Summarize(spec, records, "lockstep", 3, 1)
	dir := t.TempDir()
	if err := grid.WriteArtifacts(dir, rep, records, true); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{grid.RunsCSV, grid.SummaryJSON, grid.SummaryMD, grid.TablesTeX} {
		if fi, err := os.Stat(filepath.Join(dir, name)); err != nil || fi.Size() == 0 {
			t.Fatalf("artefact %s: err=%v", name, err)
		}
	}
	plots, err := filepath.Glob(filepath.Join(dir, grid.PlotsDir, "*.svg"))
	if err != nil || len(plots) == 0 {
		t.Fatalf("no SVG plots written (err=%v)", err)
	}
	svg, err := os.ReadFile(plots[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(svg, []byte("<svg ")) || !bytes.Contains(svg, []byte("</svg>")) {
		t.Fatalf("plot is not an SVG document:\n%.200s", svg)
	}
	// The CSV round-trips from disk.
	f, err := os.Open(filepath.Join(dir, grid.RunsCSV))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	back, err := grid.ParseRunsCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(records, back) {
		t.Fatal("runs.csv does not round-trip")
	}
	// The summary parses and carries the schema tag; timing retained
	// because withTiming was set.
	data, err := os.ReadFile(filepath.Join(dir, grid.SummaryJSON))
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Schema string           `json:"schema"`
		Timing *grid.RunTiming  `json:"timing"`
		Groups []map[string]any `json:"groups"`
	}
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	if env.Schema != grid.SchemaVersion || env.Timing == nil || len(env.Groups) != 3 {
		t.Fatalf("summary envelope: %+v", env)
	}
}

func TestWriteArtifactsStripped(t *testing.T) {
	spec, records := makeSynthetic(t)
	rep := grid.Summarize(spec, records, "lockstep", 3, 1)
	dir := t.TempDir()
	if err := grid.WriteArtifacts(dir, rep, records, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, grid.SummaryJSON))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte(`"timing"`)) {
		t.Fatalf("stripped summary.json still has timing:\n%s", data)
	}
}

// TestRunGridBatchMatchesSerial pins the -batch contract: batching
// same-shape seed sweeps changes neither the record order nor any model
// cost, so the stripped deterministic summary is byte-identical to a
// serial run's.
func TestRunGridBatchMatchesSerial(t *testing.T) {
	spec, err := grid.ParseSpec([]byte(`{
	  "name": "batch-check",
	  "repeats": 2,
	  "warmup": 1,
	  "experiments": [
	    {"algorithm": "exchange", "ns": [4, 8], "seeds": [1, 2, 3]},
	    {"algorithm": "triangle", "ns": [8], "seeds": [1, 2]},
	    {"algorithm": "mst", "ns": [8]}
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	run := func(batch bool) (*grid.Report, []grid.RunRecord) {
		rep, recs, err := grid.Run(context.Background(), spec, grid.Options{Batch: batch, Backend: "lockstep"})
		if err != nil {
			t.Fatalf("Run(batch=%v): %v", batch, err)
		}
		return rep, recs
	}
	repS, recsS := run(false)
	repB, recsB := run(true)
	if len(recsS) != len(recsB) {
		t.Fatalf("got %d batched records, want %d", len(recsB), len(recsS))
	}
	for i := range recsS {
		a, b := recsS[i], recsB[i]
		if a.Cell != b.Cell || a.Repeat != b.Repeat || a.Rounds != b.Rounds || a.Words != b.Words {
			t.Fatalf("record %d differs under -batch: %+v vs %+v", i, a, b)
		}
	}
	var bufS, bufB bytes.Buffer
	if err := repS.StripTiming().WriteJSON(&bufS); err != nil {
		t.Fatal(err)
	}
	if err := repB.StripTiming().WriteJSON(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufS.Bytes(), bufB.Bytes()) {
		t.Fatalf("stripped summaries differ under -batch:\n%s\n---\n%s", bufS.Bytes(), bufB.Bytes())
	}
}
