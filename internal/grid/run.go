package grid

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/clique"
	"repro/internal/exp"
	"repro/internal/workload"
)

// RunRecord is one recorded repeat of one cell: the deterministic
// model cost (rounds, words — identical for every repeat of the cell)
// plus the repeat's wall-clock measurement.
type RunRecord struct {
	Cell   Cell
	Repeat int
	// Rounds and Words are the run's model cost.
	Rounds int64
	Words  int64
	// WallNS and RoundsPerSec are the repeat's timing.
	WallNS       int64
	RoundsPerSec float64
}

// Options configure one grid execution.
type Options struct {
	// Backend overrides the spec's backend (highest precedence).
	Backend string
	// Repeats and Warmup override the spec's values when > 0.
	Repeats int
	Warmup  int
	// Parallel is the worker-pool width over cells; values < 2 run
	// sequentially. Repeats of one cell always run back-to-back on one
	// worker, so repeat-to-repeat variance measures the machine, not
	// the scheduler. Record order is deterministic regardless.
	Parallel int
	// Progress, when non-nil, is called after every recorded run with
	// cumulative counts. It may be called concurrently under Parallel.
	Progress func(done, total int)
	// Batch groups algorithm cells sharing an (algorithm, n, wpp) shape
	// — seed sweeps — into one batched engine execution per repeat.
	// Model costs are bit-identical to serial runs; each repeat's wall
	// clock is measured per batch and attributed to cells by their share
	// of the batch's rounds, so per-cell throughput stays comparable.
	// Experiment cells and shapes that appear once run serially.
	Batch bool
}

// resolve folds spec defaults and option overrides into concrete knobs.
func (o Options) resolve(s *Spec) (backend string, repeats, warmup int) {
	backend = s.Backend
	if o.Backend != "" {
		backend = o.Backend
	}
	if backend == "" {
		backend = clique.DefaultBackend
	}
	repeats = s.Repeats
	if o.Repeats > 0 {
		repeats = o.Repeats
	}
	if repeats == 0 {
		repeats = DefaultRepeats
	}
	warmup = s.Warmup
	if o.Warmup > 0 {
		warmup = o.Warmup
	}
	if warmup == 0 {
		warmup = DefaultWarmup
	}
	return backend, repeats, warmup
}

// Run executes the grid and returns the records in deterministic order
// (cell index, then repeat) plus the resolved knobs via the Report it
// summarises into. Cancelling ctx aborts at the next run boundary.
func Run(ctx context.Context, spec *Spec, opts Options) (*Report, []RunRecord, error) {
	if err := spec.Validate(); err != nil {
		return nil, nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	backend, repeats, warmup := opts.resolve(spec)
	if err := validBackend(backend); err != nil {
		return nil, nil, err
	}
	cells := spec.Expand()
	total := len(cells) * repeats
	if total > MaxRuns {
		return nil, nil, fmt.Errorf("grid: %d cells × %d repeats exceeds the %d-run limit", len(cells), repeats, MaxRuns)
	}

	perCell := make([][]RunRecord, len(cells))
	var done sync.WaitGroup
	var mu sync.Mutex
	recorded := 0
	var firstErr error
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	progress := func() {
		if opts.Progress == nil {
			return
		}
		mu.Lock()
		recorded++
		n := recorded
		mu.Unlock()
		opts.Progress(n, total)
	}

	// The unit of work is a group of cell indices: singletons normally,
	// same-shape seed sweeps under Batch. Records land in perCell by
	// cell index either way, so output order is deterministic.
	groups := make([][]int, 0, len(cells))
	if opts.Batch {
		groups = batchGroups(cells)
	} else {
		for i := range cells {
			groups = append(groups, []int{i})
		}
	}

	execGroup := func(g []int) {
		if len(g) == 1 {
			recs, err := runCell(ctx, cells[g[0]], backend, repeats, warmup, progress)
			if err != nil {
				setErr(err)
				return
			}
			perCell[g[0]] = recs
			return
		}
		group := make([]Cell, len(g))
		for j, i := range g {
			group[j] = cells[i]
		}
		recsByCell, err := runCellsBatched(ctx, group, backend, repeats, warmup, progress)
		if err != nil {
			setErr(err)
			return
		}
		for j, i := range g {
			perCell[i] = recsByCell[j]
		}
	}

	workers := opts.Parallel
	if workers < 2 || len(groups) < 2 {
		for _, g := range groups {
			execGroup(g)
		}
	} else {
		if workers > len(groups) {
			workers = len(groups)
		}
		jobs := make(chan []int)
		for w := 0; w < workers; w++ {
			done.Add(1)
			go func() {
				defer done.Done()
				for g := range jobs {
					execGroup(g)
				}
			}()
		}
		for _, g := range groups {
			jobs <- g
		}
		close(jobs)
		done.Wait()
	}
	if firstErr != nil {
		return nil, nil, firstErr
	}

	records := make([]RunRecord, 0, total)
	for _, recs := range perCell {
		records = append(records, recs...)
	}
	rep := Summarize(spec, records, backend, repeats, warmup)
	return rep, records, nil
}

// batchGroups partitions cells into batchable groups: algorithm cells
// sharing an (algorithm, n, wpp) shape — i.e. differing only by seed —
// group together in first-appearance order; everything else stays a
// singleton.
func batchGroups(cells []Cell) [][]int {
	type shape struct {
		alg    string
		n, wpp int
	}
	seen := map[shape]int{}
	var groups [][]int
	for i, c := range cells {
		if c.Kind != CellAlgorithm {
			groups = append(groups, []int{i})
			continue
		}
		k := shape{c.Algorithm, c.N, c.WPP}
		if gi, ok := seen[k]; ok {
			groups[gi] = append(groups[gi], i)
		} else {
			seen[k] = len(groups)
			groups = append(groups, []int{i})
		}
	}
	return groups
}

// runCellsBatched executes a same-shape group of algorithm cells:
// every warmup and repeat is one batched engine execution covering the
// whole group. Per-cell model costs come from the per-run results
// (bit-identical to serial runs); the batch's wall clock is attributed
// to cells proportionally to their rounds. The per-cell determinism
// check is identical to runCell's.
func runCellsBatched(ctx context.Context, group []Cell, backend string, repeats, warmup int, progress func()) ([][]RunRecord, error) {
	alg, ok := workload.Get(group[0].Algorithm)
	if !ok {
		return nil, fmt.Errorf("grid: cell %d: unknown algorithm %q", group[0].Index, group[0].Algorithm)
	}
	cfg := clique.Config{N: group[0].N, WordsPerPair: group[0].WPP, Backend: backend}

	one := func() ([]*clique.Result, int64, error) {
		if err := ctx.Err(); err != nil {
			return nil, 0, fmt.Errorf("grid: cell %d (%s): %w", group[0].Index, group[0].GroupKey(), err)
		}
		start := time.Now()
		// Instance generation is rebuilt per execution and stays inside
		// the timed region, exactly as in the serial path.
		progs := make([]clique.NodeFunc, len(group))
		for j, c := range group {
			progs[j] = alg.Make(c.N, c.Seed)
		}
		results, errs := clique.RunBatch(cfg, progs)
		wall := time.Since(start)
		for j, err := range errs {
			if err != nil {
				return nil, 0, fmt.Errorf("grid: cell %d (%s): %w", group[j].Index, group[j].GroupKey(), err)
			}
		}
		return results, wall.Nanoseconds(), nil
	}

	for i := 0; i < warmup; i++ {
		if _, _, err := one(); err != nil {
			return nil, err
		}
	}
	recs := make([][]RunRecord, len(group))
	for r := 0; r < repeats; r++ {
		results, wallNS, err := one()
		if err != nil {
			return nil, err
		}
		var totalRounds int64
		for _, res := range results {
			totalRounds += int64(res.Stats.Rounds)
		}
		for j, c := range group {
			rounds := int64(results[j].Stats.Rounds)
			words := results[j].Stats.WordsSent
			cellWall := int64(0)
			if totalRounds > 0 {
				cellWall = wallNS * rounds / totalRounds
			} else if len(group) > 0 {
				cellWall = wallNS / int64(len(group))
			}
			rec := RunRecord{Cell: c, Repeat: r, Rounds: rounds, Words: words, WallNS: cellWall}
			if cellWall > 0 {
				rec.RoundsPerSec = float64(rounds) / (float64(cellWall) / 1e9)
			}
			if r > 0 && (rounds != recs[j][0].Rounds || words != recs[j][0].Words) {
				return nil, fmt.Errorf(
					"grid: cell %d (%s): repeat %d cost %d rounds/%d words, repeat 0 cost %d/%d — model nondeterminism",
					c.Index, c.GroupKey(), r, rounds, words, recs[j][0].Rounds, recs[j][0].Words)
			}
			recs[j] = append(recs[j], rec)
			if progress != nil {
				progress()
			}
		}
	}
	return recs, nil
}

// runCell executes one cell: warmup runs discarded, repeats recorded,
// and the model-cost determinism of the repeats verified.
func runCell(ctx context.Context, c Cell, backend string, repeats, warmup int, progress func()) ([]RunRecord, error) {
	one := func() (rounds, words, wallNS int64, err error) {
		if err := ctx.Err(); err != nil {
			return 0, 0, 0, fmt.Errorf("grid: cell %d (%s): %w", c.Index, c.GroupKey(), err)
		}
		switch c.Kind {
		case CellAlgorithm:
			alg, ok := workload.Get(c.Algorithm)
			if !ok {
				return 0, 0, 0, fmt.Errorf("grid: cell %d: unknown algorithm %q", c.Index, c.Algorithm)
			}
			cfg := clique.Config{N: c.N, WordsPerPair: c.WPP, Backend: backend}
			start := time.Now()
			res, err := clique.Run(cfg, alg.Make(c.N, c.Seed))
			wall := time.Since(start)
			if err != nil {
				return 0, 0, 0, fmt.Errorf("grid: cell %d (%s): %w", c.Index, c.GroupKey(), err)
			}
			return int64(res.Stats.Rounds), res.Stats.WordsSent, wall.Nanoseconds(), nil
		case CellExperiment:
			res, tim, err := exp.RunOneContext(ctx, c.Experiment, exp.Options{Backend: backend, Quick: c.Quick})
			if err != nil {
				return 0, 0, 0, fmt.Errorf("grid: cell %d (%s): %w", c.Index, c.GroupKey(), err)
			}
			return res.Sim.Rounds, res.Sim.Words, tim.SimWall.Nanoseconds(), nil
		}
		return 0, 0, 0, fmt.Errorf("grid: cell %d: unknown kind %q", c.Index, c.Kind)
	}

	for i := 0; i < warmup; i++ {
		if _, _, _, err := one(); err != nil {
			return nil, err
		}
	}
	recs := make([]RunRecord, 0, repeats)
	for r := 0; r < repeats; r++ {
		rounds, words, wallNS, err := one()
		if err != nil {
			return nil, err
		}
		rec := RunRecord{Cell: c, Repeat: r, Rounds: rounds, Words: words, WallNS: wallNS}
		if wallNS > 0 {
			rec.RoundsPerSec = float64(rounds) / (float64(wallNS) / 1e9)
		}
		// The model is deterministic: a repeat that changed the round or
		// word count means the simulator (not the measurement) broke.
		if r > 0 && (rounds != recs[0].Rounds || words != recs[0].Words) {
			return nil, fmt.Errorf(
				"grid: cell %d (%s): repeat %d cost %d rounds/%d words, repeat 0 cost %d/%d — model nondeterminism",
				c.Index, c.GroupKey(), r, rounds, words, recs[0].Rounds, recs[0].Words)
		}
		recs = append(recs, rec)
		if progress != nil {
			progress()
		}
	}
	return recs, nil
}
