package grid

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/clique"
	"repro/internal/exp"
	"repro/internal/workload"
)

// RunRecord is one recorded repeat of one cell: the deterministic
// model cost (rounds, words — identical for every repeat of the cell)
// plus the repeat's wall-clock measurement.
type RunRecord struct {
	Cell   Cell
	Repeat int
	// Rounds and Words are the run's model cost.
	Rounds int64
	Words  int64
	// WallNS and RoundsPerSec are the repeat's timing.
	WallNS       int64
	RoundsPerSec float64
}

// Options configure one grid execution.
type Options struct {
	// Backend overrides the spec's backend (highest precedence).
	Backend string
	// Repeats and Warmup override the spec's values when > 0.
	Repeats int
	Warmup  int
	// Parallel is the worker-pool width over cells; values < 2 run
	// sequentially. Repeats of one cell always run back-to-back on one
	// worker, so repeat-to-repeat variance measures the machine, not
	// the scheduler. Record order is deterministic regardless.
	Parallel int
	// Progress, when non-nil, is called after every recorded run with
	// cumulative counts. It may be called concurrently under Parallel.
	Progress func(done, total int)
}

// resolve folds spec defaults and option overrides into concrete knobs.
func (o Options) resolve(s *Spec) (backend string, repeats, warmup int) {
	backend = s.Backend
	if o.Backend != "" {
		backend = o.Backend
	}
	if backend == "" {
		backend = clique.DefaultBackend
	}
	repeats = s.Repeats
	if o.Repeats > 0 {
		repeats = o.Repeats
	}
	if repeats == 0 {
		repeats = DefaultRepeats
	}
	warmup = s.Warmup
	if o.Warmup > 0 {
		warmup = o.Warmup
	}
	if warmup == 0 {
		warmup = DefaultWarmup
	}
	return backend, repeats, warmup
}

// Run executes the grid and returns the records in deterministic order
// (cell index, then repeat) plus the resolved knobs via the Report it
// summarises into. Cancelling ctx aborts at the next run boundary.
func Run(ctx context.Context, spec *Spec, opts Options) (*Report, []RunRecord, error) {
	if err := spec.Validate(); err != nil {
		return nil, nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	backend, repeats, warmup := opts.resolve(spec)
	if err := validBackend(backend); err != nil {
		return nil, nil, err
	}
	cells := spec.Expand()
	total := len(cells) * repeats
	if total > MaxRuns {
		return nil, nil, fmt.Errorf("grid: %d cells × %d repeats exceeds the %d-run limit", len(cells), repeats, MaxRuns)
	}

	perCell := make([][]RunRecord, len(cells))
	var done sync.WaitGroup
	var mu sync.Mutex
	recorded := 0
	var firstErr error
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	progress := func() {
		if opts.Progress == nil {
			return
		}
		mu.Lock()
		recorded++
		n := recorded
		mu.Unlock()
		opts.Progress(n, total)
	}

	execCell := func(i int) {
		recs, err := runCell(ctx, cells[i], backend, repeats, warmup, progress)
		if err != nil {
			setErr(err)
			return
		}
		perCell[i] = recs
	}

	workers := opts.Parallel
	if workers < 2 || len(cells) < 2 {
		for i := range cells {
			execCell(i)
		}
	} else {
		if workers > len(cells) {
			workers = len(cells)
		}
		jobs := make(chan int)
		for w := 0; w < workers; w++ {
			done.Add(1)
			go func() {
				defer done.Done()
				for i := range jobs {
					execCell(i)
				}
			}()
		}
		for i := range cells {
			jobs <- i
		}
		close(jobs)
		done.Wait()
	}
	if firstErr != nil {
		return nil, nil, firstErr
	}

	records := make([]RunRecord, 0, total)
	for _, recs := range perCell {
		records = append(records, recs...)
	}
	rep := Summarize(spec, records, backend, repeats, warmup)
	return rep, records, nil
}

// runCell executes one cell: warmup runs discarded, repeats recorded,
// and the model-cost determinism of the repeats verified.
func runCell(ctx context.Context, c Cell, backend string, repeats, warmup int, progress func()) ([]RunRecord, error) {
	one := func() (rounds, words, wallNS int64, err error) {
		if err := ctx.Err(); err != nil {
			return 0, 0, 0, fmt.Errorf("grid: cell %d (%s): %w", c.Index, c.GroupKey(), err)
		}
		switch c.Kind {
		case CellAlgorithm:
			alg, ok := workload.Get(c.Algorithm)
			if !ok {
				return 0, 0, 0, fmt.Errorf("grid: cell %d: unknown algorithm %q", c.Index, c.Algorithm)
			}
			cfg := clique.Config{N: c.N, WordsPerPair: c.WPP, Backend: backend}
			start := time.Now()
			res, err := clique.Run(cfg, alg.Make(c.N, c.Seed))
			wall := time.Since(start)
			if err != nil {
				return 0, 0, 0, fmt.Errorf("grid: cell %d (%s): %w", c.Index, c.GroupKey(), err)
			}
			return int64(res.Stats.Rounds), res.Stats.WordsSent, wall.Nanoseconds(), nil
		case CellExperiment:
			res, tim, err := exp.RunOneContext(ctx, c.Experiment, exp.Options{Backend: backend, Quick: c.Quick})
			if err != nil {
				return 0, 0, 0, fmt.Errorf("grid: cell %d (%s): %w", c.Index, c.GroupKey(), err)
			}
			return res.Sim.Rounds, res.Sim.Words, tim.SimWall.Nanoseconds(), nil
		}
		return 0, 0, 0, fmt.Errorf("grid: cell %d: unknown kind %q", c.Index, c.Kind)
	}

	for i := 0; i < warmup; i++ {
		if _, _, _, err := one(); err != nil {
			return nil, err
		}
	}
	recs := make([]RunRecord, 0, repeats)
	for r := 0; r < repeats; r++ {
		rounds, words, wallNS, err := one()
		if err != nil {
			return nil, err
		}
		rec := RunRecord{Cell: c, Repeat: r, Rounds: rounds, Words: words, WallNS: wallNS}
		if wallNS > 0 {
			rec.RoundsPerSec = float64(rounds) / (float64(wallNS) / 1e9)
		}
		// The model is deterministic: a repeat that changed the round or
		// word count means the simulator (not the measurement) broke.
		if r > 0 && (rounds != recs[0].Rounds || words != recs[0].Words) {
			return nil, fmt.Errorf(
				"grid: cell %d (%s): repeat %d cost %d rounds/%d words, repeat 0 cost %d/%d — model nondeterminism",
				c.Index, c.GroupKey(), r, rounds, words, recs[0].Rounds, recs[0].Words)
		}
		recs = append(recs, rec)
		if progress != nil {
			progress()
		}
	}
	return recs, nil
}
