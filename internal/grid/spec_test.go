package grid_test

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/grid"
)

const validSpec = `{
  "name": "unit",
  "repeats": 2,
  "warmup": 0,
  "experiments": [
    {"algorithm": "exchange", "ns": [8, 16], "seeds": [1, 2]},
    {"algorithm": "triangle", "ns": [8], "wpp": [1, 2]},
    {"experiment": "fig1", "quick": true}
  ]
}`

func TestParseSpecValid(t *testing.T) {
	s, err := grid.ParseSpec([]byte(validSpec))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if s.Name != "unit" || s.Repeats != 2 || len(s.Experiments) != 3 {
		t.Fatalf("unexpected spec: %+v", s)
	}
	cells := s.Expand()
	// 2 ns × 2 seeds + 1 n × 2 wpp + 1 experiment.
	if len(cells) != 4+2+1 {
		t.Fatalf("expanded to %d cells, want 7", len(cells))
	}
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d has index %d", i, c.Index)
		}
	}
	// Expansion order is block, n-major, wpp, seed.
	if cells[0].GroupKey() != "exchange/n=8/wpp=1" || cells[0].Seed != 1 {
		t.Fatalf("cell 0: %+v", cells[0])
	}
	if cells[1].Seed != 2 || cells[2].N != 16 {
		t.Fatalf("cells 1-2: %+v %+v", cells[1], cells[2])
	}
	if cells[4].GroupKey() != "triangle/n=8/wpp=1" || cells[5].WPP != 2 {
		t.Fatalf("cells 4-5: %+v %+v", cells[4], cells[5])
	}
	if cells[6].Kind != grid.CellExperiment || cells[6].GroupKey() != "exp:fig1/quick" {
		t.Fatalf("cell 6: %+v", cells[6])
	}
}

func TestParseSpecWPPDefaultsToCatalogue(t *testing.T) {
	s, err := grid.ParseSpec([]byte(`{"experiments":[{"algorithm":"boolmm-naive","ns":[8]}]}`))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	cells := s.Expand()
	if len(cells) != 1 || cells[0].WPP < 1 {
		t.Fatalf("expected one cell with catalogue wpp, got %+v", cells)
	}
}

func TestParseSpecRejects(t *testing.T) {
	cases := []struct {
		name, spec, want string
	}{
		{"empty object", `{}`, "no experiment blocks"},
		{"unknown field", `{"experiments":[{"algorithm":"exchange","ns":[8]}],"repeat":3}`, "unknown field"},
		{"unknown algorithm", `{"experiments":[{"algorithm":"nope","ns":[8]}]}`, `unknown algorithm "nope"`},
		{"unknown experiment", `{"experiments":[{"experiment":"nope"}]}`, `unknown experiment "nope"`},
		{"both kinds", `{"experiments":[{"algorithm":"exchange","experiment":"fig1","ns":[8]}]}`, "both"},
		{"neither kind", `{"experiments":[{"ns":[8]}]}`, "neither"},
		{"missing ns", `{"experiments":[{"algorithm":"exchange"}]}`, "no ns axis"},
		{"n too big", `{"experiments":[{"algorithm":"exchange","ns":[2048]}]}`, "n = 2048"},
		{"n zero", `{"experiments":[{"algorithm":"exchange","ns":[0]}]}`, "n = 0"},
		{"bad wpp", `{"experiments":[{"algorithm":"exchange","ns":[8],"wpp":[0]}]}`, "wpp = 0"},
		{"quick on algorithm", `{"experiments":[{"algorithm":"exchange","ns":[8],"quick":true}]}`, "quick applies only"},
		{"axes on experiment", `{"experiments":[{"experiment":"fig1","ns":[8]}]}`, "fixes its own sweep"},
		{"bad backend", `{"backend":"warp","experiments":[{"algorithm":"exchange","ns":[8]}]}`, `unknown backend "warp"`},
		{"negative repeats", `{"repeats":-1,"experiments":[{"algorithm":"exchange","ns":[8]}]}`, "repeats = -1"},
		{"huge repeats", `{"repeats":5000,"experiments":[{"algorithm":"exchange","ns":[8]}]}`, "repeats = 5000"},
		{"trailing data", `{"experiments":[{"algorithm":"exchange","ns":[8]}]} {}`, "trailing data"},
		{"not json", `nope`, "parsing spec"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := grid.ParseSpec([]byte(tc.spec))
			if err == nil {
				t.Fatalf("ParseSpec accepted %s", tc.spec)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParseSpecCellCap(t *testing.T) {
	// 1024 ns × 8 seeds = 8192 cells > MaxCells.
	ns := make([]int, 1024)
	for i := range ns {
		ns[i] = 1 + i%grid.MaxGridN
	}
	spec := map[string]any{
		"experiments": []map[string]any{
			{"algorithm": "exchange", "ns": ns, "seeds": []int{1, 2, 3, 4, 5, 6, 7, 8}},
		},
	}
	data, _ := json.Marshal(spec)
	if _, err := grid.ParseSpec(data); err == nil || !strings.Contains(err.Error(), "cells") {
		t.Fatalf("expected cell-cap error, got %v", err)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	// Validate does not mutate: a parsed spec re-serialises with the
	// fields as written (defaults live in Expand/Run, not the struct).
	s, err := grid.ParseSpec([]byte(`{"experiments":[{"algorithm":"exchange","ns":[8]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"experiments":[{"algorithm":"exchange","ns":[8]}]}`
	if string(data) != want {
		t.Fatalf("round-trip = %s, want %s", data, want)
	}
}
