// Package grid is the statistical experiment-grid runner behind the
// cliquegrid command: a declarative grid (workloads × n × wordsPerPair
// × seeds, plus registry experiments) executed with per-cell warmup and
// repeats, summarised with mean/std/min/max and Student-t confidence
// intervals (internal/stats), fitted for round-complexity exponents
// over each n-sweep, and written out as paper-ready artefacts — per-run
// CSV, a cliquegrid/v1 summary JSON, Markdown and LaTeX tables, and
// dependency-free SVG plots under paper_runs/<stamp>/.
//
// Determinism contract: everything in the summary except the fields
// explicitly named "timing" is a pure function of the spec — rounds and
// words are model costs, identical across repeats, seeds aside, and
// across worker counts. Report.StripTiming removes the wall-clock
// blocks, and the stripped summary is byte-identical whatever
// -parallel was; the runner additionally verifies that every repeat of
// a cell reproduced the same model cost and fails loudly when the
// simulator has gone nondeterministic.
package grid
