package grid

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Artefact file names inside a paper_runs/<stamp>/ directory.
const (
	RunsCSV     = "runs.csv"
	SummaryJSON = "summary.json"
	SummaryMD   = "summary.md"
	TablesTeX   = "tables.tex"
	PlotsDir    = "plots"
)

// WriteArtifacts writes the full artefact set under dir (created if
// missing): per-run CSV, the summary JSON (stripped of timing when
// withTiming is false), Markdown and LaTeX tables, and one SVG plot
// per fitted sweep.
func WriteArtifacts(dir string, rep *Report, records []RunRecord, withTiming bool) error {
	if err := os.MkdirAll(filepath.Join(dir, PlotsDir), 0o755); err != nil {
		return fmt.Errorf("grid: %w", err)
	}
	if err := writeFile(filepath.Join(dir, RunsCSV), func(w io.Writer) error {
		return WriteRunsCSV(w, records)
	}); err != nil {
		return err
	}
	out := rep
	if !withTiming {
		out = rep.StripTiming()
	}
	if err := writeFile(filepath.Join(dir, SummaryJSON), out.WriteJSON); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(dir, SummaryMD), func(w io.Writer) error {
		return out.WriteMarkdown(w)
	}); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(dir, TablesTeX), func(w io.Writer) error {
		return out.WriteLaTeX(w)
	}); err != nil {
		return err
	}
	for _, p := range rep.Plots(withTiming) {
		if err := writeFile(filepath.Join(dir, PlotsDir, p.Name), p.WriteSVG); err != nil {
			return err
		}
	}
	return nil
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("grid: %w", err)
	}
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("grid: writing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("grid: closing %s: %w", path, err)
	}
	return nil
}

// runsCSVHeader is the per-run CSV schema, one row per recorded run.
var runsCSVHeader = []string{
	"cell", "kind", "algorithm", "experiment", "n", "wpp", "seed", "quick",
	"repeat", "rounds", "words", "wall_ns", "rounds_per_sec",
}

// WriteRunsCSV writes one row per recorded run in record order.
func WriteRunsCSV(w io.Writer, records []RunRecord) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(runsCSVHeader); err != nil {
		return err
	}
	for _, r := range records {
		row := []string{
			strconv.Itoa(r.Cell.Index),
			r.Cell.Kind,
			r.Cell.Algorithm,
			r.Cell.Experiment,
			strconv.Itoa(r.Cell.N),
			strconv.Itoa(r.Cell.WPP),
			strconv.FormatUint(r.Cell.Seed, 10),
			strconv.FormatBool(r.Cell.Quick),
			strconv.Itoa(r.Repeat),
			strconv.FormatInt(r.Rounds, 10),
			strconv.FormatInt(r.Words, 10),
			strconv.FormatInt(r.WallNS, 10),
			strconv.FormatFloat(r.RoundsPerSec, 'g', 17, 64),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ParseRunsCSV reads back a runs.csv, the inverse of WriteRunsCSV — so
// archived raw runs can be re-summarised by later versions of the
// tools.
func ParseRunsCSV(r io.Reader) ([]RunRecord, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("grid: parsing runs CSV: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("grid: runs CSV is empty")
	}
	if strings.Join(rows[0], ",") != strings.Join(runsCSVHeader, ",") {
		return nil, fmt.Errorf("grid: runs CSV header %v, want %v", rows[0], runsCSVHeader)
	}
	var records []RunRecord
	for i, row := range rows[1:] {
		rec, err := parseRunRow(row)
		if err != nil {
			return nil, fmt.Errorf("grid: runs CSV row %d: %w", i+1, err)
		}
		records = append(records, rec)
	}
	return records, nil
}

func parseRunRow(row []string) (RunRecord, error) {
	var rec RunRecord
	if len(row) != len(runsCSVHeader) {
		return rec, fmt.Errorf("%d fields, want %d", len(row), len(runsCSVHeader))
	}
	var err error
	if rec.Cell.Index, err = strconv.Atoi(row[0]); err != nil {
		return rec, err
	}
	rec.Cell.Kind = row[1]
	rec.Cell.Algorithm = row[2]
	rec.Cell.Experiment = row[3]
	if rec.Cell.N, err = strconv.Atoi(row[4]); err != nil {
		return rec, err
	}
	if rec.Cell.WPP, err = strconv.Atoi(row[5]); err != nil {
		return rec, err
	}
	if rec.Cell.Seed, err = strconv.ParseUint(row[6], 10, 64); err != nil {
		return rec, err
	}
	if rec.Cell.Quick, err = strconv.ParseBool(row[7]); err != nil {
		return rec, err
	}
	if rec.Repeat, err = strconv.Atoi(row[8]); err != nil {
		return rec, err
	}
	if rec.Rounds, err = strconv.ParseInt(row[9], 10, 64); err != nil {
		return rec, err
	}
	if rec.Words, err = strconv.ParseInt(row[10], 10, 64); err != nil {
		return rec, err
	}
	if rec.WallNS, err = strconv.ParseInt(row[11], 10, 64); err != nil {
		return rec, err
	}
	if rec.RoundsPerSec, err = strconv.ParseFloat(row[12], 64); err != nil {
		return rec, err
	}
	return rec, nil
}

// WriteMarkdown renders the summary as the paper_runs summary.md:
// group table, fit table, and the methodology line.
func (r *Report) WriteMarkdown(w io.Writer) error {
	bw := &errWriter{w: w}
	name := r.Name
	if name == "" {
		name = "experiment grid"
	}
	fmt.Fprintf(bw, "# %s\n\n", name)
	fmt.Fprintf(bw, "backend `%s` · %d repeats per cell after %d warmup · %g%% Student-t confidence intervals\n\n",
		r.Backend, r.Repeats, r.Warmup, 100*ciLevel(r))
	fmt.Fprintf(bw, "## Groups\n\n")
	fmt.Fprintf(bw, "| group | runs | rounds (mean) | rounds [min, max] | words (mean) |%s\n", timingCols(r, " rounds/sec (mean ± CI) | wall ms (mean) |"))
	fmt.Fprintf(bw, "|---|---|---|---|---|%s\n", timingCols(r, "---|---|"))
	for _, g := range r.Groups {
		fmt.Fprintf(bw, "| `%s` | %d | %s | [%s, %s] | %s |",
			g.Key, g.Runs, fnum(g.Rounds.Mean), fnum(g.Rounds.Min), fnum(g.Rounds.Max), fnum(g.Words.Mean))
		if g.Timing != nil {
			fmt.Fprintf(bw, " %s ± %s | %.3f |",
				fnum(g.Timing.RoundsPerSec.Mean), fnum(g.Timing.RoundsPerSec.HalfWidth()),
				g.Timing.WallNS.Mean/1e6)
		}
		fmt.Fprintln(bw)
	}
	writeFitsMD(bw, "Fitted exponents (rounds vs n)", r.Fits)
	writeFitsMD(bw, "Fitted exponents (wall time vs n)", r.TimingFits)
	if r.Timing != nil {
		fmt.Fprintf(bw, "\n%d recorded runs, %.2fs simulated wall time\n", r.Timing.Runs, float64(r.Timing.WallNS)/1e9)
	}
	return bw.err
}

func writeFitsMD(w io.Writer, title string, fits []GroupFit) {
	if len(fits) == 0 {
		return
	}
	fmt.Fprintf(w, "\n## %s\n\n", title)
	fmt.Fprintf(w, "| sweep | exponent | 95%% CI | R² | points |\n|---|---|---|---|---|\n")
	for _, f := range fits {
		fmt.Fprintf(w, "| `%s` (wpp=%d) | %.3f | [%.3f, %.3f] | %.4f | %d |\n",
			f.Algorithm, f.WPP, f.Fit.Exponent, f.Fit.CILo, f.Fit.CIHi, f.Fit.R2, f.Fit.N)
	}
}

// WriteLaTeX renders the group and fit tables as LaTeX tabulars, ready
// to \input into a paper.
func (r *Report) WriteLaTeX(w io.Writer) error {
	bw := &errWriter{w: w}
	fmt.Fprintf(bw, "%% generated by cliquegrid (%s); do not edit by hand\n", SchemaVersion)
	fmt.Fprintf(bw, "\\begin{tabular}{lrrrr}\n")
	fmt.Fprintf(bw, "group & runs & rounds & words & rounds/sec \\\\\n\\hline\n")
	for _, g := range r.Groups {
		rps := "--"
		if g.Timing != nil {
			rps = fmt.Sprintf("$%s \\pm %s$", fnum(g.Timing.RoundsPerSec.Mean), fnum(g.Timing.RoundsPerSec.HalfWidth()))
		}
		fmt.Fprintf(bw, "%s & %d & %s & %s & %s \\\\\n",
			texEscape(g.Key), g.Runs, fnum(g.Rounds.Mean), fnum(g.Words.Mean), rps)
	}
	fmt.Fprintf(bw, "\\end{tabular}\n")
	if len(r.Fits) > 0 {
		fmt.Fprintf(bw, "\n\\begin{tabular}{lrrr}\n")
		fmt.Fprintf(bw, "sweep & exponent & 95\\%% CI & $R^2$ \\\\\n\\hline\n")
		for _, f := range r.Fits {
			fmt.Fprintf(bw, "%s & $%.3f$ & $[%.3f, %.3f]$ & %.4f \\\\\n",
				texEscape(f.Algorithm), f.Fit.Exponent, f.Fit.CILo, f.Fit.CIHi, f.Fit.R2)
		}
		fmt.Fprintf(bw, "\\end{tabular}\n")
	}
	return bw.err
}

// ciLevel returns the confidence level used by the report's summaries
// (they all share one level; fall back to the stats default).
func ciLevel(r *Report) float64 {
	for _, g := range r.Groups {
		if g.Rounds.Level > 0 {
			return g.Rounds.Level
		}
	}
	return 0.95
}

func timingCols(r *Report, s string) string {
	for _, g := range r.Groups {
		if g.Timing != nil {
			return s
		}
	}
	return ""
}

// fnum renders a float compactly: integers without a fraction, others
// with up to three significant decimals.
func fnum(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 4, 64)
}

func texEscape(s string) string {
	repl := strings.NewReplacer("_", "\\_", "%", "\\%", "&", "\\&", "#", "\\#")
	return repl.Replace(s)
}

// errWriter folds write errors so the renderers stay linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, err
}
