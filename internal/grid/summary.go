package grid

import (
	"encoding/json"
	"io"
	"sort"

	"repro/internal/exp"
	"repro/internal/stats"
)

// SchemaVersion identifies the grid-summary JSON envelope.
const SchemaVersion = "cliquegrid/v1"

// Report is the cliquegrid/v1 summary envelope. Everything outside the
// fields named Timing/TimingFits is deterministic for a fixed spec and
// binary; StripTiming removes exactly those fields, and the stripped
// envelope is byte-identical across repeat runs and -parallel settings.
type Report struct {
	Schema string `json:"schema"`
	// Name echoes the spec's label.
	Name    string `json:"name,omitempty"`
	Backend string `json:"backend"`
	// Repeats and Warmup are the resolved per-cell counts the grid ran
	// with (spec defaults and CLI overrides folded in).
	Repeats int `json:"repeats"`
	Warmup  int `json:"warmup"`
	// Spec is the grid as declared, for reproduction.
	Spec *Spec `json:"spec"`
	// Groups summarise the cells in first-seen cell order: one group
	// per (algorithm, n, wpp) across seeds × repeats, one per
	// experiment across repeats.
	Groups []Group `json:"groups"`
	// Fits are the deterministic round-complexity fits: rounds vs n per
	// (algorithm, wpp) sweep with ≥ 2 distinct sizes.
	Fits []GroupFit `json:"fits,omitempty"`
	// TimingFits are wall-time-vs-n fits; like every timing field they
	// vary run to run and are removed by StripTiming.
	TimingFits []GroupFit `json:"timing_fits,omitempty"`
	// Timing is the whole-grid wall-clock block.
	Timing *RunTiming `json:"timing,omitempty"`
	// Build attributes the artefact to the producing binary.
	Build *exp.BuildInfo `json:"build"`
}

// Group is one summary row: a grid point aggregated over its repeats
// (and, for algorithm groups, its seeds).
type Group struct {
	// Key is the stable group identity (Cell.GroupKey).
	Key string `json:"key"`
	// Kind is CellAlgorithm or CellExperiment.
	Kind       string `json:"kind"`
	Algorithm  string `json:"algorithm,omitempty"`
	Experiment string `json:"experiment,omitempty"`
	N          int    `json:"n,omitempty"`
	WPP        int    `json:"wpp,omitempty"`
	Quick      bool   `json:"quick,omitempty"`
	// Seeds is the number of distinct seeds aggregated.
	Seeds int `json:"seeds,omitempty"`
	// Runs is the number of recorded runs behind the summaries.
	Runs int `json:"runs"`
	// Rounds and Words summarise the model cost across seeds. They are
	// deterministic: repeats of one cell are verified identical, so the
	// sample is one value per seed.
	Rounds stats.Summary `json:"rounds"`
	Words  stats.Summary `json:"words"`
	// Timing summarises the wall-clock measurements across all
	// seeds × repeats.
	Timing *GroupTiming `json:"timing,omitempty"`
}

// GroupTiming is a group's wall-clock block.
type GroupTiming struct {
	WallNS       stats.Summary `json:"wall_ns"`
	RoundsPerSec stats.Summary `json:"rounds_per_sec"`
}

// GroupFit is one fitted exponent over an n-sweep.
type GroupFit struct {
	Algorithm string `json:"algorithm"`
	WPP       int    `json:"wpp"`
	// Metric names the fitted quantity: "rounds" (deterministic) or
	// "wall_ns" (timing).
	Metric string    `json:"metric"`
	Fit    stats.Fit `json:"fit"`
}

// RunTiming is the whole-grid wall-clock block.
type RunTiming struct {
	// WallNS sums the recorded runs' wall time (warmups excluded).
	WallNS int64 `json:"wall_ns"`
	// Runs is the recorded-run count behind WallNS.
	Runs int `json:"runs"`
}

// Summarize groups the records into the cliquegrid/v1 envelope. Group
// order is first-seen cell order, so it is a pure function of the spec.
func Summarize(spec *Spec, records []RunRecord, backend string, repeats, warmup int) *Report {
	rep := &Report{
		Schema:  SchemaVersion,
		Name:    spec.Name,
		Backend: backend,
		Repeats: repeats,
		Warmup:  warmup,
		Spec:    spec,
		Build:   exp.Build(),
	}

	type acc struct {
		group   Group
		seeds   map[uint64]bool
		perSeed map[uint64]RunRecord // one representative per seed (model cost)
		wallNS  []float64
		rps     []float64
	}
	byKey := map[string]*acc{}
	var order []string
	var totalWall int64
	for _, r := range records {
		totalWall += r.WallNS
		key := r.Cell.GroupKey()
		a, ok := byKey[key]
		if !ok {
			a = &acc{
				group: Group{
					Key: key, Kind: r.Cell.Kind,
					Algorithm: r.Cell.Algorithm, Experiment: r.Cell.Experiment,
					N: r.Cell.N, WPP: r.Cell.WPP, Quick: r.Cell.Quick,
				},
				seeds:   map[uint64]bool{},
				perSeed: map[uint64]RunRecord{},
			}
			byKey[key] = a
			order = append(order, key)
		}
		a.group.Runs++
		a.seeds[r.Cell.Seed] = true
		if _, seen := a.perSeed[r.Cell.Seed]; !seen {
			a.perSeed[r.Cell.Seed] = r
		}
		a.wallNS = append(a.wallNS, float64(r.WallNS))
		a.rps = append(a.rps, r.RoundsPerSec)
	}

	for _, key := range order {
		a := byKey[key]
		g := a.group
		if g.Kind == CellAlgorithm {
			g.Seeds = len(a.seeds)
		}
		// Model-cost summaries over one representative record per seed,
		// in ascending seed order for determinism.
		seedList := make([]uint64, 0, len(a.perSeed))
		for s := range a.perSeed {
			seedList = append(seedList, s)
		}
		sort.Slice(seedList, func(i, j int) bool { return seedList[i] < seedList[j] })
		var rounds, words []float64
		for _, s := range seedList {
			rounds = append(rounds, float64(a.perSeed[s].Rounds))
			words = append(words, float64(a.perSeed[s].Words))
		}
		g.Rounds = stats.Summarize(rounds, 0)
		g.Words = stats.Summarize(words, 0)
		g.Timing = &GroupTiming{
			WallNS:       stats.Summarize(a.wallNS, 0),
			RoundsPerSec: stats.Summarize(a.rps, 0),
		}
		rep.Groups = append(rep.Groups, g)
	}
	rep.Timing = &RunTiming{WallNS: totalWall, Runs: len(records)}
	rep.Fits, rep.TimingFits = fitSweeps(rep.Groups)
	return rep
}

// fitSweeps fits rounds-vs-n (deterministic) and wall-vs-n (timing)
// power laws for every (algorithm, wpp) sweep with at least two
// distinct sizes, in first-seen group order.
func fitSweeps(groups []Group) (fits, timingFits []GroupFit) {
	type sweepKey struct {
		alg string
		wpp int
	}
	type sweep struct {
		ns, rounds, wall []float64
	}
	bySweep := map[sweepKey]*sweep{}
	var order []sweepKey
	for _, g := range groups {
		if g.Kind != CellAlgorithm {
			continue
		}
		k := sweepKey{g.Algorithm, g.WPP}
		s, ok := bySweep[k]
		if !ok {
			s = &sweep{}
			bySweep[k] = s
			order = append(order, k)
		}
		s.ns = append(s.ns, float64(g.N))
		s.rounds = append(s.rounds, g.Rounds.Mean)
		if g.Timing != nil {
			s.wall = append(s.wall, g.Timing.WallNS.Mean)
		}
	}
	for _, k := range order {
		s := bySweep[k]
		if distinct(s.ns) < 2 {
			continue
		}
		if f, err := stats.FitPower(s.ns, s.rounds, 0); err == nil {
			fits = append(fits, GroupFit{Algorithm: k.alg, WPP: k.wpp, Metric: "rounds", Fit: f})
		}
		if len(s.wall) == len(s.ns) {
			if f, err := stats.FitPower(s.ns, s.wall, 0); err == nil {
				timingFits = append(timingFits, GroupFit{Algorithm: k.alg, WPP: k.wpp, Metric: "wall_ns", Fit: f})
			}
		}
	}
	return fits, timingFits
}

func distinct(xs []float64) int {
	seen := map[float64]bool{}
	for _, x := range xs {
		seen[x] = true
	}
	return len(seen)
}

// StripTiming returns a deep copy of the report with every wall-clock
// field removed: the determinism artefact. Two grid executions of the
// same spec on the same binary produce byte-identical stripped
// summaries whatever the worker count.
func (r *Report) StripTiming() *Report {
	out := *r
	out.Timing = nil
	out.TimingFits = nil
	out.Groups = make([]Group, len(r.Groups))
	for i, g := range r.Groups {
		g.Timing = nil
		out.Groups[i] = g
	}
	return &out
}

// WriteJSON writes the envelope with stable indentation.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
