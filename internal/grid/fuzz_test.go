package grid_test

import (
	"testing"

	"repro/internal/grid"
)

// FuzzGridSpec drives ParseSpec with arbitrary bytes: it must reject or
// accept without panicking, and anything it accepts must expand within
// the package limits and survive the validate/expand pipeline.
func FuzzGridSpec(f *testing.F) {
	f.Add([]byte(validSpec))
	f.Add([]byte(`{"experiments":[{"algorithm":"exchange","ns":[8]}]}`))
	f.Add([]byte(`{"experiments":[{"experiment":"fig1","quick":true}]}`))
	f.Add([]byte(`{"backend":"goroutine","repeats":5,"warmup":2,"experiments":[{"algorithm":"mst","ns":[16,32],"wpp":[1,4],"seeds":[7,8,9]}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"experiments":[{"algorithm":"exchange","ns":[0]}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := grid.ParseSpec(data)
		if err != nil {
			return
		}
		cells := s.Expand()
		if len(cells) > grid.MaxCells {
			t.Fatalf("validated spec expanded to %d cells (> %d)", len(cells), grid.MaxCells)
		}
		for i, c := range cells {
			if c.Index != i {
				t.Fatalf("cell %d has index %d", i, c.Index)
			}
			if c.GroupKey() == "" {
				t.Fatalf("cell %d has empty group key", i)
			}
		}
	})
}
