package reduction

import (
	"sort"
	"sync"

	"repro/internal/clique"
	"repro/internal/domset"
	"repro/internal/graph"
	"repro/internal/virtual"
)

// ISDS is the Theorem 10 construction for an n-vertex input graph and
// parameter k. Vertex layout of G':
//
//	clique copies   K_1..K_k          indices i*n + v
//	gadgets         I_{i,j}, i<j      indices (k + pairIdx)*n + v
//	special nodes   x_i, y_i          indices (k + C(k,2))*n + 2i (+1)
//
// Total (k + k(k-1)/2)n + 2k vertices, the "at most (k^2+k+2)n" of the
// paper.
type ISDS struct {
	N int // vertices of the input graph
	K int
}

// pairIndex enumerates unordered pairs (i, j), i < j < k, in
// lexicographic order.
func (r ISDS) pairIndex(i, j int) int {
	// Number of pairs (a, b) with a < i is C(k,2) - C(k-i,2); then j.
	k := r.K
	return i*k - i*(i+1)/2 + (j - i - 1)
}

// numPairs returns C(k, 2).
func (r ISDS) numPairs() int { return r.K * (r.K - 1) / 2 }

// Total returns the number of vertices of G'.
func (r ISDS) Total() int { return (r.K+r.numPairs())*r.N + 2*r.K }

// CliqueNode returns the index of v's copy in clique K_i.
func (r ISDS) CliqueNode(i, v int) int { return i*r.N + v }

// GadgetNode returns the index of v's copy in the compatibility gadget
// I_{i,j} (requires i < j).
func (r ISDS) GadgetNode(i, j, v int) int {
	return (r.K+r.pairIndex(i, j))*r.N + v
}

// SpecialX returns the index of x_i.
func (r ISDS) SpecialX(i int) int { return (r.K+r.numPairs())*r.N + 2*i }

// SpecialY returns the index of y_i.
func (r ISDS) SpecialY(i int) int { return (r.K+r.numPairs())*r.N + 2*i + 1 }

// Kind identifies what a G' vertex is.
type Kind int

// G' vertex kinds.
const (
	KindClique Kind = iota
	KindGadget
	KindSpecial
)

// Decoded describes a G' vertex.
type Decoded struct {
	Kind Kind
	// I is the clique index for clique copies and specials; for gadget
	// vertices I < J are the gadget's pair.
	I, J int
	// V is the original vertex for clique and gadget copies. For
	// specials, V is 0 for x_i and 1 for y_i.
	V int
}

// Decode maps a G' index to its description.
func (r ISDS) Decode(a int) Decoded {
	if a < r.K*r.N {
		return Decoded{Kind: KindClique, I: a / r.N, V: a % r.N}
	}
	a -= r.K * r.N
	if a < r.numPairs()*r.N {
		p := a / r.N
		// Invert pairIndex by scanning; k is tiny.
		for i := 0; i < r.K; i++ {
			for j := i + 1; j < r.K; j++ {
				if r.pairIndex(i, j) == p {
					return Decoded{Kind: KindGadget, I: i, J: j, V: a % r.N}
				}
			}
		}
		panic("reduction: bad gadget index")
	}
	a -= r.numPairs() * r.N
	return Decoded{Kind: KindSpecial, I: a / 2, V: a % 2}
}

// Host maps a G' vertex to the real node that simulates it: copies of v
// are hosted by v; the specials x_i and y_i are hosted by nodes 0 and 1
// (the paper's "nodes 1 and 2"). Each real node hosts at most
// k + C(k,2) + 2k = O(k^2) virtual nodes.
func (r ISDS) Host(a int) int {
	d := r.Decode(a)
	if d.Kind == KindSpecial {
		return d.V // x_i -> node 0, y_i -> node 1
	}
	return d.V
}

// HasEdge is the edge predicate of G'. hasG must report adjacency in the
// input graph G; it is only ever queried on pairs involving the V fields
// of the two endpoints, which is what makes the predicate locally
// computable during simulation.
func (r ISDS) HasEdge(a, b int, hasG func(u, v int) bool) bool {
	if a == b {
		return false
	}
	da, db := r.Decode(a), r.Decode(b)
	// Normalise order: clique < gadget < special by Kind value.
	if da.Kind > db.Kind {
		da, db = db, da
	}
	switch {
	case da.Kind == KindClique && db.Kind == KindClique:
		// Same clique, different copies.
		return da.I == db.I && da.V != db.V
	case da.Kind == KindClique && db.Kind == KindGadget:
		// v in K_i vs u in I_{i,j}: connected iff u != v.
		// v in K_j vs u in I_{i,j}: connected iff u != v and u not
		// adjacent to v in G.
		if db.I == da.I {
			return da.V != db.V
		}
		if db.J == da.I {
			return da.V != db.V && !hasG(da.V, db.V)
		}
		return false
	case da.Kind == KindClique && db.Kind == KindSpecial:
		// x_i and y_i see all of K_i.
		return da.I == db.I
	default:
		// gadget-gadget, gadget-special, special-special: no edges.
		return false
	}
}

// BuildGraph materialises G' centrally (for tests and ground-truth
// comparisons).
func (r ISDS) BuildGraph(g *graph.Graph) *graph.Graph {
	if g.N != r.N {
		panic("reduction: graph order mismatch")
	}
	total := r.Total()
	out := graph.New(total)
	for a := 0; a < total; a++ {
		for b := a + 1; b < total; b++ {
			if r.HasEdge(a, b, g.HasEdge) {
				out.AddEdge(a, b)
			}
		}
	}
	return out
}

// VirtualRow computes the G' adjacency bitset of virtual node a using
// only the host's local view of G (hostRow is the adjacency row of the
// G-vertex hosting a; for specials it is ignored). This realises the
// paper's claim that "v can determine all edges incident to those nodes
// in G' from its local view of G".
func (r ISDS) VirtualRow(a int, hostRow graph.Bitset) graph.Bitset {
	d := r.Decode(a)
	hasG := func(u, v int) bool {
		// Only pairs involving d.V are ever needed.
		switch {
		case d.Kind == KindSpecial:
			panic("reduction: special nodes need no G edges")
		case u == d.V:
			return hostRow.Has(v)
		case v == d.V:
			return hostRow.Has(u)
		default:
			panic("reduction: non-local adjacency query")
		}
	}
	total := r.Total()
	row := graph.NewBitset(total)
	for b := 0; b < total; b++ {
		if b == a {
			continue
		}
		var ok bool
		if d.Kind == KindSpecial {
			ok = r.HasEdge(a, b, nil)
		} else {
			ok = r.HasEdge(a, b, hasG)
		}
		if ok {
			row.Set(b)
		}
	}
	return row
}

// ISResult is the outcome of the in-model reduction, identical at every
// node.
type ISResult struct {
	// Found reports whether the input graph has an independent set of
	// size k.
	Found bool
	// Witness is such an independent set if Found (decoded back from
	// the dominating set of G').
	Witness []int
}

// FindISViaDS decides k-independent set by running the Theorem 9
// dominating set algorithm on the Theorem 10 construction, simulated on
// a virtual clique over the real one. row is this node's adjacency
// bitset in G. The round overhead over the dominating set algorithm is
// the O(k^{2 delta + 4}) factor of Theorem 10: each real node hosts
// O(k^2) virtual nodes, so each virtual round squeezes O(k^4) virtual
// messages through a real link.
func FindISViaDS(nd clique.Endpoint, row graph.Bitset, k int) ISResult {
	n := nd.N()
	if n < 2 {
		nd.Fail("reduction: FindISViaDS needs n >= 2 to host the special nodes")
	}
	r := ISDS{N: n, K: k}
	var (
		mu sync.Mutex
		ds domset.Result
	)
	virtual.Run(nd, virtual.Config{M: r.Total(), Host: r.Host, WordsPerPair: 4}, func(vn *virtual.Node) {
		vrow := r.VirtualRow(vn.ID(), row)
		res := domset.Find(vn, vrow, k)
		// All virtual nodes agree on the result; hosted ones write it
		// under a lock only because they share this goroutine's memory.
		mu.Lock()
		ds = res
		mu.Unlock()
	})
	// Every hosted virtual node wrote the same ds (domset.Find agrees
	// globally); decode the witness.
	if !ds.Found {
		return ISResult{}
	}
	witness := make([]int, 0, k)
	seen := make(map[int]bool)
	for _, a := range ds.Witness {
		d := r.Decode(a)
		if d.Kind != KindClique {
			nd.Fail("reduction: dominating set contains non-clique vertex %d", a)
		}
		if !seen[d.V] {
			seen[d.V] = true
			witness = append(witness, d.V)
		}
	}
	sort.Ints(witness)
	return ISResult{Found: true, Witness: witness}
}
