// Package reduction implements the fine-grained reductions of Section 7
// of the paper: the Theorem 10 reduction from k-independent set to
// k-dominating set with its Figure 2 gadgets, the k-colouring to maximum
// independent set blow-up, and the Dor-Halperin-Zwick reduction from
// Boolean matrix multiplication to (2-eps)-approximate APSP. Each
// reduction comes in two forms: a centralized graph construction (used
// to validate the combinatorics against brute-force oracles) and an
// in-model simulation that runs the target algorithm on a virtual clique
// built over the real one, which is how the paper argues the round
// complexity transfers.
package reduction
