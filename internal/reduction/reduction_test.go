package reduction

import (
	"testing"

	"repro/internal/clique"
	"repro/internal/graph"
	"repro/internal/matmul"
)

func TestISDSIndexing(t *testing.T) {
	r := ISDS{N: 5, K: 3}
	if r.Total() != (3+3)*5+6 {
		t.Fatalf("Total = %d", r.Total())
	}
	seen := make(map[int]bool)
	check := func(a int, want Decoded) {
		t.Helper()
		if seen[a] {
			t.Fatalf("index %d reused", a)
		}
		seen[a] = true
		got := r.Decode(a)
		if got != want {
			t.Fatalf("Decode(%d) = %+v, want %+v", a, got, want)
		}
	}
	for i := 0; i < 3; i++ {
		for v := 0; v < 5; v++ {
			check(r.CliqueNode(i, v), Decoded{Kind: KindClique, I: i, V: v})
		}
	}
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			for v := 0; v < 5; v++ {
				check(r.GadgetNode(i, j, v), Decoded{Kind: KindGadget, I: i, J: j, V: v})
			}
		}
	}
	for i := 0; i < 3; i++ {
		check(r.SpecialX(i), Decoded{Kind: KindSpecial, I: i, V: 0})
		check(r.SpecialY(i), Decoded{Kind: KindSpecial, I: i, V: 1})
	}
	if len(seen) != r.Total() {
		t.Fatalf("indexed %d vertices, want %d", len(seen), r.Total())
	}
}

func TestISDSGadgetEdgesMatchFigure2(t *testing.T) {
	// Figure 2's compatibility gadget: v_i in K_i is adjacent to every
	// u_{i,j} except v_{i,j}; v_j in K_j is adjacent to u_{i,j} iff u is
	// neither v nor a G-neighbour of v.
	g := graph.New(4)
	g.AddEdge(0, 1)
	r := ISDS{N: 4, K: 2}
	gp := r.BuildGraph(g)
	for v := 0; v < 4; v++ {
		for u := 0; u < 4; u++ {
			gi := r.GadgetNode(0, 1, u)
			wantI := u != v
			if gp.HasEdge(r.CliqueNode(0, v), gi) != wantI {
				t.Errorf("K_0 copy %d vs gadget %d: edge = %v, want %v", v, u,
					!wantI, wantI)
			}
			wantJ := u != v && !g.HasEdge(u, v)
			if gp.HasEdge(r.CliqueNode(1, v), gi) != wantJ {
				t.Errorf("K_1 copy %d vs gadget %d: edge = %v, want %v", v, u,
					!wantJ, wantJ)
			}
		}
	}
	// Cliques are cliques; gadgets are independent; specials attach to
	// exactly their clique.
	for i := 0; i < 2; i++ {
		for a := 0; a < 4; a++ {
			for b := a + 1; b < 4; b++ {
				if !gp.HasEdge(r.CliqueNode(i, a), r.CliqueNode(i, b)) {
					t.Errorf("K_%d not a clique", i)
				}
				if gp.HasEdge(r.GadgetNode(0, 1, a), r.GadgetNode(0, 1, b)) {
					t.Error("gadget has internal edge")
				}
			}
			if !gp.HasEdge(r.SpecialX(i), r.CliqueNode(i, a)) ||
				!gp.HasEdge(r.SpecialY(i), r.CliqueNode(i, a)) {
				t.Errorf("special of clique %d misses copy %d", i, a)
			}
			if gp.HasEdge(r.SpecialX(i), r.CliqueNode(1-i, a)) {
				t.Error("special attached to wrong clique")
			}
		}
	}
}

func TestISDSEquivalenceExhaustive(t *testing.T) {
	// Theorem 10's iff, validated against brute force on all 2^6 graphs
	// on 4 vertices and k=2, plus random instances with k=3.
	for mask := 0; mask < 64; mask++ {
		g := graph.New(4)
		e := 0
		for u := 0; u < 4; u++ {
			for v := u + 1; v < 4; v++ {
				if mask&(1<<e) != 0 {
					g.AddEdge(u, v)
				}
				e++
			}
		}
		r := ISDS{N: 4, K: 2}
		gp := r.BuildGraph(g)
		wantIS := graph.HasIndependentSetOfSize(g, 2)
		gotDS := graph.HasDominatingSetOfSize(gp, 2)
		if wantIS != gotDS {
			t.Fatalf("mask %d: G has 2-IS = %v but G' has 2-DS = %v", mask, wantIS, gotDS)
		}
	}
	for seed := uint64(0); seed < 3; seed++ {
		g := graph.Gnp(4, 0.5, seed+100)
		r := ISDS{N: 4, K: 3}
		gp := r.BuildGraph(g)
		wantIS := graph.HasIndependentSetOfSize(g, 3)
		gotDS := graph.HasDominatingSetOfSize(gp, 3)
		if wantIS != gotDS {
			t.Fatalf("seed %d k=3: G has 3-IS = %v but G' has 3-DS = %v", seed, wantIS, gotDS)
		}
	}
}

func TestISDSVirtualRowMatchesCentral(t *testing.T) {
	g := graph.Gnp(5, 0.4, 11)
	r := ISDS{N: 5, K: 2}
	gp := r.BuildGraph(g)
	for a := 0; a < r.Total(); a++ {
		d := r.Decode(a)
		var hostRow graph.Bitset
		if d.Kind != KindSpecial {
			hostRow = g.Row(d.V)
		}
		row := r.VirtualRow(a, hostRow)
		for b := 0; b < r.Total(); b++ {
			if row.Has(b) != gp.HasEdge(a, b) {
				t.Fatalf("VirtualRow(%d) disagrees with central graph at %d", a, b)
			}
		}
	}
}

func TestFindISViaDSInModel(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		g := graph.Gnp(6, 0.55, seed+7)
		want := graph.HasIndependentSetOfSize(g, 2)
		outs := make([]ISResult, g.N)
		_, err := clique.Run(clique.Config{N: g.N, WordsPerPair: 16}, func(nd *clique.Node) {
			outs[nd.ID()] = FindISViaDS(nd, g.Row(nd.ID()), 2)
		})
		if err != nil {
			t.Fatal(err)
		}
		for v := range outs {
			if outs[v].Found != want {
				t.Fatalf("seed %d node %d: Found = %v, oracle = %v", seed, v, outs[v].Found, want)
			}
		}
		if want {
			if !graph.IsIndependentSet(g, outs[0].Witness) || len(outs[0].Witness) != 2 {
				t.Fatalf("seed %d: bad witness %v", seed, outs[0].Witness)
			}
		}
	}
}

func TestColoringGraphEquivalence(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		g := graph.Gnp(5, 0.6, seed+50)
		for _, k := range []int{2, 3} {
			gp := ColoringGraph(g, k)
			want := graph.IsKColorable(g, k)
			got := graph.HasIndependentSetOfSize(gp, g.N)
			if want != got {
				t.Fatalf("seed %d k=%d: colourable = %v but blow-up IS(n) = %v", seed, k, want, got)
			}
			if got {
				set := graph.FindIndependentSet(gp, g.N)
				colors := ColoringFromIS(g.N, k, set)
				if colors == nil || !graph.IsProperColoring(g, colors, k) {
					t.Fatalf("seed %d k=%d: decoded colouring invalid", seed, k)
				}
			}
		}
	}
}

func TestColoringFromISRejectsBadSets(t *testing.T) {
	if ColoringFromIS(3, 2, []int{0, 1, 4}) != nil {
		t.Error("two copies of vertex 0 accepted")
	}
	if ColoringFromIS(3, 2, []int{0, 2}) != nil {
		t.Error("short set accepted")
	}
}

func TestKColorableViaMaxISInModel(t *testing.T) {
	// C5 is 3-colourable but not 2-colourable.
	g := graph.Cycle(5)
	for _, k := range []int{2, 3} {
		want := graph.IsKColorable(g, k)
		outs := make([]bool, g.N)
		_, err := clique.Run(clique.Config{N: g.N, WordsPerPair: 16}, func(nd *clique.Node) {
			outs[nd.ID()] = KColorableViaMaxIS(nd, g.Row(nd.ID()), k)
		})
		if err != nil {
			t.Fatal(err)
		}
		for v := range outs {
			if outs[v] != want {
				t.Fatalf("k=%d node %d: got %v, want %v", k, v, outs[v], want)
			}
		}
	}
}

func TestDHZGraphDistances(t *testing.T) {
	n := 5
	a := randomBool(n, 0.4, 1)
	b := randomBool(n, 0.4, 2)
	want := matmul.MulLocal(matmul.Boolean{}, a, b)
	h := DHZGraph(a, b)
	d := graph.FloydWarshall(h)
	l := DHZLayout{N: n}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			dist := d[l.X(i)][l.Z(j)]
			if want[i][j] == 1 && dist != 2 {
				t.Fatalf("product pair (%d,%d) at distance %d, want 2", i, j, dist)
			}
			if want[i][j] == 0 && dist != 4 {
				t.Fatalf("non-product pair (%d,%d) at distance %d, want 4", i, j, dist)
			}
		}
	}
	// Recovery from exact distances.
	for i := 0; i < n; i++ {
		row := ProductFromDistances(l, d[l.X(i)])
		for j := 0; j < n; j++ {
			if row[j] != want[i][j] {
				t.Fatalf("recovered product (%d,%d) = %d, want %d", i, j, row[j], want[i][j])
			}
		}
	}
}

func TestBMMViaApproxAPSPInModel(t *testing.T) {
	n := 5
	a := randomBool(n, 0.45, 3)
	b := randomBool(n, 0.45, 4)
	want := matmul.MulLocal(matmul.Boolean{}, a, b)
	got := make([][]int64, n)
	_, err := clique.Run(clique.Config{N: n, WordsPerPair: 16}, func(nd *clique.Node) {
		got[nd.ID()] = BMMViaApproxAPSP(nd, a[nd.ID()], b[nd.ID()])
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("product (%d,%d) = %d, want %d", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func randomBool(n int, p float64, seed uint64) [][]int64 {
	g := graph.Gnp(n, p, seed+900) // reuse the graph generator's rng
	m := make([][]int64, n)
	for i := range m {
		m[i] = make([]int64, n)
		for j := range m[i] {
			if g.HasEdge(i, j) {
				m[i][j] = 1
			}
		}
	}
	return m
}
