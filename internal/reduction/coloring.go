package reduction

import (
	"sync"

	"repro/internal/clique"
	"repro/internal/gather"
	"repro/internal/graph"
	"repro/internal/virtual"
)

// ColoringGraph builds the blow-up graph of the k-colouring to maximum
// independent set reduction cited in Section 7 of the paper (after
// Luby [46]): replace each vertex v by a k-clique of copies
// v_0, ..., v_{k-1}, and connect v_i to u_i whenever {v, u} is an edge
// of G. Then G is k-colourable iff the blow-up has an independent set of
// size n: picking copy v_{c(v)} for a proper colouring c yields an
// independent set, and conversely an independent set of size n must pick
// exactly one copy per vertex, whose indices form a proper colouring.
//
// Vertex layout: copy i of vertex v is v*k + i.
func ColoringGraph(g *graph.Graph, k int) *graph.Graph {
	out := graph.New(g.N * k)
	for v := 0; v < g.N; v++ {
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				out.AddEdge(v*k+i, v*k+j)
			}
		}
	}
	g.Edges(func(u, v int) {
		for i := 0; i < k; i++ {
			out.AddEdge(u*k+i, v*k+i)
		}
	})
	return out
}

// ColoringFromIS decodes a size-n independent set of the blow-up into a
// proper k-colouring of the original graph, or nil if the set is not of
// the required one-copy-per-vertex form.
func ColoringFromIS(n, k int, set []int) []int {
	if len(set) != n {
		return nil
	}
	colors := make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	for _, a := range set {
		v, c := a/k, a%k
		if v < 0 || v >= n || colors[v] != -1 {
			return nil
		}
		colors[v] = c
	}
	return colors
}

// KColorableViaMaxIS decides k-colourability in-model by simulating the
// blow-up graph on a virtual clique and deciding whether its
// independence number reaches n (via the full-gather MaxIS baseline).
// row is this node's adjacency bitset in G. Copy v_i is hosted by real
// node v, so each virtual row is locally computable: v_i's neighbours
// are v's other copies and the i-th copies of v's G-neighbours.
func KColorableViaMaxIS(nd clique.Endpoint, row graph.Bitset, k int) bool {
	n := nd.N()
	m := n * k
	var (
		mu  sync.Mutex
		got bool
	)
	virtual.Run(nd, virtual.Config{M: m, Host: func(a int) int { return a / k }, WordsPerPair: 4}, func(vn *virtual.Node) {
		v, i := vn.ID()/k, vn.ID()%k
		vrow := graph.NewBitset(m)
		for j := 0; j < k; j++ {
			if j != i {
				vrow.Set(v*k + j)
			}
		}
		row.Each(func(u int) { vrow.Set(u*k + i) })
		full := gather.Full(vn, vrow)
		res := graph.HasIndependentSetOfSize(full, n)
		mu.Lock()
		got = res
		mu.Unlock()
	})
	return got
}
