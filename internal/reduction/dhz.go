package reduction

import (
	"sync"

	"repro/internal/clique"
	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/matmul"
	"repro/internal/paths"
	"repro/internal/virtual"
)

// The Dor-Halperin-Zwick reduction ([17] in the paper) shows that a
// (2-eps)-approximation of weighted undirected APSP computes Boolean
// matrix products, which is why Figure 1 places "(2-eps)-approximate
// APSP w/ud" above Boolean MM. Given Boolean matrices A and B, build a
// weighted graph H on 3n+1 vertices:
//
//	x_i -- y_k  weight 1  iff A[i][k] = 1
//	y_k -- z_j  weight 1  iff B[k][j] = 1
//	x_i -- hub, z_j -- hub  weight 2 (always)
//
// Every x-z distance is exactly 2 (iff (AB)_ij = 1) or exactly 4 (via
// the hub). A (2-eps)-approximation d' satisfies d' <= (2-eps)*2 < 4 on
// product pairs and d' >= 4 elsewhere, so thresholding d' at 4 recovers
// the product exactly.

// DHZLayout fixes the vertex numbering of H: x_i = i, y_k = n + k,
// z_j = 2n + j, hub = 3n.
type DHZLayout struct{ N int }

// Total returns the order of H.
func (l DHZLayout) Total() int { return 3*l.N + 1 }

// X returns the index of x_i.
func (l DHZLayout) X(i int) int { return i }

// Y returns the index of y_k.
func (l DHZLayout) Y(k int) int { return l.N + k }

// Z returns the index of z_j.
func (l DHZLayout) Z(j int) int { return 2*l.N + j }

// Hub returns the index of the hub vertex.
func (l DHZLayout) Hub() int { return 3 * l.N }

// DHZGraph materialises H centrally from 0/1 matrices a and b.
func DHZGraph(a, b [][]int64) *graph.Weighted {
	n := len(a)
	l := DHZLayout{N: n}
	h := graph.NewWeighted(l.Total(), false)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			if a[i][k] != 0 {
				h.SetEdge(l.X(i), l.Y(k), 1)
			}
			if b[i][k] != 0 {
				h.SetEdge(l.Y(i), l.Z(k), 1)
			}
		}
	}
	for i := 0; i < n; i++ {
		h.SetEdge(l.X(i), l.Hub(), 2)
		h.SetEdge(l.Z(i), l.Hub(), 2)
	}
	return h
}

// ProductFromDistances recovers row i of AB from the distance (or
// (2-eps)-approximate distance) row of x_i in H.
func ProductFromDistances(l DHZLayout, distRow []int64) []int64 {
	out := make([]int64, l.N)
	for j := 0; j < l.N; j++ {
		if distRow[l.Z(j)] < 4 {
			out[j] = 1
		}
	}
	return out
}

// BMMViaApproxAPSP computes this node's row of the Boolean product AB by
// the DHZ reduction run in-model: two preprocessing rounds transpose A
// and B (node k must know column k of A and column k of B to build the
// rows of y_k and z_k), then a virtual clique simulates H and runs
// (1+eps)-approximate APSP with eps = 0.5 < 1, which is in particular a
// (2-eps')-approximation, and the x_i rows are thresholded.
func BMMViaApproxAPSP(nd clique.Endpoint, aRow, bRow []int64) []int64 {
	n := nd.N()
	l := DHZLayout{N: n}

	// Preprocessing: send A[me][k] and B[me][k] to node k; node k
	// assembles columns k of A and B. One round each (one word per
	// ordered pair), exactly the kind of constant overhead Theorem 10's
	// "extremely fine-grained reductions" discussion allows.
	aCol := make([]int64, n)
	bCol := make([]int64, n)
	words := make([]uint64, n)
	for pass, rowData := range [][]int64{aRow, bRow} {
		col := aCol
		if pass == 1 {
			col = bCol
		}
		for k := 0; k < n; k++ {
			words[k] = uint64(rowData[k])
		}
		in, delivered := comm.AllToAllWord(nd, words)
		for i := 0; i < n; i++ {
			if !delivered[i] {
				nd.Fail("reduction: DHZ transpose expected 1 word from %d", i)
			}
			col[i] = int64(in[i])
		}
	}

	// Virtual rows of H. x_i, y_i, z_i are hosted by node i; the hub by
	// node 0.
	host := func(a int) int {
		if a == l.Hub() {
			return 0
		}
		return a % n
	}
	vrow := func(a int) []int64 {
		row := make([]int64, l.Total())
		for j := range row {
			if j != a {
				row[j] = graph.Inf
			}
		}
		switch {
		case a == l.Hub():
			for i := 0; i < n; i++ {
				row[l.X(i)] = 2
				row[l.Z(i)] = 2
			}
		case a < n: // x_i
			for k := 0; k < n; k++ {
				if aRow[k] != 0 {
					row[l.Y(k)] = 1
				}
			}
			row[l.Hub()] = 2
		case a < 2*n: // y_k, k = me
			for i := 0; i < n; i++ {
				if aCol[i] != 0 {
					row[l.X(i)] = 1
				}
				if bRow[i] != 0 {
					row[l.Z(i)] = 1
				}
			}
		default: // z_j, j = me
			for k := 0; k < n; k++ {
				if bCol[k] != 0 {
					row[l.Y(k)] = 1
				}
			}
			row[l.Hub()] = 2
		}
		return row
	}

	var (
		mu  sync.Mutex
		out []int64
	)
	virtual.Run(nd, virtual.Config{M: l.Total(), Host: host, WordsPerPair: 4}, func(vn *virtual.Node) {
		dist := paths.ApproxAPSP(vn, vrow(vn.ID()), 0.5, matmul.MulNaive)
		if vn.ID() < n { // x_i rows carry the product
			res := ProductFromDistances(l, dist)
			mu.Lock()
			out = res
			mu.Unlock()
		}
	})
	return out
}
