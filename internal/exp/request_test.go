package exp

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/clique"
)

func TestRequestCanonicalDefaults(t *testing.T) {
	r, err := Request{Kind: KindExperiment, Experiment: "fig1"}.Canonical()
	if err != nil {
		t.Fatalf("canonical: %v", err)
	}
	if r.Backend != clique.DefaultBackend {
		t.Fatalf("backend %q, want default %q", r.Backend, clique.DefaultBackend)
	}

	// The empty spelling and the explicit default must hash identically
	// — otherwise the serve cache splits on spelling.
	explicit, err := Request{Kind: KindExperiment, Experiment: "fig1", Backend: clique.DefaultBackend}.Canonical()
	if err != nil {
		t.Fatalf("canonical explicit: %v", err)
	}
	if r.Hash() != explicit.Hash() {
		t.Fatal("default-backend spellings hash differently")
	}
}

func TestRequestCanonicalRejects(t *testing.T) {
	cases := []struct {
		name string
		req  Request
		want string
	}{
		{"unknown kind", Request{Kind: "party"}, "unknown request kind"},
		{"unknown experiment", Request{Kind: KindExperiment, Experiment: "nope"}, "unknown experiment"},
		{"experiment with adhoc fields", Request{Kind: KindExperiment, Experiment: "fig1", N: 8}, "ad-hoc fields"},
		{"adhoc missing algorithm", Request{Kind: KindAdhoc, N: 8}, "missing algorithm"},
		{"adhoc zero n", Request{Kind: KindAdhoc, Algorithm: "triangle"}, "need n >= 1"},
		{"adhoc negative wpp", Request{Kind: KindAdhoc, Algorithm: "triangle", N: 8, WordsPerPair: -1}, "words_per_pair"},
		{"adhoc oversized wpp", Request{Kind: KindAdhoc, Algorithm: "triangle", N: 8, WordsPerPair: clique.MaxWordsPerPair + 1}, "exceeds the maximum"},
		{"adhoc oversized n", Request{Kind: KindAdhoc, Algorithm: "triangle", N: clique.MaxN + 1}, "exceeds the maximum"},
		{"adhoc with experiment id", Request{Kind: KindAdhoc, Algorithm: "triangle", N: 8, Experiment: "fig1"}, "carries experiment id"},
		{"unknown backend", Request{Kind: KindExperiment, Experiment: "fig1", Backend: "warp"}, "unknown backend"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.req.Canonical()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestRequestHashSensitivity(t *testing.T) {
	base := Request{Kind: KindAdhoc, Algorithm: "triangle", N: 32, Seed: 1, Backend: "lockstep"}
	mutants := []Request{
		{Kind: KindAdhoc, Algorithm: "triangle", N: 32, Seed: 2, Backend: "lockstep"},
		{Kind: KindAdhoc, Algorithm: "triangle", N: 33, Seed: 1, Backend: "lockstep"},
		{Kind: KindAdhoc, Algorithm: "mst", N: 32, Seed: 1, Backend: "lockstep"},
		{Kind: KindAdhoc, Algorithm: "triangle", N: 32, Seed: 1, Backend: "goroutine"},
		{Kind: KindAdhoc, Algorithm: "triangle", N: 32, Seed: 1, Backend: "lockstep", Quick: true},
		{Kind: KindAdhoc, Algorithm: "triangle", N: 32, Seed: 1, Backend: "lockstep", WordsPerPair: 4},
	}
	seen := map[string]bool{base.Hash(): true}
	for i, m := range mutants {
		h := m.Hash()
		if seen[h] {
			t.Fatalf("mutant %d collides with an earlier request hash", i)
		}
		seen[h] = true
	}
	if base.Hash() != base.Hash() {
		t.Fatal("hash is not stable")
	}
}

// TestRunOneContextCancellation pins that a cancelled context aborts an
// experiment and surfaces context.Canceled.
func TestRunOneContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := RunOneContext(ctx, "fig1", Options{Quick: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestProgressCallback pins that Options.Progress observes every
// simulated run with monotonic cumulative cost and non-decreasing
// wall-clock.
func TestProgressCallback(t *testing.T) {
	var calls []Progress
	opts := Options{Quick: true, Progress: func(p Progress) { calls = append(calls, p) }}
	res, _, err := RunOneContext(context.Background(), "mst", opts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(calls) != res.Sim.Runs {
		t.Fatalf("progress called %d times, want one per simulated run (%d)", len(calls), res.Sim.Runs)
	}
	for i := 1; i < len(calls); i++ {
		if calls[i].Rounds < calls[i-1].Rounds || calls[i].Runs != calls[i-1].Runs+1 {
			t.Fatalf("progress not monotonic at %d: %+v -> %+v", i, calls[i-1], calls[i])
		}
		if calls[i].WallNS < calls[i-1].WallNS {
			t.Fatalf("progress wall clock went backwards at %d: %d -> %d", i, calls[i-1].WallNS, calls[i].WallNS)
		}
	}
	last := calls[len(calls)-1]
	if last.SimCost != res.Sim {
		t.Fatalf("final progress %+v != result sim cost %+v", last.SimCost, res.Sim)
	}
}
