package exp_test

import (
	"testing"

	"repro/internal/clique"
	"repro/internal/exp"
	"repro/internal/trace"
)

// TestTracedRunsCoverEveryRound is the trace plane's accounting
// invariant, on both backends: every simulated run of a traced
// experiment yields a summary whose phase timeline — named phases plus
// "(untraced)" gap fillers — sums exactly to the run's round count,
// the raw trace records one Round per simulated round, and the summed
// trace rounds equal the experiment's SimCost.Rounds. A trace that
// dropped or double-counted rounds would be worse than none.
func TestTracedRunsCoverEveryRound(t *testing.T) {
	type runShape struct {
		rounds int
		phases []trace.PhaseSummary
	}
	var ref []runShape
	for i, backend := range clique.Backends() {
		t.Run(backend, func(t *testing.T) {
			var raw []*trace.RunTrace
			opts := exp.Options{Backend: backend, Quick: true, Trace: true,
				TraceSink: func(id string, traces []*trace.RunTrace) { raw = traces }}
			res, _, err := exp.RunOne("fig1", opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.Trace == nil || res.Trace.Schema != trace.SchemaVersion {
				t.Fatalf("traced run missing the %s block: %+v", trace.SchemaVersion, res.Trace)
			}
			if res.Sim.Runs == 0 {
				t.Fatal("fig1 made no simulated runs; the test needs a simulating experiment")
			}
			if len(res.Trace.Runs) != res.Sim.Runs || len(raw) != res.Sim.Runs {
				t.Fatalf("trace has %d summaries / %d raw traces for %d simulated runs",
					len(res.Trace.Runs), len(raw), res.Sim.Runs)
			}
			var total int64
			var shapes []runShape
			for i, run := range res.Trace.Runs {
				phaseRounds := 0
				for _, p := range run.Phases {
					phaseRounds += p.Rounds
				}
				if phaseRounds != run.Rounds {
					t.Fatalf("run %d (%s): phase rounds sum to %d, run has %d rounds (phases: %+v)",
						i, run.Label, phaseRounds, run.Rounds, run.Phases)
				}
				if len(raw[i].Rounds) != run.Rounds {
					t.Fatalf("run %d: raw trace has %d rounds, summary says %d", i, len(raw[i].Rounds), run.Rounds)
				}
				total += int64(run.Rounds)
				// Wall-clock fields differ run to run; the model-level
				// shape must not.
				phases := make([]trace.PhaseSummary, len(run.Phases))
				copy(phases, run.Phases)
				for j := range phases {
					phases[j].WallNS = 0
				}
				shapes = append(shapes, runShape{rounds: run.Rounds, phases: phases})
			}
			if total != res.Sim.Rounds {
				t.Fatalf("trace accounts for %d rounds, experiment simulated %d", total, res.Sim.Rounds)
			}
			if i == 0 {
				ref = shapes
				return
			}
			// Both backends execute the same model: identical round
			// counts and phase timelines, whatever the scheduling.
			if len(shapes) != len(ref) {
				t.Fatalf("backend traces differ in run count: %d vs %d", len(shapes), len(ref))
			}
			for r := range shapes {
				if shapes[r].rounds != ref[r].rounds {
					t.Fatalf("run %d: %d rounds on %s, %d on %s",
						r, shapes[r].rounds, backend, ref[r].rounds, clique.Backends()[0])
				}
				if len(shapes[r].phases) != len(ref[r].phases) {
					t.Fatalf("run %d: phase timelines differ across backends:\n%+v\n%+v",
						r, shapes[r].phases, ref[r].phases)
				}
				for p := range shapes[r].phases {
					if shapes[r].phases[p] != ref[r].phases[p] {
						t.Fatalf("run %d phase %d differs across backends: %+v vs %+v",
							r, p, shapes[r].phases[p], ref[r].phases[p])
					}
				}
			}
		})
	}
}

// TestUntracedResultCarriesNoTraceBlock pins the zero-cost-off
// serialisation half: without Options.Trace the Result has no Trace
// field at all — a TraceSink alone collects traces but leaves the
// envelope untouched, so sink users (cliquebench -trace with text
// output) do not perturb byte-level determinism.
func TestUntracedResultCarriesNoTraceBlock(t *testing.T) {
	res, _, err := exp.RunOne("fig1", exp.Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatalf("untraced run carries a trace block: %+v", res.Trace)
	}
	sunk := false
	res, _, err = exp.RunOne("fig1", exp.Options{Quick: true,
		TraceSink: func(id string, traces []*trace.RunTrace) { sunk = len(traces) > 0 }})
	if err != nil {
		t.Fatal(err)
	}
	if !sunk {
		t.Fatal("TraceSink alone did not collect traces")
	}
	if res.Trace != nil {
		t.Fatalf("TraceSink-only run attached a trace block to the result: %+v", res.Trace)
	}
}

// TestMeasureTraceOffProbe sanity-checks the zero-cost-when-off gate's
// instrument: the probe must report a positive best-of-runs throughput
// with the canonical shape the baseline comparison matches on.
func TestMeasureTraceOffProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("timing probe")
	}
	probe, err := exp.MeasureTraceOffProbe("lockstep")
	if err != nil {
		t.Fatal(err)
	}
	if probe.Name != "trace-off" || probe.Backend != "lockstep" {
		t.Fatalf("probe identity %s/%s, want trace-off/lockstep", probe.Name, probe.Backend)
	}
	if probe.RoundsPerSec <= 0 {
		t.Fatalf("probe rounds/sec = %v, want > 0", probe.RoundsPerSec)
	}
	if probe.AllocsPerOp != 0 {
		t.Fatalf("trace-off probe set AllocsPerOp = %v; it must leave the alloc gate alone", probe.AllocsPerOp)
	}
}

// TestCompareTraceOffProbe pins the 1% gate: a 2% throughput drop on
// the trace-off probe is a RegressTraceOff finding, surfaced by both
// Compare and the fatal TraceOffRegressions filter.
func TestCompareTraceOffProbe(t *testing.T) {
	probe := func(rps float64) *exp.BenchProbe {
		return &exp.BenchProbe{Name: "trace-off", Backend: "lockstep",
			N: 64, WordsPerPair: 1, Rounds: 256, Runs: 5, RoundsPerSec: rps}
	}
	report := func(rps float64) *exp.Report {
		return &exp.Report{Schema: exp.SchemaVersion, Backend: "lockstep", BenchTraceOff: probe(rps)}
	}
	base := report(100000)

	if warns := exp.Compare(base, report(99500), exp.Gate{Frac: 0.25}); len(warns) != 0 {
		t.Fatalf("0.5%% drop warned: %+v", warns)
	}
	warns := exp.Compare(base, report(98000), exp.Gate{Frac: 0.25})
	found := false
	for _, w := range warns {
		if w.Kind == exp.RegressTraceOff {
			found = true
		}
	}
	if !found {
		t.Fatalf("2%% trace-off drop not flagged: %+v", warns)
	}
	if fatal := exp.TraceOffRegressions(base, report(98000), exp.Gate{Frac: 0.01}); len(fatal) != 1 {
		t.Fatalf("fatal gate found %d regressions, want 1", len(fatal))
	}
	if fatal := exp.TraceOffRegressions(base, report(99500), exp.Gate{Frac: 0.01}); len(fatal) != 0 {
		t.Fatalf("fatal gate fired inside the 1%% margin: %+v", fatal)
	}
	// A shape mismatch must not silently pass the fatal gate as "fine" —
	// it is a mismatch warning, not a throughput regression.
	mismatched := report(100000)
	mismatched.BenchTraceOff.N = 32
	warns = exp.Compare(base, mismatched, exp.Gate{Frac: 0.25})
	found = false
	for _, w := range warns {
		if w.Kind == exp.RegressMismatch {
			found = true
		}
	}
	if !found {
		t.Fatalf("probe shape mismatch not reported: %+v", warns)
	}
}
