package exp

import (
	"fmt"
	"runtime"

	"repro/internal/clique"
	"repro/internal/comm"
)

// BenchProbe is the allocation probe of the canonical exchange
// benchmark: the per-round gossip pattern the serving hot path runs
// continuously (every node broadcasts one word, everyone reads the
// table), executed through the collective layer. AllocsPerOp is the
// measured heap-allocation count per simulated run; like Throughput it
// is attached to a report only when timing was requested, so the
// deterministic envelope is unaffected. The committed baseline's value
// is the regression reference for CI's warn-only gate.
type BenchProbe struct {
	Name         string  `json:"name"`
	Backend      string  `json:"backend"`
	N            int     `json:"n"`
	WordsPerPair int     `json:"words_per_pair"`
	Rounds       int     `json:"rounds"`
	Runs         int     `json:"runs"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
}

// Canonical exchange shape: dense one-word gossip at the engine
// microbenchmark's size, long enough that steady-state rounds dominate
// setup.
const (
	benchProbeN      = 64
	benchProbeWPP    = 1
	benchProbeRounds = 256
	benchProbeRuns   = 5
)

// benchProbeProgram is the canonical exchange node program: one
// broadcast word per node per round, read back through the reused
// collective table.
func benchProbeProgram(nd *clique.Node) {
	var table []uint64
	for r := 0; r < benchProbeRounds; r++ {
		table = comm.BroadcastWordInto(nd, uint64(nd.ID()+r), table)
	}
}

// MeasureBenchProbe runs the canonical exchange workload on the given
// backend and measures allocations per run (one warm-up run excluded,
// so pooled mailboxes and lazily grown buffers do not bill the steady
// state). It must run while no other simulations execute concurrently;
// cliquebench measures after its worker pool has drained.
func MeasureBenchProbe(backend string) (*BenchProbe, error) {
	cfg := clique.Config{N: benchProbeN, WordsPerPair: benchProbeWPP, Backend: backend}
	run := func() error {
		res, err := clique.Run(cfg, benchProbeProgram)
		if err != nil {
			return err
		}
		if res.Stats.Rounds != benchProbeRounds {
			return fmt.Errorf("exp: bench probe ran %d rounds, want %d", res.Stats.Rounds, benchProbeRounds)
		}
		return nil
	}
	if err := run(); err != nil { // warm-up
		return nil, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < benchProbeRuns; i++ {
		if err := run(); err != nil {
			return nil, err
		}
	}
	runtime.ReadMemStats(&after)
	return &BenchProbe{
		Name:         "exchange",
		Backend:      backend,
		N:            benchProbeN,
		WordsPerPair: benchProbeWPP,
		Rounds:       benchProbeRounds,
		Runs:         benchProbeRuns,
		AllocsPerOp:  float64(after.Mallocs-before.Mallocs) / benchProbeRuns,
	}, nil
}
