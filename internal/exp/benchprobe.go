package exp

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/bitvec"
	"repro/internal/clique"
	"repro/internal/comm"
	"repro/internal/matmul"
	"repro/internal/stats"
)

// BenchProbe is an allocation probe: a canonical hot-path workload
// executed repeatedly while heap allocations are counted. Two probes
// ship in every timed report: the canonical exchange (the per-round
// gossip pattern the serving hot path runs continuously, through the
// collective layer) and the packed boolean matrix product (the
// bit-packed data plane's hot loop, exercising the pooled bitvec
// scratch). AllocsPerOp is the measured heap-allocation count per
// simulated run; like Throughput the probes are attached to a report
// only when timing was requested, so the deterministic envelope is
// unaffected. The committed baseline's values are the regression
// references for CI's gate: allocation regressions beyond
// cliquebench's -alloc-regress-fail fraction fail the bench job.
type BenchProbe struct {
	Name         string  `json:"name"`
	Backend      string  `json:"backend"`
	N            int     `json:"n"`
	WordsPerPair int     `json:"words_per_pair"`
	Rounds       int     `json:"rounds"`
	Runs         int     `json:"runs"`
	AllocsPerOp  float64 `json:"allocs_per_op,omitempty"`
	// RoundsPerSec is the probe's best-of-runs throughput, set only by
	// the trace-off probe (the allocation probes leave it 0: allocation
	// counts are near-deterministic, wall time is not, and mixing the
	// two would subject the alloc gate to timing noise).
	RoundsPerSec float64 `json:"rounds_per_sec,omitempty"`
	// AllocsDist is the per-run allocation-count distribution behind
	// AllocsPerOp; the variance-aware Compare gate widens its tolerance
	// by the baseline's recorded spread.
	AllocsDist *stats.Summary `json:"allocs_dist,omitempty"`
	// RPSDist is the per-run rounds/sec distribution behind the
	// trace-off probe's best-of-runs RoundsPerSec.
	RPSDist *stats.Summary `json:"rounds_per_sec_dist,omitempty"`
	// Batch is the number of independent runs per batched engine
	// execution; set only by the batched throughput probe.
	Batch int `json:"batch,omitempty"`
	// SerialRoundsPerSec is the batched probe's reference measurement:
	// the same runs executed back-to-back through the serial engine
	// path, best-of-runs aggregate sim-rounds/sec.
	SerialRoundsPerSec float64 `json:"serial_rounds_per_sec,omitempty"`
	// Speedup is RoundsPerSec over SerialRoundsPerSec — the committed
	// evidence for the batched execution plane's throughput claim.
	Speedup float64 `json:"speedup,omitempty"`
}

// Canonical exchange shape: dense one-word gossip at the engine
// microbenchmark's size, long enough that steady-state rounds dominate
// setup.
const (
	benchProbeN      = 64
	benchProbeWPP    = 1
	benchProbeRounds = 256
	benchProbeRuns   = 5
)

// benchProbeProgram is the canonical exchange node program: one
// broadcast word per node per round, read back through the reused
// collective table.
func benchProbeProgram(nd *clique.Node) {
	var table []uint64
	for r := 0; r < benchProbeRounds; r++ {
		table = comm.BroadcastWordInto(nd, uint64(nd.ID()+r), table)
	}
}

// packedProbeProgram is the packed boolean-MM node program: one
// word-parallel naive boolean product per round (at n=64 the packed row
// is a single word, so each product costs exactly one round), the
// steady-state loop of the bit-packed data plane.
func packedProbeProgram(nd *clique.Node) {
	n := nd.N()
	row := bitvec.NewRow(n)
	for i := nd.ID() % 3; i < n; i += 3 {
		row.Set(i)
	}
	for r := 0; r < benchProbeRounds; r++ {
		matmul.MulNaiveBits(nd, row, row)
	}
}

// MeasureBenchProbe runs the canonical exchange workload on the given
// backend and measures allocations per run (one warm-up run excluded,
// so pooled mailboxes and lazily grown buffers do not bill the steady
// state). It must run while no other simulations execute concurrently;
// cliquebench measures after its worker pool has drained.
func MeasureBenchProbe(backend string) (*BenchProbe, error) {
	return measureProbe("exchange", backend, benchProbeProgram)
}

// MeasurePackedProbe is MeasureBenchProbe for the packed boolean-MM
// workload: the allocation watchdog over the bitvec scratch pooling
// that keeps cliqued's boolean serving loop allocation-flat.
func MeasurePackedProbe(backend string) (*BenchProbe, error) {
	return measureProbe("packed-mm", backend, packedProbeProgram)
}

// MeasureTraceOffProbe measures the steady-state throughput of the
// canonical exchange with no tracer attached — the workload whose
// baseline comparison gates the trace plane's zero-cost-when-off claim
// (Compare warns, and cliquebench's -trace-regress-fail fails, beyond
// 1%). Best-of-runs wall time is used, since the minimum over several
// runs estimates undisturbed speed far more stably than a mean: a 1%
// gate would otherwise drown in scheduler noise.
func MeasureTraceOffProbe(backend string) (*BenchProbe, error) {
	cfg := clique.Config{N: benchProbeN, WordsPerPair: benchProbeWPP, Backend: backend}
	run := func() (time.Duration, error) {
		start := time.Now()
		res, err := clique.Run(cfg, benchProbeProgram)
		wall := time.Since(start)
		if err != nil {
			return 0, err
		}
		if res.Stats.Rounds != benchProbeRounds {
			return 0, fmt.Errorf("exp: trace-off probe ran %d rounds, want %d", res.Stats.Rounds, benchProbeRounds)
		}
		return wall, nil
	}
	if _, err := run(); err != nil { // warm-up
		return nil, err
	}
	best := time.Duration(0)
	samples := make([]float64, 0, benchProbeRuns)
	for i := 0; i < benchProbeRuns; i++ {
		wall, err := run()
		if err != nil {
			return nil, err
		}
		if best == 0 || wall < best {
			best = wall
		}
		if wall > 0 {
			samples = append(samples, benchProbeRounds/wall.Seconds())
		}
	}
	rps := 0.0
	if best > 0 {
		rps = benchProbeRounds / best.Seconds()
	}
	dist := stats.Summarize(samples, 0)
	return &BenchProbe{
		Name:         "trace-off",
		Backend:      backend,
		N:            benchProbeN,
		WordsPerPair: benchProbeWPP,
		Rounds:       benchProbeRounds,
		Runs:         benchProbeRuns,
		RoundsPerSec: rps,
		RPSDist:      &dist,
	}, nil
}

// Batched probe shape: the small-message seed-sweep regime batching
// targets. Per-round scheduling overhead dominates an n=8 exchange, so
// cross-run amortisation shows up directly; at the canonical n=64 the
// engine's cache-sized chunking deliberately keeps batched execution at
// serial parity instead.
const (
	batchedProbeN     = 8
	batchedProbeBatch = 8
)

// MeasureBatchedProbe measures the steady-state aggregate throughput of
// the batched execution plane: batchedProbeBatch independent canonical
// exchanges at the small seed-sweep shape driven through one
// clique.RunBatch, against the same runs executed serially.
// Best-of-runs wall time on both sides, for the same reason as the
// trace-off probe: the minimum estimates undisturbed speed.
// RoundsPerSec here is aggregate sim-rounds/sec across the whole batch
// — the registry steady-state throughput figure the perf trajectory
// gates — and Speedup is the batched/serial ratio.
func MeasureBatchedProbe(backend string) (*BenchProbe, error) {
	cfg := clique.Config{N: batchedProbeN, WordsPerPair: benchProbeWPP, Backend: backend}
	progs := make([]clique.NodeFunc, batchedProbeBatch)
	for i := range progs {
		progs[i] = benchProbeProgram
	}
	const totalRounds = batchedProbeBatch * benchProbeRounds
	check := func(res *clique.Result, err error) error {
		if err != nil {
			return err
		}
		if res.Stats.Rounds != benchProbeRounds {
			return fmt.Errorf("exp: batched probe ran %d rounds, want %d", res.Stats.Rounds, benchProbeRounds)
		}
		return nil
	}
	runBatched := func() (time.Duration, error) {
		start := time.Now()
		results, errs := clique.RunBatch(cfg, progs)
		wall := time.Since(start)
		for i := range results {
			if err := check(results[i], errs[i]); err != nil {
				return 0, err
			}
		}
		return wall, nil
	}
	runSerial := func() (time.Duration, error) {
		start := time.Now()
		for range progs {
			if err := check(clique.Run(cfg, benchProbeProgram)); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	best := func(run func() (time.Duration, error)) (time.Duration, []float64, error) {
		if _, err := run(); err != nil { // warm-up
			return 0, nil, err
		}
		var min time.Duration
		samples := make([]float64, 0, benchProbeRuns)
		for i := 0; i < benchProbeRuns; i++ {
			wall, err := run()
			if err != nil {
				return 0, nil, err
			}
			if min == 0 || wall < min {
				min = wall
			}
			if wall > 0 {
				samples = append(samples, totalRounds/wall.Seconds())
			}
		}
		return min, samples, nil
	}
	serialBest, _, err := best(runSerial)
	if err != nil {
		return nil, err
	}
	batchedBest, samples, err := best(runBatched)
	if err != nil {
		return nil, err
	}
	p := &BenchProbe{
		Name:         "batched",
		Backend:      backend,
		N:            batchedProbeN,
		WordsPerPair: benchProbeWPP,
		Rounds:       benchProbeRounds,
		Runs:         benchProbeRuns,
		Batch:        batchedProbeBatch,
	}
	if batchedBest > 0 {
		p.RoundsPerSec = totalRounds / batchedBest.Seconds()
	}
	if serialBest > 0 {
		p.SerialRoundsPerSec = totalRounds / serialBest.Seconds()
	}
	if p.SerialRoundsPerSec > 0 {
		p.Speedup = p.RoundsPerSec / p.SerialRoundsPerSec
	}
	dist := stats.Summarize(samples, 0)
	p.RPSDist = &dist
	return p, nil
}

func measureProbe(name, backend string, program clique.NodeFunc) (*BenchProbe, error) {
	cfg := clique.Config{N: benchProbeN, WordsPerPair: benchProbeWPP, Backend: backend}
	run := func() error {
		res, err := clique.Run(cfg, program)
		if err != nil {
			return err
		}
		if res.Stats.Rounds != benchProbeRounds {
			return fmt.Errorf("exp: bench probe %s ran %d rounds, want %d", name, res.Stats.Rounds, benchProbeRounds)
		}
		return nil
	}
	if err := run(); err != nil { // warm-up
		return nil, err
	}
	// Per-run Mallocs deltas: the mean is AllocsPerOp (matching the old
	// aggregate measurement — ReadMemStats itself does not allocate),
	// and the spread feeds the variance-aware gate.
	var before, after runtime.MemStats
	runtime.GC()
	samples := make([]float64, 0, benchProbeRuns)
	runtime.ReadMemStats(&before)
	for i := 0; i < benchProbeRuns; i++ {
		if err := run(); err != nil {
			return nil, err
		}
		runtime.ReadMemStats(&after)
		samples = append(samples, float64(after.Mallocs-before.Mallocs))
		before = after
	}
	dist := stats.Summarize(samples, 0)
	return &BenchProbe{
		Name:         name,
		Backend:      backend,
		N:            benchProbeN,
		WordsPerPair: benchProbeWPP,
		Rounds:       benchProbeRounds,
		Runs:         benchProbeRuns,
		AllocsPerOp:  dist.Mean,
		AllocsDist:   &dist,
	}, nil
}
