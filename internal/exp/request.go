package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/clique"
)

// Request kinds. A Request either replays a registered experiment or
// describes an ad-hoc simulator run of a named algorithm.
const (
	KindExperiment = "experiment"
	KindAdhoc      = "adhoc"
)

// Request is the canonical description of one unit of serving work —
// the object the cliqued daemon hashes for its deduplicating result
// cache. Two requests that canonicalise to the same Request are
// guaranteed to produce bit-identical result envelopes (everything in a
// Result is deterministic in these fields), which is what makes caching
// and request coalescing sound. The one exception is Trace: a traced
// envelope embeds wall-clock span data, so for traced requests the
// cache serves a representative trace rather than a reproducible one —
// the model-level content is still identical run to run.
type Request struct {
	// Kind is KindExperiment or KindAdhoc.
	Kind string `json:"kind"`
	// Experiment is the registry id (Kind == KindExperiment).
	Experiment string `json:"experiment,omitempty"`
	// Algorithm names the ad-hoc node program (Kind == KindAdhoc). The
	// name set is owned by the server; canonicalisation only requires
	// it to be non-empty.
	Algorithm string `json:"algorithm,omitempty"`
	// N is the clique size for ad-hoc runs.
	N int `json:"n,omitempty"`
	// WordsPerPair is the ad-hoc per-pair word budget; 0 means the
	// algorithm's own default.
	WordsPerPair int `json:"words_per_pair,omitempty"`
	// Seed parameterises ad-hoc instance generation.
	Seed uint64 `json:"seed,omitempty"`
	// Backend is the execution engine; canonicalisation resolves the
	// empty string to the model default so "" and the explicit default
	// hash identically. Model costs are backend-invariant, but the
	// envelope records the backend, so it stays part of the key.
	Backend string `json:"backend"`
	// Quick selects reduced experiment sizes.
	Quick bool `json:"quick,omitempty"`
	// Trace attaches the cliquetrace/v1 block to the result envelope.
	// A traced envelope is a different artefact from an untraced one
	// (it carries wall-clock span data), so Trace is part of the cache
	// key: traced and untraced requests never coalesce.
	Trace bool `json:"trace,omitempty"`
}

// Canonical validates the request and normalises every field that has a
// default, so that all spellings of the same work coincide on one
// representative — the precondition for Hash being a cache key.
func (r Request) Canonical() (Request, error) {
	switch r.Kind {
	case KindExperiment:
		if _, ok := Get(r.Experiment); !ok {
			return Request{}, fmt.Errorf("exp: unknown experiment %q (valid: %v)", r.Experiment, IDs())
		}
		if r.Algorithm != "" || r.N != 0 || r.WordsPerPair != 0 || r.Seed != 0 {
			return Request{}, fmt.Errorf("exp: experiment request %q carries ad-hoc fields", r.Experiment)
		}
	case KindAdhoc:
		if r.Algorithm == "" {
			return Request{}, fmt.Errorf("exp: ad-hoc request missing algorithm")
		}
		if r.Experiment != "" {
			return Request{}, fmt.Errorf("exp: ad-hoc request carries experiment id %q", r.Experiment)
		}
		if r.N < 1 {
			return Request{}, fmt.Errorf("exp: ad-hoc request n = %d, need n >= 1", r.N)
		}
		if r.N > clique.MaxN {
			return Request{}, fmt.Errorf("exp: ad-hoc request n = %d exceeds the maximum %d", r.N, clique.MaxN)
		}
		if r.WordsPerPair < 0 {
			return Request{}, fmt.Errorf("exp: ad-hoc request words_per_pair = %d, need >= 0", r.WordsPerPair)
		}
		if r.WordsPerPair > clique.MaxWordsPerPair {
			return Request{}, fmt.Errorf("exp: ad-hoc request words_per_pair = %d exceeds the maximum %d", r.WordsPerPair, clique.MaxWordsPerPair)
		}
	default:
		return Request{}, fmt.Errorf("exp: unknown request kind %q (valid: %s, %s)", r.Kind, KindExperiment, KindAdhoc)
	}
	if r.Backend == "" {
		r.Backend = clique.DefaultBackend
	}
	ok := false
	for _, b := range clique.Backends() {
		if b == r.Backend {
			ok = true
			break
		}
	}
	if !ok {
		return Request{}, fmt.Errorf("exp: unknown backend %q (valid: %v)", r.Backend, clique.Backends())
	}
	return r, nil
}

// Hash returns the canonical request hash: SHA-256 over the schema
// version and the canonicalised request's JSON. Call it on the output
// of Canonical; hashing a non-canonical request would split the cache.
// The schema version is mixed in so that envelope-layout changes
// invalidate any persisted cache rather than serving stale shapes.
func (r Request) Hash() string {
	data, err := json.Marshal(r)
	if err != nil {
		// A Request is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("exp: marshalling request: %v", err))
	}
	h := sha256.New()
	h.Write([]byte(SchemaVersion))
	h.Write([]byte{0})
	h.Write(data)
	return hex.EncodeToString(h.Sum(nil))
}
