// Package exp is the experiment registry: every figure, theorem table,
// and ablation of EXPERIMENTS.md is a declared Experiment whose Run
// produces a structured Result (typed tables, model costs in rounds and
// words, scalar metrics such as fitted exponents) instead of printing.
//
// The registry is the single source of truth consumed by three layers
// that previously each carried their own copy of the experiment list:
// cmd/cliquebench renders Results as the human-readable report or as
// schema-stable JSON (the BENCH_*.json perf-trajectory format), the
// root bench_test.go benchmark families replay the same workloads under
// `go test -bench`, and CI compares the JSON against a committed
// baseline. Adding an experiment means one Register call; flag help,
// dispatch, rendering, and benchmarks all follow.
package exp
