package exp_test

import (
	"testing"

	"repro/internal/exp"
)

// TestMeasureBatchedProbe sanity-checks the batched-throughput gate's
// instrument: aggregate and serial-reference throughput must both be
// positive, with the batch width recorded so the baseline comparison
// can match on it.
func TestMeasureBatchedProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("timing probe")
	}
	probe, err := exp.MeasureBatchedProbe("lockstep")
	if err != nil {
		t.Fatal(err)
	}
	if probe.Name != "batched" || probe.Backend != "lockstep" {
		t.Fatalf("probe identity %s/%s, want batched/lockstep", probe.Name, probe.Backend)
	}
	if probe.Batch <= 1 {
		t.Fatalf("probe batch = %d, want > 1", probe.Batch)
	}
	if probe.RoundsPerSec <= 0 || probe.SerialRoundsPerSec <= 0 {
		t.Fatalf("probe rounds/sec = %v (serial %v), want both > 0",
			probe.RoundsPerSec, probe.SerialRoundsPerSec)
	}
	if probe.Speedup <= 0 {
		t.Fatalf("probe speedup = %v, want > 0", probe.Speedup)
	}
	if probe.AllocsPerOp != 0 {
		t.Fatalf("batched probe set AllocsPerOp = %v; it must leave the alloc gate alone", probe.AllocsPerOp)
	}
}

// TestCompareBatchedProbe pins the batched-throughput gate: a drop
// beyond the warn fraction is a RegressBatched finding, surfaced by
// both Compare and the fatal BatchedRegressions filter, while a shape
// mismatch (including batch width) is reported instead of compared.
func TestCompareBatchedProbe(t *testing.T) {
	probe := func(rps float64) *exp.BenchProbe {
		return &exp.BenchProbe{Name: "batched", Backend: "lockstep",
			N: 8, WordsPerPair: 1, Rounds: 256, Runs: 5, Batch: 8,
			RoundsPerSec: rps, SerialRoundsPerSec: rps / 1.3, Speedup: 1.3}
	}
	report := func(rps float64) *exp.Report {
		return &exp.Report{Schema: exp.SchemaVersion, Backend: "lockstep", BenchBatched: probe(rps)}
	}
	base := report(100000)

	// Within the default 25% warn fraction (a 10% dip): silent.
	if warns := exp.Compare(base, report(90000), exp.Gate{}); len(warns) != 0 {
		t.Fatalf("10%% drop warned: %+v", warns)
	}
	warns := exp.Compare(base, report(70000), exp.Gate{})
	found := false
	for _, w := range warns {
		if w.Kind == exp.RegressBatched {
			found = true
		}
	}
	if !found {
		t.Fatalf("30%% batched drop not flagged: %+v", warns)
	}
	if fatal := exp.BatchedRegressions(base, report(70000), exp.Gate{Frac: 0.25}); len(fatal) != 1 {
		t.Fatalf("fatal gate found %d regressions, want 1", len(fatal))
	}
	if fatal := exp.BatchedRegressions(base, report(90000), exp.Gate{Frac: 0.25}); len(fatal) != 0 {
		t.Fatalf("fatal gate fired inside the 25%% margin: %+v", fatal)
	}
	// A missing probe on either side compares nothing fatal; Compare's
	// missing-metric warning covers the disappearance.
	if fatal := exp.BatchedRegressions(base, &exp.Report{Schema: exp.SchemaVersion}, exp.Gate{Frac: 0.25}); len(fatal) != 0 {
		t.Fatalf("fatal gate fired on a missing probe: %+v", fatal)
	}
	// A batch-width change is a mismatch, not a throughput regression.
	mismatched := report(100000)
	mismatched.BenchBatched.Batch = 16
	warns = exp.Compare(base, mismatched, exp.Gate{})
	found = false
	for _, w := range warns {
		if w.Kind == exp.RegressMismatch {
			found = true
		}
	}
	if !found {
		t.Fatalf("batch-width mismatch not reported: %+v", warns)
	}
	if fatal := exp.BatchedRegressions(base, mismatched, exp.Gate{Frac: 0.25}); len(fatal) != 0 {
		t.Fatalf("mismatch leaked through the fatal gate: %+v", fatal)
	}
}
