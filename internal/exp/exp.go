package exp

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/trace"
)

// SchemaVersion identifies the JSON envelope layout. Bump only on
// incompatible changes; CI's baseline comparison checks it.
const SchemaVersion = "cliquebench/v1"

// Result is the structured outcome of one experiment run. Every field
// is deterministic for a fixed (experiment, backend, quick) triple:
// wall-clock timing deliberately lives outside the Result (see Timing)
// so that parallel and sequential runs serialise bit-identically.
type Result struct {
	// ID is the registry key, e.g. "fig1".
	ID string `json:"id"`
	// Artefact names the paper artefact, e.g. "E1 / Figure 1".
	Artefact string `json:"artefact"`
	// Title is the one-line experiment description.
	Title string `json:"title"`
	// Tables holds the experiment's typed tables in display order.
	Tables []Table `json:"tables,omitempty"`
	// Metrics holds scalar findings (fitted exponents, violation
	// counts) that downstream tooling reads without parsing tables.
	Metrics []Metric `json:"metrics,omitempty"`
	// Notes are free-form lines printed after the tables.
	Notes []string `json:"notes,omitempty"`
	// Sim aggregates the model cost of every simulated run the
	// experiment made. Zero for pure counting experiments.
	Sim SimCost `json:"sim"`
	// Trace is the cliquetrace/v1 block: one per-round/per-phase summary
	// per simulated run. Attached only when tracing was requested
	// (Options.Trace), so untraced envelopes are byte-for-byte unchanged.
	Trace *trace.Report `json:"trace,omitempty"`
}

// SimCost is the model-level cost of an experiment's simulated runs.
// It is backend-invariant: both engines produce identical counts.
type SimCost struct {
	// Runs is the number of clique.Run / verifier executions.
	Runs int `json:"runs"`
	// Rounds is the total simulated rounds across those runs.
	Rounds int64 `json:"rounds"`
	// Words is the total words sent across those runs.
	Words int64 `json:"words"`
}

// Metric is one scalar finding of an experiment.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	// Unit is optional ("exponent", "rounds", "graphs", ...).
	Unit string `json:"unit,omitempty"`
}

// Table is a typed experiment table: a header row plus typed cells.
type Table struct {
	// Name distinguishes multiple tables in one experiment; empty for
	// the experiment's single or primary table.
	Name    string   `json:"name,omitempty"`
	Columns []string `json:"columns"`
	Rows    [][]Cell `json:"rows"`
}

// CellKind discriminates the typed table cells.
type CellKind string

const (
	KindInt    CellKind = "int"
	KindFloat  CellKind = "float"
	KindBool   CellKind = "bool"
	KindString CellKind = "string"
)

// Cell is one typed table value. Text is the canonical rendering used
// by the text report; the typed field lets JSON consumers avoid
// re-parsing it. Exactly the field named by Kind is meaningful.
type Cell struct {
	Kind  CellKind `json:"kind"`
	Int   int64    `json:"int,omitempty"`
	Float float64  `json:"float,omitempty"`
	Bool  bool     `json:"bool,omitempty"`
	Str   string   `json:"str,omitempty"`
	Text  string   `json:"text"`
}

// Int builds an integer cell rendered in decimal.
func Int(v int) Cell { return Int64(int64(v)) }

// Int64 builds an integer cell rendered in decimal.
func Int64(v int64) Cell {
	return Cell{Kind: KindInt, Int: v, Text: strconv.FormatInt(v, 10)}
}

// Float builds a float cell rendered with the given fmt verb (e.g.
// "%.3f"). Non-finite values degrade to string cells so the Result
// always marshals to valid JSON.
func Float(v float64, format string) Cell {
	text := fmt.Sprintf(format, v)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return Cell{Kind: KindString, Str: text, Text: text}
	}
	return Cell{Kind: KindFloat, Float: v, Text: text}
}

// Bool builds a boolean cell rendered as true/false.
func Bool(v bool) Cell {
	return Cell{Kind: KindBool, Bool: v, Text: strconv.FormatBool(v)}
}

// Str builds a string cell.
func Str(s string) Cell { return Cell{Kind: KindString, Str: s, Text: s} }

// Strf builds a formatted string cell.
func Strf(format string, args ...any) Cell { return Str(fmt.Sprintf(format, args...)) }
