package exp

import (
	"fmt"

	"repro/internal/clique"
	"repro/internal/comm"
	"repro/internal/counting"
	"repro/internal/domset"
	"repro/internal/fgc"
	"repro/internal/graph"
	"repro/internal/hierarchy"
	"repro/internal/mst"
	"repro/internal/nondet"
	"repro/internal/reduction"
	"repro/internal/routing"
	"repro/internal/subgraph"
	"repro/internal/vcover"
)

// The registered experiments, in report order. Each body is the former
// cmd/cliquebench exp* function rewritten against Ctx: simulated runs
// go through c.Rounds / c.Run / c.Verify (per-experiment cost
// accounting), findings land in typed tables, metrics, and notes.
func init() {
	Register(Experiment{ID: "fig1", Artefact: "E1 / Figure 1",
		Title: "measured exponents vs the fine-grained map", Run: expFig1})
	Register(Experiment{ID: "fig2", Artefact: "E2 / Figure 2, Theorem 10",
		Title: "k-IS via k-DS gadget reduction", Run: expFig2})
	Register(Experiment{ID: "thm2", Artefact: "E3 / Theorem 2",
		Title: "protocol counting and the time hierarchy", Run: expThm2})
	Register(Experiment{ID: "thm4", Artefact: "E6 / Theorem 4",
		Title: "nondeterministic time hierarchy parameters", Run: expThm4})
	Register(Experiment{ID: "thm8", Artefact: "E9 / Theorem 8",
		Title: "no level of the logarithmic hierarchy holds everything", Run: expThm8})
	Register(Experiment{ID: "lemma1", Artefact: "E4 / Lemma 1",
		Title: "exhaustive micro diagonalisation at (n,b,t) = (2,1,1)", Run: expLemma1})
	Register(Experiment{ID: "thm3", Artefact: "E5 / Theorem 3",
		Title: "normal form: certificates become transcripts", Run: expThm3})
	Register(Experiment{ID: "thm6", Artefact: "E7 / Theorem 6",
		Title: "NCLIQUE(1) compiled to edge labelling problems", Run: expThm6})
	Register(Experiment{ID: "thm7", Artefact: "E8 / Theorem 7",
		Title: "unlimited hierarchy collapses to Sigma_2", Run: expThm7})
	Register(Experiment{ID: "thm9", Artefact: "E10 / Theorem 9",
		Title: "k-dominating set in O(n^{1-1/k}) rounds", Run: expThm9})
	Register(Experiment{ID: "thm11", Artefact: "E11 / Theorem 11",
		Title: "k-vertex cover in O(k) rounds, independent of n", Run: expThm11})
	Register(Experiment{ID: "fpt", Artefact: "E12 / Section 7.3",
		Title: "fixed-parameter landscape: k-VC vs k-IS vs k-DS", Run: expFPT})
	Register(Experiment{ID: "mst", Artefact: "extension / MST",
		Title: "deterministic Boruvka at 2 log n + O(1) rounds", Run: expMST})
	Register(Experiment{ID: "mstsketch", Artefact: "extension / sketch MST",
		Title: "l0-sketch MST in O(1) rounds (AGM cut sketches)", Run: expMSTSketch})
	Register(Experiment{ID: "mstsparse", Artefact: "extension / sparse MST",
		Title: "message-frugal MST with o(m) total words", Run: expMSTSparse})
	Register(Experiment{ID: "sub", Artefact: "E13 / substrates",
		Title: "routing, sorting, matrix multiplication", Run: expSubstrates})
	Register(Experiment{ID: "ablation", Artefact: "ablation",
		Title: "balanced router vs direct delivery on a skewed instance", Run: expAblation})
}

// E1 — Figure 1: measured scaling and fitted exponents for the
// implemented problems, checked against the map's implemented bounds.
func expFig1(c *Ctx) {
	ns := c.Sizes([]int{27, 64, 125, 216}, []int{8, 16})

	cols := []string{"problem"}
	for _, n := range ns {
		cols = append(cols, fmt.Sprintf("n=%d", n))
	}
	cols = append(cols, "fitted", "impl bound")
	t := c.Table("", cols...)

	// Workloads sharing a (n, wpp) shape run as one batched execution:
	// at each n, same-budget problems submit their programs together and
	// the engine amortises round scheduling across them. Round counts
	// are bit-identical to serial runs (the batched≡serial invariant),
	// so the deterministic envelope does not depend on the grouping.
	ws := Fig1Workloads()
	rounds := make([][]int, len(ws))
	for i := range rounds {
		rounds[i] = make([]int, len(ns))
	}
	for ni, n := range ns {
		byWPP := map[int][]int{}
		var order []int
		for wi, p := range ws {
			if len(byWPP[p.WPP]) == 0 {
				order = append(order, p.WPP)
			}
			byWPP[p.WPP] = append(byWPP[p.WPP], wi)
		}
		for _, wpp := range order {
			idxs := byWPP[wpp]
			progs := make([]clique.NodeFunc, len(idxs))
			for j, wi := range idxs {
				progs[j] = ws[wi].Make(n)
			}
			rs := c.RoundsBatch(n, wpp, progs)
			for j, wi := range idxs {
				rounds[wi][ni] = rs[j]
			}
		}
	}

	m := fgc.Figure1(3)
	for wi, p := range ws {
		rs := rounds[wi]
		row := []Cell{Str(p.Name)}
		for _, r := range rs {
			row = append(row, Int(r))
		}
		fit := fgc.FitExponent(ns, rs)
		bound := Str("-")
		if prob, ok := m.Get(p.Key); ok && p.Key != "" {
			bound = Float(prob.ImplUpper, "%.3f")
		}
		row = append(row, Float(fit, "%.3f"), bound)
		t.Row(row...)
		c.Metric("fitted exponent: "+p.Name, fit, "exponent")
	}

	c.Notef("boolean-payload rows (MM, triangle, k-IS, k-DS, k-VC) ride the bit-packed plane:")
	c.Notef("64 entries/word, so small-n rounds shrink and fits can sit below the bounds;")
	c.Notef("3-VC's 0.000 bound is the asymptotic 1+k cap, which packing only tightens at")
	c.Notef("small n (1 + min(k, ceil(ceil(n/64)/wpp)) rounds), leaving a positive small-n fit")
	if issues := m.Validate(); len(issues) > 0 {
		c.Notef("map validation issues: %v", issues)
		c.Metric("figure-1 map issues", float64(len(issues)), "issues")
	} else {
		c.Notef("figure-1 map: all %d arrows consistent (literature and implemented bounds)", len(m.Relations))
		c.Metric("figure-1 map issues", 0, "issues")
	}
}

// E2 — Figure 2 / Theorem 10: gadget reduction, exhaustive equivalence,
// in-model simulation overhead.
func expFig2(c *Ctx) {
	// Exhaustive equivalence at n=4, k=2 over all 64 graphs.
	mism := 0
	for mask := 0; mask < 64; mask++ {
		g := graph.New(4)
		e := 0
		for u := 0; u < 4; u++ {
			for v := u + 1; v < 4; v++ {
				if mask&(1<<e) != 0 {
					g.AddEdge(u, v)
				}
				e++
			}
		}
		r := reduction.ISDS{N: 4, K: 2}
		if graph.HasIndependentSetOfSize(g, 2) != graph.HasDominatingSetOfSize(r.BuildGraph(g), 2) {
			mism++
		}
	}
	c.Metric("exhaustive n=4 k=2 iff violations", float64(mism), "graphs")

	t := c.Table(fmt.Sprintf("exhaustive n=4 k=2: %d/64 graphs violate the iff (want 0)", mism),
		"n", "k", "|G'|", "direct k-DS", "IS-via-DS sim", "overhead")
	for _, n := range c.Sizes([]int{6, 8, 10}, []int{6, 8}) {
		k := 2
		g := graph.Gnp(n, 0.5, uint64(n)+3)
		r := reduction.ISDS{N: n, K: k}
		direct := c.Rounds(n, 16, func(nd *clique.Node) {
			domset.Find(nd, g.Row(nd.ID()), k)
		})
		sim := c.Rounds(n, 16, func(nd *clique.Node) {
			reduction.FindISViaDS(nd, g.Row(nd.ID()), k)
		})
		t.Row(Int(n), Int(k), Int(r.Total()), Int(direct), Int(sim),
			Float(float64(sim)/float64(direct), "%.1fx"))
	}
	c.Notef("overhead stays bounded as n grows (Theorem 10: O(k^{2 delta + 4}) factor)")
}

// E3 — Theorem 2: the counting tables behind the time hierarchy.
func expThm2(c *Ctx) {
	t := c.Table("", "n", "b", "L", "max hard t")
	for _, n := range []int{64, 256, 1024} {
		b := clique.WordBits(n)
		for _, Lfac := range []int{2, 8, 32} {
			L := Lfac * b
			t.Row(Int(n), Int(b), Int(L), Int64(int64(counting.MaxHardRounds(n, b, L))))
		}
	}
	w := c.Table("Theorem 2 witnesses (L = T log n; hard function avoids T/2-round protocols)",
		"n", "T(n)", "L", "valid", "excluded")
	n := 1 << 14
	for Tn := 2; Tn*4*14 < n; Tn *= 4 {
		wit := counting.Theorem2Params(n, Tn)
		w.Row(Int(n), Int(Tn), Int(wit.Params.L), Bool(wit.Valid), Int64(int64(wit.LowerExcluded)))
	}
}

// E6 — Theorem 4: nondeterministic hierarchy tables.
func expThm4(c *Ctx) {
	t := c.Table("", "n", "T(n)", "M (bits)", "L", "ineq", "valid")
	n := 1 << 12
	for Tn := 4; Tn*4*12 < n; Tn *= 2 {
		w := counting.Theorem4Params(n, Tn)
		t.Row(Int(n), Int(Tn), Int(w.Params.M), Int(w.Params.L),
			Bool(w.PaperInequality), Bool(w.Valid))
	}
}

// E9 — Theorem 8: logarithmic hierarchy separation parameters.
func expThm8(c *Ctx) {
	n := 256
	Tn := 2 * n
	t := c.Table(fmt.Sprintf("T(n) = 2n = %d, L = T^2 log n = %d", Tn, Tn*Tn*clique.WordBits(n)),
		"k", "lhs (bits)", "rhs (bits)", "valid")
	for _, k := range []int{1, 2, 4, 16, 64, 512} {
		w := counting.Theorem8Params(n, k, Tn)
		t.Row(Int(k), Int64(int64(w.PaperLH)), Int64(int64(w.PaperRH)), Bool(w.Valid))
	}
}

// E4 — Lemma 1 made constructive.
func expLemma1(c *Ctx) {
	t := c.Table("", "L", "realisable", "functions", "protocols", "lemma-1 log2", "first hard", "verified")
	for _, L := range []int{1, 2} {
		r := counting.Diagonalise(L)
		hard, verified := Str("-"), Str("-")
		if r.HardExists {
			hard = Strf("%#04x (weight %d)", r.FirstHard, counting.HammingWeight(r.FirstHard))
			verified = Bool(counting.VerifyHard(r.FirstHard, L))
		}
		t.Row(Int(L), Int64(int64(r.Realised)), Int64(int64(r.TotalFunctions)),
			Int64(int64(r.ValidProtocols)), Int64(int64(r.Lemma1BoundLog2)), hard, verified)
		if !r.HardExists {
			c.Notef("L=%d: no hard function (1 bit of bandwidth carries the whole input)", L)
		}
	}
}

// E5 — Theorem 3: transcript certificates.
func expThm3(c *Ctx) {
	t := c.Table("", "n", "orig bits/node", "transcript bits", "bound Tnlogn", "B accepts")
	for _, n := range c.Sizes([]int{6, 10, 16, 24}, []int{6, 10}) {
		g, _ := graph.PlantedColoring(n, 3, 0.7, uint64(n))
		alg := nondet.KColoringVerifier(3)
		z := nondet.KColoringProver(g, 3)
		if z == nil {
			continue
		}
		// TranscriptCertificate, inlined through Verify so the
		// accepting run is part of the throughput report.
		accepting, err := c.Verify(clique.Config{N: n, RecordTranscript: true}, g, alg, z)
		if err != nil {
			c.Failf("%v", err)
		}
		if !accepting.Accepted {
			c.Failf("nondet: A rejected the labelling; no certificate to extract")
		}
		certs := make(nondet.Labelling, n)
		for v, tr := range accepting.Result.Transcripts {
			certs[v] = nondet.EncodeTranscript(tr, n)
		}
		b := nondet.NormalForm(alg, 1, nondet.WordSpace(3))
		verdict, err := c.Verify(clique.Config{N: n}, g, b, certs)
		if err != nil {
			c.Failf("%v", err)
		}
		t.Row(Int(n), Int(z.SizeBits(n)), Int(certs.SizeBits(n)),
			Int(1*n*clique.WordBits(n)), Bool(verdict.Accepted))
	}
	c.Notef("transcript size grows as Theta(T n log n); the original labels were O(log n)")
}

// E7 — Theorem 6: edge labelling problems.
func expThm6(c *Ctx) {
	t := c.Table("", "n", "verify rounds", "accepted")
	for _, n := range c.Sizes([]int{5, 8, 12}, []int{5, 8}) {
		g, _ := graph.PlantedColoring(n, 3, 0.7, uint64(n)+40)
		alg := nondet.KColoringVerifier(3)
		z := nondet.KColoringProver(g, 3)
		verdict, err := c.Verify(clique.Config{N: n, RecordTranscript: true}, g, alg, z)
		if err != nil || !verdict.Accepted {
			c.Failf("accepting run failed")
		}
		// The compiled problem's labels and one-round verification.
		rcount := c.Rounds(n, 1, func(nd *clique.Node) {
			// labels built centrally from the recorded transcripts
			labels := corelabels(verdict, n, 3)
			coreVerify(nd, g, labels)
		})
		t.Row(Int(n), Int(rcount), Bool(verdict.Accepted))
	}
	c.Notef("verification rounds stay constant in n: the canonical family is NCLIQUE(1)-checkable")
}

// E8 — Theorem 7: the Sigma_2 collapse protocol.
func expThm7(c *Ctx) {
	t := c.Table("", "n", "challenges", "honest rejected (want 0)", "lying caught (want >0)")
	for _, n := range []int{3, 4} {
		yes := graph.Complete(n)
		no := graph.Path(n)
		alg := hierarchy.SigmaTwoUniversal(graph.HasTriangle)
		run := func(g *graph.Graph, z1, z2 []([]uint64)) bool {
			bits := make([]bool, g.N)
			_, err := c.Run(clique.Config{N: g.N}, func(nd *clique.Node) {
				bits[nd.ID()] = alg(nd, g.Row(nd.ID()), [][]uint64{z1[nd.ID()], z2[nd.ID()]})
			})
			if err != nil {
				c.Failf("%v", err)
			}
			for _, b := range bits {
				if !b {
					return false
				}
			}
			return true
		}
		honest := hierarchy.HonestGuess(yes)
		rejected := 0
		for idx := 0; idx < n*n; idx++ {
			z2 := hierarchy.CatchingChallenge(n, 0, idx/n, idx%n)
			if !run(yes, honest, z2) {
				rejected++
			}
		}
		lying := hierarchy.HonestGuess(no)
		lying[0] = hierarchy.EncodeGuess(yes)
		caught := 0
		for idx := 0; idx < n*n; idx++ {
			z2 := hierarchy.CatchingChallenge(n, 0, idx/n, idx%n)
			if !run(no, lying, z2) {
				caught++
			}
		}
		t.Row(Int(n), Int(n*n), Int(rejected), Int(caught))
	}
	c.Notef("honest yes-instances survive every challenge; a lying prover is caught by at least one")
}

// E10 — Theorem 9: k-DS scaling.
func expThm9(c *Ctx) {
	ns := c.Sizes([]int{27, 64, 125, 216}, []int{8, 27})
	cols := []string{"k"}
	for _, n := range ns {
		cols = append(cols, fmt.Sprintf("n=%d", n))
	}
	cols = append(cols, "fitted delta", "bound")
	t := c.Table("", cols...)
	for _, k := range []int{2, 3} {
		var rs []int
		row := []Cell{Int(k)}
		for _, n := range ns {
			g, _ := graph.PlantedDominatingSet(n, k, 0.1, uint64(n))
			r := c.Rounds(n, 8, func(nd *clique.Node) {
				domset.Find(nd, g.Row(nd.ID()), k)
			})
			rs = append(rs, r)
			row = append(row, Int(r))
		}
		fit := fgc.FitExponent(ns, rs)
		row = append(row, Float(fit, "%.3f"), Float(1-1/float64(k), "%.3f"))
		t.Row(row...)
		c.Metric(fmt.Sprintf("fitted delta (k=%d)", k), fit, "exponent")
	}
}

// E11 — Theorem 11: k-VC rounds depend only on k.
func expThm11(c *Ctx) {
	ns := c.Sizes([]int{16, 32, 64, 128}, []int{8, 16})
	ks := c.Sizes([]int{2, 4, 8}, []int{2, 4})
	cols := []string{`k\n`}
	for _, n := range ns {
		cols = append(cols, fmt.Sprintf("n=%d", n))
	}
	cols = append(cols, "bound 1+k")
	t := c.Table("", cols...)
	for _, k := range ks {
		row := []Cell{Int(k)}
		for _, n := range ns {
			g, _ := graph.PlantedVertexCover(n, k, 0.4, uint64(n)+uint64(k))
			r := c.Rounds(n, 1, func(nd *clique.Node) {
				vcover.Find(nd, g.Row(nd.ID()), k)
			})
			if r > 1+k {
				c.Failf("thm11: %d rounds at n=%d k=%d exceed the 1+k bound", r, n, k)
			}
			row = append(row, Int(r))
		}
		row = append(row, Int(1+k))
		t.Row(row...)
	}
	c.Notef("rounds are exactly 1 + min(k, ceil(ceil(n/64)/wpp)): the packed main phase")
	c.Notef("broadcasts the uncovered-edge mask when cheaper than the k one-word rounds")
}

// E12 — the Section 7.3 FPT contrast table.
func expFPT(c *Ctx) {
	k := 3
	t := c.Table("", "n", "k-VC", "k-IS", "k-DS")
	for _, n := range c.Sizes([]int{27, 64, 125}, []int{27}) {
		gv, _ := graph.PlantedVertexCover(n, k, 0.4, uint64(n))
		gi, _ := graph.PlantedIndependentSet(n, k, 0.5, uint64(n)+1)
		gd, _ := graph.PlantedDominatingSet(n, k, 0.1, uint64(n)+2)
		t.Row(Int(n),
			Int(c.Rounds(n, 1, func(nd *clique.Node) { vcover.Find(nd, gv.Row(nd.ID()), k) })),
			Int(c.Rounds(n, 8, func(nd *clique.Node) { subgraph.DetectIndependentSet(nd, gi.Row(nd.ID()), k) })),
			Int(c.Rounds(n, 8, func(nd *clique.Node) { domset.Find(nd, gd.Row(nd.ID()), k) })))
	}
}

// Extension — deterministic MST baseline (paper conclusions).
func expMST(c *Ctx) {
	t := c.Table("", "n", "rounds", "forest wt", "oracle wt")
	for _, n := range c.Sizes([]int{16, 64, 256}, []int{16, 32}) {
		g := graph.GnpWeighted(n, 0.3, 60, false, uint64(n))
		wts := make([]int64, n) // per-node: node programs run concurrently
		r := c.Rounds(n, 1, func(nd *clique.Node) {
			wts[nd.ID()] = mst.Weight(mst.Find(nd, g.W[nd.ID()]))
		})
		oracle, _ := mst.KruskalOracle(g)
		t.Row(Int(n), Int(r), Int64(wts[0]), Int64(oracle))
	}
	c.Notef("the conclusions' randomized-gap example: randomized algorithms do O(1);")
	c.Notef("this deterministic baseline needs Theta(log n) Boruvka phases")
}

// Extension — the randomized side of the MST gap: constant seed phases
// plus one AGM cut-sketch exchange, so the round count stays flat while
// Boruvka's grows with log n. Every forest weight is checked against
// the Kruskal oracle.
func expMSTSketch(c *Ctx) {
	const wpp = 32
	t := c.Table("", "n", "rounds", "boruvka rounds", "samples ok", "forest wt", "oracle wt")
	var maxRounds int
	for _, n := range c.Sizes([]int{16, 64, 128, 256}, []int{16, 32, 64}) {
		g := graph.GnpWeighted(n, 0.3, 60, false, uint64(n))
		wts := make([]int64, n)
		stats := make([]mst.SketchStats, n)
		res, err := c.Run(clique.Config{N: n, WordsPerPair: wpp}, func(nd *clique.Node) {
			forest, st := mst.SketchFind(nd, g.W[nd.ID()], uint64(n))
			wts[nd.ID()] = mst.Weight(forest)
			stats[nd.ID()] = st
		})
		if err != nil {
			c.Failf("n=%d: %v", n, err)
			return
		}
		boruvka := c.Rounds(n, 1, func(nd *clique.Node) {
			mst.Find(nd, g.W[nd.ID()])
		})
		oracle, _ := mst.KruskalOracle(g)
		if wts[0] != oracle {
			c.Failf("n=%d: SketchFind weight %d, oracle %d", n, wts[0], oracle)
		}
		if res.Stats.Rounds > maxRounds {
			maxRounds = res.Stats.Rounds
		}
		t.Row(Int(n), Int(res.Stats.Rounds), Int(boruvka),
			Str(fmt.Sprintf("%d/%d", stats[0].SampleOK, stats[0].SampleTotal)),
			Int64(wts[0]), Int64(oracle))
	}
	c.Metric("sketch MST max rounds", float64(maxRounds), "rounds")
	c.Notef("rounds stay single-digit across the sweep while Boruvka grows with log n;")
	c.Notef("the samples column is cut-sketch recovery telemetry (misses fall back to exact exchange)")
}

// Extension — the message-frugal MST: total words moved are o(m) on
// dense inputs because components stop probing as soon as their
// XOR-merged cut fingerprint empties.
func expMSTSparse(c *Ctx) {
	const wpp = 8
	t := c.Table("", "n", "m", "words", "words/m", "phases", "forest wt", "oracle wt")
	var lastRatio float64
	for _, n := range c.Sizes([]int{48, 96, 192}, []int{24, 48}) {
		g := graph.GnpWeighted(n, 0.6, 60, false, uint64(n))
		m := 0
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if g.HasEdge(u, v) {
					m++
				}
			}
		}
		var wt int64
		var phases int
		res, err := c.Run(clique.Config{N: n, WordsPerPair: wpp}, func(nd *clique.Node) {
			forest, st := mst.SparseFind(nd, g.W[nd.ID()], uint64(n))
			if nd.ID() == 0 {
				wt = mst.Weight(forest)
				phases = st.Phases
			}
		})
		if err != nil {
			c.Failf("n=%d: %v", n, err)
			return
		}
		oracle, _ := mst.KruskalOracle(g)
		if wt != oracle {
			c.Failf("n=%d: SparseFind weight %d, oracle %d", n, wt, oracle)
		}
		lastRatio = float64(res.Stats.WordsSent) / float64(m)
		t.Row(Int(n), Int(m), Int64(res.Stats.WordsSent),
			Float(lastRatio, "%.3f"), Int(phases), Int64(wt), Int64(oracle))
		c.Metric(fmt.Sprintf("sparse MST words/m at n=%d", n), lastRatio, "ratio")
	}
	c.Notef("words/m falls as n grows: per-phase traffic is O(active components),")
	c.Notef("not O(m), and cut fingerprints silence finished components")
}

// E13 — substrate validation.
func expSubstrates(c *Ctx) {
	rt := c.Table("routing rounds vs per-node load (n=32, uniform destinations)", "load", "rounds")
	for _, load := range c.Sizes([]int{8, 16, 32, 64}, []int{8, 16}) {
		r := c.Rounds(32, 4, func(nd *clique.Node) {
			var ps []comm.Packet
			for i := 0; i < load; i++ {
				ps = append(ps, comm.Packet{Dst: (nd.ID() + i + 1) % 32, Payload: []uint64{uint64(i)}})
			}
			comm.Route(nd, ps, 1, 9)
		})
		rt.Row(Int(load), Int(r))
	}
	st := c.Table("sorting rounds vs keys/node (n=16, keys < n^2)", "keys/node", "rounds")
	for _, kn := range c.Sizes([]int{4, 8, 16}, []int{4, 8}) {
		r := c.Rounds(16, 4, func(nd *clique.Node) {
			keys := make([]uint64, kn)
			for i := range keys {
				keys[i] = uint64((nd.ID()*31 + i*17) % 256)
			}
			routing.Sort(nd, keys, 256)
		})
		st.Row(Int(kn), Int(r))
	}
	mt := c.Table("matrix multiplication, naive vs 3D", "n", "naive rounds", "3D rounds")
	naiveW, err := Fig1Workload("Boolean MM (naive)")
	if err != nil {
		c.Failf("%v", err)
	}
	tdW, err := Fig1Workload("Boolean MM (3D)")
	if err != nil {
		c.Failf("%v", err)
	}
	for _, n := range c.Sizes([]int{27, 64, 125, 216}, []int{8, 27}) {
		naive := c.Rounds(n, naiveW.WPP, naiveW.Make(n))
		td := c.Rounds(n, tdW.WPP, tdW.Make(n))
		mt.Row(Int(n), Int(naive), Int(td))
	}
}

// Ablation — router choice on a skewed instance.
func expAblation(c *Ctx) {
	const n, L = 16, 96
	mk := func(balanced bool) int {
		return c.Rounds(n, 4, func(nd *clique.Node) {
			var ps []comm.Packet
			if nd.ID() == 0 {
				for i := 0; i < L; i++ {
					ps = append(ps, comm.Packet{Dst: 1, Payload: []uint64{uint64(i)}})
				}
			}
			if balanced {
				comm.Route(nd, ps, 1, 5)
			} else {
				comm.RouteDirect(nd, ps, 1)
			}
		})
	}
	direct, balanced := mk(false), mk(true)
	c.Notef("node 0 sends %d packets to node 1 (n=%d): direct %d rounds, balanced %d rounds",
		L, n, direct, balanced)
	c.Metric("direct rounds", float64(direct), "rounds")
	c.Metric("balanced rounds", float64(balanced), "rounds")
}

// corelabels / coreVerify adapt the Theorem 6 compilation for the
// harness without pulling package core's full surface into the
// registry.
func corelabels(verdict nondet.Verdict, n, k int) [][]uint64 {
	labels := make([][]uint64, n)
	base := uint64(k) + 2
	for u := 0; u < n; u++ {
		labels[u] = make([]uint64, n)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			var lab uint64
			if s := verdict.Result.Transcripts[u].Rounds[0].Sent[v]; len(s) == 1 {
				lab += s[0] + 1
			}
			if s := verdict.Result.Transcripts[v].Rounds[0].Sent[u]; len(s) == 1 {
				lab += (s[0] + 1) * base
			}
			labels[u][v] = lab
			labels[v][u] = lab
		}
	}
	return labels
}

func coreVerify(nd *clique.Node, g *graph.Graph, labels [][]uint64) {
	n := nd.N()
	me := nd.ID()
	peers, delivered := comm.AllToAllWord(nd, labels[me])
	for v := 0; v < n; v++ {
		if v == me {
			continue
		}
		if !delivered[v] || peers[v] != labels[me][v] {
			nd.Fail("edge label mismatch with %d", v)
		}
	}
}
