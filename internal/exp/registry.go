package exp

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/clique"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Experiment is one registered entry: an identifier, the paper artefact
// it reproduces, and a body that fills in the Result through the Ctx.
type Experiment struct {
	// ID is the stable key used by -exp, JSON, and benchmarks.
	ID string
	// Artefact names the paper artefact ("E1 / Figure 1").
	Artefact string
	// Title is the one-line description shown in reports and -exp help.
	Title string
	// Run computes the experiment. It reports findings through c and
	// aborts via c.Failf; it must be deterministic for a fixed
	// (Backend, Quick) pair.
	Run func(c *Ctx)
}

// registry holds the experiments in registration (= report) order.
var (
	regMu    sync.RWMutex
	registry []Experiment
	byID     = map[string]int{}
)

// Register adds an experiment; duplicate IDs panic at init time.
func Register(e Experiment) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := byID[e.ID]; dup {
		panic(fmt.Sprintf("exp: duplicate experiment id %q", e.ID))
	}
	if e.ID == "" || e.Run == nil {
		panic(fmt.Sprintf("exp: experiment %+v missing ID or Run", e))
	}
	byID[e.ID] = len(registry)
	registry = append(registry, e)
}

// All returns the experiments in report order.
func All() []Experiment {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// IDs returns the experiment ids in report order.
func IDs() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	return ids
}

// Info is the serialisable registry-listing entry. It is the one shape
// shared by `cliquebench -list`, the cliqued service's /v1/experiments
// endpoint, and the cmd/genexperiments table generator, so the three
// listings cannot drift apart.
type Info struct {
	ID       string `json:"id"`
	Artefact string `json:"artefact"`
	Title    string `json:"title"`
}

// Infos returns the registry listing in report order.
func Infos() []Info {
	all := All()
	infos := make([]Info, len(all))
	for i, e := range all {
		infos[i] = Info{ID: e.ID, Artefact: e.Artefact, Title: e.Title}
	}
	return infos
}

// Get looks up one experiment by id.
func Get(id string) (Experiment, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	i, ok := byID[id]
	if !ok {
		return Experiment{}, false
	}
	return registry[i], true
}

// Help renders the -exp flag help from the registry so the flag can
// never drift from the dispatch: "all" plus every id with its artefact.
func Help() string {
	var sb strings.Builder
	sb.WriteString("experiment id: all")
	for _, e := range All() {
		sb.WriteString(", ")
		sb.WriteString(e.ID)
	}
	return sb.String()
}

// Resolve expands an -exp flag value ("all", one id, or a
// comma-separated list) into registry ids, rejecting unknown ones with
// an error that lists the valid set — also derived from the registry.
func Resolve(spec string) ([]string, error) {
	if spec == "" || spec == "all" {
		return IDs(), nil
	}
	var ids []string
	seen := map[string]bool{}
	for _, id := range strings.Split(spec, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		if _, ok := Get(id); !ok {
			return nil, fmt.Errorf("unknown experiment %q (valid: all, %s)", id, strings.Join(IDs(), ", "))
		}
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("no experiments selected (valid: all, %s)", strings.Join(IDs(), ", "))
	}
	return ids, nil
}

// Options configure a registry run.
type Options struct {
	// Backend is the execution engine name; empty means the default.
	Backend string
	// Quick shrinks instance sizes (tests, smoke jobs).
	Quick bool
	// Parallel is the worker-pool width; values < 2 run sequentially.
	// Results keep registry order regardless.
	Parallel int
	// Progress, when non-nil, is invoked after every simulated run with
	// a Progress snapshot (cumulative SimCost plus current throughput).
	// It is called on the goroutine executing the experiment; with
	// Parallel > 1 that means concurrently, so a shared Progress must be
	// safe for concurrent use. Long-running callers (the cliqued SSE
	// stream) use it to report liveness without touching the
	// deterministic Result.
	Progress func(Progress)
	// Trace enables per-run trace collection and attaches the
	// cliquetrace/v1 summary block to every Result.
	Trace bool
	// TraceSink, when non-nil, also enables tracing and receives each
	// experiment's full RunTraces once it completes — the input to
	// trace.WriteChrome. Like Progress it runs on the experiment's
	// goroutine, concurrently under Parallel > 1.
	TraceSink func(id string, traces []*trace.RunTrace)
}

// traced reports whether runs should collect traces.
func (o Options) traced() bool { return o.Trace || o.TraceSink != nil }

// Timing is the nondeterministic half of a run, kept out of Result so
// serialised Results stay bit-identical across runs and worker counts.
type Timing struct {
	// SimWall is wall-clock spent inside simulated runs only.
	SimWall time.Duration
	// Rounds mirrors the summed SimCost.Rounds for convenience.
	Rounds int64
}

// RoundsPerSec is the throughput figure tracked by the perf trajectory.
func (t Timing) RoundsPerSec() float64 {
	if t.SimWall <= 0 {
		return 0
	}
	return float64(t.Rounds) / t.SimWall.Seconds()
}

// RunOne executes a single registered experiment without cancellation.
func RunOne(id string, opts Options) (*Result, Timing, error) {
	return RunOneContext(context.Background(), id, opts)
}

// RunOneContext executes a single registered experiment. Cancelling ctx
// aborts the experiment at its next simulated-run boundary (individual
// clique runs are not interrupted mid-flight; they are short relative
// to any realistic deadline) and returns the context's error.
func RunOneContext(ctx context.Context, id string, opts Options) (*Result, Timing, error) {
	e, ok := Get(id)
	if !ok {
		return nil, Timing{}, fmt.Errorf("exp: unknown experiment %q", id)
	}
	return RunExperiment(ctx, e, opts)
}

// RunExperiment executes one Experiment value, which need not be in the
// registry: the cliqued daemon runs ad-hoc algorithm requests by
// wrapping them as ephemeral Experiments, so they get the same counted
// Ctx, the same Result envelope, and the same cancellation semantics as
// registered experiments.
func RunExperiment(ctx context.Context, e Experiment, opts Options) (res *Result, tim Timing, err error) {
	if e.ID == "" || e.Run == nil {
		return nil, Timing{}, fmt.Errorf("exp: experiment %q missing ID or Run", e.ID)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, Timing{}, fmt.Errorf("exp %s: %w", e.ID, err)
	}
	backend := opts.Backend
	if backend == "" {
		backend = clique.DefaultBackend
	}
	c := &Ctx{Backend: backend, Quick: opts.Quick,
		ctx: ctx, progress: opts.Progress, tracing: opts.traced(),
		res: &Result{ID: e.ID, Artefact: e.Artefact, Title: e.Title}}
	defer func() {
		if r := recover(); r != nil {
			f, ok := r.(failure)
			if !ok {
				panic(r)
			}
			res, err = nil, f.err
		}
		tim = Timing{SimWall: c.simWall}
		if res != nil {
			tim.Rounds = res.Sim.Rounds
		}
	}()
	e.Run(c)
	if opts.Trace {
		rep := trace.NewReport()
		for _, t := range c.traces {
			rep.Runs = append(rep.Runs, t.Summary())
		}
		c.res.Trace = rep
	}
	if opts.TraceSink != nil {
		opts.TraceSink(e.ID, c.traces)
	}
	return c.res, Timing{}, nil
}

// Run executes the given experiments without cancellation; see
// RunContext.
func Run(ids []string, opts Options) ([]*Result, Timing, error) {
	return RunContext(context.Background(), ids, opts)
}

// RunContext executes the given experiments — all independent of each
// other — on a worker pool of opts.Parallel goroutines and returns
// their Results in the requested order plus the aggregate Timing. The
// ordering, and every byte of every Result, is identical whatever the
// worker count; only Timing varies. Cancelling ctx makes every
// still-running or not-yet-started experiment fail fast, surfacing the
// context's error.
func RunContext(ctx context.Context, ids []string, opts Options) ([]*Result, Timing, error) {
	type slot struct {
		res *Result
		tim Timing
		err error
	}
	slots := make([]slot, len(ids))
	workers := opts.Parallel
	if workers < 2 || len(ids) < 2 {
		for i, id := range ids {
			slots[i].res, slots[i].tim, slots[i].err = RunOneContext(ctx, id, opts)
		}
	} else {
		if workers > len(ids) {
			workers = len(ids)
		}
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					slots[i].res, slots[i].tim, slots[i].err = RunOneContext(ctx, ids[i], opts)
				}
			}()
		}
		for i := range ids {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}

	results := make([]*Result, len(ids))
	var total Timing
	var firstErr error
	for i := range slots {
		if slots[i].err != nil && firstErr == nil {
			firstErr = slots[i].err
		}
		results[i] = slots[i].res
		total.SimWall += slots[i].tim.SimWall
		total.Rounds += slots[i].tim.Rounds
	}
	if firstErr != nil {
		return nil, Timing{}, firstErr
	}
	return results, total, nil
}

// Report is the serialised envelope of a registry run: the JSON schema
// cliquebench emits, CI archives, and the BENCH_*.json perf trajectory
// stores. Everything outside Throughput is deterministic.
type Report struct {
	Schema  string `json:"schema"`
	Backend string `json:"backend"`
	// Quick records whether reduced sizes were used; quick and full
	// reports are not comparable.
	Quick       bool      `json:"quick,omitempty"`
	Experiments []*Result `json:"experiments"`
	// Throughput is only attached when the caller asked for timing
	// (cliquebench -timing); without it the whole Report is
	// bit-identical run to run and across -parallel settings.
	Throughput *Throughput `json:"throughput,omitempty"`
	// Bench is the canonical-exchange allocation probe, attached under
	// the same timing opt-in as Throughput.
	Bench *BenchProbe `json:"bench,omitempty"`
	// BenchPacked is the packed boolean-MM allocation probe, the
	// watchdog over the bit-packed data plane's scratch pooling.
	BenchPacked *BenchProbe `json:"bench_packed,omitempty"`
	// BenchTraceOff is the trace-off steady-state throughput probe: the
	// canonical exchange with no tracer attached, best-of-runs. Its
	// baseline comparison is the <1% overhead gate on the trace plane's
	// off path. Timing-gated like the other probes.
	BenchTraceOff *BenchProbe `json:"bench_trace_off,omitempty"`
	// BenchBatched is the batched-execution throughput probe: a batch of
	// canonical exchanges through one engine execution versus the same
	// runs serial, best-of-runs aggregate sim-rounds/sec. Its baseline
	// comparison gates the batched plane's throughput claim. Timing-gated
	// like the other probes.
	BenchBatched *BenchProbe `json:"bench_batched,omitempty"`
	// Build attributes the report to the producing binary (module
	// version, VCS revision, toolchain, available backends). It is
	// deterministic for a fixed binary, so envelopes stay bit-identical
	// run to run and across -parallel.
	Build *BuildInfo `json:"build"`
}

// Throughput is the measured simulator performance of one run. WallNS
// sums wall-clock spent inside simulated runs across all workers, so
// comparisons are only meaningful between runs with the same Workers
// value (the CI gate pins it).
type Throughput struct {
	SimRounds    int64   `json:"sim_rounds"`
	WallNS       int64   `json:"wall_ns"`
	RoundsPerSec float64 `json:"rounds_per_sec"`
	Workers      int     `json:"workers,omitempty"`
	// Dist is the rounds/sec distribution across cliquebench -repeats
	// registry runs (first repeat's block fields above, all repeats
	// here). When present, RoundsPerSec is its mean and Compare gates
	// against the confidence interval instead of a fixed fraction.
	Dist *stats.Summary `json:"dist,omitempty"`
}

// NewReport assembles the envelope; pass withTiming=false for
// deterministic output.
func NewReport(backend string, opts Options, results []*Result, tim Timing, withTiming bool) *Report {
	r := &Report{Schema: SchemaVersion, Backend: backend, Quick: opts.Quick,
		Experiments: results, Build: Build()}
	if withTiming {
		workers := opts.Parallel
		if workers < 2 {
			workers = 1
		}
		r.Throughput = &Throughput{
			SimRounds:    tim.Rounds,
			WallNS:       tim.SimWall.Nanoseconds(),
			RoundsPerSec: tim.RoundsPerSec(),
			Workers:      workers,
		}
	}
	return r
}

// Kinds of Compare findings, for callers that escalate some of them
// (cliquebench fails the bench job on RegressAllocs beyond its
// -alloc-regress-fail gate; everything else stays warn-only).
const (
	RegressAllocs     = "allocs"
	RegressThroughput = "throughput"
	RegressModelCost  = "model-cost"
	RegressMismatch   = "mismatch"
	RegressTraceOff   = "trace-off"
	RegressBatched    = "batched"
	// RegressMissing flags a metric tracked on one side only: a baseline
	// metric absent from the current report is lost gate coverage, and a
	// current metric absent from the baseline runs ungated until the
	// baseline is regenerated. Either way "nothing compared" is a
	// finding, not silence.
	RegressMissing = "missing"
)

// Gate configures how Compare and the fatal gates decide "regressed".
//
// When the baseline metric carries a sample distribution (Dist blocks,
// written by cliquebench -repeats and the multi-run probes), the gate
// is variance-aware: a value regresses when it falls outside the
// baseline mean by more than CIFactor times the confidence-interval
// half-width (plus a small relative floor, so a freakishly quiet
// baseline cannot turn measurement noise into alerts). Baselines
// without a distribution fall back to the fixed fraction Frac.
type Gate struct {
	// CIFactor scales the baseline CI half-width; 0 means
	// DefaultCIFactor.
	CIFactor float64
	// Frac is the fixed-fraction fallback for distribution-free
	// baselines; 0 means the metric's historical default (0.25
	// throughput, 0.10 allocs, 0.01 trace-off).
	Frac float64
}

// DefaultCIFactor is the half-width multiplier used when Gate.CIFactor
// is unset: two 95% half-widths, roughly a four-sigma one-sided gate
// for small repeat counts.
const DefaultCIFactor = 2

// minRelSlack is the relative-slack floor under the variance-aware
// gate: even a zero-variance baseline tolerates this fraction of drift
// before a timing metric alerts.
const minRelSlack = 0.02

func (g Gate) ciFactor() float64 {
	if g.CIFactor > 0 {
		return g.CIFactor
	}
	return DefaultCIFactor
}

func (g Gate) frac(metricDefault float64) float64 {
	if g.Frac > 0 {
		return g.Frac
	}
	return metricDefault
}

// gateSlack is the tolerated drift around basePoint: CIFactor
// half-widths when a usable distribution exists (floored at
// minRelSlack), frac·basePoint otherwise.
func gateSlack(basePoint float64, dist *stats.Summary, ciFactor, frac float64) float64 {
	if dist != nil && dist.N >= 2 {
		slack := ciFactor * dist.HalfWidth()
		if floor := minRelSlack * basePoint; slack < floor {
			slack = floor
		}
		return slack
	}
	return frac * basePoint
}

// Regression is one warning produced by Compare.
type Regression struct {
	// What identifies the degraded quantity.
	What string
	// Kind classifies the finding (Regress* constants).
	Kind string
	// Baseline and Current are the compared values.
	Baseline, Current float64
}

func (r Regression) String() string {
	switch {
	case r.Baseline == 0 && r.Current == 0:
		return r.What
	case r.Baseline == 0:
		return fmt.Sprintf("%s: baseline 0, current %.0f", r.What, r.Current)
	}
	return fmt.Sprintf("%s: baseline %.0f, current %.0f (%+.1f%%)",
		r.What, r.Baseline, r.Current, 100*(r.Current-r.Baseline)/r.Baseline)
}

// Compare checks a fresh report against a stored baseline and returns
// warnings for simulator throughput regressions beyond the gate, for
// any change in deterministic model costs (tolerance 0, since model
// costs only move when an algorithm changed), and for metrics tracked
// on one side only (RegressMissing). Throughput gating is
// variance-aware when the baseline carries a repeat distribution: the
// warning fires when the current mean falls below the baseline mean by
// more than gate.CIFactor confidence-interval half-widths, so a noisy
// runner widens its own tolerance instead of crying wolf. It never
// fails a build on its own; CI surfaces the returned warnings.
func Compare(baseline, current *Report, gate Gate) []Regression {
	var warns []Regression
	if baseline.Schema != current.Schema {
		warns = append(warns, Regression{Kind: RegressMismatch, What: fmt.Sprintf("schema mismatch: baseline %q vs current %q", baseline.Schema, current.Schema)})
		return warns
	}
	if baseline.Quick != current.Quick {
		warns = append(warns, Regression{Kind: RegressMismatch, What: "quick-mode mismatch: baseline and current report are not comparable"})
		return warns
	}
	probeGate := Gate{CIFactor: gate.CIFactor, Frac: allocWarnFraction}
	traceGate := Gate{CIFactor: gate.CIFactor, Frac: traceOffWarnFraction}
	warns = append(warns, missingMetric("bench probe", baseline.Bench != nil, current.Bench != nil)...)
	warns = append(warns, missingMetric("packed bench probe", baseline.BenchPacked != nil, current.BenchPacked != nil)...)
	warns = append(warns, missingMetric("trace-off probe", baseline.BenchTraceOff != nil, current.BenchTraceOff != nil)...)
	warns = append(warns, missingMetric("batched probe", baseline.BenchBatched != nil, current.BenchBatched != nil)...)
	warns = append(warns, missingMetric("throughput block", baseline.Throughput != nil, current.Throughput != nil)...)
	warns = append(warns, compareProbe(baseline.Bench, current.Bench, probeGate)...)
	warns = append(warns, compareProbe(baseline.BenchPacked, current.BenchPacked, probeGate)...)
	warns = append(warns, compareTraceOff(baseline.BenchTraceOff, current.BenchTraceOff, traceGate)...)
	warns = append(warns, compareBatched(baseline.BenchBatched, current.BenchBatched,
		Gate{CIFactor: gate.CIFactor, Frac: batchedWarnFraction})...)
	if baseline.Throughput != nil && current.Throughput != nil {
		b := baseline.Throughput
		slack := gateSlack(b.RoundsPerSec, b.Dist, gate.ciFactor(), gate.frac(throughputWarnFraction))
		switch {
		case b.Workers != current.Throughput.Workers:
			warns = append(warns, Regression{Kind: RegressMismatch, What: fmt.Sprintf(
				"worker-count mismatch (baseline %d, current %d): throughput not compared",
				b.Workers, current.Throughput.Workers)})
		case b.RoundsPerSec > 0 &&
			current.Throughput.RoundsPerSec < b.RoundsPerSec-slack:
			warns = append(warns, Regression{
				What:     fmt.Sprintf("simulator throughput (rounds/sec, %s backend)", current.Backend),
				Kind:     RegressThroughput,
				Baseline: b.RoundsPerSec,
				Current:  current.Throughput.RoundsPerSec,
			})
		}
	}
	base := map[string]*Result{}
	for _, r := range baseline.Experiments {
		base[r.ID] = r
	}
	var ids []string
	for _, r := range current.Experiments {
		ids = append(ids, r.ID)
	}
	sort.Strings(ids)
	cur := map[string]*Result{}
	for _, r := range current.Experiments {
		cur[r.ID] = r
	}
	for _, id := range ids {
		b, ok := base[id]
		if !ok {
			continue // new experiment: nothing to compare
		}
		c := cur[id]
		if b.Sim.Rounds != c.Sim.Rounds {
			warns = append(warns, Regression{
				What:     fmt.Sprintf("%s: model cost changed (simulated rounds)", id),
				Kind:     RegressModelCost,
				Baseline: float64(b.Sim.Rounds), Current: float64(c.Sim.Rounds),
			})
		}
	}
	// A tracked experiment vanishing from the report is itself a
	// coverage regression (renamed, unregistered, or a subset run).
	var missing []string
	for _, r := range baseline.Experiments {
		if _, ok := cur[r.ID]; !ok {
			missing = append(missing, r.ID)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		warns = append(warns, Regression{Kind: RegressMissing, What: fmt.Sprintf(
			"baseline experiments missing from the current report: %s", strings.Join(missing, ", "))})
	}
	return warns
}

// missingMetric distinguishes "metric tracked on one side only" from
// "no regression": a comparison that silently skips a gated metric is
// itself a finding.
func missingMetric(what string, inBase, inCurrent bool) []Regression {
	switch {
	case inBase && !inCurrent:
		return []Regression{{Kind: RegressMissing, What: fmt.Sprintf(
			"%s present in the baseline but missing from the current report: not compared (run with -timing)", what)}}
	case !inBase && inCurrent:
		return []Regression{{Kind: RegressMissing, What: fmt.Sprintf(
			"%s missing from the baseline: running ungated (regenerate the baseline)", what)}}
	}
	return nil
}

// Fallback warn fractions for distribution-free baselines: the
// pre-variance-aware fixed thresholds.
const (
	// throughputWarnFraction is the whole-registry rounds/sec drop
	// beyond which Compare warns when the baseline has no repeat
	// distribution.
	throughputWarnFraction = 0.25
	// allocWarnFraction is the allocs/op rise (plus a 16-alloc absolute
	// slack for runtime noise) beyond which Compare warns. Allocation
	// counts are deterministic up to that noise; a larger rise means a
	// hot path started allocating.
	allocWarnFraction = 0.10
	// traceOffWarnFraction is the trace-off throughput drop beyond which
	// Compare warns: the trace plane's claim is that a nil tracer costs
	// under 1%, so the gate sits exactly there. The probe compares
	// best-of-runs wall times, which keeps scheduler noise out of the 1%
	// margin.
	traceOffWarnFraction = 0.01
	// allocAbsSlack is the absolute allocs/op slack on top of any gate,
	// absorbing runtime bookkeeping noise.
	allocAbsSlack = 16
	// batchedWarnFraction is the batched-probe aggregate rounds/sec drop
	// beyond which Compare warns when the baseline has no distribution.
	// Batched throughput is a macro measurement (scheduler + mailbox +
	// coroutine resume), so it tolerates the same fraction as the
	// whole-registry throughput gate.
	batchedWarnFraction = 0.25
)

// compareProbe checks one allocation probe against its baseline under
// the gate; nil on either side (probes are timing-gated, and absence is
// reported separately as RegressMissing) compares nothing.
func compareProbe(b, c *BenchProbe, gate Gate) []Regression {
	if b == nil || c == nil {
		return nil
	}
	slack := gateSlack(b.AllocsPerOp, b.AllocsDist, gate.ciFactor(), gate.frac(allocWarnFraction))
	switch {
	case b.Name != c.Name || b.N != c.N || b.WordsPerPair != c.WordsPerPair ||
		b.Rounds != c.Rounds || b.Backend != c.Backend:
		return []Regression{{Kind: RegressMismatch, What: fmt.Sprintf(
			"bench-probe shape mismatch (baseline %s/%s n=%d, current %s/%s n=%d): allocs not compared",
			b.Name, b.Backend, b.N, c.Name, c.Backend, c.N)}}
	case c.AllocsPerOp > b.AllocsPerOp+slack+allocAbsSlack:
		return []Regression{{
			What:     fmt.Sprintf("allocs/op on the %s benchmark probe (%s backend)", c.Name, c.Backend),
			Kind:     RegressAllocs,
			Baseline: b.AllocsPerOp,
			Current:  c.AllocsPerOp,
		}}
	}
	return nil
}

// compareTraceOff checks the trace-off throughput probe against its
// baseline under the gate; nil on either side compares nothing. The
// compared values are best-of-runs, with the tolerance widened by the
// baseline's per-run spread when it recorded one.
func compareTraceOff(b, c *BenchProbe, gate Gate) []Regression {
	if b == nil || c == nil {
		return nil
	}
	slack := gateSlack(b.RoundsPerSec, b.RPSDist, gate.ciFactor(), gate.frac(traceOffWarnFraction))
	switch {
	case b.Name != c.Name || b.N != c.N || b.WordsPerPair != c.WordsPerPair ||
		b.Rounds != c.Rounds || b.Backend != c.Backend:
		return []Regression{{Kind: RegressMismatch, What: fmt.Sprintf(
			"trace-off probe shape mismatch (baseline %s/%s n=%d, current %s/%s n=%d): throughput not compared",
			b.Name, b.Backend, b.N, c.Name, c.Backend, c.N)}}
	case b.RoundsPerSec > 0 && c.RoundsPerSec < b.RoundsPerSec-slack:
		return []Regression{{
			What:     fmt.Sprintf("trace-off steady-state throughput (rounds/sec, %s backend)", c.Backend),
			Kind:     RegressTraceOff,
			Baseline: b.RoundsPerSec,
			Current:  c.RoundsPerSec,
		}}
	}
	return nil
}

// compareBatched checks the batched-execution throughput probe against
// its baseline under the gate; nil on either side compares nothing. The
// gated figure is the batched aggregate sim-rounds/sec (best-of-runs);
// the serial reference and speedup ride along in the envelope but are
// not gated separately, since the aggregate figure already moves when
// either side does.
func compareBatched(b, c *BenchProbe, gate Gate) []Regression {
	if b == nil || c == nil {
		return nil
	}
	slack := gateSlack(b.RoundsPerSec, b.RPSDist, gate.ciFactor(), gate.frac(batchedWarnFraction))
	switch {
	case b.Name != c.Name || b.N != c.N || b.WordsPerPair != c.WordsPerPair ||
		b.Rounds != c.Rounds || b.Batch != c.Batch || b.Backend != c.Backend:
		return []Regression{{Kind: RegressMismatch, What: fmt.Sprintf(
			"batched probe shape mismatch (baseline %s/%s n=%d batch=%d, current %s/%s n=%d batch=%d): throughput not compared",
			b.Name, b.Backend, b.N, b.Batch, c.Name, c.Backend, c.N, c.Batch)}}
	case b.RoundsPerSec > 0 && c.RoundsPerSec < b.RoundsPerSec-slack:
		return []Regression{{
			What:     fmt.Sprintf("batched steady-state throughput (sim-rounds/sec, %s backend, batch %d)", c.Backend, c.Batch),
			Kind:     RegressBatched,
			Baseline: b.RoundsPerSec,
			Current:  c.RoundsPerSec,
		}}
	}
	return nil
}

// BatchedRegressions reports batched-throughput regressions beyond the
// given gate — the fatal half of cliquebench's -batch-regress-fail
// gate, mirroring TraceOffRegressions.
func BatchedRegressions(baseline, current *Report, gate Gate) []Regression {
	var out []Regression
	for _, r := range compareBatched(baseline.BenchBatched, current.BenchBatched, gate) {
		if r.Kind == RegressBatched {
			out = append(out, r)
		}
	}
	return out
}

// TraceOffRegressions reports trace-off throughput regressions beyond
// the given gate — the fatal half of cliquebench's -trace-regress-fail
// gate, mirroring AllocRegressions.
func TraceOffRegressions(baseline, current *Report, gate Gate) []Regression {
	var out []Regression
	for _, r := range compareTraceOff(baseline.BenchTraceOff, current.BenchTraceOff, gate) {
		if r.Kind == RegressTraceOff {
			out = append(out, r)
		}
	}
	return out
}

// AllocRegressions reports the allocation-probe regressions beyond the
// given gate — Compare's probe check at a caller-chosen severity.
// cliquebench uses it for the fatal -alloc-regress-fail gate, so a
// fail gate tighter than Compare's own warn gate still bites.
func AllocRegressions(baseline, current *Report, gate Gate) []Regression {
	var out []Regression
	for _, r := range append(compareProbe(baseline.Bench, current.Bench, gate),
		compareProbe(baseline.BenchPacked, current.BenchPacked, gate)...) {
		if r.Kind == RegressAllocs {
			out = append(out, r)
		}
	}
	return out
}
