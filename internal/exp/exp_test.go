package exp_test

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/clique"
	"repro/internal/exp"
	"repro/internal/stats"
)

// TestRegistryComplete pins the registered experiment set: the E1-E13
// map of EXPERIMENTS.md plus the extension and ablation entries, in
// report order.
func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "fig2", "thm2", "thm4", "thm8", "lemma1",
		"thm3", "thm6", "thm7", "thm9", "thm11", "fpt", "mst",
		"mstsketch", "mstsparse", "sub", "ablation"}
	if got := exp.IDs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("IDs() = %v, want %v", got, want)
	}
	for _, id := range want {
		e, ok := exp.Get(id)
		if !ok {
			t.Fatalf("Get(%q) missing", id)
		}
		if e.Artefact == "" || e.Title == "" {
			t.Errorf("%s: empty artefact or title: %+v", id, e)
		}
		if !strings.Contains(exp.Help(), id) {
			t.Errorf("Help() does not mention %q", id)
		}
	}
}

func TestResolve(t *testing.T) {
	if ids, err := exp.Resolve("all"); err != nil || len(ids) != len(exp.IDs()) {
		t.Fatalf("Resolve(all) = %v, %v", ids, err)
	}
	ids, err := exp.Resolve("thm9, fig1,thm9")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"thm9", "fig1"}; !reflect.DeepEqual(ids, want) {
		t.Fatalf("Resolve dedup/order = %v, want %v", ids, want)
	}
	if _, err := exp.Resolve("nope"); err == nil || !strings.Contains(err.Error(), "fig1") {
		t.Fatalf("Resolve(nope) err = %v, want error listing valid ids", err)
	}
}

// TestAllExperimentsQuick runs every registered experiment once at
// quick sizes and sanity-checks the structured Result.
func TestAllExperimentsQuick(t *testing.T) {
	for _, e := range exp.All() {
		t.Run(e.ID, func(t *testing.T) {
			res, tim, err := exp.RunOne(e.ID, exp.Options{Quick: true})
			if err != nil {
				t.Fatal(err)
			}
			if res.ID != e.ID || res.Artefact != e.Artefact || res.Title != e.Title {
				t.Errorf("result header %q/%q/%q does not match registration", res.ID, res.Artefact, res.Title)
			}
			if len(res.Tables)+len(res.Notes) == 0 {
				t.Error("experiment produced neither tables nor notes")
			}
			for _, tab := range res.Tables {
				for i, row := range tab.Rows {
					if len(row) != len(tab.Columns) {
						t.Errorf("table %q row %d: %d cells for %d columns", tab.Name, i, len(row), len(tab.Columns))
					}
				}
			}
			if res.Sim.Runs > 0 && res.Sim.Rounds == 0 {
				t.Errorf("simulated %d runs but counted 0 rounds", res.Sim.Runs)
			}
			if res.Sim.Runs > 0 && tim.SimWall <= 0 {
				t.Errorf("simulated %d runs but measured no wall time", res.Sim.Runs)
			}
			if tim.Rounds != res.Sim.Rounds {
				t.Errorf("timing rounds %d != sim rounds %d", tim.Rounds, res.Sim.Rounds)
			}
		})
	}
}

// TestBackendInvariance pins that the structured results — not just
// the old stats — are identical across execution backends.
func TestBackendInvariance(t *testing.T) {
	ids := []string{"fig2", "thm7", "ablation"}
	var ref []*exp.Result
	for i, backend := range clique.Backends() {
		results, _, err := exp.Run(ids, exp.Options{Backend: backend, Quick: true})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if i == 0 {
			ref = results
			continue
		}
		if !reflect.DeepEqual(results, ref) {
			t.Errorf("%s results diverge from %s", backend, clique.Backends()[0])
		}
	}
}

// TestParallelMatchesSequential is the acceptance criterion of the
// parallel runner: identical bytes whatever the worker count.
func TestParallelMatchesSequential(t *testing.T) {
	ids := exp.IDs()
	seqRes, seqTim, err := exp.Run(ids, exp.Options{Quick: true, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	parRes, parTim, err := exp.Run(ids, exp.Options{Quick: true, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqRes, parRes) {
		t.Error("parallel results differ structurally from sequential results")
	}
	seq := mustJSON(t, exp.NewReport("lockstep", exp.Options{Quick: true}, seqRes, seqTim, false))
	par := mustJSON(t, exp.NewReport("lockstep", exp.Options{Quick: true}, parRes, parTim, false))
	if !bytes.Equal(seq, par) {
		t.Error("parallel JSON differs from sequential JSON")
	}
	if seqTim.Rounds != parTim.Rounds {
		t.Errorf("sequential rounds %d != parallel rounds %d", seqTim.Rounds, parTim.Rounds)
	}
}

// TestJSONRoundTrip demands a stable schema: marshal, unmarshal,
// marshal again, byte-identical — so archived BENCH_*.json files can
// be re-read and re-compared by any future version of the tools.
func TestJSONRoundTrip(t *testing.T) {
	results, tim, err := exp.Run(exp.IDs(), exp.Options{Quick: true, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	report := exp.NewReport("lockstep", exp.Options{Quick: true, Parallel: 4}, results, tim, true)
	first := mustJSON(t, report)
	var decoded exp.Report
	if err := json.Unmarshal(first, &decoded); err != nil {
		t.Fatal(err)
	}
	second := mustJSON(t, &decoded)
	if !bytes.Equal(first, second) {
		t.Errorf("JSON round-trip unstable:\nfirst:  %s\nsecond: %s", first, second)
	}
	if decoded.Schema != exp.SchemaVersion {
		t.Errorf("schema = %q, want %q", decoded.Schema, exp.SchemaVersion)
	}
	if decoded.Throughput == nil || decoded.Throughput.SimRounds != tim.Rounds {
		t.Errorf("throughput block lost in round trip: %+v", decoded.Throughput)
	}
}

func TestCompare(t *testing.T) {
	mk := func(rps float64, workers int, rounds int64) *exp.Report {
		return &exp.Report{
			Schema:  exp.SchemaVersion,
			Backend: "lockstep",
			Experiments: []*exp.Result{
				{ID: "fig1", Sim: exp.SimCost{Runs: 1, Rounds: rounds}},
			},
			Throughput: &exp.Throughput{SimRounds: rounds, WallNS: 1e9, RoundsPerSec: rps, Workers: workers},
		}
	}
	if warns := exp.Compare(mk(100, 1, 50), mk(90, 1, 50), exp.Gate{Frac: 0.25}); len(warns) != 0 {
		t.Errorf("10%% slowdown should pass a 25%% threshold: %v", warns)
	}
	warns := exp.Compare(mk(100, 1, 50), mk(50, 1, 50), exp.Gate{Frac: 0.25})
	if len(warns) != 1 || !strings.Contains(warns[0].String(), "throughput") {
		t.Errorf("50%% slowdown should warn: %v", warns)
	}
	warns = exp.Compare(mk(100, 1, 50), mk(100, 1, 60), exp.Gate{Frac: 0.25})
	if len(warns) != 1 || !strings.Contains(warns[0].String(), "model cost") {
		t.Errorf("model cost change should warn: %v", warns)
	}
	warns = exp.Compare(mk(100, 1, 50), mk(100, 4, 50), exp.Gate{Frac: 0.25})
	if len(warns) != 1 || !strings.Contains(warns[0].String(), "worker-count mismatch") {
		t.Errorf("worker mismatch should warn instead of comparing: %v", warns)
	}
	quick := mk(100, 1, 50)
	quick.Quick = true
	if warns := exp.Compare(quick, mk(100, 1, 50), exp.Gate{Frac: 0.25}); len(warns) != 1 {
		t.Errorf("quick-mode mismatch should warn: %v", warns)
	}
	dropped := mk(100, 1, 50)
	dropped.Experiments = nil
	warns = exp.Compare(mk(100, 1, 50), dropped, exp.Gate{Frac: 0.25})
	if len(warns) != 1 || !strings.Contains(warns[0].String(), "missing from the current report") {
		t.Errorf("dropped experiment should warn: %v", warns)
	}
	zeroBase := mk(100, 1, 0)
	warns = exp.Compare(zeroBase, mk(100, 1, 12), exp.Gate{Frac: 0.25})
	if len(warns) != 1 || strings.Contains(warns[0].String(), "Inf") {
		t.Errorf("zero-baseline cost change must not print Inf: %v", warns)
	}
}

// TestWriteText checks the renderer: aligned columns, the banner, the
// throughput summary line.
func TestWriteText(t *testing.T) {
	report := &exp.Report{
		Schema: exp.SchemaVersion, Backend: "lockstep",
		Experiments: []*exp.Result{{
			ID: "demo", Artefact: "E0 / Demo", Title: "a demo",
			Tables: []exp.Table{{
				Columns: []string{"name", "n", "fit"},
				Rows: [][]exp.Cell{
					{exp.Str("tri"), exp.Int(125), exp.Float(0.3333, "%.3f")},
					{exp.Str("longer-name"), exp.Int(7), exp.Float(1, "%.3f")},
				},
			}},
			Notes: []string{"a closing note"},
		}},
		Throughput: &exp.Throughput{SimRounds: 10, WallNS: 1e9, RoundsPerSec: 10},
	}
	var sb strings.Builder
	report.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{
		"backend: lockstep",
		"===== E0 / Demo: a demo =====",
		"longer-name   7 1.000",
		"tri         125 0.333",
		"a closing note",
		"simulator: 10 rounds in 1s on the lockstep backend (10 rounds/sec)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

// TestCells pins the typed-cell constructors, including the non-finite
// float degradation that keeps Results JSON-marshalable.
func TestCells(t *testing.T) {
	if c := exp.Int(42); c.Kind != exp.KindInt || c.Text != "42" || c.Int != 42 {
		t.Errorf("Int cell = %+v", c)
	}
	if c := exp.Float(0.5, "%.2f"); c.Kind != exp.KindFloat || c.Text != "0.50" {
		t.Errorf("Float cell = %+v", c)
	}
	bad := exp.Float(math.NaN(), "%.3f")
	if bad.Kind != exp.KindString {
		t.Errorf("NaN float should degrade to a string cell: %+v", bad)
	}
	if _, err := json.Marshal(bad); err != nil {
		t.Errorf("degraded NaN cell must marshal: %v", err)
	}
	if c := exp.Bool(true); c.Kind != exp.KindBool || c.Text != "true" {
		t.Errorf("Bool cell = %+v", c)
	}
	if c := exp.Strf("x=%d", 3); c.Kind != exp.KindString || c.Text != "x=3" {
		t.Errorf("Strf cell = %+v", c)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestCompareBenchProbe(t *testing.T) {
	mk := func(allocs float64) *exp.Report {
		return &exp.Report{
			Schema:  exp.SchemaVersion,
			Backend: "lockstep",
			Bench: &exp.BenchProbe{
				Name: "exchange", Backend: "lockstep", N: 64,
				WordsPerPair: 1, Rounds: 256, Runs: 5, AllocsPerOp: allocs,
			},
		}
	}
	if warns := exp.Compare(mk(1000), mk(1050), exp.Gate{Frac: 0.25}); len(warns) != 0 {
		t.Errorf("5%% allocation growth should pass the 10%% gate: %v", warns)
	}
	warns := exp.Compare(mk(1000), mk(2000), exp.Gate{Frac: 0.25})
	if len(warns) != 1 || !strings.Contains(warns[0].String(), "allocs/op") {
		t.Errorf("doubled allocations should warn: %v", warns)
	}
	shifted := mk(1000)
	shifted.Bench.N = 128
	warns = exp.Compare(shifted, mk(5000), exp.Gate{Frac: 0.25})
	if len(warns) != 1 || !strings.Contains(warns[0].String(), "shape mismatch") {
		t.Errorf("probe shape change should warn instead of comparing: %v", warns)
	}
	// A probe tracked by the baseline but absent from the current report
	// is lost gate coverage, not a pass: it must surface as a
	// RegressMissing finding instead of silently reporting "no
	// regression".
	warns = exp.Compare(mk(1000), &exp.Report{Schema: exp.SchemaVersion, Backend: "lockstep"}, exp.Gate{Frac: 0.25})
	if len(warns) != 1 || warns[0].Kind != exp.RegressMissing {
		t.Errorf("vanished probe should be a %q finding: %v", exp.RegressMissing, warns)
	}
	if !strings.Contains(warns[0].String(), "missing from the current report") {
		t.Errorf("missing-probe finding should say which side lost it: %v", warns[0])
	}
	// The mirror image — a probe the baseline never tracked — runs
	// ungated and deserves the same kind of flag.
	warns = exp.Compare(&exp.Report{Schema: exp.SchemaVersion, Backend: "lockstep"}, mk(1000), exp.Gate{Frac: 0.25})
	if len(warns) != 1 || warns[0].Kind != exp.RegressMissing ||
		!strings.Contains(warns[0].String(), "missing from the baseline") {
		t.Errorf("ungated probe should be a %q finding: %v", exp.RegressMissing, warns)
	}
}

// TestCompareVarianceAware pins the CI-based gate: with a repeat
// distribution on the baseline, the warning threshold is
// CIFactor × half-width below the mean instead of a fixed fraction.
func TestCompareVarianceAware(t *testing.T) {
	mk := func(rps float64, dist *stats.Summary) *exp.Report {
		return &exp.Report{
			Schema:  exp.SchemaVersion,
			Backend: "lockstep",
			Throughput: &exp.Throughput{
				SimRounds: 50, WallNS: 1e9, RoundsPerSec: rps, Workers: 1, Dist: dist,
			},
		}
	}
	// Baseline: repeats {98, 100, 102} → mean 100, half-width
	// t(0.975, 2)·2/√3 = 4.30265·1.1547 ≈ 4.968.
	d := stats.Summarize([]float64{98, 100, 102}, 0)
	base := mk(d.Mean, &d)
	hw := d.HalfWidth()

	// Inside 2 half-widths of the mean: no warning, even though a fixed
	// 5% threshold would have fired.
	ok := mk(100-1.5*hw, nil)
	if warns := exp.Compare(base, ok, exp.Gate{CIFactor: 2, Frac: 0.05}); len(warns) != 0 {
		t.Errorf("drop inside 2 CI half-widths warned: %v", warns)
	}
	// Outside 2 half-widths: warning, even though the fixed fallback
	// (25%) would have let it pass.
	bad := mk(100-3*hw, nil)
	warns := exp.Compare(base, bad, exp.Gate{CIFactor: 2, Frac: 0.25})
	if len(warns) != 1 || warns[0].Kind != exp.RegressThroughput {
		t.Errorf("drop beyond 2 CI half-widths should warn: %v", warns)
	}
	// A wider CIFactor tolerates the same drop.
	if warns := exp.Compare(base, bad, exp.Gate{CIFactor: 10, Frac: 0.25}); len(warns) != 0 {
		t.Errorf("drop inside 10 CI half-widths warned: %v", warns)
	}
	// Zero-variance baseline: the minRelSlack floor (2%) keeps noise
	// from alerting, but a real drop still fires.
	flat := stats.Summarize([]float64{100, 100, 100}, 0)
	zbase := mk(100, &flat)
	if warns := exp.Compare(zbase, mk(99, nil), exp.Gate{}); len(warns) != 0 {
		t.Errorf("1%% drop under a zero-variance baseline warned: %v", warns)
	}
	if warns := exp.Compare(zbase, mk(90, nil), exp.Gate{}); len(warns) != 1 {
		t.Errorf("10%% drop under a zero-variance baseline should warn: %v", warns)
	}
}

// TestAllocRegressionsGate pins the fatal alloc gate's variance-aware
// path: the tolerance follows the baseline's recorded spread plus the
// absolute slack.
func TestAllocRegressionsGate(t *testing.T) {
	mk := func(allocs float64, dist *stats.Summary) *exp.Report {
		return &exp.Report{
			Schema:  exp.SchemaVersion,
			Backend: "lockstep",
			Bench: &exp.BenchProbe{
				Name: "exchange", Backend: "lockstep", N: 64,
				WordsPerPair: 1, Rounds: 256, Runs: 5,
				AllocsPerOp: allocs, AllocsDist: dist,
			},
		}
	}
	d := stats.Summarize([]float64{990, 1000, 1010}, 0)
	base := mk(d.Mean, &d)
	hw := d.HalfWidth()
	within := mk(1000+1.5*hw, nil)
	if fatal := exp.AllocRegressions(base, within, exp.Gate{CIFactor: 2}); len(fatal) != 0 {
		t.Errorf("rise inside 2 CI half-widths failed the gate: %v", fatal)
	}
	// Beyond 2 half-widths plus the 16-alloc absolute slack: fatal.
	beyond := mk(1000+2*hw+17+0.5*hw, nil)
	if fatal := exp.AllocRegressions(base, beyond, exp.Gate{CIFactor: 2}); len(fatal) != 1 {
		t.Errorf("rise beyond the CI gate passed: %v", fatal)
	}
	// Distribution-free baseline falls back to the fraction.
	nb := mk(1000, nil)
	if fatal := exp.AllocRegressions(nb, mk(1300, nil), exp.Gate{Frac: 0.25}); len(fatal) != 1 {
		t.Errorf("30%% rise passed the 25%% fallback gate: %v", fatal)
	}
	if fatal := exp.AllocRegressions(nb, mk(1200, nil), exp.Gate{Frac: 0.25}); len(fatal) != 0 {
		t.Errorf("20%% rise failed the 25%% fallback gate: %v", fatal)
	}
}

func TestComparePackedProbe(t *testing.T) {
	mk := func(allocs float64) *exp.Report {
		return &exp.Report{
			Schema:  exp.SchemaVersion,
			Backend: "lockstep",
			BenchPacked: &exp.BenchProbe{
				Name: "packed-mm", Backend: "lockstep", N: 64,
				WordsPerPair: 1, Rounds: 256, Runs: 5, AllocsPerOp: allocs,
			},
		}
	}
	if warns := exp.Compare(mk(1000), mk(1050), exp.Gate{Frac: 0.25}); len(warns) != 0 {
		t.Errorf("5%% allocation growth should pass the 10%% gate: %v", warns)
	}
	warns := exp.Compare(mk(1000), mk(2000), exp.Gate{Frac: 0.25})
	if len(warns) != 1 || !strings.Contains(warns[0].String(), "packed-mm") {
		t.Errorf("doubled packed-probe allocations should warn: %v", warns)
	}
	if warns[0].Kind != exp.RegressAllocs {
		t.Errorf("allocation regression kind = %q, want %q", warns[0].Kind, exp.RegressAllocs)
	}
}

func TestMeasurePackedProbe(t *testing.T) {
	probe, err := exp.MeasurePackedProbe("lockstep")
	if err != nil {
		t.Fatal(err)
	}
	if probe.Name != "packed-mm" || probe.N != 64 || probe.Rounds != 256 {
		t.Errorf("unexpected probe shape: %+v", probe)
	}
	if probe.AllocsPerOp <= 0 {
		t.Errorf("allocs/op = %v, want > 0", probe.AllocsPerOp)
	}
	// The packed product allocates its broadcast table from the pooled
	// scratch and one output row per call; anything in the 10^5 range
	// means the pooling came unhooked.
	if probe.AllocsPerOp > 100_000 {
		t.Errorf("allocs/op = %v; the packed boolean-MM path has regressed badly", probe.AllocsPerOp)
	}
}

func TestMeasureBenchProbe(t *testing.T) {
	probe, err := exp.MeasureBenchProbe("lockstep")
	if err != nil {
		t.Fatal(err)
	}
	if probe.Name != "exchange" || probe.N != 64 || probe.Rounds != 256 {
		t.Errorf("unexpected probe shape: %+v", probe)
	}
	if probe.AllocsPerOp <= 0 {
		t.Errorf("allocs/op = %v, want > 0", probe.AllocsPerOp)
	}
	// The whole point of the batched collective plane: the canonical
	// exchange (64 nodes x 256 rounds of one-word gossip) must stay
	// around a thousand allocations per run, not the ~10^6 the
	// hand-rolled per-round tables used to cost.
	if probe.AllocsPerOp > 100_000 {
		t.Errorf("allocs/op = %v; the batched exchange path has regressed badly", probe.AllocsPerOp)
	}
	if _, err := exp.MeasureBenchProbe("no-such-backend"); err == nil {
		t.Error("unknown backend accepted")
	}
}
