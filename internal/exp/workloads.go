package exp

import (
	"fmt"

	"repro/internal/clique"
	"repro/internal/domset"
	"repro/internal/gather"
	"repro/internal/graph"
	"repro/internal/matmul"
	"repro/internal/paths"
	"repro/internal/subgraph"
	"repro/internal/vcover"
)

// Workload is one simulated algorithm on a generated instance,
// parameterised by n. The Figure 1 experiment, the root BenchmarkFig1
// benchmark families, and any future caller all draw from the same
// slice, so the report and the benchmarks cannot drift apart.
type Workload struct {
	// Key is the fine-grained map key ("" when the problem has no
	// Figure 1 entry to check against).
	Key string
	// Name is the display name used in the E1 table and as the
	// benchmark sub-name.
	Name string
	// WPP is the per-pair word budget the workload is run with.
	WPP int
	// Make builds the instance for a given n and returns the node
	// program. Instance generation is deterministic in n.
	Make func(n int) clique.NodeFunc
}

// Fig1Workloads returns the E1 probe set in table order.
func Fig1Workloads() []Workload {
	return []Workload{
		{"semiring-mm", "Boolean MM (3D)", 8, func(n int) clique.NodeFunc {
			g := graph.Gnp(n, 0.5, uint64(n))
			return func(nd *clique.Node) {
				row := matmul.AdjacencyRow(g, nd.ID())
				matmul.Mul3D(nd, matmul.Boolean{}, row, row)
			}
		}},
		{"", "Boolean MM (naive)", 8, func(n int) clique.NodeFunc {
			g := graph.Gnp(n, 0.5, uint64(n))
			return func(nd *clique.Node) {
				row := matmul.AdjacencyRow(g, nd.ID())
				matmul.MulNaive(nd, matmul.Boolean{}, row, row)
			}
		}},
		{"apsp-w-ud", "APSP w/ud (min,+ squaring)", 8, func(n int) clique.NodeFunc {
			g := graph.GnpWeighted(n, 0.3, 40, false, uint64(n))
			return func(nd *clique.Node) {
				paths.APSP(nd, g.W[nd.ID()], matmul.Mul3D)
			}
		}},
		{"triangle", "Triangle detection", 8, func(n int) clique.NodeFunc {
			g := graph.Gnp(n, 0.2, uint64(n))
			return func(nd *clique.Node) {
				subgraph.DetectTriangle(nd, g.Row(nd.ID()))
			}
		}},
		{"k-is", "3-IS detection", 8, func(n int) clique.NodeFunc {
			g := graph.Gnp(n, 0.6, uint64(n))
			return func(nd *clique.Node) {
				subgraph.DetectIndependentSet(nd, g.Row(nd.ID()), 3)
			}
		}},
		{"k-ds", "3-DS (Theorem 9)", 8, func(n int) clique.NodeFunc {
			g, _ := graph.PlantedDominatingSet(n, 3, 0.1, uint64(n))
			return func(nd *clique.Node) {
				domset.Find(nd, g.Row(nd.ID()), 3)
			}
		}},
		{"k-vc", "3-VC (Theorem 11)", 1, func(n int) clique.NodeFunc {
			g, _ := graph.PlantedVertexCover(n, 3, 0.4, uint64(n))
			return func(nd *clique.Node) {
				vcover.Find(nd, g.Row(nd.ID()), 3)
			}
		}},
		{"maxis", "MaxIS (full gather)", 1, func(n int) clique.NodeFunc {
			g := graph.Gnp(n, 0.92, uint64(n)) // dense: keeps alpha tiny, local solve fast
			return func(nd *clique.Node) {
				gather.MaxIndependentSetSize(nd, g.Row(nd.ID()))
			}
		}},
	}
}

// Fig1Workload looks one probe up by display name, for benchmark
// families that benchmark a single problem.
func Fig1Workload(name string) (Workload, error) {
	for _, w := range Fig1Workloads() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("exp: no Figure 1 workload named %q", name)
}
