package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// WriteJSON serialises the report in the canonical cliquebench/v1
// wire form: two-space indent, trailing newline. Every producer of the
// envelope (cliquebench -format=json, the cliqued service) must go
// through here so their bytes can never diverge.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the report in the human-readable cliquebench
// format: a banner per experiment, aligned tables, notes, and (when a
// Throughput is attached) the trailing simulator summary line.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "backend: %s\n", r.Backend)
	for _, res := range r.Experiments {
		res.WriteText(w)
	}
	if t := r.Throughput; t != nil && t.SimRounds > 0 && t.WallNS > 0 {
		fmt.Fprintf(w, "\nsimulator: %d rounds in %v on the %s backend (%.0f rounds/sec)\n",
			t.SimRounds, time.Duration(t.WallNS).Round(time.Microsecond), r.Backend, t.RoundsPerSec)
	}
}

// WriteText renders one experiment as in the classic report.
func (res *Result) WriteText(w io.Writer) {
	fmt.Fprintf(w, "\n===== %s: %s =====\n", res.Artefact, res.Title)
	for _, t := range res.Tables {
		if t.Name != "" {
			fmt.Fprintf(w, "%s:\n", t.Name)
		}
		t.writeText(w)
	}
	for _, n := range res.Notes {
		fmt.Fprintln(w, n)
	}
}

// writeText prints the table with each column padded to its widest
// cell. String columns are left-aligned, numeric and boolean columns
// right-aligned, matching the old hand-written printf layouts.
func (t *Table) writeText(w io.Writer) {
	widths := make([]int, len(t.Columns))
	leftAlign := make([]bool, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i >= len(widths) {
				break
			}
			if len(cell.Text) > widths[i] {
				widths[i] = len(cell.Text)
			}
			if cell.Kind == KindString {
				leftAlign[i] = true
			}
		}
	}
	var sb strings.Builder
	writeRow := func(texts func(i int) string) {
		sb.Reset()
		for i := range t.Columns {
			if i > 0 {
				sb.WriteByte(' ')
			}
			text := texts(i)
			pad := widths[i] - len(text)
			if pad < 0 {
				pad = 0
			}
			if leftAlign[i] {
				sb.WriteString(text)
				if i < len(t.Columns)-1 {
					sb.WriteString(strings.Repeat(" ", pad))
				}
			} else {
				sb.WriteString(strings.Repeat(" ", pad))
				sb.WriteString(text)
			}
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	writeRow(func(i int) string { return t.Columns[i] })
	for _, row := range t.Rows {
		r := row
		writeRow(func(i int) string {
			if i < len(r) {
				return r[i].Text
			}
			return ""
		})
	}
}
