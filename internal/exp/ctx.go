package exp

import (
	"context"
	"fmt"
	"time"

	"repro/internal/clique"
	"repro/internal/graph"
	"repro/internal/nondet"
	"repro/internal/trace"
)

// Progress is one liveness snapshot, delivered to Options.Progress
// after every simulated run. SimCost is the experiment's cumulative
// model cost; the wall-clock fields add the observer's view: total
// simulated wall time so far and the just-finished run's throughput
// (current, not a lifetime average — a cold first run does not dilute
// the steady state).
type Progress struct {
	SimCost
	// WallNS is cumulative wall-clock spent inside simulated runs.
	WallNS int64 `json:"wall_ns"`
	// RoundsPerSec is the just-finished run's rounds over its own wall
	// time; 0 when the run failed or was too fast to time.
	RoundsPerSec float64 `json:"rounds_per_sec"`
}

// Ctx is the handle an experiment body runs against. It routes every
// simulated execution through counted wrappers so the per-experiment
// SimCost (and the process throughput report built from it) covers the
// whole run, and it accumulates the Result being built. A Ctx is used
// by exactly one experiment on one goroutine; the parallel runner gives
// each experiment its own, which is what makes `-parallel` sound where
// the old per-process simTime/simRounds globals were not.
type Ctx struct {
	// Backend selects the execution engine for every simulated run.
	Backend string
	// Quick shrinks instance sizes so the full registry runs in
	// seconds; used by tests and benchmark smoke jobs. Experiment
	// bodies consult it through Sizes.
	Quick bool

	// ctx cancels the experiment between simulated runs; nil means
	// never (direct Ctx construction in tests). progress, when set, is
	// told a Progress snapshot after every simulated run.
	ctx      context.Context
	progress func(Progress)

	// tracing enables per-run trace collection: every Run/Verify gets a
	// fresh labelled collector and the finished RunTraces accumulate in
	// traces (runIdx labels them in execution order).
	tracing bool
	traces  []*trace.RunTrace
	runIdx  int

	res      *Result
	simWall  time.Duration
	curTable int
}

// checkCancelled aborts the experiment when its context has been
// cancelled; Run and Verify call it before starting a simulated run so
// cancellation takes effect at the next run boundary.
func (c *Ctx) checkCancelled() {
	if c.ctx != nil {
		if err := c.ctx.Err(); err != nil {
			panic(failure{fmt.Errorf("exp %s: %w", c.res.ID, err)})
		}
	}
}

// Sizes returns full in normal mode and quick in Quick mode; bodies
// use it to pick instance sizes without branching inline.
func (c *Ctx) Sizes(full, quick []int) []int {
	if c.Quick {
		return quick
	}
	return full
}

// failure aborts an experiment body; the runner recovers it.
type failure struct{ err error }

// Failf aborts the experiment with an error, e.g. when a simulated run
// returns one. The registry runner turns it into RunOne's error.
func (c *Ctx) Failf(format string, args ...any) {
	panic(failure{fmt.Errorf("exp %s: %s", c.res.ID, fmt.Sprintf(format, args...))})
}

// Run executes one simulated run on the configured backend and folds
// its model cost into the experiment's SimCost. Every simulation an
// experiment makes must go through here or Verify so the rounds/sec
// summary covers the whole report.
func (c *Ctx) Run(cfg clique.Config, f clique.NodeFunc) (*clique.Result, error) {
	c.checkCancelled()
	cfg.Backend = c.Backend
	col := c.startTrace(&cfg)
	start := time.Now()
	res, err := clique.Run(cfg, f)
	wall := time.Since(start)
	c.simWall += wall
	c.res.Sim.Runs++
	rounds := 0
	if err == nil {
		rounds = res.Stats.Rounds
		c.res.Sim.Rounds += int64(rounds)
		c.res.Sim.Words += res.Stats.WordsSent
	}
	c.endTrace(col)
	c.reportProgress(rounds, wall)
	return res, err
}

// RunBatch executes len(programs) independent runs of the same shape
// as one batched engine execution (clique.RunBatch) and folds each
// run's model cost into the experiment's SimCost exactly as the
// equivalent serial Run loop would: runs are accounted in order, and on
// the first failing run accounting stops (the failing run counts as a
// run without rounds, later runs are not counted) so the deterministic
// Result envelope is bit-identical to the serial loop that stops at the
// first error. Traced experiments need one collector per run, so they
// fall back to that serial loop outright.
func (c *Ctx) RunBatch(cfg clique.Config, programs []clique.NodeFunc) ([]*clique.Result, error) {
	if c.tracing {
		results := make([]*clique.Result, 0, len(programs))
		for _, f := range programs {
			res, err := c.Run(cfg, f)
			if err != nil {
				return nil, err
			}
			results = append(results, res)
		}
		return results, nil
	}
	c.checkCancelled()
	cfg.Backend = c.Backend
	start := time.Now()
	results, errs := clique.RunBatch(cfg, programs)
	wall := time.Since(start)
	c.simWall += wall
	// Attribute the batch wall to runs by their share of the batch's
	// rounds, so per-run Progress throughput stays meaningful.
	var totalRounds int64
	for r := range results {
		if errs[r] == nil {
			totalRounds += int64(results[r].Stats.Rounds)
		}
	}
	for r := range results {
		c.res.Sim.Runs++
		if errs[r] != nil {
			c.reportProgress(0, 0)
			return nil, errs[r]
		}
		rounds := results[r].Stats.Rounds
		c.res.Sim.Rounds += int64(rounds)
		c.res.Sim.Words += results[r].Stats.WordsSent
		runWall := time.Duration(0)
		if totalRounds > 0 {
			runWall = time.Duration(int64(wall) * int64(rounds) / totalRounds)
		}
		c.reportProgress(rounds, runWall)
	}
	return results, nil
}

// Record folds an already-completed run's model cost into the
// experiment's SimCost, for callers that executed the run outside the
// Ctx: the serving daemon's batch coalescer runs whole groups of jobs
// through one clique.RunBatch and then builds each job's envelope
// through its own Ctx afterwards. wall is the run's attributed share of
// the batch's wall clock. The Result built from a recorded run is
// identical to the one Run would have built executing it serially,
// because batched per-run results are bit-identical to serial ones.
func (c *Ctx) Record(res *clique.Result, wall time.Duration) {
	c.simWall += wall
	c.res.Sim.Runs++
	c.res.Sim.Rounds += int64(res.Stats.Rounds)
	c.res.Sim.Words += res.Stats.WordsSent
	c.reportProgress(res.Stats.Rounds, wall)
}

// RoundsBatch is the batched form of Rounds: one batched execution of
// same-shape programs, returning each run's round count and aborting
// the experiment on the first error.
func (c *Ctx) RoundsBatch(n, wpp int, programs []clique.NodeFunc) []int {
	results, err := c.RunBatch(clique.Config{N: n, WordsPerPair: wpp}, programs)
	if err != nil {
		c.Failf("%v", err)
	}
	rounds := make([]int, len(results))
	for i, res := range results {
		rounds[i] = res.Stats.Rounds
	}
	return rounds
}

// startTrace attaches a fresh labelled collector to cfg on traced
// experiments; it returns nil (and leaves cfg alone) otherwise.
func (c *Ctx) startTrace(cfg *clique.Config) *trace.Collector {
	if !c.tracing {
		return nil
	}
	wpp := cfg.WordsPerPair
	if wpp == 0 {
		wpp = 1
	}
	col := trace.NewCollector(
		fmt.Sprintf("run %d (n=%d, wpp=%d)", c.runIdx, cfg.N, wpp), cfg.N, wpp)
	col.SetBackend(c.Backend)
	cfg.Tracer = col
	c.runIdx++
	return col
}

// endTrace seals a run's collector and banks its RunTrace.
func (c *Ctx) endTrace(col *trace.Collector) {
	if col != nil {
		c.traces = append(c.traces, col.Finish())
	}
}

// reportProgress delivers one Progress snapshot; rounds and wall are
// the just-finished run's.
func (c *Ctx) reportProgress(rounds int, wall time.Duration) {
	if c.progress == nil {
		return
	}
	rps := 0.0
	if rounds > 0 && wall > 0 {
		rps = float64(rounds) / wall.Seconds()
	}
	c.progress(Progress{SimCost: c.res.Sim, WallNS: c.simWall.Nanoseconds(), RoundsPerSec: rps})
}

// Rounds runs f on an n-node clique and returns the round count,
// aborting the experiment on error.
func (c *Ctx) Rounds(n, wpp int, f clique.NodeFunc) int {
	res, err := c.Run(clique.Config{N: n, WordsPerPair: wpp}, f)
	if err != nil {
		c.Failf("%v", err)
	}
	return res.Stats.Rounds
}

// Verify is Run for nondeterministic verifier executions.
func (c *Ctx) Verify(cfg clique.Config, g *graph.Graph, alg nondet.Algorithm, z nondet.Labelling) (nondet.Verdict, error) {
	c.checkCancelled()
	cfg.Backend = c.Backend
	if cfg.N == 0 {
		cfg.N = g.N
	}
	col := c.startTrace(&cfg)
	start := time.Now()
	v, err := nondet.RunVerifier(cfg, g, alg, z)
	wall := time.Since(start)
	c.simWall += wall
	c.res.Sim.Runs++
	rounds := 0
	if err == nil {
		rounds = v.Result.Stats.Rounds
		c.res.Sim.Rounds += int64(rounds)
		c.res.Sim.Words += v.Result.Stats.WordsSent
	}
	c.endTrace(col)
	c.reportProgress(rounds, wall)
	return v, err
}

// Table starts a new typed table and returns a builder for its rows.
func (c *Ctx) Table(name string, columns ...string) *TableBuilder {
	c.res.Tables = append(c.res.Tables, Table{Name: name, Columns: columns})
	return &TableBuilder{c: c, idx: len(c.res.Tables) - 1}
}

// Notef appends a free-form report line after the tables.
func (c *Ctx) Notef(format string, args ...any) {
	c.res.Notes = append(c.res.Notes, fmt.Sprintf(format, args...))
}

// Metric records one scalar finding.
func (c *Ctx) Metric(name string, value float64, unit string) {
	c.res.Metrics = append(c.res.Metrics, Metric{Name: name, Value: value, Unit: unit})
}

// TableBuilder appends rows to one table of the Result under
// construction.
type TableBuilder struct {
	c   *Ctx
	idx int
}

// Row appends one row; it must have as many cells as the table has
// columns.
func (t *TableBuilder) Row(cells ...Cell) {
	tab := &t.c.res.Tables[t.idx]
	if len(cells) != len(tab.Columns) {
		t.c.Failf("table %q: row has %d cells, want %d", tab.Name, len(cells), len(tab.Columns))
	}
	tab.Rows = append(tab.Rows, cells)
}
