package exp

import (
	"context"
	"fmt"
	"time"

	"repro/internal/clique"
	"repro/internal/graph"
	"repro/internal/nondet"
)

// Ctx is the handle an experiment body runs against. It routes every
// simulated execution through counted wrappers so the per-experiment
// SimCost (and the process throughput report built from it) covers the
// whole run, and it accumulates the Result being built. A Ctx is used
// by exactly one experiment on one goroutine; the parallel runner gives
// each experiment its own, which is what makes `-parallel` sound where
// the old per-process simTime/simRounds globals were not.
type Ctx struct {
	// Backend selects the execution engine for every simulated run.
	Backend string
	// Quick shrinks instance sizes so the full registry runs in
	// seconds; used by tests and benchmark smoke jobs. Experiment
	// bodies consult it through Sizes.
	Quick bool

	// ctx cancels the experiment between simulated runs; nil means
	// never (direct Ctx construction in tests). progress, when set, is
	// told the cumulative SimCost after every simulated run.
	ctx      context.Context
	progress func(SimCost)

	res      *Result
	simWall  time.Duration
	curTable int
}

// checkCancelled aborts the experiment when its context has been
// cancelled; Run and Verify call it before starting a simulated run so
// cancellation takes effect at the next run boundary.
func (c *Ctx) checkCancelled() {
	if c.ctx != nil {
		if err := c.ctx.Err(); err != nil {
			panic(failure{fmt.Errorf("exp %s: %w", c.res.ID, err)})
		}
	}
}

// Sizes returns full in normal mode and quick in Quick mode; bodies
// use it to pick instance sizes without branching inline.
func (c *Ctx) Sizes(full, quick []int) []int {
	if c.Quick {
		return quick
	}
	return full
}

// failure aborts an experiment body; the runner recovers it.
type failure struct{ err error }

// Failf aborts the experiment with an error, e.g. when a simulated run
// returns one. The registry runner turns it into RunOne's error.
func (c *Ctx) Failf(format string, args ...any) {
	panic(failure{fmt.Errorf("exp %s: %s", c.res.ID, fmt.Sprintf(format, args...))})
}

// Run executes one simulated run on the configured backend and folds
// its model cost into the experiment's SimCost. Every simulation an
// experiment makes must go through here or Verify so the rounds/sec
// summary covers the whole report.
func (c *Ctx) Run(cfg clique.Config, f clique.NodeFunc) (*clique.Result, error) {
	c.checkCancelled()
	cfg.Backend = c.Backend
	start := time.Now()
	res, err := clique.Run(cfg, f)
	c.simWall += time.Since(start)
	c.res.Sim.Runs++
	if err == nil {
		c.res.Sim.Rounds += int64(res.Stats.Rounds)
		c.res.Sim.Words += res.Stats.WordsSent
	}
	if c.progress != nil {
		c.progress(c.res.Sim)
	}
	return res, err
}

// Rounds runs f on an n-node clique and returns the round count,
// aborting the experiment on error.
func (c *Ctx) Rounds(n, wpp int, f clique.NodeFunc) int {
	res, err := c.Run(clique.Config{N: n, WordsPerPair: wpp}, f)
	if err != nil {
		c.Failf("%v", err)
	}
	return res.Stats.Rounds
}

// Verify is Run for nondeterministic verifier executions.
func (c *Ctx) Verify(cfg clique.Config, g *graph.Graph, alg nondet.Algorithm, z nondet.Labelling) (nondet.Verdict, error) {
	c.checkCancelled()
	cfg.Backend = c.Backend
	start := time.Now()
	v, err := nondet.RunVerifier(cfg, g, alg, z)
	c.simWall += time.Since(start)
	c.res.Sim.Runs++
	if err == nil {
		c.res.Sim.Rounds += int64(v.Result.Stats.Rounds)
		c.res.Sim.Words += v.Result.Stats.WordsSent
	}
	if c.progress != nil {
		c.progress(c.res.Sim)
	}
	return v, err
}

// Table starts a new typed table and returns a builder for its rows.
func (c *Ctx) Table(name string, columns ...string) *TableBuilder {
	c.res.Tables = append(c.res.Tables, Table{Name: name, Columns: columns})
	return &TableBuilder{c: c, idx: len(c.res.Tables) - 1}
}

// Notef appends a free-form report line after the tables.
func (c *Ctx) Notef(format string, args ...any) {
	c.res.Notes = append(c.res.Notes, fmt.Sprintf(format, args...))
}

// Metric records one scalar finding.
func (c *Ctx) Metric(name string, value float64, unit string) {
	c.res.Metrics = append(c.res.Metrics, Metric{Name: name, Value: value, Unit: unit})
}

// TableBuilder appends rows to one table of the Result under
// construction.
type TableBuilder struct {
	c   *Ctx
	idx int
}

// Row appends one row; it must have as many cells as the table has
// columns.
func (t *TableBuilder) Row(cells ...Cell) {
	tab := &t.c.res.Tables[t.idx]
	if len(cells) != len(tab.Columns) {
		t.c.Failf("table %q: row has %d cells, want %d", tab.Name, len(cells), len(tab.Columns))
	}
	tab.Rows = append(tab.Rows, cells)
}
