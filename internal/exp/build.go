package exp

import (
	"runtime"
	"runtime/debug"
	"sync"

	"repro/internal/clique"
)

// BuildInfo is the attribution block carried by every envelope and by
// cliqued's /healthz: which build of the simulator produced this
// artefact. All fields are deterministic for a fixed binary, so
// attaching the block keeps envelopes bit-identical run to run.
type BuildInfo struct {
	// Module is the main module path.
	Module string `json:"module"`
	// Version is the module version ("(devel)" for source builds).
	Version string `json:"version,omitempty"`
	// Revision and Dirty come from the VCS stamp, when the binary was
	// built inside a checkout.
	Revision string `json:"revision,omitempty"`
	Dirty    bool   `json:"dirty,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Backends lists the available execution backends, sorted.
	Backends []string `json:"backends"`
}

// Build returns the running binary's attribution block, computed once.
var Build = sync.OnceValue(func() *BuildInfo {
	b := &BuildInfo{
		GoVersion: runtime.Version(),
		Backends:  clique.Backends(),
	}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.Module = info.Main.Path
	b.Version = info.Main.Version
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.modified":
			b.Dirty = s.Value == "true"
		}
	}
	return b
})
