package matmul

import (
	"repro/internal/bitvec"
	"repro/internal/clique"
	"repro/internal/comm"
	"repro/internal/trace"
)

// The packed boolean plane: MulNaive and Mul3D dispatch here when the
// semiring is Boolean, representing rows as bitvec.Row (64 entries per
// word) and moving them over the packed collectives. The wire cost
// drops from n words per row to ceil(n/64), and the local inner loops
// become word-parallel ORs instead of per-entry semiring calls. The
// unpacked code paths remain the implementation for every other
// semiring — and, via any non-Boolean semiring with boolean semantics,
// the reference the equivalence tests compare against.

// MulNaiveBits is the packed form of MulNaive over the Boolean
// semiring: every node broadcasts its packed B row, all nodes multiply
// locally with the word-parallel kernel.
// Rounds: ceil(ceil(n/64) / wordsPerPair).
func MulNaiveBits(nd clique.Endpoint, aRow, bRow bitvec.Row) bitvec.Row {
	n := nd.N()
	me := nd.ID()
	w := bitvec.Words(n)
	if len(aRow) != w || len(bRow) != w {
		nd.Fail("matmul: packed rows have %d, %d words; want %d", len(aRow), len(bRow), w)
	}
	out := bitvec.NewRow(n)

	if w <= nd.WordsPerPair() {
		// Single-round fast path: every packed row fits one chunk, so
		// the product reads straight out of the engine's receive views —
		// no table materialisation, no copies, no scratch. The views are
		// consumed before the next Tick, as the engine requires.
		nd.BroadcastWords(bRow)
		nd.Tick()
		aRow.Each(func(k int) {
			if k == me {
				out.Or(bRow)
				return
			}
			got := bitvec.Row(nd.Recv(k))
			if len(got) != w {
				nd.Fail("matmul: packed row from %d has %d words, want %d", k, len(got), w)
			}
			out.Or(got)
		})
		return out
	}

	// Chunked path: the broadcast table lives in one pooled buffer
	// (n rows of w words), received in place through the appending
	// collective.
	buf := bitvec.GetWords(n * w)
	table := make([]bitvec.Row, n)
	for i := range table {
		table[i] = bitvec.Row(buf[i*w : i*w : (i+1)*w])
	}
	table = comm.BroadcastBitRowsInto(nd, bRow, n, table)
	aRow.Each(func(k int) { out.Or(table[k]) })
	bitvec.PutWords(buf)
	return out
}

// Mul3DBits is the packed form of Mul3D over the Boolean semiring: the
// same 3D decomposition of Censor-Hillel et al. [10] — node (i, j, k)
// of the q^3 cube multiplies blocks A[P_i][P_k] x B[P_k][P_j], the
// k-dimension is OR-reduced, results return to their row owners — but
// every exchange ships bit-packed row segments over fixed-width
// personalised collectives instead of routing per-entry packets. Each
// of the three phases is perfectly balanced (at most one A and one B
// segment per ordered pair in phase 1, one block-row chunk in phase 2,
// one result segment in phase 3), so comm.AllToAllFixed applies and
// the whole product costs
//
//	ceil(2 ws / wpp) + ceil(chunk ws / wpp) + ceil(ws / wpp)
//
// rounds, where ws = ceil(seg/64) words per segment — O(n^{1/3}/64)
// against the unpacked schedule's O(n^{1/3}) entries.
func Mul3DBits(nd clique.Endpoint, aRow, bRow bitvec.Row) bitvec.Row {
	n := nd.N()
	me := nd.ID()
	w := bitvec.Words(n)
	if len(aRow) != w || len(bRow) != w {
		nd.Fail("matmul: packed rows have %d, %d words; want %d", len(aRow), len(bRow), w)
	}
	q := cube(n)
	p := newPart(n, q)
	seg := p.size
	ws := bitvec.Words(seg)
	myPart := p.of(me)

	isWorker := me < q*q*q
	var ti, tj, tk int
	if isWorker {
		ti, tj, tk = tripleOf(me, q)
	}

	// Phase 1: segment distribution. A[me][P_t] goes to nodes
	// (part(me), x, t) for all x; B[me][P_t] goes to (x, t, part(me)).
	// Each ordered pair carries at most one A and one B segment, so the
	// per-link payload is a fixed [A segment | B segment] record.
	endPhase := trace.Phase(nd, "mul3d/distribute")
	sendBuf := bitvec.GetWords(n * 2 * ws)
	queues := make([][]uint64, n)
	for v := range queues {
		queues[v] = sendBuf[v*2*ws : (v+1)*2*ws]
	}
	segScratch := bitvec.GetRow(seg)
	for t := 0; t < q; t++ {
		lo, hi := p.bounds(t)
		aRow.ExtractInto(segScratch, lo, hi)
		for x := 0; x < q; x++ {
			copy(queues[idOf(myPart, x, t, q)][:ws], segScratch)
		}
		bRow.ExtractInto(segScratch, lo, hi)
		for x := 0; x < q; x++ {
			copy(queues[idOf(x, t, myPart, q)][ws:], segScratch)
		}
	}
	in := comm.AllToAllFixed(nd, queues, 2*ws)
	bitvec.PutRow(segScratch)
	bitvec.PutWords(sendBuf)
	endPhase()

	// Assemble blocks and multiply locally, word-parallel. aBlk holds
	// rows P_i over columns P_k; bBlk holds rows P_k over columns P_j.
	chunk := (seg + q - 1) / q
	var partial *bitvec.Matrix
	if isWorker {
		aBlk := bitvec.GetMatrix(seg, seg)
		bBlk := bitvec.GetMatrix(seg, seg)
		iLo, _ := p.bounds(ti)
		kLo, _ := p.bounds(tk)
		for src := 0; src < n; src++ {
			st := p.of(src)
			if st == ti {
				copy(aBlk.Row(src-iLo), in[src][:ws])
			}
			if st == tk {
				copy(bBlk.Row(src-kLo), in[src][ws:])
			}
		}
		partial = bitvec.GetMatrix(seg, seg)
		bitvec.MulInto(aBlk, bBlk, partial)
		bitvec.PutMatrix(bBlk)
		bitvec.PutMatrix(aBlk)
	}

	endPhase = trace.Phase(nd, "mul3d/reduce")
	// Phase 2: OR-reduce over the k dimension. Within the (i, j, *)
	// fibre, block-row chunk c is combined at node (i, j, c); every
	// fibre link carries exactly chunk rows (zero-padded at the tail).
	redBuf := bitvec.GetWords(n * chunk * ws)
	queues = make([][]uint64, n)
	for v := range queues {
		queues[v] = redBuf[v*chunk*ws : (v+1)*chunk*ws]
	}
	if isWorker {
		for c := 0; c < q; c++ {
			dst := queues[idOf(ti, tj, c, q)]
			for r := 0; r < chunk; r++ {
				if lr := c*chunk + r; lr < seg {
					copy(dst[r*ws:(r+1)*ws], partial.Row(lr))
				}
			}
		}
		bitvec.PutMatrix(partial)
	}
	redIn := comm.AllToAllFixed(nd, queues, chunk*ws)
	bitvec.PutWords(redBuf)

	var sum *bitvec.Matrix
	if isWorker {
		sum = bitvec.GetMatrix(chunk, seg)
		for src := 0; src < q*q*q && src < n; src++ {
			si, sj, _ := tripleOf(src, q)
			if si != ti || sj != tj {
				continue
			}
			stream := redIn[src]
			for r := 0; r < chunk; r++ {
				sum.Row(r).Or(bitvec.Row(stream[r*ws : (r+1)*ws]))
			}
		}
	}

	endPhase()

	// Phase 3: result segments to row owners. Node (i, j, k) exclusively
	// holds C rows iLo + k*chunk + r over columns P_j; each goes to its
	// global row owner as one ws-word segment.
	endPhase = trace.Phase(nd, "mul3d/return")
	outBuf := bitvec.GetWords(n * ws)
	queues = make([][]uint64, n)
	for v := range queues {
		queues[v] = outBuf[v*ws : (v+1)*ws]
	}
	if isWorker {
		iLo, _ := p.bounds(ti)
		for r := 0; r < chunk; r++ {
			lr := tk*chunk + r
			if g := iLo + lr; lr < seg && g < n {
				copy(queues[g], sum.Row(r))
			}
		}
		bitvec.PutMatrix(sum)
	}
	outIn := comm.AllToAllFixed(nd, queues, ws)
	bitvec.PutWords(outBuf)
	endPhase()

	// Reassemble my row: exactly one worker (part(me), j, k) covers each
	// column block P_j of row me.
	out := bitvec.NewRow(n)
	myLo, _ := p.bounds(myPart)
	lr := me - myLo
	for src := 0; src < q*q*q && src < n; src++ {
		si, sj, sk := tripleOf(src, q)
		if si != myPart || lr < sk*chunk || lr >= (sk+1)*chunk {
			continue
		}
		jLo, jHi := p.bounds(sj)
		out.OrRange(jLo, bitvec.Row(outIn[src]), jHi-jLo)
	}
	return out
}

// boolRows bridges an unpacked Boolean-semiring call onto the packed
// plane and back: nonzero entries pack to set bits, and the packed
// product unpacks to the exact 0/1 rows the unpacked path produces.
func boolRows(nd clique.Endpoint, aRow, bRow []int64,
	mul func(clique.Endpoint, bitvec.Row, bitvec.Row) bitvec.Row) []int64 {
	n := nd.N()
	if len(aRow) != n || len(bRow) != n {
		nd.Fail("matmul: rows have lengths %d, %d; want %d", len(aRow), len(bRow), n)
	}
	return mul(nd, bitvec.FromInt64s(aRow), bitvec.FromInt64s(bRow)).ToInt64s(n)
}
