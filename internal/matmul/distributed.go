package matmul

import (
	"repro/internal/clique"
	"repro/internal/comm"
)

// The distributed layout throughout this package is row-major: node i
// holds row i of each matrix, matching the congested clique input
// convention where node i knows its incident edges (= row i of the
// adjacency matrix).

// MulNaive computes row nd.ID() of C = A (x) B where this node holds
// aRow = A[id] and bRow = B[id]. Every node broadcasts its B row, so all
// nodes learn B and multiply locally: Theta(n / wordsPerPair) rounds.
// This is the delta = 1 baseline of Figure 1. Over the Boolean
// semiring the rows travel bit-packed (MulNaiveBits), cutting the wire
// cost to ceil(n/64) words per row; the output is bit-identical.
func MulNaive(nd clique.Endpoint, s Semiring, aRow, bRow []int64) []int64 {
	if _, boolean := s.(Boolean); boolean {
		return boolRows(nd, aRow, bRow, MulNaiveBits)
	}
	n := nd.N()
	if len(aRow) != n || len(bRow) != n {
		nd.Fail("matmul: rows have lengths %d, %d; want %d", len(aRow), len(bRow), n)
	}
	words := make([]uint64, n)
	for j, x := range bRow {
		words[j] = uint64(x)
	}
	table := comm.BroadcastAll(nd, words, n)

	out := make([]int64, n)
	for j := range out {
		out[j] = s.Zero()
	}
	for k := 0; k < n; k++ {
		aik := aRow[k]
		bk := table[k]
		for j := 0; j < n; j++ {
			out[j] = s.Add(out[j], s.Mul(aik, int64(bk[j])))
		}
	}
	return out
}

// cube returns the largest q with q^3 <= n.
func cube(n int) int {
	q := 1
	for (q+1)*(q+1)*(q+1) <= n {
		q++
	}
	return q
}

// part describes the split of 0..n-1 into q nearly-equal intervals.
type part struct {
	n, q, size int
}

func newPart(n, q int) part { return part{n: n, q: q, size: (n + q - 1) / q} }

// of returns which interval index i belongs to.
func (p part) of(i int) int { return i / p.size }

// bounds returns the half-open range of interval t, clipped to n.
func (p part) bounds(t int) (lo, hi int) {
	lo = t * p.size
	hi = lo + p.size
	if lo > p.n {
		lo = p.n
	}
	if hi > p.n {
		hi = p.n
	}
	return lo, hi
}

// tripleOf maps a node id < q^3 to its (i, j, k) coordinates.
func tripleOf(id, q int) (i, j, k int) {
	return id / (q * q), (id / q) % q, id % q
}

// idOf inverts tripleOf.
func idOf(i, j, k, q int) int { return i*q*q + j*q + k }

// Mul3D computes row nd.ID() of C = A (x) B using the 3D decomposition
// of Censor-Hillel et al. [10]: node (i, j, k) of a q x q x q cube
// (q = floor(n^{1/3})) multiplies blocks A[P_i][P_k] * B[P_k][P_j]
// locally, the k-dimension is reduced by semiring addition, and results
// return to their row owners. All traffic moves as individual
// O(log n)-bit entries through the routing substrate, exactly as the
// original algorithm invokes Lenzen routing; per-node send and receive
// volumes are O(n^{4/3}) words, giving O(n^{1/3}) rounds. This realises
// delta <= 1/3 for semiring matrix multiplication in Figure 1.
//
// Entries equal to the semiring zero are not transmitted (receivers
// default to zero), so sparse instances cost proportionally less — the
// asymptotic worst case is unchanged.
//
// Over the Boolean semiring the schedule dispatches to Mul3DBits, the
// bit-packed variant whose block exchanges ship 64 entries per word
// over fixed-width collectives; the output is bit-identical.
func Mul3D(nd clique.Endpoint, s Semiring, aRow, bRow []int64) []int64 {
	if _, boolean := s.(Boolean); boolean {
		return boolRows(nd, aRow, bRow, Mul3DBits)
	}
	n := nd.N()
	me := nd.ID()
	if len(aRow) != n || len(bRow) != n {
		nd.Fail("matmul: rows have lengths %d, %d; want %d", len(aRow), len(bRow), n)
	}
	q := cube(n)
	p := newPart(n, q)
	seg := p.size
	zero := s.Zero()
	const seedBase = 0x3d3d
	un := uint64(n)

	// Step 1: distribute input entries. Entry A[r][c] goes to nodes
	// (part(r), x, part(c)) for all x; entry B[r][c] goes to
	// (x, part(c), part(r)) for all x. Payload: [tag*n^2 + r*n + c,
	// value] where tag 0 marks A, 1 marks B.
	var packets []comm.Packet
	myPart := p.of(me)
	for c := 0; c < n; c++ {
		cp := p.of(c)
		if aRow[c] != zero {
			key := uint64(me)*un + uint64(c)
			for x := 0; x < q; x++ {
				packets = append(packets, comm.Packet{
					Dst:     idOf(myPart, x, cp, q),
					Payload: []uint64{key, uint64(aRow[c])},
				})
			}
		}
		if bRow[c] != zero {
			key := un*un + uint64(me)*un + uint64(c)
			for x := 0; x < q; x++ {
				packets = append(packets, comm.Packet{
					Dst:     idOf(x, cp, myPart, q),
					Payload: []uint64{key, uint64(bRow[c])},
				})
			}
		}
	}
	in := comm.Route(nd, packets, 2, seedBase)

	// Step 2: assemble local blocks and multiply. Node (i, j, k) holds
	// aBlk = A[P_i][P_k] and bBlk = B[P_k][P_j], both padded to
	// seg x seg with zeros (which annihilate).
	var partial [][]int64
	isWorker := me < q*q*q
	var ti, tj, tk int
	if isWorker {
		ti, tj, tk = tripleOf(me, q)
		aBlk := zeroBlock(s, seg, seg)
		bBlk := zeroBlock(s, seg, seg)
		iLo, _ := p.bounds(ti)
		jLo, _ := p.bounds(tj)
		kLo, _ := p.bounds(tk)
		for _, pkt := range in {
			key := pkt.Payload[0]
			val := int64(pkt.Payload[1])
			tag := key / (un * un)
			r := int(key / un % un)
			c := int(key % un)
			if tag == 0 {
				aBlk[r-iLo][c-kLo] = val
			} else {
				bBlk[r-kLo][c-jLo] = val
			}
		}
		partial = MulLocal(s, aBlk, bBlk)
	}

	// Step 3: reduce over k. Within the (i, j, *) fibre the block rows
	// are split into q chunks; chunk c is summed at node (i, j, c).
	// Payload: [localRow*seg + col, value].
	chunk := (seg + q - 1) / q
	var redPkts []comm.Packet
	if isWorker {
		for c := 0; c < q; c++ {
			dst := idOf(ti, tj, c, q)
			if dst == me {
				continue // my own chunk is summed locally below
			}
			for lr := c * chunk; lr < (c+1)*chunk && lr < seg; lr++ {
				for col := 0; col < seg; col++ {
					if partial[lr][col] == zero {
						continue
					}
					redPkts = append(redPkts, comm.Packet{
						Dst:     dst,
						Payload: []uint64{uint64(lr*seg + col), uint64(partial[lr][col])},
					})
				}
			}
		}
	}
	redIn := comm.Route(nd, redPkts, 2, seedBase+1)

	// Sum my chunk: block rows [tk*chunk, (tk+1)*chunk).
	var sum [][]int64
	if isWorker {
		sum = zeroBlock(s, chunk, seg)
		for lr := tk * chunk; lr < (tk+1)*chunk && lr < seg; lr++ {
			copy(sum[lr-tk*chunk], partial[lr])
		}
		for _, pkt := range redIn {
			lr := int(pkt.Payload[0]) / seg
			col := int(pkt.Payload[0]) % seg
			r := lr - tk*chunk
			if r < 0 || r >= chunk {
				nd.Fail("matmul: reduction row %d outside chunk %d", lr, tk)
			}
			sum[r][col] = s.Add(sum[r][col], int64(pkt.Payload[1]))
		}
	}

	// Step 4: ship result entries to row owners. After the reduction,
	// node (i, j, k) exclusively holds C entries for global rows
	// iLo + k*chunk .. and columns P_j. Payload: [col, value].
	var outPkts []comm.Packet
	if isWorker {
		iLo, _ := p.bounds(ti)
		jLo, jHi := p.bounds(tj)
		for r := 0; r < chunk; r++ {
			global := iLo + tk*chunk + r
			if global >= n || tk*chunk+r >= seg {
				continue
			}
			for col := jLo; col < jHi; col++ {
				if sum[r][col-jLo] == zero {
					continue
				}
				outPkts = append(outPkts, comm.Packet{
					Dst:     global,
					Payload: []uint64{uint64(col), uint64(sum[r][col-jLo])},
				})
			}
		}
	}
	outIn := comm.Route(nd, outPkts, 2, seedBase+2)

	out := make([]int64, n)
	for j := range out {
		out[j] = zero
	}
	for _, pkt := range outIn {
		out[pkt.Payload[0]] = int64(pkt.Payload[1])
	}
	return out
}

func zeroBlock(s Semiring, rows, cols int) [][]int64 {
	blk := make([][]int64, rows)
	for i := range blk {
		blk[i] = make([]int64, cols)
		for j := range blk[i] {
			blk[i][j] = s.Zero()
		}
	}
	return blk
}

// MulFunc is the signature shared by MulNaive and Mul3D so callers and
// benchmarks can swap schedules.
type MulFunc func(nd clique.Endpoint, s Semiring, aRow, bRow []int64) []int64
