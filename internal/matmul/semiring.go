package matmul

import "repro/internal/graph"

// Semiring is the algebraic structure matrix products are computed over.
// Entries are int64; graph.Inf plays the role of "no entry" where the
// semiring needs one.
type Semiring interface {
	// Add is the semiring addition (OR, +, or min).
	Add(a, b int64) int64
	// Mul is the semiring multiplication (AND, *, or saturating +).
	Mul(a, b int64) int64
	// Zero is the additive identity (0, 0, or Inf).
	Zero() int64
	// Name identifies the semiring in experiment output.
	Name() string
}

// Boolean is the ({0,1}, OR, AND) semiring.
type Boolean struct{}

// Add implements Semiring.
func (Boolean) Add(a, b int64) int64 {
	if a != 0 || b != 0 {
		return 1
	}
	return 0
}

// Mul implements Semiring.
func (Boolean) Mul(a, b int64) int64 {
	if a != 0 && b != 0 {
		return 1
	}
	return 0
}

// Zero implements Semiring.
func (Boolean) Zero() int64 { return 0 }

// Name implements Semiring.
func (Boolean) Name() string { return "boolean" }

// Ring is the ordinary (Z, +, *) ring.
type Ring struct{}

// Add implements Semiring.
func (Ring) Add(a, b int64) int64 { return a + b }

// Mul implements Semiring.
func (Ring) Mul(a, b int64) int64 { return a * b }

// Zero implements Semiring.
func (Ring) Zero() int64 { return 0 }

// Name implements Semiring.
func (Ring) Name() string { return "ring" }

// MinPlus is the tropical (min, +) semiring with Inf as the additive
// identity; powers of a weight matrix over MinPlus give shortest path
// distances.
type MinPlus struct{}

// Add implements Semiring.
func (MinPlus) Add(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Mul implements Semiring.
func (MinPlus) Mul(a, b int64) int64 {
	if a >= graph.Inf || b >= graph.Inf {
		return graph.Inf
	}
	return a + b
}

// Zero implements Semiring.
func (MinPlus) Zero() int64 { return graph.Inf }

// Name implements Semiring.
func (MinPlus) Name() string { return "min-plus" }

// MulLocal is the centralized reference product C = A (x) B over s; it is
// also the kernel the 3D algorithm runs on local blocks, where the model
// charges nothing for it.
func MulLocal(s Semiring, a, b [][]int64) [][]int64 {
	n := len(a)
	skipZero := isAnnihilating(s)
	c := make([][]int64, n)
	for i := range c {
		row := make([]int64, len(b[0]))
		for j := range row {
			row[j] = s.Zero()
		}
		for k, aik := range a[i] {
			if skipZero && aik == s.Zero() {
				continue
			}
			bk := b[k]
			for j := range row {
				row[j] = s.Add(row[j], s.Mul(aik, bk[j]))
			}
		}
		c[i] = row
	}
	return c
}

// isAnnihilating reports whether Zero annihilates under Mul (true for all
// three semirings here), enabling the sparse skip in MulLocal.
func isAnnihilating(s Semiring) bool {
	z := s.Zero()
	return s.Mul(z, 1) == z && s.Mul(1, z) == z
}

// Identity returns the n x n multiplicative identity over s: Mul-unit on
// the diagonal, Zero elsewhere. The unit is 1 for Boolean and Ring, 0 for
// MinPlus.
func Identity(s Semiring, n int) [][]int64 {
	unit := int64(1)
	if (s == MinPlus{}) {
		unit = 0
	}
	m := make([][]int64, n)
	for i := range m {
		m[i] = make([]int64, n)
		for j := range m[i] {
			if i == j {
				m[i][j] = unit
			} else {
				m[i][j] = s.Zero()
			}
		}
	}
	return m
}

// AdjacencyRow returns row v of g's Boolean adjacency matrix.
func AdjacencyRow(g *graph.Graph, v int) []int64 {
	row := make([]int64, g.N)
	g.Neighbors(v, func(u int) { row[u] = 1 })
	return row
}

// WeightRow returns row v of a weighted graph's (min,+) matrix: 0 on the
// diagonal, edge weights, Inf otherwise.
func WeightRow(g *graph.Weighted, v int) []int64 {
	return append([]int64(nil), g.W[v]...)
}
