// Package matmul implements distributed matrix multiplication over
// semirings in the congested clique, the workhorse of the centre column
// of Figure 1 of the paper (Boolean MM, ring MM, (min,+) MM, and through
// them transitive closure and the shortest-path problems).
//
// Two communication schedules are provided: the naive all-to-all
// broadcast at Theta(n) rounds and the 3D block decomposition of
// Censor-Hillel, Kaski, Korhonen, Lenzen, Paz and Suomela (PODC 2015,
// reference [10] of the paper) at O(n^{1/3}) rounds for any semiring.
// The paper additionally cites an O(n^{1-2/omega}) schedule for ring
// matrix multiplication; we record that as a literature bound in package
// fgc rather than re-implementing fast bilinear algorithms — see
// DESIGN.md section 5.
//
// Boolean-semiring calls dispatch to the bit-packed plane (bitmul.go):
// MulNaiveBits and Mul3DBits represent rows as bitvec.Row at 64 entries
// per word — the dense word-level representation Le Gall's algebraic
// congested-clique algorithms (arXiv:1608.02674) build on — shipping
// ceil(n/64) words per row over the packed collectives and multiplying
// with word-parallel OR kernels. Outputs are bit-identical to the
// unpacked schedules (pinned by FuzzPackedMatmulEquivalence).
package matmul
