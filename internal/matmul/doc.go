// Package matmul implements distributed matrix multiplication over
// semirings in the congested clique, the workhorse of the centre column
// of Figure 1 of the paper (Boolean MM, ring MM, (min,+) MM, and through
// them transitive closure and the shortest-path problems).
//
// Two communication schedules are provided: the naive all-to-all
// broadcast at Theta(n) rounds and the 3D block decomposition of
// Censor-Hillel, Kaski, Korhonen, Lenzen, Paz and Suomela (PODC 2015,
// reference [10] of the paper) at O(n^{1/3}) rounds for any semiring.
// The paper additionally cites an O(n^{1-2/omega}) schedule for ring
// matrix multiplication; we record that as a literature bound in package
// fgc rather than re-implementing fast bilinear algorithms — see
// DESIGN.md section 5.
package matmul
