package matmul

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/clique"
	"repro/internal/graph"
)

func randomMatrix(n int, maxVal int64, density float64, s Semiring, seed uint64) [][]int64 {
	rng := rand.New(rand.NewPCG(seed, 17))
	m := make([][]int64, n)
	for i := range m {
		m[i] = make([]int64, n)
		for j := range m[i] {
			if rng.Float64() < density {
				// Normalising through Add keeps entries inside the
				// semiring's value set (Boolean clamps to 1).
				m[i][j] = s.Add(s.Zero(), 1+rng.Int64N(maxVal))
			} else {
				m[i][j] = s.Zero()
			}
		}
	}
	return m
}

func matEqual(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestSemiringLaws(t *testing.T) {
	rings := []Semiring{Boolean{}, Ring{}, MinPlus{}}
	vals := []int64{0, 1, 2, 5, graph.Inf}
	for _, s := range rings {
		z := s.Zero()
		for _, a := range vals {
			if s.Add(a, z) != s.Add(z, a) {
				t.Errorf("%s: Add not commutative with zero", s.Name())
			}
			if got := s.Add(a, z); got != a && !(s.Name() == "boolean" && a > 1 && got == 1) {
				// Boolean normalises nonzero to 1; other rings must
				// return a exactly.
				if s.Name() != "boolean" {
					t.Errorf("%s: a + 0 = %d, want %d", s.Name(), got, a)
				}
			}
			for _, b := range vals {
				if s.Add(a, b) != s.Add(b, a) {
					t.Errorf("%s: Add(%d,%d) not commutative", s.Name(), a, b)
				}
			}
		}
	}
	// Zero annihilates multiplication in all three.
	for _, s := range rings {
		if !isAnnihilating(s) {
			t.Errorf("%s: zero does not annihilate", s.Name())
		}
	}
}

func TestMinPlusSaturation(t *testing.T) {
	s := MinPlus{}
	if got := s.Mul(graph.Inf, 5); got != graph.Inf {
		t.Errorf("Inf (*) 5 = %d", got)
	}
	if got := s.Mul(graph.Inf, graph.Inf); got != graph.Inf {
		t.Errorf("Inf (*) Inf = %d (overflow?)", got)
	}
	if got := s.Add(graph.Inf, 3); got != 3 {
		t.Errorf("min(Inf, 3) = %d", got)
	}
}

func TestMulLocalIdentity(t *testing.T) {
	for _, s := range []Semiring{Boolean{}, Ring{}, MinPlus{}} {
		a := randomMatrix(6, 5, 0.5, s, 3)
		id := Identity(s, 6)
		if !matEqual(MulLocal(s, a, id), a) {
			t.Errorf("%s: A * I != A", s.Name())
		}
		if !matEqual(MulLocal(s, id, a), a) {
			t.Errorf("%s: I * A != A", s.Name())
		}
	}
}

func TestMulLocalKnownProduct(t *testing.T) {
	a := [][]int64{{1, 2}, {3, 4}}
	b := [][]int64{{5, 6}, {7, 8}}
	want := [][]int64{{19, 22}, {43, 50}}
	if got := MulLocal(Ring{}, a, b); !matEqual(got, want) {
		t.Errorf("ring product = %v, want %v", got, want)
	}
	// (min,+) on a tiny shortest-path example.
	inf := graph.Inf
	w := [][]int64{{0, 1, inf}, {1, 0, 1}, {inf, 1, 0}}
	d2 := MulLocal(MinPlus{}, w, w)
	if d2[0][2] != 2 {
		t.Errorf("min-plus square d(0,2) = %d, want 2", d2[0][2])
	}
}

// runDistributedMul runs a MulFunc on a full matrix pair distributed
// row-wise and reassembles the result.
func runDistributedMul(t *testing.T, n int, mul MulFunc, s Semiring, a, b [][]int64, wpp int) ([][]int64, *clique.Result) {
	t.Helper()
	out := make([][]int64, n)
	res, err := clique.Run(clique.Config{N: n, WordsPerPair: wpp}, func(nd *clique.Node) {
		out[nd.ID()] = mul(nd, s, a[nd.ID()], b[nd.ID()])
	})
	if err != nil {
		t.Fatal(err)
	}
	return out, res
}

func TestMulNaiveMatchesLocal(t *testing.T) {
	for _, s := range []Semiring{Boolean{}, Ring{}, MinPlus{}} {
		n := 9
		a := randomMatrix(n, 4, 0.6, s, 5)
		b := randomMatrix(n, 4, 0.6, s, 6)
		got, _ := runDistributedMul(t, n, MulNaive, s, a, b, 1)
		if want := MulLocal(s, a, b); !matEqual(got, want) {
			t.Errorf("%s: naive distributed product differs from local", s.Name())
		}
	}
}

func TestMul3DMatchesLocal(t *testing.T) {
	// Includes non-perfect-cube sizes and the degenerate q=1 case.
	for _, n := range []int{5, 8, 12, 27, 30} {
		for _, s := range []Semiring{Boolean{}, Ring{}, MinPlus{}} {
			a := randomMatrix(n, 4, 0.5, s, uint64(n))
			b := randomMatrix(n, 4, 0.5, s, uint64(n)+1)
			got, _ := runDistributedMul(t, n, Mul3D, s, a, b, 8)
			if want := MulLocal(s, a, b); !matEqual(got, want) {
				t.Errorf("%s n=%d: 3D product differs from local", s.Name(), n)
			}
		}
	}
}

func TestMul3DSparseInfinity(t *testing.T) {
	// A mostly-Inf min-plus instance: make sure padding does not leak
	// zeros into the product.
	n := 27
	s := MinPlus{}
	a := randomMatrix(n, 9, 0.1, s, 70)
	b := randomMatrix(n, 9, 0.1, s, 71)
	got, _ := runDistributedMul(t, n, Mul3D, s, a, b, 8)
	if want := MulLocal(s, a, b); !matEqual(got, want) {
		t.Error("sparse min-plus 3D product differs from local")
	}
}

func TestMul3DScalesSublinearly(t *testing.T) {
	// The point of the 3D schedule is the exponent, not small-n
	// constants: growing n by 8x (27 -> 216) multiplies naive rounds by
	// 8 (delta = 1) but 3D rounds by roughly 8^{1/3} = 2 (delta = 1/3).
	// Allow generous slack for routing variance. The Ring semiring keeps
	// both schedules on the unpacked per-entry paths; the Boolean paths
	// are bit-packed and measured by TestPackedRoundCounts instead.
	if testing.Short() {
		t.Skip("large instance")
	}
	s := Ring{}
	rounds := func(n int, mul MulFunc) int {
		a := randomMatrix(n, 1, 0.5, s, uint64(n)+20)
		b := randomMatrix(n, 1, 0.5, s, uint64(n)+21)
		got, res := runDistributedMul(t, n, mul, s, a, b, 8)
		if want := MulLocal(s, a, b); !matEqual(got, want) {
			t.Fatalf("n=%d: product incorrect", n)
		}
		return res.Stats.Rounds
	}
	naiveRatio := float64(rounds(216, MulNaive)) / float64(rounds(27, MulNaive))
	tdRatio := float64(rounds(216, Mul3D)) / float64(rounds(27, Mul3D))
	if naiveRatio < 6 {
		t.Errorf("naive ratio %.2f, want about 8", naiveRatio)
	}
	if tdRatio > 5 {
		t.Errorf("3D ratio %.2f, want about 2 (must stay well below naive's 8)", tdRatio)
	}
	if tdRatio >= naiveRatio {
		t.Errorf("3D scaling (%.2f) not better than naive (%.2f)", tdRatio, naiveRatio)
	}
}

func TestCubePartHelpers(t *testing.T) {
	cases := []struct{ n, q int }{{1, 1}, {7, 1}, {8, 2}, {26, 2}, {27, 3}, {63, 3}, {64, 4}, {124, 4}, {125, 5}}
	for _, c := range cases {
		if got := cube(c.n); got != c.q {
			t.Errorf("cube(%d) = %d, want %d", c.n, got, c.q)
		}
	}
	p := newPart(10, 3) // size 4: parts [0,4) [4,8) [8,10)
	if lo, hi := p.bounds(2); lo != 8 || hi != 10 {
		t.Errorf("bounds(2) = [%d,%d)", lo, hi)
	}
	if p.of(9) != 2 || p.of(0) != 0 || p.of(4) != 1 {
		t.Error("part.of wrong")
	}
	for id := 0; id < 27; id++ {
		i, j, k := tripleOf(id, 3)
		if idOf(i, j, k, 3) != id {
			t.Errorf("triple round trip failed for %d", id)
		}
	}
}

func TestMulQuickProperty(t *testing.T) {
	// Property: Boolean MM equals reachability-in-two-steps.
	f := func(seed uint64) bool {
		n := 8
		g := graph.Gnp(n, 0.4, seed)
		a := make([][]int64, n)
		for v := 0; v < n; v++ {
			a[v] = AdjacencyRow(g, v)
		}
		sq := MulLocal(Boolean{}, a, a)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				want := int64(0)
				for w := 0; w < n; w++ {
					if g.HasEdge(u, w) && g.HasEdge(w, v) {
						want = 1
						break
					}
				}
				if sq[u][v] != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestWeightRowAndAdjacencyRow(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 2)
	row := AdjacencyRow(g, 0)
	if row[2] != 1 || row[1] != 0 || row[0] != 0 {
		t.Errorf("AdjacencyRow = %v", row)
	}
	w := graph.NewWeighted(3, false)
	w.SetEdge(0, 1, 7)
	wr := WeightRow(w, 0)
	if wr[1] != 7 || wr[2] != graph.Inf || wr[0] != 0 {
		t.Errorf("WeightRow = %v", wr)
	}
}
