package matmul

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/clique"
)

// unpackedBool carries Boolean's truth tables under a distinct type, so
// the generic per-entry code paths of MulNaive and Mul3D stay reachable
// beside the packed dispatch — the reference half of every
// packed-vs-unpacked equivalence check.
type unpackedBool struct{}

func (unpackedBool) Add(a, b int64) int64 { return Boolean{}.Add(a, b) }
func (unpackedBool) Mul(a, b int64) int64 { return Boolean{}.Mul(a, b) }
func (unpackedBool) Zero() int64          { return 0 }
func (unpackedBool) Name() string         { return "boolean-unpacked" }

func randomBoolRows(n int, density float64, seed uint64) [][]int64 {
	rng := rand.New(rand.NewPCG(seed, 41))
	m := make([][]int64, n)
	for i := range m {
		m[i] = make([]int64, n)
		for j := range m[i] {
			if rng.Float64() < density {
				m[i][j] = 1
			}
		}
	}
	return m
}

// runMulOn runs a MulFunc over a distributed instance on one backend.
func runMulOn(t testing.TB, backend string, n, wpp int, mul MulFunc, s Semiring, a, b [][]int64) ([][]int64, *clique.Result) {
	t.Helper()
	out := make([][]int64, n)
	res, err := clique.Run(clique.Config{N: n, WordsPerPair: wpp, Backend: backend}, func(nd *clique.Node) {
		out[nd.ID()] = mul(nd, s, a[nd.ID()], b[nd.ID()])
	})
	if err != nil {
		t.Fatal(err)
	}
	return out, res
}

// TestPackedMatchesUnpacked is the bit-identity contract of the packed
// plane: for both schedules and on both backends, the Boolean-semiring
// (packed) product equals the same schedule run through the generic
// per-entry path under an equivalent non-Boolean semiring.
func TestPackedMatchesUnpacked(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8, 12, 27, 30, 64, 70} {
		a := randomBoolRows(n, 0.4, uint64(n))
		b := randomBoolRows(n, 0.4, uint64(n)+100)
		want := MulLocal(Boolean{}, a, b)
		for _, backend := range clique.Backends() {
			for name, mul := range map[string]MulFunc{"naive": MulNaive, "3d": Mul3D} {
				packed, _ := runMulOn(t, backend, n, 3, mul, Boolean{}, a, b)
				unpacked, _ := runMulOn(t, backend, n, 3, mul, unpackedBool{}, a, b)
				if !matEqual(packed, unpacked) {
					t.Fatalf("%s/%s n=%d: packed and unpacked products differ", backend, name, n)
				}
				if !matEqual(packed, want) {
					t.Fatalf("%s/%s n=%d: packed product differs from local reference", backend, name, n)
				}
			}
		}
	}
}

// TestPackedBitsEntryPoints drives the bitvec-native entry points
// directly (no int64 bridge) and checks them against the local product.
func TestPackedBitsEntryPoints(t *testing.T) {
	for _, n := range []int{3, 9, 27, 65} {
		a := randomBoolRows(n, 0.35, uint64(n)+7)
		b := randomBoolRows(n, 0.35, uint64(n)+8)
		want := MulLocal(Boolean{}, a, b)
		for name, mul := range map[string]func(clique.Endpoint, bitvec.Row, bitvec.Row) bitvec.Row{
			"naive": MulNaiveBits, "3d": Mul3DBits,
		} {
			got := make([][]int64, n)
			_, err := clique.Run(clique.Config{N: n, WordsPerPair: 2}, func(nd *clique.Node) {
				me := nd.ID()
				out := mul(nd, bitvec.FromInt64s(a[me]), bitvec.FromInt64s(b[me]))
				got[me] = out.ToInt64s(n)
			})
			if err != nil {
				t.Fatal(err)
			}
			if !matEqual(got, want) {
				t.Fatalf("%s n=%d: packed-native product differs from local reference", name, n)
			}
		}
	}
}

// TestPackedRoundCounts pins the packed wire costs: the naive schedule
// broadcasts ceil(ceil(n/64)/wpp) chunks, the 3D schedule runs three
// fixed-width exchanges.
func TestPackedRoundCounts(t *testing.T) {
	for _, c := range []struct{ n, wpp int }{{27, 8}, {64, 8}, {125, 8}, {216, 8}, {216, 1}} {
		a := randomBoolRows(c.n, 0.5, uint64(c.n))
		b := a
		ceil := func(x, y int) int { return (x + y - 1) / y }
		w := bitvec.Words(c.n)
		_, res := runMulOn(t, "", c.n, c.wpp, MulNaive, Boolean{}, a, b)
		if want := ceil(w, c.wpp); res.Stats.Rounds != want {
			t.Errorf("naive n=%d wpp=%d: rounds = %d, want %d", c.n, c.wpp, res.Stats.Rounds, want)
		}
		q := cube(c.n)
		seg := (c.n + q - 1) / q
		ws := bitvec.Words(seg)
		chunk := (seg + q - 1) / q
		want3d := ceil(2*ws, c.wpp) + ceil(chunk*ws, c.wpp) + ceil(ws, c.wpp)
		_, res3d := runMulOn(t, "", c.n, c.wpp, Mul3D, Boolean{}, a, b)
		if res3d.Stats.Rounds != want3d {
			t.Errorf("3d n=%d wpp=%d: rounds = %d, want %d", c.n, c.wpp, res3d.Stats.Rounds, want3d)
		}
	}
}

// TestPackedWordSavings pins the headline of this plane: at n=216 the
// packed naive product moves ~64x fewer simulated words than the
// per-entry path.
func TestPackedWordSavings(t *testing.T) {
	const n = 216
	a := randomBoolRows(n, 0.5, 1)
	_, packed := runMulOn(t, "", n, 8, MulNaive, Boolean{}, a, a)
	_, unpacked := runMulOn(t, "", n, 8, MulNaive, unpackedBool{}, a, a)
	if packed.Stats.WordsSent*32 > unpacked.Stats.WordsSent {
		t.Errorf("packed naive sent %d words vs unpacked %d: want >= 32x saving",
			packed.Stats.WordsSent, unpacked.Stats.WordsSent)
	}
}

func FuzzPackedMatmulEquivalence(f *testing.F) {
	f.Add(uint64(1), uint8(9), uint8(1), uint8(128))
	f.Add(uint64(2), uint8(16), uint8(2), uint8(20))
	f.Add(uint64(3), uint8(27), uint8(3), uint8(240))
	f.Add(uint64(4), uint8(1), uint8(1), uint8(0))
	f.Fuzz(func(t *testing.T, seed uint64, rawN, rawWpp, rawDensity uint8) {
		n := 1 + int(rawN)%30
		wpp := 1 + int(rawWpp)%4
		density := float64(rawDensity) / 255
		a := randomBoolRows(n, density, seed)
		b := randomBoolRows(n, density, seed^0x9e3779b97f4a7c15)
		want := MulLocal(Boolean{}, a, b)
		for _, backend := range clique.Backends() {
			for name, mul := range map[string]MulFunc{"naive": MulNaive, "3d": Mul3D} {
				packed, _ := runMulOn(t, backend, n, wpp, mul, Boolean{}, a, b)
				unpacked, _ := runMulOn(t, backend, n, wpp, mul, unpackedBool{}, a, b)
				if !matEqual(packed, unpacked) {
					t.Fatalf("%s/%s n=%d wpp=%d: packed and unpacked products differ", backend, name, n, wpp)
				}
				if !matEqual(packed, want) {
					t.Fatalf("%s/%s n=%d wpp=%d: packed product differs from local reference", backend, name, n, wpp)
				}
			}
		}
	})
}

func BenchmarkMulNaivePacked(b *testing.B) {
	benchMulNaive(b, Boolean{})
}

func BenchmarkMulNaiveUnpacked(b *testing.B) {
	benchMulNaive(b, unpackedBool{})
}

func benchMulNaive(b *testing.B, s Semiring) {
	for _, n := range []int{64, 216} {
		a := randomBoolRows(n, 0.5, uint64(n))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runMulOn(b, "lockstep", n, 8, MulNaive, s, a, a)
			}
		})
	}
}
