// Package virtual simulates an m-node congested clique on top of a
// (typically smaller) real clique: each real node hosts a set of virtual
// nodes and relays their traffic. This is the substrate behind the
// paper's Theorem 10 simulation argument, where each of the n input
// nodes simulates the O(k^2) gadget copies it owns in the constructed
// graph G', and the real round cost per virtual round is bounded by the
// largest number of virtual pairs sharing a real link.
package virtual
