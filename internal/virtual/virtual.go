package virtual

import (
	"fmt"
	"slices"
	"sync"

	"repro/internal/clique"
	"repro/internal/comm"
	"repro/internal/trace"
)

// Config describes the simulated clique.
type Config struct {
	// M is the number of virtual nodes.
	M int
	// Host maps a virtual node to the real node simulating it. It must
	// be a globally known pure function; all real nodes evaluate it
	// locally.
	Host func(v int) int
	// WordsPerPair is the virtual bandwidth budget per virtual round,
	// defaulting to 1.
	WordsPerPair int
}

// NodeFunc is the algorithm run by every virtual node.
type NodeFunc func(vn *Node)

// Node is the virtual analogue of clique.Node. Its methods may be called
// only from the virtual node's goroutine.
type Node struct {
	id  int
	eng *engine

	outbox    [][]uint64
	inbox     [][]uint64
	completed int

	// bcastPend is the size of a pending BroadcastBuf reservation
	// (0 = none); bcastScratch backs the buffer it returned.
	bcastPend    int
	bcastScratch []uint64

	arrived  chan struct{}
	released chan struct{}
	finished chan struct{}
	panicked any
}

// ID returns the virtual node id in 0..M-1.
func (vn *Node) ID() int { return vn.eng.idOf(vn) }

// N returns the number of virtual nodes.
func (vn *Node) N() int { return vn.eng.cfg.M }

// Round returns the number of completed virtual rounds.
func (vn *Node) Round() int { return vn.completed }

// WordsPerPair returns the virtual per-pair word budget.
func (vn *Node) WordsPerPair() int { return vn.eng.cfg.WordsPerPair }

// Send queues words for virtual node `to` in the current virtual round.
func (vn *Node) Send(to int, words ...uint64) {
	vn.SendWords(to, words)
}

// SendWords is the batched form of Send (see clique.Endpoint).
func (vn *Node) SendWords(to int, words []uint64) {
	vn.flushBroadcast()
	if to < 0 || to >= vn.eng.cfg.M || to == vn.id {
		panic(fmt.Sprintf("virtual: node %d: invalid Send target %d", vn.id, to))
	}
	if len(vn.outbox[to])+len(words) > vn.eng.cfg.WordsPerPair {
		panic(fmt.Sprintf("virtual: node %d round %d: bandwidth exceeded sending to %d (budget %d)",
			vn.id, vn.completed, to, vn.eng.cfg.WordsPerPair))
	}
	vn.outbox[to] = append(vn.outbox[to], words...)
}

// SendBuf reserves k words on the link to `to` and returns the outbox
// storage to fill in place (see clique.Endpoint).
func (vn *Node) SendBuf(to, k int) []uint64 {
	vn.flushBroadcast()
	if to < 0 || to >= vn.eng.cfg.M || to == vn.id {
		panic(fmt.Sprintf("virtual: node %d: invalid Send target %d", vn.id, to))
	}
	cell := vn.outbox[to]
	l := len(cell)
	if k < 0 || l+k > vn.eng.cfg.WordsPerPair {
		panic(fmt.Sprintf("virtual: node %d round %d: bandwidth exceeded sending to %d (budget %d)",
			vn.id, vn.completed, to, vn.eng.cfg.WordsPerPair))
	}
	// Grow to the full budget up front so later sends this round cannot
	// reallocate the cell out from under the returned slice.
	if cap(cell) < vn.eng.cfg.WordsPerPair {
		cell = slices.Grow(cell, vn.eng.cfg.WordsPerPair-l)
	}
	cell = cell[:l+k]
	vn.outbox[to] = cell
	return cell[l : l+k : l+k]
}

// Broadcast queues the same words for every other virtual node.
func (vn *Node) Broadcast(words ...uint64) {
	vn.BroadcastWords(words)
}

// BroadcastWords is the batched form of Broadcast (see clique.Endpoint).
func (vn *Node) BroadcastWords(words []uint64) {
	for to := 0; to < vn.eng.cfg.M; to++ {
		if to != vn.id {
			vn.SendWords(to, words)
		}
	}
}

// BroadcastBuf returns a reusable staging buffer whose contents are
// delivered by one fused broadcast at the node's next operation (see
// clique.Endpoint).
func (vn *Node) BroadcastBuf(k int) []uint64 {
	vn.flushBroadcast()
	if k < 0 {
		panic(fmt.Sprintf("virtual: node %d: negative BroadcastBuf size %d", vn.id, k))
	}
	if cap(vn.bcastScratch) < k {
		vn.bcastScratch = make([]uint64, k)
	}
	if k > 0 {
		vn.bcastPend = k
	}
	return vn.bcastScratch[:k]
}

// flushBroadcast delivers a pending BroadcastBuf as one fused
// broadcast of the staged words. Clearing bcastPend first keeps the
// BroadcastWords call from recursing back here.
func (vn *Node) flushBroadcast() {
	k := vn.bcastPend
	if k == 0 {
		return
	}
	vn.bcastPend = 0
	vn.BroadcastWords(vn.bcastScratch[:k])
}

// Tick completes the virtual round.
func (vn *Node) Tick() {
	vn.flushBroadcast()
	vn.arrived <- struct{}{}
	<-vn.released
	vn.completed++
}

// Recv returns the words received from virtual node `from` in the last
// completed virtual round.
func (vn *Node) Recv(from int) []uint64 {
	if from < 0 || from >= vn.eng.cfg.M || from == vn.id {
		panic(fmt.Sprintf("virtual: node %d: invalid Recv source %d", vn.id, from))
	}
	return vn.inbox[from]
}

// RecvInto appends the words received from virtual node `from` in the
// last completed virtual round to buf.
func (vn *Node) RecvInto(from int, buf []uint64) []uint64 {
	return append(buf, vn.Recv(from)...)
}

// Fail aborts the entire (real) run.
func (vn *Node) Fail(format string, args ...any) {
	panic(fmt.Sprintf("virtual: node %d: %s", vn.id, fmt.Sprintf(format, args...)))
}

// TracePhase delegates phase spans to the hosting real endpoint, so
// algorithms running inside a virtual clique still mark their structure
// on the real run's trace (only virtual node 0's host records —
// delegation lands on the real node-0 recorder or the shared no-op).
func (vn *Node) TracePhase(name string) func() {
	if vn.id != 0 {
		return trace.Nop
	}
	return trace.Phase(vn.eng.nd, name)
}

// TraceOp delegates op spans to the hosting real endpoint; see
// TracePhase.
func (vn *Node) TraceOp(name string, words int) func() {
	if vn.id != 0 {
		return trace.Nop
	}
	return trace.Op(vn.eng.nd, name, words)
}

type engine struct {
	cfg  Config
	nd   clique.Endpoint
	mine []*Node // virtual nodes hosted here, by local index
	ids  []int   // global ids of mine
}

func (e *engine) idOf(vn *Node) int { return vn.id }

// Run simulates cfg.M virtual nodes running f on top of the real clique
// node nd. Every real node must call Run together with identical cfg and
// f. Returns after all virtual nodes globally have terminated. The real
// round cost is measured by the enclosing clique engine; each virtual
// round costs one max-reduction round plus ceil(maxLinkWords /
// realWordsPerPair) stream rounds, where maxLinkWords is the largest
// number of (tagged) virtual words any real link must carry.
func Run(nd clique.Endpoint, cfg Config, f NodeFunc) {
	if cfg.WordsPerPair == 0 {
		cfg.WordsPerPair = 1
	}
	if cfg.M < 1 || cfg.Host == nil {
		nd.Fail("virtual: bad config M=%d", cfg.M)
	}
	e := &engine{cfg: cfg, nd: nd}
	for v := 0; v < cfg.M; v++ {
		h := cfg.Host(v)
		if h < 0 || h >= nd.N() {
			nd.Fail("virtual: Host(%d) = %d out of range", v, h)
		}
		if h == nd.ID() {
			vn := &Node{
				id:       v,
				eng:      e,
				outbox:   make([][]uint64, cfg.M),
				inbox:    make([][]uint64, cfg.M),
				arrived:  make(chan struct{}),
				released: make(chan struct{}),
				finished: make(chan struct{}),
			}
			e.mine = append(e.mine, vn)
			e.ids = append(e.ids, v)
		}
	}

	// Launch hosted virtual nodes.
	var wg sync.WaitGroup
	for _, vn := range e.mine {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(vn.finished)
			defer func() {
				if r := recover(); r != nil {
					vn.panicked = r
				}
			}()
			f(vn)
			// Flush a pending BroadcastBuf into the outbox (with its
			// budget check) so a returning program's staged broadcast
			// behaves like its Sends. Like any words queued after a
			// virtual node's final Tick, they are then dropped: a
			// finished node's outbox is never collected.
			vn.flushBroadcast()
		}()
	}

	live := append([]*Node(nil), e.mine...)
	for {
		// Wait for each live virtual node to reach its barrier or
		// finish.
		var waiting []*Node
		var next []*Node
		for _, vn := range live {
			select {
			case <-vn.arrived:
				waiting = append(waiting, vn)
				next = append(next, vn)
			case <-vn.finished:
				if vn.panicked != nil {
					nd.Fail("virtual node %d panicked: %v", vn.id, vn.panicked)
				}
			}
		}
		live = next

		// Global termination test: stop once no virtual node anywhere
		// is still running. (Real nodes whose virtual nodes are all done
		// must keep participating in the max-reductions and exchanges of
		// the remaining virtual rounds.)
		stillLive := comm.MaxWord(nd, uint64(len(live)))
		if stillLive == 0 {
			wg.Wait()
			return
		}

		// Collect virtual messages into per-real-destination streams.
		// Wire format per message: from, to, count, words...
		n := nd.N()
		queues := make([][]uint64, n)
		deliverLocal := func(from, to int, words []uint64) {
			for _, vn := range e.mine {
				if vn.id == to {
					vn.inbox[from] = append([]uint64(nil), words...)
					return
				}
			}
			nd.Fail("virtual: local delivery to unhosted node %d", to)
		}
		for _, vn := range waiting {
			// Reset inboxes before new delivery.
			for i := range vn.inbox {
				vn.inbox[i] = nil
			}
		}
		for _, vn := range waiting {
			for to, words := range vn.outbox {
				if len(words) == 0 {
					continue
				}
				h := cfg.Host(to)
				if h == nd.ID() {
					deliverLocal(vn.id, to, words)
				} else {
					rec := []uint64{uint64(vn.id), uint64(to), uint64(len(words))}
					queues[h] = append(queues[h], append(rec, words...)...)
				}
				vn.outbox[to] = nil
			}
		}

		in := comm.AllToAll(nd, queues)
		for p := 0; p < n; p++ {
			stream := in[p]
			for off := 0; off < len(stream); {
				from := int(stream[off])
				to := int(stream[off+1])
				cnt := int(stream[off+2])
				deliverLocal(from, to, stream[off+3:off+3+cnt])
				off += 3 + cnt
			}
		}

		// Release the barrier.
		for _, vn := range waiting {
			vn.released <- struct{}{}
		}
	}
}

var _ clique.Endpoint = (*Node)(nil)
