package virtual

import (
	"strings"
	"testing"

	"repro/internal/clique"
	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/paths"
)

func TestBroadcastSumOnVirtualClique(t *testing.T) {
	// 12 virtual nodes on 4 real nodes: every virtual node broadcasts
	// its id+1 and sums what it hears.
	const n, m = 4, 12
	sums := make([]uint64, m)
	_, err := clique.Run(clique.Config{N: n, WordsPerPair: 4}, func(nd *clique.Node) {
		Run(nd, Config{M: m, Host: func(v int) int { return v % n }}, func(vn *Node) {
			vn.Broadcast(uint64(vn.ID() + 1))
			vn.Tick()
			total := uint64(vn.ID() + 1)
			for p := 0; p < m; p++ {
				if p == vn.ID() {
					continue
				}
				w := vn.Recv(p)
				if len(w) != 1 {
					vn.Fail("expected 1 word from %d, got %d", p, len(w))
				}
				total += w[0]
			}
			sums[vn.ID()] = total
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(m * (m + 1) / 2)
	for v, s := range sums {
		if s != want {
			t.Errorf("virtual node %d sum = %d, want %d", v, s, want)
		}
	}
}

func TestAlgorithmsRunUnchangedOnVirtualClique(t *testing.T) {
	// The Endpoint abstraction at work: run the SSSP algorithm written
	// for real cliques inside a virtual clique, and compare with ground
	// truth. This is the shape of the paper's Theorem 10 simulation.
	g := graph.GnpWeighted(10, 0.4, 9, false, 21)
	want := graph.FloydWarshall(g)
	const n = 4 // real clique is much smaller than the virtual one
	got := make([]int64, g.N)
	_, err := clique.Run(clique.Config{N: n, WordsPerPair: 8}, func(nd *clique.Node) {
		Run(nd, Config{M: g.N, Host: func(v int) int { return v % n }}, func(vn *Node) {
			got[vn.ID()] = paths.SSSP(vn, g.W[vn.ID()], 0).Dist
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := range got {
		if got[v] != want[0][v] {
			t.Errorf("dist(0,%d) = %d, want %d", v, got[v], want[0][v])
		}
	}
}

func TestUnevenHosting(t *testing.T) {
	// All virtual nodes on one real node plus one on another: exercises
	// local delivery and empty hosts.
	const n, m = 5, 7
	host := func(v int) int {
		if v == m-1 {
			return 3
		}
		return 0
	}
	vals := make([]uint64, m)
	_, err := clique.Run(clique.Config{N: n, WordsPerPair: 4}, func(nd *clique.Node) {
		Run(nd, Config{M: m, Host: host}, func(vn *Node) {
			if vn.ID() > 0 {
				vn.Send(0, uint64(vn.ID())*10)
			}
			vn.Tick()
			if vn.ID() == 0 {
				var total uint64
				for p := 1; p < m; p++ {
					w := vn.Recv(p)
					if len(w) != 1 {
						vn.Fail("missing word from %d", p)
					}
					total += w[0]
				}
				vals[0] = total
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(10 * (1 + 2 + 3 + 4 + 5 + 6))
	if vals[0] != want {
		t.Errorf("gathered %d, want %d", vals[0], want)
	}
}

func TestVirtualBandwidthEnforced(t *testing.T) {
	_, err := clique.Run(clique.Config{N: 2, WordsPerPair: 8}, func(nd *clique.Node) {
		Run(nd, Config{M: 4, Host: func(v int) int { return v % 2 }, WordsPerPair: 1}, func(vn *Node) {
			if vn.ID() == 0 {
				vn.Send(1, 1, 2) // two words, budget one
			}
			vn.Tick()
		})
	})
	if err == nil || !strings.Contains(err.Error(), "bandwidth exceeded") {
		t.Fatalf("want virtual bandwidth error, got %v", err)
	}
}

func TestVirtualPanicPropagates(t *testing.T) {
	_, err := clique.Run(clique.Config{N: 2, WordsPerPair: 4}, func(nd *clique.Node) {
		Run(nd, Config{M: 4, Host: func(v int) int { return v % 2 }}, func(vn *Node) {
			if vn.ID() == 3 {
				panic("virtual boom")
			}
			vn.Tick()
		})
	})
	if err == nil || !strings.Contains(err.Error(), "virtual boom") {
		t.Fatalf("want virtual panic error, got %v", err)
	}
}

func TestDifferentVirtualLifetimes(t *testing.T) {
	// Virtual nodes ticking different numbers of rounds must not
	// deadlock the coordinator.
	const n, m = 3, 9
	_, err := clique.Run(clique.Config{N: n, WordsPerPair: 4}, func(nd *clique.Node) {
		Run(nd, Config{M: m, Host: func(v int) int { return v % n }}, func(vn *Node) {
			for r := 0; r < vn.ID()%4; r++ {
				vn.Tick()
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSimulationOverheadAccounting(t *testing.T) {
	// A virtual round with one word per virtual pair costs at least one
	// real round; with m/n virtual nodes per host, a dense virtual round
	// squeezes (m/n)^2 virtual pairs through each real link.
	const n, m, vrounds = 4, 16, 3
	res, err := clique.Run(clique.Config{N: n, WordsPerPair: 4}, func(nd *clique.Node) {
		Run(nd, Config{M: m, Host: func(v int) int { return v % n }}, func(vn *Node) {
			for r := 0; r < vrounds; r++ {
				vn.Broadcast(uint64(r))
				vn.Tick()
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds <= vrounds {
		t.Errorf("real rounds %d should exceed virtual rounds %d (simulation overhead)",
			res.Stats.Rounds, vrounds)
	}
	// MaxWord reduction plus stream rounds per virtual round, bounded by
	// a generous constant times the virtual-pairs-per-link ratio.
	maxExpected := (vrounds + 1) * (2 + (m/n)*(m/n)*4)
	if res.Stats.Rounds > maxExpected {
		t.Errorf("real rounds %d exceed expected overhead bound %d", res.Stats.Rounds, maxExpected)
	}
}

func TestMaxWordInsideVirtualClique(t *testing.T) {
	// Nested use of the routing helpers on a virtual endpoint.
	const n, m = 3, 6
	_, err := clique.Run(clique.Config{N: n, WordsPerPair: 6}, func(nd *clique.Node) {
		Run(nd, Config{M: m, Host: func(v int) int { return v % n }, WordsPerPair: 2}, func(vn *Node) {
			got := comm.MaxWord(vn, uint64(vn.ID()))
			if got != m-1 {
				vn.Fail("MaxWord = %d, want %d", got, m-1)
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNestedVirtualCliques(t *testing.T) {
	// Endpoint composability: a virtual clique hosted on a virtual
	// clique hosted on the real engine. 3 real -> 6 virtual -> 12
	// doubly-virtual nodes computing a global max.
	const real, mid, top = 3, 6, 12
	got := make([]uint64, top)
	_, err := clique.Run(clique.Config{N: real, WordsPerPair: 16}, func(nd *clique.Node) {
		Run(nd, Config{M: mid, Host: func(v int) int { return v % real }, WordsPerPair: 8}, func(vn *Node) {
			Run(vn, Config{M: top, Host: func(v int) int { return v % mid }, WordsPerPair: 2}, func(wn *Node) {
				got[wn.ID()] = comm.MaxWord(wn, uint64(wn.ID()*7))
			})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for v, m := range got {
		if m != 7*(top-1) {
			t.Errorf("doubly-virtual node %d computed max %d, want %d", v, m, 7*(top-1))
		}
	}
}
