package counting

import (
	"math/bits"

	"repro/internal/bitvec"
)

// This file makes Lemma 1 *constructive* at micro scale: for the
// two-node clique with b = 1 bit of bandwidth, L input bits per node and
// t = 1 round, it enumerates every protocol exhaustively, marks every
// Boolean function some protocol computes, and exhibits the
// lexicographically-first function computed by none — the same
// "first function under the lexicographic ordering" the proof of
// Theorem 2 selects as f_n. The hierarchy theorems only need such
// functions to exist; here one can actually look at it.
//
// Protocol model at (n, b, L, t) = (2, 1, L, 1): node i holds x_i in
// {0,1}^L, sends one bit m_i(x_i) to the other node, then outputs
// out_i(x_i, m_{1-i}). The protocol computes f iff both outputs equal
// f(x_0, x_1) on all 2^{2L} inputs.

// DiagonalisationResult summarises the exhaustive enumeration.
type DiagonalisationResult struct {
	L int
	// TotalFunctions is 2^(2^(2L)), the number of Boolean functions on
	// the joint input.
	TotalFunctions uint64
	// Realised is how many of them have a protocol.
	Realised uint64
	// ValidProtocols counts (m_0, m_1, out_0, out_1) tuples whose two
	// outputs agree on every input (only those compute a function).
	ValidProtocols uint64
	// FirstHard is the truth table (bit i = f(input i), input =
	// x_0 * 2^L + x_1) of the lexicographically-first function with no
	// protocol. Defined only if Realised < TotalFunctions.
	FirstHard uint64
	// HardExists reports Realised < TotalFunctions.
	HardExists bool
	// Lemma1BoundLog2 is the Lemma 1 upper bound exponent for
	// comparison (the true count is far smaller).
	Lemma1BoundLog2 uint64
}

// Diagonalise runs the exhaustive enumeration for input length L per
// node. L must be 1 or 2 (the state space is 2^(3 * 2^L * 2)-ish and
// explodes quickly; L = 2 already enumerates 2^24 protocol tuples).
func Diagonalise(L int) DiagonalisationResult {
	if L < 1 || L > 2 {
		panic("counting: Diagonalise supports L in {1, 2}")
	}
	inputs := 1 << L            // per-node inputs
	joint := 1 << (2 * L)       // joint inputs; truth tables have `joint` bits
	numMsg := 1 << inputs       // message functions {0,1}^L -> {0,1}
	numOut := 1 << (2 * inputs) // output functions {0,1}^(L+1) -> {0,1}

	// realised marks truth tables with a protocol — one bit per table
	// (the diagonal table of the proof), so counting the realisable
	// functions and finding the first hard one are word-parallel
	// popcount / first-zero scans.
	realised := bitvec.NewRow(1 << joint)
	var validProtocols uint64

	// For node 0: out_0(x_0, m) indexed as x_0 + m*inputs.
	// Truth table bit index: x_0 * inputs + x_1.
	table0 := make([]uint32, numOut)
	table1 := make([]uint32, numOut)
	count0 := make(map[uint32]uint64, numOut)
	count1 := make(map[uint32]uint64, numOut)

	for m0 := 0; m0 < numMsg; m0++ {
		for m1 := 0; m1 < numMsg; m1++ {
			// Tables reachable by node 0's output under (m0, m1).
			for out := 0; out < numOut; out++ {
				var t0, t1 uint32
				for x0 := 0; x0 < inputs; x0++ {
					for x1 := 0; x1 < inputs; x1++ {
						idx := uint32(x0*inputs + x1)
						// Node 0 sees x0 and m1(x1).
						recv0 := (m1 >> x1) & 1
						if (out>>(x0+recv0*inputs))&1 == 1 {
							t0 |= 1 << idx
						}
						// Node 1 sees x1 and m0(x0).
						recv1 := (m0 >> x0) & 1
						if (out>>(x1+recv1*inputs))&1 == 1 {
							t1 |= 1 << idx
						}
					}
				}
				table0[out], table1[out] = t0, t1
			}
			clear(count0)
			clear(count1)
			for out := 0; out < numOut; out++ {
				count0[table0[out]]++
				count1[table1[out]]++
			}
			// A protocol is valid iff node 0's table equals node 1's.
			for tbl, c0 := range count0 {
				if c1 := count1[tbl]; c1 > 0 {
					validProtocols += c0 * c1
					realised.Set(int(tbl))
				}
			}
		}
	}

	res := DiagonalisationResult{
		L:              L,
		TotalFunctions: 1 << joint,
	}
	res.Realised = uint64(realised.OnesCount())
	if z := realised.NextZero(0, 1<<joint); z >= 0 {
		res.HardExists = true
		res.FirstHard = uint64(z)
	}
	res.ValidProtocols = validProtocols
	p := Params{N: 2, B: 1, L: L, T: 1}
	res.Lemma1BoundLog2 = p.ProtocolCountLog2().Uint64()
	return res
}

// EvalTable evaluates a truth table as a function of the two nodes'
// inputs.
func EvalTable(table uint64, L, x0, x1 int) int {
	return int(table>>(x0<<L|x1)) & 1
}

// HammingWeight counts the ones of a truth table, used by experiments to
// describe the first hard function.
func HammingWeight(table uint64) int { return bits.OnesCount64(table) }

// VerifyHard exhaustively confirms that no (2, 1, L, 1)-protocol
// computes the given truth table, by direct search over all protocol
// tuples. Quadratically slower than Diagonalise's marking pass; used by
// tests to double-check the first hard function.
func VerifyHard(table uint64, L int) bool {
	inputs := 1 << L
	numMsg := 1 << inputs
	for m0 := 0; m0 < numMsg; m0++ {
		for m1 := 0; m1 < numMsg; m1++ {
			// Check whether suitable out0, out1 exist: for each
			// (x, received) pair the required output is forced by the
			// table; the protocol fails only if two inputs force
			// conflicting values for the same (x, received) slot.
			if consistent(table, L, m0, m1) {
				return false
			}
		}
	}
	return true
}

// consistent reports whether output functions exist completing (m0, m1)
// to a protocol for the table.
func consistent(table uint64, L, m0, m1 int) bool {
	inputs := 1 << L
	// forced0[x0 + recv*inputs] in {-1, 0, 1}.
	forced0 := make([]int8, 2*inputs)
	forced1 := make([]int8, 2*inputs)
	for i := range forced0 {
		forced0[i], forced1[i] = -1, -1
	}
	for x0 := 0; x0 < inputs; x0++ {
		for x1 := 0; x1 < inputs; x1++ {
			want := int8(table >> (x0<<L | x1) & 1)
			s0 := x0 + ((m1>>x1)&1)*inputs
			if forced0[s0] >= 0 && forced0[s0] != want {
				return false
			}
			forced0[s0] = want
			s1 := x1 + ((m0>>x0)&1)*inputs
			if forced1[s1] >= 0 && forced1[s1] != want {
				return false
			}
			forced1[s1] = want
		}
	}
	return true
}
